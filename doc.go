// Package panoptes is a full reproduction of "Not only E.T. Phones Home:
// Analysing the Native User Tracking of Mobile Browsers" (IMC 2023) as a
// Go library: the Panoptes measurement framework (transparent MITM proxy,
// taint-based engine/native traffic splitting, CDP and Frida
// instrumentation) together with a simulated substrate (virtual internet,
// Android device, 15 browser emulators, generated web, vendor backends)
// that regenerates every figure and table of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// substitution table, and EXPERIMENTS.md for paper-vs-measured results.
// The root-level bench_test.go regenerates each experiment:
//
//	go test -bench=. -benchmem
package panoptes
