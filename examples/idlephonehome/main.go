// Idlephonehome: the §3.5 experiment — launch each browser, leave it
// untouched at its start page for ten (virtual) minutes, and plot the
// cumulative native "phone home" requests. Most browsers burst in the
// first minute (favicons, thumbnails, DNS for start-page tiles) and then
// plateau; Opera grows linearly because of its news feed. Dolphin sends
// 46% of its idle requests to the Facebook Graph API.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"panoptes/internal/analysis"
	"panoptes/internal/core"
	"panoptes/internal/profiles"
	"panoptes/internal/report"
)

func main() {
	world, err := core.NewWorld(core.WorldConfig{Sites: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	const duration = 10 * time.Minute
	var series []analysis.Fig5Series
	for _, p := range profiles.All() {
		r, err := world.RunIdle(p.Name, duration)
		if err != nil {
			log.Fatalf("idle %s: %v", p.Name, err)
		}
		series = append(series, analysis.Fig5(p.Name, r.Flows, r.Start, duration, 10))
	}
	sort.Slice(series, func(i, j int) bool { return series[i].Total > series[j].Total })
	report.Fig5(os.Stdout, series)

	// Call out the paper's §3.5 destination findings explicitly.
	fmt.Println()
	for _, check := range []struct{ browser, dest string }{
		{"Dolphin", "facebook.com"},
		{"Mint", "facebook.com"},
		{"CocCoc", "adjust.com"},
		{"Opera", "doubleclick.net"},
	} {
		for _, s := range series {
			if s.Browser != check.browser {
				continue
			}
			fmt.Printf("%s sends %.1f%% of its idle native requests to %s\n",
				check.browser, s.DestShares[check.dest], check.dest)
		}
	}
}
