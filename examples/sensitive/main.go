// Sensitive: the §3.2 / §3.4 experiment — crawl only Curlie-style
// sensitive-category sites (Society, Religion, Sexuality, Health) with
// the three full-URL-leaking browsers, confirm no local filtering spares
// sensitive visits, and geolocate where those visits were reported:
// Russia (Yandex), China (QQ) and Canada (UC International), all outside
// the EU vantage point.
package main

import (
	"fmt"
	"log"

	"panoptes/internal/analysis"
	"panoptes/internal/core"
	"panoptes/internal/leak"
	"panoptes/internal/profiles"
	"panoptes/internal/websim"
)

func main() {
	selected := []*profiles.Profile{
		profiles.Yandex(), profiles.QQ(), profiles.UCInternational(),
	}
	world, err := core.NewWorld(core.WorldConfig{Sites: 16, Profiles: selected})
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	// Keep only the sensitive half of the dataset.
	var sensitive []*websim.Site
	for _, s := range world.Sites {
		if s.Category.Sensitive() {
			sensitive = append(sensitive, s)
		}
	}
	fmt.Printf("crawling %d sensitive sites:\n", len(sensitive))
	for _, s := range sensitive {
		fmt.Printf("  [%-9s] %s\n", s.Category, s.Domain)
	}
	fmt.Println()

	if _, err := world.RunCampaign(core.CampaignConfig{Sites: sensitive}); err != nil {
		log.Fatal(err)
	}

	findings := analysis.HistoryLeaksWithInjected(world.DB, []string{"UC International"})
	// Count full-URL leaks per browser: one per visit means no local
	// filtering of sensitive content.
	perBrowser := map[string]int{}
	for _, f := range findings {
		if f.Kind == leak.KindFullURL {
			perBrowser[f.Browser]++
		}
	}
	fmt.Println("full-URL leaks of sensitive visits (visits per browser:", len(sensitive), ")")
	for _, p := range selected {
		filtered := "NO local filtering — every sensitive visit reported"
		if perBrowser[p.Name] < len(sensitive) {
			filtered = fmt.Sprintf("only %d of %d visits reported", perBrowser[p.Name], len(sensitive))
		}
		fmt.Printf("  %-18s %3d leaks — %s\n", p.Name, perBrowser[p.Name], filtered)
	}

	// Per-category breakdown: religion, sexuality, health, society.
	cats := map[string]string{}
	var visitURLs []string
	for _, s := range sensitive {
		cats[s.URL()] = string(s.Category)
		visitURLs = append(visitURLs, s.URL())
	}
	browserSet := map[string]bool{}
	for _, p := range selected {
		browserSet[p.Name] = true
	}
	fmt.Println("\nper-category full-URL leak breakdown:")
	for _, r := range analysis.SensitiveBreakdown(findings, visitURLs, browserSet,
		func(u string) string { return cats[u] }) {
		fmt.Printf("  %-18s %-10s %d/%d visits leaked\n", r.Browser, r.Category, r.Leaked, r.Visits)
	}

	// §3.4: where did the reports go?
	geo, err := world.GeoDB()
	if err != nil {
		log.Fatal(err)
	}
	rows, err := analysis.GeoTransfers(findings, world.Inet, geo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ninternational transfers (crawl vantage: Greece, EU):")
	for _, r := range rows {
		if r.Kind != leak.KindFullURL {
			continue
		}
		where := "OUTSIDE the EU"
		if r.InEU {
			where = "inside the EU"
		}
		fmt.Printf("  %-18s → %-26s %s (%s)\n", r.Browser, r.Host, r.Country, where)
	}
}
