// Quickstart: assemble the Panoptes testbed, crawl a handful of sites
// with one browser, and see the engine/native traffic split — the
// framework's core capability — in about a second.
package main

import (
	"fmt"
	"log"

	"panoptes/internal/analysis"
	"panoptes/internal/capture"
	"panoptes/internal/core"
	"panoptes/internal/profiles"
)

func main() {
	// A small world: 10 sites (half popular, half sensitive) and the
	// Yandex browser, the paper's headline case.
	world, err := core.NewWorld(core.WorldConfig{
		Sites:    10,
		Profiles: []*profiles.Profile{profiles.Yandex()},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	// Crawl. Per browser this resets the app via Appium, launches it,
	// clicks through the setup wizard, diverts its UID into the MITM
	// proxy, instruments it over CDP so every web-engine request is
	// tainted, and visits each site.
	res, err := world.RunCampaign(core.CampaignConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("visited %d pages (%d errors)\n\n", len(res.Visits), res.Errors)

	// The proxy's splitting addon filed every intercepted request into
	// one of two databases.
	fmt.Printf("engine (website-caused) requests: %d\n", world.DB.Engine.Len())
	fmt.Printf("native (browser-caused) requests: %d\n\n", world.DB.Native.Len())

	// What did the browser do natively?
	fmt.Println("native destinations:")
	for _, host := range world.DB.Native.Hosts() {
		h := host
		n := len(world.DB.Native.Filter(func(f *capture.Flow) bool { return f.Host == h }))
		fmt.Printf("  %-28s %d requests\n", host, n)
	}

	// And the headline finding: the browsing history leaves the device.
	findings := analysis.HistoryLeaks(world.DB.Native)
	fmt.Printf("\nhistory-leak findings: %d\n", len(findings))
	for _, f := range findings[:min(3, len(findings))] {
		fmt.Printf("  %s leaked %q to %s (%s, %s)\n",
			f.Browser, f.VisitURL, f.Host, f.Kind, f.Encoding)
	}
}
