// Fullstudy: the paper's main crawl — all 15 browsers over a site list —
// followed by Figures 2, 3 and 4 and Table 2. With the default 60 sites
// this takes well under a minute; pass a number to scale up
// (`go run ./examples/fullstudy 200`).
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"panoptes/internal/analysis"
	"panoptes/internal/core"
	"panoptes/internal/profiles"
	"panoptes/internal/report"
)

func main() {
	sites := 60
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("usage: fullstudy [num-sites]")
		}
		sites = n
	}

	world, err := core.NewWorld(core.WorldConfig{Sites: sites})
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	var names []string
	for _, p := range profiles.All() {
		names = append(names, p.Name)
	}

	start := time.Now()
	res, err := world.RunCampaign(core.CampaignConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawled %d visits across %d browsers in %v\n\n",
		len(res.Visits), len(names), time.Since(start).Round(time.Millisecond))

	report.Fig2(os.Stdout, analysis.Fig2(world.DB, names))
	fmt.Println()
	report.Fig3(os.Stdout, analysis.Fig3(world.DB.Native, world.Hostlist, names))
	fmt.Println()
	report.Fig4(os.Stdout, analysis.Fig4(world.DB, names))
	fmt.Println()
	m, findings := analysis.Table2(world.DB.Native, names)
	report.Table2(os.Stdout, m, names)
	fmt.Printf("\n%d individual PII findings across all native flows\n", len(findings))

	body, _ := analysis.Listing1(world.DB.Native)
	fmt.Println()
	report.Listing1(os.Stdout, body)
}
