// Countermeasure: the defence the paper's related work calls for. Since
// the tracking happens in native browser code, in-page ad blockers are
// useless — but the device's network vantage point (here: the proxy) can
// veto native requests that target ad/tracker hosts, carry PII, or
// exfiltrate the browsing history, while leaving engine traffic intact.
// This runs the same crawl twice — unprotected and protected — and
// compares what the vendors received.
package main

import (
	"fmt"
	"log"

	"panoptes/internal/analysis"
	"panoptes/internal/blocker"
	"panoptes/internal/core"
	"panoptes/internal/profiles"
)

func run(protect bool) {
	selected := []*profiles.Profile{
		profiles.Yandex(), profiles.Kiwi(), profiles.Whale(),
	}
	world, err := core.NewWorld(core.WorldConfig{Sites: 10, Profiles: selected})
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	var b *blocker.Blocker
	if protect {
		b = blocker.New(blocker.DefaultPolicy(), world.Hostlist)
		world.Proxy.Use(b)
	}
	res, err := world.RunCampaign(core.CampaignConfig{})
	if err != nil {
		log.Fatal(err)
	}

	label := "UNPROTECTED"
	if protect {
		label = "PROTECTED (blocker active)"
	}
	fmt.Printf("== %s — %d visits, %d navigation errors\n", label, len(res.Visits), res.Errors)

	// What actually reached the trackers?
	sba := world.Vendors.Backend("sba.yandex.net").Count()
	fmt.Printf("   Yandex history reports delivered:   %d\n", sba)
	adHits := 0
	for _, host := range []string{"rubiconproject.com", "adnxs.com", "openx.net",
		"pubmatic.com", "bidswitch.net", "demdex.net"} {
		adHits += world.Hosting.Hits(host)
	}
	fmt.Printf("   Kiwi ad-network contacts delivered: %d (incl. engine embeds)\n", adHits)
	piiDelivered := 0
	for _, r := range world.Vendors.Backend("api-whale.naver.com").Requests() {
		if r.Path == "/device/profile" {
			piiDelivered++
		}
	}
	fmt.Printf("   Whale PII beacons delivered:        %d\n", piiDelivered)

	// Engine traffic must be unharmed either way.
	engineErrors := 0
	for _, f := range world.DB.Engine.All() {
		if f.Err != "" {
			engineErrors++
		}
	}
	fmt.Printf("   engine flows: %d (errors: %d)\n", world.DB.Engine.Len(), engineErrors)

	if protect {
		s := b.Stats()
		fmt.Printf("   blocker: %d/%d native requests vetoed (%v); %d engine flows passed\n",
			s.NativeBlocked, s.NativeExamined, s.ByReason, s.EnginePassed)
		remaining := analysis.HistoryLeaks(world.DB.Native)
		delivered := 0
		for _, f := range remaining {
			for _, fl := range world.DB.Native.All() {
				if fl.ID == f.FlowID && fl.Err == "" {
					delivered++
				}
			}
		}
		fmt.Printf("   history leaks delivered despite blocking: %d\n", delivered)
	}
	fmt.Println()
}

func main() {
	run(false)
	run(true)
}
