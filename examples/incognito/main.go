// Incognito: the §3.2 private-browsing experiment. The browsers that
// leak browsing history in normal mode (Edge to the Bing API, Opera to
// Sitecheck, UC International via its injected script) keep leaking in
// incognito mode; Yandex and QQ offer no incognito mode at all
// (footnote 5). The run compares normal vs incognito leak counts.
package main

import (
	"fmt"
	"log"

	"panoptes/internal/analysis"
	"panoptes/internal/core"
	"panoptes/internal/leak"
	"panoptes/internal/profiles"
)

func main() {
	selected := []*profiles.Profile{
		profiles.Edge(), profiles.Opera(), profiles.UCInternational(),
		profiles.Yandex(), profiles.QQ(),
	}
	world, err := core.NewWorld(core.WorldConfig{Sites: 12, Profiles: selected})
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	count := func(incognito bool) (map[string]int, []string) {
		world.DB.Reset()
		res, err := world.RunCampaign(core.CampaignConfig{Incognito: incognito})
		if err != nil {
			log.Fatal(err)
		}
		findings := analysis.HistoryLeaksWithInjected(world.DB, []string{"UC International"})
		out := map[string]int{}
		for _, f := range findings {
			if f.Incognito == incognito {
				out[f.Browser]++
			}
		}
		return out, res.Skipped
	}

	normal, _ := count(false)
	private, skipped := count(true)

	fmt.Println("history-leak requests per browser (12-site crawl):")
	fmt.Printf("%-18s %-8s %s\n", "Browser", "normal", "incognito")
	for _, p := range selected {
		inc := fmt.Sprint(private[p.Name])
		for _, s := range skipped {
			if s == p.Name {
				inc = "(no incognito mode)"
			}
		}
		fmt.Printf("%-18s %-8d %s\n", p.Name, normal[p.Name], inc)
	}

	fmt.Println("\nconclusion: incognito mode does not stop native history leaks —")
	fmt.Println("the gap between user expectation and reality the paper highlights.")
	_ = leak.KindFullURL
}
