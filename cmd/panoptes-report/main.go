// Command panoptes-report re-analyses stored capture databases: point it
// at the engine.jsonl / native.jsonl files a previous `panoptes -out`
// run produced and it regenerates the figures without re-crawling.
//
// Usage:
//
//	panoptes-report -dir results/
//	panoptes-report -native results/native.jsonl -leaks
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"panoptes/internal/analysis"
	"panoptes/internal/capture"
	"panoptes/internal/hostlist"
	"panoptes/internal/leak"
	"panoptes/internal/report"
)

func main() {
	var (
		dir        = flag.String("dir", "", "directory holding engine.jsonl and native.jsonl")
		enginePath = flag.String("engine", "", "engine flow database (JSONL)")
		nativePath = flag.String("native", "", "native flow database (JSONL)")
	)
	flag.Parse()

	if *dir != "" {
		if *enginePath == "" {
			*enginePath = filepath.Join(*dir, "engine.jsonl")
		}
		if *nativePath == "" {
			*nativePath = filepath.Join(*dir, "native.jsonl")
		}
	}
	if *nativePath == "" {
		fmt.Fprintln(os.Stderr, "panoptes-report: need -dir or -native")
		os.Exit(2)
	}

	db := capture.NewDB()
	if *enginePath != "" {
		loadInto(db.Engine, *enginePath)
	}
	loadInto(db.Native, *nativePath)

	// Browser names come from the data itself.
	namesSet := map[string]bool{}
	for _, f := range db.Engine.All() {
		namesSet[f.Browser] = true
	}
	for _, f := range db.Native.All() {
		namesSet[f.Browser] = true
	}
	delete(namesSet, "")
	var names []string
	for n := range namesSet {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "panoptes-report: no browser-attributed flows found")
		os.Exit(1)
	}

	if db.Engine.Len() > 0 {
		report.Fig2(os.Stdout, analysis.Fig2(db, names))
		fmt.Println()
		report.Fig4(os.Stdout, analysis.Fig4(db, names))
		fmt.Println()
	}
	report.Fig3(os.Stdout, analysis.Fig3(db.Native, hostlist.Bundled(), names))
	fmt.Println()
	m, _ := analysis.Table2(db.Native, names)
	report.Table2(os.Stdout, m, names)
	fmt.Println()
	findings := analysis.HistoryLeaksWithInjected(db, []string{"UC International"})
	report.Leaks(os.Stdout, leak.Summarise(findings))
	fmt.Println()
	report.DNS(os.Stdout, analysis.DNSUsage(db.Native, names), names)
	body, _ := analysis.Listing1(db.Native)
	if body != "" {
		fmt.Println()
		report.Listing1(os.Stdout, body)
	}
}

func loadInto(s *capture.Store, path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "panoptes-report: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := s.ReadJSONL(f); err != nil {
		fmt.Fprintf(os.Stderr, "panoptes-report: parse %s: %v\n", path, err)
		os.Exit(1)
	}
}
