// Command panoptes runs the full reproduction study: it assembles the
// simulated testbed (virtual internet, vendor backends, generated web,
// Android device, transparent MITM proxy), crawls the site list with the
// selected browsers under taint instrumentation, optionally runs the
// idle experiment, and prints every figure and table of the paper.
//
// Usage:
//
//	panoptes -sites 200 -all
//	panoptes -browsers Yandex,QQ -fig2 -leaks
//	panoptes -fig5 -idle 10m
//	panoptes -population 1000000 -duration 5m
//	panoptes -table1
//	panoptes -all -out results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"panoptes/internal/analysis"
	"panoptes/internal/blocker"
	"panoptes/internal/capture"
	"panoptes/internal/core"
	"panoptes/internal/fabric"
	"panoptes/internal/faultsim"
	"panoptes/internal/leak"
	"panoptes/internal/obs"
	"panoptes/internal/popsim"
	"panoptes/internal/profiles"
	"panoptes/internal/report"
	"panoptes/internal/sink"
)

func main() {
	var (
		sites     = flag.Int("sites", 200, "crawl-list size (paper: 1000; half Tranco, half sensitive)")
		browsers  = flag.String("browsers", "", "comma-separated browser names (default: all 15)")
		incognito = flag.Bool("incognito", false, "crawl in incognito mode")
		parallel  = flag.Int("parallel", 0, "browsers crawled concurrently (0 = GOMAXPROCS, 1 = sequential)")
		idleDur   = flag.Duration("idle", 10*time.Minute, "idle-experiment duration (virtual time)")
		outDir    = flag.String("out", "", "directory for JSONL flow databases and CSV outputs")
		harOut    = flag.Bool("har", false, "with -out: also export HAR 1.2 archives")
		retain    = flag.String("retain", "all", "flow retention: all, native (drop engine flows after streaming analysis) or none (drop all; with -out, dropped flows spill to JSONL as they commit)")
		block     = flag.Bool("block", false, "install the countermeasure blocker (internal/blocker)")

		sinkSpecs  = flag.String("sink", "", "export sinks, comma-separated: http:URL (NDJSON bulk POST), file:DIR (rotating gzip JSONL), mem (in-memory smoke)")
		sinkBatch  = flag.Int("sink-batch", 0, "export batch size (default 64)")
		sinkQueue  = flag.Int("sink-queue", 0, "in-flight export batches per sink (default 8)")
		sinkPolicy = flag.String("sink-policy", "drop", "full export queue policy: drop (shed batches) or block (backpressure the crawl)")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9090)")
		waterfall   = flag.Int("waterfall", 0, "print an ASCII waterfall for the first N page-visit span trees")

		population = flag.Int("population", 0, "simulate N users on the event-driven session engine instead of crawling with browser emulators (see -duration, -seed)")
		popDur     = flag.Duration("duration", 5*time.Minute, "virtual duration of the -population run")
		popSeed    = flag.Int64("seed", 42, "campaign seed of the -population session model; equal seeds reproduce runs byte-for-byte")

		faultRate  = flag.Float64("faults", 0, "fault-injection rate per (browser, site, attempt), 0..1 over every fault kind")
		faultSeed  = flag.Int64("fault-seed", 1, "seed for the deterministic fault plan (with -faults)")
		checkpoint = flag.String("checkpoint", "", "write a resumable campaign checkpoint (JSON) to this path")
		resumeFrom = flag.String("resume", "", "resume the campaign from a checkpoint written by -checkpoint")

		workersN     = flag.Int("workers", 0, "run the campaign on a lease-based worker fabric with this many worker planes (0 = single-process)")
		leaseVisits  = flag.Int("lease-visits", 0, "sites per fabric lease (with -workers; default 4)")
		leaseTimeout = flag.Duration("lease-timeout", 0, "virtual-clock lease deadline before a silent worker's lease is reclaimed (with -workers; default 2m)")
		fabricMode   = flag.String("fabric-mode", "failover", "worker transport spread: failover or roundrobin (with -workers)")

		transportsF = flag.String("transports", "", "comma-separated data-plane transports to dissect: h1,h2,ws,doh (default: all; h1 always on)")
		blockH3     = flag.Bool("block-h3", true, "install the UDP/443 drop rule forcing QUIC-capable browsers onto interceptable TCP (false = ablation: QUIC traffic bypasses capture)")

		all      = flag.Bool("all", false, "produce every figure and table")
		table1   = flag.Bool("table1", false, "Table 1: browser dataset")
		fig2     = flag.Bool("fig2", false, "Figure 2: engine vs native request counts")
		fig3     = flag.Bool("fig3", false, "Figure 3: ad-related native destinations")
		fig4     = flag.Bool("fig4", false, "Figure 4: outgoing byte volumes")
		fig5     = flag.Bool("fig5", false, "Figure 5: idle phone-home timelines")
		table2   = flag.Bool("table2", false, "Table 2: PII leak matrix")
		leaksF   = flag.Bool("leaks", false, "§3.2: browsing-history leaks")
		geoF     = flag.Bool("geo", false, "§3.4: international transfers")
		dnsF     = flag.Bool("dns", false, "§3.2: DoH vs local resolver split")
		listing1 = flag.Bool("listing1", false, "Listing 1: Opera OLeads ad request")
		crossF   = flag.Bool("crosscheck", false, "validate proxy byte accounting against kernel eBPF counters")
	)
	flag.Parse()

	var retainMode capture.RetainMode
	switch *retain {
	case "all":
		retainMode = capture.RetainAll
	case "native":
		retainMode = capture.RetainNative
	case "none":
		retainMode = capture.RetainNone
	default:
		fatalf("unknown -retain mode %q (all, native, none)", *retain)
	}
	if retainMode != capture.RetainAll && *checkpoint != "" {
		fatalf("-checkpoint requires -retain=all (checkpoints snapshot the flow databases)")
	}
	if *population > 0 {
		if *workersN > 0 || *checkpoint != "" || *resumeFrom != "" || *block {
			fatalf("-population is incompatible with -workers, -checkpoint, -resume and -block (the session engine bypasses the proxy and the lease fabric)")
		}
		// A million-user run only stays in memory with retention off;
		// default there unless the operator chose a mode explicitly.
		retainExplicit := false
		flag.Visit(func(f *flag.Flag) { retainExplicit = retainExplicit || f.Name == "retain" })
		if !retainExplicit {
			retainMode = capture.RetainNone
		}
	}
	if *workersN > 0 {
		if *checkpoint != "" || *resumeFrom != "" {
			fatalf("-workers is incompatible with -checkpoint/-resume: the fabric's leases already partition and resume the campaign internally")
		}
		if *block {
			fatalf("-workers is incompatible with -block: the blocker hooks the coordinator proxy, but fabric visits run on worker planes")
		}
	}
	fabricTransport := fabric.ModeFailover
	if *workersN > 0 {
		m, err := fabric.ParseMode(*fabricMode)
		if err != nil {
			fatalf("%v", err)
		}
		fabricTransport = m
	}

	var transportList []string
	if *transportsF != "" {
		known := map[string]bool{
			capture.TransportH1: true, capture.TransportH2: true,
			capture.TransportWS: true, capture.TransportDoH: true,
		}
		for _, t := range strings.Split(*transportsF, ",") {
			t = strings.TrimSpace(strings.ToLower(t))
			if !known[t] {
				fatalf("unknown transport %q (known: h1, h2, ws, doh)", t)
			}
			transportList = append(transportList, t)
		}
	}

	if *all {
		*table1, *fig2, *fig3, *fig4, *fig5 = true, true, true, true, true
		*table2, *leaksF, *geoF, *dnsF, *listing1 = true, true, true, true, true
	}
	if *all {
		*crossF = true
	}
	if *population > 0 && !(*fig2 || *fig3 || *fig4 || *fig5 || *table2 || *leaksF || *geoF || *dnsF || *listing1) {
		// The population deliverables: the Table 2 matrix and the
		// phone-home timeline over the simulated population.
		*table2, *fig5 = true, true
	}
	if !(*table1 || *fig2 || *fig3 || *fig4 || *fig5 || *table2 || *leaksF || *geoF || *dnsF || *listing1 || *crossF) {
		fmt.Fprintln(os.Stderr, "panoptes: nothing selected; pass -all or specific -figN/-tableN flags")
		flag.Usage()
		os.Exit(2)
	}

	selected := profiles.All()
	if *browsers != "" {
		selected = nil
		for _, name := range strings.Split(*browsers, ",") {
			p := profiles.ByName(strings.TrimSpace(name))
			if p == nil {
				fatalf("unknown browser %q (known: %s)", name, knownNames())
			}
			selected = append(selected, p)
		}
	}
	names := make([]string, len(selected))
	for i, p := range selected {
		names[i] = p.Name
	}

	if *table1 {
		printTable1(selected)
		fmt.Println()
	}

	needCrawl := *fig2 || *fig3 || *fig4 || *table2 || *leaksF || *geoF || *dnsF || *listing1 || *crossF
	if !needCrawl && !*fig5 {
		return
	}

	if *metricsAddr != "" {
		obs.ServeMetrics(*metricsAddr, obs.Default, func(err error) {
			fmt.Fprintf(os.Stderr, "panoptes: metrics server: %v\n", err)
		})
		fmt.Fprintf(os.Stderr, "panoptes: observability on http://%s (/metrics, /debug/vars, /debug/pprof)\n", *metricsAddr)
	}

	sinks, err := sink.ParseSpecs(*sinkSpecs)
	if err != nil {
		fatalf("%v", err)
	}
	policy, err := sink.ParsePolicy(*sinkPolicy)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Fprintf(os.Stderr, "panoptes: assembling testbed (%d sites, %d browsers)...\n", *sites, len(selected))
	w, err := core.NewWorld(core.WorldConfig{
		Sites: *sites, Profiles: selected, Retain: retainMode,
		Sinks:          sinks,
		SinkConfig:     sink.Config{BatchSize: *sinkBatch, Queue: *sinkQueue, Policy: policy},
		Transports:     transportList,
		DisableH3Block: !*blockH3,
	})
	if err != nil {
		fatalf("world: %v", err)
	}
	defer w.Close()
	if len(sinks) > 0 {
		fmt.Fprintf(os.Stderr, "panoptes: export plane wired (%d sinks, policy=%s)\n", len(sinks), policy)
	}

	// With retention off, committed flows stream through the analyzers
	// and are then dropped; given -out they spill to the JSONL databases
	// incrementally instead of being exported at the end.
	var spillFiles []*os.File
	spillTo := func(store *capture.Store, name string) {
		f := createFile(*outDir, name)
		store.SetSpill(f)
		spillFiles = append(spillFiles, f)
	}
	if *outDir != "" && !w.DB.Engine.Retained() {
		spillTo(w.DB.Engine, "engine.jsonl")
	}
	if *outDir != "" && !w.DB.Native.Retained() {
		spillTo(w.DB.Native, "native.jsonl")
	}
	defer func() {
		for _, f := range spillFiles {
			f.Close()
		}
	}()

	var blk *blocker.Blocker
	if *block {
		blk = blocker.New(blocker.DefaultPolicy(), w.Hostlist)
		w.Proxy.Use(blk)
	}

	var inj *faultsim.Injector
	if *faultRate > 0 {
		inj = faultsim.New(faultsim.Plan{Seed: *faultSeed, Rates: faultsim.UniformRates(*faultRate)})
		w.InstallFaults(inj)
		fmt.Fprintf(os.Stderr, "panoptes: fault injection armed (rate=%.2g seed=%d)\n", *faultRate, *faultSeed)
	}

	// Population mode replaces the emulator crawl: the event-driven
	// session engine synthesizes the population's traffic straight into
	// the same capture DB and streaming analyses.
	var pop *popsim.Engine
	if *population > 0 {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "panoptes: population run: %d users × %v virtual over %d sites (seed=%d)...\n",
			*population, *popDur, len(w.Sites), *popSeed)
		e, err := w.RunPopulation(core.PopulationConfig{
			Population:  *population,
			Duration:    *popDur,
			Seed:        *popSeed,
			Parallelism: *parallel,
		})
		if err != nil {
			fatalf("population: %v", err)
		}
		pop = e
		s := e.Stats()
		fmt.Fprintf(os.Stderr, "panoptes: population: %d users arrived (%d churned), %d sessions, %d visits, %d flows, %d session starts throttled in %v wall\n",
			s.ArrivedUsers, s.ChurnedUsers, s.Sessions, s.Visits, s.FlowsCommitted,
			s.Throttled, time.Since(start).Round(time.Millisecond))
	}

	if needCrawl && pop == nil {
		var res *core.CampaignResult
		start := time.Now()
		if *workersN > 0 {
			// Distributed path: the coordinator world merges; fresh worker
			// planes (same deterministic site dataset, full retention so the
			// lease checkpoints can carry session state) do the crawling.
			fmt.Fprintf(os.Stderr, "panoptes: fabric crawl of %d sites × %d browsers (workers=%d, mode=%s)...\n",
				len(w.Sites), len(selected), *workersN, fabricTransport)
			fres, err := fabric.Run(fabric.Config{
				World: w,
				NewWorkerWorld: func() (*core.World, error) {
					ww, err := core.NewWorld(core.WorldConfig{
						Sites: *sites, Profiles: selected,
						Transports: transportList, DisableH3Block: !*blockH3,
					})
					if err != nil {
						return nil, err
					}
					if inj != nil {
						ww.InstallFaults(inj)
					}
					return ww, nil
				},
				Workers:      *workersN,
				LeaseVisits:  *leaseVisits,
				LeaseTimeout: *leaseTimeout,
				Mode:         fabricTransport,
				Campaign:     core.CampaignConfig{Incognito: *incognito},
				Faults:       inj,
			})
			if err != nil {
				fatalf("fabric: %v", err)
			}
			res = fres.Campaign
			st := fres.Stats
			fmt.Fprintf(os.Stderr, "panoptes: fabric: %d leases issued, %d reclaimed, %d duplicate completions dropped; %d worker restarts; %d flows merged, %d quarantined\n",
				st.LeasesIssued, st.LeasesReclaimed, st.DuplicateDrops, st.WorkerRestarts, st.FlowsMerged, st.FlowsQuarantined)
		} else {
			workers := *parallel
			if workers <= 0 {
				workers = runtime.GOMAXPROCS(0)
			}
			ccfg := core.CampaignConfig{
				Incognito:   *incognito,
				Parallelism: *parallel,
				Checkpoint:  *checkpoint != "",
			}
			if *resumeFrom != "" {
				cp, err := core.ReadCheckpoint(*resumeFrom)
				if err != nil {
					fatalf("%v", err)
				}
				ccfg.Resume = cp
				ccfg.Incognito = cp.Incognito
				fmt.Fprintf(os.Stderr, "panoptes: resuming campaign from %s (%d browsers checkpointed)\n",
					*resumeFrom, len(cp.Browsers))
			}
			fmt.Fprintf(os.Stderr, "panoptes: crawling %d sites × %d browsers (incognito=%v, parallel=%d)...\n",
				len(w.Sites), len(selected), ccfg.Incognito, workers)
			r, err := w.RunCampaign(ccfg)
			if err != nil {
				fatalf("campaign: %v", err)
			}
			res = r
		}
		fmt.Fprintf(os.Stderr, "panoptes: %d visits (%d errors, %d skipped) in %v wall / %v virtual\n",
			len(res.Visits), res.Errors, len(res.Skipped), time.Since(start).Round(time.Millisecond),
			w.Clock.Since(startVirtual()))
		// Resilience exit report: what was injected, what the retry layer
		// absorbed, and what degraded into error records.
		if inj != nil || res.Retries > 0 || res.Degraded > 0 {
			fmt.Fprintf(os.Stderr, "panoptes: resilience: %d faults injected (%s); %d attempts retried; %d visits degraded\n",
				inj.Total(), inj.CountsString(), res.Retries, res.Degraded)
		}
		if *checkpoint != "" && res.Checkpoint != nil {
			if err := res.Checkpoint.WriteFile(*checkpoint); err != nil {
				fatalf("%v", err)
			}
			fmt.Fprintf(os.Stderr, "panoptes: checkpoint written to %s\n", *checkpoint)
		}
	}

	// Every figure and table below is read from the streaming suite —
	// the analyzers folded each flow in as it committed, so rendering no
	// longer touches the flow databases and works under -retain=none.
	if *fig2 {
		rows := w.Suite.Fig2.Rows()
		report.Fig2(os.Stdout, rows)
		fmt.Println()
		if *outDir != "" {
			writeFile(*outDir, "fig2.csv", func(f *os.File) { report.CSVFig2(f, rows) })
		}
	}
	if *fig3 {
		report.Fig3(os.Stdout, w.Suite.Fig3.Rows())
		fmt.Println()
	}
	if *fig4 {
		rows := w.Suite.Fig4.Rows()
		report.Fig4(os.Stdout, rows)
		fmt.Println()
		if *outDir != "" {
			writeFile(*outDir, "fig4.csv", func(f *os.File) { report.CSVFig4(f, rows) })
		}
	}
	if *table2 {
		report.Table2(os.Stdout, w.Suite.PII.Matrix(), names)
		fmt.Println()
		report.Transports(os.Stdout, w.Suite.Transport.Rows())
		fmt.Println()
	}
	var findings []leak.Finding
	if *leaksF || *geoF {
		var injected []string
		for _, p := range selected {
			if p.InjectsScript {
				injected = append(injected, p.Name)
			}
		}
		findings = analysis.CombineInjectedLeaks(
			w.Suite.LeakNative.Findings(), w.Suite.LeakEngine.Findings(), injected)
	}
	if *leaksF {
		report.Leaks(os.Stdout, leak.Summarise(findings))
		fmt.Println()
		report.TrackableIDs(os.Stdout, w.Suite.Trackable.IDs())
		fmt.Println()
		// Per-category sensitive breakdown over the crawled dataset.
		cats := map[string]string{}
		var sensVisits []string
		for _, s := range w.Sites {
			if s.Category.Sensitive() {
				cats[s.URL()] = string(s.Category)
				sensVisits = append(sensVisits, s.URL())
			}
		}
		browserSet := map[string]bool{}
		for _, n := range names {
			browserSet[n] = true
		}
		report.Sensitive(os.Stdout, analysis.SensitiveBreakdown(findings, sensVisits, browserSet,
			func(u string) string { return cats[u] }))
		fmt.Println()
	}
	if *geoF {
		geo, err := w.GeoDB()
		if err != nil {
			fatalf("geoip: %v", err)
		}
		rows, err := analysis.GeoTransfers(findings, w.Inet, geo)
		if err != nil {
			fatalf("geo transfers: %v", err)
		}
		report.Geo(os.Stdout, rows)
		fmt.Println()
	}
	if *dnsF {
		report.DNS(os.Stdout, w.Suite.DNS.Usage(), names)
		fmt.Println()
	}
	if *crossF {
		uidOf := map[string]int{}
		for name, b := range w.Browsers {
			uidOf[name] = b.UID()
		}
		report.VolumeCrossCheck(os.Stdout, analysis.CrossCheckFrom(w.Suite.Fig4.ReqBytesTotal, w.Device.Accounting, uidOf))
		fmt.Println()
	}
	if *listing1 {
		body, _ := w.Suite.Listing1.Result()
		report.Listing1(os.Stdout, body)
		fmt.Println()
	}

	if *fig5 {
		var series []analysis.Fig5Series
		if pop != nil {
			// Population mode: the phone-home timeline was folded in on
			// the commit tap during the run; no idle experiment needed.
			series = pop.Curve().Series()
			if *outDir != "" {
				for _, s := range series {
					s := s
					fn := fmt.Sprintf("population_curve_%s.csv", strings.ReplaceAll(strings.ToLower(s.Browser), " ", "_"))
					writeFile(*outDir, fn, func(f *os.File) { report.CSVFig5(f, s) })
				}
			}
		} else {
			fmt.Fprintf(os.Stderr, "panoptes: idle experiment (%v virtual) ...\n", *idleDur)
			for _, name := range names {
				r, err := w.RunIdle(name, *idleDur)
				if err != nil {
					fatalf("idle %s: %v", name, err)
				}
				s := analysis.Fig5(name, r.Flows, r.Start, *idleDur, 10)
				series = append(series, s)
				if *outDir != "" {
					fn := fmt.Sprintf("fig5_%s.csv", strings.ReplaceAll(strings.ToLower(name), " ", "_"))
					writeFile(*outDir, fn, func(f *os.File) { report.CSVFig5(f, s) })
				}
			}
		}
		sort.Slice(series, func(i, j int) bool { return series[i].Total > series[j].Total })
		report.Fig5(os.Stdout, series)
		fmt.Println()
	}

	if blk != nil {
		s := blk.Stats()
		fmt.Printf("countermeasure: vetoed %d of %d native requests (%v); %d engine flows untouched\n",
			s.NativeBlocked, s.NativeExamined, s.ByReason, s.EnginePassed)
	}

	// Export plane epilogue: analyzer deltas go out once the campaign's
	// results are final, then the queues drain before the summary reads
	// the sink counters.
	if w.Exporter != nil {
		if err := w.Exporter.PublishDeltas(w.Pipeline.Results()); err != nil {
			fmt.Fprintf(os.Stderr, "panoptes: delta export: %v\n", err)
		}
		w.Exporter.Drain()
	}

	// End-of-campaign observability: the headline numbers (cert-cache hit
	// rate, p50/p95 visit latency) plus the full metric-family table.
	if needCrawl || *fig5 {
		report.CampaignObsSummary(os.Stdout, obs.Default)
		fmt.Println()
		report.PipelineObsSummary(os.Stdout, obs.Default)
		fmt.Println()
		if pop != nil {
			report.PopulationObsSummary(os.Stdout, obs.Default)
			fmt.Println()
		}
		if w.Exporter != nil {
			report.SinkObsSummary(os.Stdout, obs.Default)
			fmt.Println()
		}
		if *workersN > 0 {
			report.FabricObsSummary(os.Stdout, obs.Default)
			fmt.Println()
		}
		report.MetricsSummary(os.Stdout, obs.Default)
		fmt.Println()
	}
	if *waterfall > 0 {
		trees := w.Trace.Roots()
		if len(trees) > *waterfall {
			trees = trees[:*waterfall]
		}
		report.Waterfall(os.Stdout, trees)
		fmt.Println()
	}

	if *outDir != "" && needCrawl {
		// Unretained stores were spilled incrementally above; only the
		// retained ones have anything left to export.
		if w.DB.Engine.Retained() {
			writeFile(*outDir, "engine.jsonl", func(f *os.File) { w.DB.Engine.WriteJSONL(f) })
		}
		if w.DB.Native.Retained() {
			writeFile(*outDir, "native.jsonl", func(f *os.File) { w.DB.Native.WriteJSONL(f) })
		}
		writeFile(*outDir, "trace.jsonl", func(f *os.File) { w.Trace.WriteJSONL(f) })
		if *harOut {
			if !w.DB.Engine.Retained() || !w.DB.Native.Retained() {
				fmt.Fprintf(os.Stderr, "panoptes: skipping HAR export for unretained flow databases (-retain=%s)\n", *retain)
			}
			if w.DB.Engine.Retained() {
				writeFile(*outDir, "engine.har", func(f *os.File) { w.DB.Engine.WriteHAR(f) })
			}
			if w.DB.Native.Retained() {
				writeFile(*outDir, "native.har", func(f *os.File) { w.DB.Native.WriteHAR(f) })
			}
		}
		for _, f := range spillFiles {
			if err := f.Sync(); err != nil {
				fatalf("sync %s: %v", f.Name(), err)
			}
		}
		if err := w.DB.Engine.SpillErr(); err != nil {
			fatalf("engine spill: %v", err)
		}
		if err := w.DB.Native.SpillErr(); err != nil {
			fatalf("native spill: %v", err)
		}
		fmt.Fprintf(os.Stderr, "panoptes: flow databases written to %s\n", *outDir)
	}
}

func printTable1(selected []*profiles.Profile) {
	fmt.Println("Table 1 — mobile browser dataset")
	fmt.Printf("%-18s %-18s %-8s %-14s %s\n", "Browser", "Version", "CDP", "DNS", "Package")
	for _, p := range selected {
		cdp := "yes"
		if p.Instrumentation == profiles.InstrumentFrida {
			cdp = "frida"
		}
		fmt.Printf("%-18s %-18s %-8s %-14s %s\n", p.Name, p.Version, cdp, p.DNS, p.Package)
	}
}

func knownNames() string {
	var names []string
	for _, p := range profiles.All() {
		names = append(names, p.Name)
	}
	return strings.Join(names, ", ")
}

func writeFile(dir, name string, write func(*os.File)) {
	f := createFile(dir, name)
	defer f.Close()
	write(f)
}

func createFile(dir, name string) *os.File {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatalf("mkdir %s: %v", dir, err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatalf("create %s: %v", name, err)
	}
	return f
}

func startVirtual() time.Time {
	return time.Date(2023, time.May, 12, 9, 0, 0, 0, time.UTC)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "panoptes: "+format+"\n", args...)
	os.Exit(1)
}
