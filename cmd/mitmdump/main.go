// Command mitmdump runs the Panoptes MITM proxy on real OS sockets as an
// explicit HTTP(S) proxy — the standalone equivalent of the paper's
// mitmproxy deployment. Point any HTTP client at it:
//
//	mitmdump -addr 127.0.0.1:8080 -ca-dir ./ca
//	curl --proxy http://127.0.0.1:8080 --cacert ca/mitm-ca.pem https://example.com/
//
// Every intercepted exchange prints as a flow line; requests carrying
// the taint header (see -token) are classified engine, others native,
// exactly as in the testbed. Flows can be persisted with -out.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"panoptes/internal/capture"
	"panoptes/internal/mitm"
	"panoptes/internal/obs"
	"panoptes/internal/pki"
	"panoptes/internal/sink"
	"panoptes/internal/taint"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:8080", "listen address")
		caDir  = flag.String("ca-dir", "panoptes-ca", "directory for the interception CA (created/reused)")
		token  = flag.String("token", "", "taint token marking engine traffic (default: random)")
		outDir = flag.String("out", "", "directory for JSONL flow databases on exit")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9090)")
		statsEvery  = flag.Duration("stats-every", 10*time.Second, "period of the one-line runtime stats summary (0 disables)")

		sinkSpecs  = flag.String("sink", "", "export sinks, comma-separated: http:URL (NDJSON bulk POST), file:DIR (rotating gzip JSONL), mem (in-memory smoke)")
		sinkBatch  = flag.Int("sink-batch", 0, "export batch size (default 64)")
		sinkQueue  = flag.Int("sink-queue", 0, "in-flight export batches per sink (default 8)")
		sinkPolicy = flag.String("sink-policy", "drop", "full export queue policy: drop (shed batches) or block (backpressure interception)")
	)
	flag.Parse()

	ca, err := loadOrCreateCA(*caDir)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "mitmdump: CA at %s (install %s in your client's trust store)\n",
		*caDir, filepath.Join(*caDir, "mitm-ca.pem"))

	if *token == "" {
		*token = taint.NewToken()
	}
	db := capture.NewDB()
	splitter := taint.NewSplitter(*token, db, nil)

	// Standalone export plane: outside the testbed flows are never tagged
	// with navigation attempts, so each committed flow exports as soon as
	// its batch flushes (wall clock, wall backends).
	var exporter *sink.Exporter
	if *sinkSpecs != "" {
		sinks, err := sink.ParseSpecs(*sinkSpecs)
		if err != nil {
			fatalf("%v", err)
		}
		policy, err := sink.ParsePolicy(*sinkPolicy)
		if err != nil {
			fatalf("%v", err)
		}
		exporter = sink.NewExporter(
			sink.Config{BatchSize: *sinkBatch, Queue: *sinkQueue, Policy: policy},
			sinks...)
		db.SetTap(exporter)
		fmt.Fprintf(os.Stderr, "mitmdump: export plane wired (%d sinks, policy=%s)\n", len(sinks), policy)
	}

	dialer := &net.Dialer{Timeout: 15 * time.Second}
	proxy, err := mitm.New(mitm.Config{
		CA: ca,
		Dial: func(ctx context.Context, a string) (net.Conn, error) {
			return dialer.DialContext(ctx, "tcp", a)
		},
		// UpstreamRoots nil: the system pool validates real servers.
	})
	if err != nil {
		fatalf("%v", err)
	}
	proxy.Use(splitter)
	proxy.Use(printAddon{})

	if *metricsAddr != "" {
		obs.ServeMetrics(*metricsAddr, obs.Default, func(err error) {
			fmt.Fprintf(os.Stderr, "mitmdump: metrics server: %v\n", err)
		})
		fmt.Fprintf(os.Stderr, "mitmdump: observability on http://%s (/metrics, /debug/vars, /debug/pprof)\n", *metricsAddr)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "mitmdump: proxying on %s (taint token %s)\n", *addr, *token)

	done := make(chan struct{})
	if *statsEvery > 0 {
		go statsLoop(*statsEvery, done)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	go func() {
		<-stop
		l.Close()
	}()
	if err := proxy.Serve(l); err != nil {
		fmt.Fprintf(os.Stderr, "mitmdump: serve: %v\n", err)
	}
	close(done)
	if exporter != nil {
		if err := exporter.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "mitmdump: sink close: %v\n", err)
		}
		for _, s := range exporter.Stats() {
			fmt.Fprintf(os.Stderr, "mitmdump: sink %s: %d published, %d dropped, %d breaker opens\n",
				s.Name, s.Published, s.Dropped, s.BreakerOpens)
		}
	}
	printStats()

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err == nil {
			writeStore(filepath.Join(*outDir, "engine.jsonl"), db.Engine)
			writeStore(filepath.Join(*outDir, "native.jsonl"), db.Native)
			fmt.Fprintf(os.Stderr, "mitmdump: %d engine / %d native flows written to %s\n",
				db.Engine.Len(), db.Native.Len(), *outDir)
		}
	}
}

// statsLoop prints the periodic one-line runtime summary, driven by the
// obs registry the proxy instruments itself against. Only deltas make a
// line: an idle proxy stays quiet.
func statsLoop(every time.Duration, done <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	var lastReqs int64
	for {
		select {
		case <-done:
			return
		case <-t.C:
			if reqs := int64(obs.Default.Sum("mitm_requests_total")); reqs != lastReqs {
				lastReqs = reqs
				printStats()
			}
		}
	}
}

// printStats emits the one-line stats summary.
func printStats() {
	r := obs.Default
	fmt.Fprintf(os.Stderr,
		"mitmdump: stats: %d requests (%d https, %d http), %d bytes up / %d down, %d active conns, %d handshake failures, %d resumed handshakes, %d reused conns\n",
		int64(r.Sum("mitm_requests_total")),
		r.Counter("mitm_requests_total", "scheme", "https").Value(),
		r.Counter("mitm_requests_total", "scheme", "http").Value(),
		r.Counter("mitm_bytes_total", "dir", "up").Value(),
		r.Counter("mitm_bytes_total", "dir", "down").Value(),
		int64(r.Gauge("mitm_active_conns").Value()),
		r.Counter("mitm_handshakes_total", "result", "fail").Value(),
		int64(r.Sum("mitm_handshake_resumed_total")),
		r.Counter("mitm_conn_reuse_total", "result", "reused").Value())
}

// printAddon logs each completed flow to stdout.
type printAddon struct{}

func (printAddon) Request(f *capture.Flow, req *http.Request) {}

func (printAddon) Response(f *capture.Flow, resp *http.Response) {
	status := f.Status
	if resp != nil {
		status = resp.StatusCode
	}
	fmt.Printf("[%s] %-6s %s %s://%s%s  %d\n",
		f.Origin, f.Method, f.Time.Format("15:04:05"), f.Scheme, f.Host, f.Path, status)
}

func loadOrCreateCA(dir string) (*pki.CA, error) {
	certPath := filepath.Join(dir, "mitm-ca.pem")
	keyPath := filepath.Join(dir, "mitm-ca-key.pem")
	certPEM, cerr := os.ReadFile(certPath)
	keyPEM, kerr := os.ReadFile(keyPath)
	if cerr == nil && kerr == nil {
		return pki.LoadCA(certPEM, keyPEM, nil)
	}
	ca, err := pki.NewCA("panoptes mitmdump CA", nil)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	if err := os.WriteFile(certPath, ca.PEM(), 0o644); err != nil {
		return nil, err
	}
	kp, err := ca.KeyPEM()
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(keyPath, kp, 0o600); err != nil {
		return nil, err
	}
	return ca, nil
}

func writeStore(path string, s *capture.Store) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close()
	s.WriteJSONL(f)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mitmdump: "+format+"\n", args...)
	os.Exit(1)
}
