// Command hostlist classifies domains against the bundled (or a
// user-supplied) Steven-Black-format hosts list — the Figure 3
// classification step as a standalone tool.
//
// Usage:
//
//	hostlist doubleclick.net example.com stats.g.doubleclick.net
//	hostlist -f my-hosts.txt -q ads.example
//	echo doubleclick.net | hostlist -
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"panoptes/internal/hostlist"
)

func main() {
	var (
		file  = flag.String("f", "", "hosts-list file (default: bundled list)")
		quiet = flag.Bool("q", false, "print only ad-related domains")
	)
	flag.Parse()

	list := hostlist.Bundled()
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hostlist: %v\n", err)
			os.Exit(1)
		}
		list, err = hostlist.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hostlist: %v\n", err)
			os.Exit(1)
		}
	}

	domains := flag.Args()
	if len(domains) == 1 && domains[0] == "-" {
		domains = nil
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			if d := sc.Text(); d != "" {
				domains = append(domains, d)
			}
		}
	}
	if len(domains) == 0 {
		fmt.Fprintln(os.Stderr, "hostlist: no domains given (args or '-' for stdin)")
		os.Exit(2)
	}

	adRelated := 0
	for _, d := range domains {
		cat, ok := list.Match(d)
		switch {
		case !ok && *quiet:
		case !ok:
			fmt.Printf("%-40s clean (registrable: %s)\n", d, hostlist.RegistrableDomain(d))
		case cat.AdRelated():
			adRelated++
			fmt.Printf("%-40s %s (ad-related)\n", d, cat)
		case !*quiet:
			fmt.Printf("%-40s %s\n", d, cat)
		}
	}
	fmt.Fprintf(os.Stderr, "%d/%d ad-related (%.1f%%)\n",
		adRelated, len(domains), 100*float64(adRelated)/float64(len(domains)))
}
