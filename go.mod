module panoptes

go 1.22
