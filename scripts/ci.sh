#!/usr/bin/env sh
# ci.sh — the full local verification gate for Panoptes.
#
# Runs formatting, vet, build and the test suite, then the race detector
# over the packages with the hottest concurrency (the obs registry, the
# MITM proxy and the capture store). Exits non-zero on the first failure.
#
# Usage: scripts/ci.sh   (from the repository root)
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race (obs, mitm, capture)"
go test -race ./internal/obs/... ./internal/mitm/... ./internal/capture/...

echo "==> go test -race (core, leak, pipeline: concurrent scheduler + streaming analyzers)"
go test -race ./internal/core/... ./internal/leak/... ./internal/pipeline/...

echo "==> go test -race (match, pii: shared automaton + dictionary dispatch)"
go test -race ./internal/match/... ./internal/pii/...

echo "==> fault-seed chaos smoke (10% fault rate campaign under -race)"
# A seeded chaos campaign must complete with every browser intact and
# every failed visit classified, and the determinism keystone must hold
# across straight/resumed runs at parallelism 1 and 8.
go test -race -count=1 -run 'TestChaosCampaign|TestFaultCampaignDeterminism' \
    ./internal/core/ ./internal/faultsim/

echo "==> benchmark smoke: crawl scaling (visits/sec, parallelism 1 vs N)"
go test -run '^$' -bench CrawlScaling -benchtime=1x .

echo "==> benchmark smoke: leak scan scaling + mitm body allocs"
bench_out=$(go test -run '^$' -bench 'LeakScanScaling|MitmBodyAlloc' -benchmem -benchtime=1x \
    ./internal/leak/ ./internal/mitm/)
echo "$bench_out"
# Emit a machine-readable baseline (flows/sec and allocs/op per case) so
# perf regressions show up as a diff against the committed BENCH_leakscan.json.
echo "$bench_out" | awk '
BEGIN { print "[" ; first = 1 }
/^Benchmark(LeakScanScaling|MitmBodyAlloc)/ {
    name = $1
    flows = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "flows/sec") flows = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (!first) printf ",\n"
    first = 0
    printf "  {\"bench\": \"%s\", \"flows_per_sec\": \"%s\", \"allocs_per_op\": \"%s\"}", name, flows, allocs
}
END { print "\n]" }' > BENCH_leakscan.json
echo "wrote BENCH_leakscan.json"

echo "==> ci.sh: all checks passed"
