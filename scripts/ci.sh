#!/usr/bin/env sh
# ci.sh — the full local verification gate for Panoptes.
#
# Runs formatting, vet, build and the test suite, then the race detector
# over the packages with the hottest concurrency (the obs registry, the
# MITM proxy and the capture store). Exits non-zero on the first failure.
#
# Usage: scripts/ci.sh   (from the repository root)
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race (obs, mitm, connpool, capture: sharded accept loops + idle pools + flow recycling)"
go test -race ./internal/obs/... ./internal/mitm/... ./internal/connpool/... ./internal/capture/...

echo "==> go test -race (core, leak, pipeline: concurrent scheduler + streaming analyzers)"
go test -race ./internal/core/... ./internal/leak/... ./internal/pipeline/...

echo "==> go test -race (match, pii: shared automaton + dictionary dispatch)"
go test -race ./internal/match/... ./internal/pii/...

echo "==> go test -race (sink, breaker: export dispatchers + shared breakers)"
go test -race ./internal/sink/... ./internal/breaker/...

echo "==> fault-seed chaos smoke (10% fault rate campaign under -race, all transports)"
# A seeded chaos campaign over every data-plane transport (the fleet
# includes h2, WebSocket and DoH speakers) must complete with every
# browser intact and
# every failed visit classified, and the determinism keystones must hold
# across straight/resumed runs at parallelism 1 and 8 — including the
# data-plane contract: warm (resumed TLS + pooled conns, with injected
# pool poison) campaigns byte-identical to the cold full-handshake path,
# and the fabric contract: 1/2/8-worker topologies, including the
# worker-kill chaos variant, byte-identical to the single-process run.
go test -race -count=1 -run 'TestChaosCampaign|TestFaultCampaignDeterminism|TestDataPlaneDeterminism|TestFabricDeterminism' \
    ./internal/core/ ./internal/faultsim/ ./internal/fabric/

echo "==> population engine gate (determinism keystone + 10k-user bounded-residency smoke under -race)"
# The population keystone pins the analyses byte-identical across
# synthesis parallelism 1/8 and pause/resume; the bounded-residency
# smoke runs 10k users under retain=none and requires zero resident
# flows and head-sampling under its cap.
go test -race -count=1 -run 'TestPopulationDeterminism|TestPopulationBoundedResidency' \
    ./internal/popsim/

echo "==> benchmark smoke: crawl scaling (visits/sec, parallelism 1 vs N, warm vs cold data plane)"
crawl_out=$(go test -run '^$' -bench CrawlScaling -benchtime=1x .)
echo "$crawl_out"

echo "==> benchmark smoke: leak scan scaling + mitm body allocs"
# 100 iterations, not 1: the flow-record and body pools only show their
# steady-state allocation profile once warm (a 1x run measures pool
# cold-start, which charges buildFlow the one-time Flow/Headers/Body
# allocations it exists to amortise).
bench_out=$(go test -run '^$' -bench 'LeakScanScaling|MitmBodyAlloc' -benchmem -benchtime=100x \
    ./internal/leak/ ./internal/mitm/)
echo "$bench_out"
# Emit a machine-readable baseline so perf regressions show up as a
# diff against the committed BENCH_*.json files. Only the metrics a
# bench actually reported appear in its row (BenchmarkMitmBodyAlloc has
# no flows/sec; earlier emitters wrote it as an empty string).
emit_bench_json() {
    awk -v pattern="$1" '
BEGIN { print "[" ; first = 1 }
$0 ~ "^Benchmark(" pattern ")" {
    row = "{\"bench\": \"" $1 "\""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "flows/sec")              row = row ", \"flows_per_sec\": \"" $(i - 1) "\""
        if ($(i) == "h1_flows/sec")           row = row ", \"h1_flows_per_sec\": \"" $(i - 1) "\""
        if ($(i) == "h2_flows/sec")           row = row ", \"h2_flows_per_sec\": \"" $(i - 1) "\""
        if ($(i) == "ws_flows/sec")           row = row ", \"ws_flows_per_sec\": \"" $(i - 1) "\""
        if ($(i) == "doh_flows/sec")          row = row ", \"doh_flows_per_sec\": \"" $(i - 1) "\""
        if ($(i) == "allocs/op")              row = row ", \"allocs_per_op\": \"" $(i - 1) "\""
        if ($(i) == "peak_queue_depth")       row = row ", \"peak_queue_depth\": \"" $(i - 1) "\""
        if ($(i) == "visits/sec")             row = row ", \"visits_per_sec\": \"" $(i - 1) "\""
        if ($(i) == "allocs/visit")           row = row ", \"allocs_per_visit\": \"" $(i - 1) "\""
        if ($(i) == "handshake_resumed_pct")  row = row ", \"handshake_resumed_pct\": \"" $(i - 1) "\""
        if ($(i) == "conn_reuse_pct")         row = row ", \"conn_reuse_pct\": \"" $(i - 1) "\""
        if ($(i) == "lease_reclaims")         row = row ", \"lease_reclaims\": \"" $(i - 1) "\""
        if ($(i) == "sessions/sec")           row = row ", \"sessions_per_sec\": \"" $(i - 1) "\""
        if ($(i) == "peak_rss_mb")            row = row ", \"peak_rss_mb\": \"" $(i - 1) "\""
    }
    row = row "}"
    if (!first) printf ",\n"
    first = 0
    printf "  %s", row
}
END { print "\n]" }'
}
echo "$bench_out" | emit_bench_json "LeakScanScaling|MitmBodyAlloc" > BENCH_leakscan.json
echo "wrote BENCH_leakscan.json"

# The crawl baseline pins the end-to-end data plane: visits/sec at
# parallelism 1 and 8 plus the cold (no resumption, no reuse) ablation,
# allocs/visit, the handshake-resumed / conn-reuse rates, and the
# per-transport capture throughput (h1/h2/ws/doh flows per second).
echo "$crawl_out" | emit_bench_json "CrawlScaling" > BENCH_crawl.json
echo "wrote BENCH_crawl.json"

echo "==> benchmark smoke: fabric scaling (visits/sec at 1/2/8 workers + worker-kill reclamation)"
# The fabric baseline pins distributed throughput (8 workers must hold
# ≥3× the 1-worker visits/sec) and proves lease reclamation fires under
# the scripted worker-kill topology (nonzero lease_reclaims).
fabric_out=$(go test -run '^$' -bench FabricScaling -benchtime=1x ./internal/fabric/)
echo "$fabric_out"
echo "$fabric_out" | emit_bench_json "FabricScaling" > BENCH_fabric.json
echo "wrote BENCH_fabric.json"

echo "==> benchmark smoke: sink throughput (flows/sec into a slow sink, queue bound, allocs/op)"
sink_out=$(go test -run '^$' -bench SinkThroughput -benchmem -benchtime=1x ./internal/sink/)
echo "$sink_out"
echo "$sink_out" | emit_bench_json "SinkThroughput" > BENCH_sink.json
echo "wrote BENCH_sink.json"

echo "==> benchmark smoke: population scaling (sessions/sec + peak RSS at 10k/100k/1M users)"
# The population baseline pins the tentpole claim: wall-clock session
# throughput stays flat and peak RSS stays bounded while the simulated
# population grows 100x on the full streaming-analysis plane. The 1M
# point is the long pole (a few minutes of one-core wall time).
pop_out=$(go test -run '^$' -bench PopulationScaling -benchtime=1x -timeout 30m ./internal/popsim/)
echo "$pop_out"
echo "$pop_out" | emit_bench_json "PopulationScaling" > BENCH_population.json
echo "wrote BENCH_population.json"

echo "==> ci.sh: all checks passed"
