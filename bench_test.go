// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation, each regenerating its result from a shared crawl
// (workload generation → instrumented crawl → analysis → rendering), plus
// the ablation benchmarks DESIGN.md calls out. Custom metrics attach the
// headline numbers (ratios, percentages) to the benchmark output so a
// run doubles as a results table.
package panoptes

import (
	"encoding/base64"
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"panoptes/internal/analysis"
	"panoptes/internal/blocker"
	"panoptes/internal/capture"
	"panoptes/internal/core"
	"panoptes/internal/leak"
	"panoptes/internal/netfilter"
	"panoptes/internal/profiles"
	"panoptes/internal/report"
	"panoptes/internal/websim"
)

// benchStudy is the shared crawl every figure/table benchmark analyses:
// all 15 browsers over a 16-site list, plus the per-browser idle runs.
var benchStudy struct {
	once  sync.Once
	world *core.World
	idle  map[string]*core.IdleResult
	names []string
	err   error
}

func study(b *testing.B) (*core.World, []string) {
	b.Helper()
	benchStudy.once.Do(func() {
		w, err := core.NewWorld(core.WorldConfig{Sites: 16})
		if err != nil {
			benchStudy.err = err
			return
		}
		if _, err := w.RunCampaign(core.CampaignConfig{}); err != nil {
			benchStudy.err = err
			return
		}
		// The idle experiment runs in its own world so its native flows
		// do not inflate the crawl's Figure 2/4 statistics.
		wIdle, err := core.NewWorld(core.WorldConfig{Sites: 4})
		if err != nil {
			benchStudy.err = err
			return
		}
		idle, err := wIdle.RunIdleAll(10 * time.Minute)
		if err != nil {
			benchStudy.err = err
			return
		}
		wIdle.Close()
		benchStudy.world = w
		benchStudy.idle = idle
		for _, p := range profiles.All() {
			benchStudy.names = append(benchStudy.names, p.Name)
		}
	})
	if benchStudy.err != nil {
		b.Fatal(benchStudy.err)
	}
	return benchStudy.world, benchStudy.names
}

// BenchmarkTable1Dataset regenerates Table 1 (the browser dataset).
func BenchmarkTable1Dataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		all := profiles.All()
		if len(all) != 15 {
			b.Fatal("dataset size")
		}
		for _, p := range all {
			fmt.Fprintf(io.Discard, "%s %s\n", p.Name, p.Version)
		}
	}
}

// BenchmarkFig2RequestCounts regenerates Figure 2 and reports the two
// headline ratios.
func BenchmarkFig2RequestCounts(b *testing.B) {
	w, names := study(b)
	var rows []analysis.Fig2Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = analysis.Fig2(w.DB, names)
		report.Fig2(io.Discard, rows)
	}
	for _, r := range rows {
		switch r.Browser {
		case "Edge":
			b.ReportMetric(r.Ratio, "edge_ratio")
		case "Yandex":
			b.ReportMetric(r.Ratio, "yandex_ratio")
		}
	}
}

// BenchmarkFig3AdDomains regenerates Figure 3 and reports Kiwi's share.
func BenchmarkFig3AdDomains(b *testing.B) {
	w, names := study(b)
	var rows []analysis.Fig3Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = analysis.Fig3(w.DB.Native, w.Hostlist, names)
		report.Fig3(io.Discard, rows)
	}
	for _, r := range rows {
		if r.Browser == "Kiwi" {
			b.ReportMetric(r.AdPct, "kiwi_ad_pct")
		}
	}
}

// BenchmarkFig4TrafficVolume regenerates Figure 4 and reports QQ's
// overhead.
func BenchmarkFig4TrafficVolume(b *testing.B) {
	w, names := study(b)
	var rows []analysis.Fig4Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = analysis.Fig4(w.DB, names)
		report.Fig4(io.Discard, rows)
	}
	for _, r := range rows {
		if r.Browser == "QQ" {
			b.ReportMetric(r.OverheadPct, "qq_overhead_pct")
		}
	}
}

// BenchmarkTable2PIIMatrix regenerates the PII leak matrix.
func BenchmarkTable2PIIMatrix(b *testing.B) {
	w, names := study(b)
	b.ResetTimer()
	var leakers int
	for i := 0; i < b.N; i++ {
		m, _ := analysis.Table2(w.DB.Native, names)
		report.Table2(io.Discard, m, names)
		leakers = 0
		for _, n := range names {
			if m.Count(n) > 0 {
				leakers++
			}
		}
	}
	b.ReportMetric(float64(leakers), "browsers_leaking_pii")
}

// BenchmarkFig5IdleTimeline regenerates the idle timelines and reports
// Opera's linearity against the burst-shaped field.
func BenchmarkFig5IdleTimeline(b *testing.B) {
	w, names := study(b)
	_ = w
	var series []analysis.Fig5Series
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series = series[:0]
		for _, n := range names {
			r := benchStudy.idle[n]
			series = append(series, analysis.Fig5(n, r.Flows, r.Start, 10*time.Minute, 10))
		}
		report.Fig5(io.Discard, series)
	}
	for _, s := range series {
		if s.Browser == "Opera" {
			b.ReportMetric(s.LinearityScore(), "opera_linearity")
		}
		if s.Browser == "Dolphin" {
			b.ReportMetric(s.DestShares["facebook.com"], "dolphin_fb_pct")
		}
	}
}

// BenchmarkHistoryLeakDetection regenerates the §3.2 leak findings.
func BenchmarkHistoryLeakDetection(b *testing.B) {
	w, _ := study(b)
	var findings []leak.Finding
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		findings = analysis.HistoryLeaksWithInjected(w.DB, []string{"UC International"})
	}
	full := map[string]bool{}
	for _, f := range findings {
		if f.Kind == leak.KindFullURL {
			full[f.Browser] = true
		}
	}
	b.ReportMetric(float64(len(full)), "full_url_leakers")
}

// BenchmarkIncognitoLeaks runs a fresh incognito crawl per iteration and
// reports how many leaks survive private mode.
func BenchmarkIncognitoLeaks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := core.NewWorld(core.WorldConfig{
			Sites:    6,
			Profiles: []*profiles.Profile{profiles.Edge(), profiles.Opera()},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.RunCampaign(core.CampaignConfig{Incognito: true}); err != nil {
			b.Fatal(err)
		}
		incog := 0
		for _, f := range analysis.HistoryLeaks(w.DB.Native) {
			if f.Incognito {
				incog++
			}
		}
		if incog == 0 {
			b.Fatal("no incognito leaks detected")
		}
		b.ReportMetric(float64(incog), "incognito_leaks")
		w.Close()
	}
}

// BenchmarkSensitiveLeaks crawls sensitive-category sites and verifies
// the absence of local filtering.
func BenchmarkSensitiveLeaks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := core.NewWorld(core.WorldConfig{
			Sites:    8,
			Profiles: []*profiles.Profile{profiles.Yandex()},
		})
		if err != nil {
			b.Fatal(err)
		}
		var sensitive []*websim.Site
		for _, s := range w.Sites {
			if s.Category.Sensitive() {
				sensitive = append(sensitive, s)
			}
		}
		if _, err := w.RunCampaign(core.CampaignConfig{Sites: sensitive}); err != nil {
			b.Fatal(err)
		}
		leaks := 0
		for _, f := range analysis.HistoryLeaks(w.DB.Native) {
			if f.Kind == leak.KindFullURL {
				leaks++
			}
		}
		if leaks < len(sensitive) {
			b.Fatalf("only %d/%d sensitive visits leaked", leaks, len(sensitive))
		}
		b.ReportMetric(float64(leaks)/float64(len(sensitive)), "leaks_per_sensitive_visit")
		w.Close()
	}
}

// BenchmarkGeoTransfers regenerates the §3.4 mapping.
func BenchmarkGeoTransfers(b *testing.B) {
	w, _ := study(b)
	geo, err := w.GeoDB()
	if err != nil {
		b.Fatal(err)
	}
	findings := analysis.HistoryLeaksWithInjected(w.DB, []string{"UC International"})
	var rows []analysis.GeoRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = analysis.GeoTransfers(findings, w.Inet, geo)
		if err != nil {
			b.Fatal(err)
		}
		report.Geo(io.Discard, rows)
	}
	outside := 0
	for _, r := range rows {
		if !r.InEU && r.Kind == leak.KindFullURL {
			outside++
		}
	}
	b.ReportMetric(float64(outside), "full_url_receivers_outside_eu")
}

// BenchmarkListing1OperaAdRequest regenerates the captured Opera OLeads
// request.
func BenchmarkListing1OperaAdRequest(b *testing.B) {
	w, _ := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, _ := analysis.Listing1(w.DB.Native)
		if body == "" {
			b.Fatal("listing 1 not captured")
		}
		report.Listing1(io.Discard, body)
	}
}

// --- Ablation benchmarks (DESIGN.md §4) ---

// BenchmarkAblationUIDOnlySplit compares taint-based splitting against
// UID-only attribution: the latter cannot separate engine from native
// traffic at all, collapsing Figures 2–4 into single per-app totals.
func BenchmarkAblationUIDOnlySplit(b *testing.B) {
	w, names := study(b)
	b.ResetTimer()
	var lost int
	for i := 0; i < b.N; i++ {
		totals := analysis.UIDOnlySplit(w.DB, names)
		rows := analysis.Fig2(w.DB, names)
		lost = 0
		for _, r := range rows {
			// Native requests indistinguishable from engine ones under
			// UID-only attribution.
			if totals[r.Browser] > 0 {
				lost += r.Native
			}
		}
	}
	b.ReportMetric(float64(lost), "native_reqs_unattributable")
}

// BenchmarkAblationPinningLoss measures the flows lost to certificate
// pinning under transparent interception (paper footnote 3): QQ's pinned
// endpoint never completes through the proxy.
func BenchmarkAblationPinningLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := core.NewWorld(core.WorldConfig{
			Sites: 6, Profiles: []*profiles.Profile{profiles.QQ()},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.RunCampaign(core.CampaignConfig{}); err != nil {
			b.Fatal(err)
		}
		fails := w.Proxy.HandshakeFailures()
		if fails == 0 {
			b.Fatal("pinning produced no handshake failures")
		}
		b.ReportMetric(float64(fails), "pinned_handshake_failures")
		w.Close()
	}
}

// BenchmarkAblationCertCache compares leaf-certificate minting costs with
// the cache on and off across a fixed crawl.
func BenchmarkAblationCertCache(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "cache=on"
		if disable {
			name = "cache=off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := core.NewWorld(core.WorldConfig{
					Sites: 6, Profiles: []*profiles.Profile{profiles.Chrome()},
					DisableCertCache: disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := w.RunCampaign(core.CampaignConfig{}); err != nil {
					b.Fatal(err)
				}
				hits, misses := w.Proxy.CertCacheStats()
				b.ReportMetric(float64(misses), "leaf_certs_minted")
				if hits+misses > 0 {
					b.ReportMetric(100*float64(hits)/float64(hits+misses), "cert_cache_hit_pct")
				}
				w.Close()
			}
		})
	}
}

// BenchmarkAblationKeepAlive compares upstream connection reuse on/off.
func BenchmarkAblationKeepAlive(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "keepalive=on"
		if disable {
			name = "keepalive=off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := core.NewWorld(core.WorldConfig{
					Sites: 6, Profiles: []*profiles.Profile{profiles.Chrome()},
					DisableKeepAlive: disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := w.RunCampaign(core.CampaignConfig{}); err != nil {
					b.Fatal(err)
				}
				w.Close()
			}
		})
	}
}

// BenchmarkAblationH3Block evaluates the UDP/443 DROP rule: with it, a
// QUIC-capable browser falls back to proxied TCP; without it, those
// flows would bypass the MITM proxy entirely and go unmeasured.
func BenchmarkAblationH3Block(b *testing.B) {
	mkStack := func(withBlock bool) *netfilter.Stack {
		s := netfilter.NewStack()
		s.Exec("-t nat -A OUTPUT -p tcp -m owner --uid-owner 10089 -j REDIRECT --to 192.168.1.100:8080")
		if withBlock {
			s.Exec("-t filter -A OUTPUT -p udp --dport 443 -j DROP")
		}
		return s
	}
	for _, withBlock := range []bool{true, false} {
		name := "h3block=on"
		if !withBlock {
			name = "h3block=off"
		}
		b.Run(name, func(b *testing.B) {
			s := mkStack(withBlock)
			missed := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				missed = 0
				for j := 0; j < 1000; j++ {
					// A QUIC attempt: UDP to port 443.
					res, err := s.EvalOutput(netfilter.Packet{
						Proto: netfilter.ProtoUDP, DstPort: 443, OwnerUID: 10089,
					})
					if err != nil {
						b.Fatal(err)
					}
					// ACCEPTed QUIC bypasses the TCP-only proxy redirect:
					// the flow escapes measurement.
					if res.Verdict == netfilter.VerdictAccept {
						missed++
					}
				}
			}
			b.ReportMetric(float64(missed), "flows_bypassing_proxy")
		})
	}
}

// BenchmarkAblationLeakEncodings compares the plain-only detector against
// the full encoding set on a store of Base64-encoded leaks (Yandex's
// actual wire format).
func BenchmarkAblationLeakEncodings(b *testing.B) {
	store := capture.NewStore()
	visit := "https://mentalhealth-support.org/"
	for i := 0; i < 200; i++ {
		store.Add(&capture.Flow{
			ID: capture.NextFlowID(), Browser: "Yandex", Host: "sba.yandex.net",
			Path: "/safebrowsing/check", VisitURL: visit,
			RawQuery: "url=" + base64.StdEncoding.EncodeToString([]byte(visit)),
		})
	}
	for _, full := range []bool{true, false} {
		name := "encodings=full"
		det := leak.NewDetector()
		if !full {
			name = "encodings=plain"
			det = &leak.Detector{Encodings: leak.PlainOnly()}
		}
		b.Run(name, func(b *testing.B) {
			var found int
			for i := 0; i < b.N; i++ {
				found = len(det.Scan(store))
			}
			b.ReportMetric(float64(found)/200*100, "detection_pct")
		})
	}
}

// BenchmarkCountermeasure evaluates the blocker prototype (internal/
// blocker, the paper's §4 "countermeasures" direction): block rate on
// native tracking, zero interference with engine traffic.
func BenchmarkCountermeasure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := core.NewWorld(core.WorldConfig{
			Sites:    6,
			Profiles: []*profiles.Profile{profiles.Yandex(), profiles.Whale()},
		})
		if err != nil {
			b.Fatal(err)
		}
		blk := blocker.New(blocker.DefaultPolicy(), w.Hostlist)
		w.Proxy.Use(blk)
		res, err := w.RunCampaign(core.CampaignConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Errors != 0 {
			b.Fatalf("blocker broke %d navigations", res.Errors)
		}
		if got := w.Vendors.Backend("sba.yandex.net").Count(); got != 0 {
			b.Fatalf("%d history reports leaked past the blocker", got)
		}
		s := blk.Stats()
		b.ReportMetric(100*float64(s.NativeBlocked)/float64(s.NativeExamined), "native_block_pct")
		b.ReportMetric(float64(s.EnginePassed), "engine_flows_untouched")
		w.Close()
	}
}

// BenchmarkStreamingRetention runs the same crawl with flow retention
// on and off: the streaming analyzers make the figures independent of
// the stores, so retain=none should hold resident flows (and retained
// bytes) at zero with no visible throughput cost — the memory-bound
// axis for paper-scale (1000-site) campaigns.
func BenchmarkStreamingRetention(b *testing.B) {
	for _, retain := range []capture.RetainMode{capture.RetainAll, capture.RetainNone} {
		name := "retain=all"
		if retain == capture.RetainNone {
			name = "retain=none"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				start := time.Now()
				w, err := core.NewWorld(core.WorldConfig{
					Sites:    8,
					Profiles: []*profiles.Profile{profiles.Chrome(), profiles.Yandex(), profiles.Opera()},
					Retain:   retain,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := w.RunCampaign(core.CampaignConfig{Parallelism: 4})
				if err != nil {
					b.Fatal(err)
				}
				elapsed := time.Since(start).Seconds()
				if rows := w.Suite.Fig2.Rows(); len(rows) == 0 {
					b.Fatal("streaming suite produced no Figure 2 rows")
				}
				resident := w.DB.Engine.Len() + w.DB.Native.Len() +
					w.DB.Engine.Pending() + w.DB.Native.Pending()
				if retain == capture.RetainNone && resident != 0 {
					b.Fatalf("retain=none left %d flows resident", resident)
				}
				b.ReportMetric(float64(len(res.Visits))/elapsed, "visits/sec")
				b.ReportMetric(float64(resident), "resident_flows")
				b.ReportMetric(float64(w.DB.Engine.TotalBytes(false)+w.DB.Native.TotalBytes(false)), "bytes_retained")
				w.Close()
			}
		})
	}
}

// BenchmarkAnalysisStreamingVsBatch compares producing every figure
// from the live streaming suite (already folded in during the crawl —
// rendering is all that remains) against replaying the retained stores
// through the batch wrappers.
func BenchmarkAnalysisStreamingVsBatch(b *testing.B) {
	w, names := study(b)
	b.Run("streaming", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			report.Fig2(io.Discard, w.Suite.Fig2.Rows())
			report.Fig3(io.Discard, w.Suite.Fig3.Rows())
			report.Fig4(io.Discard, w.Suite.Fig4.Rows())
			report.Table2(io.Discard, w.Suite.PII.Matrix(), names)
			report.Leaks(io.Discard, leak.Summarise(w.Suite.LeakNative.Findings()))
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			report.Fig2(io.Discard, analysis.Fig2(w.DB, names))
			report.Fig3(io.Discard, analysis.Fig3(w.DB.Native, w.Hostlist, names))
			report.Fig4(io.Discard, analysis.Fig4(w.DB, names))
			m, _ := analysis.Table2(w.DB.Native, names)
			report.Table2(io.Discard, m, names)
			report.Leaks(io.Discard, leak.Summarise(analysis.HistoryLeaks(w.DB.Native)))
		}
	})
}

// BenchmarkCrawlScaling measures end-to-end crawl throughput (visits per
// second of wall clock) along two axes: site count on a single browser
// (sites=N, the per-visit cost sweep) and scheduler parallelism on the
// full 15-browser fleet (parallel=N, the concurrent-campaign sweep the
// paper-scale crawl depends on). Flow throughput is read from each
// world's own stores, not the process-cumulative obs counters — those
// double-count when benchmarks repeat, run in parallel or with -cpu.
func BenchmarkCrawlScaling(b *testing.B) {
	crawl := func(b *testing.B, cfg core.WorldConfig, parallelism int) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			w, err := core.NewWorld(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var before runtime.MemStats
			runtime.ReadMemStats(&before)
			res, err := w.RunCampaign(core.CampaignConfig{Parallelism: parallelism})
			if err != nil {
				b.Fatal(err)
			}
			elapsed := time.Since(start).Seconds()
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			b.ReportMetric(float64(len(res.Visits))/elapsed, "visits/sec")
			b.ReportMetric(float64(w.DB.Engine.Len()+w.DB.Native.Len())/elapsed, "flows/sec")
			if n := len(res.Visits); n > 0 {
				b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(n), "allocs/visit")
			}
			// Data-plane warmth: what fraction of the proxy's handshakes
			// were TLS resumptions, and of its upstream exchanges rode a
			// pooled connection.
			cr, cf, ur, uf := w.Proxy.ResumptionStats()
			if hs := cr + cf + ur + uf; hs > 0 {
				b.ReportMetric(100*float64(cr+ur)/float64(hs), "handshake_resumed_pct")
			}
			reused, dialed := w.Proxy.ConnReuseStats()
			if ex := reused + dialed; ex > 0 {
				b.ReportMetric(100*float64(reused)/float64(ex), "conn_reuse_pct")
			}
			// Per-transport throughput: how much of the capture rate each
			// data-plane protocol contributes (the streaming suite's rows
			// are per-world, unlike the process-global obs counters).
			var h1, h2, ws, doh int
			for _, r := range w.Suite.Transport.Rows() {
				h1 += r.H1
				h2 += r.H2
				ws += r.WS
				doh += r.DoH
			}
			b.ReportMetric(float64(h1)/elapsed, "h1_flows/sec")
			b.ReportMetric(float64(h2)/elapsed, "h2_flows/sec")
			b.ReportMetric(float64(ws)/elapsed, "ws_flows/sec")
			b.ReportMetric(float64(doh)/elapsed, "doh_flows/sec")
			w.Close()
		}
	}

	// The sites axis pairs Chrome with Dolphin so every transport moves:
	// Chrome alone keeps the ws_flows/sec metric pinned at zero (no
	// browser in the fleet but Dolphin pushes WebSocket telemetry).
	for _, sites := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("sites=%d", sites), func(b *testing.B) {
			crawl(b, core.WorldConfig{Sites: sites,
				Profiles: []*profiles.Profile{profiles.Chrome(), profiles.Dolphin()}}, 1)
		})
	}
	// The parallel axis models a wide-area RTT on each proxied exchange
	// (WorldConfig.UpstreamRTT). The zero-latency in-memory network leaves
	// a crawl purely CPU-bound, which on a single-core host would misreport
	// the scheduler as useless; the crawl the paper ran is network-bound,
	// and overlapping those waits across browsers is exactly what campaign
	// parallelism buys.
	const benchRTT = 10 * time.Millisecond
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			// nil Profiles = the full 15-browser fleet.
			crawl(b, core.WorldConfig{Sites: 4, UpstreamRTT: benchRTT}, par)
		})
	}
	// The cold ablation is the pre-reuse data plane: no upstream pool,
	// no TLS session resumption, so every exchange pays the dial and
	// handshake flights a warm connection skips. The warm/cold ratio at
	// parallelism 8 is the headline data-plane speedup.
	b.Run("cold/parallel=8", func(b *testing.B) {
		crawl(b, core.WorldConfig{
			Sites:            4,
			UpstreamRTT:      benchRTT,
			DisableKeepAlive: true,
			DisableTLSResume: true,
		}, 8)
	})
}
