// Package breaker is a small, dependency-free consecutive-failure
// circuit breaker driven by an externally supplied clock. It was hoisted
// out of internal/core (PR 3's campaign breakers) so that every layer
// needing failure isolation — the campaign scheduler's per-host and
// per-browser breakers, the export plane's per-sink breakers — shares
// one tested implementation. The package is deliberately clock-agnostic:
// callers pass the "now" they run on (the deterministic virtual clock in
// the testbed, the wall clock in standalone binaries), which keeps the
// determinism contract in the callers' hands.
package breaker

import (
	"sync"
	"time"
)

// Breaker is a consecutive-failure circuit breaker. After Threshold
// consecutive failures it opens for Cooldown; while open, callers skip
// the protected operation instead of burning retries against a target
// that is clearly down. What counts as one outcome is the caller's
// choice — the campaign scheduler records committed visit outcomes (not
// individual attempts) so converging fault plans never trip it; the
// export plane records batch publishes.
//
// Once the cooldown elapses the breaker is half-open: Allow admits
// exactly one probe, and concurrent callers are refused until that
// probe's outcome is Recorded. A successful probe closes the breaker
// fully; a failed probe counts into a fresh failure streak (so a
// threshold-N breaker needs N post-cooldown failures to reopen). A
// probe whose caller never Records — the campaign scheduler can skip a
// visit after Allow when a second breaker vetoes it — goes stale after
// one further cooldown, at which point the next Allow claims a new
// probe instead of wedging the breaker half-open forever.
type Breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	fails     int
	openUntil time.Time
	opened    bool      // breaker has tripped and not yet seen a successful probe
	probing   bool      // a half-open probe is in flight
	probeAt   time.Time // when the in-flight probe was admitted
}

// New returns a closed breaker that opens after threshold consecutive
// failures and stays open for cooldown.
func New(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether the protected operation may run at now. On a
// previously-tripped breaker whose cooldown has elapsed it admits a
// single half-open probe; further calls return false until that probe
// is Recorded or goes stale (one cooldown after it was admitted).
func (br *Breaker) Allow(now time.Time) bool {
	br.mu.Lock()
	defer br.mu.Unlock()
	if now.Before(br.openUntil) {
		return false
	}
	if !br.opened {
		return true
	}
	if br.probing && now.Before(br.probeAt.Add(br.cooldown)) {
		return false
	}
	br.probing = true
	br.probeAt = now
	return true
}

// Record feeds one outcome in; it returns true when this failure opened
// the breaker (callers bump their open-transition counter on it). A
// success resets the consecutive-failure count and, after a trip, fully
// closes a half-open breaker.
func (br *Breaker) Record(ok bool, now time.Time) bool {
	br.mu.Lock()
	defer br.mu.Unlock()
	br.probing = false
	if ok {
		br.fails = 0
		br.opened = false
		return false
	}
	br.fails++
	if br.fails < br.threshold {
		return false
	}
	br.fails = 0
	br.opened = true
	br.openUntil = now.Add(br.cooldown)
	return true
}

// Set is a lazily-populated keyed breaker map (the campaign's per-host
// breakers are shared by every worker; per-browser breakers live in the
// worker). All breakers in a set share one threshold and cooldown.
type Set struct {
	threshold int
	cooldown  time.Duration

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewSet returns an empty keyed set.
func NewSet(threshold int, cooldown time.Duration) *Set {
	return &Set{threshold: threshold, cooldown: cooldown, m: make(map[string]*Breaker)}
}

// Get returns the breaker for key, creating it closed on first use.
func (s *Set) Get(key string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	br := s.m[key]
	if br == nil {
		br = New(s.threshold, s.cooldown)
		s.m[key] = br
	}
	return br
}
