package breaker

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2023, time.May, 12, 9, 0, 0, 0, time.UTC)

func TestOpensAfterThresholdConsecutiveFailures(t *testing.T) {
	br := New(3, time.Minute)
	now := epoch
	if !br.Allow(now) {
		t.Fatal("new breaker must start closed")
	}
	if br.Record(false, now) {
		t.Fatal("opened after 1 failure, threshold 3")
	}
	if br.Record(false, now) {
		t.Fatal("opened after 2 failures, threshold 3")
	}
	if !br.Record(false, now) {
		t.Fatal("third consecutive failure must open the breaker")
	}
	if br.Allow(now) {
		t.Fatal("open breaker must not allow")
	}
}

func TestSuccessResetsFailureStreak(t *testing.T) {
	br := New(3, time.Minute)
	now := epoch
	br.Record(false, now)
	br.Record(false, now)
	br.Record(true, now) // streak broken
	br.Record(false, now)
	if br.Record(false, now) {
		t.Fatal("two failures after a success must not open a threshold-3 breaker")
	}
	if !br.Record(false, now) {
		t.Fatal("third failure of the new streak must open")
	}
}

func TestCooldownExpiry(t *testing.T) {
	br := New(1, time.Minute)
	now := epoch
	if !br.Record(false, now) {
		t.Fatal("threshold-1 breaker must open on first failure")
	}
	if br.Allow(now.Add(59 * time.Second)) {
		t.Fatal("breaker allowed inside the cooldown window")
	}
	if !br.Allow(now.Add(time.Minute)) {
		t.Fatal("breaker must close once the cooldown elapses")
	}
}

func TestReopenAfterCooldown(t *testing.T) {
	br := New(2, time.Minute)
	now := epoch
	br.Record(false, now)
	if !br.Record(false, now) {
		t.Fatal("must open")
	}
	later := now.Add(2 * time.Minute)
	if !br.Allow(later) {
		t.Fatal("cooldown elapsed")
	}
	// The streak was reset on open: two fresh failures are needed again.
	if br.Record(false, later) {
		t.Fatal("single post-cooldown failure must not reopen a threshold-2 breaker")
	}
	if !br.Record(false, later) {
		t.Fatal("second post-cooldown failure must reopen")
	}
}

func TestSetKeysAreIndependent(t *testing.T) {
	s := NewSet(1, time.Minute)
	now := epoch
	if s.Get("a") != s.Get("a") {
		t.Fatal("Get must return the same breaker for one key")
	}
	s.Get("a").Record(false, now)
	if s.Get("a").Allow(now) {
		t.Fatal("key a must be open")
	}
	if !s.Get("b").Allow(now) {
		t.Fatal("key b must be unaffected by key a's failures")
	}
}

func TestConcurrentRecordAllow(t *testing.T) {
	br := New(5, time.Minute)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(fail bool) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				br.Record(fail, epoch)
				br.Allow(epoch)
			}
		}(i%2 == 0)
	}
	wg.Wait()
}
