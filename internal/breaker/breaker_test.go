package breaker

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var epoch = time.Date(2023, time.May, 12, 9, 0, 0, 0, time.UTC)

func TestOpensAfterThresholdConsecutiveFailures(t *testing.T) {
	br := New(3, time.Minute)
	now := epoch
	if !br.Allow(now) {
		t.Fatal("new breaker must start closed")
	}
	if br.Record(false, now) {
		t.Fatal("opened after 1 failure, threshold 3")
	}
	if br.Record(false, now) {
		t.Fatal("opened after 2 failures, threshold 3")
	}
	if !br.Record(false, now) {
		t.Fatal("third consecutive failure must open the breaker")
	}
	if br.Allow(now) {
		t.Fatal("open breaker must not allow")
	}
}

func TestSuccessResetsFailureStreak(t *testing.T) {
	br := New(3, time.Minute)
	now := epoch
	br.Record(false, now)
	br.Record(false, now)
	br.Record(true, now) // streak broken
	br.Record(false, now)
	if br.Record(false, now) {
		t.Fatal("two failures after a success must not open a threshold-3 breaker")
	}
	if !br.Record(false, now) {
		t.Fatal("third failure of the new streak must open")
	}
}

func TestCooldownExpiry(t *testing.T) {
	br := New(1, time.Minute)
	now := epoch
	if !br.Record(false, now) {
		t.Fatal("threshold-1 breaker must open on first failure")
	}
	if br.Allow(now.Add(59 * time.Second)) {
		t.Fatal("breaker allowed inside the cooldown window")
	}
	if !br.Allow(now.Add(time.Minute)) {
		t.Fatal("breaker must close once the cooldown elapses")
	}
}

func TestReopenAfterCooldown(t *testing.T) {
	br := New(2, time.Minute)
	now := epoch
	br.Record(false, now)
	if !br.Record(false, now) {
		t.Fatal("must open")
	}
	later := now.Add(2 * time.Minute)
	if !br.Allow(later) {
		t.Fatal("cooldown elapsed")
	}
	// The streak was reset on open: two fresh failures are needed again.
	if br.Record(false, later) {
		t.Fatal("single post-cooldown failure must not reopen a threshold-2 breaker")
	}
	if !br.Record(false, later) {
		t.Fatal("second post-cooldown failure must reopen")
	}
}

func TestSetKeysAreIndependent(t *testing.T) {
	s := NewSet(1, time.Minute)
	now := epoch
	if s.Get("a") != s.Get("a") {
		t.Fatal("Get must return the same breaker for one key")
	}
	s.Get("a").Record(false, now)
	if s.Get("a").Allow(now) {
		t.Fatal("key a must be open")
	}
	if !s.Get("b").Allow(now) {
		t.Fatal("key b must be unaffected by key a's failures")
	}
}

func TestHalfOpenAdmitsSingleProbe(t *testing.T) {
	br := New(1, time.Minute)
	now := epoch
	br.Record(false, now) // open
	later := now.Add(time.Minute)
	if !br.Allow(later) {
		t.Fatal("cooldown elapsed: first caller must get the half-open probe")
	}
	if br.Allow(later) {
		t.Fatal("second caller must be refused while the probe is in flight")
	}
	if br.Allow(later.Add(30 * time.Second)) {
		t.Fatal("probe still fresh: concurrent callers stay refused")
	}
	// The probe succeeds: the breaker closes fully, no more gating.
	br.Record(true, later)
	if !br.Allow(later) || !br.Allow(later) {
		t.Fatal("a successful probe must close the breaker for everyone")
	}
}

func TestHalfOpenProbeFailureReopens(t *testing.T) {
	br := New(1, time.Minute)
	now := epoch
	br.Record(false, now)
	later := now.Add(2 * time.Minute)
	if !br.Allow(later) {
		t.Fatal("must admit the probe")
	}
	if !br.Record(false, later) {
		t.Fatal("threshold-1: failed probe must reopen the breaker")
	}
	if br.Allow(later.Add(30 * time.Second)) {
		t.Fatal("reopened breaker must refuse inside the new cooldown")
	}
}

func TestHalfOpenStaleProbeExpires(t *testing.T) {
	br := New(1, time.Minute)
	now := epoch
	br.Record(false, now)
	probeAt := now.Add(time.Minute)
	if !br.Allow(probeAt) {
		t.Fatal("must admit the probe")
	}
	// The probe's caller never Records (e.g. the visit was vetoed by a
	// second breaker). One cooldown later the claim expires and a new
	// probe is admitted instead of the breaker wedging half-open.
	if br.Allow(probeAt.Add(59 * time.Second)) {
		t.Fatal("unexpired probe claim must still refuse others")
	}
	if !br.Allow(probeAt.Add(time.Minute)) {
		t.Fatal("stale probe must expire so a new probe can be admitted")
	}
}

func TestHalfOpenConcurrentProbes(t *testing.T) {
	br := New(1, time.Minute)
	br.Record(false, epoch)
	later := epoch.Add(time.Minute)

	var wg sync.WaitGroup
	var admitted atomic.Int32
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if br.Allow(later) {
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("half-open breaker admitted %d concurrent probes, want exactly 1", got)
	}
	br.Record(true, later)
	admitted.Store(0)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if br.Allow(later) {
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != 32 {
		t.Fatalf("closed breaker admitted %d of 32 callers, want all", got)
	}
}

func TestConcurrentRecordAllow(t *testing.T) {
	br := New(5, time.Minute)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(fail bool) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				br.Record(fail, epoch)
				br.Allow(epoch)
			}
		}(i%2 == 0)
	}
	wg.Wait()
}
