// Package pii extracts Personally Identifying Information and
// device-specific identifiers from captured native flows, reproducing
// the paper's §3.3 methodology: keyword matching (via regular
// expressions) and value heuristics over the URL parameters and bodies
// of natively generated requests. Like the paper, it excludes the
// Android version and device model reported in the User-Agent header,
// which every vendor sends for compatibility.
//
// The result is Table 2: a browsers × attributes leak matrix.
package pii

import (
	"encoding/base64"
	"net/url"
	"regexp"
	"sort"
	"strings"

	"panoptes/internal/capture"
)

// Attribute is one Table 2 column.
type Attribute string

// Attributes, in the paper's column order.
const (
	AttrDeviceType  Attribute = "Device Type"
	AttrDeviceManuf Attribute = "Device Manuf."
	AttrTimezone    Attribute = "Timezone"
	AttrResolution  Attribute = "Resolution"
	AttrLocalIP     Attribute = "Local IP"
	AttrDPI         Attribute = "DPI"
	AttrRooted      Attribute = "Rooted Status"
	AttrLocale      Attribute = "Locale"
	AttrCountry     Attribute = "Country"
	AttrLocation    Attribute = "Location (lat & long)"
	AttrConnType    Attribute = "Connection Type"
	AttrNetType     Attribute = "Network Type"
)

// Columns returns the attributes in presentation order.
func Columns() []Attribute {
	return []Attribute{
		AttrDeviceType, AttrDeviceManuf, AttrTimezone, AttrResolution,
		AttrLocalIP, AttrDPI, AttrRooted, AttrLocale, AttrCountry,
		AttrLocation, AttrConnType, AttrNetType,
	}
}

// detector recognises one attribute by key pattern and/or value pattern.
type detector struct {
	attr Attribute
	// keyPat matches a parameter/field name.
	keyPat *regexp.Regexp
	// valPat, when set, must also match the value (heuristics).
	valPat *regexp.Regexp
	// valOnly, when set, matches on value alone regardless of key.
	valOnly *regexp.Regexp
}

var detectors = []detector{
	{attr: AttrDeviceType,
		keyPat: regexp.MustCompile(`(?i)^(device[_-]?type|devtype|form[_-]?factor)$`),
		valPat: regexp.MustCompile(`(?i)^(phone|tablet|mobile)$`)},
	{attr: AttrDeviceManuf,
		keyPat: regexp.MustCompile(`(?i)^(manufacturer|device[_-]?vendor|brand|oem)$`)},
	{attr: AttrTimezone,
		keyPat: regexp.MustCompile(`(?i)^(tz|time[_-]?zone)$`)},
	{attr: AttrTimezone,
		valOnly: regexp.MustCompile(`^(Europe|America|Asia|Africa|Australia)/[A-Za-z_]+$`)},
	{attr: AttrResolution,
		keyPat: regexp.MustCompile(`(?i)^(resolution|screen[_-]?size|display)$`),
		valPat: regexp.MustCompile(`^\d{3,4}[xX*]\d{3,4}$`)},
	{attr: AttrResolution,
		keyPat: regexp.MustCompile(`(?i)^(deviceScreenWidth|deviceScreenHeight|screen[_-]?(w|h|width|height))$`)},
	{attr: AttrLocalIP,
		keyPat: regexp.MustCompile(`(?i)^(local[_-]?ip|private[_-]?ip|lan[_-]?ip)$`),
		valPat: regexp.MustCompile(`^(10\.|172\.(1[6-9]|2\d|3[01])\.|192\.168\.)\d{1,3}\.\d{1,3}$`)},
	{attr: AttrDPI,
		keyPat: regexp.MustCompile(`(?i)^(dpi|density|screen[_-]?density)$`),
		valPat: regexp.MustCompile(`^\d{2,3}(\.\d+)?$`)},
	{attr: AttrRooted,
		keyPat: regexp.MustCompile(`(?i)^(rooted|is[_-]?rooted|root[_-]?status|jailbroken)$`),
		valPat: regexp.MustCompile(`(?i)^(true|false|0|1|yes|no)$`)},
	{attr: AttrLocale,
		keyPat: regexp.MustCompile(`(?i)^(locale|lang(uage)?[_-]?code|hl)$`),
		valPat: regexp.MustCompile(`^[a-zA-Z]{2}([_-][a-zA-Z]{2})?$`)},
	{attr: AttrCountry,
		keyPat: regexp.MustCompile(`(?i)^(country([_-]?code)?|cc|geo[_-]?country)$`),
		valPat: regexp.MustCompile(`^[A-Za-z]{2}$`)},
	{attr: AttrLocation,
		keyPat: regexp.MustCompile(`(?i)^(lat(itude)?|lng|lon(gitude)?)$`),
		valPat: regexp.MustCompile(`^-?\d{1,3}\.\d+$`)},
	{attr: AttrConnType,
		keyPat: regexp.MustCompile(`(?i)^(connection[_-]?type|conn[_-]?type|metered)$`),
		valPat: regexp.MustCompile(`(?i)^(metered|unmetered|true|false)$`)},
	{attr: AttrNetType,
		keyPat: regexp.MustCompile(`(?i)^(network[_-]?type|net[_-]?type|radio|bearer)$`),
		valPat: regexp.MustCompile(`(?i)^(wifi|cellular|4g|5g|lte|3g)$`)},
}

// Finding is one detected leak instance.
type Finding struct {
	Attribute Attribute
	Browser   string
	Host      string // destination of the leaking request
	Key       string
	Value     string
	FlowID    int64
}

// jsonFieldPat pulls "key":"value" and "key":number pairs out of bodies
// without a full JSON parse (the paper's keyword/regex methodology; it
// also catches malformed or truncated bodies).
var jsonFieldPat = regexp.MustCompile(`"([A-Za-z0-9_.-]+)"\s*:\s*("([^"]*)"|-?\d+(\.\d+)?|true|false)`)

// ScanFlow inspects one flow's query parameters and body.
func ScanFlow(f *capture.Flow) []Finding {
	var out []Finding
	emit := func(key, val string) {
		for _, d := range detectors {
			switch {
			case d.valOnly != nil:
				if d.valOnly.MatchString(val) {
					out = append(out, Finding{Attribute: d.attr, Browser: f.Browser,
						Host: f.Host, Key: key, Value: val, FlowID: f.ID})
				}
			case d.keyPat.MatchString(key):
				if d.valPat == nil || d.valPat.MatchString(val) {
					out = append(out, Finding{Attribute: d.attr, Browser: f.Browser,
						Host: f.Host, Key: key, Value: val, FlowID: f.ID})
				}
			}
		}
	}

	// URL query parameters.
	if vals, err := url.ParseQuery(f.RawQuery); err == nil {
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			for _, v := range vals[k] {
				emit(k, v)
				// Nested: a Base64 or %-escaped payload inside a value.
				for _, dec := range decodeNested(v) {
					for _, m := range jsonFieldPat.FindAllStringSubmatch(dec, -1) {
						emit(m[1], strings.Trim(m[2], `"`))
					}
				}
			}
		}
	}

	// Body fields (JSON-ish).
	body := string(f.Body)
	for _, m := range jsonFieldPat.FindAllStringSubmatch(body, -1) {
		emit(m[1], strings.Trim(m[2], `"`))
	}
	// Form-encoded bodies. Keys are sorted, as for the query section,
	// so a flow's findings come out in a deterministic order.
	if strings.Contains(f.HeaderGet("Content-Type"), "x-www-form-urlencoded") {
		if vals, err := url.ParseQuery(body); err == nil {
			keys := make([]string, 0, len(vals))
			for k := range vals {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				for _, v := range vals[k] {
					emit(k, v)
				}
			}
		}
	}
	return out
}

// decodeNested tries %-unescape and Base64 on a value, returning any
// plausible plaintext expansions.
func decodeNested(v string) []string {
	var out []string
	if u, err := url.QueryUnescape(v); err == nil && u != v {
		out = append(out, u)
	}
	for _, enc := range []*base64.Encoding{base64.StdEncoding, base64.URLEncoding, base64.RawStdEncoding, base64.RawURLEncoding} {
		if len(v) >= 8 {
			if d, err := enc.DecodeString(v); err == nil && printable(d) {
				out = append(out, string(d))
				break
			}
		}
	}
	return out
}

func printable(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	for _, c := range b {
		if c < 0x09 || (c > 0x0D && c < 0x20) || c > 0x7E {
			return false
		}
	}
	return true
}

// Matrix is Table 2: browser → attribute → leaked.
type Matrix map[string]map[Attribute]bool

// BuildMatrix scans a native-flow store and assembles the leak matrix
// for the given browser names (rows appear even when nothing leaked).
// It is the batch drive mode of MatrixAnalyzer: the store is replayed
// through a fresh analyzer and finalized.
func BuildMatrix(native *capture.Store, browsers []string) (Matrix, []Finding) {
	a := NewMatrixAnalyzer(browsers)
	for _, f := range native.All() {
		a.observe(f)
	}
	return a.Matrix(), a.Findings()
}

// Leaked reports a cell of the matrix.
func (m Matrix) Leaked(browser string, a Attribute) bool {
	row, ok := m[browser]
	return ok && row[a]
}

// Count returns how many attributes a browser leaks.
func (m Matrix) Count(browser string) int {
	n := 0
	for _, v := range m[browser] {
		if v {
			n++
		}
	}
	return n
}
