// Package pii extracts Personally Identifying Information and
// device-specific identifiers from captured native flows, reproducing
// the paper's §3.3 methodology: keyword matching (via regular
// expressions) and value heuristics over the URL parameters and bodies
// of natively generated requests. Like the paper, it excludes the
// Android version and device model reported in the User-Agent header,
// which every vendor sends for compatibility.
//
// The result is Table 2: a browsers × attributes leak matrix.
package pii

import (
	"bytes"
	"encoding/base64"
	"net/url"
	"regexp"
	"sort"
	"strings"

	"panoptes/internal/capture"
	"panoptes/internal/dnsmsg"
	"panoptes/internal/match"
)

// Attribute is one Table 2 column.
type Attribute string

// Attributes, in the paper's column order.
const (
	AttrDeviceType  Attribute = "Device Type"
	AttrDeviceManuf Attribute = "Device Manuf."
	AttrTimezone    Attribute = "Timezone"
	AttrResolution  Attribute = "Resolution"
	AttrLocalIP     Attribute = "Local IP"
	AttrDPI         Attribute = "DPI"
	AttrRooted      Attribute = "Rooted Status"
	AttrLocale      Attribute = "Locale"
	AttrCountry     Attribute = "Country"
	AttrLocation    Attribute = "Location (lat & long)"
	AttrConnType    Attribute = "Connection Type"
	AttrNetType     Attribute = "Network Type"
)

// Columns returns the attributes in presentation order.
func Columns() []Attribute {
	return []Attribute{
		AttrDeviceType, AttrDeviceManuf, AttrTimezone, AttrResolution,
		AttrLocalIP, AttrDPI, AttrRooted, AttrLocale, AttrCountry,
		AttrLocation, AttrConnType, AttrNetType,
	}
}

// detector recognises one attribute by key dictionary and/or value
// pattern. All patterns are compiled once at package init; nothing in
// the per-flow path compiles or interprets a key regexp.
type detector struct {
	attr Attribute
	// keys are the literal parameter/field names the detector claims,
	// in their canonical lowercase-with-separator spellings. They are
	// the exact finite language of keyPat.
	keys []string
	// keyPat is the anchored regexp form of keys. The scan path never
	// runs it — key dispatch goes through the package dictionary — but
	// it is kept as the specification the dictionary is tested against.
	keyPat *regexp.Regexp
	// valPat, when set, must also match the value (heuristics).
	valPat *regexp.Regexp
	// valOnly, when set, matches on value alone regardless of key.
	valOnly *regexp.Regexp
}

// joined expands the `a[_-]?b` regex idiom into its three spellings.
func joined(a, b string) []string { return []string{a + b, a + "_" + b, a + "-" + b} }

// cat concatenates key-spelling lists.
func cat(lists ...[]string) []string {
	var out []string
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}

var detectors = []detector{
	{attr: AttrDeviceType,
		keys:   cat(joined("device", "type"), []string{"devtype"}, joined("form", "factor")),
		keyPat: regexp.MustCompile(`(?i)^(device[_-]?type|devtype|form[_-]?factor)$`),
		valPat: regexp.MustCompile(`(?i)^(phone|tablet|mobile)$`)},
	{attr: AttrDeviceManuf,
		keys:   cat([]string{"manufacturer"}, joined("device", "vendor"), []string{"brand", "oem"}),
		keyPat: regexp.MustCompile(`(?i)^(manufacturer|device[_-]?vendor|brand|oem)$`)},
	{attr: AttrTimezone,
		keys:   cat([]string{"tz"}, joined("time", "zone")),
		keyPat: regexp.MustCompile(`(?i)^(tz|time[_-]?zone)$`)},
	{attr: AttrTimezone,
		valOnly: regexp.MustCompile(`^(Europe|America|Asia|Africa|Australia)/[A-Za-z_]+$`)},
	{attr: AttrResolution,
		keys:   cat([]string{"resolution"}, joined("screen", "size"), []string{"display"}),
		keyPat: regexp.MustCompile(`(?i)^(resolution|screen[_-]?size|display)$`),
		valPat: regexp.MustCompile(`^\d{3,4}[xX*]\d{3,4}$`)},
	{attr: AttrResolution,
		keys: cat([]string{"devicescreenwidth", "devicescreenheight"},
			joined("screen", "w"), joined("screen", "h"),
			joined("screen", "width"), joined("screen", "height")),
		keyPat: regexp.MustCompile(`(?i)^(deviceScreenWidth|deviceScreenHeight|screen[_-]?(w|h|width|height))$`)},
	{attr: AttrLocalIP,
		keys:   cat(joined("local", "ip"), joined("private", "ip"), joined("lan", "ip")),
		keyPat: regexp.MustCompile(`(?i)^(local[_-]?ip|private[_-]?ip|lan[_-]?ip)$`),
		valPat: regexp.MustCompile(`^(10\.|172\.(1[6-9]|2\d|3[01])\.|192\.168\.)\d{1,3}\.\d{1,3}$`)},
	{attr: AttrDPI,
		keys:   cat([]string{"dpi", "density"}, joined("screen", "density")),
		keyPat: regexp.MustCompile(`(?i)^(dpi|density|screen[_-]?density)$`),
		valPat: regexp.MustCompile(`^\d{2,3}(\.\d+)?$`)},
	{attr: AttrRooted,
		keys:   cat([]string{"rooted"}, joined("is", "rooted"), joined("root", "status"), []string{"jailbroken"}),
		keyPat: regexp.MustCompile(`(?i)^(rooted|is[_-]?rooted|root[_-]?status|jailbroken)$`),
		valPat: regexp.MustCompile(`(?i)^(true|false|0|1|yes|no)$`)},
	{attr: AttrLocale,
		keys:   cat([]string{"locale"}, joined("lang", "code"), joined("language", "code"), []string{"hl"}),
		keyPat: regexp.MustCompile(`(?i)^(locale|lang(uage)?[_-]?code|hl)$`),
		valPat: regexp.MustCompile(`^[a-zA-Z]{2}([_-][a-zA-Z]{2})?$`)},
	{attr: AttrCountry,
		keys:   cat([]string{"country"}, joined("country", "code"), []string{"cc"}, joined("geo", "country")),
		keyPat: regexp.MustCompile(`(?i)^(country([_-]?code)?|cc|geo[_-]?country)$`),
		valPat: regexp.MustCompile(`^[A-Za-z]{2}$`)},
	{attr: AttrLocation,
		keys:   []string{"lat", "latitude", "lng", "lon", "longitude"},
		keyPat: regexp.MustCompile(`(?i)^(lat(itude)?|lng|lon(gitude)?)$`),
		valPat: regexp.MustCompile(`^-?\d{1,3}\.\d+$`)},
	{attr: AttrConnType,
		keys:   cat(joined("connection", "type"), joined("conn", "type"), []string{"metered"}),
		keyPat: regexp.MustCompile(`(?i)^(connection[_-]?type|conn[_-]?type|metered)$`),
		valPat: regexp.MustCompile(`(?i)^(metered|unmetered|true|false)$`)},
	{attr: AttrNetType,
		keys:   cat(joined("network", "type"), joined("net", "type"), []string{"radio", "bearer"}),
		keyPat: regexp.MustCompile(`(?i)^(network[_-]?type|net[_-]?type|radio|bearer)$`),
		valPat: regexp.MustCompile(`(?i)^(wifi|cellular|4g|5g|lte|3g)$`)},
}

// keyDict maps a folded parameter name to the indices of the keyed
// detectors claiming it; valOnlyIdx lists the value-only detectors.
// Together they replace one anchored (?i) regexp match per detector per
// parameter with a single hash probe. Folding is ASCII, matching the
// ASCII-only key languages above.
var (
	keyDict    = match.NewDict(true)
	valOnlyIdx []int
)

func init() {
	for i, d := range detectors {
		if d.valOnly != nil {
			valOnlyIdx = append(valOnlyIdx, i)
			continue
		}
		for _, k := range d.keys {
			keyDict.Add(k, i)
		}
	}
}

// Finding is one detected leak instance.
type Finding struct {
	Attribute Attribute
	Browser   string
	Host      string // destination of the leaking request
	Key       string
	Value     string
	FlowID    int64
}

// jsonFieldPat pulls "key":"value" and "key":number pairs out of bodies
// without a full JSON parse (the paper's keyword/regex methodology; it
// also catches malformed or truncated bodies).
var jsonFieldPat = regexp.MustCompile(`"([A-Za-z0-9_.-]+)"\s*:\s*("([^"]*)"|-?\d+(\.\d+)?|true|false)`)

// ScanFlow inspects one flow's query parameters and body.
func ScanFlow(f *capture.Flow) []Finding {
	var out []Finding
	record := func(i int, key, val string) {
		out = append(out, Finding{Attribute: detectors[i].attr, Browser: f.Browser,
			Host: f.Host, Key: key, Value: val, FlowID: f.ID})
	}
	// emit evaluates one key/value pair. Key dispatch is a single
	// dictionary probe; the candidate indices (ascending) are merged
	// with the value-only detectors so findings still come out in exact
	// detector-declaration order, byte-identical to the regexp loop this
	// replaces.
	emit := func(key, val string) {
		cands := keyDict.Lookup(key)
		ci := 0
		keyed := func(i int) {
			if d := &detectors[i]; d.valPat == nil || d.valPat.MatchString(val) {
				record(i, key, val)
			}
		}
		for _, vi := range valOnlyIdx {
			for ci < len(cands) && cands[ci] < vi {
				keyed(cands[ci])
				ci++
			}
			if detectors[vi].valOnly.MatchString(val) {
				record(vi, key, val)
			}
		}
		for ; ci < len(cands); ci++ {
			keyed(cands[ci])
		}
	}
	forEachPair(f, emit)
	return out
}

// forEachPair walks every key/value pair a flow exposes — query
// parameters (plus nested decodes), JSON-ish body fields and
// form-encoded bodies — in the scan's deterministic order, calling emit
// for each. Shared by ScanFlow and the regexp-reference test so both
// evaluate exactly the same pairs.
func forEachPair(f *capture.Flow, emit func(key, val string)) {
	// URL query parameters.
	if vals, err := url.ParseQuery(f.RawQuery); err == nil {
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			for _, v := range vals[k] {
				emit(k, v)
				// Nested: a Base64 or %-escaped payload inside a value.
				for _, dec := range decodeNested(v) {
					for _, m := range jsonFieldPat.FindAllStringSubmatch(dec, -1) {
						emit(m[1], strings.Trim(m[2], `"`))
					}
				}
			}
		}
	}

	// Body fields (JSON-ish), matched over the captured bytes directly —
	// the old string(f.Body) conversion copied every body once per scan.
	for _, m := range jsonFieldPat.FindAllSubmatch(f.Body, -1) {
		emit(string(m[1]), string(bytes.Trim(m[2], `"`)))
	}
	// Form-encoded bodies. Keys are sorted, as for the query section,
	// so a flow's findings come out in a deterministic order.
	if strings.Contains(f.HeaderGet("Content-Type"), "x-www-form-urlencoded") {
		if vals, err := url.ParseQuery(string(f.Body)); err == nil {
			keys := make([]string, 0, len(vals))
			for k := range vals {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				for _, v := range vals[k] {
					emit(k, v)
				}
			}
		}
	}
	// DoH bodies: a query name's first label can smuggle an attribute as
	// "key-value" ("cc-gr.t.kiwibrowser.com" ships the device country as
	// a DNS label). Decode the packed message and walk each question.
	if f.Transport == capture.TransportDoH ||
		f.HeaderGet("Content-Type") == "application/dns-message" {
		if m, err := dnsmsg.Unpack(f.Body); err == nil {
			for _, q := range m.Questions {
				label, _, _ := strings.Cut(q.Name, ".")
				if key, val, ok := strings.Cut(label, "-"); ok {
					emit(key, val)
				}
			}
		}
	}
}

// decodeNested tries %-unescape and Base64 on a value, returning any
// plausible plaintext expansions.
func decodeNested(v string) []string {
	var out []string
	if u, err := url.QueryUnescape(v); err == nil && u != v {
		out = append(out, u)
	}
	for _, enc := range []*base64.Encoding{base64.StdEncoding, base64.URLEncoding, base64.RawStdEncoding, base64.RawURLEncoding} {
		if len(v) >= 8 {
			if d, err := enc.DecodeString(v); err == nil && printable(d) {
				out = append(out, string(d))
				break
			}
		}
	}
	return out
}

func printable(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	for _, c := range b {
		if c < 0x09 || (c > 0x0D && c < 0x20) || c > 0x7E {
			return false
		}
	}
	return true
}

// Matrix is Table 2: browser → attribute → leaked.
type Matrix map[string]map[Attribute]bool

// BuildMatrix scans a native-flow store and assembles the leak matrix
// for the given browser names (rows appear even when nothing leaked).
// It is the batch drive mode of MatrixAnalyzer: the store is replayed
// through a fresh analyzer and finalized.
func BuildMatrix(native *capture.Store, browsers []string) (Matrix, []Finding) {
	a := NewMatrixAnalyzer(browsers)
	for _, f := range native.All() {
		a.observe(f)
	}
	return a.Matrix(), a.Findings()
}

// Leaked reports a cell of the matrix.
func (m Matrix) Leaked(browser string, a Attribute) bool {
	row, ok := m[browser]
	return ok && row[a]
}

// Count returns how many attributes a browser leaks.
func (m Matrix) Count(browser string) int {
	n := 0
	for _, v := range m[browser] {
		if v {
			n++
		}
	}
	return n
}
