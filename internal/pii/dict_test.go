package pii

import (
	"reflect"
	"strings"
	"testing"

	"panoptes/internal/capture"
)

// TestDictMatchesKeyPatSpec proves the dictionary dispatch implements
// exactly the language of every detector's anchored keyPat: for each
// candidate key — every declared spelling, case-mangled variants, and
// near-misses — dictionary membership must agree with the regexp.
func TestDictMatchesKeyPatSpec(t *testing.T) {
	var corpus []string
	for _, d := range detectors {
		for _, k := range d.keys {
			corpus = append(corpus,
				k,
				strings.ToUpper(k),
				strings.Title(k),
				"x"+k, // prefixed: anchored pattern must reject
				k+"x", // suffixed
				k+"_", // trailing separator
				"_"+k, // leading separator
			)
		}
	}
	corpus = append(corpus, "", "_", "-", "type", "screen", "id", "useragent",
		"device__type", "device--type", "device_-type", "screenwh")

	for _, key := range corpus {
		cands := keyDict.Lookup(key)
		for i, d := range detectors {
			if d.keyPat == nil {
				continue
			}
			want := d.keyPat.MatchString(key)
			got := false
			for _, c := range cands {
				if c == i {
					got = true
					break
				}
			}
			if got != want {
				t.Errorf("key %q, detector %d (%s): dict=%v regexp=%v", key, i, d.attr, got, want)
			}
		}
	}
}

// regexEmitReference replays the pre-dictionary emit loop verbatim: one
// switch over all detectors in declaration order, keyPat first-class.
func regexEmitReference(f *capture.Flow, key, val string) []Finding {
	var out []Finding
	for _, d := range detectors {
		switch {
		case d.valOnly != nil:
			if d.valOnly.MatchString(val) {
				out = append(out, Finding{Attribute: d.attr, Browser: f.Browser,
					Host: f.Host, Key: key, Value: val, FlowID: f.ID})
			}
		case d.keyPat.MatchString(key):
			if d.valPat == nil || d.valPat.MatchString(val) {
				out = append(out, Finding{Attribute: d.attr, Browser: f.Browser,
					Host: f.Host, Key: key, Value: val, FlowID: f.ID})
			}
		}
	}
	return out
}

// TestScanFlowMatchesRegexReference drives whole flows through ScanFlow
// and through a reference scan built on the old regexp emit, asserting
// byte-identical findings in identical order.
func TestScanFlowMatchesRegexReference(t *testing.T) {
	flows := []*capture.Flow{
		{ID: 1, Browser: "b1", Host: "t.test",
			RawQuery: "devType=phone&TZ=Europe%2FBerlin&resolution=1080x1920&cc=DE&lat=52.52&lng=13.40"},
		{ID: 2, Browser: "b1", Host: "t.test",
			RawQuery: "Device_Type=tablet&screen-density=420&rooted=false&HL=de&bearer=wifi"},
		{ID: 3, Browser: "b2", Host: "u.test",
			Body: []byte(`{"manufacturer":"Acme","local_ip":"192.168.1.7","network_type":"lte","zone":"Europe/Paris","count":3}`)},
		{ID: 4, Browser: "b2", Host: "u.test",
			Headers: map[string][]string{"Content-Type": {"application/x-www-form-urlencoded"}},
			Body:    []byte("connection_type=metered&country_code=FR&deviceScreenWidth=1080")},
		{ID: 5, Browser: "b3", Host: "v.test",
			// Nested base64 payload: {"locale":"en-US","dpi":"320"}
			RawQuery: "payload=eyJsb2NhbGUiOiJlbi1VUyIsImRwaSI6IjMyMCJ9&ignored=1"},
		{ID: 6, Browser: "b3", Host: "v.test",
			RawQuery: "formfactor=mobile&form_factor=phone&form-factor=desk&timezone=America%2FNew_York"},
		{ID: 7, Browser: "b3", Host: "v.test", Body: []byte("no json here")},
	}
	for _, f := range flows {
		got := ScanFlow(f)
		want := scanFlowReference(f)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("flow %d:\n dict  %+v\n regex %+v", f.ID, got, want)
		}
	}
	// The corpus must actually exercise findings, or this test is vacuous.
	total := 0
	for _, f := range flows {
		total += len(ScanFlow(f))
	}
	if total < 10 {
		t.Fatalf("corpus produced only %d findings", total)
	}
}

// scanFlowReference mirrors ScanFlow's traversal (query, nested
// decodes, JSON body, form body) but emits through regexEmitReference.
func scanFlowReference(f *capture.Flow) []Finding {
	var out []Finding
	emit := func(key, val string) { out = append(out, regexEmitReference(f, key, val)...) }
	forEachPair(f, emit)
	return out
}
