package pii

import (
	"sort"
	"sync"

	"panoptes/internal/capture"
	"panoptes/internal/pipeline"
)

// flowEntry is one flow's findings in arrival order. Retraction nils
// the findings and decrements the attribute refcounts.
type flowEntry struct {
	flowID int64
	fs     []Finding
}

// MatrixAnalyzer is the incremental form of BuildMatrix: each
// committed native flow is scanned as it arrives and its findings
// folded into per-browser attribute refcounts, so the Table 2 matrix
// is available at any point of the campaign and survives attempt
// retraction. Implements pipeline.Analyzer (plus Seal and Reset).
type MatrixAnalyzer struct {
	browsers []string

	mu      sync.Mutex
	j       pipeline.Journal
	rows    map[string]bool
	counts  map[string]map[Attribute]int
	entries []*flowEntry
}

// NewMatrixAnalyzer builds an analyzer producing rows for the given
// browser names (flows of other browsers are ignored, as in
// BuildMatrix).
func NewMatrixAnalyzer(browsers []string) *MatrixAnalyzer {
	a := &MatrixAnalyzer{browsers: browsers}
	a.reset()
	return a
}

func (a *MatrixAnalyzer) reset() {
	a.rows = make(map[string]bool, len(a.browsers))
	a.counts = make(map[string]map[Attribute]int, len(a.browsers))
	for _, b := range a.browsers {
		a.rows[b] = true
		a.counts[b] = make(map[Attribute]int)
	}
	a.entries = nil
	a.j.Reset()
}

// Observe scans one committed flow from the tap stream. Only native
// traffic contributes to Table 2.
func (a *MatrixAnalyzer) Observe(f *capture.Flow) {
	if f.Origin != capture.OriginNative {
		return
	}
	a.observe(f)
}

// observe is the origin-agnostic per-flow step shared with batch replay.
func (a *MatrixAnalyzer) observe(f *capture.Flow) {
	if f.Browser == "" || !a.rows[f.Browser] {
		return
	}
	fs := ScanFlow(f) // regex work happens outside the state lock
	if len(fs) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	browser := f.Browser
	for _, find := range fs {
		a.counts[browser][find.Attribute]++
	}
	e := &flowEntry{flowID: f.ID, fs: fs}
	a.entries = append(a.entries, e)
	a.j.Note(f.Attempt, func() {
		for _, find := range e.fs {
			a.counts[browser][find.Attribute]--
		}
		e.fs = nil
	})
}

// Retract undoes the attempt's findings.
func (a *MatrixAnalyzer) Retract(attempt int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.j.Retract(attempt)
}

// Seal discards the attempt's undo log.
func (a *MatrixAnalyzer) Seal(attempt int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.j.Seal(attempt)
}

// Reset drops all accumulated state.
func (a *MatrixAnalyzer) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.reset()
}

// Matrix assembles the current Table 2 (rows appear even when nothing
// leaked).
func (a *MatrixAnalyzer) Matrix() Matrix {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := make(Matrix, len(a.browsers))
	for _, b := range a.browsers {
		row := make(map[Attribute]bool)
		for attr, n := range a.counts[b] {
			if n > 0 {
				row[attr] = true
			}
		}
		m[b] = row
	}
	return m
}

// Findings returns the live findings sorted by flow ID (stable, so
// flows without IDs keep arrival order and findings within a flow keep
// ScanFlow order).
func (a *MatrixAnalyzer) Findings() []Finding {
	a.mu.Lock()
	defer a.mu.Unlock()
	live := make([]*flowEntry, 0, len(a.entries))
	for _, e := range a.entries {
		if e.fs != nil {
			live = append(live, e)
		}
	}
	sort.SliceStable(live, func(i, j int) bool { return live[i].flowID < live[j].flowID })
	var out []Finding
	for _, e := range live {
		out = append(out, e.fs...)
	}
	return out
}

// Finalize implements pipeline.Analyzer.
func (a *MatrixAnalyzer) Finalize() any { return a.Matrix() }
