package pii

import (
	"net/http"
	"testing"

	"panoptes/internal/capture"
)

func flowWithQuery(browser, host, query string) *capture.Flow {
	return &capture.Flow{
		ID: capture.NextFlowID(), Browser: browser, Host: host,
		Method: "GET", Scheme: "https", Path: "/device/profile", RawQuery: query,
	}
}

func flowWithBody(browser, host, body string) *capture.Flow {
	return &capture.Flow{
		ID: capture.NextFlowID(), Browser: browser, Host: host,
		Method: "POST", Scheme: "https", Path: "/api", Body: []byte(body),
	}
}

func attrs(fs []Finding) map[Attribute]bool {
	out := map[Attribute]bool{}
	for _, f := range fs {
		out[f.Attribute] = true
	}
	return out
}

func TestScanQueryParameters(t *testing.T) {
	f := flowWithQuery("Whale", "api-whale.naver.com",
		"resolution=1200x1920&localIp=192.168.1.100&rooted=false&locale=el-GR&country=GR&networkType=WIFI")
	got := attrs(ScanFlow(f))
	for _, want := range []Attribute{AttrResolution, AttrLocalIP, AttrRooted, AttrLocale, AttrCountry, AttrNetType} {
		if !got[want] {
			t.Errorf("missing %s (got %v)", want, got)
		}
	}
	if got[AttrLocation] || got[AttrDPI] {
		t.Errorf("false positives: %v", got)
	}
}

func TestScanLatLong(t *testing.T) {
	f := flowWithBody("Opera", "s-odx.oleads.com",
		`{"latitude":35.3387,"longitude":25.1442,"deviceVendor":"Samsung","deviceType":"PHONE"}`)
	got := attrs(ScanFlow(f))
	if !got[AttrLocation] {
		t.Errorf("latitude/longitude not detected: %v", got)
	}
	if !got[AttrDeviceManuf] || !got[AttrDeviceType] {
		t.Errorf("vendor/type not detected: %v", got)
	}
}

func TestScanTimezoneByValue(t *testing.T) {
	// Even with an unconventional key, an IANA zone value is recognised.
	f := flowWithQuery("Mint", "api.mintbrowser.com", "zoneinfo=Europe%2FAthens")
	if !attrs(ScanFlow(f))[AttrTimezone] {
		t.Error("IANA timezone value not detected")
	}
}

func TestScanRejectsNonLeaks(t *testing.T) {
	for _, q := range []string{
		"q=hello&page=2",
		"v=watch123",
		"country=Greece",     // not an ISO code
		"resolution=big",     // no WxH value
		"networkType=dialup", // unknown network type
	} {
		f := flowWithQuery("Chrome", "example.com", q)
		if fs := ScanFlow(f); len(fs) != 0 {
			t.Errorf("query %q produced findings %v", q, fs)
		}
	}
}

func TestScanFormBody(t *testing.T) {
	f := flowWithBody("Edge", "browser.events.data.msn.com", "connectionType=UNMETERED&tz=Europe/Athens")
	f.Headers = http.Header{"Content-Type": []string{"application/x-www-form-urlencoded"}}
	got := attrs(ScanFlow(f))
	if !got[AttrConnType] || !got[AttrTimezone] {
		t.Errorf("form body not scanned: %v", got)
	}
}

func TestScanNestedBase64(t *testing.T) {
	// A Base64-encoded JSON payload inside a query value.
	// {"dpi":224,"locale":"el-GR"} base64:
	f := flowWithQuery("Yandex", "api.browser.yandex.ru",
		"payload=eyJkcGkiOjIyNCwibG9jYWxlIjoiZWwtR1IifQ==")
	got := attrs(ScanFlow(f))
	if !got[AttrDPI] || !got[AttrLocale] {
		t.Errorf("nested base64 not decoded: %v", got)
	}
}

func TestBuildMatrix(t *testing.T) {
	s := capture.NewStore()
	s.Add(flowWithQuery("Whale", "api-whale.naver.com", "localIp=192.168.1.100&rooted=true"))
	s.Add(flowWithQuery("Chrome", "update.googleapis.com", "cup2key=7"))
	s.Add(flowWithBody("Opera", "s-odx.oleads.com", `{"latitude":35.3,"longitude":25.1}`))

	m, findings := BuildMatrix(s, []string{"Whale", "Chrome", "Opera"})
	if !m.Leaked("Whale", AttrLocalIP) || !m.Leaked("Whale", AttrRooted) {
		t.Errorf("Whale row wrong: %v", m["Whale"])
	}
	if m.Count("Chrome") != 0 {
		t.Errorf("Chrome row should be clean: %v", m["Chrome"])
	}
	if !m.Leaked("Opera", AttrLocation) {
		t.Errorf("Opera location missing")
	}
	if len(findings) == 0 {
		t.Error("no findings returned")
	}
	// Unknown browser rows are simply absent.
	if m.Leaked("Ghost", AttrLocale) {
		t.Error("ghost browser leaked")
	}
}

func TestColumnsOrder(t *testing.T) {
	cols := Columns()
	if len(cols) != 12 {
		t.Fatalf("columns = %d, want 12 (Table 2)", len(cols))
	}
	if cols[0] != AttrDeviceType || cols[11] != AttrNetType {
		t.Fatalf("column order wrong: %v", cols)
	}
}

func TestUserAgentHeaderNotScanned(t *testing.T) {
	// The paper excludes UA-borne model/OS info; our scanner never looks
	// at headers at all.
	f := flowWithQuery("Chrome", "example.com", "q=1")
	f.Headers = http.Header{"User-Agent": []string{"Mozilla/5.0 (Linux; Android 11; SM-T580) resolution=1200x1920"}}
	if fs := ScanFlow(f); len(fs) != 0 {
		t.Errorf("UA header scanned: %v", fs)
	}
}

func BenchmarkScanFlow(b *testing.B) {
	f := flowWithBody("Opera", "s-odx.oleads.com",
		`{"channelId":"adx","deviceVendor":"Samsung","deviceModel":"SM-T580","deviceScreenWidth":1200,"deviceScreenHeight":1920,"latitude":35.3387,"longitude":25.1442,"languageCode":"EN","connectionType":"WIFI"}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScanFlow(f)
	}
}
