package dnssim

import (
	"bytes"
	"context"
	"encoding/base64"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	"panoptes/internal/dnsmsg"
	"panoptes/internal/netsim"
)

type mapResolver map[string]net.IP

func (m mapResolver) LookupHost(host string) (net.IP, error) {
	if ip, ok := m[host]; ok {
		return ip, nil
	}
	return nil, &netsim.ErrNoSuchHost{Host: host}
}

func packQuery(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := dnsmsg.NewQuery(7, name, dnsmsg.TypeA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestHandlerPOST(t *testing.T) {
	h := NewHandler(mapResolver{"site.example": net.IPv4(20, 0, 0, 5)})
	req := httptest.NewRequest(http.MethodPost, "https://dns.google/dns-query",
		bytes.NewReader(packQuery(t, "site.example")))
	req.Header.Set("Content-Type", ContentType)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("content-type = %q", ct)
	}
	m, err := dnsmsg.Unpack(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Answers) != 1 || !m.Answers[0].A.Equal(net.IPv4(20, 0, 0, 5)) {
		t.Fatalf("answers = %+v", m.Answers)
	}
	names := h.QueriedNames()
	if len(names) != 1 || names[0] != "site.example" {
		t.Fatalf("logged names = %v", names)
	}
}

func TestHandlerGET(t *testing.T) {
	h := NewHandler(mapResolver{"g.example": net.IPv4(20, 0, 0, 9)})
	enc := base64.RawURLEncoding.EncodeToString(packQuery(t, "g.example"))
	req := httptest.NewRequest(http.MethodGet, "https://dns.google/dns-query?dns="+enc, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	m, _ := dnsmsg.Unpack(rec.Body.Bytes())
	if len(m.Answers) != 1 {
		t.Fatalf("answers = %+v", m.Answers)
	}
}

func TestHandlerNXDomain(t *testing.T) {
	h := NewHandler(mapResolver{})
	req := httptest.NewRequest(http.MethodPost, "https://doh/dns-query",
		bytes.NewReader(packQuery(t, "missing.example")))
	req.Header.Set("Content-Type", ContentType)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	m, err := dnsmsg.Unpack(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.RCode != dnsmsg.RCodeNXDomain {
		t.Fatalf("rcode = %v", m.Header.RCode)
	}
}

func TestHandlerRejections(t *testing.T) {
	h := NewHandler(mapResolver{})
	// Wrong content type.
	req := httptest.NewRequest(http.MethodPost, "https://doh/dns-query", bytes.NewReader([]byte("x")))
	req.Header.Set("Content-Type", "text/plain")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusUnsupportedMediaType {
		t.Fatalf("wrong-ct status = %d", rec.Code)
	}
	// Missing GET parameter.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "https://doh/dns-query", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("missing-param status = %d", rec.Code)
	}
	// Bad base64.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "https://doh/dns-query?dns=%21%21", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad-b64 status = %d", rec.Code)
	}
	// Garbage DNS body.
	req = httptest.NewRequest(http.MethodPost, "https://doh/dns-query", bytes.NewReader([]byte("nope")))
	req.Header.Set("Content-Type", ContentType)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage status = %d", rec.Code)
	}
	// Method not allowed.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "https://doh/dns-query", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("delete status = %d", rec.Code)
	}
}

func TestClientAgainstHandlerOverNetsim(t *testing.T) {
	inet := netsim.New()
	ip := inet.RegisterDomain("resolved.example", "US")
	h := NewHandler(inet)

	l, _, err := inet.ListenDomain("cloudflare-dns.com", "US", 80)
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(l)
	defer srv.Close()

	client := &Client{
		Endpoint: "http://cloudflare-dns.com/dns-query",
		HTTP: &http.Client{Transport: &http.Transport{
			DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
				return inet.Dial(ctx, addr)
			},
		}},
	}
	got, err := client.Lookup("resolved.example")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ip) {
		t.Fatalf("resolved %v, want %v", got, ip)
	}
	// The DoH endpoint saw the visited hostname — the §3.2 leak.
	names := h.QueriedNames()
	if len(names) != 1 || names[0] != "resolved.example" {
		t.Fatalf("doh endpoint logged %v", names)
	}
	if _, err := client.Lookup("missing.example"); err == nil {
		t.Fatal("lookup of missing name succeeded")
	}
}
