// Package dnssim provides DNS-over-HTTPS endpoints and clients in the
// style of RFC 8484. The paper (§3.2) finds that 8 of 15 browsers query
// Cloudflare's or Google's DoH services for every visited domain — i.e.
// the visited hostnames leave the device inside HTTPS bodies — while the
// other 7 use the device's local stub resolver. The vendorsim package
// hosts Handler at cloudflare-dns.com and dns.google; browsers that use
// DoH carry a Client.
package dnssim

import (
	"bytes"
	"encoding/base64"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"

	"panoptes/internal/dnsmsg"
	"panoptes/internal/obs"
)

// ContentType is the RFC 8484 media type.
const ContentType = "application/dns-message"

func init() {
	obs.Default.Help("dns_queries_total", "DNS questions answered, by transport (doh vs the device stub) and record type.")
	obs.Default.Help("dns_doh_lookups_total", "Client-side DoH lookups by result.")
}

// Resolver answers name lookups; the virtual internet implements it.
type Resolver interface {
	LookupHost(host string) (net.IP, error)
}

// Handler is an RFC 8484 DoH endpoint backed by a Resolver. It supports
// POST with a raw DNS message body and GET with the base64url `dns`
// parameter, and it logs the names queried (the quantity that constitutes
// the privacy leak).
type Handler struct {
	resolver Resolver

	mu       sync.Mutex
	queried  []string
	servFail func(name string) bool
}

// SetServFailFunc installs a fault-injection predicate: when it returns true
// for a queried name, the handler answers SERVFAIL for that question instead
// of resolving it. nil clears the hook.
func (h *Handler) SetServFailFunc(fn func(name string) bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.servFail = fn
}

func (h *Handler) servFailFn() func(name string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.servFail
}

// NewHandler creates a DoH handler.
func NewHandler(r Resolver) *Handler {
	return &Handler{resolver: r}
}

// QueriedNames returns every name this endpoint has been asked about, in
// order.
func (h *Handler) QueriedNames() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, len(h.queried))
	copy(out, h.queried)
	return out
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var raw []byte
	var err error
	switch r.Method {
	case http.MethodPost:
		if ct := r.Header.Get("Content-Type"); ct != ContentType {
			http.Error(w, "unsupported media type", http.StatusUnsupportedMediaType)
			return
		}
		raw, err = io.ReadAll(io.LimitReader(r.Body, 64*1024))
		if err != nil {
			http.Error(w, "read error", http.StatusBadRequest)
			return
		}
	case http.MethodGet:
		enc := r.URL.Query().Get("dns")
		if enc == "" {
			http.Error(w, "missing dns parameter", http.StatusBadRequest)
			return
		}
		raw, err = base64.RawURLEncoding.DecodeString(enc)
		if err != nil {
			http.Error(w, "bad dns parameter", http.StatusBadRequest)
			return
		}
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}

	q, err := dnsmsg.Unpack(raw)
	if err != nil {
		http.Error(w, "malformed dns message", http.StatusBadRequest)
		return
	}
	resp := dnsmsg.NewResponse(q, dnsmsg.RCodeSuccess)
	for _, question := range q.Questions {
		h.mu.Lock()
		h.queried = append(h.queried, question.Name)
		h.mu.Unlock()
		obs.Default.Counter("dns_queries_total", "transport", "doh", "type", question.Type.String()).Inc()
		if question.Type != dnsmsg.TypeA {
			continue
		}
		if fn := h.servFailFn(); fn != nil && fn(question.Name) {
			resp.Header.RCode = dnsmsg.RCodeServFail
			continue
		}
		ip, err := h.resolver.LookupHost(question.Name)
		if err != nil {
			resp.Header.RCode = dnsmsg.RCodeNXDomain
			continue
		}
		resp.Answers = append(resp.Answers, dnsmsg.Resource{
			Name: question.Name, Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN, TTL: 300, A: ip,
		})
	}
	out, err := resp.Pack()
	if err != nil {
		http.Error(w, "pack error", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(http.StatusOK)
	w.Write(out)
}

// Client resolves names through a DoH endpoint over a provided
// *http.Client (whose transport dials the virtual internet, through the
// device network stack, so DoH queries show up as browser HTTPS traffic).
type Client struct {
	// Endpoint is the DoH URL, e.g. "https://cloudflare-dns.com/dns-query".
	Endpoint string
	// HTTP performs the transport; it must be non-nil.
	HTTP *http.Client

	mu     sync.Mutex
	nextID uint16
}

// Lookup resolves an A record via DoH POST.
func (c *Client) Lookup(name string) (ip net.IP, err error) {
	defer func() {
		result := "ok"
		if err != nil {
			result = "error"
		}
		obs.Default.Counter("dns_doh_lookups_total", "result", result).Inc()
	}()
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()

	q := dnsmsg.NewQuery(id, name, dnsmsg.TypeA)
	raw, err := q.Pack()
	if err != nil {
		return nil, fmt.Errorf("dnssim: pack query: %w", err)
	}
	req, err := http.NewRequest(http.MethodPost, c.Endpoint, bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("dnssim: build request: %w", err)
	}
	req.Header.Set("Content-Type", ContentType)
	req.Header.Set("Accept", ContentType)
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, fmt.Errorf("dnssim: doh exchange: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dnssim: doh status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64*1024))
	if err != nil {
		return nil, fmt.Errorf("dnssim: read response: %w", err)
	}
	m, err := dnsmsg.Unpack(body)
	if err != nil {
		return nil, fmt.Errorf("dnssim: parse response: %w", err)
	}
	if m.Header.RCode != dnsmsg.RCodeSuccess {
		return nil, fmt.Errorf("dnssim: rcode %d for %s", m.Header.RCode, name)
	}
	for _, a := range m.Answers {
		if a.Type == dnsmsg.TypeA {
			return a.A, nil
		}
	}
	return nil, fmt.Errorf("dnssim: no A record for %s", name)
}
