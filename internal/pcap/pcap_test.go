package pcap

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"testing/quick"
	"time"

	"panoptes/internal/packet"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	ts := time.Date(2023, 5, 12, 9, 0, 0, 123456000, time.UTC)
	p1, _ := packet.TCPPacket(net.IPv4(1, 1, 1, 1), net.IPv4(2, 2, 2, 2), 1, 2, true, false, nil)
	p2, _ := packet.UDPPacket(net.IPv4(3, 3, 3, 3), net.IPv4(4, 4, 4, 4), 53, 53, []byte("q"))
	if err := w.WritePacket(ts, p1); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(ts.Add(time.Second), p2); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if !bytes.Equal(recs[0].Data, p1) || !bytes.Equal(recs[1].Data, p2) {
		t.Fatal("packet bytes corrupted")
	}
	if !recs[0].Time.Equal(ts.Truncate(time.Microsecond)) {
		t.Fatalf("timestamp = %v, want %v", recs[0].Time, ts)
	}
	if recs[1].OrigLen != len(p2) {
		t.Fatalf("OrigLen = %d", recs[1].OrigLen)
	}
	// Records decode with the packet layer stack.
	if packet.Decode(recs[0].Data).Layer(packet.LayerTypeTCP) == nil {
		t.Fatal("record does not decode as TCP")
	}
}

func TestSnaplenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 40)
	big, _ := packet.TCPPacket(net.IPv4(1, 1, 1, 1), net.IPv4(2, 2, 2, 2), 1, 2, false, true,
		bytes.Repeat([]byte("A"), 1000))
	if err := w.WritePacket(time.Now(), big); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Data) != 40 {
		t.Fatalf("captured %d bytes, want 40", len(rec.Data))
	}
	if rec.OrigLen != len(big) {
		t.Fatalf("OrigLen = %d, want %d", rec.OrigLen, len(big))
	}
}

func TestEmptyCaptureIsValid(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
}

func TestShortHeaderRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestTruncatedRecordRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	p, _ := packet.UDPPacket(net.IPv4(1, 1, 1, 1), net.IPv4(2, 2, 2, 2), 1, 2, []byte("hello"))
	w.WritePacket(time.Now(), p)
	trunc := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

// Property: any sequence of packets round-trips in order with intact bytes.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(payloads [][]byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf, 0)
		base := time.Unix(1683900000, 0).UTC()
		for i, pl := range payloads {
			raw, err := packet.UDPPacket(net.IPv4(1, 1, 1, 1), net.IPv4(2, 2, 2, 2), 1, 2, pl)
			if err != nil {
				return false
			}
			if err := w.WritePacket(base.Add(time.Duration(i)*time.Millisecond), raw); err != nil {
				return false
			}
		}
		w.Flush()
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		recs, err := r.ReadAll()
		if err != nil || len(recs) != len(payloads) {
			return false
		}
		for i, rec := range recs {
			p := packet.Decode(rec.Data)
			pl, _ := p.Layer(packet.LayerTypePayload).(packet.Payload)
			if !bytes.Equal(pl, payloads[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
