// Package pcap reads and writes libpcap-format capture files
// (https://wiki.wireshark.org/Development/LibpcapFileFormat), the artefact
// format the paper's testbed stores alongside its flow databases. Files
// written here open in Wireshark/tcpdump and decode with internal/packet.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic numbers for microsecond-resolution little-endian pcap.
const (
	magicLE      = 0xA1B2C3D4
	versionMajor = 2
	versionMinor = 4
	// LinkTypeEthernet is DLT_EN10MB.
	LinkTypeEthernet = 1
)

// ErrBadMagic reports a file that is not a little-endian µs pcap.
var ErrBadMagic = errors.New("pcap: bad magic")

// Record is one captured packet with its timestamp.
type Record struct {
	Time time.Time
	Data []byte
	// OrigLen is the packet's original length; equal to len(Data) unless
	// the capture truncated it.
	OrigLen int
}

// Writer emits a pcap stream.
type Writer struct {
	w       io.Writer
	snaplen uint32
	started bool
}

// NewWriter creates a Writer with the given snap length (0 means 262144).
func NewWriter(w io.Writer, snaplen uint32) *Writer {
	if snaplen == 0 {
		snaplen = 262144
	}
	return &Writer{w: w, snaplen: snaplen}
}

func (w *Writer) writeHeader() error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicLE)
	binary.LittleEndian.PutUint16(hdr[4:], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], versionMinor)
	// thiszone=0, sigfigs=0
	binary.LittleEndian.PutUint32(hdr[16:], w.snaplen)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	_, err := w.w.Write(hdr[:])
	return err
}

// WritePacket appends one packet record.
func (w *Writer) WritePacket(ts time.Time, data []byte) error {
	if !w.started {
		if err := w.writeHeader(); err != nil {
			return fmt.Errorf("pcap: write header: %w", err)
		}
		w.started = true
	}
	capLen := uint32(len(data))
	if capLen > w.snaplen {
		capLen = w.snaplen
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(hdr[8:], capLen)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(data)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: write record header: %w", err)
	}
	if _, err := w.w.Write(data[:capLen]); err != nil {
		return fmt.Errorf("pcap: write record data: %w", err)
	}
	return nil
}

// Flush writes the file header even if no packets were recorded, so an
// empty capture is still a valid pcap file.
func (w *Writer) Flush() error {
	if !w.started {
		w.started = true
		return w.writeHeader()
	}
	return nil
}

// Reader parses a pcap stream.
type Reader struct {
	r       io.Reader
	snaplen uint32
}

// NewReader validates the global header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: read header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magicLE {
		return nil, ErrBadMagic
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:]); lt != LinkTypeEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	return &Reader{r: r, snaplen: binary.LittleEndian.Uint32(hdr[16:])}, nil
}

// Next returns the next record, or io.EOF at end of stream.
func (r *Reader) Next() (Record, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("pcap: read record header: %w", err)
	}
	sec := binary.LittleEndian.Uint32(hdr[0:])
	usec := binary.LittleEndian.Uint32(hdr[4:])
	capLen := binary.LittleEndian.Uint32(hdr[8:])
	origLen := binary.LittleEndian.Uint32(hdr[12:])
	if capLen > r.snaplen+65536 {
		return Record{}, fmt.Errorf("pcap: implausible capture length %d", capLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Record{}, fmt.Errorf("pcap: read record data: %w", err)
	}
	return Record{
		Time:    time.Unix(int64(sec), int64(usec)*1000).UTC(),
		Data:    data,
		OrigLen: int(origLen),
	}, nil
}

// ReadAll drains the stream into a slice.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
