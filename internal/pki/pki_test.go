package pki

import (
	"crypto/tls"
	"crypto/x509"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

func testNow() time.Time { return time.Date(2023, 5, 12, 9, 0, 0, 0, time.UTC) }

func TestNewCASelfSigned(t *testing.T) {
	ca, err := NewCA("Test Root", testNow)
	if err != nil {
		t.Fatal(err)
	}
	if !ca.Cert.IsCA {
		t.Fatal("CA cert not marked CA")
	}
	if err := ca.Cert.CheckSignatureFrom(ca.Cert); err != nil {
		t.Fatalf("self-signature invalid: %v", err)
	}
}

func TestIssueVerifiesAgainstPool(t *testing.T) {
	ca, err := NewCA("Test Root", testNow)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.Issue("example.com", "www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	opts := x509.VerifyOptions{
		Roots:       ca.Pool(),
		DNSName:     "www.example.com",
		CurrentTime: testNow(),
	}
	if _, err := leaf.Leaf.Verify(opts); err != nil {
		t.Fatalf("leaf does not verify: %v", err)
	}
}

func TestIssueRejectsEmptyNames(t *testing.T) {
	ca, _ := NewCA("Test Root", testNow)
	if _, err := ca.Issue(); err == nil {
		t.Fatal("Issue with no names succeeded")
	}
}

func TestIssueIPLiteral(t *testing.T) {
	ca, _ := NewCA("Test Root", testNow)
	leaf, err := ca.Issue("10.1.2.3")
	if err != nil {
		t.Fatal(err)
	}
	if len(leaf.Leaf.IPAddresses) != 1 || !leaf.Leaf.IPAddresses[0].Equal(net.IPv4(10, 1, 2, 3)) {
		t.Fatalf("IPAddresses = %v", leaf.Leaf.IPAddresses)
	}
}

func TestSerialsDistinct(t *testing.T) {
	ca, _ := NewCA("Test Root", testNow)
	a, _ := ca.Issue("a.example")
	b, _ := ca.Issue("b.example")
	if a.Leaf.SerialNumber.Cmp(b.Leaf.SerialNumber) == 0 {
		t.Fatal("duplicate serial numbers")
	}
}

func TestWrongCARejected(t *testing.T) {
	ca1, _ := NewCA("Root One", testNow)
	ca2, _ := NewCA("Root Two", testNow)
	leaf, _ := ca1.Issue("example.com")
	opts := x509.VerifyOptions{Roots: ca2.Pool(), DNSName: "example.com", CurrentTime: testNow()}
	if _, err := leaf.Leaf.Verify(opts); err == nil {
		t.Fatal("leaf verified against the wrong root")
	}
}

func TestPEMExport(t *testing.T) {
	ca, _ := NewCA("Test Root", testNow)
	pemBytes := ca.PEM()
	if !strings.Contains(string(pemBytes), "BEGIN CERTIFICATE") {
		t.Fatalf("PEM export malformed: %q", pemBytes[:40])
	}
}

func TestTLSHandshakeOverPipe(t *testing.T) {
	ca, _ := NewCA("Public Web Root", testNow)
	leaf, err := ca.Issue("secure.example")
	if err != nil {
		t.Fatal(err)
	}
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() {
		s := tls.Server(server, &tls.Config{Certificates: []tls.Certificate{leaf}})
		done <- s.Handshake()
	}()
	c := tls.Client(client, &tls.Config{
		RootCAs:    ca.Pool(),
		ServerName: "secure.example",
		Time:       testNow,
	})
	if err := c.Handshake(); err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("server handshake: %v", err)
	}
}

func TestSPKIFingerprintStableAcrossCerts(t *testing.T) {
	ca, _ := NewCA("Test Root", testNow)
	// Two certs for the same key would share a fingerprint; two different
	// leaf keys must differ.
	a, _ := ca.Issue("a.example")
	b, _ := ca.Issue("b.example")
	if SPKIFingerprint(a.Leaf) == SPKIFingerprint(b.Leaf) {
		t.Fatal("distinct keys share an SPKI fingerprint")
	}
	if got := SPKIFingerprint(a.Leaf); got != SPKIFingerprint(a.Leaf) {
		t.Fatalf("fingerprint not deterministic: %s", got)
	}
}

func TestPinSetVerify(t *testing.T) {
	ca, _ := NewCA("Vendor Root", testNow)
	real, _ := ca.Issue("pinned.example")
	mitmCA, _ := NewCA("mitmproxy", testNow)
	fake, _ := mitmCA.Issue("pinned.example")

	ps := NewPinSet()
	if ps.Pinned("pinned.example") {
		t.Fatal("empty set reports pinned")
	}
	ps.Add("pinned.example", real.Leaf)
	if !ps.Pinned("pinned.example") {
		t.Fatal("host not pinned after Add")
	}
	if err := ps.Verify("pinned.example", real.Leaf); err != nil {
		t.Fatalf("real cert rejected: %v", err)
	}
	err := ps.Verify("pinned.example", fake.Leaf)
	var pv *PinViolationError
	if !errors.As(err, &pv) {
		t.Fatalf("MITM cert accepted: %v", err)
	}
	if pv.Host != "pinned.example" {
		t.Fatalf("violation host = %q", pv.Host)
	}
	// Unpinned hosts pass anything.
	if err := ps.Verify("open.example", fake.Leaf); err != nil {
		t.Fatalf("unpinned host rejected: %v", err)
	}
}

func TestMITMInterceptionDetectedByPinning(t *testing.T) {
	// End-to-end shape of paper footnote 3: an app pinning its vendor key
	// refuses the transparent proxy's minted certificate.
	public, _ := NewCA("Public Web Root", testNow)
	vendorLeaf, _ := public.Issue("api.vendor.example")
	mitm, _ := NewCA("mitmproxy CA", testNow)
	minted, _ := mitm.Issue("api.vendor.example")

	ps := NewPinSet()
	ps.Add("api.vendor.example", vendorLeaf.Leaf)

	if err := ps.Verify("api.vendor.example", minted.Leaf); err == nil {
		t.Fatal("pinned app accepted the MITM certificate")
	}
}

func BenchmarkIssueLeaf(b *testing.B) {
	ca, _ := NewCA("Bench Root", testNow)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ca.Issue("bench.example"); err != nil {
			b.Fatal(err)
		}
	}
}
