// Package pki provides the certificate infrastructure for the simulation:
// a "public web" certificate authority that signs the leaf certificates of
// simulated websites and vendor backends, and the MITM proxy's private CA
// whose root is installed into the Android device's trust store, exactly as
// mitmproxy's CA is in the paper's testbed.
//
// Keys are ECDSA P-256 throughout: fast enough that tens of thousands of
// real TLS handshakes over in-memory pipes stay cheap.
package pki

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/hex"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"sync"
	"time"
)

// CA is a certificate authority that can mint leaf certificates.
type CA struct {
	Cert *x509.Certificate
	Key  *ecdsa.PrivateKey

	mu     sync.Mutex
	serial int64
	now    func() time.Time
}

// NewCA creates a self-signed root CA with the given common name.
// now supplies certificate validity anchors; pass nil for time.Now.
func NewCA(commonName string, now func() time.Time) (*CA, error) {
	if now == nil {
		now = time.Now
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pki: generate CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject: pkix.Name{
			CommonName:   commonName,
			Organization: []string{"Panoptes Simulation"},
		},
		NotBefore:             now().Add(-time.Hour),
		NotAfter:              now().Add(10 * 365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageCRLSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
		MaxPathLen:            1,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("pki: self-sign CA: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("pki: parse CA cert: %w", err)
	}
	return &CA{Cert: cert, Key: key, serial: 2, now: now}, nil
}

// Issue mints a leaf certificate for the given DNS names (and any IP
// literals among them) and returns it as a tls.Certificate ready for use
// in a tls.Config.
func (ca *CA) Issue(names ...string) (tls.Certificate, error) {
	if len(names) == 0 {
		return tls.Certificate{}, fmt.Errorf("pki: Issue needs at least one name")
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("pki: generate leaf key: %w", err)
	}
	ca.mu.Lock()
	serial := ca.serial
	ca.serial++
	now := ca.now()
	ca.mu.Unlock()

	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(serial),
		Subject:      pkix.Name{CommonName: names[0]},
		NotBefore:    now.Add(-time.Hour),
		NotAfter:     now.Add(2 * 365 * 24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
	}
	for _, n := range names {
		if ip := net.ParseIP(n); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, n)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.Cert, &key.PublicKey, ca.Key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("pki: sign leaf for %q: %w", names[0], err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("pki: parse leaf: %w", err)
	}
	return tls.Certificate{
		Certificate: [][]byte{der, ca.Cert.Raw},
		PrivateKey:  key,
		Leaf:        leaf,
	}, nil
}

// Pool returns a cert pool containing only this CA's root.
func (ca *CA) Pool() *x509.CertPool {
	p := x509.NewCertPool()
	p.AddCert(ca.Cert)
	return p
}

// TLSClientTemplate returns a client TLS config trusting only this CA,
// with certificate validity checked against the supplied clock.
func (ca *CA) TLSClientTemplate(now func() time.Time) *tls.Config {
	return &tls.Config{RootCAs: ca.Pool(), Time: now}
}

// PEM returns the CA certificate PEM-encoded, as it would be exported for
// installation into a device trust store.
func (ca *CA) PEM() []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: ca.Cert.Raw})
}

// KeyPEM returns the CA private key PEM-encoded (PKCS#8).
func (ca *CA) KeyPEM() ([]byte, error) {
	der, err := x509.MarshalPKCS8PrivateKey(ca.Key)
	if err != nil {
		return nil, fmt.Errorf("pki: marshal CA key: %w", err)
	}
	return pem.EncodeToMemory(&pem.Block{Type: "PRIVATE KEY", Bytes: der}), nil
}

// LoadCA reconstructs a CA from PEM-encoded certificate and key, as a
// long-running proxy reloads its identity across restarts.
func LoadCA(certPEM, keyPEM []byte, now func() time.Time) (*CA, error) {
	if now == nil {
		now = time.Now
	}
	cb, _ := pem.Decode(certPEM)
	if cb == nil || cb.Type != "CERTIFICATE" {
		return nil, fmt.Errorf("pki: no certificate PEM block")
	}
	cert, err := x509.ParseCertificate(cb.Bytes)
	if err != nil {
		return nil, fmt.Errorf("pki: parse CA certificate: %w", err)
	}
	kb, _ := pem.Decode(keyPEM)
	if kb == nil || kb.Type != "PRIVATE KEY" {
		return nil, fmt.Errorf("pki: no private-key PEM block")
	}
	key, err := x509.ParsePKCS8PrivateKey(kb.Bytes)
	if err != nil {
		return nil, fmt.Errorf("pki: parse CA key: %w", err)
	}
	ecKey, ok := key.(*ecdsa.PrivateKey)
	if !ok {
		return nil, fmt.Errorf("pki: CA key is %T, want ECDSA", key)
	}
	return &CA{Cert: cert, Key: ecKey, serial: time.Now().UnixNano(), now: now}, nil
}

// SPKIFingerprint returns the SHA-256 fingerprint of a certificate's
// SubjectPublicKeyInfo, hex-encoded — the quantity certificate-pinning
// apps pin.
func SPKIFingerprint(cert *x509.Certificate) string {
	sum := sha256.Sum256(cert.RawSubjectPublicKeyInfo)
	return hex.EncodeToString(sum[:])
}

// PinSet is a set of acceptable SPKI fingerprints for a host, as embedded
// in apps that use certificate pinning. A transparent MITM proxy cannot
// satisfy a pin it does not hold the key for; in the paper this silently
// suppresses some native requests (footnote 3).
type PinSet struct {
	mu   sync.RWMutex
	pins map[string]map[string]bool // host -> fingerprint set
}

// NewPinSet returns an empty pin set.
func NewPinSet() *PinSet {
	return &PinSet{pins: make(map[string]map[string]bool)}
}

// Add pins host to the SPKI fingerprint of cert.
func (ps *PinSet) Add(host string, cert *x509.Certificate) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	set, ok := ps.pins[host]
	if !ok {
		set = make(map[string]bool)
		ps.pins[host] = set
	}
	set[SPKIFingerprint(cert)] = true
}

// Pinned reports whether host has any pins.
func (ps *PinSet) Pinned(host string) bool {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	return len(ps.pins[host]) > 0
}

// Verify checks the presented leaf certificate of host against the pins.
// Hosts without pins always verify.
func (ps *PinSet) Verify(host string, leaf *x509.Certificate) error {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	set, ok := ps.pins[host]
	if !ok || len(set) == 0 {
		return nil
	}
	if set[SPKIFingerprint(leaf)] {
		return nil
	}
	return &PinViolationError{Host: host, Got: SPKIFingerprint(leaf)}
}

// PinViolationError reports a certificate-pinning failure.
type PinViolationError struct {
	Host string
	Got  string
}

func (e *PinViolationError) Error() string {
	return fmt.Sprintf("pki: certificate pin violation for %s (presented SPKI %s…)", e.Host, e.Got[:12])
}
