// Package device models the paper's testbed tablet: a Samsung Galaxy Tab
// running Android 11 that hosts the browser apps, the transparent MITM
// proxy container, per-UID iptables diversion, eBPF traffic accounting, a
// local DNS stub resolver, a system certificate trust store, and
// per-package private storage that a factory reset (Appium's app reset)
// wipes.
//
// The device sits between the browser emulators and the virtual internet:
// every connection an app opens goes through DialContext, which resolves
// the destination, evaluates the netfilter OUTPUT path (diverting browser
// UIDs into the proxy with the original destination preserved), fires the
// eBPF hooks, and synthesises packets for the capture tap.
package device

import (
	"context"
	"crypto/x509"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"

	"panoptes/internal/ebpfsim"
	"panoptes/internal/netfilter"
	"panoptes/internal/netsim"
	"panoptes/internal/vclock"
)

// Model/build constants matching Table 1's testbed.
const (
	ModelName    = "SM-T580"
	Manufacturer = "Samsung"
	AndroidRel   = "11"
	ScreenWidth  = 1200
	ScreenHeight = 1920
	ScreenDPI    = 224
)

// firstAppUID is where Android starts assigning application UIDs.
const firstAppUID = 10000

// Package is an installed application.
type Package struct {
	Name string // e.g. "com.opera.browser"
	UID  int
}

// Device is the simulated tablet.
type Device struct {
	Clock *vclock.Clock
	Net   *netsim.Internet
	// IP is the device's Wi-Fi address; it is also the "local IP" some
	// browsers leak (Table 2, Whale).
	IP net.IP

	Firewall   *netfilter.Stack
	Hooks      *ebpfsim.Registry
	Accounting *ebpfsim.TrafficAccounting

	// DisableH3Block leaves UDP/443 open: DivertBrowser skips the
	// block-http3 DROP rule (the -block-h3=false ablation), so browser
	// QUIC probes reach advertised HTTP/3 origins and those exchanges
	// bypass the TCP-only interception path entirely — the arms race the
	// paper's methodology forecloses by blocking UDP/443.
	DisableH3Block bool

	mu       sync.Mutex
	packages map[string]*Package
	nextUID  int
	storage  map[string]map[string]string // package -> key -> value
	roots    []*x509.Certificate
	tap      Tap
	stub     *StubResolver
	rooted   bool
	// dialFault, when set, is consulted at the top of DialContext with the
	// dialing UID, bare host and full addr; a non-nil return aborts the dial
	// with that error (internal/faultsim's armed DNS/connect faults).
	dialFault func(uid int, host, addr string) error
}

// SetDialFault installs (or clears, with nil) the dial fault-injection hook.
func (d *Device) SetDialFault(fn func(uid int, host, addr string) error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dialFault = fn
}

func (d *Device) dialFaultFn() func(uid int, host, addr string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dialFault
}

// Tap receives synthesised packets from the network stack. Implementations
// must be safe for concurrent use.
type Tap interface {
	Packet(data []byte)
}

// New creates a device wired to a virtual internet and clock.
func New(clock *vclock.Clock, inet *netsim.Internet) (*Device, error) {
	d := &Device{
		Clock:    clock,
		Net:      inet,
		IP:       net.IPv4(192, 168, 1, 100),
		Firewall: netfilter.NewStack(),
		Hooks:    ebpfsim.NewRegistry(),
		packages: make(map[string]*Package),
		nextUID:  firstAppUID,
		storage:  make(map[string]map[string]string),
	}
	ta, err := ebpfsim.NewTrafficAccounting(d.Hooks)
	if err != nil {
		return nil, fmt.Errorf("device: load traffic accounting: %w", err)
	}
	d.Accounting = ta
	d.stub = newStubResolver(d)
	return d, nil
}

// Install registers an app package and assigns it a kernel UID, as the
// Android installer does. Reinstalling returns the existing package.
func (d *Device) Install(name string) *Package {
	d.mu.Lock()
	defer d.mu.Unlock()
	if p, ok := d.packages[name]; ok {
		return p
	}
	p := &Package{Name: name, UID: d.nextUID}
	d.nextUID++
	d.packages[name] = p
	d.storage[name] = make(map[string]string)
	return p
}

// PackageByName looks a package up.
func (d *Device) PackageByName(name string) (*Package, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.packages[name]
	return p, ok
}

// UIDOf returns the kernel UID a package runs under — the value Panoptes
// extracts to build the per-browser iptables rules (paper §2.2).
func (d *Device) UIDOf(name string) (int, error) {
	p, ok := d.PackageByName(name)
	if !ok {
		return 0, fmt.Errorf("device: package %q not installed", name)
	}
	return p.UID, nil
}

// Packages lists installed package names, sorted.
func (d *Device) Packages() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.packages))
	for n := range d.packages {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// --- App private storage (persistent identifiers live here) ---

// StoragePut writes a key in a package's private data directory.
func (d *Device) StoragePut(pkg, key, value string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.storage[pkg]
	if !ok {
		return fmt.Errorf("device: package %q not installed", pkg)
	}
	s[key] = value
	return nil
}

// StorageGet reads a key from a package's private data directory.
func (d *Device) StorageGet(pkg, key string) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.storage[pkg]
	if !ok {
		return "", false
	}
	v, ok := s[key]
	return v, ok
}

// ClearAppData wipes a package's private storage — what Appium's
// "reset to factory settings" does before each crawl campaign (§2.1).
func (d *Device) ClearAppData(pkg string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.storage[pkg]; !ok {
		return fmt.Errorf("device: package %q not installed", pkg)
	}
	d.storage[pkg] = make(map[string]string)
	return nil
}

// --- Trust store ---

// InstallCA adds a root certificate to the system trust store, as the
// testbed installs the mitmproxy CA.
func (d *Device) InstallCA(cert *x509.Certificate) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.roots = append(d.roots, cert)
}

// TrustedRoots returns the system root pool apps use for TLS validation.
func (d *Device) TrustedRoots() *x509.CertPool {
	d.mu.Lock()
	defer d.mu.Unlock()
	pool := x509.NewCertPool()
	for _, c := range d.roots {
		pool.AddCert(c)
	}
	return pool
}

// SetRooted marks the device as rooted; some browsers report this status
// (Table 2, Whale).
func (d *Device) SetRooted(v bool) { d.mu.Lock(); d.rooted = v; d.mu.Unlock() }

// Rooted reports the rooted status.
func (d *Device) Rooted() bool { d.mu.Lock(); defer d.mu.Unlock(); return d.rooted }

// SetTap installs the packet capture tap (nil disables capture).
func (d *Device) SetTap(t Tap) { d.mu.Lock(); d.tap = t; d.mu.Unlock() }

func (d *Device) getTap() Tap { d.mu.Lock(); defer d.mu.Unlock(); return d.tap }

// Resolver returns the device's local DNS stub resolver.
func (d *Device) Resolver() *StubResolver { return d.stub }

// --- Network stack ---

// ErrFirewallDrop is returned when a filter rule drops the connection.
type ErrFirewallDrop struct {
	Addr string
	Rule string
}

func (e *ErrFirewallDrop) Error() string {
	return fmt.Sprintf("device: connection to %s dropped by firewall (%s)", e.Addr, e.Rule)
}

// DialContext opens a TCP connection from the app with the given UID to
// addr ("host:port"). The netfilter OUTPUT path runs first: a REDIRECT
// verdict diverts the connection to the proxy with the original
// destination preserved in the connection metadata; a DROP verdict fails
// the dial. eBPF sock_create programs may also veto the socket. Byte
// hooks feed the per-UID accounting maps and the capture tap.
func (d *Device) DialContext(ctx context.Context, uid int, addr string) (net.Conn, error) {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("device: dial %s: %w", addr, err)
	}
	var port int
	fmt.Sscanf(portStr, "%d", &port)

	if fn := d.dialFaultFn(); fn != nil {
		if ferr := fn(uid, host, addr); ferr != nil {
			return nil, ferr
		}
	}

	dstIP, err := d.Net.LookupHost(host)
	if err != nil {
		return nil, err
	}

	if act := d.Hooks.Fire(ebpfsim.AttachSockCreate, &ebpfsim.Context{
		UID: uid, Proto: "tcp", DstHost: host, DstPort: port,
	}); act == ebpfsim.ActionDrop {
		return nil, &ErrFirewallDrop{Addr: addr, Rule: "ebpf sock_create"}
	}

	res, err := d.Firewall.EvalOutput(netfilter.Packet{
		Proto: netfilter.ProtoTCP, SrcIP: d.IP, DstIP: dstIP, DstPort: port, OwnerUID: uid,
	})
	if err != nil {
		return nil, fmt.Errorf("device: firewall: %w", err)
	}

	meta := netsim.Meta{OwnerUID: uid, OriginalDst: addr}
	dialAddr := addr
	switch res.Verdict {
	case netfilter.VerdictDrop:
		rule := "policy"
		if res.Rule != nil {
			rule = res.Rule.Comment
			if rule == "" {
				rule = "rule"
			}
		}
		return nil, &ErrFirewallDrop{Addr: addr, Rule: rule}
	case netfilter.VerdictRedirect:
		meta.Redirected = true
		dialAddr = res.RedirectAddr
	}

	conn, err := d.Net.Dial(ctx, dialAddr,
		netsim.WithMeta(meta),
		netsim.WithSource(d.IP, 0))
	if err != nil {
		if meta.Redirected {
			return nil, fmt.Errorf("device: transparent redirect to %s failed: %w", dialAddr, err)
		}
		return nil, err
	}

	d.instrumentConn(conn, uid, dstIP, port)
	return conn, nil
}

// instrumentConn wires accounting and capture to a new connection.
func (d *Device) instrumentConn(conn *netsim.Conn, uid int, dstIP net.IP, dstPort int) {
	srcPort := 0
	if ta, ok := conn.LocalAddr().(*net.TCPAddr); ok {
		srcPort = ta.Port
	}
	d.emitHandshake(dstIP, srcPort, dstPort)
	conn.SetByteHooks(
		func(n int) {
			d.Hooks.Fire(ebpfsim.AttachEgress, &ebpfsim.Context{UID: uid, Proto: "tcp", DstPort: dstPort, Bytes: n})
			d.emitData(true, dstIP, srcPort, dstPort, n)
		},
		func(n int) {
			d.Hooks.Fire(ebpfsim.AttachIngress, &ebpfsim.Context{UID: uid, Proto: "tcp", DstPort: dstPort, Bytes: n})
			d.emitData(false, dstIP, srcPort, dstPort, n)
		},
	)
	conn.SetCloseHook(func() { d.emitFin(dstIP, srcPort, dstPort) })
}

// SendUDP sends a datagram from the app with the given UID, subject to
// the firewall (the UDP/443 DROP rule lives here) and eBPF hooks. It
// reports whether the datagram was delivered.
func (d *Device) SendUDP(uid int, dstHost string, dstPort int, payload []byte) (bool, error) {
	dstIP, err := d.Net.LookupHost(dstHost)
	if err != nil {
		return false, err
	}
	if act := d.Hooks.Fire(ebpfsim.AttachSockCreate, &ebpfsim.Context{
		UID: uid, Proto: "udp", DstHost: dstHost, DstPort: dstPort,
	}); act == ebpfsim.ActionDrop {
		return false, &ErrFirewallDrop{Addr: fmt.Sprintf("%s:%d", dstHost, dstPort), Rule: "ebpf sock_create"}
	}
	res, err := d.Firewall.EvalOutput(netfilter.Packet{
		Proto: netfilter.ProtoUDP, SrcIP: d.IP, DstIP: dstIP, DstPort: dstPort, OwnerUID: uid,
	})
	if err != nil {
		return false, err
	}
	if res.Verdict == netfilter.VerdictDrop {
		return false, &ErrFirewallDrop{Addr: fmt.Sprintf("%s:%d", dstHost, dstPort), Rule: "udp drop"}
	}
	d.Hooks.Fire(ebpfsim.AttachEgress, &ebpfsim.Context{UID: uid, Proto: "udp", DstPort: dstPort, Bytes: len(payload)})
	d.emitUDP(dstIP, dstPort, payload)
	delivered := d.Net.SendUDP(&net.UDPAddr{IP: d.IP, Port: 30000 + uid%20000}, &net.UDPAddr{IP: dstIP, Port: dstPort}, payload)
	return delivered, nil
}

// DivertBrowser installs the paper's per-browser diversion rules: all of
// the UID's TCP traffic REDIRECTed to proxyAddr, plus (once) the global
// UDP/443 DROP that forces HTTP/3 fallback.
func (d *Device) DivertBrowser(uid int, proxyAddr string) error {
	cmd := fmt.Sprintf("-t nat -A OUTPUT -p tcp -m owner --uid-owner %d -j REDIRECT --to %s --comment uid-%d",
		uid, proxyAddr, uid)
	if err := d.Firewall.Exec(cmd); err != nil {
		return err
	}
	if d.DisableH3Block {
		return nil
	}
	return d.EnsureH3Block()
}

// EnsureH3Block installs the UDP/443 DROP rule if not already present.
func (d *Device) EnsureH3Block() error {
	rules, err := d.Firewall.Rules("filter", "OUTPUT")
	if err != nil {
		return err
	}
	for _, r := range rules {
		if r.Comment == "block-http3" {
			return nil
		}
	}
	return d.Firewall.Exec("-t filter -A OUTPUT -p udp --dport 443 -j DROP --comment block-http3")
}

// UndivertAll flushes the diversion rules (between campaigns).
func (d *Device) UndivertAll() {
	d.Firewall.FlushAll()
}

// DiversionActive reports whether a REDIRECT rule exists for uid.
func (d *Device) DiversionActive(uid int) bool {
	rules, err := d.Firewall.Rules("nat", "OUTPUT")
	if err != nil {
		return false
	}
	needle := fmt.Sprintf("uid-%d", uid)
	for _, r := range rules {
		if strings.Contains(r.Comment, needle) {
			return true
		}
	}
	return false
}
