package device

import (
	"net"
	"sync"
	"time"

	"panoptes/internal/dnsmsg"
	"panoptes/internal/obs"
)

// DNSQuery is one logged stub-resolver lookup. The §3.2 analysis compares
// browsers that resolve through the device stub (their visited domains
// appear here) against browsers that ship queries to third-party
// DNS-over-HTTPS services (their lookups appear as HTTPS flows to
// dns.google / cloudflare-dns.com instead).
type DNSQuery struct {
	Time time.Time
	UID  int
	Name string
	Type dnsmsg.Type
}

// StubResolver is the device's local DNS stub (the 127.0.0.1:53 Android
// resolver apps use by default). It answers from the virtual internet's
// authoritative registry and logs every query with the caller's UID.
type StubResolver struct {
	dev *Device

	mu  sync.Mutex
	log []DNSQuery
}

func newStubResolver(d *Device) *StubResolver {
	return &StubResolver{dev: d}
}

// Lookup resolves name for the app with the given UID, logging the query.
func (r *StubResolver) Lookup(uid int, name string) (net.IP, error) {
	r.mu.Lock()
	r.log = append(r.log, DNSQuery{Time: r.dev.Clock.Now(), UID: uid, Name: name, Type: dnsmsg.TypeA})
	r.mu.Unlock()
	obs.Default.Counter("dns_queries_total", "transport", "stub", "type", dnsmsg.TypeA.String()).Inc()
	return r.dev.Net.LookupHost(name)
}

// Exchange answers a wire-format DNS query, for apps that speak the
// protocol to the stub rather than calling the resolver API.
func (r *StubResolver) Exchange(uid int, query []byte) ([]byte, error) {
	q, err := dnsmsg.Unpack(query)
	if err != nil {
		return nil, err
	}
	resp := dnsmsg.NewResponse(q, dnsmsg.RCodeSuccess)
	for _, question := range q.Questions {
		r.mu.Lock()
		r.log = append(r.log, DNSQuery{Time: r.dev.Clock.Now(), UID: uid, Name: question.Name, Type: question.Type})
		r.mu.Unlock()
		obs.Default.Counter("dns_queries_total", "transport", "stub", "type", question.Type.String()).Inc()
		if question.Type != dnsmsg.TypeA {
			continue
		}
		ip, err := r.dev.Net.LookupHost(question.Name)
		if err != nil {
			resp.Header.RCode = dnsmsg.RCodeNXDomain
			continue
		}
		resp.Answers = append(resp.Answers, dnsmsg.Resource{
			Name: question.Name, Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN, TTL: 300, A: ip,
		})
	}
	return resp.Pack()
}

// Queries returns a copy of the query log.
func (r *StubResolver) Queries() []DNSQuery {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DNSQuery, len(r.log))
	copy(out, r.log)
	return out
}

// QueriesByUID filters the log.
func (r *StubResolver) QueriesByUID(uid int) []DNSQuery {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []DNSQuery
	for _, q := range r.log {
		if q.UID == uid {
			out = append(out, q)
		}
	}
	return out
}

// ResetLog clears the query log (between campaigns).
func (r *StubResolver) ResetLog() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.log = nil
}
