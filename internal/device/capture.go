package device

import (
	"net"
	"sync"

	"panoptes/internal/packet"
	"panoptes/internal/pcap"
)

// Packet synthesis for the capture tap. The device fabricates the frames a
// tcpdump on wlan0 would see: the TCP handshake at connect, one data
// packet per socket write/read (payload replaced by zeros of the observed
// size — the real payloads are TLS ciphertext anyway), and a FIN at close.

const synthPayloadCap = 96 // synthesised packets carry at most this many payload bytes

var zeroPayload [synthPayloadCap]byte

func (d *Device) emit(raw []byte, err error) {
	if err != nil {
		return
	}
	if t := d.getTap(); t != nil {
		t.Packet(raw)
	}
}

func (d *Device) emitHandshake(dst net.IP, srcPort, dstPort int) {
	if d.getTap() == nil {
		return
	}
	syn, err := packet.TCPPacket(d.IP, dst, uint16(srcPort), uint16(dstPort), true, false, nil)
	d.emit(syn, err)
	synack, err := packet.TCPPacket(dst, d.IP, uint16(dstPort), uint16(srcPort), true, true, nil)
	d.emit(synack, err)
	ack, err := packet.TCPPacket(d.IP, dst, uint16(srcPort), uint16(dstPort), false, true, nil)
	d.emit(ack, err)
}

func (d *Device) emitData(egress bool, dst net.IP, srcPort, dstPort, n int) {
	if d.getTap() == nil {
		return
	}
	pl := n
	if pl > synthPayloadCap {
		pl = synthPayloadCap
	}
	var raw []byte
	var err error
	if egress {
		raw, err = packet.TCPPacket(d.IP, dst, uint16(srcPort), uint16(dstPort), false, true, zeroPayload[:pl])
	} else {
		raw, err = packet.TCPPacket(dst, d.IP, uint16(dstPort), uint16(srcPort), false, true, zeroPayload[:pl])
	}
	d.emit(raw, err)
}

func (d *Device) emitFin(dst net.IP, srcPort, dstPort int) {
	if d.getTap() == nil {
		return
	}
	raw, err := packet.Serialize(nil,
		&packet.IPv4{SrcIP: d.IP, DstIP: dst, TTL: 64},
		&packet.TCP{SrcPort: uint16(srcPort), DstPort: uint16(dstPort), FIN: true, ACK: true},
		nil)
	d.emit(raw, err)
}

func (d *Device) emitUDP(dst net.IP, dstPort int, payload []byte) {
	if d.getTap() == nil {
		return
	}
	pl := payload
	if len(pl) > synthPayloadCap {
		pl = pl[:synthPayloadCap]
	}
	raw, err := packet.UDPPacket(d.IP, dst, 30000, uint16(dstPort), pl)
	d.emit(raw, err)
}

// PcapTap is a Tap that persists packets to a libpcap stream with virtual
// timestamps.
type PcapTap struct {
	dev *Device
	mu  sync.Mutex
	w   *pcap.Writer
	n   int
}

// NewPcapTap wraps a pcap.Writer as a capture tap for the device.
func NewPcapTap(d *Device, w *pcap.Writer) *PcapTap {
	return &PcapTap{dev: d, w: w}
}

// Packet implements Tap.
func (t *PcapTap) Packet(data []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.WritePacket(t.dev.Clock.Now(), data); err == nil {
		t.n++
	}
}

// Count returns the number of packets written.
func (t *PcapTap) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// CountingTap is a Tap that only counts packets; tests use it.
type CountingTap struct {
	mu sync.Mutex
	n  int
}

// Packet implements Tap.
func (t *CountingTap) Packet([]byte) { t.mu.Lock(); t.n++; t.mu.Unlock() }

// Count returns the packet count.
func (t *CountingTap) Count() int { t.mu.Lock(); defer t.mu.Unlock(); return t.n }
