package device

import (
	"bytes"
	"context"
	"crypto/x509"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"panoptes/internal/dnsmsg"
	"panoptes/internal/ebpfsim"
	"panoptes/internal/netsim"
	"panoptes/internal/pcap"
	"panoptes/internal/pki"
	"panoptes/internal/vclock"
)

func newTestDevice(t *testing.T) (*Device, *netsim.Internet) {
	t.Helper()
	inet := netsim.New()
	d, err := New(vclock.New(), inet)
	if err != nil {
		t.Fatal(err)
	}
	return d, inet
}

func startEcho(t *testing.T, inet *netsim.Internet, domain, country string, port int) {
	t.Helper()
	l, _, err := inet.ListenDomain(domain, country, port)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	t.Cleanup(func() { l.Close() })
}

func TestInstallAssignsSequentialUIDs(t *testing.T) {
	d, _ := newTestDevice(t)
	a := d.Install("com.android.chrome")
	b := d.Install("com.opera.browser")
	if a.UID != 10000 || b.UID != 10001 {
		t.Fatalf("uids = %d, %d", a.UID, b.UID)
	}
	if again := d.Install("com.android.chrome"); again.UID != a.UID {
		t.Fatal("reinstall changed UID")
	}
	uid, err := d.UIDOf("com.opera.browser")
	if err != nil || uid != 10001 {
		t.Fatalf("UIDOf = %d, %v", uid, err)
	}
	if _, err := d.UIDOf("absent"); err == nil {
		t.Fatal("UIDOf for absent package succeeded")
	}
	pkgs := d.Packages()
	if len(pkgs) != 2 || pkgs[0] != "com.android.chrome" {
		t.Fatalf("packages = %v", pkgs)
	}
}

func TestStorageAndFactoryReset(t *testing.T) {
	d, _ := newTestDevice(t)
	d.Install("com.yandex.browser")
	if err := d.StoragePut("com.yandex.browser", "uuid", "abc-123"); err != nil {
		t.Fatal(err)
	}
	v, ok := d.StorageGet("com.yandex.browser", "uuid")
	if !ok || v != "abc-123" {
		t.Fatalf("get = %q, %v", v, ok)
	}
	if err := d.ClearAppData("com.yandex.browser"); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.StorageGet("com.yandex.browser", "uuid"); ok {
		t.Fatal("data survived factory reset")
	}
	if err := d.StoragePut("ghost", "k", "v"); err == nil {
		t.Fatal("put to uninstalled package succeeded")
	}
	if err := d.ClearAppData("ghost"); err == nil {
		t.Fatal("reset of uninstalled package succeeded")
	}
}

func TestDialDirect(t *testing.T) {
	d, inet := newTestDevice(t)
	startEcho(t, inet, "web.example", "US", 80)
	p := d.Install("com.android.chrome")
	conn, err := d.DialContext(context.Background(), p.UID, "web.example:80")
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("hi"))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(conn, buf); err != nil || string(buf) != "hi" {
		t.Fatalf("echo = %q, %v", buf, err)
	}
	conn.Close()
	// Accounting saw the egress bytes.
	if got := d.Accounting.TxBytes.Get(fmt.Sprint(p.UID)); got != 2 {
		t.Fatalf("tx bytes = %d", got)
	}
	if got := d.Accounting.RxBytes.Get(fmt.Sprint(p.UID)); got != 2 {
		t.Fatalf("rx bytes = %d", got)
	}
}

func TestDivertBrowserRedirects(t *testing.T) {
	d, inet := newTestDevice(t)
	startEcho(t, inet, "web.example", "US", 443)
	// The proxy listens on the device's own address.
	proxyL, err := inet.ListenIP(d.IP, 8080)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan netsim.Meta, 1)
	go func() {
		c, err := proxyL.Accept()
		if err != nil {
			return
		}
		got <- c.(netsim.MetaConn).Meta()
		c.Close()
	}()

	p := d.Install("com.opera.browser")
	if err := d.DivertBrowser(p.UID, "192.168.1.100:8080"); err != nil {
		t.Fatal(err)
	}
	if !d.DiversionActive(p.UID) {
		t.Fatal("diversion not active")
	}
	conn, err := d.DialContext(context.Background(), p.UID, "web.example:443")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	meta := <-got
	if !meta.Redirected || meta.OriginalDst != "web.example:443" || meta.OwnerUID != p.UID {
		t.Fatalf("meta = %+v", meta)
	}
}

func TestDiversionOnlyAffectsTargetUID(t *testing.T) {
	d, inet := newTestDevice(t)
	startEcho(t, inet, "web.example", "US", 443)
	inet.ListenIP(d.IP, 8080) // proxy exists but should not see this
	browser := d.Install("com.diverted")
	other := d.Install("com.other")
	d.DivertBrowser(browser.UID, "192.168.1.100:8080")

	conn, err := d.DialContext(context.Background(), other.UID, "web.example:443")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.(netsim.MetaConn).Meta().Redirected {
		t.Fatal("unrelated UID was diverted")
	}
}

func TestH3BlockDropsQUIC(t *testing.T) {
	d, _ := newTestDevice(t)
	d.Net.RegisterDomain("h3.example", "US")
	p := d.Install("com.android.chrome")
	if err := d.DivertBrowser(p.UID, "192.168.1.100:8080"); err != nil {
		t.Fatal(err)
	}
	_, err := d.SendUDP(p.UID, "h3.example", 443, []byte("quic-initial"))
	var drop *ErrFirewallDrop
	if !errors.As(err, &drop) {
		t.Fatalf("err = %v, want firewall drop", err)
	}
	// DNS over UDP still passes (no receiver → delivered=false, no error).
	delivered, err := d.SendUDP(p.UID, "h3.example", 53, []byte("dns"))
	if err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Fatal("no listener but delivered")
	}
}

func TestEnsureH3BlockIdempotent(t *testing.T) {
	d, _ := newTestDevice(t)
	if err := d.EnsureH3Block(); err != nil {
		t.Fatal(err)
	}
	if err := d.EnsureH3Block(); err != nil {
		t.Fatal(err)
	}
	rules, _ := d.Firewall.Rules("filter", "OUTPUT")
	count := 0
	for _, r := range rules {
		if r.Comment == "block-http3" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("h3 block rules = %d", count)
	}
}

func TestUndivertAll(t *testing.T) {
	d, _ := newTestDevice(t)
	p := d.Install("com.x")
	d.DivertBrowser(p.UID, "192.168.1.100:8080")
	d.UndivertAll()
	if d.DiversionActive(p.UID) {
		t.Fatal("diversion survived UndivertAll")
	}
}

func TestTrustStore(t *testing.T) {
	d, _ := newTestDevice(t)
	ca, err := pki.NewCA("mitmproxy", nil)
	if err != nil {
		t.Fatal(err)
	}
	d.InstallCA(ca.Cert)
	pool := d.TrustedRoots()
	leaf, _ := ca.Issue("site.example")
	if _, err := leaf.Leaf.Verify(x509VerifyOpts(pool)); err != nil {
		t.Fatalf("verification against trust store failed: %v", err)
	}
}

func TestStubResolverLogsQueries(t *testing.T) {
	d, inet := newTestDevice(t)
	ip := inet.RegisterDomain("site.example", "US")
	p := d.Install("com.app")
	got, err := d.Resolver().Lookup(p.UID, "site.example")
	if err != nil || !got.Equal(ip) {
		t.Fatalf("lookup = %v, %v", got, err)
	}
	qs := d.Resolver().QueriesByUID(p.UID)
	if len(qs) != 1 || qs[0].Name != "site.example" {
		t.Fatalf("queries = %+v", qs)
	}
	d.Resolver().ResetLog()
	if len(d.Resolver().Queries()) != 0 {
		t.Fatal("log survived reset")
	}
}

func TestStubResolverWireExchange(t *testing.T) {
	d, inet := newTestDevice(t)
	ip := inet.RegisterDomain("wire.example", "US")
	q := dnsmsg.NewQuery(42, "wire.example", dnsmsg.TypeA)
	raw, _ := q.Pack()
	respRaw, err := d.Resolver().Exchange(10000, raw)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnsmsg.Unpack(respRaw)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.ID != 42 || len(resp.Answers) != 1 || !resp.Answers[0].A.Equal(ip) {
		t.Fatalf("resp = %+v", resp)
	}
	// NXDOMAIN path.
	q2 := dnsmsg.NewQuery(43, "missing.example", dnsmsg.TypeA)
	raw2, _ := q2.Pack()
	respRaw2, err := d.Resolver().Exchange(10000, raw2)
	if err != nil {
		t.Fatal(err)
	}
	resp2, _ := dnsmsg.Unpack(respRaw2)
	if resp2.Header.RCode != dnsmsg.RCodeNXDomain {
		t.Fatalf("rcode = %v", resp2.Header.RCode)
	}
}

func TestCaptureTapSeesHandshakeAndData(t *testing.T) {
	d, inet := newTestDevice(t)
	startEcho(t, inet, "cap.example", "US", 80)
	tap := &CountingTap{}
	d.SetTap(tap)
	p := d.Install("com.app")
	conn, err := d.DialContext(context.Background(), p.UID, "cap.example:80")
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("data"))
	buf := make([]byte, 4)
	io.ReadFull(conn, buf)
	conn.Close()
	// SYN+SYNACK+ACK + 1 egress + 1 ingress + FIN = 6 minimum.
	if tap.Count() < 6 {
		t.Fatalf("tap packets = %d, want >= 6", tap.Count())
	}
}

func TestPcapTapProducesReadableCapture(t *testing.T) {
	d, inet := newTestDevice(t)
	startEcho(t, inet, "pcap.example", "US", 80)
	var buf bytes.Buffer
	tap := NewPcapTap(d, pcap.NewWriter(&buf, 0))
	d.SetTap(tap)
	p := d.Install("com.app")
	conn, _ := d.DialContext(context.Background(), p.UID, "pcap.example:80")
	conn.Write([]byte("x"))
	rb := make([]byte, 1)
	io.ReadFull(conn, rb)
	conn.Close()

	r, err := pcap.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != tap.Count() || len(recs) < 6 {
		t.Fatalf("records = %d, tap count = %d", len(recs), tap.Count())
	}
}

func TestDialUnknownHost(t *testing.T) {
	d, _ := newTestDevice(t)
	p := d.Install("com.app")
	if _, err := d.DialContext(context.Background(), p.UID, "ghost.example:80"); err == nil {
		t.Fatal("dial to unknown host succeeded")
	}
	if _, err := d.DialContext(context.Background(), p.UID, "no-port"); err == nil {
		t.Fatal("dial without port succeeded")
	}
}

func TestRootedFlag(t *testing.T) {
	d, _ := newTestDevice(t)
	if d.Rooted() {
		t.Fatal("device rooted by default")
	}
	d.SetRooted(true)
	if !d.Rooted() {
		t.Fatal("SetRooted failed")
	}
}

// x509VerifyOpts builds verify options pinned to the device trust pool at
// the virtual epoch.
func x509VerifyOpts(pool *x509.CertPool) x509.VerifyOptions {
	return x509.VerifyOptions{Roots: pool, CurrentTime: time.Now()}
}

func TestEBPFSockCreateVeto(t *testing.T) {
	d, inet := newTestDevice(t)
	startEcho(t, inet, "allowed.example", "US", 80)
	startEcho(t, inet, "banned.example", "US", 80)
	p := d.Install("com.app")
	// A parental-control-style program rejecting one destination.
	err := d.Hooks.Load(&ebpfsim.Program{
		Name: "deny_banned", Type: ebpfsim.AttachSockCreate, MaxInstructions: 16,
		Run: func(ctx *ebpfsim.Context) ebpfsim.Action {
			if ctx.DstHost == "banned.example" {
				return ebpfsim.ActionDrop
			}
			return ebpfsim.ActionPass
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.DialContext(context.Background(), p.UID, "banned.example:80"); err == nil {
		t.Fatal("vetoed destination dialled")
	}
	conn, err := d.DialContext(context.Background(), p.UID, "allowed.example:80")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// UDP path honours the veto too.
	if _, err := d.SendUDP(p.UID, "banned.example", 53, []byte("x")); err == nil {
		t.Fatal("vetoed UDP sent")
	}
}

func TestUDPAccounting(t *testing.T) {
	d, inet := newTestDevice(t)
	inet.RegisterDomain("udp.example", "US")
	p := d.Install("com.app")
	if _, err := d.SendUDP(p.UID, "udp.example", 5353, []byte("hello-udp")); err != nil {
		t.Fatal(err)
	}
	if got := d.Accounting.TxBytes.Get(fmt.Sprint(p.UID)); got != 9 {
		t.Fatalf("udp tx bytes = %d", got)
	}
}
