package match

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
)

// FuzzMatchVsNaive is the tentpole's correctness keystone: over
// arbitrary pattern sets and haystacks — including binary garbage —
// the automaton's matched-ID set must equal a naive strings.Contains
// sweep. The input encodes patterns and the haystack in one byte
// stream: 0xFF-separated chunks, first chunk is the haystack, the rest
// are patterns. Patterns are added in two batches with a scan between
// them, so the fuzz also crosses the stable/recent tier seam.
func FuzzMatchVsNaive(f *testing.F) {
	f.Add([]byte("ushers\xffhe\xffshe\xffhis\xffhers"))
	f.Add([]byte("https://a.example/p?q=1\xffa.example\xffhttps://a.example/p?q=1\xff70a1"))
	f.Add([]byte("aaaaaaaa\xffa\xffaa\xffaaa\xffaaaa"))
	f.Add([]byte("\x00\x01\x02\xff\x00\x01\xff\x02"))
	f.Add([]byte("plain body with dGVzdA== inside\xffdGVzdA==\xff74657374"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		chunks := bytes.Split(data, []byte{0xFF})
		hay := chunks[0]
		var pats []string
		seen := map[string]bool{}
		for _, c := range chunks[1:] {
			if len(c) == 0 || len(c) > 64 || seen[string(c)] {
				continue
			}
			seen[string(c)] = true
			pats = append(pats, string(c))
			if len(pats) == 32 {
				break
			}
		}

		old := promoteAt
		promoteAt = 8 // cross the tier seam even for small sets
		defer func() { promoteAt = old }()

		ps := NewPatternSet(fmt.Sprintf("fuzz-%d", len(pats)))
		half := len(pats) / 2
		for i := 0; i < half; i++ {
			if id := ps.Add(pats[i]); id != i {
				t.Fatalf("Add(%q) = %d, want %d", pats[i], id, i)
			}
		}
		ps.Scan(hay).Release() // force an interim compile
		for i := half; i < len(pats); i++ {
			ps.Add(pats[i])
		}

		ms := ps.Scan(hay)
		defer ms.Release()
		got := append([]int(nil), ms.IDs()...)
		sort.Ints(got)
		var want []int
		for id, p := range pats {
			if strings.Contains(string(hay), p) {
				want = append(want, id)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("automaton matched %v, naive matched %v (hay %q, pats %q)", got, want, hay, pats)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("automaton matched %v, naive matched %v (hay %q, pats %q)", got, want, hay, pats)
			}
		}
		for _, id := range want {
			if !ms.Has(id) {
				t.Fatalf("Has(%d) false for matched pattern %q", id, pats[id])
			}
		}
	})
}
