package match

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// naiveMatches is the reference the automaton must reproduce: one
// strings.Contains pass per pattern, exactly what the pre-engine leak
// scanner did.
func naiveMatches(hay string, pats []string) []int {
	var out []int
	for id, p := range pats {
		if strings.Contains(hay, p) {
			out = append(out, id)
		}
	}
	return out
}

func sortedIDs(ms *MatchSet) []int {
	ids := append([]int(nil), ms.IDs()...)
	sort.Ints(ids)
	return ids
}

func assertScan(t *testing.T, ps *PatternSet, pats []string, hay string) {
	t.Helper()
	ms := ps.Scan([]byte(hay))
	defer ms.Release()
	got := sortedIDs(ms)
	want := naiveMatches(hay, pats)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hay %q: automaton found %v, naive found %v", hay, got, want)
	}
	for _, id := range want {
		if !ms.Has(id) {
			t.Fatalf("hay %q: Has(%d) = false for a matched pattern", hay, id)
		}
	}
}

func TestClassicOverlaps(t *testing.T) {
	// The textbook Aho-Corasick set: outputs must surface via suffix
	// links ("she" ends, so "he" must be reported too).
	pats := []string{"he", "she", "his", "hers"}
	ps := NewPatternSet("test-classic")
	for i, p := range pats {
		if id := ps.Add(p); id != i {
			t.Fatalf("Add(%q) = %d, want %d", p, id, i)
		}
	}
	for _, hay := range []string{"ushers", "she", "h", "", "hishershe", "xyz"} {
		assertScan(t, ps, pats, hay)
	}
}

func TestAddDedupAndGeneration(t *testing.T) {
	ps := NewPatternSet("test-dedup")
	a := ps.Add("needle")
	g := ps.Generation()
	if b := ps.Add("needle"); b != a {
		t.Fatalf("re-Add returned %d, want %d", b, a)
	}
	if ps.Generation() != g {
		t.Fatal("re-Add bumped the generation")
	}
	if ps.Len() != 1 {
		t.Fatalf("Len = %d", ps.Len())
	}
	if id := ps.Add(""); id != -1 {
		t.Fatalf("empty pattern accepted with id %d", id)
	}
}

func TestIncrementalAddsAcrossTiers(t *testing.T) {
	// Force tiny promotion windows so the test exercises recent-tier
	// compiles, promotion, and post-promotion adds.
	old := promoteAt
	promoteAt = 4
	defer func() { promoteAt = old }()

	ps := NewPatternSet("test-tiers")
	var pats []string
	rng := rand.New(rand.NewSource(7))
	alpha := "abcdeABCDE0123/_."
	for round := 0; round < 50; round++ {
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			l := 1 + rng.Intn(6)
			var sb strings.Builder
			for j := 0; j < l; j++ {
				sb.WriteByte(alpha[rng.Intn(len(alpha))])
			}
			p := sb.String()
			id := ps.Add(p)
			if prev := indexOf(pats, p); prev >= 0 {
				if id != prev {
					t.Fatalf("dup %q got id %d, want %d", p, id, prev)
				}
			} else {
				if id != len(pats) {
					t.Fatalf("%q got id %d, want %d", p, id, len(pats))
				}
				pats = append(pats, p)
			}
		}
		var hb strings.Builder
		for j := 0; j < 40; j++ {
			hb.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		// Embed a known pattern so matches actually occur.
		hay := hb.String() + pats[rng.Intn(len(pats))] + hb.String()
		assertScan(t, ps, pats, hay)
	}
}

func indexOf(ss []string, s string) int {
	for i, v := range ss {
		if v == s {
			return i
		}
	}
	return -1
}

func TestMatchSetReuse(t *testing.T) {
	ps := NewPatternSet("test-reuse")
	ps.Add("aaa")
	ps.Add("bbb")
	ms := ps.Scan([]byte("xxaaaxx"))
	if !ms.Has(0) || ms.Has(1) {
		t.Fatalf("first scan: Has(0)=%v Has(1)=%v", ms.Has(0), ms.Has(1))
	}
	ms.Release()
	ms = ps.Scan([]byte("xxbbbxx"))
	defer ms.Release()
	if ms.Has(0) || !ms.Has(1) {
		t.Fatalf("pooled MatchSet kept stale state: Has(0)=%v Has(1)=%v", ms.Has(0), ms.Has(1))
	}
	if ms.Has(-1) || ms.Has(99) {
		t.Fatal("out-of-range Has must be false")
	}
}

func TestBinaryPatterns(t *testing.T) {
	// Byte-exact matching: NUL bytes, high bytes, no UTF-8 assumptions.
	pats := []string{"\x00\x01", "\xff\xfe\xff", "a\x00b"}
	ps := NewPatternSet("test-binary")
	for _, p := range pats {
		ps.Add(p)
	}
	for _, hay := range []string{"\x00\x01", "x\xff\xfe\xffy", "a\x00b", "\xff\xfe", "ab"} {
		assertScan(t, ps, pats, hay)
	}
}

func TestCaseSensitivity(t *testing.T) {
	ps := NewPatternSet("test-case")
	ps.Add("Needle")
	ms := ps.Scan([]byte("a needle in a haystack"))
	if len(ms.IDs()) != 0 {
		t.Fatal("case-sensitive engine matched a lowercase haystack")
	}
	ms.Release()
	ms = ps.Scan([]byte("a Needle in a haystack"))
	defer ms.Release()
	if !ms.Has(0) {
		t.Fatal("exact-case needle missed")
	}
}

func TestConcurrentAddAndScan(t *testing.T) {
	// Smoke for the race detector: concurrent Add + Scan must be safe.
	ps := NewPatternSet("test-conc")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			ps.Add(fmt.Sprintf("needle-%d|", i))
		}
	}()
	hay := []byte("xx needle-3| yy needle-199| zz")
	for i := 0; i < 200; i++ {
		ms := ps.Scan(hay)
		ms.Release()
	}
	<-done
	ms := ps.Scan(hay)
	defer ms.Release()
	if len(ms.IDs()) != 2 {
		t.Fatalf("final scan found %d needles, want 2", len(ms.IDs()))
	}
}

func TestDictFoldLookup(t *testing.T) {
	d := NewDict(true)
	d.Add("device_type", 0)
	d.Add("DevType", 0)
	d.Add("devtype", 3) // second payload on the same folded word
	if got := d.Lookup("DEVICE_TYPE"); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("Lookup(DEVICE_TYPE) = %v", got)
	}
	if got := d.Lookup("devtype"); !reflect.DeepEqual(got, []int{0, 3}) {
		t.Fatalf("Lookup(devtype) = %v", got)
	}
	if got := d.Lookup("unknown"); got != nil {
		t.Fatalf("Lookup(unknown) = %v", got)
	}
	long := strings.Repeat("A", 100) + "devtype"
	if got := d.Lookup(long); got != nil {
		t.Fatalf("long lookup = %v", got)
	}
	d.Add(long, 9)
	if got := d.Lookup(strings.Repeat("a", 100) + "DEVTYPE"); !reflect.DeepEqual(got, []int{9}) {
		t.Fatalf("folded long lookup = %v", got)
	}
}

func TestDictNoFold(t *testing.T) {
	d := NewDict(false)
	d.Add("Key", 1)
	if d.Lookup("key") != nil {
		t.Fatal("unfolded dict matched different case")
	}
	if got := d.Lookup("Key"); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("Lookup(Key) = %v", got)
	}
}

func TestLookupDoesNotAllocateForFoldedKeys(t *testing.T) {
	d := NewDict(true)
	d.Add("uuid", 0)
	allocs := testing.AllocsPerRun(100, func() {
		d.Lookup("uuid")
		d.Lookup("UUID")
	})
	if allocs > 0 {
		t.Fatalf("Lookup allocated %.1f times per run", allocs)
	}
}

// BenchmarkScanScalingPatterns shows the single-pass property: scan
// cost over a fixed haystack must stay roughly flat as the pattern
// population grows 64×.
func BenchmarkScanScalingPatterns(b *testing.B) {
	hay := []byte(strings.Repeat("GET /path?q=percent%20encoded&id=deadbeefcafebabe ", 40))
	for _, n := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("patterns=%d", n), func(b *testing.B) {
			ps := NewPatternSet(fmt.Sprintf("bench-%d", n))
			for i := 0; i < n; i++ {
				ps.Add(fmt.Sprintf("https://site-%04d.example/landing?visit=%d", i, i))
			}
			ps.Scan(hay).Release() // compile outside the timed region
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ps.Scan(hay).Release()
			}
		})
	}
}
