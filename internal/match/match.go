// Package match is Panoptes' deterministic multi-pattern matching
// engine: the single-pass core of the capture→analysis hot path. The
// leak detector's needle population grows with every active visit —
// each visit URL and hostname expands into up to ten searchable
// representations (plain, escaped, two Base64 alphabets, hex, three
// digests) — and the pre-engine scanners paid one strings.Contains
// pass per needle per flow. A PatternSet compiles the needles into an
// Aho-Corasick automaton instead, so every flow haystack is scanned in
// one pass regardless of how many patterns are registered, with
// byte-exact (case-sensitive) semantics identical to substring search.
//
// Patterns are added incrementally under a generation counter. Because
// classic Aho-Corasick cannot extend a compiled automaton, the set
// keeps two tiers: a large stable automaton rebuilt geometrically
// rarely, and a small recent automaton covering the patterns added
// since the last promotion, rebuilt cheaply whenever the generation
// moves. A scan walks both (still O(haystack) total) and reports the
// union; amortised compile cost stays near O(total pattern bytes ×
// log patterns) instead of the quadratic cost of recompiling the full
// set on every add.
//
// The package also provides Dict, an exact-match keyword dictionary
// with optional ASCII case folding, used by internal/pii to dispatch a
// parameter key to its candidate detectors in one hash probe instead
// of one anchored regexp match per detector.
package match

import (
	"slices"
	"sync"
	"time"

	"panoptes/internal/obs"
)

func init() {
	obs.Default.Help("match_automaton_rebuilds_total", "Aho-Corasick automaton compilations by pattern set and tier (stable promotions vs cheap recent-tier rebuilds).")
	obs.Default.Help("match_scan_ns", "Single-pass multi-pattern scan latency in nanoseconds, by pattern set.")
	obs.Default.Help("match_patterns", "Patterns currently registered in each pattern set.")
}

// scanBuckets span 0.25µs .. ~4ms in nanoseconds, the plausible range
// for one flow-haystack pass.
var scanBuckets = obs.ExponentialBuckets(250, 4, 8)

// promoteAt is the recent-tier size (in patterns) that triggers a full
// stable recompilation. ~64 visits' worth of leak needles: large enough
// to amortise stable rebuilds, small enough that the recent tier stays
// a trivial compile. Variable, not const, so tests can exercise
// promotion without registering thousands of patterns.
var promoteAt = 768

// PatternSet is an incrementally growable set of byte-exact patterns,
// each identified by a dense integer ID (its registration order).
// Add, Scan and the accessors are safe for concurrent use.
type PatternSet struct {
	name string

	mu   sync.RWMutex
	ids  map[string]int
	pats []string
	gen  uint64

	compiledGen uint64
	stable      *Automaton // patterns [0, stableN)
	recent      *Automaton // patterns [stableN, len(pats)) since last promotion
	stableN     int

	pool sync.Pool // *MatchSet

	rebuildStable *obs.Counter
	rebuildRecent *obs.Counter
	scanNS        *obs.Histogram
	gauge         *obs.Gauge
}

// NewPatternSet returns an empty set. The name labels the set's obs
// series (match_automaton_rebuilds_total, match_scan_ns).
func NewPatternSet(name string) *PatternSet {
	ps := &PatternSet{
		name:          name,
		ids:           make(map[string]int),
		rebuildStable: obs.Default.Counter("match_automaton_rebuilds_total", "set", name, "tier", "stable"),
		rebuildRecent: obs.Default.Counter("match_automaton_rebuilds_total", "set", name, "tier", "recent"),
		scanNS:        obs.Default.Histogram("match_scan_ns", scanBuckets, "set", name),
		gauge:         obs.Default.Gauge("match_patterns", "set", name),
	}
	ps.pool.New = func() any { return &MatchSet{ps: ps} }
	return ps
}

// Add registers a pattern and returns its ID. Registering an existing
// pattern returns the original ID without bumping the generation; the
// empty pattern is rejected with -1 (it would match everywhere).
func (ps *PatternSet) Add(pattern string) int {
	if pattern == "" {
		return -1
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if id, ok := ps.ids[pattern]; ok {
		return id
	}
	id := len(ps.pats)
	ps.ids[pattern] = id
	ps.pats = append(ps.pats, pattern)
	ps.gen++
	ps.gauge.Set(float64(len(ps.pats)))
	return id
}

// Len returns the number of registered patterns.
func (ps *PatternSet) Len() int {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	return len(ps.pats)
}

// Generation returns the add counter; it changes exactly when the
// pattern population does, so callers can cache derived state.
func (ps *PatternSet) Generation() uint64 {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	return ps.gen
}

// automata returns the compiled tiers, recompiling whatever the
// generation counter says is stale: the cheap recent tier on every
// add-batch, the stable tier only when the recent tier outgrows
// promoteAt.
func (ps *PatternSet) automata() (stable, recent *Automaton) {
	ps.mu.RLock()
	if ps.compiledGen == ps.gen && (ps.stable != nil || len(ps.pats) == 0) {
		stable, recent = ps.stable, ps.recent
		ps.mu.RUnlock()
		return stable, recent
	}
	ps.mu.RUnlock()

	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.compiledGen != ps.gen || (ps.stable == nil && len(ps.pats) > 0) {
		if ps.stable == nil || len(ps.pats)-ps.stableN >= promoteAt {
			ps.stable = compile(ps.pats, 0)
			ps.stableN = len(ps.pats)
			ps.recent = nil
			ps.rebuildStable.Inc()
		} else {
			ps.recent = compile(ps.pats[ps.stableN:], ps.stableN)
			ps.rebuildRecent.Inc()
		}
		ps.compiledGen = ps.gen
	}
	return ps.stable, ps.recent
}

// Scan walks the haystack once per compiled tier (at most twice in
// total, independent of pattern count) and returns the set of pattern
// IDs that occur in it as substrings. Release the result when done.
func (ps *PatternSet) Scan(hay []byte) *MatchSet {
	start := time.Now()
	stable, recent := ps.automata()
	ms := ps.pool.Get().(*MatchSet)
	if stable != nil {
		stable.scanInto(hay, ms)
	}
	if recent != nil {
		recent.scanInto(hay, ms)
	}
	ps.scanNS.Observe(float64(time.Since(start).Nanoseconds()))
	return ms
}

// MatchSet is the result of one Scan: constant-time membership over
// the matched pattern IDs. Not safe for concurrent use.
type MatchSet struct {
	ps   *PatternSet
	seen []bool
	hits []int
}

// Has reports whether the pattern with the given ID matched.
func (m *MatchSet) Has(id int) bool {
	return id >= 0 && id < len(m.seen) && m.seen[id]
}

// IDs returns the matched pattern IDs in first-match order. The slice
// is owned by the MatchSet and dies with Release.
func (m *MatchSet) IDs() []int { return m.hits }

// Release resets the set and returns it to its PatternSet's pool.
func (m *MatchSet) Release() {
	for _, id := range m.hits {
		m.seen[id] = false
	}
	m.hits = m.hits[:0]
	m.ps.pool.Put(m)
}

// mark records a matched global pattern ID, deduplicating repeats.
func (m *MatchSet) mark(id int) {
	if id >= len(m.seen) {
		grown := make([]bool, id+1)
		copy(grown, m.seen)
		m.seen = grown
	}
	if !m.seen[id] {
		m.seen[id] = true
		m.hits = append(m.hits, id)
	}
}

// Automaton is one compiled Aho-Corasick tier: an immutable goto/fail
// trie in CSR form, safe for concurrent scans. Pattern outputs carry
// the PatternSet's global IDs, so tiers share one MatchSet.
type Automaton struct {
	rootNext [256]int32 // dense root transitions (fail closure built in)
	lo       []int32    // per-node edge range start; len = nodes+1
	elab     []byte     // edge labels, sorted per node
	etgt     []int32    // edge targets
	fail     []int32
	out      []int32 // global pattern ID ending at node, or -1
	olink    []int32 // nearest terminal proper-suffix node, or 0
	hasOut   []bool  // out >= 0 || olink != 0
	patterns int
}

// Patterns returns how many patterns this tier covers.
func (a *Automaton) Patterns() int { return a.patterns }

// Nodes returns the trie size (diagnostics and tests).
func (a *Automaton) Nodes() int { return len(a.fail) }

// compile builds a tier over patterns, assigning output IDs
// baseID+index. Patterns are assumed deduplicated and non-empty
// (PatternSet guarantees both).
func compile(patterns []string, baseID int) *Automaton {
	type tnode struct {
		next  map[byte]int32
		fail  int32
		out   int32
		olink int32
	}
	nodes := []tnode{{out: -1}}
	for i, p := range patterns {
		s := int32(0)
		for j := 0; j < len(p); j++ {
			c := p[j]
			t, ok := nodes[s].next[c]
			if !ok {
				if nodes[s].next == nil {
					nodes[s].next = make(map[byte]int32, 1)
				}
				nodes = append(nodes, tnode{out: -1})
				t = int32(len(nodes) - 1)
				nodes[s].next[c] = t
			}
			s = t
		}
		nodes[s].out = int32(baseID + i)
	}

	// edgeKeys lists a node's edge labels in byte order. Iterating the
	// map's actual keys instead of probing all 256 byte values keeps the
	// build O(edges log fanout) — the all-bytes probe made compilation
	// the dominant cost of incremental adds.
	var ebuf []byte
	edgeKeys := func(m map[byte]int32) []byte {
		ebuf = ebuf[:0]
		for c := range m {
			ebuf = append(ebuf, c)
		}
		slices.Sort(ebuf)
		return ebuf
	}

	// BFS fail links. Children are visited in byte order for a fully
	// deterministic build (not required for correctness — fail links are
	// order-independent within a level — but it keeps the structure
	// reproducible for tests and debugging).
	queue := make([]int32, 0, len(nodes))
	for _, c := range edgeKeys(nodes[0].next) {
		queue = append(queue, nodes[0].next[c])
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		fu := nodes[u].fail
		if nodes[fu].out >= 0 {
			nodes[u].olink = fu
		} else {
			nodes[u].olink = nodes[fu].olink
		}
		for _, c := range edgeKeys(nodes[u].next) {
			v := nodes[u].next[c]
			f := nodes[u].fail
			for f != 0 {
				if t, ok := nodes[f].next[c]; ok {
					f = t
					break
				}
				f = nodes[f].fail
			}
			if f == 0 {
				if t, ok := nodes[0].next[c]; ok && t != v {
					f = t
				}
			}
			nodes[v].fail = f
			queue = append(queue, v)
		}
	}

	// Flatten to CSR.
	a := &Automaton{
		lo:       make([]int32, len(nodes)+1),
		fail:     make([]int32, len(nodes)),
		out:      make([]int32, len(nodes)),
		olink:    make([]int32, len(nodes)),
		hasOut:   make([]bool, len(nodes)),
		patterns: len(patterns),
	}
	edges := 0
	for _, n := range nodes {
		edges += len(n.next)
	}
	a.elab = make([]byte, 0, edges)
	a.etgt = make([]int32, 0, edges)
	for i := range nodes {
		n := &nodes[i]
		a.lo[i] = int32(len(a.elab))
		for _, c := range edgeKeys(n.next) {
			a.elab = append(a.elab, c)
			a.etgt = append(a.etgt, n.next[c])
		}
		a.fail[i] = n.fail
		a.out[i] = n.out
		a.olink[i] = n.olink
		a.hasOut[i] = n.out >= 0 || n.olink != 0
	}
	a.lo[len(nodes)] = int32(len(a.elab))
	for c, t := range nodes[0].next {
		a.rootNext[c] = t
	}
	return a
}

// step advances the automaton by one byte, following fail links on
// mismatch. Edge lists are sorted, so the linear probe can stop early;
// fanout beyond a handful of edges is rare outside the root, which has
// its own dense table.
func (a *Automaton) step(s int32, c byte) int32 {
	for s != 0 {
		lo, hi := a.lo[s], a.lo[s+1]
		if hi-lo > 8 {
			for lo < hi {
				mid := (lo + hi) / 2
				if a.elab[mid] < c {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < a.lo[s+1] && a.elab[lo] == c {
				return a.etgt[lo]
			}
		} else {
			for i := lo; i < hi; i++ {
				if a.elab[i] == c {
					return a.etgt[i]
				}
				if a.elab[i] > c {
					break
				}
			}
		}
		s = a.fail[s]
	}
	return a.rootNext[c]
}

// scanInto marks every pattern of this tier occurring in hay.
func (a *Automaton) scanInto(hay []byte, ms *MatchSet) {
	if a.patterns == 0 {
		return
	}
	s := int32(0)
	for i := 0; i < len(hay); i++ {
		s = a.step(s, hay[i])
		if !a.hasOut[s] {
			continue
		}
		t := s
		for t != 0 {
			if id := a.out[t]; id >= 0 {
				ms.mark(int(id))
			}
			t = a.olink[t]
		}
	}
}
