package match

// Dict is an exact-match (whole-string, anchored) keyword dictionary
// with optional ASCII case folding. Each word carries one or more
// payload IDs, kept in insertion order — internal/pii registers its
// detector indices in detector order, so Lookup hands candidates back
// in the exact order the pre-engine regexp loop evaluated them.
//
// Build once (package init), then Lookup freely: Dict is immutable
// after construction and safe for concurrent reads. Add is not safe to
// interleave with Lookup.
type Dict struct {
	fold bool
	m    map[string][]int
}

// NewDict returns an empty dictionary. With fold set, words and
// lookups are ASCII-lowercased, matching a (?i) anchored pattern.
func NewDict(fold bool) *Dict {
	return &Dict{fold: fold, m: make(map[string][]int)}
}

// Add registers a word with a payload ID. Duplicate (word, id) pairs
// are kept; callers register each id once per word.
func (d *Dict) Add(word string, id int) {
	if d.fold {
		word = foldASCII(word)
	}
	d.m[word] = append(d.m[word], id)
}

// Len returns the number of distinct words.
func (d *Dict) Len() int { return len(d.m) }

// Lookup returns the payload IDs of the word (nil when absent). The
// returned slice is shared — callers must not mutate it. Folding a
// short already-lowercase key allocates nothing.
func (d *Dict) Lookup(word string) []int {
	if !d.fold {
		return d.m[word]
	}
	// Fast path: already folded (the overwhelmingly common case for
	// wire parameter names) — look up without allocating.
	folded := true
	for i := 0; i < len(word); i++ {
		if c := word[i]; c >= 'A' && c <= 'Z' {
			folded = false
			break
		}
	}
	if folded {
		return d.m[word]
	}
	if len(word) <= 64 {
		var buf [64]byte
		b := buf[:len(word)]
		for i := 0; i < len(word); i++ {
			c := word[i]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			b[i] = c
		}
		return d.m[string(b)] // map lookup by []byte-to-string does not allocate
	}
	return d.m[foldASCII(word)]
}

func foldASCII(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
