package leak

import (
	"sync"

	"panoptes/internal/capture"
	"panoptes/internal/pipeline"
)

// scanEntry is one flow's scan result in arrival order. Retraction
// marks it dead instead of splicing, so undo closures stay O(1).
type scanEntry struct {
	finding Finding
	live    bool
}

// StreamScanner is the incremental form of the history-leak scan: each
// committed flow is searched as it arrives and the finding (at most
// one per flow) folded into the running set. The search itself is a
// single pass of the detector's shared Aho-Corasick engine over the
// flow haystack — every active visit's representations are interned
// into one automaton, so per-flow cost no longer grows with the number
// of concurrent visits. Implements pipeline.Analyzer (plus Seal and
// Reset).
type StreamScanner struct {
	det    *Detector
	origin capture.Origin // filter for tap-driven use; "" scans every flow

	mu      sync.Mutex
	j       pipeline.Journal
	entries []*scanEntry
}

// NewStreamScanner builds a scanner over d's encoding set. A non-empty
// origin restricts tap-driven Observe calls to flows of that origin
// (batch replay via Detector.Scan always scans every flow).
func NewStreamScanner(d *Detector, origin capture.Origin) *StreamScanner {
	return &StreamScanner{det: d, origin: origin}
}

// Observe scans one committed flow from the tap stream.
func (s *StreamScanner) Observe(f *capture.Flow) {
	if s.origin != "" && f.Origin != s.origin {
		return
	}
	s.observe(f)
}

// observe is the origin-agnostic per-flow step shared with batch replay.
func (s *StreamScanner) observe(f *capture.Flow) {
	fnd, ok := s.scanOne(f)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := &scanEntry{finding: fnd, live: true}
	s.entries = append(s.entries, e)
	s.j.Note(f.Attempt, func() { e.live = false })
}

// scanOne runs the per-flow leak search (interning, automaton compile
// and the scan itself all happen outside the state lock). The haystack
// is built in a pooled buffer and searched in one automaton pass; the
// matched pattern IDs then resolve against the visit's needles in
// priority order, reproducing the original search exactly: full URL
// before domain-only, cheapest encoding first.
func (s *StreamScanner) scanOne(f *capture.Flow) (Finding, bool) {
	if f.VisitURL == "" {
		return Finding{}, false
	}
	v := s.det.visitFor(f.VisitURL)
	if !v.ok {
		return Finding{}, false
	}
	if f.Host == v.host {
		return Finding{}, false // talking to the visited site is not exfiltration
	}
	// A DoH query to a public resolver necessarily carries the visited
	// hostname — that is name resolution doing its job, reported by the
	// DNS-usage analysis (the paper's 8/7 DoH split), not a history leak.
	// DoH bodies sent anywhere else still count.
	if IsDoHFlow(f) && dohResolvers[f.Host] {
		return Finding{}, false
	}

	// DoH flows get the decoded qnames appended, bounded by the body size.
	buf := haystackPool.Get(len(f.Path) + 2*len(f.RawQuery) + 2*len(f.Body) + 5)
	defer haystackPool.Put(buf)
	writeHaystack(buf, f)
	ms := s.det.pats.Scan(buf.Bytes())
	defer ms.Release()

	if enc, ok := v.full.match(ms); ok {
		return Finding{
			Browser: f.Browser, Host: f.Host, Kind: KindFullURL,
			Encoding: enc, VisitURL: f.VisitURL, Incognito: f.Incognito, FlowID: f.ID,
		}, true
	}
	// Domain-only: the visited hostname appears but the full URL does
	// not (dom is nil for single-label hosts).
	if v.dom != nil {
		if enc, ok := v.dom.match(ms); ok {
			return Finding{
				Browser: f.Browser, Host: f.Host, Kind: KindDomainOnly,
				Encoding: enc, VisitURL: f.VisitURL, Incognito: f.Incognito, FlowID: f.ID,
			}, true
		}
	}
	return Finding{}, false
}

// Retract undoes the attempt's findings.
func (s *StreamScanner) Retract(attempt int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.j.Retract(attempt)
}

// Seal discards the attempt's undo log.
func (s *StreamScanner) Seal(attempt int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.j.Seal(attempt)
}

// Reset drops all findings and undo state. The detector's interned
// needles and compiled automaton survive: they are a pure function of
// the values searched so far and stay valid across campaigns.
func (s *StreamScanner) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = nil
	s.j.Reset()
}

// Findings returns the live findings in canonical sort order.
func (s *StreamScanner) Findings() []Finding {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Finding
	for _, e := range s.entries {
		if e.live {
			out = append(out, e.finding)
		}
	}
	sortFindings(out)
	return out
}

// Finalize implements pipeline.Analyzer.
func (s *StreamScanner) Finalize() any { return s.Findings() }
