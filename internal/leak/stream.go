package leak

import (
	"net/url"
	"strings"
	"sync"

	"panoptes/internal/capture"
	"panoptes/internal/pipeline"
)

// scanEntry is one flow's scan result in arrival order. Retraction
// marks it dead instead of splicing, so undo closures stay O(1).
type scanEntry struct {
	finding Finding
	live    bool
}

// StreamScanner is the incremental form of the history-leak scan: each
// committed flow is searched as it arrives and the finding (at most
// one per flow) folded into the running set. Representations of a
// visit URL or host — the digest and Base64 computation that makes the
// scan the analysis plane's hottest loop — are cached per value, since
// every flow of the same visit searches for the same strings.
// Implements pipeline.Analyzer (plus Seal and Reset).
type StreamScanner struct {
	det    *Detector
	origin capture.Origin // filter for tap-driven use; "" scans every flow

	repMu    sync.RWMutex
	repCache map[string]map[Encoding][]string

	mu      sync.Mutex
	j       pipeline.Journal
	entries []*scanEntry
}

// NewStreamScanner builds a scanner over d's encoding set. A non-empty
// origin restricts tap-driven Observe calls to flows of that origin
// (batch replay via Detector.Scan always scans every flow).
func NewStreamScanner(d *Detector, origin capture.Origin) *StreamScanner {
	return &StreamScanner{det: d, origin: origin, repCache: make(map[string]map[Encoding][]string)}
}

// Observe scans one committed flow from the tap stream.
func (s *StreamScanner) Observe(f *capture.Flow) {
	if s.origin != "" && f.Origin != s.origin {
		return
	}
	s.observe(f)
}

// observe is the origin-agnostic per-flow step shared with batch replay.
func (s *StreamScanner) observe(f *capture.Flow) {
	fnd, ok := s.scanOne(f)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := &scanEntry{finding: fnd, live: true}
	s.entries = append(s.entries, e)
	s.j.Note(f.Attempt, func() { e.live = false })
}

// scanOne runs the per-flow leak search (the hashing happens outside
// the state lock).
func (s *StreamScanner) scanOne(f *capture.Flow) (Finding, bool) {
	if f.VisitURL == "" {
		return Finding{}, false
	}
	vu, err := url.Parse(f.VisitURL)
	if err != nil {
		return Finding{}, false
	}
	visitHost := vu.Hostname()
	if f.Host == visitHost {
		return Finding{}, false // talking to the visited site is not exfiltration
	}

	hay := haystack(f)
	if enc, ok := s.search(hay, f.VisitURL); ok {
		return Finding{
			Browser: f.Browser, Host: f.Host, Kind: KindFullURL,
			Encoding: enc, VisitURL: f.VisitURL, Incognito: f.Incognito, FlowID: f.ID,
		}, true
	}
	// Domain-only: the visited hostname appears but the full URL does
	// not. Require a host of at least two labels to avoid noise.
	if strings.Contains(visitHost, ".") {
		if enc, ok := s.search(hay, visitHost); ok {
			return Finding{
				Browser: f.Browser, Host: f.Host, Kind: KindDomainOnly,
				Encoding: enc, VisitURL: f.VisitURL, Incognito: f.Incognito, FlowID: f.ID,
			}, true
		}
	}
	return Finding{}, false
}

// search looks for value inside the haystack under the detector's
// encodings, cheapest encoding first.
func (s *StreamScanner) search(hay, value string) (Encoding, bool) {
	reps := s.reps(value)
	for _, enc := range encodingOrder {
		for _, rep := range reps[enc] {
			if rep != "" && strings.Contains(hay, rep) {
				return enc, true
			}
		}
	}
	return "", false
}

// reps returns the cached searchable forms of value, computing and
// publishing them on first use.
func (s *StreamScanner) reps(value string) map[Encoding][]string {
	s.repMu.RLock()
	r, ok := s.repCache[value]
	s.repMu.RUnlock()
	if ok {
		return r
	}
	r = representations(value, s.det.Encodings)
	s.repMu.Lock()
	if prev, ok := s.repCache[value]; ok {
		r = prev
	} else {
		s.repCache[value] = r
	}
	s.repMu.Unlock()
	return r
}

// Retract undoes the attempt's findings.
func (s *StreamScanner) Retract(attempt int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.j.Retract(attempt)
}

// Seal discards the attempt's undo log.
func (s *StreamScanner) Seal(attempt int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.j.Seal(attempt)
}

// Reset drops all findings and undo state (the representation cache
// survives: it is a pure function of the detector's encoding set).
func (s *StreamScanner) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = nil
	s.j.Reset()
}

// Findings returns the live findings in canonical sort order.
func (s *StreamScanner) Findings() []Finding {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Finding
	for _, e := range s.entries {
		if e.live {
			out = append(out, e.finding)
		}
	}
	sortFindings(out)
	return out
}

// Finalize implements pipeline.Analyzer.
func (s *StreamScanner) Finalize() any { return s.Findings() }
