package leak

import (
	"encoding/base64"
	"fmt"
	"math/rand"
	"net/url"
	"strings"
	"testing"

	"panoptes/internal/capture"
)

// naiveScanOne replicates the pre-engine per-flow search verbatim: a
// freshly built haystack string (including the duplicate unescaped
// query) probed with strings.Contains per representation, cheapest
// encoding first, full URL before domain-only. The automaton path must
// be byte-identical to this.
func naiveScanOne(d *Detector, f *capture.Flow) (Finding, bool) {
	if f.VisitURL == "" {
		return Finding{}, false
	}
	vu, err := url.Parse(f.VisitURL)
	if err != nil {
		return Finding{}, false
	}
	visitHost := vu.Hostname()
	if f.Host == visitHost {
		return Finding{}, false
	}
	var sb strings.Builder
	sb.WriteString(f.Path)
	sb.WriteByte('\n')
	sb.WriteString(f.RawQuery)
	sb.WriteByte('\n')
	if unescaped, err := url.QueryUnescape(f.RawQuery); err == nil {
		sb.WriteString(unescaped)
		sb.WriteByte('\n')
	}
	sb.Write(f.Body)
	hay := sb.String()

	search := func(value string) (Encoding, bool) {
		reps := representations(value, d.Encodings)
		for _, enc := range encodingOrder {
			for _, rep := range reps[enc] {
				if rep != "" && strings.Contains(hay, rep) {
					return enc, true
				}
			}
		}
		return "", false
	}
	if enc, ok := search(f.VisitURL); ok {
		return Finding{
			Browser: f.Browser, Host: f.Host, Kind: KindFullURL,
			Encoding: enc, VisitURL: f.VisitURL, Incognito: f.Incognito, FlowID: f.ID,
		}, true
	}
	if strings.Contains(visitHost, ".") {
		if enc, ok := search(visitHost); ok {
			return Finding{
				Browser: f.Browser, Host: f.Host, Kind: KindDomainOnly,
				Encoding: enc, VisitURL: f.VisitURL, Incognito: f.Incognito, FlowID: f.ID,
			}, true
		}
	}
	return Finding{}, false
}

// leakFlows builds a mixed corpus over n visits: clean flows, full-URL
// and domain-only leaks under several encodings, same-host traffic and
// unparseable visit URLs.
func leakFlows(n int, rng *rand.Rand) []*capture.Flow {
	visits := make([]string, n)
	for i := range visits {
		visits[i] = fmt.Sprintf("https://site-%04d.example/landing/%d?utm=abc", i, i)
	}
	var flows []*capture.Flow
	id := int64(0)
	add := func(f *capture.Flow) {
		id++
		f.ID = id
		f.Browser = fmt.Sprintf("browser-%d", id%3)
		flows = append(flows, f)
	}
	for i, visit := range visits {
		host := fmt.Sprintf("site-%04d.example", i)
		// Clean telemetry flow: no leak.
		add(&capture.Flow{
			Host: "telemetry.vendor.test", Path: "/ping", VisitURL: visit,
			RawQuery: "v=1&t=pageview", Body: []byte(`{"ok":true}`),
		})
		switch i % 6 {
		case 0: // plain full URL in query
			add(&capture.Flow{
				Host: "collector.vendor.test", Path: "/c", VisitURL: visit,
				RawQuery: "u=" + visit,
			})
		case 1: // percent-escaped full URL
			add(&capture.Flow{
				Host: "collector.vendor.test", Path: "/c", VisitURL: visit,
				RawQuery: "u=" + url.QueryEscape(visit),
			})
		case 2: // base64 full URL in the body
			add(&capture.Flow{
				Host: "collector.vendor.test", Path: "/c", VisitURL: visit,
				Body: []byte(`{"page":"` + base64.StdEncoding.EncodeToString([]byte(visit)) + `"}`),
			})
		case 3: // domain only, plain
			add(&capture.Flow{
				Host: "ads.vendor.test", Path: "/imp", VisitURL: visit,
				RawQuery: "ref=" + host,
			})
		case 4: // same-host traffic: never a finding
			add(&capture.Flow{
				Host: host, Path: "/asset.js", VisitURL: visit,
				RawQuery: "u=" + visit,
			})
		case 5: // domain inside a larger token
			add(&capture.Flow{
				Host: "cdn.vendor.test", Path: "/px", VisitURL: visit,
				Body: []byte("referrer=https://" + host + "/other"),
			})
		}
		if rng.Intn(4) == 0 { // unparseable visit URL: skipped by both paths
			add(&capture.Flow{
				Host: "x.test", Path: "/", VisitURL: "https://bad.test/\x01",
				RawQuery: "u=" + visit,
			})
		}
	}
	rng.Shuffle(len(flows), func(i, j int) { flows[i], flows[j] = flows[j], flows[i] })
	return flows
}

// TestEngineMatchesNaiveReference is the PR's equivalence keystone:
// streaming scans through the automaton must reproduce the pre-engine
// Contains-loop findings byte for byte, flow by flow, for both the
// plain-only and the full encoding set.
func TestEngineMatchesNaiveReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		encs EncodingSet
	}{
		{"plain-only", PlainOnly()},
		{"all-encodings", AllEncodings()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			flows := leakFlows(60, rng)
			det := &Detector{Encodings: tc.encs}
			ref := &Detector{Encodings: tc.encs}
			s := NewStreamScanner(det, "")
			for _, f := range flows {
				got, gotOK := s.scanOne(f)
				want, wantOK := naiveScanOne(ref, f)
				if gotOK != wantOK || got != want {
					t.Fatalf("flow %d (host %s): engine (%+v, %v) != naive (%+v, %v)",
						f.ID, f.Host, got, gotOK, want, wantOK)
				}
			}
		})
	}
}

// TestBatchScanMatchesNaive drives the batch entry point over a store
// and compares the full sorted finding set against the naive reference.
func TestBatchScanMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	flows := leakFlows(40, rng)
	store := capture.NewStore()
	for _, f := range flows {
		store.Add(f)
	}
	det := NewDetector()
	got := det.Scan(store)

	ref := NewDetector()
	var want []Finding
	for _, f := range store.All() {
		if fnd, ok := naiveScanOne(ref, f); ok {
			want = append(want, fnd)
		}
	}
	sortFindings(want)

	if len(got) != len(want) {
		t.Fatalf("engine found %d leaks, naive found %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("finding %d differs:\nengine %+v\nnaive  %+v", i, got[i], want[i])
		}
	}
	if len(got) == 0 {
		t.Fatal("corpus produced no findings; test is vacuous")
	}
}

// BenchmarkLeakScanScaling measures per-flow scan cost as the active
// visit population grows 64×. Pre-engine, each flow paid one
// strings.Contains per representation of its own visit (and the
// interning saves the hashing); the automaton makes the scan a single
// pass, so ns/op should stay roughly flat across the axis.
func BenchmarkLeakScanScaling(b *testing.B) {
	for _, visits := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("visits=%d", visits), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			flows := leakFlows(visits, rng)
			det := NewDetector()
			for _, f := range flows {
				if f.VisitURL != "" {
					det.visitFor(f.VisitURL)
				}
			}
			s := NewStreamScanner(det, "")
			s.scanOne(flows[0]) // compile outside the timed region
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.scanOne(flows[i%len(flows)])
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "flows/sec")
		})
	}
}
