package leak

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"panoptes/internal/capture"
)

// leakyFleet files the same mixed flow population into a store in the
// given order; half the flows leak the visit URL plainly, a quarter leak
// only the domain, the rest are clean.
func leakyFleet(order []int) *capture.Store {
	s := capture.NewStore()
	for _, i := range order {
		browser := fmt.Sprintf("Browser-%d", i%5)
		switch i % 4 {
		case 0, 1:
			s.Add(&capture.Flow{
				ID: int64(i + 1), Browser: browser, Host: "collector.example",
				Scheme: "https", Path: "/r", RawQuery: "u=" + visit, VisitURL: visit,
			})
		case 2:
			s.Add(&capture.Flow{
				ID: int64(i + 1), Browser: browser, Host: "beacon.example",
				Scheme: "https", Path: "/b", Body: []byte(`{"d":"mentalhealth-support.org"}`),
				VisitURL: visit,
			})
		default:
			s.Add(&capture.Flow{
				ID: int64(i + 1), Browser: browser, Host: "cdn.example",
				Scheme: "https", Path: "/asset.js", VisitURL: visit,
			})
		}
	}
	return s
}

// TestScanShardFanOutEquivalence checks the sharded, fanned-out Scan is
// a pure function of the flow multiset: insertion order (and therefore
// shard fill order) must not change a single byte of the output.
func TestScanShardFanOutEquivalence(t *testing.T) {
	const n = 256
	forward := make([]int, n)
	reverse := make([]int, n)
	shuffled := make([]int, n)
	for i := 0; i < n; i++ {
		forward[i] = i
		reverse[i] = n - 1 - i
		shuffled[i] = (i * 37) % n // 37 coprime to 256: a permutation
	}

	d := NewDetector()
	ref := d.Scan(leakyFleet(forward))
	if len(ref) != n/2+n/4 {
		t.Fatalf("reference scan found %d leaks, want %d", len(ref), n/2+n/4)
	}
	if !sort.SliceIsSorted(ref, func(i, j int) bool {
		a, b := ref[i], ref[j]
		if a.Browser != b.Browser {
			return a.Browser < b.Browser
		}
		if a.VisitURL != b.VisitURL {
			return a.VisitURL < b.VisitURL
		}
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		return a.FlowID <= b.FlowID
	}) {
		t.Fatal("findings not in canonical order")
	}

	for name, order := range map[string][]int{"reverse": reverse, "shuffled": shuffled} {
		if got := d.Scan(leakyFleet(order)); !reflect.DeepEqual(got, ref) {
			t.Fatalf("%s insertion order changed scan output", name)
		}
	}
	// And a rescan of the same store is identical (the fan-out itself is
	// deterministic, not just the flow set).
	s := leakyFleet(forward)
	if !reflect.DeepEqual(d.Scan(s), d.Scan(s)) {
		t.Fatal("two scans of one store differ")
	}
}
