package leak

import (
	"crypto/md5"
	"crypto/sha1"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"net/url"
	"testing"
	"testing/quick"

	"panoptes/internal/capture"
)

const visit = "https://mentalhealth-support.org/"

func nativeFlow(browser, host, query, body string) *capture.Flow {
	return &capture.Flow{
		ID: capture.NextFlowID(), Browser: browser, Host: host,
		Method: "GET", Scheme: "https", Path: "/report", RawQuery: query,
		Body: []byte(body), VisitURL: visit,
	}
}

func TestDetectPlainFullURL(t *testing.T) {
	s := capture.NewStore()
	s.Add(nativeFlow("QQ", "wup.browser.qq.com", "", `{"url":"`+visit+`"}`))
	fs := NewDetector().Scan(s)
	if len(fs) != 1 || fs[0].Kind != KindFullURL || fs[0].Encoding != EncPlain {
		t.Fatalf("findings = %+v", fs)
	}
}

func TestDetectBase64FullURL(t *testing.T) {
	s := capture.NewStore()
	b64 := base64.StdEncoding.EncodeToString([]byte(visit))
	s.Add(nativeFlow("Yandex", "sba.yandex.net", "url="+url.QueryEscape(b64), ""))
	fs := NewDetector().Scan(s)
	if len(fs) != 1 || fs[0].Kind != KindFullURL || fs[0].Encoding != EncBase64 {
		t.Fatalf("findings = %+v", fs)
	}
}

func TestDetectEscapedFullURL(t *testing.T) {
	s := capture.NewStore()
	s.Add(nativeFlow("UC International", "gjapi.ucweb.com", "u="+url.QueryEscape(visit), ""))
	fs := NewDetector().Scan(s)
	if len(fs) != 1 || fs[0].Kind != KindFullURL {
		t.Fatalf("findings = %+v", fs)
	}
}

func TestDetectDomainOnly(t *testing.T) {
	s := capture.NewStore()
	s.Add(nativeFlow("Edge", "api.bing.com", "q=mentalhealth-support.org&mkt=en-GR", ""))
	fs := NewDetector().Scan(s)
	if len(fs) != 1 || fs[0].Kind != KindDomainOnly {
		t.Fatalf("findings = %+v", fs)
	}
}

func TestDetectHashedHost(t *testing.T) {
	s := capture.NewStore()
	sum := sha256.Sum256([]byte("mentalhealth-support.org"))
	s.Add(nativeFlow("Hasher", "telemetry.example", "h="+hex.EncodeToString(sum[:]), ""))
	fs := NewDetector().Scan(s)
	if len(fs) != 1 || fs[0].Encoding != EncSHA256 {
		t.Fatalf("findings = %+v", fs)
	}
}

func TestNoLeakNoFinding(t *testing.T) {
	s := capture.NewStore()
	s.Add(nativeFlow("Brave", "variations.brave.com", "seed=42", `{"ok":true}`))
	if fs := NewDetector().Scan(s); len(fs) != 0 {
		t.Fatalf("findings = %+v", fs)
	}
}

func TestVisitedSiteItselfIgnored(t *testing.T) {
	s := capture.NewStore()
	// Request TO the visited host trivially "contains" its URL; not a leak.
	f := nativeFlow("Any", "mentalhealth-support.org", "page="+url.QueryEscape(visit), "")
	s.Add(f)
	if fs := NewDetector().Scan(s); len(fs) != 0 {
		t.Fatalf("findings = %+v", fs)
	}
}

func TestFlowsOutsideVisitIgnored(t *testing.T) {
	s := capture.NewStore()
	f := nativeFlow("Opera", "news.opera-api.com", "u="+url.QueryEscape(visit), "")
	f.VisitURL = "" // idle flow
	s.Add(f)
	if fs := NewDetector().Scan(s); len(fs) != 0 {
		t.Fatalf("idle flow produced findings: %+v", fs)
	}
}

func TestPlainOnlyMissesBase64(t *testing.T) {
	s := capture.NewStore()
	b64 := base64.StdEncoding.EncodeToString([]byte(visit))
	s.Add(nativeFlow("Yandex", "sba.yandex.net", "url="+b64, ""))
	d := &Detector{Encodings: PlainOnly()}
	if fs := d.Scan(s); len(fs) != 0 {
		t.Fatalf("plain-only detector found %+v", fs)
	}
	if fs := NewDetector().Scan(s); len(fs) != 1 {
		t.Fatalf("full detector found %d", len(fs))
	}
}

func TestIncognitoPropagates(t *testing.T) {
	s := capture.NewStore()
	f := nativeFlow("Edge", "api.bing.com", "q=mentalhealth-support.org", "")
	f.Incognito = true
	s.Add(f)
	fs := NewDetector().Scan(s)
	if len(fs) != 1 || !fs[0].Incognito {
		t.Fatalf("findings = %+v", fs)
	}
}

func TestSummarise(t *testing.T) {
	findings := []Finding{
		{Browser: "Yandex", Host: "sba.yandex.net", Kind: KindFullURL},
		{Browser: "Yandex", Host: "sba.yandex.net", Kind: KindFullURL},
		{Browser: "Yandex", Host: "api.browser.yandex.ru", Kind: KindDomainOnly},
		{Browser: "Edge", Host: "api.bing.com", Kind: KindDomainOnly, Incognito: true},
	}
	sums := Summarise(findings)
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	if sums[0].Browser != "Edge" || sums[1].Browser != "Yandex" {
		t.Fatalf("order = %v, %v", sums[0].Browser, sums[1].Browser)
	}
	y := sums[1]
	if y.FullURLCount != 2 || y.DomainCount != 1 ||
		len(y.FullURLHosts) != 1 || y.FullURLHosts[0] != "sba.yandex.net" {
		t.Fatalf("yandex summary = %+v", y)
	}
	if sums[0].IncognitoLeaks != 1 {
		t.Fatalf("edge incognito = %d", sums[0].IncognitoLeaks)
	}
}

func TestPersistentIDs(t *testing.T) {
	s := capture.NewStore()
	id1 := "a1b2c3d4e5f60718293a4b5c6d7e8f90a1b2c3d4e5f60718293a4b5c6d7e8f90"
	id2 := "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"
	add := func(uuid string) {
		s.Add(&capture.Flow{
			ID: capture.NextFlowID(), Browser: "Yandex", Host: "api.browser.yandex.ru",
			RawQuery: "host=x.example&uuid=" + uuid,
		})
	}
	add(id1)
	add(id1)
	add(id2) // after a factory reset
	ids := PersistentIDs(s)
	vals := ids["Yandex"]["api.browser.yandex.ru?uuid"]
	if len(vals) != 2 {
		t.Fatalf("distinct ids = %v", vals)
	}
	// Short or non-hex values are not IDs.
	s2 := capture.NewStore()
	s2.Add(&capture.Flow{Browser: "X", Host: "h", RawQuery: "uuid=short&clientid=not-hex-at-all!!"})
	if got := PersistentIDs(s2); len(got) != 0 {
		t.Fatalf("bad ids accepted: %v", got)
	}
}

func TestEncodingSets(t *testing.T) {
	all := AllEncodings()
	if len(all) != 8 {
		t.Fatalf("encodings = %d", len(all))
	}
	if len(PlainOnly()) != 1 {
		t.Fatal("plain-only wrong")
	}
}

func BenchmarkScanStore(b *testing.B) {
	s := capture.NewStore()
	for i := 0; i < 200; i++ {
		s.Add(nativeFlow("Yandex", "sba.yandex.net",
			"url="+base64.StdEncoding.EncodeToString([]byte(visit)), ""))
	}
	d := NewDetector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Scan(s)
	}
}

func TestPersistentIDsInJSONBody(t *testing.T) {
	s := capture.NewStore()
	id := "3929d87cfa02a9437044a54d3c0e7e6d0d088c6a96b7429e91c093eb5efb4fa2"
	for i := 0; i < 3; i++ {
		s.Add(&capture.Flow{
			ID: capture.NextFlowID(), Browser: "Opera", Host: "s-odx.oleads.com",
			Method: "POST",
			Body:   []byte(`{"channelId":"adx","operaId":"` + id + `","adCount":2}`),
		})
	}
	ids := PersistentIDs(s)
	vals := ids["Opera"]["s-odx.oleads.com?operaId"]
	if len(vals) != 1 || vals[0] != id {
		t.Fatalf("operaId not mined from body: %v", ids)
	}
}

// Property: for every encoding in the full set, a value transported
// under that encoding is detected, and the reported encoding matches
// (modulo plain-subsumption for escapable URLs).
func TestPropertyEncodingsAllDetected(t *testing.T) {
	f := func(a, b uint8) bool {
		target := "https://site-" + string(rune('a'+a%26)) + string(rune('a'+b%26)) + ".example/page?q=1"
		encode := map[Encoding]func(string) string{
			EncPlain:     func(s string) string { return s },
			EncEscaped:   url.QueryEscape,
			EncBase64:    func(s string) string { return base64.StdEncoding.EncodeToString([]byte(s)) },
			EncBase64URL: func(s string) string { return base64.URLEncoding.EncodeToString([]byte(s)) },
			EncHex:       func(s string) string { return hex.EncodeToString([]byte(s)) },
			EncMD5: func(s string) string {
				h := md5.Sum([]byte(s))
				return hex.EncodeToString(h[:])
			},
			EncSHA1: func(s string) string {
				h := sha1.Sum([]byte(s))
				return hex.EncodeToString(h[:])
			},
			EncSHA256: func(s string) string {
				h := sha256.Sum256([]byte(s))
				return hex.EncodeToString(h[:])
			},
		}
		for enc, fn := range encode {
			s := capture.NewStore()
			flow := &capture.Flow{
				ID: capture.NextFlowID(), Browser: "P", Host: "collector.example",
				Body: []byte(`{"v":"` + fn(target) + `"}`), VisitURL: target,
			}
			s.Add(flow)
			fs := NewDetector().Scan(s)
			if len(fs) != 1 || fs[0].Kind != KindFullURL {
				return false
			}
			_ = enc
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: a random unrelated URL in the flow never triggers a finding
// for the visit.
func TestPropertyNoFalsePositives(t *testing.T) {
	f := func(n uint16) bool {
		s := capture.NewStore()
		other := fmt.Sprintf("https://unrelated-%d.example/", n)
		s.Add(&capture.Flow{
			ID: capture.NextFlowID(), Browser: "P", Host: "collector.example",
			RawQuery: "u=" + url.QueryEscape(other), VisitURL: visit,
		})
		return len(NewDetector().Scan(s)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
