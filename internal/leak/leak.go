// Package leak detects browsing-history exfiltration in native traffic
// (paper §3.2): it searches every natively generated request for the
// visited URL or hostname under the encodings vendors actually use —
// plaintext, percent-escaping, standard and URL-safe Base64, hex, and
// MD5/SHA-1/SHA-256 digests — and distinguishes full-path leaks (the
// remote server learns the exact content) from domain-only leaks (the
// server learns which site). It also detects persistent identifiers
// accompanying the leaks.
package leak

import (
	"bytes"
	"crypto/md5"
	"crypto/sha1"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"net/url"
	"regexp"
	"slices"
	"sort"
	"strings"
	"sync"

	"panoptes/internal/bytepool"
	"panoptes/internal/capture"
	"panoptes/internal/dnsmsg"
	"panoptes/internal/match"
)

// Kind classifies what was leaked.
type Kind string

// Leak kinds. FullURL implies the destination learned path and query;
// DomainOnly means just the visited hostname.
const (
	KindFullURL    Kind = "full-url"
	KindDomainOnly Kind = "domain-only"
)

// Encoding names how the leaked value was transported.
type Encoding string

// Encodings the detector searches.
const (
	EncPlain     Encoding = "plain"
	EncEscaped   Encoding = "percent-escaped"
	EncBase64    Encoding = "base64"
	EncBase64URL Encoding = "base64url"
	EncHex       Encoding = "hex"
	EncMD5       Encoding = "md5"
	EncSHA1      Encoding = "sha1"
	EncSHA256    Encoding = "sha256"
)

// EncodingSet selects which encodings to search (the ablation bench
// compares plain-only against the full set).
type EncodingSet map[Encoding]bool

// AllEncodings returns the full set.
func AllEncodings() EncodingSet {
	return EncodingSet{
		EncPlain: true, EncEscaped: true, EncBase64: true, EncBase64URL: true,
		EncHex: true, EncMD5: true, EncSHA1: true, EncSHA256: true,
	}
}

// PlainOnly returns the plain-text-only set.
func PlainOnly() EncodingSet { return EncodingSet{EncPlain: true} }

// Finding is one detected history leak.
type Finding struct {
	Browser   string
	Host      string // destination that received the leak
	Kind      Kind
	Encoding  Encoding
	VisitURL  string
	Incognito bool
	FlowID    int64
}

// representations precomputes the searchable forms of a value.
func representations(value string, encs EncodingSet) map[Encoding][]string {
	out := make(map[Encoding][]string, len(encs))
	if encs[EncPlain] {
		out[EncPlain] = []string{value}
	}
	if encs[EncEscaped] {
		if esc := url.QueryEscape(value); esc != value {
			out[EncEscaped] = []string{esc}
		}
	}
	if encs[EncBase64] {
		out[EncBase64] = []string{
			base64.StdEncoding.EncodeToString([]byte(value)),
			base64.RawStdEncoding.EncodeToString([]byte(value)),
		}
	}
	if encs[EncBase64URL] {
		out[EncBase64URL] = []string{
			base64.URLEncoding.EncodeToString([]byte(value)),
			base64.RawURLEncoding.EncodeToString([]byte(value)),
		}
	}
	if encs[EncHex] {
		out[EncHex] = []string{hex.EncodeToString([]byte(value))}
	}
	if encs[EncMD5] {
		s := md5.Sum([]byte(value))
		out[EncMD5] = []string{hex.EncodeToString(s[:])}
	}
	if encs[EncSHA1] {
		s := sha1.Sum([]byte(value))
		out[EncSHA1] = []string{hex.EncodeToString(s[:])}
	}
	if encs[EncSHA256] {
		s := sha256.Sum256([]byte(value))
		out[EncSHA256] = []string{hex.EncodeToString(s[:])}
	}
	return out
}

// haystackPool recycles the per-flow search buffers. Two classes cover
// the population: most native flows are a short path + query, the rest
// carry a body capped at capture.MaxBodyCapture plus query expansion.
var haystackPool = bytepool.New("leak_haystack", 4<<10, 64<<10)

// writeHaystack renders the searchable text of a flow — path, query
// (raw and unescaped) and body, newline-separated — into a reusable
// buffer. The unescaped query is appended only when unescaping actually
// changed it: needles never contain '\n' (url.Parse rejects control
// characters and every non-plain representation uses a newline-free
// alphabet), so a match inside a duplicate segment would already match
// the raw segment, and skipping the copy cannot change findings.
func writeHaystack(buf *bytes.Buffer, f *capture.Flow) {
	buf.WriteString(f.Path)
	buf.WriteByte('\n')
	buf.WriteString(f.RawQuery)
	buf.WriteByte('\n')
	if unescaped, err := url.QueryUnescape(f.RawQuery); err == nil && unescaped != f.RawQuery {
		buf.WriteString(unescaped)
		buf.WriteByte('\n')
	}
	buf.Write(f.Body)
	// DoH bodies carry the queried names as length-prefixed DNS labels —
	// invisible to substring search until decoded. Appending the dotted
	// qnames makes a visited hostname inside a DoH query body a
	// domain-only leak like any other.
	if IsDoHFlow(f) {
		if m, err := dnsmsg.Unpack(f.Body); err == nil {
			for _, q := range m.Questions {
				buf.WriteByte('\n')
				buf.WriteString(q.Name)
			}
		}
	}
}

// IsDoHFlow reports whether the flow is an RFC 8484 DoH exchange, by the
// proxy's transport tag or by media type (checkpoints written before the
// transport field existed carry only the header).
func IsDoHFlow(f *capture.Flow) bool {
	return f.Transport == capture.TransportDoH ||
		f.HeaderGet("Content-Type") == "application/dns-message"
}

// dohResolvers are the public resolvers of the paper's §3.2 DoH split.
var dohResolvers = map[string]bool{
	"cloudflare-dns.com": true,
	"dns.google":         true,
}

// encodingOrder is the deterministic search order: plain first,
// digests last, so the cheapest positive encoding wins ties.
var encodingOrder = []Encoding{EncPlain, EncEscaped, EncBase64, EncBase64URL, EncHex, EncMD5, EncSHA1, EncSHA256}

// needle is the interned, engine-resident form of one searched value:
// its pattern IDs in the shared automaton, ordered by encodingOrder, so
// the first ID a scan reports maps to the same encoding the old
// first-Contains-wins loop would have picked.
type needle struct {
	pids []int
	encs []Encoding
}

// match resolves a scanned flow against the needle: the first matched
// pattern ID in priority order names the winning encoding.
func (n *needle) match(ms *match.MatchSet) (Encoding, bool) {
	for i, id := range n.pids {
		if ms.Has(id) {
			return n.encs[i], true
		}
	}
	return "", false
}

// visitNeedles caches everything derivable from one VisitURL: the
// parse outcome, the hostname, and the interned needles for the full
// URL and (when the host has at least two labels) the bare domain.
type visitNeedles struct {
	ok   bool
	host string
	full *needle
	dom  *needle
}

// Detector finds history leaks in a native-flow store. Beyond the
// encoding-set knob it owns the shared match engine: every value ever
// searched (visit URLs and hostnames under all their encodings) is
// interned once into a single Aho-Corasick pattern set, so scanning a
// flow is one automaton pass regardless of how many visits are active.
type Detector struct {
	Encodings EncodingSet

	once    sync.Once
	pats    *match.PatternSet
	mu      sync.Mutex
	needles map[string]*needle
	visits  map[string]*visitNeedles
}

// NewDetector builds a detector with the full encoding set.
func NewDetector() *Detector { return &Detector{Encodings: AllEncodings()} }

// engine lazily initialises the interning state so struct-literal
// detectors (common in tests and call sites that only set Encodings)
// keep working.
func (d *Detector) engine() *match.PatternSet {
	d.once.Do(func() {
		d.pats = match.NewPatternSet("leak")
		d.needles = make(map[string]*needle)
		d.visits = make(map[string]*visitNeedles)
	})
	return d.pats
}

// needleFor interns the searchable representations of a value — the
// digest and Base64 computation that used to run per scanner now runs
// once per distinct value per detector.
func (d *Detector) needleFor(value string) *needle {
	d.engine()
	d.mu.Lock()
	defer d.mu.Unlock()
	if n, ok := d.needles[value]; ok {
		return n
	}
	reps := representations(value, d.Encodings)
	n := &needle{}
	for _, enc := range encodingOrder {
		for _, rep := range reps[enc] {
			if id := d.pats.Add(rep); id >= 0 {
				n.pids = append(n.pids, id)
				n.encs = append(n.encs, enc)
			}
		}
	}
	d.needles[value] = n
	return n
}

// visitFor returns the cached per-visit scan inputs, parsing and
// interning on first sight of a VisitURL.
func (d *Detector) visitFor(visitURL string) *visitNeedles {
	d.engine()
	d.mu.Lock()
	v, ok := d.visits[visitURL]
	d.mu.Unlock()
	if ok {
		return v
	}
	v = &visitNeedles{}
	if vu, err := url.Parse(visitURL); err == nil {
		v.ok = true
		v.host = vu.Hostname()
		v.full = d.needleFor(visitURL)
		// Domain-only detection requires a host of at least two labels
		// to avoid noise, mirroring the original Contains(".") gate.
		if strings.Contains(v.host, ".") {
			v.dom = d.needleFor(v.host)
		}
	}
	d.mu.Lock()
	if prev, ok := d.visits[visitURL]; ok {
		v = prev
	} else {
		d.visits[visitURL] = v
	}
	d.mu.Unlock()
	return v
}

// Scan inspects every flow that occurred during a visit and reports
// leaks of that visit's URL or host to any destination other than the
// visited site itself.
//
// Scan is the batch drive mode of the incremental StreamScanner: it
// replays the store's flows through a fresh scanner and finalizes, so
// batch and streaming results come from one code path. Findings are
// returned in a canonical sort order (browser, visit URL, destination,
// kind, encoding, flow ID), so the output is a pure function of the
// flow set regardless of insertion order.
func (d *Detector) Scan(native *capture.Store) []Finding {
	s := NewStreamScanner(d, "")
	flows := native.All()
	// Prime every visit's needles before the first scan so the engine
	// compiles once for the whole batch instead of once per new visit.
	for _, f := range flows {
		if f.VisitURL != "" {
			d.visitFor(f.VisitURL)
		}
	}
	for _, f := range flows {
		s.observe(f)
	}
	return s.Findings()
}

// sortFindings puts findings in their canonical order: stable, human-
// scannable, and independent of which shard or goroutine surfaced them.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Browser != b.Browser {
			return a.Browser < b.Browser
		}
		if a.VisitURL != b.VisitURL {
			return a.VisitURL < b.VisitURL
		}
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Encoding != b.Encoding {
			return a.Encoding < b.Encoding
		}
		return a.FlowID < b.FlowID
	})
}

// Summary aggregates findings per browser.
type Summary struct {
	Browser        string
	FullURLHosts   []string // destinations receiving full URLs
	DomainHosts    []string // destinations receiving visited domains
	FullURLCount   int
	DomainCount    int
	IncognitoLeaks int
}

// Summarise groups findings by browser, sorted by name.
func Summarise(findings []Finding) []Summary {
	byBrowser := map[string]*Summary{}
	hostSets := map[string]map[Kind]map[string]bool{}
	for _, f := range findings {
		s, ok := byBrowser[f.Browser]
		if !ok {
			s = &Summary{Browser: f.Browser}
			byBrowser[f.Browser] = s
			hostSets[f.Browser] = map[Kind]map[string]bool{
				KindFullURL: {}, KindDomainOnly: {},
			}
		}
		hostSets[f.Browser][f.Kind][f.Host] = true
		switch f.Kind {
		case KindFullURL:
			s.FullURLCount++
		case KindDomainOnly:
			s.DomainCount++
		}
		if f.Incognito {
			s.IncognitoLeaks++
		}
	}
	var out []Summary
	for name, s := range byBrowser {
		for h := range hostSets[name][KindFullURL] {
			s.FullURLHosts = append(s.FullURLHosts, h)
		}
		for h := range hostSets[name][KindDomainOnly] {
			s.DomainHosts = append(s.DomainHosts, h)
		}
		sort.Strings(s.FullURLHosts)
		sort.Strings(s.DomainHosts)
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Browser < out[j].Browser })
	return out
}

// idFieldPat extracts "key":"value" pairs from JSON-ish bodies for the
// identifier miner.
var idFieldPat = regexp.MustCompile(`"([A-Za-z0-9_.-]+)"\s*:\s*"([0-9a-fA-F-]{16,})"`)

// IDHit is one identifier-looking key/value pair mined from a flow.
type IDHit struct {
	Key   string
	Value string
}

// ExtractIDs mines a single flow for candidate persistent identifiers
// (long hex/uuid-like values): query parameters first (sorted by key
// for determinism), then JSON body fields in document order. The
// incremental trackable-ID analyzer and PersistentIDs share this as
// their per-flow step.
func ExtractIDs(f *capture.Flow) []IDHit {
	var out []IDHit
	if vals, err := url.ParseQuery(f.RawQuery); err == nil {
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !looksLikeIDKey(k) {
				continue
			}
			for _, v := range vals[k] {
				if looksLikeID(v) {
					out = append(out, IDHit{Key: k, Value: v})
				}
			}
		}
	}
	// Match directly over the captured bytes — the old string(f.Body)
	// conversion copied every body on every flow. A quote is required by
	// the pattern, so bodies without one skip the regexp entirely.
	if bytes.IndexByte(f.Body, '"') >= 0 {
		for _, m := range idFieldPat.FindAllSubmatch(f.Body, -1) {
			if looksLikeIDKey(string(m[1])) && looksLikeID(string(m[2])) {
				out = append(out, IDHit{Key: string(m[1]), Value: string(m[2])})
			}
		}
	}
	return out
}

// PersistentIDs extracts candidate persistent identifiers per browser
// and host — from query parameters and from JSON request bodies
// (Opera's operaId travels in a POST body) — for the
// track-across-sessions analysis. Values keep first-seen order.
func PersistentIDs(native *capture.Store) map[string]map[string][]string {
	out := map[string]map[string][]string{}
	for _, f := range native.All() {
		for _, hit := range ExtractIDs(f) {
			if out[f.Browser] == nil {
				out[f.Browser] = map[string][]string{}
			}
			key := f.Host + "?" + hit.Key
			if !slices.Contains(out[f.Browser][key], hit.Value) {
				out[f.Browser][key] = append(out[f.Browser][key], hit.Value)
			}
		}
	}
	return out
}

func looksLikeIDKey(k string) bool {
	lk := strings.ToLower(k)
	for _, pat := range []string{"uuid", "guid", "deviceid", "device_id", "clientid", "client_id", "installid", "operaid", "uid"} {
		if strings.Contains(lk, pat) {
			return true
		}
	}
	return false
}

func looksLikeID(v string) bool {
	if len(v) < 16 {
		return false
	}
	for _, c := range v {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' || c == '-') {
			return false
		}
	}
	return true
}
