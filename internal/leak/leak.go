// Package leak detects browsing-history exfiltration in native traffic
// (paper §3.2): it searches every natively generated request for the
// visited URL or hostname under the encodings vendors actually use —
// plaintext, percent-escaping, standard and URL-safe Base64, hex, and
// MD5/SHA-1/SHA-256 digests — and distinguishes full-path leaks (the
// remote server learns the exact content) from domain-only leaks (the
// server learns which site). It also detects persistent identifiers
// accompanying the leaks.
package leak

import (
	"crypto/md5"
	"crypto/sha1"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"net/url"
	"regexp"
	"slices"
	"sort"
	"strings"

	"panoptes/internal/capture"
)

// Kind classifies what was leaked.
type Kind string

// Leak kinds. FullURL implies the destination learned path and query;
// DomainOnly means just the visited hostname.
const (
	KindFullURL    Kind = "full-url"
	KindDomainOnly Kind = "domain-only"
)

// Encoding names how the leaked value was transported.
type Encoding string

// Encodings the detector searches.
const (
	EncPlain     Encoding = "plain"
	EncEscaped   Encoding = "percent-escaped"
	EncBase64    Encoding = "base64"
	EncBase64URL Encoding = "base64url"
	EncHex       Encoding = "hex"
	EncMD5       Encoding = "md5"
	EncSHA1      Encoding = "sha1"
	EncSHA256    Encoding = "sha256"
)

// EncodingSet selects which encodings to search (the ablation bench
// compares plain-only against the full set).
type EncodingSet map[Encoding]bool

// AllEncodings returns the full set.
func AllEncodings() EncodingSet {
	return EncodingSet{
		EncPlain: true, EncEscaped: true, EncBase64: true, EncBase64URL: true,
		EncHex: true, EncMD5: true, EncSHA1: true, EncSHA256: true,
	}
}

// PlainOnly returns the plain-text-only set.
func PlainOnly() EncodingSet { return EncodingSet{EncPlain: true} }

// Finding is one detected history leak.
type Finding struct {
	Browser   string
	Host      string // destination that received the leak
	Kind      Kind
	Encoding  Encoding
	VisitURL  string
	Incognito bool
	FlowID    int64
}

// representations precomputes the searchable forms of a value.
func representations(value string, encs EncodingSet) map[Encoding][]string {
	out := make(map[Encoding][]string, len(encs))
	if encs[EncPlain] {
		out[EncPlain] = []string{value}
	}
	if encs[EncEscaped] {
		if esc := url.QueryEscape(value); esc != value {
			out[EncEscaped] = []string{esc}
		}
	}
	if encs[EncBase64] {
		out[EncBase64] = []string{
			base64.StdEncoding.EncodeToString([]byte(value)),
			base64.RawStdEncoding.EncodeToString([]byte(value)),
		}
	}
	if encs[EncBase64URL] {
		out[EncBase64URL] = []string{
			base64.URLEncoding.EncodeToString([]byte(value)),
			base64.RawURLEncoding.EncodeToString([]byte(value)),
		}
	}
	if encs[EncHex] {
		out[EncHex] = []string{hex.EncodeToString([]byte(value))}
	}
	if encs[EncMD5] {
		s := md5.Sum([]byte(value))
		out[EncMD5] = []string{hex.EncodeToString(s[:])}
	}
	if encs[EncSHA1] {
		s := sha1.Sum([]byte(value))
		out[EncSHA1] = []string{hex.EncodeToString(s[:])}
	}
	if encs[EncSHA256] {
		s := sha256.Sum256([]byte(value))
		out[EncSHA256] = []string{hex.EncodeToString(s[:])}
	}
	return out
}

// haystack renders the searchable text of a flow: path, query
// (raw and unescaped) and body.
func haystack(f *capture.Flow) string {
	var sb strings.Builder
	sb.WriteString(f.Path)
	sb.WriteByte('\n')
	sb.WriteString(f.RawQuery)
	sb.WriteByte('\n')
	if unescaped, err := url.QueryUnescape(f.RawQuery); err == nil {
		sb.WriteString(unescaped)
		sb.WriteByte('\n')
	}
	sb.Write(f.Body)
	return sb.String()
}

// encodingOrder is the deterministic search order: plain first,
// digests last, so the cheapest positive encoding wins ties.
var encodingOrder = []Encoding{EncPlain, EncEscaped, EncBase64, EncBase64URL, EncHex, EncMD5, EncSHA1, EncSHA256}

// Detector finds history leaks in a native-flow store.
type Detector struct {
	Encodings EncodingSet
}

// NewDetector builds a detector with the full encoding set.
func NewDetector() *Detector { return &Detector{Encodings: AllEncodings()} }

// Scan inspects every flow that occurred during a visit and reports
// leaks of that visit's URL or host to any destination other than the
// visited site itself.
//
// Scan is the batch drive mode of the incremental StreamScanner: it
// replays the store's flows through a fresh scanner and finalizes, so
// batch and streaming results come from one code path. Findings are
// returned in a canonical sort order (browser, visit URL, destination,
// kind, encoding, flow ID), so the output is a pure function of the
// flow set regardless of insertion order.
func (d *Detector) Scan(native *capture.Store) []Finding {
	s := NewStreamScanner(d, "")
	for _, f := range native.All() {
		s.observe(f)
	}
	return s.Findings()
}

// sortFindings puts findings in their canonical order: stable, human-
// scannable, and independent of which shard or goroutine surfaced them.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Browser != b.Browser {
			return a.Browser < b.Browser
		}
		if a.VisitURL != b.VisitURL {
			return a.VisitURL < b.VisitURL
		}
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Encoding != b.Encoding {
			return a.Encoding < b.Encoding
		}
		return a.FlowID < b.FlowID
	})
}

// Summary aggregates findings per browser.
type Summary struct {
	Browser        string
	FullURLHosts   []string // destinations receiving full URLs
	DomainHosts    []string // destinations receiving visited domains
	FullURLCount   int
	DomainCount    int
	IncognitoLeaks int
}

// Summarise groups findings by browser, sorted by name.
func Summarise(findings []Finding) []Summary {
	byBrowser := map[string]*Summary{}
	hostSets := map[string]map[Kind]map[string]bool{}
	for _, f := range findings {
		s, ok := byBrowser[f.Browser]
		if !ok {
			s = &Summary{Browser: f.Browser}
			byBrowser[f.Browser] = s
			hostSets[f.Browser] = map[Kind]map[string]bool{
				KindFullURL: {}, KindDomainOnly: {},
			}
		}
		hostSets[f.Browser][f.Kind][f.Host] = true
		switch f.Kind {
		case KindFullURL:
			s.FullURLCount++
		case KindDomainOnly:
			s.DomainCount++
		}
		if f.Incognito {
			s.IncognitoLeaks++
		}
	}
	var out []Summary
	for name, s := range byBrowser {
		for h := range hostSets[name][KindFullURL] {
			s.FullURLHosts = append(s.FullURLHosts, h)
		}
		for h := range hostSets[name][KindDomainOnly] {
			s.DomainHosts = append(s.DomainHosts, h)
		}
		sort.Strings(s.FullURLHosts)
		sort.Strings(s.DomainHosts)
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Browser < out[j].Browser })
	return out
}

// idFieldPat extracts "key":"value" pairs from JSON-ish bodies for the
// identifier miner.
var idFieldPat = regexp.MustCompile(`"([A-Za-z0-9_.-]+)"\s*:\s*"([0-9a-fA-F-]{16,})"`)

// IDHit is one identifier-looking key/value pair mined from a flow.
type IDHit struct {
	Key   string
	Value string
}

// ExtractIDs mines a single flow for candidate persistent identifiers
// (long hex/uuid-like values): query parameters first (sorted by key
// for determinism), then JSON body fields in document order. The
// incremental trackable-ID analyzer and PersistentIDs share this as
// their per-flow step.
func ExtractIDs(f *capture.Flow) []IDHit {
	var out []IDHit
	if vals, err := url.ParseQuery(f.RawQuery); err == nil {
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !looksLikeIDKey(k) {
				continue
			}
			for _, v := range vals[k] {
				if looksLikeID(v) {
					out = append(out, IDHit{Key: k, Value: v})
				}
			}
		}
	}
	for _, m := range idFieldPat.FindAllStringSubmatch(string(f.Body), -1) {
		if looksLikeIDKey(m[1]) && looksLikeID(m[2]) {
			out = append(out, IDHit{Key: m[1], Value: m[2]})
		}
	}
	return out
}

// PersistentIDs extracts candidate persistent identifiers per browser
// and host — from query parameters and from JSON request bodies
// (Opera's operaId travels in a POST body) — for the
// track-across-sessions analysis. Values keep first-seen order.
func PersistentIDs(native *capture.Store) map[string]map[string][]string {
	out := map[string]map[string][]string{}
	for _, f := range native.All() {
		for _, hit := range ExtractIDs(f) {
			if out[f.Browser] == nil {
				out[f.Browser] = map[string][]string{}
			}
			key := f.Host + "?" + hit.Key
			if !slices.Contains(out[f.Browser][key], hit.Value) {
				out[f.Browser][key] = append(out[f.Browser][key], hit.Value)
			}
		}
	}
	return out
}

func looksLikeIDKey(k string) bool {
	lk := strings.ToLower(k)
	for _, pat := range []string{"uuid", "guid", "deviceid", "device_id", "clientid", "client_id", "installid", "operaid", "uid"} {
		if strings.Contains(lk, pat) {
			return true
		}
	}
	return false
}

func looksLikeID(v string) bool {
	if len(v) < 16 {
		return false
	}
	for _, c := range v {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' || c == '-') {
			return false
		}
	}
	return true
}
