package report

import (
	"strings"
	"testing"

	"panoptes/internal/analysis"
	"panoptes/internal/leak"
	"panoptes/internal/pii"
)

func TestFig2Rendering(t *testing.T) {
	var sb strings.Builder
	Fig2(&sb, []analysis.Fig2Row{
		{Browser: "Edge", Engine: 800, Native: 304, Ratio: 0.38},
		{Browser: "Chrome", Engine: 800, Native: 40, Ratio: 0.05},
	})
	out := sb.String()
	for _, want := range []string{"Figure 2", "Edge", "ratio 0.38", "Chrome", "engine     800"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The larger value must have a longer bar.
	lines := strings.Split(out, "\n")
	var engineBar, nativeBar int
	for _, l := range lines {
		if strings.Contains(l, "engine     800") {
			engineBar = strings.Count(l, "█")
		}
		if strings.Contains(l, "native      40") {
			nativeBar = strings.Count(l, "█")
		}
	}
	if engineBar <= nativeBar {
		t.Errorf("bars not proportional: engine %d vs native %d", engineBar, nativeBar)
	}
}

func TestFig3Rendering(t *testing.T) {
	var sb strings.Builder
	Fig3(&sb, []analysis.Fig3Row{
		{Browser: "Kiwi", DistinctDomains: 15, AdDomains: 6, AdPct: 40,
			AdDomainList: []string{"adnxs.com", "openx.net"}},
	})
	out := sb.String()
	if !strings.Contains(out, "40.0%") || !strings.Contains(out, "adnxs.com, openx.net") {
		t.Errorf("output:\n%s", out)
	}
}

func TestFig4Rendering(t *testing.T) {
	var sb strings.Builder
	Fig4(&sb, []analysis.Fig4Row{
		{Browser: "QQ", EngineBytes: 100000, NativeBytes: 42000, OverheadPct: 42},
	})
	if !strings.Contains(sb.String(), "+42.0%") {
		t.Errorf("output:\n%s", sb.String())
	}
}

func TestFig5Rendering(t *testing.T) {
	var sb strings.Builder
	linear := make([]int, 60)
	for i := range linear {
		linear[i] = i + 1
	}
	burst := make([]int, 60)
	for i := range burst {
		burst[i] = 50
	}
	burst[0] = 40
	Fig5(&sb, []analysis.Fig5Series{
		{Browser: "Opera", BinSeconds: 10, Cumulative: linear, Total: 60,
			DestShares: map[string]float64{"doubleclick.net": 21.9, "opera-api.com": 52}},
		{Browser: "Chrome", BinSeconds: 10, Cumulative: burst, Total: 50,
			DestShares: map[string]float64{"googleapis.com": 80}},
	})
	out := sb.String()
	if !strings.Contains(out, "[linear]") {
		t.Errorf("Opera not labelled linear:\n%s", out)
	}
	if !strings.Contains(out, "[burst→plateau]") {
		t.Errorf("Chrome not labelled burst:\n%s", out)
	}
	if !strings.Contains(out, "doubleclick.net 21.9%") {
		t.Errorf("dest shares missing:\n%s", out)
	}
}

func TestTable2Rendering(t *testing.T) {
	m := pii.Matrix{
		"Whale":  {pii.AttrLocalIP: true, pii.AttrRooted: true},
		"Chrome": {},
	}
	var sb strings.Builder
	Table2(&sb, m, []string{"Chrome", "Whale"})
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], "Yes") || strings.Contains(lines[2], "Yes") {
		t.Errorf("matrix cells wrong:\n%s", out)
	}
}

func TestLeaksRendering(t *testing.T) {
	var sb strings.Builder
	Leaks(&sb, []leak.Summary{{
		Browser: "Yandex", FullURLCount: 24, FullURLHosts: []string{"sba.yandex.net"},
		DomainCount: 24, DomainHosts: []string{"api.browser.yandex.ru"},
		IncognitoLeaks: 0,
	}})
	out := sb.String()
	if !strings.Contains(out, "sba.yandex.net") || !strings.Contains(out, "full-URL: 24") {
		t.Errorf("output:\n%s", out)
	}
	sb.Reset()
	Leaks(&sb, nil)
	if !strings.Contains(sb.String(), "none detected") {
		t.Error("empty case not rendered")
	}
}

func TestGeoRendering(t *testing.T) {
	var sb strings.Builder
	Geo(&sb, []analysis.GeoRow{
		{Browser: "Yandex", Host: "sba.yandex.net", IP: "20.3.0.1", Country: "RU", InEU: false, Kind: leak.KindFullURL},
	})
	out := sb.String()
	if !strings.Contains(out, "RU") || !strings.Contains(out, "full-url") {
		t.Errorf("output:\n%s", out)
	}
}

func TestDNSRendering(t *testing.T) {
	var sb strings.Builder
	DNS(&sb, map[string]string{"Chrome": "doh-google", "Yandex": "local"},
		[]string{"Chrome", "Yandex"})
	out := sb.String()
	if !strings.Contains(out, "1/2 browsers use third-party DoH") {
		t.Errorf("output:\n%s", out)
	}
}

func TestCSVOutputs(t *testing.T) {
	var sb strings.Builder
	CSVFig2(&sb, []analysis.Fig2Row{{Browser: "Edge", Engine: 10, Native: 4, Ratio: 0.4}})
	if !strings.Contains(sb.String(), "Edge,10,4,0.4000") {
		t.Errorf("csv fig2:\n%s", sb.String())
	}
	sb.Reset()
	CSVFig4(&sb, []analysis.Fig4Row{{Browser: "QQ", EngineBytes: 9, NativeBytes: 4, OverheadPct: 44.4}})
	if !strings.Contains(sb.String(), "QQ,9,4,44.40") {
		t.Errorf("csv fig4:\n%s", sb.String())
	}
	sb.Reset()
	CSVFig5(&sb, analysis.Fig5Series{BinSeconds: 10, Cumulative: []int{1, 3}})
	if !strings.Contains(sb.String(), "10,1\n20,3\n") {
		t.Errorf("csv fig5:\n%s", sb.String())
	}
}

func TestListing1Rendering(t *testing.T) {
	var sb strings.Builder
	Listing1(&sb, `{"operaId":"abc"}`)
	if !strings.Contains(sb.String(), "s-odx.oleads.com") || !strings.Contains(sb.String(), "operaId") {
		t.Errorf("output:\n%s", sb.String())
	}
	sb.Reset()
	Listing1(&sb, "")
	if !strings.Contains(sb.String(), "no Opera OLeads request") {
		t.Error("empty case not rendered")
	}
}

func TestBarClamping(t *testing.T) {
	if got := bar(200, 100); len([]rune(got)) != barWidth {
		t.Fatalf("overlong bar = %d runes", len([]rune(got)))
	}
	if bar(-5, 100) != "" || bar(5, 0) != "" {
		t.Fatal("degenerate bars not empty")
	}
}

func TestFig5EmptySeriesSkipped(t *testing.T) {
	var sb strings.Builder
	Fig5(&sb, []analysis.Fig5Series{{Browser: "Empty"}})
	if strings.Contains(sb.String(), "Empty") {
		t.Error("empty series rendered")
	}
}

func TestTrackableIDsRendering(t *testing.T) {
	var sb strings.Builder
	TrackableIDs(&sb, []analysis.TrackableID{
		{Browser: "Yandex", Host: "api.browser.yandex.ru", Param: "uuid",
			Values: []string{"a1b2c3d4e5f60718293a4b5c6d7e8f90"}, Sightings: 200},
		{Browser: "X", Host: "h.example", Param: "clientid",
			Values: []string{"1111111111111111", "2222222222222222"}, Sightings: 4},
	})
	out := sb.String()
	if !strings.Contains(out, "STABLE") || !strings.Contains(out, "seen 200×") {
		t.Errorf("output:\n%s", out)
	}
	if !strings.Contains(out, "2 distinct values (rotating)") {
		t.Errorf("rotation case missing:\n%s", out)
	}
	sb.Reset()
	TrackableIDs(&sb, nil)
	if !strings.Contains(sb.String(), "none detected") {
		t.Error("empty case")
	}
}

func TestVolumeCrossCheckRendering(t *testing.T) {
	var sb strings.Builder
	VolumeCrossCheck(&sb, []analysis.VolumeCheck{
		{Browser: "Edge", UID: 10001, ProxyReqBytes: 100, KernelTxBytes: 150, Consistent: true},
		{Browser: "Bad", UID: 10002, ProxyReqBytes: 100, KernelTxBytes: 50, Consistent: false},
	})
	out := sb.String()
	if !strings.Contains(out, "yes") || !strings.Contains(out, "NO") {
		t.Errorf("output:\n%s", out)
	}
}
