package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"panoptes/internal/obs"
)

// MetricsSummary renders the end-of-campaign observability table: one
// row per metric family with its total, and p50/p95 for histograms —
// the operator's view of where time and bytes went.
func MetricsSummary(w io.Writer, r *obs.Registry) {
	fmt.Fprintln(w, "Observability summary — metric families (obs registry)")
	fmt.Fprintf(w, "%-34s %14s %10s %10s\n", "family", "total", "p50", "p95")
	for _, name := range r.Families() {
		total := r.Sum(name)
		p50, p95 := histQuantiles(r, name)
		if p50 != "" || p95 != "" {
			fmt.Fprintf(w, "%-34s %14s %10s %10s\n", name, formatCount(total), p50, p95)
		} else {
			fmt.Fprintf(w, "%-34s %14s\n", name, formatCount(total))
		}
	}
}

// histQuantiles formats p50/p95 for histogram families ("" otherwise).
func histQuantiles(r *obs.Registry, name string) (p50, p95 string) {
	h, ok := r.FindHistogram(name)
	if !ok || h.Count() == 0 {
		return "", ""
	}
	return formatSeconds(h.Quantile(0.50)), formatSeconds(h.Quantile(0.95))
}

func formatSeconds(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return time.Duration(v * float64(time.Second)).Round(time.Millisecond).String()
}

func formatCount(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

// CampaignObsSummary prints the headline operator numbers after a crawl:
// cert-cache hit rate, per-visit latency percentiles, proxied exchange
// and byte totals — the acceptance numbers for every later perf PR.
func CampaignObsSummary(w io.Writer, r *obs.Registry) {
	hits := float64(r.Counter("mitm_cert_cache_total", "result", "hit").Value())
	misses := float64(r.Counter("mitm_cert_cache_total", "result", "miss").Value())
	rate := 0.0
	if hits+misses > 0 {
		rate = 100 * hits / (hits + misses)
	}
	fmt.Fprintln(w, "Campaign observability summary")
	fmt.Fprintf(w, "  cert-cache hit rate    %5.1f%% (%d hits, %d misses)\n", rate, int64(hits), int64(misses))

	resClient := r.Counter("mitm_handshake_resumed_total", "side", "client").Value()
	resUp := r.Counter("mitm_handshake_resumed_total", "side", "upstream").Value()
	if resClient+resUp > 0 {
		fmt.Fprintf(w, "  resumed handshakes     %d client / %d upstream\n", resClient, resUp)
	}
	reused := float64(r.Counter("mitm_conn_reuse_total", "result", "reused").Value())
	dialed := float64(r.Counter("mitm_conn_reuse_total", "result", "dialed").Value())
	if reused+dialed > 0 {
		fmt.Fprintf(w, "  upstream conn reuse    %5.1f%% (%d reused, %d dialed)\n",
			100*reused/(reused+dialed), int64(reused), int64(dialed))
	}

	vh := r.Histogram("core_visit_duration_seconds", nil)
	if vh.Count() > 0 {
		fmt.Fprintf(w, "  per-visit latency      p50 %s  p95 %s (%d visits)\n",
			formatSeconds(vh.Quantile(0.50)), formatSeconds(vh.Quantile(0.95)), vh.Count())
	}
	fmt.Fprintf(w, "  proxied exchanges      %d (https %d, http %d)\n",
		int64(r.Sum("mitm_requests_total")),
		r.Counter("mitm_requests_total", "scheme", "https").Value(),
		r.Counter("mitm_requests_total", "scheme", "http").Value())
	fmt.Fprintf(w, "  proxied bytes          %d up / %d down\n",
		r.Counter("mitm_bytes_total", "dir", "up").Value(),
		r.Counter("mitm_bytes_total", "dir", "down").Value())
	fmt.Fprintf(w, "  flows stored           %d engine / %d native\n",
		r.Counter("capture_flows_total", "db", "engine").Value(),
		r.Counter("capture_flows_total", "db", "native").Value())
	fmt.Fprintf(w, "  dns questions          %d doh / %d stub\n",
		int64(sumLabel(r, "dns_queries_total", "transport", "doh")),
		int64(sumLabel(r, "dns_queries_total", "transport", "stub")))
	if r.Sum("mitm_transport_flows_total") > 0 {
		fmt.Fprintf(w, "  transport mix          %d h1 / %d h2 / %d ws / %d doh flows\n",
			int64(sumLabel(r, "mitm_transport_flows_total", "transport", "h1")),
			int64(sumLabel(r, "mitm_transport_flows_total", "transport", "h2")),
			int64(sumLabel(r, "mitm_transport_flows_total", "transport", "ws")),
			int64(sumLabel(r, "mitm_transport_flows_total", "transport", "doh")))
	}
	if fb, byp := r.Sum("netsim_quic_fallback_total"), r.Sum("netsim_quic_bypass_total"); fb+byp > 0 {
		fmt.Fprintf(w, "  quic arms race         %d forced TCP fallbacks / %d uncaptured h3 bypasses\n",
			int64(fb), int64(byp))
	}
	fmt.Fprintf(w, "  virtual conns opened   %d (%d dial errors)\n",
		r.Counter("netsim_conns_opened_total").Value(),
		r.Counter("netsim_dial_errors_total").Value())
}

// PipelineObsSummary renders the streaming-analysis view: one row per
// registered analyzer with observe counts, retraction counts and
// per-flow observe-latency percentiles, plus the retention picture —
// flows still resident in each capture database versus flows spilled
// to the JSONL sink.
func PipelineObsSummary(w io.Writer, r *obs.Registry) {
	series := r.Series("pipeline_observed_total")
	if len(series) == 0 {
		return
	}
	names := make([]string, 0, len(series))
	for _, s := range series {
		if a := s.Labels["analyzer"]; a != "" {
			names = append(names, a)
		}
	}
	sort.Strings(names)
	fmt.Fprintln(w, "Streaming pipeline summary")
	fmt.Fprintf(w, "  %-20s %10s %10s %10s %10s\n", "analyzer", "observed", "retracted", "p50", "p95")
	for _, a := range names {
		h := r.Histogram("pipeline_observe_seconds", nil, "analyzer", a)
		p50, p95 := "-", "-"
		if h.Count() > 0 {
			p50, p95 = formatLatency(h.Quantile(0.50)), formatLatency(h.Quantile(0.95))
		}
		fmt.Fprintf(w, "  %-20s %10d %10d %10s %10s\n", a,
			r.Counter("pipeline_observed_total", "analyzer", a).Value(),
			r.Counter("pipeline_retractions_total", "analyzer", a).Value(),
			p50, p95)
	}
	fmt.Fprintf(w, "  resident flows         %d engine / %d native\n",
		int64(r.Gauge("capture_store_flows", "db", "engine").Value()),
		int64(r.Gauge("capture_store_flows", "db", "native").Value()))
	fmt.Fprintf(w, "  spilled flows          %d engine / %d native\n",
		r.Counter("capture_spilled_total", "db", "engine").Value(),
		r.Counter("capture_spilled_total", "db", "native").Value())
}

// SinkObsSummary renders the export plane's view: one row per sink with
// published/dropped event counts and breaker open transitions, then the
// flush-trigger mix. Quiet when no sink metrics exist (no export plane
// wired).
func SinkObsSummary(w io.Writer, r *obs.Registry) {
	series := r.Series("sink_published_total")
	sinks := make(map[string]bool)
	for _, s := range series {
		if name := s.Labels["sink"]; name != "" {
			sinks[name] = true
		}
	}
	for _, s := range r.Series("sink_dropped_total") {
		if name := s.Labels["sink"]; name != "" {
			sinks[name] = true
		}
	}
	if len(sinks) == 0 {
		return
	}
	names := make([]string, 0, len(sinks))
	for name := range sinks {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "Export sink summary")
	fmt.Fprintf(w, "  %-12s %12s %12s %14s\n", "sink", "published", "dropped", "breaker opens")
	for _, name := range names {
		fmt.Fprintf(w, "  %-12s %12d %12d %14d\n", name,
			r.Counter("sink_published_total", "sink", name).Value(),
			int64(sumLabel(r, "sink_dropped_total", "sink", name)),
			r.Counter("sink_breaker_open_total", "sink", name).Value())
	}
	fmt.Fprintf(w, "  batch flushes          %d size / %d age / %d manual / %d final\n",
		r.Counter("sink_batch_flush_total", "trigger", "size").Value(),
		r.Counter("sink_batch_flush_total", "trigger", "age").Value(),
		r.Counter("sink_batch_flush_total", "trigger", "manual").Value(),
		r.Counter("sink_batch_flush_total", "trigger", "final").Value())
	if deduped := r.Counter("sink_deduped_total").Value(); deduped > 0 {
		fmt.Fprintf(w, "  resume dedupe          %d events skipped\n", deduped)
	}
}

// PopulationObsSummary renders the population session engine's view:
// active users, sessions admitted, scheduler pressure and admission
// throttling. Quiet when no population ran (emulator-only campaign).
func PopulationObsSummary(w io.Writer, r *obs.Registry) {
	sessions := r.Counter("popsim_sessions_total").Value()
	if sessions == 0 {
		return
	}
	fmt.Fprintln(w, "Population engine summary")
	fmt.Fprintf(w, "  active users           %d\n",
		int64(r.Gauge("popsim_active_users").Value()))
	fmt.Fprintf(w, "  sessions admitted      %d\n", sessions)
	fmt.Fprintf(w, "  events scheduled       %d\n",
		r.Counter("popsim_events_scheduled_total").Value())
	fmt.Fprintf(w, "  admission throttled    %d session starts deferred\n",
		r.Counter("popsim_admission_throttled_total").Value())
	if churned := sumLabel(r, "fault_injected_total", "kind", "user_churn"); churned > 0 {
		fmt.Fprintf(w, "  churned users          %d\n", int64(churned))
	}
}

// FabricObsSummary renders the distributed fabric's view: lease
// lifecycle counts, worker restarts, merge lag and transport health.
// Quiet when no leases were issued (single-process run).
func FabricObsSummary(w io.Writer, r *obs.Registry) {
	issued := r.Counter("fabric_lease_issued_total").Value()
	if issued == 0 {
		return
	}
	fmt.Fprintln(w, "Fabric summary")
	fmt.Fprintf(w, "  leases                 %d issued / %d reclaimed / %d duplicate completions\n",
		issued,
		r.Counter("fabric_lease_reclaimed_total").Value(),
		r.Counter("fabric_lease_duplicate_total").Value())
	fmt.Fprintf(w, "  worker restarts        %d\n",
		r.Counter("fabric_worker_restarts_total").Value())
	fmt.Fprintf(w, "  quarantined flows      %d\n",
		r.Counter("fabric_flows_quarantined_total").Value())
	fmt.Fprintf(w, "  merge lag              %d flows parked\n",
		int64(r.Gauge("fabric_merge_lag").Value()))
	fmt.Fprintf(w, "  transport sends        %d ok / %d failed\n",
		int64(sumLabel(r, "fabric_transport_sends_total", "result", "ok")),
		int64(sumLabel(r, "fabric_transport_sends_total", "result", "error")))
}

// formatLatency renders observe latencies, keeping sub-millisecond
// values legible (formatSeconds rounds to a whole millisecond, which
// would flatten per-flow analyzer costs to 0s).
func formatLatency(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	d := time.Duration(v * float64(time.Second))
	if d < time.Millisecond {
		return d.Round(time.Microsecond).String()
	}
	return d.Round(10 * time.Microsecond).String()
}

// sumLabel adds every series of family whose label set includes k=v.
func sumLabel(r *obs.Registry, name, k, v string) float64 {
	var total float64
	for _, s := range r.Series(name) {
		if s.Labels[k] == v {
			total += s.Value
		}
	}
	return total
}

const waterfallWidth = 48

// Waterfall renders span trees as an ASCII waterfall: one block per
// root (page visit), each descendant drawn as a bar positioned at its
// offset from the visit start, scaled to the visit duration.
func Waterfall(w io.Writer, trees []obs.SpanData) {
	for _, root := range trees {
		total := root.Duration()
		attrs := root.SortedAttrs()
		fmt.Fprintf(w, "%s %s  (%s)\n", root.Name, strings.Join(attrs, " "), total.Round(time.Millisecond))
		var walk func(d obs.SpanData, depth int)
		walk = func(d obs.SpanData, depth int) {
			off := d.Start.Sub(root.Start)
			fmt.Fprintf(w, "  %-26s |%s| %8s @%s\n",
				strings.Repeat("  ", depth)+d.Name,
				waterfallBar(off, d.Duration(), total),
				d.Duration().Round(time.Millisecond),
				off.Round(time.Millisecond))
			// Deep trees (one span per intercepted request) stay readable:
			// children are drawn in start order.
			children := append([]obs.SpanData(nil), d.Children...)
			sort.SliceStable(children, func(i, j int) bool { return children[i].Start.Before(children[j].Start) })
			for _, c := range children {
				walk(c, depth+1)
			}
		}
		for _, c := range root.Children {
			walk(c, 0)
		}
	}
}

func waterfallBar(off, dur, total time.Duration) string {
	if total <= 0 {
		return strings.Repeat(" ", waterfallWidth)
	}
	start := int(float64(off) / float64(total) * waterfallWidth)
	width := int(float64(dur) / float64(total) * waterfallWidth)
	if start > waterfallWidth {
		start = waterfallWidth
	}
	if width < 1 {
		width = 1 // zero-duration spans still get a tick mark
	}
	if start+width > waterfallWidth {
		width = waterfallWidth - start
		if width < 1 {
			start, width = waterfallWidth-1, 1
		}
	}
	return strings.Repeat(" ", start) + strings.Repeat("█", width) +
		strings.Repeat(" ", waterfallWidth-start-width)
}
