package frida

import (
	"errors"
	"net/http"
	"testing"
)

func testExports(loads *[]string, hook *RequestHook) Exports {
	return Exports{
		LoadURL: func(url string) (int64, error) {
			*loads = append(*loads, url)
			return 1200, nil
		},
		SetRequestHook: func(h RequestHook) { *hook = h },
		Version:        func() string { return "13.4.2.1307" },
	}
}

func TestAttachAndCallLoadURL(t *testing.T) {
	d := NewDevice()
	var loads []string
	var hook RequestHook
	proc := d.Register("com.UCMobile.intl", testExports(&loads, &hook))
	if proc.PID <= 0 {
		t.Fatalf("pid = %d", proc.PID)
	}
	s, err := Attach(d, "com.UCMobile.intl")
	if err != nil {
		t.Fatal(err)
	}
	if s.PID() != proc.PID {
		t.Fatalf("session pid = %d", s.PID())
	}
	ms, err := s.CallLoadURL("https://example.com/")
	if err != nil || ms != 1200 {
		t.Fatalf("load = %d, %v", ms, err)
	}
	if len(loads) != 1 || loads[0] != "https://example.com/" {
		t.Fatalf("loads = %v", loads)
	}
	if s.Version() != "13.4.2.1307" {
		t.Fatalf("version = %q", s.Version())
	}
}

func TestAttachMissingProcess(t *testing.T) {
	d := NewDevice()
	_, err := Attach(d, "com.ghost")
	var nf *ErrProcessNotFound
	if !errors.As(err, &nf) || nf.Package != "com.ghost" {
		t.Fatalf("err = %v", err)
	}
}

func TestInterceptRequestsInstallsHook(t *testing.T) {
	d := NewDevice()
	var loads []string
	var installed RequestHook
	d.Register("com.tencent.mtt", testExports(&loads, &installed))
	s, err := Attach(d, "com.tencent.mtt")
	if err != nil {
		t.Fatal(err)
	}
	called := false
	if err := s.InterceptRequests(func(r *http.Request) error {
		called = true
		r.Header.Set("X-Taint", "1")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if installed == nil {
		t.Fatal("hook not installed")
	}
	req, _ := http.NewRequest("GET", "https://x.example/", nil)
	installed(req)
	if !called || req.Header.Get("X-Taint") != "1" {
		t.Fatal("hook did not run")
	}
	// Detach clears the hook.
	s.Detach()
	if installed != nil {
		t.Fatal("hook not cleared on detach")
	}
	if _, err := s.CallLoadURL("x"); err == nil {
		t.Fatal("call after detach succeeded")
	}
	if err := s.InterceptRequests(nil); err == nil {
		t.Fatal("intercept after detach succeeded")
	}
	s.Detach() // idempotent
}

func TestMissingExports(t *testing.T) {
	d := NewDevice()
	d.Register("com.bare", Exports{})
	s, _ := Attach(d, "com.bare")
	if _, err := s.CallLoadURL("x"); err == nil {
		t.Fatal("loadUrl without symbol succeeded")
	}
	if err := s.InterceptRequests(func(*http.Request) error { return nil }); err == nil {
		t.Fatal("intercept without symbol succeeded")
	}
	if s.Version() != "" {
		t.Fatal("version without symbol")
	}
}

func TestUnregister(t *testing.T) {
	d := NewDevice()
	d.Register("com.a", Exports{})
	d.Register("com.b", Exports{})
	if got := len(d.Processes()); got != 2 {
		t.Fatalf("processes = %d", got)
	}
	d.Unregister("com.a")
	if got := d.Processes(); len(got) != 1 || got[0] != "com.b" {
		t.Fatalf("processes = %v", got)
	}
	if _, err := Attach(d, "com.a"); err == nil {
		t.Fatal("attach to stopped process succeeded")
	}
}

func TestPIDsIncrease(t *testing.T) {
	d := NewDevice()
	a := d.Register("com.a", Exports{})
	b := d.Register("com.b", Exports{})
	if b.PID <= a.PID {
		t.Fatalf("pids: %d then %d", a.PID, b.PID)
	}
}
