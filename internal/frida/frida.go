// Package frida models the dynamic-instrumentation path Panoptes uses for
// browsers without CDP support (paper §2.1, §2.3): attach to the running
// app process, hook the WebView's request-dispatch function to taint
// outgoing engine requests, and call the app's load-URL entry point to
// drive navigation — the in-process equivalent of a Frida script with an
// Interceptor.attach and an RPC export.
package frida

import (
	"fmt"
	"net/http"
	"sync"
)

// RequestHook observes/mutates an engine request before dispatch;
// returning an error aborts the request.
type RequestHook func(*http.Request) error

// Exports is the hookable symbol surface an instrumented app exposes:
// the in-process analogue of the native symbols a Frida script binds.
type Exports struct {
	// LoadURL is the app's navigation entry point
	// ("com.ucweb.web.BrowserShell.loadUrl"). It returns the modelled
	// page load latency in virtual milliseconds.
	LoadURL func(url string) (loadTimeMs int64, err error)
	// SetRequestHook installs (or clears, with nil) a hook on the
	// WebView's request dispatch ("ResourceLoader::sendRequest").
	SetRequestHook func(RequestHook)
	// Version reports the app version.
	Version func() string
}

// Device is the process registry Frida attaches through (the `frida -U`
// device). Apps register on launch and unregister on stop.
type Device struct {
	mu      sync.Mutex
	nextPID int
	procs   map[string]*Process
}

// Process is one attachable app process.
type Process struct {
	Package string
	PID     int
	Exports Exports
}

// NewDevice creates an empty registry.
func NewDevice() *Device {
	return &Device{nextPID: 4000, procs: make(map[string]*Process)}
}

// Register announces a running app process.
func (d *Device) Register(pkg string, exp Exports) *Process {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextPID++
	p := &Process{Package: pkg, PID: d.nextPID, Exports: exp}
	d.procs[pkg] = p
	return p
}

// Unregister removes an app process (app stopped).
func (d *Device) Unregister(pkg string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.procs, pkg)
}

// Processes lists running packages.
func (d *Device) Processes() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.procs))
	for p := range d.procs {
		out = append(out, p)
	}
	return out
}

// ErrProcessNotFound reports a failed attach.
type ErrProcessNotFound struct{ Package string }

func (e *ErrProcessNotFound) Error() string {
	return fmt.Sprintf("frida: unable to find process %q", e.Package)
}

// Session is an attachment to one app process.
type Session struct {
	dev  *Device
	proc *Process

	mu       sync.Mutex
	hooked   bool
	detached bool
}

// Attach opens a session on a running package.
func Attach(d *Device, pkg string) (*Session, error) {
	d.mu.Lock()
	proc, ok := d.procs[pkg]
	d.mu.Unlock()
	if !ok {
		return nil, &ErrProcessNotFound{Package: pkg}
	}
	return &Session{dev: d, proc: proc}, nil
}

// PID returns the attached process id.
func (s *Session) PID() int { return s.proc.PID }

// CallLoadURL invokes the app's navigation export (the RPC the Panoptes
// Frida script exposes for browsers without CDP).
func (s *Session) CallLoadURL(url string) (int64, error) {
	s.mu.Lock()
	if s.detached {
		s.mu.Unlock()
		return 0, fmt.Errorf("frida: session detached")
	}
	s.mu.Unlock()
	if s.proc.Exports.LoadURL == nil {
		return 0, fmt.Errorf("frida: %s exports no loadUrl symbol", s.proc.Package)
	}
	return s.proc.Exports.LoadURL(url)
}

// InterceptRequests hooks the WebView request dispatch with the given
// hook — the taint-injection path for non-CDP browsers.
func (s *Session) InterceptRequests(hook RequestHook) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.detached {
		return fmt.Errorf("frida: session detached")
	}
	if s.proc.Exports.SetRequestHook == nil {
		return fmt.Errorf("frida: %s exports no sendRequest symbol", s.proc.Package)
	}
	s.proc.Exports.SetRequestHook(hook)
	s.hooked = true
	return nil
}

// Version calls the app's version export.
func (s *Session) Version() string {
	if s.proc.Exports.Version == nil {
		return ""
	}
	return s.proc.Exports.Version()
}

// Detach removes installed hooks and closes the session.
func (s *Session) Detach() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.detached {
		return
	}
	if s.hooked && s.proc.Exports.SetRequestHook != nil {
		s.proc.Exports.SetRequestHook(nil)
	}
	s.detached = true
}
