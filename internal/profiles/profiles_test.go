package profiles

import (
	"strings"
	"testing"
)

func TestAllFifteenBrowsers(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("profiles = %d, want 15 (Table 1)", len(all))
	}
	names := map[string]bool{}
	pkgs := map[string]bool{}
	for _, p := range all {
		if names[p.Name] {
			t.Errorf("duplicate name %s", p.Name)
		}
		if pkgs[p.Package] {
			t.Errorf("duplicate package %s", p.Package)
		}
		names[p.Name] = true
		pkgs[p.Package] = true
	}
}

func TestTable1Versions(t *testing.T) {
	// The paper's Table 1, verbatim.
	want := map[string]string{
		"Chrome": "113.0.5672.77", "DuckDuckGo": "5.158.0",
		"Edge": "113.0.1774.38", "Dolphin": "12.2.9",
		"Opera": "75.1.3978.72329", "Whale": "2.10.2.2",
		"Vivaldi": "6.0.2980.33", "Mint": "3.9.3",
		"Yandex": "23.3.7.24", "Kiwi": "112.0.5615.137",
		"Brave": "1.51.114", "CocCoc": "117.0.177",
		"Samsung": "20.0.6.5", "UC International": "13.4.2.1307",
		"QQ": "13.7.6.6042",
	}
	for name, version := range want {
		p := ByName(name)
		if p == nil {
			t.Errorf("profile %s missing", name)
			continue
		}
		if p.Version != version {
			t.Errorf("%s version = %s, want %s", name, p.Version, version)
		}
	}
	if ByName("Firefox") != nil {
		t.Error("Firefox must be excluded (incompatible instrumentation, §3)")
	}
}

func TestDNSSplitEightSeven(t *testing.T) {
	doh, local := 0, 0
	for _, p := range All() {
		switch p.DNS {
		case DNSDoHCloudflare, DNSDoHGoogle:
			doh++
		case DNSLocal:
			local++
		default:
			t.Errorf("%s: unknown DNS mode %q", p.Name, p.DNS)
		}
	}
	if doh != 8 || local != 7 {
		t.Fatalf("doh=%d local=%d, want 8/7 (§3.2)", doh, local)
	}
}

func TestIncognitoAvailability(t *testing.T) {
	for _, p := range All() {
		wantNo := p.Name == "Yandex" || p.Name == "QQ"
		if p.HasIncognito == wantNo {
			t.Errorf("%s HasIncognito = %v (footnote 5)", p.Name, p.HasIncognito)
		}
	}
}

func TestFullURLLeakers(t *testing.T) {
	leakers := map[string]bool{}
	for _, p := range All() {
		if p.LeaksFullURL {
			leakers[p.Name] = true
		}
	}
	for _, want := range []string{"Yandex", "QQ", "UC International"} {
		if !leakers[want] {
			t.Errorf("%s should leak full URLs", want)
		}
	}
	if len(leakers) != 3 {
		t.Errorf("full-URL leakers = %v, want exactly 3", leakers)
	}
	if !ByName("UC International").InjectsScript {
		t.Error("UC must leak via script injection")
	}
	if ByName("Yandex").InjectsScript || ByName("QQ").InjectsScript {
		t.Error("only UC injects a script")
	}
	if !ByName("Yandex").PersistentID {
		t.Error("Yandex carries the persistent identifier")
	}
}

func TestInstrumentationModes(t *testing.T) {
	frida := map[string]bool{}
	for _, p := range All() {
		switch p.Instrumentation {
		case InstrumentCDP:
		case InstrumentFrida:
			frida[p.Name] = true
		default:
			t.Errorf("%s: bad instrumentation %q", p.Name, p.Instrumentation)
		}
	}
	// The WebView-based browsers use the Frida path; UC is called out
	// explicitly in §2.3.
	if !frida["UC International"] {
		t.Error("UC must use Frida")
	}
	if frida["Chrome"] || frida["Edge"] {
		t.Error("Chromium flagships support CDP")
	}
}

func TestPIIMatchesTable2Flags(t *testing.T) {
	// Spot-check the distinctive rows.
	whale := ByName("Whale").PII
	if !whale.LocalIP || !whale.Rooted {
		t.Error("Whale must leak local IP and rooted status")
	}
	opera := ByName("Opera").PII
	if !opera.LatLong || !opera.Country {
		t.Error("Opera must leak lat/long and country")
	}
	if opera.ConnType {
		t.Error("Opera Connection Type is No in Table 2")
	}
	yandex := ByName("Yandex").PII
	if !yandex.DPI {
		t.Error("Yandex is the only DPI leaker")
	}
	for _, clean := range []string{"Chrome", "Brave", "DuckDuckGo", "Dolphin", "Kiwi"} {
		if ByName(clean).PII.Any() {
			t.Errorf("%s should have an all-No Table 2 row", clean)
		}
	}
	// Browsers with PII must name a carrier.
	for _, p := range All() {
		if p.PII.Any() && p.PIICarrier == "" {
			t.Errorf("%s leaks PII but has no carrier", p.Name)
		}
	}
}

func TestIdleModelsSane(t *testing.T) {
	for _, p := range All() {
		if p.IdleBurst < 0 || p.IdleTauSec <= 0 || p.IdleRatePerMin < 0 {
			t.Errorf("%s: bad idle params %+v", p.Name, p)
		}
		if len(p.IdleDests) == 0 {
			t.Errorf("%s: no idle destinations", p.Name)
		}
		var total float64
		for _, d := range p.IdleDests {
			if d.Weight <= 0 || d.Host == "" {
				t.Errorf("%s: bad idle dest %+v", p.Name, d)
			}
			total += d.Weight
		}
		if total < 0.9 || total > 1.1 {
			t.Errorf("%s: idle weights sum %.3f, want ≈1", p.Name, total)
		}
	}
	// Opera's idle model is rate-dominated (linear); most others are
	// burst-dominated over 10 minutes.
	opera := ByName("Opera")
	if opera.IdleRatePerMin*10 < opera.IdleBurst*2 {
		t.Error("Opera idle should be rate-dominated (linear growth)")
	}
	chrome := ByName("Chrome")
	if chrome.IdleBurst < chrome.IdleRatePerMin*2 {
		t.Error("Chrome idle should be burst-dominated")
	}
}

func TestIdleFacebookShares(t *testing.T) {
	// Fig. 5: Dolphin 46% and Mint 8% of idle requests go to Facebook
	// Graph; CocCoc 6.7% to adjust; Opera 21.9% to doubleclick.
	share := func(name, host string) float64 {
		var total, w float64
		for _, d := range ByName(name).IdleDests {
			total += d.Weight
			if d.Host == host {
				w += d.Weight
			}
		}
		return w / total
	}
	checks := []struct {
		browser, host string
		want          float64
	}{
		{"Dolphin", "graph.facebook.com", 0.46},
		{"Mint", "graph.facebook.com", 0.08},
		{"CocCoc", "adjust.com", 0.067},
		{"Opera", "doubleclick.net", 0.219},
	}
	for _, c := range checks {
		got := share(c.browser, c.host)
		if got < c.want-0.02 || got > c.want+0.02 {
			t.Errorf("%s idle share to %s = %.3f, want %.3f", c.browser, c.host, got, c.want)
		}
	}
}

func TestUserAgents(t *testing.T) {
	for _, p := range All() {
		ua := p.UserAgent()
		for _, must := range []string{"Android 11", "SM-T580", "Chrome/", p.Version} {
			if !strings.Contains(ua, must) {
				t.Errorf("%s UA missing %q: %s", p.Name, must, ua)
			}
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if ByName("Netscape") != nil {
		t.Fatal("unknown name resolved")
	}
}

func TestCocCocAdBlocks(t *testing.T) {
	if !ByName("CocCoc").EngineAdBlock {
		t.Error("CocCoc ships an engine ad blocker (§3.1)")
	}
	for _, p := range All() {
		if p.Name != "CocCoc" && p.EngineAdBlock {
			t.Errorf("%s should not ad-block", p.Name)
		}
	}
}

func TestQQPinsAVendorHost(t *testing.T) {
	if len(ByName("QQ").PinnedHosts) == 0 {
		t.Error("QQ should pin a vendor endpoint (footnote 3 modelling)")
	}
}

func TestYandexTemplates(t *testing.T) {
	y := ByName("Yandex")
	var sba, api bool
	for _, tpl := range y.OnVisit {
		if tpl.Host == "sba.yandex.net" && strings.Contains(tpl.Query, "{URL_B64}") {
			sba = true
		}
		if tpl.Host == "api.browser.yandex.ru" &&
			strings.Contains(tpl.Query, "{HOST}") && strings.Contains(tpl.Query, "{UUID}") {
			api = true
		}
	}
	if !sba || !api {
		t.Errorf("Yandex templates wrong: sba=%v api=%v", sba, api)
	}
}
