// Package profiles defines the 15 mobile browsers of the paper's dataset
// (Table 1) as behaviour profiles. Each profile parameterises a browser
// emulator: which instrumentation it supports (CDP or a Frida WebView
// hook), how it resolves names (local stub vs third-party DoH — §3.2
// finds an 8/7 split), which native requests it issues on every page
// visit (phone-home history leaks, safe-browsing checks, telemetry,
// third-party ad SDK beacons), which PII and device identifiers those
// requests carry (Table 2), and how it phones home when idle (Figure 5).
//
// The numbers are calibrated so the analysis pipeline — which computes
// everything from captured traffic, never from these labels — reproduces
// the shape of the paper's figures: Edge and Yandex top the Fig. 2
// native/engine ratio near 0.38–0.39, Kiwi's distinct native destinations
// are ≈40 % ad-related (Fig. 3), QQ adds ≈42 % outgoing byte overhead
// (Fig. 4), and the idle timelines split into exponential-then-plateau
// versus Opera's news-feed-driven linear growth (Fig. 5).
package profiles

// Instrumentation selects how Panoptes instruments the browser.
type Instrumentation string

// Instrumentation modes.
const (
	InstrumentCDP   Instrumentation = "cdp"
	InstrumentFrida Instrumentation = "frida"
)

// DNSMode selects the browser's resolver path.
type DNSMode string

// DNS modes.
const (
	DNSLocal         DNSMode = "local"
	DNSDoHCloudflare DNSMode = "doh-cloudflare"
	DNSDoHGoogle     DNSMode = "doh-google"
)

// NativeTemplate is one native request the browser issues on every page
// visit. Query and Body support the placeholders {URL} (visited URL),
// {URL_B64} (standard-Base64 of it), {URL_ESC} (percent-escaped),
// {HOST} (visited hostname), and {UUID} (the browser's persistent
// identifier).
type NativeTemplate struct {
	Host   string
	Path   string
	Method string // GET or POST
	Query  string
	Body   string
}

// PIILeaks mirrors Table 2's columns.
type PIILeaks struct {
	DeviceType  bool
	DeviceManuf bool
	Timezone    bool
	Resolution  bool
	LocalIP     bool
	DPI         bool
	Rooted      bool
	Locale      bool
	Country     bool
	LatLong     bool
	ConnType    bool
	NetType     bool
}

// Any reports whether any attribute leaks.
func (p PIILeaks) Any() bool {
	return p.DeviceType || p.DeviceManuf || p.Timezone || p.Resolution ||
		p.LocalIP || p.DPI || p.Rooted || p.Locale || p.Country ||
		p.LatLong || p.ConnType || p.NetType
}

// IdleDest is one weighted idle phone-home destination.
type IdleDest struct {
	Host   string
	Path   string
	Weight float64 // relative share of idle requests
}

// Profile is one browser's full behaviour description.
type Profile struct {
	Name     string // display name, as in the paper's figures
	Package  string // Android package, source of the kernel UID
	Version  string // Table 1
	ChromeUA string // Chromium version advertised in the UA

	Instrumentation Instrumentation
	DNS             DNSMode
	HasIncognito    bool
	// EngineAdBlock makes the web engine enforce an easylist-style filter
	// (CocCoc ships one, §3.1) — ad embeds are blocked in the engine even
	// though the app still talks to ad/analytics servers natively.
	EngineAdBlock bool

	// OnVisit fires once per page visit.
	OnVisit []NativeTemplate
	// VisitNoise adds generic telemetry beacons per visit, round-robin
	// over NoiseHosts, each with NoiseBytes of POST body.
	VisitNoise int
	NoiseHosts []string
	NoiseBytes int

	// PII configures the per-visit device-info beacon.
	PII        PIILeaks
	PIICarrier string // destination host of the PII beacon ("" = none)

	// LeaksFullURL marks browsers whose native requests carry the whole
	// visited URL; InjectsScript marks UC's engine-side variant;
	// PersistentID marks Yandex's durable identifier.
	LeaksFullURL  bool
	InjectsScript bool
	PersistentID  bool

	// Idle model: cumulative requests after t seconds idle is
	//   C(t) = IdleBurst·(1−exp(−t/IdleTauSec)) + IdleRatePerMin·t/60.
	IdleBurst      float64
	IdleTauSec     float64
	IdleRatePerMin float64
	IdleDests      []IdleDest

	// PinnedHosts certificate-pin their vendor endpoints; requests to
	// them die on the MITM proxy (paper footnote 3).
	PinnedHosts []string

	// --- Transport behaviours ---

	// AttemptsQUIC marks Chromium-family browsers that probe UDP/443
	// (HTTP/3) against h3-advertising origins before every first contact;
	// the testbed's block-http3 firewall rule drops the probe and forces
	// the TCP fallback the interception plane relies on.
	AttemptsQUIC bool
	// H2Hosts lists vendor endpoints the native stack speaks HTTP/2 to
	// (ALPN "h2"); native requests to other hosts stay on HTTP/1.1.
	H2Hosts []string
	// WSTelemetryHost ("" = none) receives a per-visit WebSocket
	// telemetry frame whose JSON payload carries the visited URL — a
	// history leak that exists only inside WebSocket frames, never in an
	// HTTP request line or body.
	WSTelemetryHost string
	// DoHPIIQname ("" = none) is a DNS name the browser resolves through
	// its DoH endpoint on every visit; the {CC} placeholder expands to
	// the device country, so the PII rides only inside the DoH query
	// body as an encoded qname label.
	DoHPIIQname string

	// MarketSharePct is the browser's approximate share of the mobile
	// (Android) browser market at the time of the study, in percent.
	// The 15 profiles do not sum to 100 — the paper's dataset excludes
	// browsers the testbed cannot instrument — so consumers treat the
	// values as relative sampling weights (see MarketWeights), not a
	// partition of the market. The population simulator draws each
	// simulated user's browser from this mix.
	MarketSharePct float64
}

// UserAgent renders the profile's UA string on the testbed device.
func (p *Profile) UserAgent() string {
	return "Mozilla/5.0 (Linux; Android 11; SM-T580) AppleWebKit/537.36 " +
		"(KHTML, like Gecko) Chrome/" + p.ChromeUA + " Mobile Safari/537.36 " +
		p.Name + "/" + p.Version
}

// All returns the 15 profiles in the paper's Table 1 order.
func All() []*Profile {
	return []*Profile{
		Chrome(), Edge(), Opera(), Vivaldi(), Yandex(), Brave(), Samsung(),
		QQ(), DuckDuckGo(), Dolphin(), Whale(), Mint(), Kiwi(), CocCoc(),
		UCInternational(),
	}
}

// ByName returns the named profile or nil.
func ByName(name string) *Profile {
	for _, p := range All() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// MarketWeights returns the profiles' market shares as cumulative
// sampling weights normalised to [0,1): weights[i] is the upper edge of
// profile i's interval, weights[len-1] == 1. A uniform draw u picks the
// first i with u < weights[i]. Profiles with a zero share are given a
// small floor weight so every fleet member appears in large populations.
func MarketWeights(ps []*Profile) []float64 {
	const floor = 0.05 // percent — tail browsers still occur ~1 in 2000 users
	raw := make([]float64, len(ps))
	total := 0.0
	for i, p := range ps {
		w := p.MarketSharePct
		if w <= 0 {
			w = floor
		}
		raw[i] = w
		total += w
	}
	out := make([]float64, len(ps))
	cum := 0.0
	for i, w := range raw {
		cum += w / total
		out[i] = cum
	}
	if len(out) > 0 {
		out[len(out)-1] = 1
	}
	return out
}

// Chrome: the quiet baseline — safe-browsing and update checks only, no
// PII beyond the UA, local... Chrome actually uses Google DoH.
func Chrome() *Profile {
	return &Profile{
		Name: "Chrome", Package: "com.android.chrome", Version: "113.0.5672.77",
		MarketSharePct: 63.5,
		ChromeUA:       "113.0.5672.77", Instrumentation: InstrumentCDP,
		DNS: DNSDoHGoogle, HasIncognito: true,
		VisitNoise: 1, NoiseHosts: []string{"safebrowsing.googleapis.com"}, NoiseBytes: 60,
		AttemptsQUIC: true,
		H2Hosts:      []string{"update.googleapis.com"},
		IdleBurst:    14, IdleTauSec: 15, IdleRatePerMin: 0.8,
		IdleDests: []IdleDest{
			{Host: "update.googleapis.com", Path: "/service/update2", Weight: 0.45},
			{Host: "t0.gstatic.com", Path: "/faviconV2", Weight: 0.35},
			{Host: "safebrowsing.googleapis.com", Path: "/v4/threatListUpdates", Weight: 0.2},
		},
	}
}

// Edge: reports every visited domain to the Bing API, heavy telemetry to
// msn/microsoft endpoints plus adjust/outbrain/zemanta/scorecardresearch,
// and leaks manufacturer/timezone/resolution/locale/connection/network
// (Table 2). Fig. 2 ratio ≈ 0.38.
func Edge() *Profile {
	return &Profile{
		Name: "Edge", Package: "com.microsoft.emmx", Version: "113.0.1774.38",
		MarketSharePct: 1.6,
		ChromeUA:       "113.0.0.0", Instrumentation: InstrumentCDP,
		DNS: DNSDoHCloudflare, HasIncognito: true,
		OnVisit: []NativeTemplate{
			{Host: "api.bing.com", Path: "/search/suggestions", Method: "GET", Query: "q={HOST}&mkt=en-GR"},
			{Host: "browser.events.data.msn.com", Path: "/OneCollector/1.0", Method: "POST",
				Body: `{"name":"Microsoft.Edge.PageVisit","ver":"4.0"}`},
		},
		VisitNoise: 8,
		NoiseHosts: []string{
			"browser.events.data.msn.com", "edge.microsoft.com", "msn.com",
			"config.edge.skype.com", "adjust.com", "outbrain.com", "zemanta.com",
			"scorecardresearch.com", "ntp.msn.com", "assets.msn.com", "arc.msn.com",
			"ris.api.iris.microsoft.com", "mobile.events.data.microsoft.com",
			"vortex.data.microsoft.com", "settings-win.data.microsoft.com",
			"c.bing.com", "th.bing.com", "fd.api.iris.microsoft.com",
			"login.live.com", "smartscreen.microsoft.com",
			"functional.events.data.microsoft.com", "nav.smartscreen.microsoft.com",
		},
		NoiseBytes: 70,
		PII: PIILeaks{DeviceManuf: true, Timezone: true, Resolution: true,
			Locale: true, ConnType: true, NetType: true},
		PIICarrier:   "browser.events.data.msn.com",
		AttemptsQUIC: true,
		H2Hosts:      []string{"browser.events.data.msn.com"},
		IdleBurst:    32, IdleTauSec: 18, IdleRatePerMin: 3.0,
		IdleDests: []IdleDest{
			{Host: "msn.com", Path: "/feed", Weight: 0.25},
			{Host: "browser.events.data.msn.com", Path: "/OneCollector/1.0", Weight: 0.2},
			{Host: "edge.microsoft.com", Path: "/components/update", Weight: 0.15},
			{Host: "api.bing.com", Path: "/qsml", Weight: 0.12},
			{Host: "adjust.com", Path: "/session", Weight: 0.08},
			{Host: "outbrain.com", Path: "/widget", Weight: 0.07},
			{Host: "zemanta.com", Path: "/usersync", Weight: 0.06},
			{Host: "scorecardresearch.com", Path: "/b2", Weight: 0.07},
		},
	}
}

// Opera: reports every visited domain to Sitecheck, runs the OLeads ad
// SDK whose requests carry latitude/longitude and the persistent operaId
// (Listing 1), polls the news feed (linear idle growth), and talks to
// doubleclick/appsflyer while idle.
func Opera() *Profile {
	return &Profile{
		Name: "Opera", Package: "com.opera.browser", Version: "75.1.3978.72329",
		MarketSharePct: 2.9,
		ChromeUA:       "113.0.0.0", Instrumentation: InstrumentCDP,
		DNS: DNSDoHCloudflare, HasIncognito: true,
		OnVisit: []NativeTemplate{
			{Host: "sitecheck2.opera.com", Path: "/api/v1/check", Method: "GET", Query: "host={HOST}"},
			// The Listing 1 request: the OLeads ad SDK ships device and
			// location data with the persistent operaId on every fetch.
			{Host: "s-odx.oleads.com", Path: "/api/v1/sdk_fetch", Method: "POST",
				Body: `{"channelId":"adxsdk_for_opera_ofa_final","countryCode":"GR","languageCode":"EL","appPackageName":"com.opera.browser","appVersion":"75.1.3978.72329","sdkVersion":"1.12.2","osType":"ANDROID","osVersion":"11","deviceVendor":"Samsung","deviceModel":"SM-T580","deviceScreenWidth":1200,"deviceScreenHeight":1920,"operaId":"{UUID}","connectionType":"WIFI","userConsent":"false","latitude":35.3387,"longitude":25.1442,"placementKey":"55694986489856","adCount":2,"floorPriceInCent":0,"supportedAdTypes":["SINGLE"],"supportedCreativeTypes":["BIG_CARD","DISPLAY_HTML_300x250","NATIVE_NEWSFLOW_1_IMAGE"]}`},
		},
		VisitNoise: 4,
		NoiseHosts: []string{
			"autoupdate.geo.opera.com", "news.opera-api.com", "appsflyersdk.com",
			"doubleclick.net", "crashstats-collector.opera.com", "exchange.opera.com",
			"cdn.opera-api.com", "features.opera-api.com", "sync.opera.com",
			"push.opera.com", "update.opera.com", "suggestions.opera.com",
			"thumbnails.opera.com",
		},
		NoiseBytes: 80,
		PII: PIILeaks{DeviceManuf: true, Timezone: true, Resolution: true,
			Locale: true, Country: true, LatLong: true, NetType: true},
		PIICarrier: "s-odx.oleads.com",
		// Linear idle growth: the news feed dominates; burst near zero.
		IdleBurst: 4, IdleTauSec: 12, IdleRatePerMin: 6.5,
		IdleDests: []IdleDest{
			{Host: "news.opera-api.com", Path: "/feed", Weight: 0.52},
			{Host: "doubleclick.net", Path: "/gampad/ads", Weight: 0.219},
			{Host: "autoupdate.geo.opera.com", Path: "/check", Weight: 0.12},
			{Host: "sitecheck2.opera.com", Path: "/api/v1/ping", Weight: 0.104},
			{Host: "appsflyersdk.com", Path: "/api/v4/event", Weight: 0.017},
			{Host: "s-odx.oleads.com", Path: "/api/v1/sdk_heartbeat", Weight: 0.02},
		},
	}
}

// Vivaldi: chatty sync/thumbnail traffic (Fig. 2 ratio above 1/3) but
// only the screen resolution in Table 2.
func Vivaldi() *Profile {
	return &Profile{
		Name: "Vivaldi", Package: "com.vivaldi.browser", Version: "6.0.2980.33",
		MarketSharePct: 0.3,
		ChromeUA:       "112.0.0.0", Instrumentation: InstrumentCDP,
		DNS: DNSDoHCloudflare, HasIncognito: true,
		VisitNoise: 9, NoiseHosts: []string{"update.vivaldi.com", "downloads.vivaldi.com"},
		NoiseBytes: 70,
		PII:        PIILeaks{Resolution: true},
		PIICarrier: "update.vivaldi.com",
		IdleBurst:  22, IdleTauSec: 14, IdleRatePerMin: 1.6,
		IdleDests: []IdleDest{
			{Host: "update.vivaldi.com", Path: "/update/check", Weight: 0.6},
			{Host: "downloads.vivaldi.com", Path: "/thumbnails", Weight: 0.4},
		},
	}
}

// Yandex: the paper's headline case — every visit produces a Base64 copy
// of the full URL to sba.yandex.net and a host+persistent-UUID report to
// api.browser.yandex.ru, surviving cookie clears, IP changes, Tor.
// Fig. 2 ratio ≈ 0.39, the field's highest.
func Yandex() *Profile {
	return &Profile{
		Name: "Yandex", Package: "com.yandex.browser", Version: "23.3.7.24",
		MarketSharePct: 1.1,
		ChromeUA:       "110.0.0.0", Instrumentation: InstrumentCDP,
		DNS: DNSLocal, HasIncognito: false,
		OnVisit: []NativeTemplate{
			{Host: "sba.yandex.net", Path: "/safebrowsing/check", Method: "GET", Query: "url={URL_B64}&fmt=b64"},
			{Host: "api.browser.yandex.ru", Path: "/report/visit", Method: "GET", Query: "host={HOST}&uuid={UUID}"},
		},
		VisitNoise: 10,
		NoiseHosts: []string{
			"mc.yandex.ru", "favicon.yandex.net", "doubleclick.net", "adfox.ru",
			"browser-updates.yandex.net", "translate.yandex.net",
			"suggest.yandex.net", "push.yandex.ru", "zen.yandex.ru",
			"startpage.yandex.com",
		},
		NoiseBytes: 60,
		PII: PIILeaks{DeviceType: true, DeviceManuf: true, Resolution: true,
			DPI: true, Locale: true, NetType: true},
		PIICarrier:   "api.browser.yandex.ru",
		LeaksFullURL: true, PersistentID: true,
		IdleBurst: 30, IdleTauSec: 16, IdleRatePerMin: 2.2,
		IdleDests: []IdleDest{
			{Host: "favicon.yandex.net", Path: "/favicon", Weight: 0.42},
			{Host: "mc.yandex.ru", Path: "/watch", Weight: 0.3},
			{Host: "api.browser.yandex.ru", Path: "/config", Weight: 0.28},
		},
	}
}

// Brave: the quietest profile, matching its all-No Table 2 row.
func Brave() *Profile {
	return &Profile{
		Name: "Brave", Package: "com.brave.browser", Version: "1.51.114",
		MarketSharePct: 0.9,
		ChromeUA:       "113.0.0.0", Instrumentation: InstrumentCDP,
		DNS: DNSDoHCloudflare, HasIncognito: true,
		VisitNoise: 1, NoiseHosts: []string{"variations.brave.com"}, NoiseBytes: 30,
		AttemptsQUIC: true,
		H2Hosts:      []string{"variations.brave.com"},
		IdleBurst:    8, IdleTauSec: 12, IdleRatePerMin: 0.5,
		IdleDests: []IdleDest{
			{Host: "variations.brave.com", Path: "/seed", Weight: 0.5},
			{Host: "go-updater.brave.com", Path: "/extensions", Weight: 0.5},
		},
	}
}

// Samsung Internet: locale-only Table 2 row, moderate telemetry.
func Samsung() *Profile {
	return &Profile{
		Name: "Samsung", Package: "com.sec.android.app.sbrowser", Version: "20.0.6.5",
		MarketSharePct: 4.9,
		ChromeUA:       "111.0.0.0", Instrumentation: InstrumentCDP,
		DNS: DNSDoHCloudflare, HasIncognito: true,
		VisitNoise: 2, NoiseHosts: []string{"api.internet.apps.samsung.com"}, NoiseBytes: 80,
		PII:        PIILeaks{Locale: true},
		PIICarrier: "api.internet.apps.samsung.com",
		IdleBurst:  16, IdleTauSec: 15, IdleRatePerMin: 1.0,
		IdleDests: []IdleDest{
			{Host: "api.internet.apps.samsung.com", Path: "/v3/config", Weight: 1},
		},
	}
}

// QQ: leaks the full visited URL in POST bodies to wup.browser.qq.com
// and pads its reports heavily — the Fig. 4 outlier at ≈42 % extra
// outgoing bytes. No incognito mode. One vendor endpoint is pinned.
func QQ() *Profile {
	return &Profile{
		Name: "QQ", Package: "com.tencent.mtt", Version: "13.7.6.6042",
		MarketSharePct: 0.8,
		ChromeUA:       "108.0.0.0", Instrumentation: InstrumentFrida,
		DNS: DNSLocal, HasIncognito: false,
		OnVisit: []NativeTemplate{
			{Host: "wup.browser.qq.com", Path: "/report/url", Method: "POST",
				Body: `{"url":"{URL}","guid":"{UUID}","qua2":"QV=3&PL=ADR&PR=QB&VE=GA&VN=13.7.6.6042"}`},
		},
		VisitNoise: 9,
		NoiseHosts: []string{
			"mtt.browser.qq.com", "cloud.browser.qq.com", "pubmatic.com",
			"res.imtt.qq.com", "pms.mb.qq.com", "cdn1.browser.qq.com",
		},
		NoiseBytes:   220, // heavily padded telemetry: the Fig. 4 byte-volume outlier
		PII:          PIILeaks{DeviceType: true, DeviceManuf: true, Resolution: true},
		PIICarrier:   "wup.browser.qq.com",
		LeaksFullURL: true,
		IdleBurst:    24, IdleTauSec: 15, IdleRatePerMin: 1.8,
		IdleDests: []IdleDest{
			{Host: "mtt.browser.qq.com", Path: "/metrics", Weight: 0.6},
			{Host: "wup.browser.qq.com", Path: "/heartbeat", Weight: 0.4},
		},
		PinnedHosts: []string{"cloud.browser.qq.com"},
	}
}

// DuckDuckGo: minimal native traffic.
func DuckDuckGo() *Profile {
	return &Profile{
		Name: "DuckDuckGo", Package: "com.duckduckgo.mobile.android", Version: "5.158.0",
		MarketSharePct: 0.5,
		ChromeUA:       "113.0.0.0", Instrumentation: InstrumentCDP,
		DNS: DNSLocal, HasIncognito: true,
		VisitNoise: 2, NoiseHosts: []string{"improving.duckduckgo.com", "staticcdn.duckduckgo.com"},
		NoiseBytes: 70,
		IdleBurst:  7, IdleTauSec: 10, IdleRatePerMin: 0.6,
		IdleDests: []IdleDest{
			{Host: "staticcdn.duckduckgo.com", Path: "/trackerblocking/tds.json", Weight: 0.7},
			{Host: "improving.duckduckgo.com", Path: "/t/m_app_usage", Weight: 0.3},
		},
	}
}

// Dolphin: a WebView browser whose idle traffic is dominated (46 %) by
// Facebook Graph API calls.
func Dolphin() *Profile {
	return &Profile{
		Name: "Dolphin", Package: "mobi.mgeek.TunnyBrowser", Version: "12.2.9",
		MarketSharePct: 0.2,
		ChromeUA:       "95.0.0.0", Instrumentation: InstrumentFrida,
		DNS: DNSLocal, HasIncognito: true,
		VisitNoise: 5,
		NoiseHosts: []string{
			"api.dolphin-browser.com", "graph.facebook.com", "mixpanel.com",
			"sync.dolphin-browser.com", "push.dolphin-browser.com",
			"cdn.dolphin-browser.com",
		},
		NoiseBytes: 80,
		// The push channel is a WebSocket: every visit ships a telemetry
		// frame carrying the visited URL — invisible to analyses that only
		// look at HTTP request lines and bodies.
		WSTelemetryHost: "push.dolphin-browser.com",
		IdleBurst:       12, IdleTauSec: 14, IdleRatePerMin: 2.4,
		IdleDests: []IdleDest{
			{Host: "graph.facebook.com", Path: "/v12.0/app_events", Weight: 0.46},
			{Host: "api.dolphin-browser.com", Path: "/v1/sync", Weight: 0.38},
			{Host: "mixpanel.com", Path: "/track", Weight: 0.16},
		},
	}
}

// Whale (Naver): leaks the device's local IP, rooted status, network
// type and country (Table 2) — the most device-revealing row.
func Whale() *Profile {
	return &Profile{
		Name: "Whale", Package: "com.naver.whale", Version: "2.10.2.2",
		MarketSharePct: 0.4,
		ChromeUA:       "112.0.0.0", Instrumentation: InstrumentCDP,
		DNS: DNSDoHGoogle, HasIncognito: true,
		VisitNoise: 9, NoiseHosts: []string{"api-whale.naver.com"}, NoiseBytes: 70,
		PII: PIILeaks{Resolution: true, LocalIP: true, Rooted: true,
			Locale: true, Country: true, NetType: true},
		PIICarrier: "api-whale.naver.com",
		// Config lookup whose qname's first label smuggles the device
		// country ("cc-gr"): this copy of the attribute crosses the wire
		// only inside a DoH POST body, as a length-prefixed DNS label.
		DoHPIIQname: "cc-{CC}.t.whale.naver.com",
		IdleBurst:   20, IdleTauSec: 16, IdleRatePerMin: 1.4,
		IdleDests: []IdleDest{
			{Host: "api-whale.naver.com", Path: "/config/update", Weight: 1},
		},
	}
}

// Mint (Xiaomi): timezone/resolution/locale/country leaks; 8 % of its
// idle requests go to Facebook Graph.
func Mint() *Profile {
	return &Profile{
		Name: "Mint", Package: "com.mi.globalbrowser.mini", Version: "3.9.3",
		MarketSharePct: 0.2,
		ChromeUA:       "100.0.0.0", Instrumentation: InstrumentFrida,
		DNS: DNSLocal, HasIncognito: true,
		VisitNoise: 4,
		NoiseHosts: []string{
			"api.mintbrowser.com", "appsflyer.com", "news.mintbrowser.com",
			"data.mistat.intl.xiaomi.com", "update.intl.miui.com",
		},
		NoiseBytes: 80,
		PII:        PIILeaks{Timezone: true, Resolution: true, Locale: true, Country: true},
		PIICarrier: "api.mintbrowser.com",
		IdleBurst:  14, IdleTauSec: 13, IdleRatePerMin: 1.2,
		IdleDests: []IdleDest{
			{Host: "api.mintbrowser.com", Path: "/news/cards", Weight: 0.76},
			{Host: "graph.facebook.com", Path: "/v12.0/app_events", Weight: 0.08},
			{Host: "appsflyer.com", Path: "/api/v4/event", Weight: 0.16},
		},
	}
}

// Kiwi: few native requests, but ≈40 % of its distinct native
// destinations are ad/analytics servers — the Fig. 3 outlier.
func Kiwi() *Profile {
	return &Profile{
		Name: "Kiwi", Package: "com.kiwibrowser.browser", Version: "112.0.5615.137",
		MarketSharePct: 0.2,
		ChromeUA:       "112.0.5615.137", Instrumentation: InstrumentCDP,
		DNS: DNSDoHGoogle, HasIncognito: true,
		VisitNoise: 3,
		NoiseHosts: []string{
			"update.kiwibrowser.com", "t0.gstatic.com", "update.googleapis.com",
			"safebrowsing.googleapis.com", "clients4.google.com",
			"redirector.gvt1.com", "storage.googleusercontent.com",
			"check.googlezip.net",
			"rubiconproject.com", "adnxs.com", "openx.net",
			"pubmatic.com", "bidswitch.net", "demdex.net",
		},
		NoiseBytes: 70,
		IdleBurst:  10, IdleTauSec: 12, IdleRatePerMin: 0.9,
		IdleDests: []IdleDest{
			{Host: "update.kiwibrowser.com", Path: "/check", Weight: 0.6},
			{Host: "t0.gstatic.com", Path: "/faviconV2", Weight: 0.4},
		},
	}
}

// CocCoc: an ad-blocking browser (easylist in the engine) that still
// talks to adjust.com natively and leaks device type, manufacturer,
// resolution, locale and country.
func CocCoc() *Profile {
	return &Profile{
		Name: "CocCoc", Package: "com.coccoc.trinhduyet", Version: "117.0.177",
		MarketSharePct: 0.3,
		ChromeUA:       "112.0.0.0", Instrumentation: InstrumentCDP,
		DNS: DNSLocal, HasIncognito: true,
		EngineAdBlock: true,
		VisitNoise:    8,
		NoiseHosts: []string{
			"api.coccoc.com", "spell.itim.vn", "adjust.com", "newtab.coccoc.com",
			"log.coccoc.com", "gg.coccoc.com", "qc.coccoc.com", "dicts.itim.vn",
		},
		NoiseBytes: 70,
		PII: PIILeaks{DeviceType: true, DeviceManuf: true, Resolution: true,
			Locale: true, Country: true},
		PIICarrier: "api.coccoc.com",
		IdleBurst:  18, IdleTauSec: 15, IdleRatePerMin: 1.5,
		IdleDests: []IdleDest{
			{Host: "api.coccoc.com", Path: "/newtab", Weight: 0.633},
			{Host: "spell.itim.vn", Path: "/dict/update", Weight: 0.3},
			{Host: "adjust.com", Path: "/session", Weight: 0.067},
		},
	}
}

// UCInternational: leaks the browsing history not through native
// requests but through an obfuscated JavaScript snippet injected into
// every page, whose beacon reports the full URL plus city-level
// geolocation and ISP to gjapi.ucweb.com (§3.2). Instrumented via Frida.
func UCInternational() *Profile {
	return &Profile{
		Name: "UC International", Package: "com.UCMobile.intl", Version: "13.4.2.1307",
		MarketSharePct: 2.8,
		ChromeUA:       "100.0.0.0", Instrumentation: InstrumentFrida,
		DNS: DNSLocal, HasIncognito: true,
		VisitNoise: 4, NoiseHosts: []string{"puds.ucweb.com"}, NoiseBytes: 80,
		PII:           PIILeaks{Locale: true, NetType: true},
		PIICarrier:    "puds.ucweb.com",
		LeaksFullURL:  true, // via the injected script, not native requests
		InjectsScript: true,
		IdleBurst:     11, IdleTauSec: 13, IdleRatePerMin: 1.1,
		IdleDests: []IdleDest{
			{Host: "puds.ucweb.com", Path: "/upgrade/check", Weight: 1},
		},
	}
}
