// Package obs is Panoptes' observability layer: a dependency-free,
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms, labeled families), Prometheus-text and expvar-style JSON
// exposition over HTTP, and lightweight flow tracing (one span tree per
// page visit) exportable as JSONL.
//
// The measurement plane (mitm proxy, capture store, campaign runner, DNS
// simulators, virtual internet) instruments itself against the package
// Default registry, so both the testbed binaries and the explicit-proxy
// mode get the same counters for free. The paper's own methodology
// depends on this kind of accounting — Figure 4's byte volumes and the
// eBPF/proxy cross-check are byte counters over the same hot paths.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing event count. All methods are
// safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down (queue depths, cache sizes,
// active connections).
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d (d may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution (latencies, sizes). Bucket
// bounds are inclusive upper edges; an implicit +Inf bucket catches the
// tail. Observation is lock-free.
type Histogram struct {
	bounds []float64 // sorted upper bounds, without +Inf
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (without +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns the per-bucket counts; the final element is the
// +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation inside the bucket containing it, the same estimate
// Prometheus' histogram_quantile makes. With no observations it returns
// NaN; quantiles landing in the +Inf bucket clamp to the largest bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.bounds) { // +Inf bucket: clamp
				if len(h.bounds) == 0 {
					return math.NaN()
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			return lo + (hi-lo)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// DefLatencyBuckets are default seconds-scale latency bucket bounds.
var DefLatencyBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60}

// LinearBuckets returns n buckets starting at start, stepping by width.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n buckets starting at start, each factor
// times the previous.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// family groups every labeled series of one metric name.
type family struct {
	name    string
	kind    Kind
	help    string
	buckets []float64 // histogram families only

	mu     sync.RWMutex
	series map[string]any               // canonical label string -> *Counter/*Gauge/*Histogram
	labels map[string]map[string]string // canonical label string -> parsed labels
}

// Registry is a concurrency-safe collection of metric families. The zero
// value is not usable; call NewRegistry (or use Default).
type Registry struct {
	mu          sync.RWMutex
	fams        map[string]*family
	pendingHelp map[string]string // help registered before the family exists
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// Default is the process-wide registry the measurement plane instruments
// itself against, in the manner of expvar and the Prometheus default
// registerer.
var Default = NewRegistry()

// labelKey canonicalises "k1,v1,k2,v2,..." variadic pairs into a stable
// `k1="v1",k2="v2"` string, sorted by key.
func labelKey(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label pair list %q", pairs))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var sb strings.Builder
	for i, p := range kvs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(p.v))
		sb.WriteByte('"')
	}
	return sb.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// getFamily returns (creating if needed) the family for name, checking
// the kind matches prior registrations.
func (r *Registry) getFamily(name string, kind Kind, buckets []float64) *family {
	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.fams[name]; f == nil {
			f = &family{name: name, kind: kind, buckets: append([]float64(nil), buckets...),
				series: make(map[string]any), labels: make(map[string]map[string]string)}
			if h, ok := r.pendingHelp[name]; ok {
				f.help = h
				delete(r.pendingHelp, name)
			}
			r.fams[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

// getOrCreate returns the series at key, creating it with mk under the
// family lock on first use.
func (f *family) getOrCreate(key string, pairs []string, mk func() any) any {
	f.mu.RLock()
	m := f.series[key]
	f.mu.RUnlock()
	if m == nil {
		f.mu.Lock()
		if m = f.series[key]; m == nil {
			m = mk()
			f.series[key] = m
			f.labels[key] = labelMap(pairs)
		}
		f.mu.Unlock()
	}
	return m
}

func labelMap(pairs []string) map[string]string {
	if len(pairs) == 0 {
		return nil
	}
	out := make(map[string]string, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out[pairs[i]] = pairs[i+1]
	}
	return out
}

// Counter returns (creating if needed) the counter series for name and
// the given "k,v,..." label pairs. The same name+labels always returns
// the same *Counter.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	f := r.getFamily(name, KindCounter, nil)
	return f.getOrCreate(labelKey(labelPairs), labelPairs, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns (creating if needed) the gauge series for name+labels.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	f := r.getFamily(name, KindGauge, nil)
	return f.getOrCreate(labelKey(labelPairs), labelPairs, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns (creating if needed) the histogram series for
// name+labels. Bucket bounds are fixed by the first registration of the
// family; later calls may pass nil.
func (r *Registry) Histogram(name string, buckets []float64, labelPairs ...string) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	f := r.getFamily(name, KindHistogram, buckets)
	return f.getOrCreate(labelKey(labelPairs), labelPairs, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// Help sets the family's help text (shown as # HELP in the exposition).
// Help registered before the family's first metric is remembered and
// attached when the family is created.
func (r *Registry) Help(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		f.mu.Lock()
		f.help = help
		f.mu.Unlock()
		return
	}
	if r.pendingHelp == nil {
		r.pendingHelp = make(map[string]string)
	}
	r.pendingHelp[name] = help
}

// Families returns the registered family names, sorted.
func (r *Registry) Families() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.fams))
	for n := range r.fams {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Series is a read-only snapshot of one metric series: its parsed
// labels and current value (observation count for histograms).
type Series struct {
	Labels map[string]string
	Value  float64
}

// Series snapshots every series of a family (nil for unknown names).
func (r *Registry) Series(name string) []Series {
	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f == nil {
		return nil
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]Series, 0, len(f.series))
	for key, m := range f.series {
		s := Series{Labels: f.labels[key]}
		switch v := m.(type) {
		case *Counter:
			s.Value = float64(v.Value())
		case *Gauge:
			s.Value = v.Value()
		case *Histogram:
			s.Value = float64(v.Count())
		}
		out = append(out, s)
	}
	return out
}

// FindHistogram returns a histogram series of the family without
// creating one: the unlabeled series if present, else any series.
// ok is false when the family is missing, empty or not a histogram.
func (r *Registry) FindHistogram(name string) (*Histogram, bool) {
	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f == nil || f.kind != KindHistogram {
		return nil, false
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if m, ok := f.series[""]; ok {
		return m.(*Histogram), true
	}
	for _, m := range f.series {
		return m.(*Histogram), true
	}
	return nil, false
}

// Sum adds up every series of a counter or gauge family; for histogram
// families it sums observation counts. Unknown families sum to 0 — handy
// for "requests so far" style summaries without caring about labels.
func (r *Registry) Sum(name string) float64 {
	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f == nil {
		return 0
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	var total float64
	for _, m := range f.series {
		switch v := m.(type) {
		case *Counter:
			total += float64(v.Value())
		case *Gauge:
			total += v.Value()
		case *Histogram:
			total += float64(v.Count())
		}
	}
	return total
}
