package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one counter family, one gauge and one
// histogram from 16 goroutines and checks the totals add up — the
// acceptance race test (run under -race).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 1000

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("test_events_total", "shard", []string{"a", "b"}[g%2]).Inc()
				r.Gauge("test_depth").Add(1)
				r.Histogram("test_latency_seconds", []float64{0.1, 1, 10}).Observe(0.5)
			}
		}(g)
	}
	wg.Wait()

	total := r.Counter("test_events_total", "shard", "a").Value() +
		r.Counter("test_events_total", "shard", "b").Value()
	if want := int64(goroutines * perG); total != want {
		t.Fatalf("counter total = %d, want %d", total, want)
	}
	if got := r.Gauge("test_depth").Value(); got != float64(goroutines*perG) {
		t.Fatalf("gauge = %v, want %d", got, goroutines*perG)
	}
	h := r.Histogram("test_latency_seconds", nil)
	if h.Count() != int64(goroutines*perG) {
		t.Fatalf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	if math.Abs(h.Sum()-0.5*float64(goroutines*perG)) > 1e-6 {
		t.Fatalf("histogram sum = %v", h.Sum())
	}
}

// TestConcurrentRegistration races series creation itself: every
// goroutine asks for the same metrics and must receive the same
// underlying instances.
func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	const goroutines = 12
	counters := make([]*Counter, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			counters[g] = r.Counter("reg_race_total", "k", "v")
			counters[g].Inc()
		}(g)
	}
	wg.Wait()
	for _, c := range counters[1:] {
		if c != counters[0] {
			t.Fatal("same name+labels returned distinct counters")
		}
	}
	if got := counters[0].Value(); got != goroutines {
		t.Fatalf("value = %d, want %d", got, goroutines)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 5, 10})
	// Bounds are inclusive upper edges: 1 lands in the first bucket,
	// 1.0001 in the second, 10.5 in +Inf.
	for _, v := range []float64{0.5, 1} {
		h.Observe(v)
	}
	for _, v := range []float64{1.0001, 5} {
		h.Observe(v)
	}
	h.Observe(7)
	h.Observe(10.5)
	counts := h.BucketCounts()
	want := []int64{2, 2, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, counts[i], want[i], counts)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30, 40})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i % 40))
	}
	p50 := h.Quantile(0.50)
	if p50 < 10 || p50 > 30 {
		t.Fatalf("p50 = %v, want within [10,30]", p50)
	}
	if q := h.Quantile(1.0); q > 40 {
		t.Fatalf("p100 = %v beyond largest bound", q)
	}
	empty := newHistogram([]float64{1})
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
}

// TestPrometheusExposition pins the exposition format (golden output).
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Help("demo_requests_total", "Requests handled.")
	r.Counter("demo_requests_total", "code", "200").Add(3)
	r.Counter("demo_requests_total", "code", "500").Add(1)
	r.Gauge("demo_active_conns").Set(2)
	h := r.Histogram("demo_latency_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE demo_active_conns gauge
demo_active_conns 2
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{le="0.1"} 1
demo_latency_seconds_bucket{le="1"} 2
demo_latency_seconds_bucket{le="+Inf"} 3
demo_latency_seconds_sum 5.55
demo_latency_seconds_count 3
# HELP demo_requests_total Requests handled.
# TYPE demo_requests_total counter
demo_requests_total{code="200"} 3
demo_requests_total{code="500"} 1
`
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestLabelCanonicalisation(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("canon_total", "b", "2", "a", "1")
	b := r.Counter("canon_total", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order should not create distinct series")
	}
	a.Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `canon_total{a="1",b="2"} 1`) {
		t.Fatalf("canonical label order missing:\n%s", sb.String())
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("conflict_total")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind conflict")
		}
	}()
	r.Gauge("conflict_total")
}

func TestSumAcrossSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("sum_total", "x", "1").Add(4)
	r.Counter("sum_total", "x", "2").Add(6)
	if got := r.Sum("sum_total"); got != 10 {
		t.Fatalf("Sum = %v, want 10", got)
	}
	if got := r.Sum("missing_total"); got != 0 {
		t.Fatalf("Sum(missing) = %v, want 0", got)
	}
}

func TestMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("mux_hits_total").Inc()
	mux := NewMux(r)

	srv := httptest.NewServer(mux)
	defer srv.Close()

	for path, want := range map[string]string{
		"/metrics":     "mux_hits_total 1",
		"/debug/vars":  `"mux_hits_total": 1`,
		"/debug/pprof": "goroutine",
	} {
		resp, err := srv.Client().Get(srv.URL + path + "/"[:0])
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body := make([]byte, 1<<16)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		// pprof index redirects /debug/pprof to /debug/pprof/; follow-ups
		// are handled by the default client.
		if resp.StatusCode != 200 && resp.StatusCode != 301 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if resp.StatusCode == 200 && !strings.Contains(string(body[:n]), want) {
			t.Fatalf("%s: body missing %q:\n%s", path, want, body[:n])
		}
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 10, 3)
	if lin[0] != 0 || lin[1] != 10 || lin[2] != 20 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 2, 4)
	if exp[3] != 8 {
		t.Fatalf("ExponentialBuckets = %v", exp)
	}
}
