package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// SpanData is the exported, serialisable form of a span (sub)tree.
type SpanData struct {
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	End      time.Time         `json:"end"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []SpanData        `json:"children,omitempty"`
}

// Duration is End-Start (zero while the span is open).
func (d SpanData) Duration() time.Duration {
	if d.End.Before(d.Start) {
		return 0
	}
	return d.End.Sub(d.Start)
}

// Span is one timed operation in a flow trace. Spans form trees: a page
// visit is the root, with navigate / intercept / mitm / capture children
// hung off it by the components the flow crosses. All methods are nil-
// safe so instrumented code never needs tracer-enabled checks.
type Span struct {
	tr *Tracer

	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	attrs    map[string]string
	children []*Span
}

// Child starts a nested span. Child on a nil span returns nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, start: s.tr.now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr records a key=value annotation on the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End closes the span at the tracer's current time. Ending twice keeps
// the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tr.now()
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	s.mu.Unlock()
}

// Data snapshots the span subtree.
func (s *Span) Data() SpanData {
	if s == nil {
		return SpanData{}
	}
	s.mu.Lock()
	d := SpanData{Name: s.name, Start: s.start, End: s.end}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			d.Attrs[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, c.Data())
	}
	return d
}

// Tracer collects span trees — in Panoptes, one tree per page visit.
// A nil *Tracer is a valid no-op tracer: every method works and records
// nothing, so tracing can be left unwired in tests and ablations.
type Tracer struct {
	nowFn func() time.Time

	mu     sync.Mutex
	roots  []*Span
	active map[int]*Span // key (browser UID) -> current visit span
}

// NewTracer creates a tracer stamping spans with now (the virtual clock
// in the testbed, time.Now on real sockets). A nil now uses time.Now.
func NewTracer(now func() time.Time) *Tracer {
	if now == nil {
		now = time.Now
	}
	return &Tracer{nowFn: now, active: make(map[int]*Span)}
}

func (t *Tracer) now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.nowFn()
}

// Start opens a new root span (a page-visit tree).
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, name: name, start: t.now()}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// SetActive marks sp as the span components keyed by key (a browser UID
// in Panoptes) should parent their spans under. Pass nil to clear.
func (t *Tracer) SetActive(key int, sp *Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if sp == nil {
		delete(t.active, key)
	} else {
		t.active[key] = sp
	}
	t.mu.Unlock()
}

// Active returns the span registered for key, or nil.
func (t *Tracer) Active(key int) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.active[key]
}

// Roots snapshots every root span tree recorded so far, in start order.
func (t *Tracer) Roots() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	roots := append([]*Span(nil), t.roots...)
	t.mu.Unlock()
	out := make([]SpanData, len(roots))
	for i, s := range roots {
		out[i] = s.Data()
	}
	return out
}

// Reset drops all recorded trees and active registrations.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.roots = nil
	t.active = make(map[int]*Span)
	t.mu.Unlock()
}

// WriteJSONL persists one root span tree (children nested) per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, d := range t.Roots() {
		if err := enc.Encode(d); err != nil {
			return fmt.Errorf("obs: encode span %q: %w", d.Name, err)
		}
	}
	return nil
}

// ReadSpansJSONL loads span trees written by WriteJSONL.
func ReadSpansJSONL(r io.Reader) ([]SpanData, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var out []SpanData
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var d SpanData
		if err := json.Unmarshal([]byte(text), &d); err != nil {
			return nil, fmt.Errorf("obs: span line %d: %w", line, err)
		}
		out = append(out, d)
	}
	return out, sc.Err()
}

// SortedAttrs returns "k=v" pairs sorted by key, for stable rendering.
func (d SpanData) SortedAttrs() []string {
	if len(d.Attrs) == 0 {
		return nil
	}
	keys := make([]string, 0, len(d.Attrs))
	for k := range d.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = k + "=" + d.Attrs[k]
	}
	return out
}
