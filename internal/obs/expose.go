package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by
// label set, histograms expanded into cumulative _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		if err := f.writePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writePrometheus(w io.Writer) error {
	f.mu.RLock()
	help := f.help
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	series := make(map[string]any, len(f.series))
	for k, m := range f.series {
		series[k] = m
	}
	f.mu.RUnlock()
	sort.Strings(keys)

	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	for _, k := range keys {
		switch m := series[k].(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(f.name, k), formatFloat(float64(m.Value()))); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(f.name, k), formatFloat(m.Value())); err != nil {
				return err
			}
		case *Histogram:
			if err := writeHistogram(w, f.name, k, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	bounds := h.Bounds()
	counts := h.BucketCounts()
	var cum int64
	for i, b := range bounds {
		cum += counts[i]
		le := formatFloat(b)
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", joinLabels(labels, `le="`+le+`"`)), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", joinLabels(labels, `le="+Inf"`)), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(name+"_sum", labels), formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_count", labels), h.Count())
	return err
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// histogramJSON is the JSON exposition of one histogram series.
type histogramJSON struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets map[string]int64 `json:"buckets"` // upper bound -> cumulative count
}

// WriteJSON renders the registry as a single expvar-style JSON object:
// one key per series ("name" or "name{labels}"), histogram series as
// {count, sum, buckets}.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()

	out := make(map[string]any)
	for _, f := range fams {
		f.mu.RLock()
		for k, m := range f.series {
			key := seriesName(f.name, k)
			switch v := m.(type) {
			case *Counter:
				out[key] = v.Value()
			case *Gauge:
				out[key] = v.Value()
			case *Histogram:
				hj := histogramJSON{Count: v.Count(), Sum: v.Sum(), Buckets: map[string]int64{}}
				bounds := v.Bounds()
				counts := v.BucketCounts()
				var cum int64
				for i, b := range bounds {
					cum += counts[i]
					hj.Buckets[formatFloat(b)] = cum
				}
				hj.Buckets["+Inf"] = cum + counts[len(counts)-1]
				out[key] = hj
			}
		}
		f.mu.RUnlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Handler serves the Prometheus text exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// JSONHandler serves the expvar-style JSON exposition.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w)
	})
}

// NewMux returns the observability HTTP mux served at -metrics-addr:
// /metrics (Prometheus text), /debug/vars (expvar-style JSON) and the
// standard net/http/pprof endpoints under /debug/pprof/.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", r.JSONHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		io.WriteString(w, strings.Join([]string{
			"panoptes observability endpoints:",
			"  /metrics      Prometheus text exposition",
			"  /debug/vars   expvar-style JSON",
			"  /debug/pprof  runtime profiles",
			"",
		}, "\n"))
	})
	return mux
}

// ServeMetrics starts the observability HTTP server on addr in a
// goroutine and returns immediately. Errors (e.g. the address being in
// use) are reported through errf, which may be nil.
func ServeMetrics(addr string, r *Registry, errf func(error)) {
	srv := &http.Server{Addr: addr, Handler: NewMux(r)}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			if errf != nil {
				errf(err)
			}
		}
	}()
}
