package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable test clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestSpanTreeNesting(t *testing.T) {
	clk := &fakeClock{t: time.Date(2023, 5, 12, 9, 0, 0, 0, time.UTC)}
	tr := NewTracer(clk.now)

	visit := tr.Start("visit")
	visit.SetAttr("browser", "Chrome")
	nav := visit.Child("navigate")
	clk.advance(2 * time.Second)
	nav.End()
	mitm := visit.Child("mitm.exchange")
	mitm.SetAttr("host", "example.com")
	inner := mitm.Child("forward")
	clk.advance(time.Second)
	inner.End()
	mitm.End()
	visit.End()

	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %d", len(roots))
	}
	root := roots[0]
	if root.Name != "visit" || root.Attrs["browser"] != "Chrome" {
		t.Fatalf("root = %+v", root)
	}
	if len(root.Children) != 2 {
		t.Fatalf("children = %d", len(root.Children))
	}
	if root.Children[0].Name != "navigate" || root.Children[0].Duration() != 2*time.Second {
		t.Fatalf("navigate span = %+v", root.Children[0])
	}
	if len(root.Children[1].Children) != 1 || root.Children[1].Children[0].Name != "forward" {
		t.Fatalf("nested span missing: %+v", root.Children[1])
	}
	if root.Duration() != 3*time.Second {
		t.Fatalf("visit duration = %v", root.Duration())
	}
}

func TestTracerActiveRegistry(t *testing.T) {
	tr := NewTracer(nil)
	sp := tr.Start("visit")
	tr.SetActive(10101, sp)
	if got := tr.Active(10101); got != sp {
		t.Fatal("Active did not return the registered span")
	}
	if got := tr.Active(99); got != nil {
		t.Fatal("unknown key should be nil")
	}
	tr.SetActive(10101, nil)
	if got := tr.Active(10101); got != nil {
		t.Fatal("cleared key should be nil")
	}
}

// TestNilTracerSafe checks every instrumentation call is a no-op on a
// nil tracer/span, so components can be left unwired.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil tracer Start should return nil span")
	}
	sp.SetAttr("k", "v")
	child := sp.Child("y")
	child.End()
	sp.End()
	tr.SetActive(1, sp)
	if tr.Active(1) != nil || tr.Roots() != nil {
		t.Fatal("nil tracer should record nothing")
	}
}

func TestSpanJSONLRoundTrip(t *testing.T) {
	clk := &fakeClock{t: time.Date(2023, 5, 12, 9, 0, 0, 0, time.UTC)}
	tr := NewTracer(clk.now)
	for i := 0; i < 3; i++ {
		v := tr.Start("visit")
		v.SetAttr("url", "https://example.com/")
		c := v.Child("navigate")
		clk.advance(time.Second)
		c.End()
		v.End()
	}

	var sb strings.Builder
	if err := tr.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "\n"); got != 3 {
		t.Fatalf("lines = %d, want 3", got)
	}

	back, err := ReadSpansJSONL(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("round-trip trees = %d", len(back))
	}
	for i, d := range back {
		if d.Name != "visit" || d.Attrs["url"] != "https://example.com/" {
			t.Fatalf("tree %d = %+v", i, d)
		}
		if len(d.Children) != 1 || d.Children[0].Name != "navigate" {
			t.Fatalf("tree %d children = %+v", i, d.Children)
		}
		if d.Children[0].Duration() != time.Second {
			t.Fatalf("tree %d navigate duration = %v", i, d.Children[0].Duration())
		}
	}
}

// TestConcurrentSpans attaches children to one visit span from many
// goroutines, as proxy connection handlers do.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(nil)
	visit := tr.Start("visit")
	tr.SetActive(1, visit)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.Active(1).Child("mitm.exchange")
				sp.SetAttr("n", "1")
				sp.End()
			}
		}()
	}
	wg.Wait()
	visit.End()
	if got := len(tr.Roots()[0].Children); got != 400 {
		t.Fatalf("children = %d, want 400", got)
	}
}

func TestSortedAttrs(t *testing.T) {
	d := SpanData{Attrs: map[string]string{"b": "2", "a": "1"}}
	got := d.SortedAttrs()
	if len(got) != 2 || got[0] != "a=1" || got[1] != "b=2" {
		t.Fatalf("SortedAttrs = %v", got)
	}
}
