// Population campaigns: instead of driving the 15 browser emulators
// through the proxy, the world hands its data plane (capture DB, commit
// tap, streaming analyses, virtual clock, fault plan) to the popsim
// event engine, which synthesizes the traffic of very large user
// populations directly into it. The analyses cannot tell the planes
// apart — same flow shapes, same origins, same attributes — which is
// the point: the paper's figures computed over a million users.
package core

import (
	"fmt"
	"time"

	"panoptes/internal/popsim"
	"panoptes/internal/profiles"
)

// PopulationConfig sizes a population campaign on an assembled world.
type PopulationConfig struct {
	Population int
	Duration   time.Duration
	Seed       int64

	// AdmitPerSec / AdmitBurst tune session admission (0 = popsim
	// defaults). Parallelism fans out flow synthesis; results are
	// identical at any setting.
	AdmitPerSec float64
	AdmitBurst  int
	Parallelism int
	// RampUp spreads user arrivals (0 = Duration).
	RampUp time.Duration
	// SampleEvery / SampleCap tune VisitURL head-sampling (0 = defaults).
	SampleEvery int
	SampleCap   int
	// BinSeconds bins the population phone-home curve (0 = 10 s).
	BinSeconds int
	// MeanSessionGap is the base inter-session pause (0 = 2 m).
	MeanSessionGap time.Duration
}

// PopulationCurveName is the pipeline registration of the population
// phone-home timeline analyzer.
const PopulationCurveName = "population-curve"

// NewPopulation builds a population engine wired to the world's data
// plane and registers its phone-home curve on the commit tap. The
// caller drives it with Run or RunUntil; results land in w.Pipeline
// and w.Suite like any campaign's. Population runs should assemble the
// world with Retain: capture.RetainNone so resident memory stays
// bounded by analyzer state, not traffic volume.
func (w *World) NewPopulation(cfg PopulationConfig) (*popsim.Engine, error) {
	// Fleet in suite order (the Browsers map is unordered).
	var fleet []*profiles.Profile
	uids := make(map[string]int)
	for _, name := range w.Suite.Names() {
		p := profiles.ByName(name)
		if p == nil {
			return nil, fmt.Errorf("core: population: unknown profile %q", name)
		}
		fleet = append(fleet, p)
		if b, ok := w.Browsers[name]; ok {
			uids[name] = b.UID()
		}
	}
	e, err := popsim.New(popsim.Config{
		Population:     cfg.Population,
		Duration:       cfg.Duration,
		Seed:           cfg.Seed,
		Profiles:       fleet,
		Sites:          w.Sites,
		Hostlist:       w.Hostlist,
		DB:             w.DB,
		Clock:          w.Clock,
		Faults:         w.Faults,
		BrowserUIDs:    uids,
		DeviceIP:       w.Device.IP.String(),
		Rooted:         w.Device.Rooted(),
		AdmitPerSec:    cfg.AdmitPerSec,
		AdmitBurst:     cfg.AdmitBurst,
		Parallelism:    cfg.Parallelism,
		RampUp:         cfg.RampUp,
		SampleEvery:    cfg.SampleEvery,
		SampleCap:      cfg.SampleCap,
		BinSeconds:     cfg.BinSeconds,
		MeanSessionGap: cfg.MeanSessionGap,
	})
	if err != nil {
		return nil, err
	}
	w.Pipeline.Register(PopulationCurveName, e.Curve())
	return e, nil
}

// RunPopulation is the one-call form: build the engine, simulate the
// full duration, and return it for stats and curve access.
func (w *World) RunPopulation(cfg PopulationConfig) (*popsim.Engine, error) {
	e, err := w.NewPopulation(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.Run(); err != nil {
		return nil, err
	}
	return e, nil
}
