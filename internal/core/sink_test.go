package core

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"panoptes/internal/faultsim"
	"panoptes/internal/profiles"
	"panoptes/internal/sink"
)

// sinkWorld assembles a small testbed with an export plane wired on the
// commit tap.
func sinkWorld(t *testing.T, sites int, sc sink.Config, pubs []sink.Publisher, names ...string) *World {
	t.Helper()
	var profs []*profiles.Profile
	for _, n := range names {
		p := profiles.ByName(n)
		if p == nil {
			t.Fatalf("no profile %q", n)
		}
		profs = append(profs, p)
	}
	w, err := NewWorld(WorldConfig{Sites: sites, Profiles: profs, Sinks: pubs, SinkConfig: sc})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

func retainedIDs(w *World) map[int64]bool {
	ids := make(map[int64]bool)
	for _, f := range w.DB.Engine.All() {
		ids[f.ID] = true
	}
	for _, f := range w.DB.Native.All() {
		ids[f.ID] = true
	}
	return ids
}

// sinkAnalyses snapshots the fault-insensitive analysis surface for
// byte-comparison across runs (flow IDs are process-global tickets, so
// leak findings are compared with theirs zeroed).
func sinkAnalyses(t *testing.T, w *World) []byte {
	t.Helper()
	leaks := w.Suite.LeakNative.Findings()
	for i := range leaks {
		leaks[i].FlowID = 0
	}
	blob, err := json.Marshal(map[string]any{
		"fig2":   w.Suite.Fig2.Rows(),
		"matrix": w.Suite.PII.Matrix(),
		"leaks":  leaks,
		"dns":    w.Suite.DNS.Usage(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestSinkQuarantineInvariant is the export plane's load-bearing
// acceptance test: under the keystone fault plan (retries, retractions
// and all), the set of flows reaching a sink is exactly the committed
// history the retained stores hold — no retracted attempt's flow ever
// leaks — and the analyses match a fault-free run with the same sinks
// wired, byte for byte.
func TestSinkQuarantineInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("two multi-browser crawls")
	}
	run := func(faulty bool) (*World, *sink.MemorySink) {
		mem := sink.NewMemorySink()
		// Block policy + small batches: nothing is shed, so the exported
		// set must be exact.
		w := sinkWorld(t, 3, sink.Config{BatchSize: 4, Policy: sink.PolicyBlock}, []sink.Publisher{mem}, faultBrowsers...)
		if faulty {
			w.InstallFaults(faultsim.New(keystonePlan()))
		}
		res, err := w.RunCampaign(CampaignConfig{Parallelism: 4, NavigateTimeout: 20 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors != 0 {
			t.Fatalf("faulty=%v: %d visits failed terminally", faulty, res.Errors)
		}
		if faulty && res.Retries == 0 {
			t.Fatal("fault plan injected nothing: quarantine path never exercised")
		}
		if err := w.Exporter.PublishDeltas(w.Pipeline.Results()); err != nil {
			t.Fatal(err)
		}
		w.Exporter.Drain()
		return w, mem
	}

	wFaulty, memFaulty := run(true)
	exported := memFaulty.FlowIDs()
	retained := retainedIDs(wFaulty)
	for id := range exported {
		if !retained[id] {
			t.Errorf("sink holds flow %d that no retained store committed (retracted attempt leaked)", id)
		}
	}
	for id := range retained {
		if !exported[id] {
			t.Errorf("committed flow %d never reached the sink", id)
		}
	}
	if st := wFaulty.Exporter.Stats()[0]; st.Dropped != 0 {
		t.Fatalf("block policy shed %d events; the set comparison above is void", st.Dropped)
	}
	deltas := memFaulty.Deltas()
	for _, name := range wFaulty.Pipeline.Names() {
		if _, ok := deltas[name]; !ok {
			t.Errorf("analyzer %q delta missing from the sink", name)
		}
	}

	wClean, _ := run(false)
	if got, want := sinkAnalyses(t, wFaulty), sinkAnalyses(t, wClean); string(got) != string(want) {
		t.Errorf("faulty-run analyses diverge from the fault-free run with sinks wired:\ngot  %s\nwant %s", got, want)
	}
}

// TestSinkBreakerIndependence drives a permanently failing HTTP sink
// next to a healthy file sink through a real crawl: the HTTP breaker
// must open, and the file sink must still receive every committed flow.
func TestSinkBreakerIndependence(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "index down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	httpSink := &sink.HTTPSink{URL: srv.URL, MaxRetries: 1, Sleep: func(time.Duration) {}}
	dir := t.TempDir()
	fileSink := sink.NewFileSink(dir)

	w := sinkWorld(t, 2,
		sink.Config{BatchSize: 4, Policy: sink.PolicyBlock, BreakerThreshold: 2},
		[]sink.Publisher{httpSink, fileSink}, "Chrome")
	res, err := w.RunCampaign(CampaignConfig{Parallelism: 1, NavigateTimeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d visits failed", res.Errors)
	}
	w.Exporter.Drain()
	retained := retainedIDs(w)
	var httpStats, fileStats sink.SinkStats
	for _, st := range w.Exporter.Stats() {
		switch st.Name {
		case "http":
			httpStats = st
		case "file":
			fileStats = st
		}
	}
	if httpStats.Published != 0 {
		t.Fatalf("the 500-only endpoint accepted %d events", httpStats.Published)
	}
	if httpStats.BreakerOpens == 0 {
		t.Fatal("failing HTTP sink's breaker never opened")
	}
	if fileStats.BreakerOpens != 0 || fileStats.Dropped != 0 {
		t.Fatalf("healthy file sink degraded alongside the failing peer: %+v", fileStats)
	}
	if fileStats.Published != int64(len(retained)) {
		t.Fatalf("file sink published %d events, want every committed flow (%d)", fileStats.Published, len(retained))
	}

	// Close seals the last segment; every committed flow must round-trip
	// out of the gzip JSONL segments.
	w.Close()
	got := make(map[int64]bool)
	for _, p := range fileSink.SegmentPaths() {
		for _, env := range readSinkSegment(t, p) {
			if env.Type == sink.TypeFlow {
				got[env.Flow.ID] = true
			}
		}
	}
	if len(got) != len(retained) {
		t.Fatalf("segments hold %d distinct flows, want %d", len(got), len(retained))
	}
	for id := range retained {
		if !got[id] {
			t.Errorf("committed flow %d missing from the file segments", id)
		}
	}
}

func readSinkSegment(t *testing.T, path string) []sink.Envelope {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	defer zr.Close()
	var out []sink.Envelope
	sc := bufio.NewScanner(zr)
	for sc.Scan() {
		var env sink.Envelope
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out = append(out, env)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSinkResumeNoDoublePublish checkpoints a campaign mid-flight with
// an export plane attached, resumes it in a fresh world with its own
// sink, and asserts the two export streams partition the final
// committed history: nothing lost, nothing published twice.
func TestSinkResumeNoDoublePublish(t *testing.T) {
	if testing.Short() {
		t.Skip("two crawls with checkpoint round-trip")
	}
	sc := sink.Config{BatchSize: 4, Policy: sink.PolicyBlock}
	mem1 := sink.NewMemorySink()
	w1 := sinkWorld(t, 3, sc, []sink.Publisher{mem1}, "Chrome", "Brave")
	r1, err := w1.RunCampaign(CampaignConfig{
		Parallelism: 1, NavigateTimeout: 20 * time.Second,
		StopAfterVisits: 4, Checkpoint: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Stopped || r1.Checkpoint == nil {
		t.Fatalf("campaign did not stop on budget: stopped=%v checkpoint=%v", r1.Stopped, r1.Checkpoint != nil)
	}
	// The operator drains before persisting the checkpoint, so every
	// checkpointed flow has left the process.
	w1.Exporter.Drain()
	data, err := json.Marshal(r1.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	cp := &Checkpoint{}
	if err := json.Unmarshal(data, cp); err != nil {
		t.Fatal(err)
	}
	ids1 := mem1.FlowIDs()
	if len(ids1) == 0 {
		t.Fatal("first leg exported nothing; the dedupe path is untested")
	}
	if got, want := len(ids1), len(cp.Engine)+len(cp.Native); got != want {
		t.Fatalf("drained first leg exported %d flows, checkpoint holds %d", got, want)
	}

	mem2 := sink.NewMemorySink()
	w2 := sinkWorld(t, 3, sc, []sink.Publisher{mem2}, "Chrome", "Brave")
	r2, err := w2.RunCampaign(CampaignConfig{
		Parallelism: 1, NavigateTimeout: 20 * time.Second, Resume: cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Errors != 0 {
		t.Fatalf("resumed campaign had %d errors", r2.Errors)
	}
	w2.Exporter.Drain()
	ids2 := mem2.FlowIDs()
	for id := range ids2 {
		if ids1[id] {
			t.Errorf("flow %d published by both legs (checkpoint replay was not deduped)", id)
		}
	}
	if len(ids2) == 0 {
		t.Fatal("second leg exported nothing; resume produced no new flows")
	}
	final := retainedIDs(w2)
	for id := range final {
		if !ids1[id] && !ids2[id] {
			t.Errorf("committed flow %d reached neither export leg", id)
		}
	}
	for id := range ids2 {
		if !final[id] {
			t.Errorf("second leg exported flow %d the final stores never committed", id)
		}
	}
}
