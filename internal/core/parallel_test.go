package core

import (
	"reflect"
	"testing"

	"panoptes/internal/analysis"
	"panoptes/internal/leak"
	"panoptes/internal/pii"
)

// campaignAnalyses runs a full-fleet crawl at the given parallelism in a
// fresh world and returns the analysis outputs the determinism contract
// covers: Figure 2 rows, the Table 2 PII matrix, the history-leak
// findings, and the visit records themselves.
func campaignAnalyses(t *testing.T, parallelism int) ([]analysis.Fig2Row, pii.Matrix, []leak.Finding, []VisitRecord) {
	t.Helper()
	w := smallWorld(t, 3)
	res, err := w.RunCampaign(CampaignConfig{Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}

	var browsers []string
	for _, v := range res.Visits {
		if len(browsers) == 0 || browsers[len(browsers)-1] != v.Browser {
			browsers = append(browsers, v.Browser)
		}
	}

	fig2 := analysis.Fig2(w.DB, browsers)

	matrix, _ := analysis.Table2(w.DB.Native, browsers)

	// Flow IDs are allocated from a process-global counter as requests
	// race through the engine's concurrent subresource fetcher, so their
	// values are scheduling accidents even in a sequential crawl. Zero
	// them: the determinism contract is about what leaked where, not
	// which ticket number the flow drew.
	leaks := analysis.HistoryLeaks(w.DB.Native)
	for i := range leaks {
		leaks[i].FlowID = 0
	}
	return fig2, matrix, leaks, res.Visits
}

// TestCampaignParallelismDeterminism is the scheduler's acceptance test:
// a Parallelism-8 crawl must produce byte-identical analysis output to
// the sequential Parallelism-1 crawl of an identical world.
func TestCampaignParallelismDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full-fleet crawls")
	}
	fig2Seq, t2Seq, leaksSeq, visitsSeq := campaignAnalyses(t, 1)
	fig2Par, t2Par, leaksPar, visitsPar := campaignAnalyses(t, 8)

	if !reflect.DeepEqual(fig2Seq, fig2Par) {
		t.Errorf("Fig2 diverges between parallelism 1 and 8:\nseq: %+v\npar: %+v", fig2Seq, fig2Par)
	}
	if !reflect.DeepEqual(t2Seq, t2Par) {
		t.Errorf("Table2 matrix diverges between parallelism 1 and 8:\nseq: %+v\npar: %+v", t2Seq, t2Par)
	}
	if !reflect.DeepEqual(leaksSeq, leaksPar) {
		t.Errorf("HistoryLeaks diverge between parallelism 1 and 8:\nseq: %+v\npar: %+v", leaksSeq, leaksPar)
	}
	if !reflect.DeepEqual(visitsSeq, visitsPar) {
		t.Errorf("visit records diverge between parallelism 1 and 8:\nseq: %+v\npar: %+v", visitsSeq, visitsPar)
	}
}

// TestCampaignParallelMergesProfileOrder checks the merged visit slice
// keeps profile order with each browser's sites in visit order, however
// the workers interleaved.
func TestCampaignParallelMergesProfileOrder(t *testing.T) {
	w := smallWorld(t, 2, "Chrome", "Brave", "Edge", "Opera")
	res, err := w.RunCampaign(CampaignConfig{
		Browsers:    []string{"Opera", "Chrome", "Edge", "Brave"},
		Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, v := range res.Visits {
		got = append(got, v.Browser+"|"+v.URL)
	}
	var want []string
	for _, b := range []string{"Opera", "Chrome", "Edge", "Brave"} {
		for _, s := range w.Sites {
			want = append(want, b+"|"+s.URL())
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged visit order:\ngot  %v\nwant %v", got, want)
	}
}

// TestCampaignUnknownBrowserFailsBeforeCrawl keeps the sequential error
// contract: an unknown name anywhere in the list fails upfront, before
// any browser is crawled.
func TestCampaignUnknownBrowserFailsBeforeCrawl(t *testing.T) {
	w := smallWorld(t, 1, "Chrome")
	res, err := w.RunCampaign(CampaignConfig{
		Browsers:    []string{"Chrome", "Netscape"},
		Parallelism: 2,
	})
	if err == nil {
		t.Fatal("campaign with unknown browser succeeded")
	}
	if res != nil {
		t.Fatalf("result = %+v, want nil (validation precedes crawling)", res)
	}
	if got := w.DB.Engine.Len() + w.DB.Native.Len(); got != 0 {
		t.Fatalf("%d flows captured despite upfront validation failure", got)
	}
}
