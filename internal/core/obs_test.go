package core

import (
	"strings"
	"testing"

	"panoptes/internal/obs"
	"panoptes/internal/report"
)

// TestObservabilityFamilies runs a small crawl and checks the acceptance
// criterion for the obs subsystem: the default registry exposes at least
// 15 distinct metric families spanning mitm, capture, core, dnssim and
// netsim, and the campaign summary carries the cert-cache hit rate and
// visit-latency percentiles.
func TestObservabilityFamilies(t *testing.T) {
	w := smallWorld(t, 4, "Chrome", "DuckDuckGo")
	if _, err := w.RunCampaign(CampaignConfig{}); err != nil {
		t.Fatal(err)
	}

	fams := obs.Default.Families()
	if len(fams) < 15 {
		t.Fatalf("metric families = %d, want >= 15: %v", len(fams), fams)
	}
	prefixes := map[string]bool{}
	for _, f := range fams {
		prefixes[strings.SplitN(f, "_", 2)[0]] = true
	}
	for _, sub := range []string{"mitm", "capture", "core", "dns", "netsim"} {
		if !prefixes[sub] {
			t.Fatalf("no metric family for subsystem %q (families: %v)", sub, fams)
		}
	}

	// The crawl must actually have moved the hot-path counters.
	for _, name := range []string{
		"mitm_requests_total", "mitm_handshakes_total", "mitm_cert_cache_total",
		"capture_flows_total", "core_visits_total", "netsim_conns_opened_total",
	} {
		if obs.Default.Sum(name) == 0 {
			t.Errorf("family %s is zero after a crawl", name)
		}
	}
	if h := obs.Default.Histogram("core_visit_duration_seconds", nil); h.Count() == 0 {
		t.Error("visit latency histogram empty after a crawl")
	}

	// The exposition carries every family.
	var sb strings.Builder
	if err := obs.Default.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, f := range fams {
		if !strings.Contains(sb.String(), "# TYPE "+f+" ") {
			t.Errorf("exposition missing family %s", f)
		}
	}

	// The end-of-campaign summary prints the headline numbers.
	var sum strings.Builder
	report.CampaignObsSummary(&sum, obs.Default)
	for _, want := range []string{"cert-cache hit rate", "per-visit latency", "p50", "p95"} {
		if !strings.Contains(sum.String(), want) {
			t.Errorf("campaign summary missing %q:\n%s", want, sum.String())
		}
	}
}

// TestVisitSpanTrees checks one span tree is recorded per visit, with
// the navigate/settle phases and nested mitm exchange spans.
func TestVisitSpanTrees(t *testing.T) {
	w := smallWorld(t, 3, "Chrome")
	if _, err := w.RunCampaign(CampaignConfig{}); err != nil {
		t.Fatal(err)
	}
	trees := w.Trace.Roots()
	if len(trees) != 3 {
		t.Fatalf("span trees = %d, want 3 (one per visit)", len(trees))
	}
	for _, root := range trees {
		if root.Name != "visit" || root.Attrs["browser"] != "Chrome" {
			t.Fatalf("unexpected root: %+v", root)
		}
		var names []string
		for _, c := range root.Children {
			names = append(names, c.Name)
		}
		joined := strings.Join(names, " ")
		for _, want := range []string{"navigate", "settle", "mitm.exchange"} {
			if !strings.Contains(joined, want) {
				t.Fatalf("visit children %v missing %q", names, want)
			}
		}
		if root.Duration() <= 0 {
			t.Fatal("visit span has no duration")
		}
	}

	// The trees survive a JSONL round-trip.
	var sb strings.Builder
	if err := w.Trace.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadSpansJSONL(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(trees) {
		t.Fatalf("round-trip trees = %d, want %d", len(back), len(trees))
	}

	// And render as a waterfall without panicking.
	var wf strings.Builder
	report.Waterfall(&wf, back[:1])
	if !strings.Contains(wf.String(), "navigate") || !strings.Contains(wf.String(), "█") {
		t.Fatalf("waterfall did not render:\n%s", wf.String())
	}
}
