// Package core is the Panoptes framework (the paper's contribution): it
// assembles the testbed — virtual internet, vendor backends, generated
// web, Android device, transparent MITM proxy with the taint-splitting
// addon, Appium automation, and the 15 browser emulators — and runs the
// paper's campaigns: instrumented crawls (CDP or Frida), incognito and
// sensitive-category variants, and the ten-minute idle experiment.
package core

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"panoptes/internal/analysis"
	"panoptes/internal/appium"
	"panoptes/internal/browser"
	"panoptes/internal/capture"
	"panoptes/internal/device"
	"panoptes/internal/faultsim"
	"panoptes/internal/frida"
	"panoptes/internal/geoip"
	"panoptes/internal/hostlist"
	"panoptes/internal/mitm"
	"panoptes/internal/netsim"
	"panoptes/internal/obs"
	"panoptes/internal/pipeline"
	"panoptes/internal/pki"
	"panoptes/internal/profiles"
	"panoptes/internal/sink"
	"panoptes/internal/taint"
	"panoptes/internal/vclock"
	"panoptes/internal/vendorsim"
	"panoptes/internal/websim"
)

// ProxyAddr is where the transparent proxy listens on the device.
const ProxyAddr = "192.168.1.100:8080"

// WorldConfig sizes the testbed.
type WorldConfig struct {
	// Sites is the crawl-list size (half Tranco, half Curlie-sensitive).
	// The paper uses 1000; the default is 200 for tractable runs.
	Sites int
	// Profiles selects the browsers; nil means all 15.
	Profiles []*profiles.Profile
	// DisableCertCache / DisableKeepAlive feed the proxy ablations.
	DisableCertCache bool
	DisableKeepAlive bool
	// DisableTLSResume turns off TLS session resumption everywhere:
	// the proxy stops issuing session tickets and caching upstream
	// sessions, and browsers drop their client session caches. Every
	// connection then pays a full handshake — the cold path the
	// determinism suite compares resumed campaigns against.
	DisableTLSResume bool
	// UpstreamRTT models wall-clock wide-area latency on every proxied
	// exchange (see mitm.Config.UpstreamRTT). Zero — the default, and
	// what every test uses — keeps the instant in-memory network.
	UpstreamRTT time.Duration
	// Retain selects which capture databases keep flows resident in
	// memory (capture.RetainAll, the default, RetainNative or
	// RetainNone). With streaming analysis on the commit tap, dropping
	// flows bounds resident memory; checkpointing and post-hoc exports
	// need full retention.
	Retain capture.RetainMode
	// Sinks, when non-empty, wires an export plane (internal/sink) next
	// to the analysis pipeline on the commit tap: committed flows (and
	// end-of-campaign analyzer deltas) batch and fan out to these
	// backends under the same attempt quarantine the analyses see.
	Sinks []sink.Publisher
	// SinkConfig sizes the exporter (batching, queue bound, policy,
	// per-sink breakers). Its Now is overridden with the world's virtual
	// clock.
	SinkConfig sink.Config
	// Transports lists the data-plane protocols the capture plane
	// dissects (capture.TransportH1/H2/WS/DoH). Nil enables all; h1 is
	// always on. Browsers skip native h2 and WebSocket behaviours for
	// disabled transports, mirroring the proxy.
	Transports []string
	// DisableH3Block leaves UDP/443 open (the -block-h3=false ablation):
	// QUIC-attempting browsers reach h3-advertising origins over UDP and
	// that traffic bypasses interception entirely.
	DisableH3Block bool
}

// World is the fully-assembled testbed.
type World struct {
	Clock  *vclock.Clock
	Inet   *netsim.Internet
	Device *device.Device

	PublicCA *pki.CA
	MitmCA   *pki.CA

	Vendors *vendorsim.Vendors
	Sites   []*websim.Site
	Hosting *websim.Hosting

	Proxy    *mitm.Proxy
	DB       *capture.DB
	Visits   *capture.VisitContext
	Splitter *taint.SplitterAddon
	Token    string
	// Pipeline is the commit tap on DB: every committed flow streams
	// through the registered analyzers; quarantined attempts are
	// retracted. Suite holds the standard analyzers (figures, Table 2,
	// leak scans, DNS, trackable IDs, Listing 1) registered on it.
	Pipeline *pipeline.Pipeline
	Suite    *analysis.Suite
	// Exporter is the export plane riding the commit tap beside the
	// pipeline (nil when WorldConfig.Sinks is empty). Close stops it.
	Exporter *sink.Exporter
	// Trace collects one span tree per page visit (navigate → intercept →
	// mitm → capture), stamped with the virtual clock.
	Trace *obs.Tracer

	Hostlist *hostlist.List
	FridaDev *frida.Device

	// Faults is the installed fault injector (nil = fault-free). Install
	// with InstallFaults so every substrate layer sees the same plan.
	Faults *faultsim.Injector

	Browsers map[string]*browser.Browser // by profile name

	AppiumClient *appium.Client

	proxyListener  *netsim.Listener
	appiumListener *netsim.Listener
	appiumHTTP     *http.Server
}

// appAdapter bridges browser.Browser to appium.App.
type appAdapter struct{ b *browser.Browser }

func (a appAdapter) Launch() error { return a.b.Launch() }
func (a appAdapter) Stop()         { a.b.Stop() }
func (a appAdapter) Reset() error  { return a.b.Reset() }
func (a appAdapter) Running() bool { return a.b.Running() }
func (a appAdapter) UITap(id string) error {
	return a.b.UITap(id)
}
func (a appAdapter) UIElements() []appium.UIElement {
	els := a.b.UIElements()
	out := make([]appium.UIElement, len(els))
	for i, e := range els {
		out[i] = appium.UIElement{ID: e.ID, Text: e.Text, Class: e.Class, Enabled: e.Enabled}
	}
	return out
}

// NewWorld assembles the testbed.
func NewWorld(cfg WorldConfig) (*World, error) {
	if cfg.Sites <= 0 {
		cfg.Sites = 200
	}
	if cfg.Profiles == nil {
		cfg.Profiles = profiles.All()
	}

	clock := vclock.New()
	inet := netsim.New()
	dev, err := device.New(clock, inet)
	if err != nil {
		return nil, fmt.Errorf("core: device: %w", err)
	}
	dev.DisableH3Block = cfg.DisableH3Block

	publicCA, err := pki.NewCA("Panoptes Public Web Root", clock.Now)
	if err != nil {
		return nil, fmt.Errorf("core: public CA: %w", err)
	}
	mitmCA, err := pki.NewCA("mitmproxy (Panoptes)", clock.Now)
	if err != nil {
		return nil, fmt.Errorf("core: mitm CA: %w", err)
	}
	// The testbed installs both roots in the device trust store: the
	// public root is what Android ships; the mitm root is §2.2's step.
	dev.InstallCA(publicCA.Cert)
	dev.InstallCA(mitmCA.Cert)

	vendors, err := vendorsim.Setup(inet, publicCA, clock.Now)
	if err != nil {
		return nil, fmt.Errorf("core: vendors: %w", err)
	}
	sites := websim.Dataset(cfg.Sites)
	hosting, err := websim.Host(inet, publicCA, sites)
	if err != nil {
		return nil, fmt.Errorf("core: hosting: %w", err)
	}

	w := &World{
		Clock: clock, Inet: inet, Device: dev,
		PublicCA: publicCA, MitmCA: mitmCA,
		Vendors: vendors, Sites: sites, Hosting: hosting,
		DB: capture.NewDB(), Visits: capture.NewVisitContext(),
		Hostlist: hostlist.Bundled(),
		FridaDev: frida.NewDevice(),
		Browsers: make(map[string]*browser.Browser),
	}
	w.Token = taint.NewToken()
	w.Splitter = taint.NewSplitter(w.Token, w.DB, w.Visits)
	w.Trace = obs.NewTracer(clock.Now)

	// Streaming analysis plane: the suite's analyzers ride the commit
	// tap, folding every flow in as it is stored. Wired before the proxy
	// goroutines start, which publishes the tap safely.
	names := make([]string, len(cfg.Profiles))
	for i, p := range cfg.Profiles {
		names[i] = p.Name
	}
	w.Pipeline = pipeline.New()
	w.Suite = analysis.NewSuite(w.Hostlist, names)
	w.Suite.Register(w.Pipeline)
	if len(cfg.Sinks) > 0 {
		sc := cfg.SinkConfig
		sc.Now = clock.Now
		w.Exporter = sink.NewExporter(sc, cfg.Sinks...)
		w.DB.SetTap(capture.Taps{w.Pipeline, w.Exporter})
	} else {
		w.DB.SetTap(w.Pipeline)
	}
	if err := w.DB.SetRetention(cfg.Retain); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// The proxy container runs under its own UID: its upstream dials are
	// not re-diverted by the per-browser rules.
	proxyPkg := dev.Install("org.debian.mitmproxy")
	proxy, err := mitm.New(mitm.Config{
		CA:            mitmCA,
		UpstreamRoots: publicCA.TLSClientTemplate(clock.Now),
		Dial: func(ctx context.Context, addr string) (net.Conn, error) {
			return dev.DialContext(ctx, proxyPkg.UID, addr)
		},
		Now:              clock.Now,
		DisableCertCache: cfg.DisableCertCache,
		DisableKeepAlive: cfg.DisableKeepAlive,
		DisableTLSResume: cfg.DisableTLSResume,
		UpstreamRTT:      cfg.UpstreamRTT,
		Trace:            w.Trace,
		Transports:       cfg.Transports,
	})
	if err != nil {
		return nil, fmt.Errorf("core: proxy: %w", err)
	}
	proxy.Use(w.Splitter)
	w.Proxy = proxy

	pl, err := inet.ListenIP(dev.IP, 8080)
	if err != nil {
		return nil, fmt.Errorf("core: proxy listener: %w", err)
	}
	w.proxyListener = pl
	go proxy.Serve(pl)

	// Appium server on the control network.
	appiumSrv := appium.NewServer()
	al, err := inet.ListenIP(net.IPv4(10, 222, 255, 1), 4723)
	if err != nil {
		return nil, fmt.Errorf("core: appium listener: %w", err)
	}
	w.appiumListener = al
	w.appiumHTTP = &http.Server{Handler: appiumSrv.Handler()}
	go w.appiumHTTP.Serve(al)
	w.AppiumClient = appium.NewClient("http://10.222.255.1:4723",
		func(ctx context.Context, addr string) (net.Conn, error) {
			return inet.Dial(ctx, addr)
		})

	// Build the browsers, each with its own control address for CDP.
	for i, p := range cfg.Profiles {
		b := browser.New(p, browser.Options{
			Device:           dev,
			Clock:            clock,
			PublicRoots:      publicCA.Pool(),
			FridaDevice:      w.FridaDev,
			ControlIP:        net.IPv4(10, 222, 0, byte(i+1)),
			ControlPort:      9222,
			DisableTLSResume: cfg.DisableTLSResume,
			Transports:       cfg.Transports,
		})
		w.Browsers[p.Name] = b
		w.Visits.SetBrowser(b.UID(), p.Name)
		appiumSrv.RegisterApp(p.Package, appAdapter{b})
	}
	return w, nil
}

// InstallFaults wires a fault injector through every substrate layer:
// app-layer dials (device), raw lookups/dials (netsim chaos hook), the
// MITM proxy's handshake and exchange paths, the vendor DoH resolvers'
// SERVFAIL hook, and each browser's navigate/CDP entry points.
// RunCampaign arms the injector per navigation attempt. Passing nil
// uninstalls everything.
func (w *World) InstallFaults(inj *faultsim.Injector) {
	w.Faults = inj
	if inj == nil {
		w.Device.SetDialFault(nil)
		w.Inet.SetFaultHook(nil)
	} else {
		w.Device.SetDialFault(inj.DialFault)
		w.Inet.SetFaultHook(inj.NetHook())
	}
	w.Proxy.SetFaults(inj)
	if w.Exporter != nil {
		if inj == nil {
			w.Exporter.SetFaultHook(nil)
		} else {
			w.Exporter.SetFaultHook(inj.SinkFault)
		}
	}
	w.Vendors.DoHCloudflare.SetServFailFunc(inj.DNSServFail)
	w.Vendors.DoHGoogle.SetServFailFunc(inj.DNSServFail)
	for _, b := range w.Browsers {
		b.SetFaults(inj)
	}
}

// GeoDB builds the IP-to-country database from the virtual internet's
// allocation table (the iplocation.net stand-in).
func (w *World) GeoDB() (*geoip.DB, error) {
	blocks := w.Inet.Blocks()
	allocs := make([]geoip.Allocation, len(blocks))
	for i, b := range blocks {
		allocs[i] = geoip.Allocation{CIDR: b.CIDR, Country: b.Country}
	}
	return geoip.Build(allocs)
}

// Browser returns a browser by profile name.
func (w *World) Browser(name string) (*browser.Browser, error) {
	b, ok := w.Browsers[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown browser %q", name)
	}
	return b, nil
}

// Close tears the testbed down.
func (w *World) Close() {
	if w.Exporter != nil {
		w.Exporter.Close()
	}
	for _, b := range w.Browsers {
		b.Stop()
	}
	if w.appiumHTTP != nil {
		w.appiumHTTP.Close()
	}
	if w.appiumListener != nil {
		w.appiumListener.Close()
	}
	if w.proxyListener != nil {
		w.proxyListener.Close()
	}
	if w.Proxy != nil {
		w.Proxy.Close()
	}
	w.Hosting.Close()
	w.Vendors.Close()
}

// Advance drives the virtual clock (convenience passthrough).
func (w *World) Advance(d time.Duration) { w.Clock.Advance(d) }
