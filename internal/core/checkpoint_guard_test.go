package core

import (
	"strings"
	"testing"

	"panoptes/internal/capture"
	"panoptes/internal/profiles"
)

// Checkpointing snapshots the retained stores, so it must refuse to run
// under bounded retention — and the refusal has to tell the operator
// which flag fixes it.
func TestCheckpointRequiresFullRetention(t *testing.T) {
	for _, mode := range []capture.RetainMode{capture.RetainNative, capture.RetainNone} {
		w, err := NewWorld(WorldConfig{
			Sites:    2,
			Profiles: []*profiles.Profile{profiles.ByName("Chrome")},
			Retain:   mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)

		_, err = w.RunCampaign(CampaignConfig{Checkpoint: true})
		if err == nil {
			t.Fatalf("retain=%s + checkpoint: campaign ran, want refusal", mode)
		}
		if !strings.Contains(err.Error(), "-retain=all") {
			t.Fatalf("retain=%s error %q does not name the -retain=all flag", mode, err)
		}
	}
}
