package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"panoptes/internal/analysis"
	"panoptes/internal/capture"
	"panoptes/internal/faultsim"
	"panoptes/internal/leak"
	"panoptes/internal/obs"
	"panoptes/internal/pii"
	"panoptes/internal/profiles"
	"panoptes/internal/websim"
)

// faultBrowsers mixes both instrumentation paths: Chrome and Brave are
// CDP-driven, UC International is Frida-driven (and injects the
// history-leak script, so the leak analysis has something to find).
var faultBrowsers = []string{"Chrome", "Brave", "UC International"}

// keystonePlan arms every fault kind whose failure mode is independent of
// wall time, at a nonzero rate. CDPStall is deliberately absent: its
// failure is delivered by the wall-clock NavigateTimeout, which this test
// sets high enough that real navigations never trip it under -race (a
// genuine slow run failing an attempt would break run-to-run determinism).
// TestCrashRecovery covers the stall path with a scripted fault instead.
// MaxFaultAttempts defaults to 2, so with the default MaxAttempts of 3
// every visit commits by its third attempt and the campaign converges to
// the fault-free analyses.
func keystonePlan() faultsim.Plan {
	return faultsim.Plan{
		Seed: 42,
		Rates: map[faultsim.Kind]float64{
			faultsim.DNSNXDomain:  0.15,
			faultsim.ConnRefused:  0.15,
			faultsim.ConnTimeout:  0.10,
			faultsim.TLSHandshake: 0.12,
			faultsim.PinReject:    0.08,
			faultsim.ReadTimeout:  0.12,
			faultsim.StreamReset:  0.12,
			faultsim.HTTP5xx:      0.12,
			faultsim.SlowResponse: 0.20,
			faultsim.BrowserCrash: 0.12,
		},
	}
}

// runFaultCampaign crawls 3 sites with faultBrowsers and returns the
// determinism-contract analyses. With viaCheckpoint it stops after 4
// recorded visits, JSON round-trips the checkpoint, and resumes in a
// fresh world — the merged outcome must match an uninterrupted run.
func runFaultCampaign(t *testing.T, parallelism int, faulty, viaCheckpoint bool) ([]analysis.Fig2Row, pii.Matrix, []leak.Finding, *CampaignResult) {
	t.Helper()
	newWorld := func() *World {
		w := smallWorld(t, 3, faultBrowsers...)
		if faulty {
			w.InstallFaults(faultsim.New(keystonePlan()))
		}
		return w
	}
	base := CampaignConfig{Parallelism: parallelism, NavigateTimeout: 20 * time.Second}

	w := newWorld()
	var res *CampaignResult
	if !viaCheckpoint {
		r, err := w.RunCampaign(base)
		if err != nil {
			t.Fatal(err)
		}
		res = r
	} else {
		first := base
		first.StopAfterVisits = 4
		first.Checkpoint = true
		r1, err := w.RunCampaign(first)
		if err != nil {
			t.Fatal(err)
		}
		if !r1.Stopped || r1.Checkpoint == nil {
			t.Fatalf("campaign did not stop on budget: stopped=%v checkpoint=%v", r1.Stopped, r1.Checkpoint != nil)
		}
		data, err := json.Marshal(r1.Checkpoint)
		if err != nil {
			t.Fatal(err)
		}
		cp := &Checkpoint{}
		if err := json.Unmarshal(data, cp); err != nil {
			t.Fatal(err)
		}
		w = newWorld()
		second := base
		second.Resume = cp
		r2, err := w.RunCampaign(second)
		if err != nil {
			t.Fatal(err)
		}
		res = r2
	}

	assertStreamingMatchesBatch(t, w)

	var browsers []string
	for _, v := range res.Visits {
		if len(browsers) == 0 || browsers[len(browsers)-1] != v.Browser {
			browsers = append(browsers, v.Browser)
		}
	}
	fig2 := analysis.Fig2(w.DB, browsers)
	matrix, _ := analysis.Table2(w.DB.Native, browsers)
	leaks := analysis.HistoryLeaks(w.DB.Native)
	for i := range leaks {
		leaks[i].FlowID = 0 // process-global ticket numbers, not data
	}
	return fig2, matrix, leaks, res
}

// assertStreamingMatchesBatch is the tentpole's golden equivalence
// check: every analysis the streaming suite computed incrementally on
// the commit tap (retractions and all) must JSON-serialize to the same
// bytes as its batch wrapper replaying the retained flow databases
// after the fact. Called from runFaultCampaign, it covers the clean
// run and every straight/resume × parallelism variant.
func assertStreamingMatchesBatch(t *testing.T, w *World) {
	t.Helper()
	names := w.Suite.Names()
	batchMatrix, batchPII := analysis.Table2(w.DB.Native, names)
	sBody, sQuery := w.Suite.Listing1.Result()
	bBody, bQuery := analysis.Listing1(w.DB.Native)
	pairs := []struct {
		name          string
		stream, batch any
	}{
		{"fig2", w.Suite.Fig2.Rows(), analysis.Fig2(w.DB, names)},
		{"fig3", w.Suite.Fig3.Rows(), analysis.Fig3(w.DB.Native, w.Hostlist, names)},
		{"fig4", w.Suite.Fig4.Rows(), analysis.Fig4(w.DB, names)},
		{"table2-matrix", w.Suite.PII.Matrix(), batchMatrix},
		{"table2-findings", w.Suite.PII.Findings(), batchPII},
		{"leaks-native", w.Suite.LeakNative.Findings(), analysis.HistoryLeaks(w.DB.Native)},
		{"leaks-engine", w.Suite.LeakEngine.Findings(), analysis.HistoryLeaks(w.DB.Engine)},
		{"dns", w.Suite.DNS.Usage(), analysis.DNSUsage(w.DB.Native, names)},
		{"trackable", w.Suite.Trackable.IDs(), analysis.TrackableIdentifiers(w.DB.Native)},
		{"listing1", [2]string{sBody, sQuery}, [2]string{bBody, bQuery}},
	}
	for _, p := range pairs {
		sj, err := json.Marshal(p.stream)
		if err != nil {
			t.Fatalf("%s: marshal streaming result: %v", p.name, err)
		}
		bj, err := json.Marshal(p.batch)
		if err != nil {
			t.Fatalf("%s: marshal batch result: %v", p.name, err)
		}
		if !bytes.Equal(sj, bj) {
			t.Errorf("streaming %s diverges from batch replay:\nstream %s\nbatch  %s", p.name, sj, bj)
		}
	}
}

// TestFaultCampaignDeterminism is the resilience keystone: under a
// nonzero fault plan with retries enabled, the analyses over committed
// visits are identical to the fault-free run — and identical whether the
// campaign runs straight through or checkpoint+resumed, at parallelism 1
// and 8.
func TestFaultCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("five multi-browser crawls")
	}
	fig2Clean, t2Clean, leaksClean, resClean := runFaultCampaign(t, 1, false, false)
	if resClean.Errors != 0 {
		t.Fatalf("fault-free baseline had %d errors: %+v", resClean.Errors, resClean.Visits)
	}

	type variant struct {
		name          string
		parallelism   int
		viaCheckpoint bool
	}
	variants := []variant{
		{"straight/p1", 1, false},
		{"straight/p8", 8, false},
		{"resume/p1", 1, true},
		{"resume/p8", 8, true},
	}
	var refVisits []VisitRecord
	var refRetries int
	for i, v := range variants {
		fig2, t2, leaks, res := runFaultCampaign(t, v.parallelism, true, v.viaCheckpoint)
		if res.Errors != 0 {
			t.Fatalf("%s: %d visits failed terminally under a converging plan: %+v", v.name, res.Errors, res.Visits)
		}
		if i == 0 {
			if res.Retries == 0 {
				t.Fatal("fault plan injected nothing: no attempt was ever retried")
			}
			refVisits, refRetries = res.Visits, res.Retries
		} else {
			if !reflect.DeepEqual(res.Visits, refVisits) {
				t.Errorf("%s: visit records diverge from straight/p1:\ngot  %+v\nwant %+v", v.name, res.Visits, refVisits)
			}
			if res.Retries != refRetries {
				t.Errorf("%s: retries = %d, want %d", v.name, res.Retries, refRetries)
			}
		}
		if !reflect.DeepEqual(fig2, fig2Clean) {
			t.Errorf("%s: Fig2 diverges from the fault-free run:\ngot  %+v\nwant %+v", v.name, fig2, fig2Clean)
		}
		if !reflect.DeepEqual(t2, t2Clean) {
			t.Errorf("%s: Table2 matrix diverges from the fault-free run:\ngot  %+v\nwant %+v", v.name, t2, t2Clean)
		}
		if !reflect.DeepEqual(leaks, leaksClean) {
			t.Errorf("%s: history leaks diverge from the fault-free run:\ngot  %+v\nwant %+v", v.name, leaks, leaksClean)
		}
	}
}

// TestRetentionBoundedCampaign runs the faulty parallel campaign with
// flow retention off: every analysis must match a fully-retained run
// while zero flows stay resident — committed flows are analyzed on the
// commit tap and dropped, quarantined attempts are retracted straight
// out of the pending buffers.
func TestRetentionBoundedCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("two multi-browser crawls")
	}
	run := func(retain capture.RetainMode) *World {
		var profs []*profiles.Profile
		for _, n := range faultBrowsers {
			profs = append(profs, profiles.ByName(n))
		}
		w, err := NewWorld(WorldConfig{Sites: 3, Profiles: profs, Retain: retain})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
		w.InstallFaults(faultsim.New(keystonePlan()))
		res, err := w.RunCampaign(CampaignConfig{Parallelism: 8, NavigateTimeout: 20 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors != 0 {
			t.Fatalf("retain=%v: %d visits failed terminally: %+v", retain, res.Errors, res.Visits)
		}
		if res.Retries == 0 {
			t.Fatalf("retain=%v: fault plan injected nothing", retain)
		}
		return w
	}
	full := run(capture.RetainAll)
	none := run(capture.RetainNone)

	if n := none.DB.Engine.Len() + none.DB.Native.Len(); n != 0 {
		t.Fatalf("retain=none left %d flows resident", n)
	}
	if n := none.DB.Engine.Pending() + none.DB.Native.Pending(); n != 0 {
		t.Fatalf("retain=none left %d flows parked in pending buffers", n)
	}
	if none.DB.Engine.Seen() == 0 || none.DB.Native.Seen() == 0 {
		t.Fatal("retain=none run committed no flows")
	}

	// Flow IDs are process-global ticket numbers, so the two worlds'
	// findings carry different IDs for the same leaks; zero them before
	// comparing. Everything else must agree exactly.
	scrub := func(fs []leak.Finding) []leak.Finding {
		for i := range fs {
			fs[i].FlowID = 0
		}
		return fs
	}
	suiteResults := func(w *World) map[string]any {
		body, query := w.Suite.Listing1.Result()
		return map[string]any{
			"fig2":         w.Suite.Fig2.Rows(),
			"fig3":         w.Suite.Fig3.Rows(),
			"fig4":         w.Suite.Fig4.Rows(),
			"table2":       w.Suite.PII.Matrix(),
			"leaks-native": scrub(w.Suite.LeakNative.Findings()),
			"leaks-engine": scrub(w.Suite.LeakEngine.Findings()),
			"dns":          w.Suite.DNS.Usage(),
			"trackable":    w.Suite.Trackable.IDs(),
			"listing1":     [2]string{body, query},
		}
	}
	want, got := suiteResults(full), suiteResults(none)
	for name := range want {
		wj, err := json.Marshal(want[name])
		if err != nil {
			t.Fatal(err)
		}
		gj, err := json.Marshal(got[name])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wj, gj) {
			t.Errorf("retain=none %s diverges from retain=all:\nnone %s\nall  %s", name, gj, wj)
		}
	}

	// A bounded world cannot checkpoint: the snapshot would be missing
	// its flows.
	if _, err := none.RunCampaign(CampaignConfig{Checkpoint: true}); err == nil {
		t.Error("checkpointing with retention off did not error")
	}
}

// TestInjectedNetworkErrorsClassify is the error-path propagation test:
// netsim's ErrNoSuchHost / ErrConnRefused and MITM-layer faults surface
// through webengine.Navigate and the proxy as classified visit errors —
// no panics, no hangs, and the failed attempts' partial flows are
// quarantined.
func TestInjectedNetworkErrorsClassify(t *testing.T) {
	w := smallWorld(t, 4, "Chrome")
	kinds := []faultsim.Kind{
		faultsim.DNSNXDomain, faultsim.ConnRefused,
		faultsim.TLSHandshake, faultsim.StreamReset,
	}
	wantClass := []string{"dns", "connect_refused", "tls", "reset"}
	plan := faultsim.Plan{Seed: 7}
	for i, k := range kinds {
		plan.Scripted = append(plan.Scripted, faultsim.ScriptedFault{
			Kind: k, Browser: "Chrome", Host: faultsim.HostOf(w.Sites[i].URL()),
		})
	}
	w.InstallFaults(faultsim.New(plan))

	res, err := w.RunCampaign(CampaignConfig{
		Sites: w.Sites[:4], MaxAttempts: 1, NavigateTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Visits) != 4 || res.Degraded != 4 {
		t.Fatalf("visits=%d degraded=%d, want 4/4: %+v", len(res.Visits), res.Degraded, res.Visits)
	}
	for i, v := range res.Visits {
		if v.Err == "" {
			t.Errorf("visit %d (%s): fault %s produced no error", i, v.URL, kinds[i])
		}
		if v.ErrClass != wantClass[i] {
			t.Errorf("visit %d (%s): class = %q (err %q), want %q", i, v.URL, v.ErrClass, v.Err, wantClass[i])
		}
	}
}

// TestCrashRecovery checks a mid-campaign browser crash (and a wedged
// DevTools socket) cost one retry each, not the browser's crawl: the app
// is relaunched with its session restored and every visit commits.
func TestCrashRecovery(t *testing.T) {
	w := smallWorld(t, 3, "Chrome")
	inj := faultsim.New(faultsim.Plan{Seed: 1, Scripted: []faultsim.ScriptedFault{
		{Kind: faultsim.BrowserCrash, Browser: "Chrome", Host: faultsim.HostOf(w.Sites[1].URL())},
		{Kind: faultsim.CDPStall, Browser: "Chrome", Host: faultsim.HostOf(w.Sites[2].URL())},
	}})
	w.InstallFaults(inj)

	res, err := w.RunCampaign(CampaignConfig{Sites: w.Sites[:3], NavigateTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d, want 0 (crash must be absorbed): %+v", res.Errors, res.Visits)
	}
	wantAttempts := []int{1, 2, 2}
	for i, v := range res.Visits {
		if v.Attempts != wantAttempts[i] {
			t.Errorf("visit %d: attempts = %d, want %d (%+v)", i, v.Attempts, wantAttempts[i], v)
		}
	}
	if res.Retries != 2 {
		t.Errorf("retries = %d, want 2", res.Retries)
	}
	counts := inj.Counts()
	if counts[faultsim.BrowserCrash] != 1 || counts[faultsim.CDPStall] != 1 {
		t.Errorf("injected counts = %v, want one crash and one stall", counts)
	}
	if b := w.Browsers["Chrome"]; b.UUID() == "" {
		t.Error("browser lost its persistent identifier across the relaunch")
	}
}

// TestHostBreakerOpens checks the circuit breaker: after
// BreakerThreshold consecutive failed visits against one host, further
// visits are skipped with class breaker_open instead of burning retries.
func TestHostBreakerOpens(t *testing.T) {
	w := smallWorld(t, 1, "Chrome")
	site := w.Sites[0]
	w.InstallFaults(faultsim.New(faultsim.Plan{Seed: 3, Scripted: []faultsim.ScriptedFault{
		{Kind: faultsim.ConnRefused, Browser: "Chrome", Host: faultsim.HostOf(site.URL())},
	}}))

	res, err := w.RunCampaign(CampaignConfig{
		Sites:            []*websim.Site{site, site, site, site},
		MaxAttempts:      1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantClass := []string{"connect_refused", "connect_refused", "breaker_open", "breaker_open"}
	for i, v := range res.Visits {
		if v.ErrClass != wantClass[i] {
			t.Errorf("visit %d: class = %q (err %q), want %q", i, v.ErrClass, v.Err, wantClass[i])
		}
	}
	if res.Degraded != 4 {
		t.Errorf("degraded = %d, want 4", res.Degraded)
	}
	if obs.Default.Sum("breaker_open_total") == 0 {
		t.Error("breaker_open_total never incremented")
	}
}

// TestChaosCampaign is the CI chaos smoke: a campaign at a 10% fault
// rate (armed + chaos SERVFAIL) must finish without aborting any
// browser, every failed visit must carry a classified error, and the
// exit-report numbers must be available.
func TestChaosCampaign(t *testing.T) {
	// Dolphin joins the chaos fleet so WebSocket telemetry frames (and
	// Chrome's h2 + DoH flows) ride through the fault injector too: the
	// smoke covers every data-plane transport, not just pooled h1.
	w := smallWorld(t, 4, "Chrome", "Mint", "Dolphin")
	inj := faultsim.New(faultsim.Plan{
		Seed:  99,
		Rates: faultsim.UniformRates(0.10),
		ChaosRates: map[faultsim.Kind]float64{
			faultsim.DNSServFail: 0.03,
			faultsim.DNSNXDomain: 0.01,
		},
	})
	w.InstallFaults(inj)

	res, err := w.RunCampaign(CampaignConfig{NavigateTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	perBrowser := map[string]int{}
	for _, v := range res.Visits {
		perBrowser[v.Browser]++
		if v.Err != "" && v.ErrClass == "" {
			t.Errorf("failed visit without a class: %+v", v)
		}
		if v.Err == "" && v.ErrClass != "" {
			t.Errorf("classified error on a committed visit: %+v", v)
		}
	}
	for _, name := range []string{"Chrome", "Mint", "Dolphin"} {
		if perBrowser[name] != len(w.Sites) {
			t.Errorf("browser %s has %d visit records, want %d (no browser may abort)",
				name, perBrowser[name], len(w.Sites))
		}
	}
	if inj.Total() == 0 {
		t.Error("chaos smoke injected no faults")
	}
	t.Logf("chaos smoke: %d faults injected (%s); %d retried; %d degraded",
		inj.Total(), inj.CountsString(), res.Retries, res.Degraded)
}
