package core

import (
	"encoding/json"
	"fmt"
	"os"

	"panoptes/internal/browser"
	"panoptes/internal/capture"
)

// BrowserCheckpoint is one browser's crawl position: which sites have a
// committed (or degraded) record, the restorable session state at the
// moment the crawl paused, and the visit records produced so far.
type BrowserCheckpoint struct {
	Completed []string              `json:"completed,omitempty"`
	State     *browser.SessionState `json:"state,omitempty"`
	Visits    []VisitRecord         `json:"visits,omitempty"`
}

// Checkpoint is a resumable snapshot of a campaign: per-browser crawl
// positions plus the capture databases' committed flows. RunCampaign
// builds one when CampaignConfig.Checkpoint is set; feeding it back via
// CampaignConfig.Resume (typically in a fresh process against a fresh
// world) continues from the last completed (browser, site) pair and
// yields the same merged result as an uninterrupted run.
type Checkpoint struct {
	Incognito bool                          `json:"incognito"`
	Browsers  map[string]*BrowserCheckpoint `json:"browsers"`
	Skipped   []string                      `json:"skipped,omitempty"`
	Engine    []*capture.Flow               `json:"engine,omitempty"`
	Native    []*capture.Flow               `json:"native,omitempty"`
	Retries   int                           `json:"retries"`
	Degraded  int                           `json:"degraded"`
}

// WriteFile serializes the checkpoint as JSON.
func (c *Checkpoint) WriteFile(path string) error {
	data, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("core: encode checkpoint: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint loads a checkpoint written by WriteFile.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: read checkpoint: %w", err)
	}
	c := &Checkpoint{}
	if err := json.Unmarshal(data, c); err != nil {
		return nil, fmt.Errorf("core: decode checkpoint %s: %w", path, err)
	}
	return c, nil
}
