package core

import (
	"fmt"
	"sync"
	"time"

	"panoptes/internal/capture"
)

// idleCollector is a transient pipeline analyzer that gathers one
// browser's native flows during the idle window. Collecting off the
// commit tap instead of filtering the store afterwards keeps the idle
// experiment working when flow retention is off.
type idleCollector struct {
	uid int

	mu    sync.Mutex
	flows []*capture.Flow
}

func (c *idleCollector) Observe(f *capture.Flow) {
	if f.Origin != capture.OriginNative || f.BrowserUID != c.uid {
		return
	}
	f.Ref() // the collector outlives the exchange that produced the flow
	c.mu.Lock()
	c.flows = append(c.flows, f)
	c.mu.Unlock()
}

// Retract is a no-op: no navigation attempts run during idle, so idle
// flows are never attempt-tagged.
func (c *idleCollector) Retract(int64) {}

func (c *idleCollector) Finalize() any { return c.window(time.Time{}, time.Time{}) }

// window returns the collected flows inside [start, end]; zero bounds
// mean unbounded.
func (c *idleCollector) window(start, end time.Time) []*capture.Flow {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*capture.Flow
	for _, f := range c.flows {
		if !start.IsZero() && f.Time.Before(start) {
			continue
		}
		if !end.IsZero() && f.Time.After(end) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// IdleResult is one browser's idle phone-home record (§3.5 / Figure 5).
type IdleResult struct {
	Browser string
	Start   time.Time
	End     time.Time
	// Flows are the native flows captured during the idle window, in
	// order; Figure 5 bins their timestamps.
	Flows []*capture.Flow
}

// RunIdle reproduces §3.5: launch the browser, leave it at the start
// page with no interaction for the given duration of virtual time while
// its traffic is diverted, and collect the native requests it makes.
func (w *World) RunIdle(browserName string, duration time.Duration) (*IdleResult, error) {
	b, err := w.Browser(browserName)
	if err != nil {
		return nil, err
	}
	sess, err := w.AppiumClient.NewSession(b.Pkg.Name)
	if err != nil {
		return nil, err
	}
	defer sess.Close()

	if err := sess.Reset(); err != nil {
		return nil, fmt.Errorf("core: idle reset: %w", err)
	}
	if !w.Device.DiversionActive(b.UID()) {
		if err := w.Device.DivertBrowser(b.UID(), ProxyAddr); err != nil {
			return nil, err
		}
	}
	// Collect off the commit tap (registered before Launch: the launch
	// and wizard flows are stamped at the window's start instant and
	// belong to the idle record).
	col := &idleCollector{uid: b.UID()}
	colName := "idle:" + browserName
	w.Pipeline.Register(colName, col)
	defer w.Pipeline.Unregister(colName)
	if err := sess.Launch(); err != nil {
		return nil, fmt.Errorf("core: idle launch: %w", err)
	}
	defer sess.Terminate()
	// The wizard still has to be clicked through before the start page
	// shows; no navigation follows.
	if err := sess.CompleteWizard(); err != nil {
		return nil, err
	}

	uid := b.UID()
	idleSpan := w.Trace.Start("idle")
	idleSpan.SetAttr("browser", browserName)
	w.Trace.SetActive(uid, idleSpan)

	// Step the world clock and the browser's activity clock together in
	// ticker-sized increments: the idle scheduler fires on the activity
	// clock, and advancing the world clock to each tick instant first
	// stamps those flows at the same virtual times a single shared-clock
	// advance used to — which is what Figure 5's binning consumes.
	start := w.Clock.Now()
	const step = 5 * time.Second
	for remaining := duration; remaining > 0; {
		d := step
		if remaining < d {
			d = remaining
		}
		w.Clock.Advance(d)
		b.AdvanceActivity(d)
		remaining -= d
	}
	end := w.Clock.Now()

	w.Trace.SetActive(uid, nil)
	idleSpan.End()
	return &IdleResult{Browser: browserName, Start: start, End: end, Flows: col.window(start, end)}, nil
}

// RunIdleAll runs the idle experiment for every browser in the world.
func (w *World) RunIdleAll(duration time.Duration) (map[string]*IdleResult, error) {
	out := make(map[string]*IdleResult, len(w.Browsers))
	for name := range w.Browsers {
		r, err := w.RunIdle(name, duration)
		if err != nil {
			return out, err
		}
		out[name] = r
	}
	return out, nil
}
