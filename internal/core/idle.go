package core

import (
	"fmt"
	"time"

	"panoptes/internal/capture"
)

// IdleResult is one browser's idle phone-home record (§3.5 / Figure 5).
type IdleResult struct {
	Browser string
	Start   time.Time
	End     time.Time
	// Flows are the native flows captured during the idle window, in
	// order; Figure 5 bins their timestamps.
	Flows []*capture.Flow
}

// RunIdle reproduces §3.5: launch the browser, leave it at the start
// page with no interaction for the given duration of virtual time while
// its traffic is diverted, and collect the native requests it makes.
func (w *World) RunIdle(browserName string, duration time.Duration) (*IdleResult, error) {
	b, err := w.Browser(browserName)
	if err != nil {
		return nil, err
	}
	sess, err := w.AppiumClient.NewSession(b.Pkg.Name)
	if err != nil {
		return nil, err
	}
	defer sess.Close()

	if err := sess.Reset(); err != nil {
		return nil, fmt.Errorf("core: idle reset: %w", err)
	}
	if !w.Device.DiversionActive(b.UID()) {
		if err := w.Device.DivertBrowser(b.UID(), ProxyAddr); err != nil {
			return nil, err
		}
	}
	if err := sess.Launch(); err != nil {
		return nil, fmt.Errorf("core: idle launch: %w", err)
	}
	defer sess.Terminate()
	// The wizard still has to be clicked through before the start page
	// shows; no navigation follows.
	if err := sess.CompleteWizard(); err != nil {
		return nil, err
	}

	uid := b.UID()
	idleSpan := w.Trace.Start("idle")
	idleSpan.SetAttr("browser", browserName)
	w.Trace.SetActive(uid, idleSpan)

	// Step the world clock and the browser's activity clock together in
	// ticker-sized increments: the idle scheduler fires on the activity
	// clock, and advancing the world clock to each tick instant first
	// stamps those flows at the same virtual times a single shared-clock
	// advance used to — which is what Figure 5's binning consumes.
	start := w.Clock.Now()
	const step = 5 * time.Second
	for remaining := duration; remaining > 0; {
		d := step
		if remaining < d {
			d = remaining
		}
		w.Clock.Advance(d)
		b.AdvanceActivity(d)
		remaining -= d
	}
	end := w.Clock.Now()

	w.Trace.SetActive(uid, nil)
	idleSpan.End()
	flows := w.DB.Native.Filter(func(f *capture.Flow) bool {
		return f.BrowserUID == uid && !f.Time.Before(start) && !f.Time.After(end)
	})
	return &IdleResult{Browser: browserName, Start: start, End: end, Flows: flows}, nil
}

// RunIdleAll runs the idle experiment for every browser in the world.
func (w *World) RunIdleAll(duration time.Duration) (map[string]*IdleResult, error) {
	out := make(map[string]*IdleResult, len(w.Browsers))
	for name := range w.Browsers {
		r, err := w.RunIdle(name, duration)
		if err != nil {
			return out, err
		}
		out[name] = r
	}
	return out, nil
}
