package core

import (
	"bytes"
	"crypto/tls"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"panoptes/internal/device"
	"panoptes/internal/packet"
	"panoptes/internal/pcap"
	"panoptes/internal/profiles"
	"panoptes/internal/vclock"
	"panoptes/internal/websim"
)

// smallWorld builds a testbed with a handful of sites and the given
// browsers (nil = all 15).
func smallWorld(t *testing.T, sites int, names ...string) *World {
	t.Helper()
	var profs []*profiles.Profile
	if len(names) > 0 {
		for _, n := range names {
			p := profiles.ByName(n)
			if p == nil {
				t.Fatalf("no profile %q", n)
			}
			profs = append(profs, p)
		}
	}
	w, err := NewWorld(WorldConfig{Sites: sites, Profiles: profs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

func TestWorldAssembly(t *testing.T) {
	w := smallWorld(t, 10)
	if len(w.Browsers) != 15 {
		t.Fatalf("browsers = %d", len(w.Browsers))
	}
	if len(w.Sites) != 10 {
		t.Fatalf("sites = %d", len(w.Sites))
	}
	// GeoDB knows the vendor countries.
	db, err := w.GeoDB()
	if err != nil {
		t.Fatal(err)
	}
	ip, err := w.Inet.LookupHost("sba.yandex.net")
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := db.Lookup(ip); !ok || c != "RU" {
		t.Fatalf("sba.yandex.net geolocates to %q, %v", c, ok)
	}
}

func TestCampaignCDPBrowserSplitsTraffic(t *testing.T) {
	w := smallWorld(t, 6, "Chrome")
	res, err := w.RunCampaign(CampaignConfig{Sites: w.Sites[:4]})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Visits) != 4 || res.Errors != 0 {
		t.Fatalf("visits = %d errors = %d (%+v)", len(res.Visits), res.Errors, res.Visits)
	}
	eng := w.DB.Engine.ByBrowser("Chrome")
	nat := w.DB.Native.ByBrowser("Chrome")
	if len(eng) == 0 {
		t.Fatal("no engine flows")
	}
	if len(nat) == 0 {
		t.Fatal("no native flows")
	}
	// Engine flows carry the visited page; Chrome's native flows are DoH
	// and safe-browsing, never the full URL of the page in the query.
	for _, f := range eng {
		if f.VisitURL == "" {
			t.Fatalf("engine flow without visit annotation: %+v", f)
		}
		if f.HeaderGet("X-Panoptes-Taint") != "" {
			t.Fatal("taint header survived into the stored flow")
		}
	}
	// Chrome uses Google DoH: dns.google must appear among native hosts.
	hosts := map[string]bool{}
	for _, f := range nat {
		hosts[f.Host] = true
	}
	if !hosts["dns.google"] {
		t.Fatalf("Chrome native hosts missing dns.google: %v", hosts)
	}
	// Engine flows outnumber native ones for Chrome (low ratio profile).
	if len(nat) >= len(eng) {
		t.Fatalf("Chrome native (%d) >= engine (%d)", len(nat), len(eng))
	}
}

func TestCampaignFridaBrowser(t *testing.T) {
	w := smallWorld(t, 6, "QQ")
	res, err := w.RunCampaign(CampaignConfig{Sites: w.Sites[:3]})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Visits) != 3 {
		t.Fatalf("visits = %d", len(res.Visits))
	}
	eng := w.DB.Engine.ByBrowser("QQ")
	nat := w.DB.Native.ByBrowser("QQ")
	if len(eng) == 0 || len(nat) == 0 {
		t.Fatalf("engine=%d native=%d", len(eng), len(nat))
	}
	// QQ's wup report must carry the full visited URL in its body.
	found := false
	for _, f := range nat {
		if f.Host == "wup.browser.qq.com" && strings.Contains(string(f.Body), w.Sites[0].URL()) {
			found = true
		}
	}
	if !found {
		t.Fatal("QQ full-URL report not captured")
	}
	// And the vendor server in China actually received it.
	wup := w.Vendors.Backend("wup.browser.qq.com")
	got := false
	for _, r := range wup.Requests() {
		if strings.Contains(r.Body, w.Sites[0].URL()) {
			got = true
		}
	}
	if !got {
		t.Fatal("wup backend did not receive the URL")
	}
}

func TestYandexLeaksBase64URLAndUUID(t *testing.T) {
	w := smallWorld(t, 4, "Yandex")
	if _, err := w.RunCampaign(CampaignConfig{Sites: w.Sites[:2]}); err != nil {
		t.Fatal(err)
	}
	nat := w.DB.Native.ByBrowser("Yandex")
	var sba, api int
	for _, f := range nat {
		switch f.Host {
		case "sba.yandex.net":
			sba++
			if !strings.Contains(f.RawQuery, "url=") {
				t.Fatalf("sba query = %q", f.RawQuery)
			}
		case "api.browser.yandex.ru":
			if strings.Contains(f.RawQuery, "uuid=") {
				api++
			}
		}
	}
	if sba < 2 || api < 2 {
		t.Fatalf("sba=%d api=%d, want >=2 each (one per visit)", sba, api)
	}
}

func TestPersistentIdentifierSurvivesVisitsDiesOnReset(t *testing.T) {
	w := smallWorld(t, 4, "Yandex")
	if _, err := w.RunCampaign(CampaignConfig{Sites: w.Sites[:2]}); err != nil {
		t.Fatal(err)
	}
	uuids := map[string]bool{}
	for _, f := range w.DB.Native.ByBrowser("Yandex") {
		if f.Host != "api.browser.yandex.ru" {
			continue
		}
		for _, kv := range strings.Split(f.RawQuery, "&") {
			if v, ok := strings.CutPrefix(kv, "uuid="); ok {
				uuids[v] = true
			}
		}
	}
	if len(uuids) != 1 {
		t.Fatalf("uuids across visits = %d, want 1 (persistent)", len(uuids))
	}
	// A second campaign (with factory reset) mints a new identifier.
	w.DB.Reset()
	if _, err := w.RunCampaign(CampaignConfig{Sites: w.Sites[:1]}); err != nil {
		t.Fatal(err)
	}
	for _, f := range w.DB.Native.ByBrowser("Yandex") {
		if f.Host != "api.browser.yandex.ru" {
			continue
		}
		for _, kv := range strings.Split(f.RawQuery, "&") {
			if v, ok := strings.CutPrefix(kv, "uuid="); ok {
				uuids[v] = true
			}
		}
	}
	if len(uuids) != 2 {
		t.Fatalf("uuids after reset = %d, want 2", len(uuids))
	}
}

func TestUCLeaksViaInjectedScript(t *testing.T) {
	w := smallWorld(t, 4, "UC International")
	if _, err := w.RunCampaign(CampaignConfig{Sites: w.Sites[:2]}); err != nil {
		t.Fatal(err)
	}
	// The beacon goes through the ENGINE (injected script), not native.
	engine := w.DB.Engine.ByBrowser("UC International")
	var beacons int
	for _, f := range engine {
		if f.Host == "gjapi.ucweb.com" {
			beacons++
			if !strings.Contains(f.RawQuery, "city=Heraklion") || !strings.Contains(f.RawQuery, "isp=FORTHnet") {
				t.Fatalf("beacon query = %q", f.RawQuery)
			}
		}
	}
	if beacons < 2 {
		t.Fatalf("beacons = %d, want one per visit", beacons)
	}
	for _, f := range w.DB.Native.ByBrowser("UC International") {
		if f.Host == "gjapi.ucweb.com" {
			t.Fatal("UC beacon classified native; should ride the engine")
		}
	}
}

func TestIncognitoCampaignStillLeaks(t *testing.T) {
	w := smallWorld(t, 4, "Edge", "Yandex")
	res, err := w.RunCampaign(CampaignConfig{Sites: w.Sites[:2], Incognito: true})
	if err != nil {
		t.Fatal(err)
	}
	// Yandex has no incognito mode and is skipped (footnote 5).
	if len(res.Skipped) != 1 || res.Skipped[0] != "Yandex" {
		t.Fatalf("skipped = %v", res.Skipped)
	}
	// Edge keeps reporting visited domains to Bing in incognito.
	var bing int
	for _, f := range w.DB.Native.ByBrowser("Edge") {
		if f.Host == "api.bing.com" && f.Incognito {
			bing++
		}
	}
	if bing < 2 {
		t.Fatalf("incognito bing reports = %d", bing)
	}
}

func TestIdleExperiment(t *testing.T) {
	w := smallWorld(t, 4, "Opera", "Brave")
	opera, err := w.RunIdle("Opera", 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	brave, err := w.RunIdle("Brave", 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(opera.Flows) == 0 || len(brave.Flows) == 0 {
		t.Fatalf("opera=%d brave=%d idle flows", len(opera.Flows), len(brave.Flows))
	}
	// Opera (news feed, ads) phones home much more than Brave.
	if len(opera.Flows) <= 2*len(brave.Flows) {
		t.Fatalf("opera %d vs brave %d: expected opera >> brave", len(opera.Flows), len(brave.Flows))
	}
	// Idle flows carry no visit annotation.
	for _, f := range opera.Flows {
		if f.VisitURL != "" {
			t.Fatalf("idle flow has visit %q", f.VisitURL)
		}
	}
	// Opera's idle mix includes doubleclick.net (Fig. 5: 21.9%).
	dc := 0
	for _, f := range opera.Flows {
		if strings.HasSuffix(f.Host, "doubleclick.net") {
			dc++
		}
	}
	if dc == 0 {
		t.Fatal("no idle doubleclick traffic from Opera")
	}
}

func TestCampaignSensitiveSites(t *testing.T) {
	w := smallWorld(t, 8, "Yandex")
	var sensitive []*websim.Site
	for _, s := range w.Sites {
		if s.Category.Sensitive() {
			sensitive = append(sensitive, s)
		}
	}
	if len(sensitive) == 0 {
		t.Fatal("no sensitive sites in dataset")
	}
	if _, err := w.RunCampaign(CampaignConfig{Sites: sensitive[:2]}); err != nil {
		t.Fatal(err)
	}
	// The full sensitive URL reaches sba (Base64) — no local filtering.
	found := 0
	for _, f := range w.DB.Native.ByBrowser("Yandex") {
		if f.Host == "sba.yandex.net" && f.VisitURL != "" {
			found++
		}
	}
	if found < 2 {
		t.Fatalf("sensitive sba reports = %d", found)
	}
}

func TestEngineAdBlockCocCoc(t *testing.T) {
	w := smallWorld(t, 6, "CocCoc", "Chrome")
	if _, err := w.RunCampaign(CampaignConfig{Sites: w.Sites[:3]}); err != nil {
		t.Fatal(err)
	}
	// CocCoc's engine blocks ad embeds; Chrome's does not.
	adEngine := func(name string) int {
		n := 0
		for _, f := range w.DB.Engine.ByBrowser(name) {
			if w.Hostlist.AdRelated(f.Host) {
				n++
			}
		}
		return n
	}
	if got := adEngine("CocCoc"); got != 0 {
		t.Fatalf("CocCoc engine ad flows = %d, want 0 (easylist)", got)
	}
	if got := adEngine("Chrome"); got == 0 {
		t.Fatal("Chrome engine should fetch ad embeds")
	}
	// But CocCoc still talks to adjust.com natively (§3.1).
	adjust := false
	for _, f := range w.DB.Native.ByBrowser("CocCoc") {
		if strings.HasSuffix(f.Host, "adjust.com") {
			adjust = true
		}
	}
	if !adjust {
		t.Fatal("CocCoc native adjust.com traffic missing")
	}
}

func TestDNSModesObservable(t *testing.T) {
	w := smallWorld(t, 4, "Edge", "Yandex")
	if _, err := w.RunCampaign(CampaignConfig{Sites: w.Sites[:2]}); err != nil {
		t.Fatal(err)
	}
	// Edge (DoH-Cloudflare): queried names visible at the resolver.
	cfNames := w.Vendors.DoHCloudflare.QueriedNames()
	if len(cfNames) == 0 {
		t.Fatal("cloudflare DoH saw no queries from Edge")
	}
	// Yandex (local): stub resolver logged its lookups.
	yandexUID := w.Browsers["Yandex"].UID()
	if len(w.Device.Resolver().QueriesByUID(yandexUID)) == 0 {
		t.Fatal("stub resolver saw no Yandex queries")
	}
	// And Yandex never queried DoH (its UID produced no flows there).
	for _, f := range w.DB.Native.ByBrowser("Yandex") {
		if f.Host == "cloudflare-dns.com" || f.Host == "dns.google" {
			t.Fatalf("Yandex used DoH: %+v", f)
		}
	}
}

func TestPinnedHostSuppressed(t *testing.T) {
	w := smallWorld(t, 4, "QQ")
	if _, err := w.RunCampaign(CampaignConfig{Sites: w.Sites[:2]}); err != nil {
		t.Fatal(err)
	}
	// cloud.browser.qq.com is pinned: nothing from it may appear in the
	// capture DB, and the proxy must have seen handshake failures.
	for _, f := range w.DB.Native.ByBrowser("QQ") {
		if f.Host == "cloud.browser.qq.com" {
			t.Fatal("pinned host traffic captured")
		}
	}
	if w.Proxy.HandshakeFailures() == 0 {
		t.Fatal("no handshake failures recorded for the pinned host")
	}
}

func TestVisitRecordLoadTimes(t *testing.T) {
	w := smallWorld(t, 4, "Brave")
	res, err := w.RunCampaign(CampaignConfig{Sites: w.Sites[:2]})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Visits {
		if v.LoadTimeMs <= 0 {
			t.Fatalf("visit %s load time %d", v.URL, v.LoadTimeMs)
		}
	}
	// Virtual clock advanced by at least the two settle windows.
	if w.Clock.Since(vclockEpoch()) < 10*time.Second {
		t.Fatalf("clock only advanced %v", w.Clock.Since(vclockEpoch()))
	}
}

func vclockEpoch() time.Time { return vclock.Epoch }

func TestCampaignWithPcapCapture(t *testing.T) {
	w := smallWorld(t, 4, "Brave")
	var buf bytes.Buffer
	tap := device.NewPcapTap(w.Device, pcap.NewWriter(&buf, 0))
	w.Device.SetTap(tap)
	if _, err := w.RunCampaign(CampaignConfig{Sites: w.Sites[:2]}); err != nil {
		t.Fatal(err)
	}
	w.Device.SetTap(nil)
	if tap.Count() == 0 {
		t.Fatal("no packets captured")
	}
	r, err := pcap.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != tap.Count() {
		t.Fatalf("records = %d, tap = %d", len(recs), tap.Count())
	}
	// Every record decodes; the capture records each connection with its
	// original destination (port 443 for the HTTPS web), both for the
	// diverted browser flows and the proxy's upstream legs.
	syns443 := 0
	for _, rec := range recs {
		p := packet.Decode(rec.Data)
		if p.ErrorLayer() != nil {
			t.Fatalf("record does not decode: %v", p.ErrorLayer())
		}
		if tcp, ok := p.Layer(packet.LayerTypeTCP).(*packet.TCP); ok {
			if tcp.SYN && !tcp.ACK && tcp.DstPort == 443 {
				syns443++
			}
		}
	}
	if syns443 == 0 {
		t.Fatal("no HTTPS SYNs in capture")
	}
	// Timestamps are virtual-clock times.
	if recs[0].Time.Before(vclock.Epoch) {
		t.Fatalf("timestamp %v before virtual epoch", recs[0].Time)
	}
}

func TestCampaignSkipResetPreservesIdentifier(t *testing.T) {
	w := smallWorld(t, 4, "Yandex")
	if _, err := w.RunCampaign(CampaignConfig{Sites: w.Sites[:1]}); err != nil {
		t.Fatal(err)
	}
	b := w.Browsers["Yandex"]
	uuid1, _ := w.Device.StorageGet(b.Pkg.Name, "install_uuid")
	// SkipReset keeps app data (and so the identifier) across campaigns.
	if _, err := w.RunCampaign(CampaignConfig{Sites: w.Sites[:1], SkipReset: true}); err != nil {
		t.Fatal(err)
	}
	uuid2, _ := w.Device.StorageGet(b.Pkg.Name, "install_uuid")
	if uuid1 == "" || uuid1 != uuid2 {
		t.Fatalf("identifier changed despite SkipReset: %q vs %q", uuid1, uuid2)
	}
	// A regular (resetting) campaign rotates it.
	if _, err := w.RunCampaign(CampaignConfig{Sites: w.Sites[:1]}); err != nil {
		t.Fatal(err)
	}
	uuid3, _ := w.Device.StorageGet(b.Pkg.Name, "install_uuid")
	if uuid3 == uuid1 {
		t.Fatal("identifier survived factory reset")
	}
}

func TestCampaignCustomSettle(t *testing.T) {
	w := smallWorld(t, 4, "Brave")
	before := w.Clock.Now()
	if _, err := w.RunCampaign(CampaignConfig{Sites: w.Sites[:1], Settle: 30 * time.Second}); err != nil {
		t.Fatal(err)
	}
	elapsed := w.Clock.Now().Sub(before)
	if elapsed < 30*time.Second {
		t.Fatalf("virtual elapsed %v, want >= settle 30s", elapsed)
	}
}

func TestRunIdleAll(t *testing.T) {
	w := smallWorld(t, 4, "Brave", "DuckDuckGo")
	out, err := w.RunIdleAll(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("results = %d", len(out))
	}
	for name, r := range out {
		if len(r.Flows) == 0 {
			t.Errorf("%s: no idle flows", name)
		}
		if r.End.Sub(r.Start) != 2*time.Minute {
			t.Errorf("%s: window %v", name, r.End.Sub(r.Start))
		}
	}
}

func TestUnknownBrowserCampaign(t *testing.T) {
	w := smallWorld(t, 4, "Brave")
	if _, err := w.RunCampaign(CampaignConfig{Browsers: []string{"Netscape"}}); err == nil {
		t.Fatal("unknown browser accepted")
	}
	if _, err := w.RunIdle("Netscape", time.Minute); err == nil {
		t.Fatal("unknown idle browser accepted")
	}
}

func TestHungSiteNavigationTimeout(t *testing.T) {
	w := smallWorld(t, 4, "Chrome")
	// A site whose document never finishes loading: the paper's 60-second
	// ceiling (shrunk here) must fire and the campaign must continue.
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	l, _, err := w.Inet.ListenDomain("hang.example", "US", 443)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := w.PublicCA.Issue("hang.example")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		<-release
	})}
	go srv.Serve(tls.NewListener(l, &tls.Config{Certificates: []tls.Certificate{cert}}))
	t.Cleanup(func() { srv.Close() })

	hung := &websim.Site{Domain: "hang.example", Category: websim.CategoryGeneral, LoadTimeMs: 100}
	sites := []*websim.Site{hung, w.Sites[0]}
	res, err := w.RunCampaign(CampaignConfig{Sites: sites, NavigateTimeout: 700 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Visits) != 2 {
		t.Fatalf("visits = %d", len(res.Visits))
	}
	if res.Visits[0].Err == "" {
		t.Fatal("hung site did not time out")
	}
	if res.Visits[1].Err != "" {
		t.Fatalf("campaign did not recover: %+v", res.Visits[1])
	}
}

func TestVendorOutageDoesNotBreakCrawl(t *testing.T) {
	w := smallWorld(t, 4, "Yandex")
	// Take Yandex's phone-home endpoint offline: its native requests 502
	// through the proxy, but navigation succeeds.
	ip, err := w.Inet.LookupHost("sba.yandex.net")
	if err != nil {
		t.Fatal(err)
	}
	// Closing the vendor's listener simulates the outage.
	// (Re-listen is not needed; the domain keeps resolving.)
	if !w.Inet.HasListener(ip.String() + ":443") {
		t.Fatal("sba listener missing")
	}
	// Find and close via a raw dial trick: vendorsim keeps servers
	// private, so close the listener address through a fresh listener
	// conflict check instead — simplest is to drop traffic with a DROP
	// rule for that destination.
	if err := w.Device.Firewall.Exec("-t filter -A OUTPUT -d " + ip.String() + " -j DROP"); err != nil {
		t.Fatal(err)
	}
	res, err := w.RunCampaign(CampaignConfig{Sites: w.Sites[:2]})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("navigation errors = %d", res.Errors)
	}
	// The attempted phone-homes never reached the vendor.
	if got := w.Vendors.Backend("sba.yandex.net").Count(); got != 0 {
		t.Fatalf("vendor received %d requests through a DROP rule", got)
	}
}

func TestWorldCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	w, err := NewWorld(WorldConfig{Sites: 4, Profiles: []*profiles.Profile{profiles.Chrome()}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.RunCampaign(CampaignConfig{Sites: w.Sites[:2]}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Server accept loops and pooled connections wind down asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+25 {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
}
