package core

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"panoptes/internal/breaker"
	"panoptes/internal/browser"
	"panoptes/internal/capture"
	"panoptes/internal/cdp"
	"panoptes/internal/faultsim"
	"panoptes/internal/frida"
	"panoptes/internal/obs"
	"panoptes/internal/profiles"
	"panoptes/internal/taint"
	"panoptes/internal/websim"
)

// Campaign observability: visit throughput and latency are the headline
// numbers the end-of-run summary and /metrics expose.
var (
	mVisitOK      = obs.Default.Counter("core_visits_total", "result", "ok")
	mVisitErr     = obs.Default.Counter("core_visits_total", "result", "error")
	mVisitLatency = obs.Default.Histogram("core_visit_duration_seconds", nil)
	mCampaigns    = obs.Default.Counter("core_campaigns_total")
	mCampaignProg = obs.Default.Gauge("core_campaign_progress_visits")
	mBrowsersDone = obs.Default.Counter("core_browsers_crawled_total")
	mParallelism  = obs.Default.Gauge("core_campaign_parallelism")
	mVisitRetries = obs.Default.Counter("core_visit_retries")
)

func init() {
	obs.Default.Help("core_visits_total", "Page visits by outcome.")
	obs.Default.Help("core_visit_duration_seconds", "Virtual-clock duration of one visit (modelled load + settle).")
	obs.Default.Help("core_campaigns_total", "Campaigns started.")
	obs.Default.Help("core_campaign_progress_visits", "Visits completed in the currently running campaign.")
	obs.Default.Help("core_browsers_crawled_total", "Per-browser crawls completed.")
	obs.Default.Help("core_campaign_parallelism", "Worker count of the currently running campaign.")
	obs.Default.Help("core_worker_visits_total", "Visits completed by each campaign scheduler worker.")
	obs.Default.Help("core_visit_retries", "Navigation attempts retried after a failure.")
	obs.Default.Help("breaker_open_total", "Circuit-breaker open transitions, by scope (host or browser).")
	obs.Default.Help("core_teardown_errors_total", "Session/instrumentation teardown errors, by operation.")
}

// breakerOpened records a campaign breaker transition to open (the
// breaker machinery itself lives in internal/breaker).
func breakerOpened(scope string) {
	obs.Default.Counter("breaker_open_total", "scope", scope).Inc()
}

// attemptIDs issues process-unique navigation-attempt tags. Flows captured
// during an attempt carry its tag, so a failed attempt's partial traffic
// can be quarantined (capture.DB.RemoveAttempt) without touching any other
// attempt — including flows preloaded from a checkpoint, whose tags are
// cleared on resume.
var attemptIDs atomic.Int64

// CampaignConfig selects what a crawl visits and how.
type CampaignConfig struct {
	// Browsers are profile names; nil means every browser in the world.
	Browsers []string
	// Sites to visit; nil means the world's full dataset.
	Sites []*websim.Site
	// Incognito crawls in private mode (browsers without one are
	// skipped, as the paper's footnote 5 notes for Yandex and QQ).
	Incognito bool
	// SkipReset keeps app data across the campaign (used by the
	// persistent-identifier experiment).
	SkipReset bool
	// Settle is the post-DOMContentLoaded wait (paper: 5 s).
	Settle time.Duration
	// NavigateTimeout is the page-load ceiling (paper: 60 s, wall clock
	// on the CDP channel), enforced end to end: it also caps the engine's
	// per-request wall time, so a wedged origin cannot outlive it.
	NavigateTimeout time.Duration
	// Parallelism is how many browsers are crawled concurrently. Each
	// browser has its own UID, Appium session and iptables diversion, so
	// the crawl is embarrassingly parallel per browser; 1 preserves the
	// sequential behaviour and 0 (the default) means GOMAXPROCS.
	Parallelism int

	// MaxAttempts bounds navigations per site, first try included
	// (default 3). Failed attempts roll the session back, quarantine
	// their partial flows and retry with exponential backoff on the
	// virtual clock.
	MaxAttempts int
	// RetryBackoff is the base backoff between attempts, doubled per
	// retry plus deterministic jitter, advanced on the virtual clock
	// (default 500ms).
	RetryBackoff time.Duration
	// BreakerThreshold opens a circuit breaker after that many
	// consecutive failed visits against one host or one browser
	// (default 5); BreakerCooldown is how long it stays open on the
	// virtual clock (default 2 minutes). While open, visits are skipped
	// and recorded with class "breaker_open".
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// StopAfterVisits pauses the campaign after that many recorded
	// visits across all browsers (0 = run to completion); combine with
	// Checkpoint to split a crawl across processes.
	StopAfterVisits int
	// Checkpoint attaches a resumable snapshot to the result.
	Checkpoint bool
	// Resume continues a checkpointed campaign: completed (browser,
	// site) pairs are skipped, their visit records and captured flows
	// re-adopted, and each browser's session state restored.
	Resume *Checkpoint
}

func (c *CampaignConfig) defaults(w *World) {
	if c.Browsers == nil {
		for _, p := range profiles.All() {
			if _, ok := w.Browsers[p.Name]; ok {
				c.Browsers = append(c.Browsers, p.Name)
			}
		}
	}
	if c.Sites == nil {
		c.Sites = w.Sites
	}
	if c.Settle <= 0 {
		c.Settle = 5 * time.Second
	}
	if c.NavigateTimeout <= 0 {
		c.NavigateTimeout = 60 * time.Second
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 500 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Minute
	}
}

// VisitRecord is one page visit's outcome.
type VisitRecord struct {
	Browser    string
	URL        string
	LoadTimeMs int64
	Err        string
	// ErrClass is the stable classification of Err (faultsim.Classify):
	// dns, connect_refused, tls, timeout, cdp, crash, reset, http_error,
	// breaker_open, setup, ... Empty on success.
	ErrClass string
	// Attempts is how many navigation attempts the visit took (0 when it
	// never ran, e.g. skipped by an open breaker or a dead browser).
	Attempts int
}

// CampaignResult summarises a crawl.
type CampaignResult struct {
	Visits  []VisitRecord
	Skipped []string // browsers skipped (e.g. no incognito mode)
	Errors  int
	// Retries counts navigation attempts that were retried; Degraded
	// counts visits that ended with an error record instead of a page.
	Retries  int
	Degraded int
	// Stopped reports the campaign paused on StopAfterVisits rather than
	// finishing; Checkpoint carries the resumable snapshot when
	// CampaignConfig.Checkpoint was set.
	Stopped    bool
	Checkpoint *Checkpoint
}

// crawlOutcome is one browser's crawl as a worker produced it, merged
// into the CampaignResult in profile order after the pool drains.
type crawlOutcome struct {
	name      string
	visits    []VisitRecord
	completed []string
	errors    int
	retries   int
	degraded  int
	state     *browser.SessionState
}

// sharedCrawl is the cross-worker campaign state: per-host breakers and
// the recorded-visit budget.
type sharedCrawl struct {
	hosts     *breaker.Set
	committed atomic.Int64
	stopped   atomic.Bool
}

// RunCampaign reproduces §2.1's crawl procedure per browser: reset to
// factory settings via Appium, launch, click through the setup wizard,
// divert the browser's UID into the proxy, instrument (CDP or Frida) so
// every engine request is tainted, visit each site (waiting
// DOMContentLoaded plus the settle period on the virtual clock), then
// tear down.
//
// Browsers are crawled by a pool of cfg.Parallelism workers. Each
// browser is an isolated unit of work (own UID, Appium session,
// diversion rule, activity clock), so workers only contend on the
// sharded capture stores, the proxy's singleflighted cert cache and the
// serialized world clock. Per-browser visit records are collected
// privately and merged in cfg.Browsers order, making the result — and
// everything the analysis package derives from the capture databases —
// independent of the parallelism level.
//
// The crawl degrades rather than aborts: a failed visit becomes a
// VisitRecord with a classified error (its partial flows quarantined), a
// crashed or unresponsive browser is relaunched with its session
// restored, and a browser that cannot be recovered yields error records
// for its remaining sites while the other browsers finish. The only
// upfront failure is an unknown browser name.
func (w *World) RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	cfg.defaults(w)
	result := &CampaignResult{}
	mCampaigns.Inc()
	mCampaignProg.Set(0)
	mParallelism.Set(float64(cfg.Parallelism))

	// Resolve every profile up front so an unknown browser name fails
	// before any crawl starts, exactly as the sequential loop did.
	type job struct {
		idx  int
		name string
		b    *browser.Browser
	}
	var jobs []job
	for _, name := range cfg.Browsers {
		b, err := w.Browser(name)
		if err != nil {
			return nil, err
		}
		if cfg.Incognito && !b.Profile.HasIncognito {
			result.Skipped = append(result.Skipped, name)
			continue
		}
		jobs = append(jobs, job{idx: len(jobs), name: name, b: b})
	}

	// A checkpoint snapshots the stores, so it needs them fully
	// retained; refuse early rather than writing an empty snapshot.
	if cfg.Checkpoint && !w.DB.FullyRetained() {
		return nil, fmt.Errorf("core: checkpointing requires full flow retention: rerun with -retain=all (the current retention mode drops flows after streaming analysis, so the snapshot would be empty)")
	}

	// Re-adopt a checkpoint's committed flows before any crawl starts.
	// Their attempt tags are cleared: they are committed history, not
	// candidates for this run's quarantine. The commit tap replays them
	// into the streaming analyzers, so a resumed run's incremental state
	// picks up exactly where the checkpointed run left off.
	if cfg.Resume != nil {
		// The checkpointed flows were already committed — and, with an
		// export plane wired, already published — before the crash. Seed
		// the exporter's dedupe set with their IDs and fast-forward the
		// ID allocator past them, so replaying them through the tap below
		// cannot double-publish and fresh flows cannot collide.
		if w.Exporter != nil {
			var maxID int64
			ids := make([]int64, 0, len(cfg.Resume.Engine)+len(cfg.Resume.Native))
			for _, f := range append(append([]*capture.Flow{}, cfg.Resume.Engine...), cfg.Resume.Native...) {
				ids = append(ids, f.ID)
				if f.ID > maxID {
					maxID = f.ID
				}
			}
			capture.EnsureFlowIDsAbove(maxID)
			w.Exporter.SeedExported(ids)
		}
		for _, f := range cfg.Resume.Engine {
			f.Attempt = 0
			w.DB.Engine.Add(f)
		}
		for _, f := range cfg.Resume.Native {
			f.Attempt = 0
			w.DB.Native.Add(f)
		}
		result.Retries += cfg.Resume.Retries
		result.Degraded += cfg.Resume.Degraded
	}

	workers := cfg.Parallelism
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	shared := &sharedCrawl{hosts: breaker.NewSet(cfg.BreakerThreshold, cfg.BreakerCooldown)}
	outcomes := make([]crawlOutcome, len(jobs))
	jobCh := make(chan job)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(workerID int) {
			defer wg.Done()
			visits := obs.Default.Counter("core_worker_visits_total", "worker", strconv.Itoa(workerID))
			for j := range jobCh {
				outcomes[j.idx] = w.crawlBrowser(j.b, cfg, visits, shared)
				mBrowsersDone.Inc()
			}
		}(i)
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()

	// Deterministic merge: visit records in profile order, each
	// browser's sites in visit order, whatever the workers' interleaving.
	for _, out := range outcomes {
		result.Visits = append(result.Visits, out.visits...)
		result.Errors += out.errors
		result.Retries += out.retries
		result.Degraded += out.degraded
	}
	result.Stopped = shared.stopped.Load()
	if cfg.Checkpoint {
		cp := &Checkpoint{
			Incognito: cfg.Incognito,
			Browsers:  make(map[string]*BrowserCheckpoint, len(outcomes)),
			Skipped:   result.Skipped,
			Retries:   result.Retries,
			Degraded:  result.Degraded,
		}
		for _, out := range outcomes {
			cp.Browsers[out.name] = &BrowserCheckpoint{
				Completed: out.completed,
				State:     out.state,
				Visits:    out.visits,
			}
		}
		cp.Engine = w.DB.Engine.All()
		cp.Native = w.DB.Native.All()
		result.Checkpoint = cp
	}
	return result, nil
}

// retryDelay is the exponential backoff with deterministic jitter: base
// doubled per retry plus a hash fraction of it, so concurrent workers
// de-synchronize without sacrificing reproducibility.
func retryDelay(base time.Duration, attempt int, browserName, url string) time.Duration {
	d := base << uint(attempt-1)
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d", browserName, url, attempt)
	return d + time.Duration(h.Sum64()%uint64(d/2+1))
}

// crawlBrowser runs one browser's full crawl, absorbing faults: failed
// visits degrade to classified error records, crashed browsers are
// relaunched mid-crawl, and setup failures degrade every remaining site
// instead of discarding the visits already completed.
func (w *World) crawlBrowser(b *browser.Browser, cfg CampaignConfig, workerVisits *obs.Counter, shared *sharedCrawl) (out crawlOutcome) {
	name := b.Profile.Name
	out.name = name

	var bc *BrowserCheckpoint
	if cfg.Resume != nil {
		bc = cfg.Resume.Browsers[name]
	}
	completedSet := make(map[string]bool)
	if bc != nil {
		out.completed = append(out.completed, bc.Completed...)
		out.visits = append(out.visits, bc.Visits...)
		for _, url := range bc.Completed {
			completedSet[url] = true
		}
		for _, v := range bc.Visits {
			if v.Err != "" {
				out.errors++
			}
		}
	}
	resuming := bc != nil && bc.State != nil

	// degradeFrom records a classified error for every not-yet-visited
	// site from idx on — the graceful-degradation contract: a setup
	// failure or dead browser yields a partial campaign, never a lost one.
	degradeFrom := func(idx int, err error, class string) {
		msg := err.Error()
		for _, site := range cfg.Sites[idx:] {
			url := site.URL()
			if completedSet[url] {
				continue
			}
			out.visits = append(out.visits, VisitRecord{
				Browser: name, URL: url, Err: msg, ErrClass: class,
			})
			out.errors++
			out.degraded++
			out.completed = append(out.completed, url)
			mVisitErr.Inc()
		}
	}

	sess, err := w.AppiumClient.NewSession(b.Pkg.Name)
	if err != nil {
		degradeFrom(0, fmt.Errorf("appium session: %w", err), "setup")
		return out
	}
	launched := false
	defer func() {
		if launched {
			if err := sess.Terminate(); err != nil {
				obs.Default.Counter("core_teardown_errors_total", "op", "appium_terminate").Inc()
			}
		}
		if err := sess.Close(); err != nil {
			obs.Default.Counter("core_teardown_errors_total", "op", "appium_close").Inc()
		}
	}()

	if resuming {
		// Restore the persistent identifier before launch so the
		// relaunched app reads the original install UUID from storage
		// (Launch would otherwise mint a fresh one).
		if bc.State.UUID != "" {
			if err := w.Device.StoragePut(b.Pkg.Name, "install_uuid", bc.State.UUID); err != nil {
				degradeFrom(0, fmt.Errorf("resume uuid: %w", err), "setup")
				return out
			}
		}
	} else if !cfg.SkipReset {
		if err := sess.Reset(); err != nil {
			degradeFrom(0, fmt.Errorf("appium reset: %w", err), "setup")
			return out
		}
	} else if b.Running() {
		b.Stop()
	}
	if err := sess.Launch(); err != nil {
		degradeFrom(0, fmt.Errorf("appium launch: %w", err), "setup")
		return out
	}
	launched = true
	if err := sess.CompleteWizard(); err != nil {
		degradeFrom(0, fmt.Errorf("setup wizard: %w", err), "setup")
		return out
	}

	// Divert the browser's kernel UID into the transparent proxy.
	if !w.Device.DiversionActive(b.UID()) {
		if err := w.Device.DivertBrowser(b.UID(), ProxyAddr); err != nil {
			degradeFrom(0, fmt.Errorf("iptables diversion: %w", err), "setup")
			return out
		}
	}

	if cfg.Incognito {
		if err := b.SetIncognito(true); err != nil {
			degradeFrom(0, err, "setup")
			return out
		}
		defer b.SetIncognito(false)
	}

	// NavigateTimeout end to end: the engine's per-request wall ceiling
	// matches the CDP channel's, so a wedged origin cannot hold a visit
	// past it.
	b.SetNavigateTimeout(cfg.NavigateTimeout)
	if resuming {
		b.RestoreSession(bc.State)
	}

	navigate, teardown, err := w.instrument(b)
	if err != nil {
		degradeFrom(0, fmt.Errorf("instrumentation: %w", err), "setup")
		return out
	}
	defer func() {
		if err := teardown(); err != nil {
			obs.Default.Counter("core_teardown_errors_total", "op", "instrument").Inc()
		}
	}()

	// recoverBrowser brings a crashed (or CDP-wedged) browser back:
	// surface the dead instrumentation's teardown error, relaunch the
	// app (the persistent UUID survives in storage), restore the session
	// snapshot taken before the failed attempt, and re-instrument.
	recoverBrowser := func(snap *browser.SessionState) error {
		if err := teardown(); err != nil {
			obs.Default.Counter("core_teardown_errors_total", "op", "instrument").Inc()
		}
		teardown = func() error { return nil }
		if b.Running() {
			b.Stop()
		}
		if err := sess.Launch(); err != nil {
			return fmt.Errorf("relaunch: %w", err)
		}
		b.SetNavigateTimeout(cfg.NavigateTimeout)
		b.RestoreSession(snap)
		nav2, td2, err := w.instrument(b)
		if err != nil {
			return fmt.Errorf("re-instrument: %w", err)
		}
		navigate, teardown = nav2, td2
		return nil
	}

	bb := breaker.New(cfg.BreakerThreshold, cfg.BreakerCooldown)
	for siteIdx, site := range cfg.Sites {
		url := site.URL()
		if completedSet[url] {
			continue
		}
		if shared.stopped.Load() {
			// Visit budget exhausted: leave the rest for a resume.
			break
		}

		host := faultsim.HostOf(url)
		hb := shared.hosts.Get(host)
		now := w.Clock.Now()
		if !bb.Allow(now) || !hb.Allow(now) {
			rec := VisitRecord{
				Browser: name, URL: url,
				Err:      fmt.Sprintf("core: circuit breaker open for %s", host),
				ErrClass: "breaker_open",
			}
			out.visits = append(out.visits, rec)
			out.completed = append(out.completed, url)
			out.errors++
			out.degraded++
			mVisitErr.Inc()
			mCampaignProg.Inc()
			continue
		}

		visitSpan := w.Trace.Start("visit")
		visitSpan.SetAttr("browser", name)
		visitSpan.SetAttr("url", url)
		w.Trace.SetActive(b.UID(), visitSpan)

		rec := VisitRecord{Browser: name, URL: url}
		var lastErr, unrecoverable error
		for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
			rec.Attempts = attempt
			snap := b.SessionState()
			aid := attemptIDs.Add(1)
			w.Faults.BeginAttempt(b.UID(), name, url, attempt)
			w.Visits.BeginVisitAttempt(b.UID(), url, cfg.Incognito, aid)

			navSpan := visitSpan.Child("navigate")
			navSpan.SetAttr("attempt", strconv.Itoa(attempt))
			loadMs, navErr := navigate(url, cfg.NavigateTimeout)
			if navErr != nil {
				// A wall-clock timeout abandons the CDP/Frida call while
				// its handler may still be mid-navigation. Fence before
				// rolling anything back so the zombie's state mutations
				// and captured flows land inside this attempt's window
				// (and its quarantine). A navigation wedged past the
				// bound (hung origin) only resumes after the campaign's
				// goroutines join, so skipping it is race-free.
				b.Quiesce(cfg.NavigateTimeout)
			}
			w.Visits.EndVisit(b.UID())
			w.Faults.EndAttempt(b.UID())

			if navErr == nil {
				// The attempt's flows are committed: release parked
				// flows to the spill sink (retention off) and discard
				// the streaming analyzers' undo logs for the attempt.
				w.DB.SealAttempt(aid)
				// Commit: DOMContentLoaded (modelled load time) plus the
				// settle window, on the virtual clock — §2.1's wait
				// discipline. The advance is split so the navigate and
				// settle spans carry their real virtual durations.
				// Concurrent workers serialize on the world clock (flow
				// timestamps, TLS validation time) but each drives only
				// its own browser's activity clock, so a browser's idle
				// phone-home curve sees the same timeline at any
				// parallelism level.
				rec.LoadTimeMs = loadMs
				w.Clock.Advance(time.Duration(loadMs) * time.Millisecond)
				navSpan.End()
				settleSpan := visitSpan.Child("settle")
				w.Clock.Advance(cfg.Settle)
				settleSpan.End()
				b.AdvanceActivity(time.Duration(loadMs)*time.Millisecond + cfg.Settle)
				mVisitLatency.Observe((time.Duration(loadMs)*time.Millisecond + cfg.Settle).Seconds())
				lastErr = nil
				break
			}

			lastErr = navErr
			navSpan.SetAttr("error", navErr.Error())
			navSpan.End()
			// Quarantine the failed attempt's partial flows: they belong
			// to no committed visit and would otherwise pollute the
			// analyses.
			w.DB.RemoveAttempt(aid)

			switch faultsim.Classify(navErr) {
			case "crash", "cdp":
				// The app died or its DevTools socket wedged; nothing
				// short of a relaunch will answer again. Session state
				// rolls back to the pre-attempt snapshot either way.
				if rerr := recoverBrowser(snap); rerr != nil {
					unrecoverable = rerr
				}
			default:
				b.RestoreSession(snap)
			}
			if unrecoverable != nil || attempt == cfg.MaxAttempts {
				break
			}

			out.retries++
			mVisitRetries.Inc()
			delay := retryDelay(cfg.RetryBackoff, attempt, name, url)
			backoffSpan := visitSpan.Child("backoff")
			backoffSpan.SetAttr("attempt", strconv.Itoa(attempt))
			backoffSpan.SetAttr("delay", delay.String())
			w.Clock.Advance(delay)
			backoffSpan.End()
		}
		w.Trace.SetActive(b.UID(), nil)
		visitSpan.End()

		ok := lastErr == nil
		if ok {
			mVisitOK.Inc()
		} else {
			rec.Err = lastErr.Error()
			rec.ErrClass = faultsim.Classify(lastErr)
			out.errors++
			out.degraded++
			mVisitErr.Inc()
		}
		if bb.Record(ok, w.Clock.Now()) {
			breakerOpened("browser")
		}
		if hb.Record(ok, w.Clock.Now()) {
			breakerOpened("host")
		}
		out.visits = append(out.visits, rec)
		out.completed = append(out.completed, url)
		mCampaignProg.Inc()
		workerVisits.Inc()

		if unrecoverable != nil {
			degradeFrom(siteIdx+1, fmt.Errorf("browser unrecoverable: %w", unrecoverable), faultsim.Classify(unrecoverable))
			break
		}
		if cfg.StopAfterVisits > 0 && shared.committed.Add(1) >= int64(cfg.StopAfterVisits) {
			shared.stopped.Store(true)
			break
		}
	}

	if b.Running() {
		out.state = b.SessionState()
	}
	return out
}

// navigateFunc drives one page visit and returns the modelled load time.
type navigateFunc func(url string, timeout time.Duration) (int64, error)

// instrument attaches the taint-injection instrumentation: CDP Fetch
// interception for CDP browsers, a Frida request hook for the rest.
// It returns the navigation driver and a teardown whose error the
// campaign surfaces into core_teardown_errors_total.
func (w *World) instrument(b *browser.Browser) (navigateFunc, func() error, error) {
	switch b.Profile.Instrumentation {
	case profiles.InstrumentCDP:
		return w.instrumentCDP(b)
	case profiles.InstrumentFrida:
		return w.instrumentFrida(b)
	}
	return nil, nil, fmt.Errorf("unknown instrumentation %q", b.Profile.Instrumentation)
}

func (w *World) instrumentCDP(b *browser.Browser) (navigateFunc, func() error, error) {
	wsURL := b.DevToolsURL()
	client, err := cdp.Dial(wsURL, func(addr string) (net.Conn, error) {
		return w.Inet.Dial(context.Background(), addr)
	})
	if err != nil {
		return nil, nil, fmt.Errorf("cdp dial %s: %w", wsURL, err)
	}
	for _, m := range []string{cdp.MethodPageEnable, cdp.MethodNetworkEnable, cdp.MethodFetchEnable} {
		if err := client.Call(m, nil, nil); err != nil {
			client.Close()
			return nil, nil, fmt.Errorf("%s: %w", m, err)
		}
	}
	// The taint injector: every paused engine request is continued with
	// the campaign token added (§2.3).
	client.On(cdp.EventRequestPaused, func(raw json.RawMessage) {
		var p cdp.RequestPausedParams
		if err := json.Unmarshal(raw, &p); err != nil {
			return
		}
		sp := w.Trace.Active(b.UID()).Child("cdp.intercept")
		headers := taint.InjectCDP(p.Request.Headers, w.Token)
		go func() {
			client.Call(cdp.MethodFetchContinue, cdp.ContinueParams{
				RequestID: p.RequestID, Headers: headers,
			}, nil)
			sp.End()
		}()
	})

	nav := func(url string, timeout time.Duration) (int64, error) {
		var res cdp.NavigateResult
		if err := client.CallTimeout(cdp.MethodPageNavigate, cdp.NavigateParams{URL: url}, &res, timeout); err != nil {
			return 0, err
		}
		if res.ErrorText != "" {
			return res.LoadTimeMs, fmt.Errorf("navigation: %s", res.ErrorText)
		}
		return res.LoadTimeMs, nil
	}
	teardown := func() error {
		callErr := client.Call(cdp.MethodFetchDisable, nil, nil)
		closeErr := client.Close()
		if callErr != nil {
			return callErr
		}
		return closeErr
	}
	return nav, teardown, nil
}

func (w *World) instrumentFrida(b *browser.Browser) (navigateFunc, func() error, error) {
	sess, err := frida.Attach(w.FridaDev, b.Pkg.Name)
	if err != nil {
		return nil, nil, err
	}
	token := w.Token
	uid := b.UID()
	if err := sess.InterceptRequests(func(req *http.Request) error {
		sp := w.Trace.Active(uid).Child("frida.intercept")
		taint.Inject(req.Header, token)
		sp.End()
		return nil
	}); err != nil {
		return nil, nil, err
	}
	nav := func(url string, timeout time.Duration) (int64, error) {
		// Frida's RPC has no deadline of its own; bound it here so
		// NavigateTimeout holds for Frida browsers too.
		type loadResult struct {
			ms  int64
			err error
		}
		ch := make(chan loadResult, 1)
		go func() {
			ms, err := sess.CallLoadURL(url)
			ch <- loadResult{ms, err}
		}()
		select {
		case r := <-ch:
			return r.ms, r.err
		case <-time.After(timeout):
			return 0, fmt.Errorf("frida: LoadURL %s timed out after %v", url, timeout)
		}
	}
	teardown := func() error {
		sess.Detach()
		return nil
	}
	return nav, teardown, nil
}
