package core

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"panoptes/internal/browser"
	"panoptes/internal/cdp"
	"panoptes/internal/frida"
	"panoptes/internal/obs"
	"panoptes/internal/profiles"
	"panoptes/internal/taint"
	"panoptes/internal/websim"
)

// Campaign observability: visit throughput and latency are the headline
// numbers the end-of-run summary and /metrics expose.
var (
	mVisitOK      = obs.Default.Counter("core_visits_total", "result", "ok")
	mVisitErr     = obs.Default.Counter("core_visits_total", "result", "error")
	mVisitLatency = obs.Default.Histogram("core_visit_duration_seconds", nil)
	mCampaigns    = obs.Default.Counter("core_campaigns_total")
	mCampaignProg = obs.Default.Gauge("core_campaign_progress_visits")
	mBrowsersDone = obs.Default.Counter("core_browsers_crawled_total")
	mParallelism  = obs.Default.Gauge("core_campaign_parallelism")
)

func init() {
	obs.Default.Help("core_visits_total", "Page visits by outcome.")
	obs.Default.Help("core_visit_duration_seconds", "Virtual-clock duration of one visit (modelled load + settle).")
	obs.Default.Help("core_campaigns_total", "Campaigns started.")
	obs.Default.Help("core_campaign_progress_visits", "Visits completed in the currently running campaign.")
	obs.Default.Help("core_browsers_crawled_total", "Per-browser crawls completed.")
	obs.Default.Help("core_campaign_parallelism", "Worker count of the currently running campaign.")
	obs.Default.Help("core_worker_visits_total", "Visits completed by each campaign scheduler worker.")
}

// CampaignConfig selects what a crawl visits and how.
type CampaignConfig struct {
	// Browsers are profile names; nil means every browser in the world.
	Browsers []string
	// Sites to visit; nil means the world's full dataset.
	Sites []*websim.Site
	// Incognito crawls in private mode (browsers without one are
	// skipped, as the paper's footnote 5 notes for Yandex and QQ).
	Incognito bool
	// SkipReset keeps app data across the campaign (used by the
	// persistent-identifier experiment).
	SkipReset bool
	// Settle is the post-DOMContentLoaded wait (paper: 5 s).
	Settle time.Duration
	// NavigateTimeout is the page-load ceiling (paper: 60 s, wall clock
	// on the CDP channel).
	NavigateTimeout time.Duration
	// Parallelism is how many browsers are crawled concurrently. Each
	// browser has its own UID, Appium session and iptables diversion, so
	// the crawl is embarrassingly parallel per browser; 1 preserves the
	// sequential behaviour and 0 (the default) means GOMAXPROCS.
	Parallelism int
}

func (c *CampaignConfig) defaults(w *World) {
	if c.Browsers == nil {
		for _, p := range profiles.All() {
			if _, ok := w.Browsers[p.Name]; ok {
				c.Browsers = append(c.Browsers, p.Name)
			}
		}
	}
	if c.Sites == nil {
		c.Sites = w.Sites
	}
	if c.Settle <= 0 {
		c.Settle = 5 * time.Second
	}
	if c.NavigateTimeout <= 0 {
		c.NavigateTimeout = 60 * time.Second
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
}

// VisitRecord is one page visit's outcome.
type VisitRecord struct {
	Browser    string
	URL        string
	LoadTimeMs int64
	Err        string
}

// CampaignResult summarises a crawl.
type CampaignResult struct {
	Visits  []VisitRecord
	Skipped []string // browsers skipped (e.g. no incognito mode)
	Errors  int
}

// crawlOutcome is one browser's crawl as a worker produced it, merged
// into the CampaignResult in profile order after the pool drains.
type crawlOutcome struct {
	visits []VisitRecord
	errors int
	err    error
}

// RunCampaign reproduces §2.1's crawl procedure per browser: reset to
// factory settings via Appium, launch, click through the setup wizard,
// divert the browser's UID into the proxy, instrument (CDP or Frida) so
// every engine request is tainted, visit each site (waiting
// DOMContentLoaded plus the settle period on the virtual clock), then
// tear down.
//
// Browsers are crawled by a pool of cfg.Parallelism workers. Each
// browser is an isolated unit of work (own UID, Appium session,
// diversion rule, activity clock), so workers only contend on the
// sharded capture stores, the proxy's singleflighted cert cache and the
// serialized world clock. Per-browser visit records are collected
// privately and merged in cfg.Browsers order, making the result — and
// everything the analysis package derives from the capture databases —
// independent of the parallelism level.
func (w *World) RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	cfg.defaults(w)
	result := &CampaignResult{}
	mCampaigns.Inc()
	mCampaignProg.Set(0)
	mParallelism.Set(float64(cfg.Parallelism))

	// Resolve every profile up front so an unknown browser name fails
	// before any crawl starts, exactly as the sequential loop did.
	type job struct {
		idx  int
		name string
		b    *browser.Browser
	}
	var jobs []job
	for _, name := range cfg.Browsers {
		b, err := w.Browser(name)
		if err != nil {
			return nil, err
		}
		if cfg.Incognito && !b.Profile.HasIncognito {
			result.Skipped = append(result.Skipped, name)
			continue
		}
		jobs = append(jobs, job{idx: len(jobs), name: name, b: b})
	}

	workers := cfg.Parallelism
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	outcomes := make([]crawlOutcome, len(jobs))
	jobCh := make(chan job)
	var wg sync.WaitGroup
	var failed atomic.Bool
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(workerID int) {
			defer wg.Done()
			visits := obs.Default.Counter("core_worker_visits_total", "worker", strconv.Itoa(workerID))
			for j := range jobCh {
				if failed.Load() {
					// A browser already failed: stop starting new crawls,
					// mirroring the sequential early return. In-flight
					// browsers on other workers run to completion.
					continue
				}
				out := w.crawlBrowser(j.b, cfg, visits)
				outcomes[j.idx] = out
				if out.err != nil {
					failed.Store(true)
				} else {
					mBrowsersDone.Inc()
				}
			}
		}(i)
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()

	// Deterministic merge: visit records in profile order, each
	// browser's sites in visit order; the error reported is the first in
	// profile order, matching what the sequential loop would have hit.
	var firstErr error
	for i, out := range outcomes {
		result.Visits = append(result.Visits, out.visits...)
		result.Errors += out.errors
		if out.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: campaign on %s: %w", jobs[i].name, out.err)
		}
	}
	if firstErr != nil {
		return result, firstErr
	}
	return result, nil
}

// crawlBrowser runs one browser's full crawl.
func (w *World) crawlBrowser(b *browser.Browser, cfg CampaignConfig, workerVisits *obs.Counter) (out crawlOutcome) {
	sess, err := w.AppiumClient.NewSession(b.Pkg.Name)
	if err != nil {
		out.err = err
		return out
	}
	defer sess.Close()

	if !cfg.SkipReset {
		if err := sess.Reset(); err != nil {
			out.err = fmt.Errorf("appium reset: %w", err)
			return out
		}
	} else if b.Running() {
		b.Stop()
	}
	if err := sess.Launch(); err != nil {
		out.err = fmt.Errorf("appium launch: %w", err)
		return out
	}
	defer sess.Terminate()
	if err := sess.CompleteWizard(); err != nil {
		out.err = fmt.Errorf("setup wizard: %w", err)
		return out
	}

	// Divert the browser's kernel UID into the transparent proxy.
	if !w.Device.DiversionActive(b.UID()) {
		if err := w.Device.DivertBrowser(b.UID(), ProxyAddr); err != nil {
			out.err = fmt.Errorf("iptables diversion: %w", err)
			return out
		}
	}

	if cfg.Incognito {
		if err := b.SetIncognito(true); err != nil {
			out.err = err
			return out
		}
		defer b.SetIncognito(false)
	}

	navigate, teardown, err := w.instrument(b)
	if err != nil {
		out.err = fmt.Errorf("instrumentation: %w", err)
		return out
	}
	defer teardown()

	for _, site := range cfg.Sites {
		url := site.URL()
		visitSpan := w.Trace.Start("visit")
		visitSpan.SetAttr("browser", b.Profile.Name)
		visitSpan.SetAttr("url", url)
		w.Trace.SetActive(b.UID(), visitSpan)
		w.Visits.BeginVisit(b.UID(), url, cfg.Incognito)

		navSpan := visitSpan.Child("navigate")
		loadMs, navErr := navigate(url, cfg.NavigateTimeout)
		rec := VisitRecord{Browser: b.Profile.Name, URL: url, LoadTimeMs: loadMs}
		if navErr != nil {
			rec.Err = navErr.Error()
			out.errors++
			navSpan.SetAttr("error", navErr.Error())
			mVisitErr.Inc()
		} else {
			mVisitOK.Inc()
		}
		// DOMContentLoaded (modelled load time) plus the settle window,
		// on the virtual clock — §2.1's wait discipline. The advance is
		// split so the navigate and settle spans carry their real virtual
		// durations. Concurrent workers serialize on the world clock
		// (flow timestamps, TLS validation time) but each drives only its
		// own browser's activity clock, so a browser's idle phone-home
		// curve sees the same timeline at any parallelism level.
		w.Clock.Advance(time.Duration(loadMs) * time.Millisecond)
		navSpan.End()
		settleSpan := visitSpan.Child("settle")
		w.Clock.Advance(cfg.Settle)
		settleSpan.End()
		b.AdvanceActivity(time.Duration(loadMs)*time.Millisecond + cfg.Settle)

		w.Visits.EndVisit(b.UID())
		w.Trace.SetActive(b.UID(), nil)
		visitSpan.End()
		mVisitLatency.Observe((time.Duration(loadMs)*time.Millisecond + cfg.Settle).Seconds())
		mCampaignProg.Inc()
		workerVisits.Inc()
		out.visits = append(out.visits, rec)
	}
	return out
}

// navigateFunc drives one page visit and returns the modelled load time.
type navigateFunc func(url string, timeout time.Duration) (int64, error)

// instrument attaches the taint-injection instrumentation: CDP Fetch
// interception for CDP browsers, a Frida request hook for the rest.
// It returns the navigation driver and a teardown.
func (w *World) instrument(b *browser.Browser) (navigateFunc, func(), error) {
	switch b.Profile.Instrumentation {
	case profiles.InstrumentCDP:
		return w.instrumentCDP(b)
	case profiles.InstrumentFrida:
		return w.instrumentFrida(b)
	}
	return nil, nil, fmt.Errorf("unknown instrumentation %q", b.Profile.Instrumentation)
}

func (w *World) instrumentCDP(b *browser.Browser) (navigateFunc, func(), error) {
	wsURL := b.DevToolsURL()
	client, err := cdp.Dial(wsURL, func(addr string) (net.Conn, error) {
		return w.Inet.Dial(context.Background(), addr)
	})
	if err != nil {
		return nil, nil, fmt.Errorf("cdp dial %s: %w", wsURL, err)
	}
	for _, m := range []string{cdp.MethodPageEnable, cdp.MethodNetworkEnable, cdp.MethodFetchEnable} {
		if err := client.Call(m, nil, nil); err != nil {
			client.Close()
			return nil, nil, fmt.Errorf("%s: %w", m, err)
		}
	}
	// The taint injector: every paused engine request is continued with
	// the campaign token added (§2.3).
	client.On(cdp.EventRequestPaused, func(raw json.RawMessage) {
		var p cdp.RequestPausedParams
		if err := json.Unmarshal(raw, &p); err != nil {
			return
		}
		sp := w.Trace.Active(b.UID()).Child("cdp.intercept")
		headers := taint.InjectCDP(p.Request.Headers, w.Token)
		go func() {
			client.Call(cdp.MethodFetchContinue, cdp.ContinueParams{
				RequestID: p.RequestID, Headers: headers,
			}, nil)
			sp.End()
		}()
	})

	nav := func(url string, timeout time.Duration) (int64, error) {
		var res cdp.NavigateResult
		if err := client.CallTimeout(cdp.MethodPageNavigate, cdp.NavigateParams{URL: url}, &res, timeout); err != nil {
			return 0, err
		}
		if res.ErrorText != "" {
			return res.LoadTimeMs, fmt.Errorf("navigation: %s", res.ErrorText)
		}
		return res.LoadTimeMs, nil
	}
	teardown := func() {
		client.Call(cdp.MethodFetchDisable, nil, nil)
		client.Close()
	}
	return nav, teardown, nil
}

func (w *World) instrumentFrida(b *browser.Browser) (navigateFunc, func(), error) {
	sess, err := frida.Attach(w.FridaDev, b.Pkg.Name)
	if err != nil {
		return nil, nil, err
	}
	token := w.Token
	uid := b.UID()
	if err := sess.InterceptRequests(func(req *http.Request) error {
		sp := w.Trace.Active(uid).Child("frida.intercept")
		taint.Inject(req.Header, token)
		sp.End()
		return nil
	}); err != nil {
		return nil, nil, err
	}
	nav := func(url string, timeout time.Duration) (int64, error) {
		return sess.CallLoadURL(url)
	}
	return nav, sess.Detach, nil
}
