package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"panoptes/internal/analysis"
	"panoptes/internal/faultsim"
	"panoptes/internal/leak"
	"panoptes/internal/pii"
	"panoptes/internal/profiles"
)

// dataPlaneWorld is smallWorld with the transport knobs exposed: cold
// disables both TLS session resumption and upstream connection reuse,
// so every exchange pays a fresh dial and a full handshake — the
// reference data plane the warm (resumed + pooled) variants must be
// byte-identical to. Dolphin joins the fault fleet so the WebSocket
// telemetry path is under the contract, and the transport list is the
// explicit -transports=h1,h2,ws,doh form (with the UDP/443 block
// active, its default), pinning the acceptance ablation: dissecting
// every transport must not cost a byte of determinism.
func dataPlaneWorld(t *testing.T, cold bool) *World {
	t.Helper()
	var profs []*profiles.Profile
	for _, n := range append(faultBrowsers, "Dolphin") {
		p := profiles.ByName(n)
		if p == nil {
			t.Fatalf("no profile %q", n)
		}
		profs = append(profs, p)
	}
	w, err := NewWorld(WorldConfig{
		Sites:            3,
		Profiles:         profs,
		DisableKeepAlive: cold,
		DisableTLSResume: cold,
		Transports:       []string{"h1", "h2", "ws", "doh"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

// dataPlaneResult bundles the determinism-contract outputs of one
// campaign run together with the world that produced them, so callers
// can also inspect transport counters.
type dataPlaneResult struct {
	fig2   []analysis.Fig2Row
	matrix pii.Matrix
	leaks  []leak.Finding
	res    *CampaignResult
	world  *World
}

// runDataPlaneCampaign crawls 3 sites with faultBrowsers over either
// the cold or the warm data plane and returns the analyses. Mirrors
// runFaultCampaign, adding the cold knob and the world handle.
func runDataPlaneCampaign(t *testing.T, parallelism int, cold, faulty, viaCheckpoint bool) dataPlaneResult {
	t.Helper()
	newWorld := func() *World {
		w := dataPlaneWorld(t, cold)
		if faulty {
			plan := keystonePlan()
			// Pool poison is chaos-mode: it only forces redials, which
			// must not change a single analysis byte.
			plan.ChaosRates = map[faultsim.Kind]float64{faultsim.PoolPoison: 0.3}
			w.InstallFaults(faultsim.New(plan))
		}
		return w
	}
	base := CampaignConfig{Parallelism: parallelism, NavigateTimeout: 20 * time.Second}

	w := newWorld()
	var res *CampaignResult
	if !viaCheckpoint {
		r, err := w.RunCampaign(base)
		if err != nil {
			t.Fatal(err)
		}
		res = r
	} else {
		first := base
		first.StopAfterVisits = 4
		first.Checkpoint = true
		r1, err := w.RunCampaign(first)
		if err != nil {
			t.Fatal(err)
		}
		if !r1.Stopped || r1.Checkpoint == nil {
			t.Fatalf("campaign did not stop on budget: stopped=%v checkpoint=%v", r1.Stopped, r1.Checkpoint != nil)
		}
		data, err := json.Marshal(r1.Checkpoint)
		if err != nil {
			t.Fatal(err)
		}
		cp := &Checkpoint{}
		if err := json.Unmarshal(data, cp); err != nil {
			t.Fatal(err)
		}
		w = newWorld()
		second := base
		second.Resume = cp
		r2, err := w.RunCampaign(second)
		if err != nil {
			t.Fatal(err)
		}
		res = r2
	}

	assertStreamingMatchesBatch(t, w)

	var browsers []string
	for _, v := range res.Visits {
		if len(browsers) == 0 || browsers[len(browsers)-1] != v.Browser {
			browsers = append(browsers, v.Browser)
		}
	}
	fig2 := analysis.Fig2(w.DB, browsers)
	matrix, _ := analysis.Table2(w.DB.Native, browsers)
	leaks := analysis.HistoryLeaks(w.DB.Native)
	for i := range leaks {
		leaks[i].FlowID = 0 // process-global ticket numbers, not data
	}
	return dataPlaneResult{fig2: fig2, matrix: matrix, leaks: leaks, res: res, world: w}
}

// marshalAnalyses flattens a run's analyses to one JSON blob so the
// determinism contract is literally byte equality.
func marshalAnalyses(t *testing.T, r dataPlaneResult) []byte {
	t.Helper()
	blob, err := json.Marshal(struct {
		Fig2   []analysis.Fig2Row
		Matrix pii.Matrix
		Leaks  []leak.Finding
	}{r.fig2, r.matrix, r.leaks})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestDataPlaneDeterminism is the perf PR's keystone: campaigns run
// over the warm data plane — TLS session resumption on both sides of
// the proxy plus upstream connection reuse, with pool poison forcing
// occasional redials — produce byte-identical analyses to the cold
// full-handshake, dial-per-exchange path, straight through and via
// checkpoint/resume, at parallelism 1 and 8.
func TestDataPlaneDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("seven multi-browser crawls")
	}

	coldRef := runDataPlaneCampaign(t, 1, true, false, false)
	if coldRef.res.Errors != 0 {
		t.Fatalf("cold baseline had %d errors: %+v", coldRef.res.Errors, coldRef.res.Visits)
	}
	refBlob := marshalAnalyses(t, coldRef)
	if cr, _, ur, _ := coldRef.world.Proxy.ResumptionStats(); cr != 0 || ur != 0 {
		t.Fatalf("cold world resumed handshakes: client=%d upstream=%d, want 0", cr, ur)
	}
	if reused, _ := coldRef.world.Proxy.ConnReuseStats(); reused != 0 {
		t.Fatalf("cold world reused %d upstream conns, want 0", reused)
	}

	type variant struct {
		name          string
		parallelism   int
		faulty        bool
		viaCheckpoint bool
	}
	variants := []variant{
		{"warm/p1", 1, false, false},
		{"warm/p8", 8, false, false},
		{"warm-faulted/p1", 1, true, false},
		{"warm-faulted/p8", 8, true, false},
		{"warm-faulted-resume/p1", 1, true, true},
		{"warm-faulted-resume/p8", 8, true, true},
	}
	for _, v := range variants {
		r := runDataPlaneCampaign(t, v.parallelism, false, v.faulty, v.viaCheckpoint)
		if r.res.Errors != 0 {
			t.Fatalf("%s: %d visits failed terminally: %+v", v.name, r.res.Errors, r.res.Visits)
		}
		if blob := marshalAnalyses(t, r); !bytes.Equal(blob, refBlob) {
			t.Errorf("%s: analyses diverge from the cold data plane:\ngot  %s\nwant %s", v.name, blob, refBlob)
		}
		if !v.faulty {
			// Same converging world, so the visit ledger must match the
			// cold run exactly too.
			if !reflect.DeepEqual(r.res.Visits, coldRef.res.Visits) {
				t.Errorf("%s: visit records diverge from cold baseline:\ngot  %+v\nwant %+v", v.name, r.res.Visits, coldRef.res.Visits)
			}
		}
		_, _, upResumed, _ := r.world.Proxy.ResumptionStats()
		reused, dialed := r.world.Proxy.ConnReuseStats()
		if reused == 0 {
			t.Errorf("%s: warm world never reused an upstream conn (dialed %d)", v.name, dialed)
		}
		if upResumed == 0 {
			t.Errorf("%s: warm world never resumed an upstream TLS session", v.name)
		}
		if v.faulty {
			if got := r.world.Faults.Counts()[faultsim.PoolPoison]; got == 0 {
				t.Errorf("%s: pool poison never fired; the redial path went untested", v.name)
			}
		}
	}
}
