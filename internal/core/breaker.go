package core

import (
	"sync"
	"time"

	"panoptes/internal/obs"
)

// breaker is a consecutive-failure circuit breaker on the virtual clock.
// After threshold consecutive failures it opens for cooldown; while open,
// callers skip the protected operation (the visit is recorded as degraded
// with class "breaker_open" instead of burning retries against a target
// that is clearly down). Breakers observe committed visit outcomes, not
// individual attempts: a visit that fails once and then commits keeps the
// breaker closed, so converging fault plans never trip it and the
// determinism contract holds.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	fails     int
	openUntil time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether the protected operation may run at now.
func (br *breaker) allow(now time.Time) bool {
	br.mu.Lock()
	defer br.mu.Unlock()
	return !now.Before(br.openUntil)
}

// record feeds one outcome in; it returns true when this failure opened
// the breaker (the caller bumps breaker_open_total).
func (br *breaker) record(ok bool, now time.Time) bool {
	br.mu.Lock()
	defer br.mu.Unlock()
	if ok {
		br.fails = 0
		return false
	}
	br.fails++
	if br.fails < br.threshold {
		return false
	}
	br.fails = 0
	br.openUntil = now.Add(br.cooldown)
	return true
}

// breakerSet is a lazily-populated keyed breaker map (per-host breakers
// are shared by every worker; per-browser breakers live in the worker).
type breakerSet struct {
	threshold int
	cooldown  time.Duration

	mu sync.Mutex
	m  map[string]*breaker
}

func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	return &breakerSet{threshold: threshold, cooldown: cooldown, m: make(map[string]*breaker)}
}

func (s *breakerSet) get(key string) *breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	br := s.m[key]
	if br == nil {
		br = newBreaker(s.threshold, s.cooldown)
		s.m[key] = br
	}
	return br
}

// breakerOpened records a breaker transition to open.
func breakerOpened(scope string) {
	obs.Default.Counter("breaker_open_total", "scope", scope).Inc()
}
