// Package taint implements the paper's core mechanism (§2.3): every HTTP
// request the web engine issues is tainted with an additional custom
// 'x-'-prefixed header (injected through CDP Fetch interception, or a
// Frida hook for browsers without CDP); the MITM proxy's splitting addon
// then classifies each intercepted request — tainted means the website
// generated it, untainted means the browser app generated it natively —
// strips the marker, and files the flow into the engine or native
// database.
package taint

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"sync"

	"panoptes/internal/capture"
	"panoptes/internal/cdp"
)

// HeaderName is the taint marker header. The 'x-' prefix keeps it clear
// of standard headers so it cannot interfere with site behaviour.
const HeaderName = "X-Panoptes-Taint"

// NewToken returns a fresh campaign taint token. Using a random value
// (rather than a constant) means a website echoing or predicting the
// header cannot forge engine classification.
func NewToken() string {
	b := make([]byte, 16)
	if _, err := rand.Read(b); err != nil {
		panic("taint: entropy unavailable: " + err.Error())
	}
	return hex.EncodeToString(b)
}

// Inject adds the taint header to an outgoing request's header map.
func Inject(h http.Header, token string) {
	h.Set(HeaderName, token)
}

// InjectCDP returns the header list for a cdp Fetch.continueRequest that
// re-sends the original headers plus the taint marker — exactly what the
// Panoptes host sends for every Fetch.requestPaused event.
func InjectCDP(orig map[string]string, token string) []cdp.HeaderEntry {
	out := make([]cdp.HeaderEntry, 0, len(orig)+1)
	out = append(out, cdp.HeaderEntry{Name: HeaderName, Value: token})
	for k, v := range orig {
		if http.CanonicalHeaderKey(k) == HeaderName {
			continue
		}
		out = append(out, cdp.HeaderEntry{Name: k, Value: v})
	}
	return out
}

// SplitterAddon is the custom MITM addon: it inspects every intercepted
// request, classifies it by the taint header, strips the header before
// the request is forwarded to its original destination, annotates the
// flow with the active visit, and stores it in the matching database.
type SplitterAddon struct {
	Token  string
	DB     *capture.DB
	Visits *capture.VisitContext

	mu         sync.Mutex
	mismatched int // tainted header present but wrong token
}

// NewSplitter builds the addon.
func NewSplitter(token string, db *capture.DB, visits *capture.VisitContext) *SplitterAddon {
	return &SplitterAddon{Token: token, DB: db, Visits: visits}
}

// Request implements mitm.Addon.
func (a *SplitterAddon) Request(f *capture.Flow, req *http.Request) {
	val := req.Header.Get(HeaderName)
	switch {
	case val == a.Token:
		f.Origin = capture.OriginEngine
	case val != "":
		// A forged or stale taint: treat as native but count it.
		a.mu.Lock()
		a.mismatched++
		a.mu.Unlock()
		f.Origin = capture.OriginNative
	default:
		f.Origin = capture.OriginNative
	}
	// Strip the marker so the destination never sees instrumentation.
	req.Header.Del(HeaderName)
	if f.Headers != nil {
		f.Headers.Del(HeaderName)
	}

	if a.Visits != nil {
		v := a.Visits.Lookup(f.BrowserUID)
		f.Browser = v.Browser
		f.VisitURL = v.URL
		f.Incognito = v.Incognito
		f.Attempt = v.Attempt
	}
	a.DB.StoreFor(f.Origin).Add(f)
}

// Response implements mitm.Addon; the splitter classifies on requests
// only.
func (a *SplitterAddon) Response(f *capture.Flow, resp *http.Response) {}

// Mismatched reports how many requests carried a non-campaign taint
// value.
func (a *SplitterAddon) Mismatched() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.mismatched
}
