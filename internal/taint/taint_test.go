package taint

import (
	"net/http"
	"testing"

	"panoptes/internal/capture"
)

func TestNewTokenUnique(t *testing.T) {
	a, b := NewToken(), NewToken()
	if a == b {
		t.Fatal("tokens collide")
	}
	if len(a) != 32 {
		t.Fatalf("token length = %d", len(a))
	}
}

func TestInject(t *testing.T) {
	h := http.Header{}
	Inject(h, "tok")
	if h.Get(HeaderName) != "tok" {
		t.Fatalf("header = %q", h.Get(HeaderName))
	}
}

func TestInjectCDP(t *testing.T) {
	orig := map[string]string{
		"User-Agent":       "sim",
		"Accept":           "*/*",
		"x-panoptes-taint": "stale", // must be replaced, not duplicated
	}
	entries := InjectCDP(orig, "fresh")
	var taintCount int
	var taintVal string
	names := map[string]bool{}
	for _, e := range entries {
		names[http.CanonicalHeaderKey(e.Name)] = true
		if http.CanonicalHeaderKey(e.Name) == HeaderName {
			taintCount++
			taintVal = e.Value
		}
	}
	if taintCount != 1 || taintVal != "fresh" {
		t.Fatalf("taint entries = %d val %q", taintCount, taintVal)
	}
	if !names["User-Agent"] || !names["Accept"] {
		t.Fatalf("original headers lost: %v", names)
	}
}

func TestSplitterClassification(t *testing.T) {
	db := capture.NewDB()
	vc := capture.NewVisitContext()
	vc.SetBrowser(10001, "Kiwi")
	vc.BeginVisit(10001, "https://page.example/", false)
	s := NewSplitter("tok", db, vc)

	mk := func(taintVal string) (*capture.Flow, *http.Request) {
		f := &capture.Flow{ID: capture.NextFlowID(), BrowserUID: 10001,
			Host: "dest.example", Headers: http.Header{}}
		req, _ := http.NewRequest("GET", "https://dest.example/", nil)
		if taintVal != "" {
			req.Header.Set(HeaderName, taintVal)
			f.Headers.Set(HeaderName, taintVal)
		}
		return f, req
	}

	f1, r1 := mk("tok")
	s.Request(f1, r1)
	if f1.Origin != capture.OriginEngine {
		t.Fatalf("origin = %s", f1.Origin)
	}
	if r1.Header.Get(HeaderName) != "" || f1.Headers.Get(HeaderName) != "" {
		t.Fatal("taint header not stripped")
	}
	if f1.Browser != "Kiwi" || f1.VisitURL != "https://page.example/" {
		t.Fatalf("annotation = %+v", f1)
	}

	f2, r2 := mk("")
	s.Request(f2, r2)
	if f2.Origin != capture.OriginNative {
		t.Fatalf("untainted origin = %s", f2.Origin)
	}

	f3, r3 := mk("forged")
	s.Request(f3, r3)
	if f3.Origin != capture.OriginNative || s.Mismatched() != 1 {
		t.Fatalf("forged origin = %s mismatched = %d", f3.Origin, s.Mismatched())
	}

	if db.Engine.Len() != 1 || db.Native.Len() != 2 {
		t.Fatalf("engine=%d native=%d", db.Engine.Len(), db.Native.Len())
	}
}

func TestSplitterNilVisits(t *testing.T) {
	db := capture.NewDB()
	s := NewSplitter("tok", db, nil)
	f := &capture.Flow{BrowserUID: 1}
	req, _ := http.NewRequest("GET", "https://x.example/", nil)
	s.Request(f, req) // must not panic
	if db.Native.Len() != 1 {
		t.Fatal("flow not stored")
	}
	s.Response(f, nil) // no-op
}
