// Package h2 is the frame-level HTTP/2 data plane Panoptes speaks when
// a connection negotiates "h2" via ALPN: binary framing (connection
// preface, SETTINGS exchange, HEADERS/DATA streams, PING/GOAWAY) with a
// deliberately small HPACK subset — every header field is encoded as a
// "literal header field never indexed" with raw (non-Huffman) strings,
// which is valid HPACK any compliant peer can decode. Both halves of
// every h2 connection in the testbed are this package (browser client →
// MITM server, MITM client → vendor server), so the decoder only needs
// to accept the subset the encoder emits and rejects dynamic-table and
// Huffman forms with a clean error instead of desynchronising.
//
// Streams are strictly sequential (1, 3, 5, ...): the callers exchange
// one request at a time per connection, which keeps flow control moot
// for the testbed's small bodies and makes the capture order — and
// therefore every downstream analysis — deterministic.
package h2

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// ProtoName is the ALPN protocol identifier.
const ProtoName = "h2"

// ClientPreface is the fixed connection preface every h2 client sends.
const ClientPreface = "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"

// Frame types (RFC 9113 §6).
const (
	frameData         = 0x0
	frameHeaders      = 0x1
	frameRSTStream    = 0x3
	frameSettings     = 0x4
	framePing         = 0x6
	frameGoAway       = 0x7
	frameWindowUpdate = 0x8
)

// Frame flags.
const (
	flagEndStream  = 0x1
	flagAck        = 0x1 // SETTINGS and PING reuse bit 0
	flagEndHeaders = 0x4
)

// maxFrameLen bounds any frame this implementation reads or writes: the
// testbed's bodies are capped well below it, so anything larger is a
// protocol error, not a legitimate payload.
const maxFrameLen = 1 << 20

// writeFrame emits one frame (header + payload) without flushing.
func writeFrame(bw *bufio.Writer, typ, flags byte, stream uint32, payload []byte) error {
	if len(payload) > maxFrameLen {
		return fmt.Errorf("h2: frame payload %d exceeds limit", len(payload))
	}
	var hdr [9]byte
	hdr[0] = byte(len(payload) >> 16)
	hdr[1] = byte(len(payload) >> 8)
	hdr[2] = byte(len(payload))
	hdr[3] = typ
	hdr[4] = flags
	binary.BigEndian.PutUint32(hdr[5:], stream&0x7fffffff)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	_, err := bw.Write(payload)
	return err
}

// readFrame reads one frame header and its payload.
func readFrame(br *bufio.Reader) (typ, flags byte, stream uint32, payload []byte, err error) {
	var hdr [9]byte
	if _, err = io.ReadFull(br, hdr[:]); err != nil {
		return
	}
	n := int(hdr[0])<<16 | int(hdr[1])<<8 | int(hdr[2])
	if n > maxFrameLen {
		err = fmt.Errorf("h2: frame payload %d exceeds limit", n)
		return
	}
	typ, flags = hdr[3], hdr[4]
	stream = binary.BigEndian.Uint32(hdr[5:]) & 0x7fffffff
	payload = make([]byte, n)
	_, err = io.ReadFull(br, payload)
	return
}

// --- HPACK subset ---

// appendHpackInt appends v as an HPACK integer with an n-bit prefix,
// first byte pre-filled with the representation's pattern bits.
func appendHpackInt(b []byte, pattern byte, nbits uint, v int) []byte {
	max := (1 << nbits) - 1
	if v < max {
		return append(b, pattern|byte(v))
	}
	b = append(b, pattern|byte(max))
	v -= max
	for v >= 128 {
		b = append(b, byte(v&0x7f)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// readHpackInt decodes an HPACK integer with an n-bit prefix.
func readHpackInt(b []byte, nbits uint) (v, n int, err error) {
	if len(b) == 0 {
		return 0, 0, io.ErrUnexpectedEOF
	}
	max := (1 << nbits) - 1
	v = int(b[0]) & max
	n = 1
	if v < max {
		return v, n, nil
	}
	shift := uint(0)
	for {
		if n >= len(b) {
			return 0, 0, io.ErrUnexpectedEOF
		}
		c := b[n]
		n++
		v += int(c&0x7f) << shift
		shift += 7
		if c&0x80 == 0 {
			return v, n, nil
		}
		if shift > 28 {
			return 0, 0, fmt.Errorf("h2: hpack integer overflow")
		}
	}
}

// appendHpackString appends a raw (non-Huffman) HPACK string.
func appendHpackString(b []byte, s string) []byte {
	b = appendHpackInt(b, 0x00, 7, len(s))
	return append(b, s...)
}

// readHpackString decodes one HPACK string, rejecting Huffman coding
// (the encoder in this package never emits it).
func readHpackString(b []byte) (s string, n int, err error) {
	if len(b) == 0 {
		return "", 0, io.ErrUnexpectedEOF
	}
	if b[0]&0x80 != 0 {
		return "", 0, fmt.Errorf("h2: hpack huffman string not supported")
	}
	l, n, err := readHpackInt(b, 7)
	if err != nil {
		return "", 0, err
	}
	if n+l > len(b) {
		return "", 0, io.ErrUnexpectedEOF
	}
	return string(b[n : n+l]), n + l, nil
}

// field is one header field in wire order.
type field struct{ name, value string }

// encodeFields renders fields as literal-never-indexed HPACK entries.
func encodeFields(fields []field) []byte {
	var b []byte
	for _, f := range fields {
		// 0001xxxx: literal header field never indexed, new name.
		b = appendHpackInt(b, 0x10, 4, 0)
		b = appendHpackString(b, f.name)
		b = appendHpackString(b, f.value)
	}
	return b
}

// decodeFields parses a header block of the subset this package emits:
// literal fields (never-indexed or without-indexing) with literal names.
// Indexed fields, incremental indexing and table-size updates are
// protocol errors here — no peer in the testbed produces them.
func decodeFields(b []byte) ([]field, error) {
	var out []field
	for len(b) > 0 {
		switch {
		case b[0]&0x80 != 0:
			return nil, fmt.Errorf("h2: hpack indexed field not supported")
		case b[0]&0x40 != 0:
			return nil, fmt.Errorf("h2: hpack incremental indexing not supported")
		case b[0]&0x20 != 0:
			return nil, fmt.Errorf("h2: hpack table size update not supported")
		}
		// 0000xxxx / 0001xxxx with a nonzero index would name a static
		// table entry; the encoder always writes index 0 (literal name).
		idx, n, err := readHpackInt(b, 4)
		if err != nil {
			return nil, err
		}
		if idx != 0 {
			return nil, fmt.Errorf("h2: hpack static name index not supported")
		}
		b = b[n:]
		name, n, err := readHpackString(b)
		if err != nil {
			return nil, err
		}
		b = b[n:]
		value, n, err := readHpackString(b)
		if err != nil {
			return nil, err
		}
		b = b[n:]
		out = append(out, field{name, value})
	}
	return out, nil
}

// requestFields renders an http.Request's header block: pseudo-headers
// first, then regular fields with lowercased names in sorted order (a
// deterministic wire image; HTTP/2 header order is not semantic).
func requestFields(req *http.Request) []field {
	path := req.URL.RequestURI()
	if path == "" {
		path = "/"
	}
	scheme := req.URL.Scheme
	if scheme == "" {
		scheme = "https"
	}
	authority := req.Host
	if authority == "" {
		authority = req.URL.Host
	}
	fields := []field{
		{":method", req.Method},
		{":scheme", scheme},
		{":authority", authority},
		{":path", path},
	}
	return append(fields, sortedFields(req.Header)...)
}

// sortedFields lowercases and sorts an http.Header into wire fields,
// dropping connection-level headers that have no place in h2.
func sortedFields(h http.Header) []field {
	var out []field
	for name, vals := range h {
		ln := strings.ToLower(name)
		switch ln {
		case "connection", "keep-alive", "proxy-connection", "transfer-encoding", "upgrade", "host":
			continue
		}
		for _, v := range vals {
			out = append(out, field{ln, v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].value < out[j].value
	})
	return out
}

// fieldsToHeader splits decoded fields into pseudo-headers and an
// http.Header (canonicalised names).
func fieldsToHeader(fields []field) (pseudo map[string]string, hdr http.Header) {
	pseudo = map[string]string{}
	hdr = http.Header{}
	for _, f := range fields {
		if strings.HasPrefix(f.name, ":") {
			pseudo[f.name] = f.value
			continue
		}
		hdr.Add(f.name, f.value)
	}
	return pseudo, hdr
}

// --- Server ---

// Request is one decoded h2 request as the proxy-side server surfaces it.
type Request struct {
	Stream    uint32
	Method    string
	Scheme    string
	Authority string
	Path      string // includes the query, as sent in :path
	Header    http.Header
	Body      []byte
}

// HTTPRequest converts to a net/http request (fully buffered body), the
// form the proxy's addon chain and forward path consume. The :path is
// split on the first '?' without re-encoding: the components travel
// verbatim so capture sees exactly the wire bytes.
func (r *Request) HTTPRequest() *http.Request {
	path, query := r.Path, ""
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path, query = path[:i], path[i+1:]
	}
	return &http.Request{
		Method:        r.Method,
		URL:           &url.URL{Scheme: r.Scheme, Host: r.Authority, Path: path, RawQuery: query},
		Proto:         "HTTP/2.0",
		ProtoMajor:    2,
		ProtoMinor:    0,
		Header:        r.Header,
		Host:          r.Authority,
		ContentLength: int64(len(r.Body)),
		Body:          io.NopCloser(bytes.NewReader(r.Body)),
	}
}

// Server is the accepting half of one h2 connection: it consumes the
// client preface and SETTINGS, then surfaces requests one at a time.
type Server struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	// open streams being assembled (headers seen, body accumulating).
	partial map[uint32]*Request
}

// NewServer adopts an accepted connection whose ALPN negotiated h2. It
// verifies the client preface and sends the server SETTINGS. br, when
// non-nil, carries bytes already buffered from the connection.
func NewServer(conn net.Conn, br *bufio.Reader) (*Server, error) {
	if br == nil {
		br = bufio.NewReader(conn)
	}
	s := &Server{conn: conn, br: br, bw: bufio.NewWriter(conn), partial: map[uint32]*Request{}}
	buf := make([]byte, len(ClientPreface))
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("h2: read preface: %w", err)
	}
	if string(buf) != ClientPreface {
		return nil, fmt.Errorf("h2: bad client preface")
	}
	if err := writeFrame(s.bw, frameSettings, 0, 0, nil); err != nil {
		return nil, err
	}
	if err := s.bw.Flush(); err != nil {
		return nil, err
	}
	return s, nil
}

// ReadRequest blocks for the next complete request. A clean connection
// shutdown (GOAWAY or EOF between requests) returns io.EOF.
func (s *Server) ReadRequest() (*Request, error) {
	for {
		typ, flags, stream, payload, err := readFrame(s.br)
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, io.EOF
			}
			return nil, err
		}
		switch typ {
		case frameSettings:
			if flags&flagAck == 0 {
				if err := writeFrame(s.bw, frameSettings, flagAck, 0, nil); err != nil {
					return nil, err
				}
				if err := s.bw.Flush(); err != nil {
					return nil, err
				}
			}
		case framePing:
			if flags&flagAck == 0 {
				if err := writeFrame(s.bw, framePing, flagAck, 0, payload); err != nil {
					return nil, err
				}
				if err := s.bw.Flush(); err != nil {
					return nil, err
				}
			}
		case frameWindowUpdate, frameRSTStream:
			// Sequential streams with small bodies: window updates are
			// advisory here, and a reset stream simply never completes.
			delete(s.partial, stream)
		case frameGoAway:
			return nil, io.EOF
		case frameHeaders:
			if flags&flagEndHeaders == 0 {
				return nil, fmt.Errorf("h2: CONTINUATION not supported")
			}
			fields, err := decodeFields(payload)
			if err != nil {
				return nil, err
			}
			pseudo, hdr := fieldsToHeader(fields)
			req := &Request{
				Stream:    stream,
				Method:    pseudo[":method"],
				Scheme:    pseudo[":scheme"],
				Authority: pseudo[":authority"],
				Path:      pseudo[":path"],
				Header:    hdr,
			}
			if flags&flagEndStream != 0 {
				return req, nil
			}
			s.partial[stream] = req
		case frameData:
			req := s.partial[stream]
			if req == nil {
				return nil, fmt.Errorf("h2: DATA for unknown stream %d", stream)
			}
			req.Body = append(req.Body, payload...)
			if flags&flagEndStream != 0 {
				delete(s.partial, stream)
				return req, nil
			}
		default:
			// Unknown extension frames are ignored per spec.
		}
	}
}

// WriteResponse emits a complete response for a stream: one HEADERS
// frame (status pseudo-header plus sorted fields) and, when a body is
// present, one DATA frame carrying it. It returns the wire bytes
// written (frame headers included), the h2 analogue of an h1 response
// serialisation count.
func (s *Server) WriteResponse(stream uint32, status int, hdr http.Header, body []byte) (int, error) {
	fields := append([]field{{":status", strconv.Itoa(status)}}, sortedFields(hdr)...)
	block := encodeFields(fields)
	hflags := byte(flagEndHeaders)
	if len(body) == 0 {
		hflags |= flagEndStream
	}
	n := 9 + len(block)
	if err := writeFrame(s.bw, frameHeaders, hflags, stream, block); err != nil {
		return 0, err
	}
	if len(body) > 0 {
		n += 9 + len(body)
		if err := writeFrame(s.bw, frameData, flagEndStream, stream, body); err != nil {
			return 0, err
		}
	}
	return n, s.bw.Flush()
}

// WriteRST aborts a stream with RST_STREAM (INTERNAL_ERROR), the h2
// analogue of dropping an h1 connection mid-response.
func (s *Server) WriteRST(stream uint32) error {
	var code [4]byte
	binary.BigEndian.PutUint32(code[:], 0x2) // INTERNAL_ERROR
	if err := writeFrame(s.bw, frameRSTStream, 0, stream, code[:]); err != nil {
		return err
	}
	return s.bw.Flush()
}

// Close sends GOAWAY and closes the connection.
func (s *Server) Close() error {
	var payload [8]byte // last stream 0, error code NO_ERROR
	writeFrame(s.bw, frameGoAway, 0, 0, payload[:])
	s.bw.Flush()
	return s.conn.Close()
}

// --- Client ---

// Client is the dialing half of one h2 connection. RoundTrip is strictly
// sequential; the caller serialises exchanges (the proxy's connection
// pool hands a pooled client to one exchange at a time).
type Client struct {
	conn       net.Conn
	br         *bufio.Reader
	bw         *bufio.Writer
	nextStream uint32
}

// NewClient adopts a dialed connection whose ALPN negotiated h2 and
// sends the connection preface plus client SETTINGS.
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn), nextStream: 1}
	if _, err := c.bw.WriteString(ClientPreface); err != nil {
		return nil, err
	}
	if err := writeFrame(c.bw, frameSettings, 0, 0, nil); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	return c, nil
}

// RoundTrip sends one request and blocks for its complete response. The
// request body, if any, must be fully readable (the proxy and browser
// callers always hold buffered bodies).
func (c *Client) RoundTrip(req *http.Request) (*http.Response, error) {
	stream := c.nextStream
	c.nextStream += 2

	var body []byte
	if req.Body != nil {
		b, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("h2: read request body: %w", err)
		}
		body = b
	}
	hflags := byte(flagEndHeaders)
	if len(body) == 0 {
		hflags |= flagEndStream
	}
	if err := writeFrame(c.bw, frameHeaders, hflags, stream, encodeFields(requestFields(req))); err != nil {
		return nil, err
	}
	if len(body) > 0 {
		if err := writeFrame(c.bw, frameData, flagEndStream, stream, body); err != nil {
			return nil, err
		}
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}

	var (
		status   int
		hdr      http.Header
		respBody []byte
	)
	for {
		typ, flags, fstream, payload, err := readFrame(c.br)
		if err != nil {
			return nil, fmt.Errorf("h2: read response: %w", err)
		}
		switch typ {
		case frameSettings:
			if flags&flagAck == 0 {
				if err := writeFrame(c.bw, frameSettings, flagAck, 0, nil); err != nil {
					return nil, err
				}
				if err := c.bw.Flush(); err != nil {
					return nil, err
				}
			}
		case framePing:
			if flags&flagAck == 0 {
				if err := writeFrame(c.bw, framePing, flagAck, 0, payload); err != nil {
					return nil, err
				}
				if err := c.bw.Flush(); err != nil {
					return nil, err
				}
			}
		case frameWindowUpdate:
			// ignored: sequential small exchanges never exhaust windows.
		case frameGoAway:
			return nil, fmt.Errorf("h2: connection closed by peer (GOAWAY)")
		case frameRSTStream:
			if fstream == stream {
				return nil, fmt.Errorf("h2: stream %d reset by peer", stream)
			}
		case frameHeaders:
			if fstream != stream {
				continue
			}
			if flags&flagEndHeaders == 0 {
				return nil, fmt.Errorf("h2: CONTINUATION not supported")
			}
			fields, err := decodeFields(payload)
			if err != nil {
				return nil, err
			}
			pseudo, h := fieldsToHeader(fields)
			status, err = strconv.Atoi(pseudo[":status"])
			if err != nil {
				return nil, fmt.Errorf("h2: bad :status %q", pseudo[":status"])
			}
			hdr = h
			if flags&flagEndStream != 0 {
				return c.response(req, status, hdr, respBody), nil
			}
		case frameData:
			if fstream != stream {
				continue
			}
			respBody = append(respBody, payload...)
			if flags&flagEndStream != 0 {
				return c.response(req, status, hdr, respBody), nil
			}
		}
	}
}

func (c *Client) response(req *http.Request, status int, hdr http.Header, body []byte) *http.Response {
	if hdr == nil {
		hdr = http.Header{}
	}
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/2.0",
		ProtoMajor:    2,
		ProtoMinor:    0,
		Header:        hdr,
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// --- Handler adapter ---

// responseRecorder is the minimal http.ResponseWriter ServeConn hands to
// an http.Handler so vendor backends can serve h2 unchanged.
type responseRecorder struct {
	hdr    http.Header
	buf    bytes.Buffer
	status int
}

func (r *responseRecorder) Header() http.Header { return r.hdr }
func (r *responseRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
}
func (r *responseRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.buf.Write(b)
}

// ServeConn runs a full h2 server connection over conn, dispatching each
// request to handler, until the peer closes. The vendor simulation uses
// it to put real HTTP/2 framing in front of its ordinary handlers.
func ServeConn(conn net.Conn, handler http.Handler) error {
	s, err := NewServer(conn, nil)
	if err != nil {
		conn.Close()
		return err
	}
	defer conn.Close()
	for {
		req, err := s.ReadRequest()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		hreq := req.HTTPRequest()
		hreq.RemoteAddr = conn.RemoteAddr().String()
		rec := &responseRecorder{hdr: http.Header{}}
		handler.ServeHTTP(rec, hreq)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		if _, err := s.WriteResponse(req.Stream, rec.status, rec.hdr, rec.buf.Bytes()); err != nil {
			return err
		}
	}
}
