package h2

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"

	"panoptes/internal/netsim"
)

func pipePair() (client, server net.Conn) {
	a := netsim.TCPAddr(net.IPv4(10, 0, 0, 1), 40000)
	b := netsim.TCPAddr(net.IPv4(93, 184, 216, 34), 443)
	return netsim.Pair(a, b, netsim.Meta{OwnerUID: -1})
}

func TestHpackIntRoundTrip(t *testing.T) {
	for _, v := range []int{0, 1, 14, 15, 16, 127, 128, 300, 1 << 14, 1 << 20} {
		b := appendHpackInt(nil, 0x10, 4, v)
		got, n, err := readHpackInt(b, 4)
		if err != nil {
			t.Fatalf("decode %d: %v", v, err)
		}
		if got != v || n != len(b) {
			t.Fatalf("decode %d: got %d (n=%d, len=%d)", v, got, n, len(b))
		}
	}
}

func TestHpackFieldsRoundTrip(t *testing.T) {
	in := []field{
		{":method", "POST"},
		{":path", "/v1/events?uid=42"},
		{"content-type", "application/json"},
		{"x-long", strings.Repeat("v", 300)}, // forces multi-byte length
		{"x-empty", ""},
	}
	out, err := decodeFields(encodeFields(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d fields, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("field %d: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestHpackRejectsDynamicForms(t *testing.T) {
	cases := map[string][]byte{
		"indexed":           {0x82},       // static table index 2
		"incremental":       {0x41, 0x00}, // literal with incremental indexing
		"table size update": {0x3f},
	}
	for name, b := range cases {
		if _, err := decodeFields(b); err == nil {
			t.Errorf("%s: expected error, got nil", name)
		}
	}
}

func TestClientServerRoundTrip(t *testing.T) {
	cc, sc := pipePair()
	defer cc.Close()

	serverErr := make(chan error, 1)
	go func() {
		serverErr <- ServeConn(sc, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Proto != "HTTP/2.0" {
				t.Errorf("server saw proto %q", r.Proto)
			}
			body, _ := io.ReadAll(r.Body)
			w.Header().Set("X-Echo-Path", r.URL.Path)
			w.Header().Set("X-Echo-Query", r.URL.RawQuery)
			w.Header().Set("X-Echo-Ua", r.Header.Get("User-Agent"))
			if len(body) > 0 {
				w.WriteHeader(http.StatusCreated)
				w.Write(body)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		}))
	}()

	c, err := NewClient(cc)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}

	// GET without body.
	req, _ := http.NewRequest("GET", "https://update.googleapis.com/service/update2?cup2key=9", nil)
	req.Header.Set("User-Agent", "Chrome/119")
	resp, err := c.RoundTrip(req)
	if err != nil {
		t.Fatalf("RoundTrip GET: %v", err)
	}
	if resp.StatusCode != http.StatusNoContent || resp.Proto != "HTTP/2.0" {
		t.Fatalf("GET: status=%d proto=%s", resp.StatusCode, resp.Proto)
	}
	if got := resp.Header.Get("X-Echo-Path"); got != "/service/update2" {
		t.Fatalf("GET path echo: %q", got)
	}
	if got := resp.Header.Get("X-Echo-Query"); got != "cup2key=9" {
		t.Fatalf("GET query echo: %q", got)
	}
	if got := resp.Header.Get("X-Echo-Ua"); got != "Chrome/119" {
		t.Fatalf("GET ua echo: %q", got)
	}

	// POST with body on the same connection (stream 3).
	payload := []byte(`{"device_id":"abc123"}`)
	req2, _ := http.NewRequest("POST", "https://update.googleapis.com/v1/events", bytes.NewReader(payload))
	resp2, err := c.RoundTrip(req2)
	if err != nil {
		t.Fatalf("RoundTrip POST: %v", err)
	}
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("POST status: %d", resp2.StatusCode)
	}
	echo, _ := io.ReadAll(resp2.Body)
	if !bytes.Equal(echo, payload) {
		t.Fatalf("POST echo: %q", echo)
	}

	c.Close()
	if err := <-serverErr; err != nil {
		t.Fatalf("server: %v", err)
	}
}

func TestServerRejectsBadPreface(t *testing.T) {
	cc, sc := pipePair()
	go func() {
		cc.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
		cc.Close()
	}()
	if _, err := NewServer(sc, nil); err == nil {
		t.Fatal("expected preface error")
	}
}

func TestLargeBodySplitFrames(t *testing.T) {
	// A body larger than one frame's worth still round-trips: the client
	// writes one DATA frame (within maxFrameLen), the server accumulates.
	cc, sc := pipePair()
	defer cc.Close()
	go ServeConn(sc, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.Write(body)
	}))
	c, err := NewClient(cc)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	big := bytes.Repeat([]byte("telemetry"), 8192) // 72 KiB
	req, _ := http.NewRequest("POST", "https://browser.events.data.msn.com/OneCollector/1.0", bytes.NewReader(big))
	resp, err := c.RoundTrip(req)
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	echo, _ := io.ReadAll(resp.Body)
	if !bytes.Equal(echo, big) {
		t.Fatalf("large body mismatch: got %d bytes want %d", len(echo), len(big))
	}
}
