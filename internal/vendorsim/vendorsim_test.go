package vendorsim

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"

	"panoptes/internal/dnsmsg"
	"panoptes/internal/netsim"
	"panoptes/internal/pki"
)

func setup(t *testing.T) (*Vendors, *http.Client, *netsim.Internet) {
	t.Helper()
	inet := netsim.New()
	ca, err := pki.NewCA("Public Web Root", nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Setup(inet, ca, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(v.Close)
	client := &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			return inet.Dial(ctx, addr)
		},
		TLSClientConfig: ca.TLSClientTemplate(nil),
	}}
	return v, client, inet
}

func TestAllBackendsReachable(t *testing.T) {
	v, client, _ := setup(t)
	for _, host := range v.Hosts() {
		resp, err := client.Get("https://" + host + "/ping")
		if err != nil {
			t.Errorf("%s: %v", host, err)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		// The DoH endpoints reject a bare GET (no dns parameter) but must
		// still be reachable and logged.
		isDoH := host == "cloudflare-dns.com" || host == "dns.google"
		if !isDoH && resp.StatusCode != 200 {
			t.Errorf("%s: status %d", host, resp.StatusCode)
		}
		if isDoH && resp.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400 for bare GET", host, resp.StatusCode)
		}
		if v.Backend(host).Count() != 1 {
			t.Errorf("%s: count = %d", host, v.Backend(host).Count())
		}
	}
}

func TestRequestLogging(t *testing.T) {
	v, client, _ := setup(t)
	resp, err := client.Post("https://wup.browser.qq.com/report/url", "application/json",
		strings.NewReader(`{"url":"https://secret.example/page?q=1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	reqs := v.Backend("wup.browser.qq.com").Requests()
	if len(reqs) != 1 {
		t.Fatalf("requests = %d", len(reqs))
	}
	r := reqs[0]
	if r.Method != "POST" || r.Path != "/report/url" ||
		!strings.Contains(r.Body, "secret.example") {
		t.Fatalf("logged = %+v", r)
	}
}

func TestVendorCountries(t *testing.T) {
	v, _, inet := setup(t)
	// §3.4's critical geolocations.
	want := map[string]string{
		"sba.yandex.net":        "RU",
		"api.browser.yandex.ru": "RU",
		"wup.browser.qq.com":    "CN",
		"gjapi.ucweb.com":       "CA",
		"ucgjs.ucweb.com":       "CA",
		"sitecheck2.opera.com":  "NO",
		"api.bing.com":          "US",
		"graph.facebook.com":    "US",
	}
	blocks := inet.Blocks()
	countryOf := func(ip net.IP) string {
		for _, b := range blocks {
			if b.CIDR.Contains(ip) {
				return b.Country
			}
		}
		return ""
	}
	for host, country := range want {
		if v.Backend(host) == nil {
			t.Errorf("%s not hosted", host)
			continue
		}
		if got := v.Backend(host).Country; got != country {
			t.Errorf("%s declared country = %s, want %s", host, got, country)
		}
		ip, err := inet.LookupHost(host)
		if err != nil {
			t.Errorf("%s: %v", host, err)
			continue
		}
		if got := countryOf(ip); got != country {
			t.Errorf("%s allocated in %s, want %s", host, got, country)
		}
	}
}

func TestUCSnippetServed(t *testing.T) {
	v, client, _ := setup(t)
	resp, err := client.Get("https://ucgjs.ucweb.com/gj.js")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != UCInjectedSnippet() {
		t.Fatal("snippet mismatch")
	}
	if !strings.Contains(string(body), "gjapi.ucweb.com/collect") {
		t.Fatal("snippet does not reference the beacon endpoint")
	}
	_ = v
}

func TestOperaNewsFeed(t *testing.T) {
	_, client, _ := setup(t)
	resp, err := client.Get("https://news.opera-api.com/feed")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "articles") {
		t.Fatalf("feed = %s", body)
	}
}

func TestDoHEndpointsWired(t *testing.T) {
	v, client, inet := setup(t)
	inet.RegisterDomain("doh-target.example", "US")
	// POST a real DNS query to Cloudflare's endpoint.
	q := buildQuery(t, "doh-target.example")
	resp, err := client.Post("https://cloudflare-dns.com/dns-query",
		"application/dns-message", strings.NewReader(string(q)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("doh status = %d", resp.StatusCode)
	}
	names := v.DoHCloudflare.QueriedNames()
	if len(names) != 1 || names[0] != "doh-target.example" {
		t.Fatalf("cloudflare saw %v", names)
	}
	if len(v.DoHGoogle.QueriedNames()) != 0 {
		t.Fatal("google DoH saw stray queries")
	}
}

func TestBackendUnknownHost(t *testing.T) {
	v, _, _ := setup(t)
	if v.Backend("nonexistent.example") != nil {
		t.Fatal("unknown backend returned")
	}
}

func buildQuery(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := dnsmsg.NewQuery(1, name, dnsmsg.TypeA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
