// Package vendorsim hosts the vendor-side backends the browsers' native
// services talk to: Yandex's safe-browsing and visit-reporting APIs (RU),
// QQ's report collector (CN), UC International's injected-script and
// geolocation beacon servers (CA), Opera's Sitecheck / news feed / OLeads
// ad SDK, Microsoft's Bing API and telemetry, Facebook's Graph API, the
// Cloudflare and Google DoH resolvers, and a generic update/telemetry
// endpoint per vendor.
//
// Every backend keeps a request log, so leak findings from the Panoptes
// capture databases can be cross-checked against what the remote server
// actually received — including that servers in RU, CN and CA received
// full browsing histories from an EU vantage point (§3.4).
package vendorsim

import (
	"crypto/tls"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"panoptes/internal/dnssim"
	"panoptes/internal/h2"
	"panoptes/internal/netsim"
	"panoptes/internal/pki"
	"panoptes/internal/ws"
)

// LoggedRequest is one request a backend received.
type LoggedRequest struct {
	Time   time.Time
	Method string
	Path   string
	Query  string
	Body   string
}

// Backend is one hosted vendor endpoint.
type Backend struct {
	Host    string
	Country string

	mu   sync.Mutex
	reqs []LoggedRequest
}

// Requests returns a copy of the log.
func (b *Backend) Requests() []LoggedRequest {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]LoggedRequest, len(b.reqs))
	copy(out, b.reqs)
	return out
}

// Count returns the number of requests received.
func (b *Backend) Count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.reqs)
}

// recordFrame logs one WebSocket frame payload delivered to the
// backend's push endpoint, alongside the HTTP request log.
func (b *Backend) recordFrame(now func() time.Time, path string, payload []byte) {
	lr := LoggedRequest{Time: now(), Method: "WS", Path: path, Body: string(payload)}
	b.mu.Lock()
	b.reqs = append(b.reqs, lr)
	b.mu.Unlock()
}

// record logs a request and returns it.
func (b *Backend) record(r *http.Request, now func() time.Time) LoggedRequest {
	body := ""
	if r.Body != nil {
		data, _ := io.ReadAll(io.LimitReader(r.Body, 64*1024))
		body = string(data)
	}
	lr := LoggedRequest{
		Time: now(), Method: r.Method, Path: r.URL.Path,
		Query: r.URL.RawQuery, Body: body,
	}
	b.mu.Lock()
	b.reqs = append(b.reqs, lr)
	b.mu.Unlock()
	return lr
}

// hostSpec describes a backend to bring up.
type hostSpec struct {
	host    string
	country string
}

// backendHosts is every vendor endpoint and its hosting country. The
// countries matter: §3.4 geolocates the phone-home receivers.
var backendHosts = []hostSpec{
	// Yandex — Russia.
	{"sba.yandex.net", "RU"},
	{"api.browser.yandex.ru", "RU"},
	{"mc.yandex.ru", "RU"},
	{"favicon.yandex.net", "RU"},
	{"browser-updates.yandex.net", "RU"},
	{"translate.yandex.net", "RU"},
	{"suggest.yandex.net", "RU"},
	{"push.yandex.ru", "RU"},
	{"zen.yandex.ru", "RU"},
	{"startpage.yandex.com", "RU"},
	{"adfox.ru", "RU"},
	// QQ (Tencent) — China.
	{"wup.browser.qq.com", "CN"},
	{"cloud.browser.qq.com", "CN"},
	{"mtt.browser.qq.com", "CN"},
	{"res.imtt.qq.com", "CN"},
	{"pms.mb.qq.com", "CN"},
	{"cdn1.browser.qq.com", "CN"},
	// UC International — Canada.
	{"ucgjs.ucweb.com", "CA"},
	{"gjapi.ucweb.com", "CA"},
	{"puds.ucweb.com", "CA"},
	// Opera — Norway (ad SDK backend s-odx.oleads.com hosted in the US).
	{"sitecheck2.opera.com", "NO"},
	{"news.opera-api.com", "NO"},
	{"autoupdate.geo.opera.com", "NO"},
	{"crashstats-collector.opera.com", "NO"},
	{"exchange.opera.com", "NO"},
	{"cdn.opera-api.com", "NO"},
	{"features.opera-api.com", "NO"},
	{"sync.opera.com", "NO"},
	{"push.opera.com", "NO"},
	{"update.opera.com", "NO"},
	{"suggestions.opera.com", "NO"},
	{"thumbnails.opera.com", "NO"},
	{"s-odx.oleads.com", "US"},
	// Microsoft / Edge — United States.
	{"api.bing.com", "US"},
	{"browser.events.data.msn.com", "US"},
	{"msn.com", "US"},
	{"edge.microsoft.com", "US"},
	{"config.edge.skype.com", "US"},
	{"ntp.msn.com", "US"},
	{"assets.msn.com", "US"},
	{"arc.msn.com", "US"},
	{"ris.api.iris.microsoft.com", "US"},
	{"mobile.events.data.microsoft.com", "US"},
	{"vortex.data.microsoft.com", "US"},
	{"settings-win.data.microsoft.com", "US"},
	{"c.bing.com", "US"},
	{"th.bing.com", "US"},
	{"fd.api.iris.microsoft.com", "US"},
	{"login.live.com", "US"},
	{"smartscreen.microsoft.com", "US"},
	{"functional.events.data.microsoft.com", "US"},
	{"nav.smartscreen.microsoft.com", "US"},
	// Facebook Graph — United States.
	{"graph.facebook.com", "US"},
	// Google / Chrome — United States.
	{"update.googleapis.com", "US"},
	{"safebrowsing.googleapis.com", "US"},
	{"t0.gstatic.com", "US"},
	{"clients4.google.com", "US"},
	{"redirector.gvt1.com", "US"},
	{"storage.googleusercontent.com", "US"},
	{"check.googlezip.net", "US"},
	// DoH resolvers — United States.
	{"cloudflare-dns.com", "US"},
	{"dns.google", "US"},
	// Brave — United States.
	{"variations.brave.com", "US"},
	{"go-updater.brave.com", "US"},
	// DuckDuckGo — United States.
	{"improving.duckduckgo.com", "US"},
	{"staticcdn.duckduckgo.com", "US"},
	// Dolphin — United States.
	{"api.dolphin-browser.com", "US"},
	{"sync.dolphin-browser.com", "US"},
	{"push.dolphin-browser.com", "US"},
	{"cdn.dolphin-browser.com", "US"},
	// Kiwi — United States.
	{"update.kiwibrowser.com", "US"},
	// Samsung Internet — South Korea.
	{"api.internet.apps.samsung.com", "KR"},
	// Whale (Naver) — South Korea.
	{"api-whale.naver.com", "KR"},
	// Mint (Xiaomi) — Singapore.
	{"api.mintbrowser.com", "SG"},
	{"news.mintbrowser.com", "SG"},
	{"data.mistat.intl.xiaomi.com", "SG"},
	{"update.intl.miui.com", "SG"},
	// CocCoc — Vietnam.
	{"api.coccoc.com", "VN"},
	{"spell.itim.vn", "VN"},
	{"newtab.coccoc.com", "VN"},
	{"log.coccoc.com", "VN"},
	{"gg.coccoc.com", "VN"},
	{"qc.coccoc.com", "VN"},
	{"dicts.itim.vn", "VN"},
	// Vivaldi — Norway.
	{"update.vivaldi.com", "NO"},
	{"downloads.vivaldi.com", "NO"},
}

// h2Hosts serve real HTTP/2 framing when the client offers "h2" via
// ALPN — the vendor endpoints whose native telemetry rides h2 in the
// testbed. Clients that offer no ALPN (or only http/1.1) get HTTP/1.1
// from the same handler.
var h2Hosts = map[string]bool{
	"update.googleapis.com":       true,
	"browser.events.data.msn.com": true,
	"variations.brave.com":        true,
}

// h3Hosts advertise HTTP/3 support and bind a UDP/443 endpoint — the
// origins QUIC-capable browsers probe before the firewall's block-http3
// rule forces them back onto interceptable TCP.
var h3Hosts = map[string]bool{
	"update.googleapis.com": true,
	"clients4.google.com":   true,
	"variations.brave.com":  true,
	"config.edge.skype.com": true,
}

// wsHost is the push endpoint that accepts a WebSocket upgrade and acks
// each telemetry frame — Dolphin's frame-borne channel.
const wsHost = "push.dolphin-browser.com"

// Vendors is the running backend fleet.
type Vendors struct {
	backends map[string]*Backend
	servers  []*http.Server
	udps     []*netsim.UDPEndpoint
	// DoHCloudflare and DoHGoogle expose the resolvers' query logs.
	DoHCloudflare *dnssim.Handler
	DoHGoogle     *dnssim.Handler
	now           func() time.Time
}

// Setup hosts every backend on the virtual internet with certificates
// from the public CA. now supplies log timestamps (pass the virtual
// clock's Now).
func Setup(inet *netsim.Internet, ca *pki.CA, now func() time.Time) (*Vendors, error) {
	if now == nil {
		now = time.Now
	}
	v := &Vendors{backends: make(map[string]*Backend), now: now}
	v.DoHCloudflare = dnssim.NewHandler(inet)
	v.DoHGoogle = dnssim.NewHandler(inet)

	for _, spec := range backendHosts {
		b := &Backend{Host: spec.host, Country: spec.country}
		v.backends[spec.host] = b
		handler := v.handlerFor(b)
		l, ip, err := inet.ListenDomain(spec.host, spec.country, 443)
		if err != nil {
			return nil, fmt.Errorf("vendorsim: host %s: %w", spec.host, err)
		}
		cert, err := ca.Issue(spec.host)
		if err != nil {
			return nil, fmt.Errorf("vendorsim: certificate for %s: %w", spec.host, err)
		}
		tcfg := &tls.Config{Certificates: []tls.Certificate{cert}}
		srv := &http.Server{Handler: handler}
		if h2Hosts[spec.host] {
			// ALPN-splitting accept loop: h2 connections go to the
			// frame-level server, everything else feeds the stdlib
			// HTTP/1.1 server through a channel listener.
			tcfg.NextProtos = []string{h2.ProtoName, "http/1.1"}
			cl := newChanListener(l.Addr())
			go srv.Serve(cl)
			go serveALPNSplit(l, tcfg, cl, handler)
		} else {
			go srv.Serve(tls.NewListener(l, tcfg))
		}
		v.servers = append(v.servers, srv)

		if h3Hosts[spec.host] {
			inet.AdvertiseH3(spec.host)
			ep, err := inet.ListenUDP(ip, 443)
			if err != nil {
				return nil, fmt.Errorf("vendorsim: udp/443 for %s: %w", spec.host, err)
			}
			v.udps = append(v.udps, ep)
			go drainUDP(ep) // QUIC initials are acknowledged by existing
		}
	}
	return v, nil
}

// serveALPNSplit accepts raw connections, handshakes TLS, and routes by
// negotiated protocol: h2 to the frame server, anything else into cl.
func serveALPNSplit(l net.Listener, tcfg *tls.Config, cl *chanListener, handler http.Handler) {
	defer cl.Close()
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			tc := tls.Server(c, tcfg)
			if err := tc.Handshake(); err != nil {
				c.Close()
				return
			}
			if tc.ConnectionState().NegotiatedProtocol == h2.ProtoName {
				h2.ServeConn(tc, handler)
				return
			}
			cl.deliver(tc)
		}(c)
	}
}

// drainUDP consumes datagrams so a bound QUIC endpoint's queue stays
// empty; delivery itself (the endpoint existing) is what the browser's
// h3 probe observes.
func drainUDP(ep *netsim.UDPEndpoint) {
	buf := make([]byte, 2048)
	for {
		if _, _, err := ep.ReadFrom(buf); err != nil {
			return
		}
	}
}

// chanListener adapts a stream of pre-handshaken TLS connections to
// net.Listener for the stdlib HTTP/1.1 server.
type chanListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
	addr net.Addr
}

func newChanListener(addr net.Addr) *chanListener {
	return &chanListener{ch: make(chan net.Conn, 16), done: make(chan struct{}), addr: addr}
}

func (l *chanListener) deliver(c net.Conn) {
	select {
	case l.ch <- c:
	case <-l.done:
		c.Close()
	}
}

func (l *chanListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *chanListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *chanListener) Addr() net.Addr { return l.addr }

// handlerFor wires per-host behaviour on top of the logging backend.
func (v *Vendors) handlerFor(b *Backend) http.Handler {
	switch b.Host {
	case "cloudflare-dns.com":
		return v.logWrap(b, v.DoHCloudflare)
	case "dns.google":
		return v.logWrap(b, v.DoHGoogle)
	case "ucgjs.ucweb.com":
		// Serves the obfuscated injected snippet.
		return v.logWrap(b, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/javascript")
			io.WriteString(w, ucInjectedSnippet)
		}))
	case "news.opera-api.com":
		return v.logWrap(b, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"articles":[{"id":%d,"title":"sim"},{"id":%d,"title":"sim"}]}`,
				b.Count(), b.Count()+1)
		}))
	case wsHost:
		// Push endpoint: accepts a WebSocket upgrade and acks every
		// telemetry frame; plain HTTP requests fall through to the
		// generic handler.
		return v.logWrap(b, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !ws.IsUpgradeRequest(r) {
				w.Header().Set("Content-Type", "application/json")
				io.WriteString(w, `{"ok":true}`)
				return
			}
			conn, err := ws.Upgrade(w, r)
			if err != nil {
				return
			}
			defer conn.Close()
			for {
				op, msg, err := conn.ReadMessage()
				if err != nil {
					return
				}
				b.recordFrame(v.now, r.URL.Path, msg)
				if err := conn.WriteMessage(op, []byte(`{"ok":true}`)); err != nil {
					return
				}
			}
		}))
	case "s-odx.oleads.com":
		return v.logWrap(b, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, `{"ads":[{"type":"BIG_CARD","cpm":120},{"type":"DISPLAY_HTML_300x250","cpm":85}]}`)
		}))
	default:
		return v.logWrap(b, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, `{"ok":true}`)
		}))
	}
}

// logWrap records every request before delegating. The body is re-buffered
// so the inner handler can still read it.
func (v *Vendors) logWrap(b *Backend, inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lr := b.record(r, v.now)
		if lr.Body != "" {
			r.Body = io.NopCloser(strings.NewReader(lr.Body))
			r.ContentLength = int64(len(lr.Body))
		}
		inner.ServeHTTP(w, r)
	})
}

// Backend returns the handle for a hosted endpoint, or nil.
func (v *Vendors) Backend(host string) *Backend {
	return v.backends[host]
}

// Hosts returns every hosted backend host, sorted.
func (v *Vendors) Hosts() []string {
	out := make([]string, 0, len(v.backends))
	for h := range v.backends {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Close stops all servers and unbinds the QUIC endpoints.
func (v *Vendors) Close() {
	for _, s := range v.servers {
		s.Close()
	}
	for _, ep := range v.udps {
		ep.Close()
	}
}

// ucInjectedSnippet is the stand-in for UC International's obfuscated
// injected JavaScript (paper §3.2): the engine "executes" it by issuing
// the beacon it encodes.
const ucInjectedSnippet = `(function(){var _0x4f=['\x68\x72\x65\x66','\x6c\x6f\x63'];` +
	`var u=encodeURIComponent(location[_0x4f[0]]);` +
	`new Image().src='https://gjapi.ucweb.com/collect?u='+u+'&city={CITY}&isp={ISP}&cc={CC}';})();`

// UCInjectedSnippet exposes the snippet for the engine's injection point.
func UCInjectedSnippet() string { return ucInjectedSnippet }
