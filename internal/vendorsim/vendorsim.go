// Package vendorsim hosts the vendor-side backends the browsers' native
// services talk to: Yandex's safe-browsing and visit-reporting APIs (RU),
// QQ's report collector (CN), UC International's injected-script and
// geolocation beacon servers (CA), Opera's Sitecheck / news feed / OLeads
// ad SDK, Microsoft's Bing API and telemetry, Facebook's Graph API, the
// Cloudflare and Google DoH resolvers, and a generic update/telemetry
// endpoint per vendor.
//
// Every backend keeps a request log, so leak findings from the Panoptes
// capture databases can be cross-checked against what the remote server
// actually received — including that servers in RU, CN and CA received
// full browsing histories from an EU vantage point (§3.4).
package vendorsim

import (
	"crypto/tls"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"panoptes/internal/dnssim"
	"panoptes/internal/netsim"
	"panoptes/internal/pki"
)

// LoggedRequest is one request a backend received.
type LoggedRequest struct {
	Time   time.Time
	Method string
	Path   string
	Query  string
	Body   string
}

// Backend is one hosted vendor endpoint.
type Backend struct {
	Host    string
	Country string

	mu   sync.Mutex
	reqs []LoggedRequest
}

// Requests returns a copy of the log.
func (b *Backend) Requests() []LoggedRequest {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]LoggedRequest, len(b.reqs))
	copy(out, b.reqs)
	return out
}

// Count returns the number of requests received.
func (b *Backend) Count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.reqs)
}

// record logs a request and returns it.
func (b *Backend) record(r *http.Request, now func() time.Time) LoggedRequest {
	body := ""
	if r.Body != nil {
		data, _ := io.ReadAll(io.LimitReader(r.Body, 64*1024))
		body = string(data)
	}
	lr := LoggedRequest{
		Time: now(), Method: r.Method, Path: r.URL.Path,
		Query: r.URL.RawQuery, Body: body,
	}
	b.mu.Lock()
	b.reqs = append(b.reqs, lr)
	b.mu.Unlock()
	return lr
}

// hostSpec describes a backend to bring up.
type hostSpec struct {
	host    string
	country string
}

// backendHosts is every vendor endpoint and its hosting country. The
// countries matter: §3.4 geolocates the phone-home receivers.
var backendHosts = []hostSpec{
	// Yandex — Russia.
	{"sba.yandex.net", "RU"},
	{"api.browser.yandex.ru", "RU"},
	{"mc.yandex.ru", "RU"},
	{"favicon.yandex.net", "RU"},
	{"browser-updates.yandex.net", "RU"},
	{"translate.yandex.net", "RU"},
	{"suggest.yandex.net", "RU"},
	{"push.yandex.ru", "RU"},
	{"zen.yandex.ru", "RU"},
	{"startpage.yandex.com", "RU"},
	{"adfox.ru", "RU"},
	// QQ (Tencent) — China.
	{"wup.browser.qq.com", "CN"},
	{"cloud.browser.qq.com", "CN"},
	{"mtt.browser.qq.com", "CN"},
	{"res.imtt.qq.com", "CN"},
	{"pms.mb.qq.com", "CN"},
	{"cdn1.browser.qq.com", "CN"},
	// UC International — Canada.
	{"ucgjs.ucweb.com", "CA"},
	{"gjapi.ucweb.com", "CA"},
	{"puds.ucweb.com", "CA"},
	// Opera — Norway (ad SDK backend s-odx.oleads.com hosted in the US).
	{"sitecheck2.opera.com", "NO"},
	{"news.opera-api.com", "NO"},
	{"autoupdate.geo.opera.com", "NO"},
	{"crashstats-collector.opera.com", "NO"},
	{"exchange.opera.com", "NO"},
	{"cdn.opera-api.com", "NO"},
	{"features.opera-api.com", "NO"},
	{"sync.opera.com", "NO"},
	{"push.opera.com", "NO"},
	{"update.opera.com", "NO"},
	{"suggestions.opera.com", "NO"},
	{"thumbnails.opera.com", "NO"},
	{"s-odx.oleads.com", "US"},
	// Microsoft / Edge — United States.
	{"api.bing.com", "US"},
	{"browser.events.data.msn.com", "US"},
	{"msn.com", "US"},
	{"edge.microsoft.com", "US"},
	{"config.edge.skype.com", "US"},
	{"ntp.msn.com", "US"},
	{"assets.msn.com", "US"},
	{"arc.msn.com", "US"},
	{"ris.api.iris.microsoft.com", "US"},
	{"mobile.events.data.microsoft.com", "US"},
	{"vortex.data.microsoft.com", "US"},
	{"settings-win.data.microsoft.com", "US"},
	{"c.bing.com", "US"},
	{"th.bing.com", "US"},
	{"fd.api.iris.microsoft.com", "US"},
	{"login.live.com", "US"},
	{"smartscreen.microsoft.com", "US"},
	{"functional.events.data.microsoft.com", "US"},
	{"nav.smartscreen.microsoft.com", "US"},
	// Facebook Graph — United States.
	{"graph.facebook.com", "US"},
	// Google / Chrome — United States.
	{"update.googleapis.com", "US"},
	{"safebrowsing.googleapis.com", "US"},
	{"t0.gstatic.com", "US"},
	{"clients4.google.com", "US"},
	{"redirector.gvt1.com", "US"},
	{"storage.googleusercontent.com", "US"},
	{"check.googlezip.net", "US"},
	// DoH resolvers — United States.
	{"cloudflare-dns.com", "US"},
	{"dns.google", "US"},
	// Brave — United States.
	{"variations.brave.com", "US"},
	{"go-updater.brave.com", "US"},
	// DuckDuckGo — United States.
	{"improving.duckduckgo.com", "US"},
	{"staticcdn.duckduckgo.com", "US"},
	// Dolphin — United States.
	{"api.dolphin-browser.com", "US"},
	{"sync.dolphin-browser.com", "US"},
	{"push.dolphin-browser.com", "US"},
	{"cdn.dolphin-browser.com", "US"},
	// Kiwi — United States.
	{"update.kiwibrowser.com", "US"},
	// Samsung Internet — South Korea.
	{"api.internet.apps.samsung.com", "KR"},
	// Whale (Naver) — South Korea.
	{"api-whale.naver.com", "KR"},
	// Mint (Xiaomi) — Singapore.
	{"api.mintbrowser.com", "SG"},
	{"news.mintbrowser.com", "SG"},
	{"data.mistat.intl.xiaomi.com", "SG"},
	{"update.intl.miui.com", "SG"},
	// CocCoc — Vietnam.
	{"api.coccoc.com", "VN"},
	{"spell.itim.vn", "VN"},
	{"newtab.coccoc.com", "VN"},
	{"log.coccoc.com", "VN"},
	{"gg.coccoc.com", "VN"},
	{"qc.coccoc.com", "VN"},
	{"dicts.itim.vn", "VN"},
	// Vivaldi — Norway.
	{"update.vivaldi.com", "NO"},
	{"downloads.vivaldi.com", "NO"},
}

// Vendors is the running backend fleet.
type Vendors struct {
	backends map[string]*Backend
	servers  []*http.Server
	// DoHCloudflare and DoHGoogle expose the resolvers' query logs.
	DoHCloudflare *dnssim.Handler
	DoHGoogle     *dnssim.Handler
	now           func() time.Time
}

// Setup hosts every backend on the virtual internet with certificates
// from the public CA. now supplies log timestamps (pass the virtual
// clock's Now).
func Setup(inet *netsim.Internet, ca *pki.CA, now func() time.Time) (*Vendors, error) {
	if now == nil {
		now = time.Now
	}
	v := &Vendors{backends: make(map[string]*Backend), now: now}
	v.DoHCloudflare = dnssim.NewHandler(inet)
	v.DoHGoogle = dnssim.NewHandler(inet)

	for _, spec := range backendHosts {
		b := &Backend{Host: spec.host, Country: spec.country}
		v.backends[spec.host] = b
		handler := v.handlerFor(b)
		l, _, err := inet.ListenDomain(spec.host, spec.country, 443)
		if err != nil {
			return nil, fmt.Errorf("vendorsim: host %s: %w", spec.host, err)
		}
		cert, err := ca.Issue(spec.host)
		if err != nil {
			return nil, fmt.Errorf("vendorsim: certificate for %s: %w", spec.host, err)
		}
		srv := &http.Server{Handler: handler}
		go srv.Serve(tls.NewListener(l, &tls.Config{Certificates: []tls.Certificate{cert}}))
		v.servers = append(v.servers, srv)
	}
	return v, nil
}

// handlerFor wires per-host behaviour on top of the logging backend.
func (v *Vendors) handlerFor(b *Backend) http.Handler {
	switch b.Host {
	case "cloudflare-dns.com":
		return v.logWrap(b, v.DoHCloudflare)
	case "dns.google":
		return v.logWrap(b, v.DoHGoogle)
	case "ucgjs.ucweb.com":
		// Serves the obfuscated injected snippet.
		return v.logWrap(b, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/javascript")
			io.WriteString(w, ucInjectedSnippet)
		}))
	case "news.opera-api.com":
		return v.logWrap(b, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"articles":[{"id":%d,"title":"sim"},{"id":%d,"title":"sim"}]}`,
				b.Count(), b.Count()+1)
		}))
	case "s-odx.oleads.com":
		return v.logWrap(b, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, `{"ads":[{"type":"BIG_CARD","cpm":120},{"type":"DISPLAY_HTML_300x250","cpm":85}]}`)
		}))
	default:
		return v.logWrap(b, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, `{"ok":true}`)
		}))
	}
}

// logWrap records every request before delegating. The body is re-buffered
// so the inner handler can still read it.
func (v *Vendors) logWrap(b *Backend, inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lr := b.record(r, v.now)
		if lr.Body != "" {
			r.Body = io.NopCloser(strings.NewReader(lr.Body))
			r.ContentLength = int64(len(lr.Body))
		}
		inner.ServeHTTP(w, r)
	})
}

// Backend returns the handle for a hosted endpoint, or nil.
func (v *Vendors) Backend(host string) *Backend {
	return v.backends[host]
}

// Hosts returns every hosted backend host, sorted.
func (v *Vendors) Hosts() []string {
	out := make([]string, 0, len(v.backends))
	for h := range v.backends {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Close stops all servers.
func (v *Vendors) Close() {
	for _, s := range v.servers {
		s.Close()
	}
}

// ucInjectedSnippet is the stand-in for UC International's obfuscated
// injected JavaScript (paper §3.2): the engine "executes" it by issuing
// the beacon it encodes.
const ucInjectedSnippet = `(function(){var _0x4f=['\x68\x72\x65\x66','\x6c\x6f\x63'];` +
	`var u=encodeURIComponent(location[_0x4f[0]]);` +
	`new Image().src='https://gjapi.ucweb.com/collect?u='+u+'&city={CITY}&isp={ISP}&cc={CC}';})();`

// UCInjectedSnippet exposes the snippet for the engine's injection point.
func UCInjectedSnippet() string { return ucInjectedSnippet }
