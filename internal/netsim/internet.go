// Package netsim provides the virtual internet on which the Panoptes
// simulation runs: country-scoped IPv4 address allocation, an authoritative
// domain registry, in-memory TCP connections with real net.Conn semantics
// (buffered pipes, deadlines, addresses), per-connection metadata for
// transparent-proxy original-destination recovery, and a small UDP datagram
// layer.
//
// Everything is in-process: listeners accept connections created by Dial,
// and real protocol stacks (crypto/tls, net/http) run over them unchanged.
package netsim

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"panoptes/internal/obs"
)

// Observability: the virtual internet reports connection churn so the
// measurement plane can see dial pressure under load.
var (
	mConnsOpened     = obs.Default.Counter("netsim_conns_opened_total")
	mDialErrors      = obs.Default.Counter("netsim_dial_errors_total")
	mDialLatency     = obs.Default.Histogram("netsim_dial_duration_seconds", nil)
	mActiveListeners = obs.Default.Gauge("netsim_active_listeners")
)

func init() {
	obs.Default.Help("netsim_conns_opened_total", "Virtual TCP connections successfully dialed.")
	obs.Default.Help("netsim_dial_errors_total", "Dial attempts that failed (no such host, connection refused).")
	obs.Default.Help("netsim_dial_duration_seconds", "Wall-clock latency of Internet.Dial.")
	obs.Default.Help("netsim_active_listeners", "Listeners currently registered on the virtual internet.")
}

// Block is a CIDR range allocated to a country. The geoip database is
// built from the allocation table.
type Block struct {
	CIDR    *net.IPNet
	Country string // ISO 3166-1 alpha-2, e.g. "RU"
}

// ErrConnRefused is returned by Dial when nothing listens at the target.
type ErrConnRefused struct{ Addr string }

func (e *ErrConnRefused) Error() string {
	return fmt.Sprintf("netsim: connection refused: no listener at %s", e.Addr)
}

// ErrNoSuchHost is returned when a domain is not registered.
type ErrNoSuchHost struct{ Host string }

func (e *ErrNoSuchHost) Error() string {
	return fmt.Sprintf("netsim: no such host: %s", e.Host)
}

// ErrTimeout is a network timeout (connect or read). The simulation has no
// real packet loss, so timeouts only arise from fault injection; the type
// satisfies net.Error so stdlib callers classify it like a real one.
type ErrTimeout struct {
	Op   string // "connect", "read"
	Addr string
}

func (e *ErrTimeout) Error() string {
	return fmt.Sprintf("netsim: %s to %s timed out", e.Op, e.Addr)
}

// Timeout implements net.Error.
func (e *ErrTimeout) Timeout() bool { return true }

// Temporary implements net.Error (deprecated but still consulted).
func (e *ErrTimeout) Temporary() bool { return true }

// Internet is the top-level virtual network: address allocator, DNS
// authority and listener registry. The zero value is not usable; call New.
type Internet struct {
	mu        sync.Mutex
	listeners map[string]*Listener // "ip:port" -> listener
	domains   map[string]net.IP    // fqdn -> address
	rdns      map[string]string    // ip -> fqdn (first registered wins)
	blocks    []Block
	nextB     map[string]uint32 // country -> next host offset in its block
	countryOf map[string]int    // country -> index into blocks (current block)
	nextSlash uint32            // next /16 block number
	h3        map[string]bool   // domains advertising HTTP/3

	// faultHook, when set, is consulted on every lookup (op "lookup") and
	// dial (op "dial") with the bare host; a non-nil return aborts the
	// operation with that error. internal/faultsim installs its chaos hook
	// here (netsim must not import faultsim, so the hook is a function).
	faultHook func(op, host string) error

	udpMu sync.Mutex
	udp   map[string]*UDPEndpoint // "ip:port" -> endpoint
}

// SetFaultHook installs (or clears, with nil) the fault-injection hook.
func (in *Internet) SetFaultHook(fn func(op, host string) error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faultHook = fn
}

func (in *Internet) faultHookFn() func(op, host string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faultHook
}

// New returns an empty Internet. Address blocks are carved from
// 20.0.0.0/8 upward, one /16 per country at a time.
func New() *Internet {
	return &Internet{
		listeners: make(map[string]*Listener),
		domains:   make(map[string]net.IP),
		rdns:      make(map[string]string),
		nextB:     make(map[string]uint32),
		countryOf: make(map[string]int),
		h3:        make(map[string]bool),
	}
}

// AllocIP allocates the next address for country and returns it. Each
// country draws from its own /16 block; a new block is carved when one
// fills.
func (in *Internet) AllocIP(country string) net.IP {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.allocIPLocked(country)
}

func (in *Internet) allocIPLocked(country string) net.IP {
	idx, ok := in.countryOf[country]
	if !ok || in.nextB[country] >= 0xFFFE {
		// Carve a fresh /16: 20.X.0.0/16 with X = block counter (spilling
		// into 21.x etc. beyond 256 blocks).
		n := in.nextSlash
		in.nextSlash++
		base := uint32(20)<<24 | n<<16
		ipnet := &net.IPNet{IP: u32ip(base), Mask: net.CIDRMask(16, 32)}
		in.blocks = append(in.blocks, Block{CIDR: ipnet, Country: country})
		idx = len(in.blocks) - 1
		in.countryOf[country] = idx
		in.nextB[country] = 1
	}
	off := in.nextB[country]
	in.nextB[country] = off + 1
	base := binary.BigEndian.Uint32(in.blocks[idx].CIDR.IP.To4())
	return u32ip(base + off)
}

func u32ip(v uint32) net.IP {
	ip := make(net.IP, 4)
	binary.BigEndian.PutUint32(ip, v)
	return ip
}

// Blocks returns a copy of the allocation table, for building the geoip
// database.
func (in *Internet) Blocks() []Block {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Block, len(in.blocks))
	copy(out, in.blocks)
	return out
}

// RegisterDomain binds a fully-qualified domain name to an address
// allocated in the given country, returning the address. Registering an
// already-known domain returns the existing address without reallocating.
func (in *Internet) RegisterDomain(fqdn, country string) net.IP {
	in.mu.Lock()
	defer in.mu.Unlock()
	if ip, ok := in.domains[fqdn]; ok {
		return ip
	}
	ip := in.allocIPLocked(country)
	in.domains[fqdn] = ip
	if _, ok := in.rdns[ip.String()]; !ok {
		in.rdns[ip.String()] = fqdn
	}
	return ip
}

// LookupHost resolves a registered domain (or returns a literal IP as-is).
func (in *Internet) LookupHost(host string) (net.IP, error) {
	if ip := net.ParseIP(host); ip != nil {
		return ip, nil
	}
	if fn := in.faultHookFn(); fn != nil {
		if err := fn("lookup", host); err != nil {
			return nil, err
		}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	ip, ok := in.domains[host]
	if !ok {
		return nil, &ErrNoSuchHost{Host: host}
	}
	return ip, nil
}

// ReverseLookup returns the first domain registered at ip, if any.
func (in *Internet) ReverseLookup(ip net.IP) (string, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	d, ok := in.rdns[ip.String()]
	return d, ok
}

// Domains returns all registered domains, sorted.
func (in *Internet) Domains() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.domains))
	for d := range in.domains {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// AdvertiseH3 marks a domain as offering HTTP/3 (UDP/443). The HTTP/3
// blocking experiment uses it.
func (in *Internet) AdvertiseH3(fqdn string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.h3[fqdn] = true
}

// SupportsH3 reports whether a domain advertises HTTP/3.
func (in *Internet) SupportsH3(fqdn string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.h3[fqdn]
}

// Listener accepts in-memory connections delivered to a registered
// ip:port. It implements net.Listener.
type Listener struct {
	in     *Internet
	addr   *net.TCPAddr
	ch     chan *Conn
	done   chan struct{}
	closed sync.Once
}

// ListenIP registers a listener at ip:port.
func (in *Internet) ListenIP(ip net.IP, port int) (*Listener, error) {
	key := TCPAddr(ip, port).String()
	in.mu.Lock()
	defer in.mu.Unlock()
	if _, ok := in.listeners[key]; ok {
		return nil, fmt.Errorf("netsim: address in use: %s", key)
	}
	l := &Listener{
		in:   in,
		addr: TCPAddr(ip, port),
		ch:   make(chan *Conn, 128),
		done: make(chan struct{}),
	}
	in.listeners[key] = l
	mActiveListeners.Inc()
	return l, nil
}

// ListenDomain registers fqdn in country (allocating an address if needed)
// and listens on the given port there.
func (in *Internet) ListenDomain(fqdn, country string, port int) (*Listener, net.IP, error) {
	ip := in.RegisterDomain(fqdn, country)
	l, err := in.ListenIP(ip, port)
	if err != nil {
		return nil, nil, err
	}
	return l, ip, nil
}

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close unregisters the listener. Pending Accept calls return net.ErrClosed.
func (l *Listener) Close() error {
	l.closed.Do(func() {
		l.in.mu.Lock()
		delete(l.in.listeners, l.addr.String())
		l.in.mu.Unlock()
		mActiveListeners.Dec()
		close(l.done)
	})
	return nil
}

// Addr returns the listen address.
func (l *Listener) Addr() net.Addr { return l.addr }

// deliver hands the server end of a new connection to the listener.
func (l *Listener) deliver(c *Conn) error {
	select {
	case l.ch <- c:
		return nil
	case <-l.done:
		return net.ErrClosed
	}
}

// DialOption customises a Dial.
type DialOption func(*dialConfig)

type dialConfig struct {
	meta    Meta
	srcIP   net.IP
	srcPort int
}

// WithMeta attaches simulation metadata to the connection.
func WithMeta(m Meta) DialOption { return func(c *dialConfig) { c.meta = m } }

// WithSource sets the client-side address of the connection.
func WithSource(ip net.IP, port int) DialOption {
	return func(c *dialConfig) { c.srcIP = ip; c.srcPort = port }
}

var dialSeq struct {
	mu   sync.Mutex
	next int
}

func nextEphemeralPort() int {
	dialSeq.mu.Lock()
	defer dialSeq.mu.Unlock()
	if dialSeq.next == 0 || dialSeq.next > 60999 {
		dialSeq.next = 32768
	}
	p := dialSeq.next
	dialSeq.next++
	return p
}

// Dial opens a connection to addr ("host:port", host may be a domain or a
// literal IP). It resolves the host, finds the listener and returns the
// client end. There is no handshake latency: the server end is delivered
// to the listener before Dial returns.
func (in *Internet) Dial(ctx context.Context, addr string, opts ...DialOption) (conn *Conn, err error) {
	start := time.Now()
	defer func() {
		mDialLatency.Observe(time.Since(start).Seconds())
		if err != nil {
			mDialErrors.Inc()
		} else {
			mConnsOpened.Inc()
		}
	}()
	cfg := dialConfig{meta: Meta{OwnerUID: -1, OriginalDst: addr}}
	for _, o := range opts {
		o(&cfg)
	}
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("netsim: dial %s: %w", addr, err)
	}
	var port int
	if _, err := fmt.Sscanf(portStr, "%d", &port); err != nil {
		return nil, fmt.Errorf("netsim: dial %s: bad port: %w", addr, err)
	}
	if fn := in.faultHookFn(); fn != nil {
		if err := fn("dial", host); err != nil {
			return nil, err
		}
	}
	ip, err := in.LookupHost(host)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	in.mu.Lock()
	l, ok := in.listeners[TCPAddr(ip, port).String()]
	in.mu.Unlock()
	if !ok {
		return nil, &ErrConnRefused{Addr: TCPAddr(ip, port).String()}
	}

	srcIP := cfg.srcIP
	if srcIP == nil {
		srcIP = net.IPv4(192, 168, 1, 100)
	}
	srcPort := cfg.srcPort
	if srcPort == 0 {
		srcPort = nextEphemeralPort()
	}
	client, server := Pair(TCPAddr(srcIP, srcPort), TCPAddr(ip, port), cfg.meta)
	if err := l.deliver(server); err != nil {
		return nil, &ErrConnRefused{Addr: TCPAddr(ip, port).String()}
	}
	return client, nil
}

// DeliverTo injects a pre-built server conn into the listener at addr.
// The device network stack uses it to complete transparent redirection
// with rewritten metadata.
func (in *Internet) DeliverTo(addr string, server *Conn) error {
	in.mu.Lock()
	l, ok := in.listeners[addr]
	in.mu.Unlock()
	if !ok {
		return &ErrConnRefused{Addr: addr}
	}
	return l.deliver(server)
}

// HasListener reports whether something listens at "ip:port".
func (in *Internet) HasListener(addr string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	_, ok := in.listeners[addr]
	return ok
}
