package netsim

import (
	"fmt"
	"net"
	"os"
	"sync"
	"time"
)

// Datagram is one UDP message in flight.
type Datagram struct {
	From    *net.UDPAddr
	To      *net.UDPAddr
	Payload []byte
}

// UDPEndpoint is a bound UDP socket on the virtual internet. It implements
// the subset of net.PacketConn the simulation needs (ReadFrom, WriteTo,
// Close, deadlines).
type UDPEndpoint struct {
	in       *Internet
	addr     *net.UDPAddr
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []Datagram
	closed   bool
	deadline time.Time
}

// ListenUDP binds a UDP endpoint at ip:port.
func (in *Internet) ListenUDP(ip net.IP, port int) (*UDPEndpoint, error) {
	key := (&net.UDPAddr{IP: ip, Port: port}).String()
	in.udpMu.Lock()
	defer in.udpMu.Unlock()
	if in.udp == nil {
		in.udp = make(map[string]*UDPEndpoint)
	}
	if _, ok := in.udp[key]; ok {
		return nil, fmt.Errorf("netsim: udp address in use: %s", key)
	}
	ep := &UDPEndpoint{in: in, addr: &net.UDPAddr{IP: ip, Port: port}}
	ep.cond = sync.NewCond(&ep.mu)
	in.udp[key] = ep
	return ep, nil
}

// SendUDP delivers a datagram to the endpoint bound at to, if any. It
// reports whether a receiver existed; lost datagrams are silently dropped,
// matching UDP semantics, but the boolean lets callers model ICMP
// port-unreachable behaviour.
func (in *Internet) SendUDP(from, to *net.UDPAddr, payload []byte) bool {
	in.udpMu.Lock()
	ep, ok := in.udp[to.String()]
	in.udpMu.Unlock()
	if !ok {
		return false
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return false
	}
	p := make([]byte, len(payload))
	copy(p, payload)
	ep.queue = append(ep.queue, Datagram{From: from, To: to, Payload: p})
	ep.cond.Broadcast()
	return true
}

// ReadFrom blocks until a datagram arrives, the endpoint closes, or the
// deadline passes.
func (ep *UDPEndpoint) ReadFrom(p []byte) (int, *net.UDPAddr, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for {
		if len(ep.queue) > 0 {
			d := ep.queue[0]
			ep.queue = ep.queue[1:]
			n := copy(p, d.Payload)
			return n, d.From, nil
		}
		if ep.closed {
			return 0, nil, net.ErrClosed
		}
		if !ep.deadline.IsZero() && !time.Now().Before(ep.deadline) {
			return 0, nil, os.ErrDeadlineExceeded
		}
		ep.cond.Wait()
	}
}

// WriteTo sends a datagram from this endpoint's address.
func (ep *UDPEndpoint) WriteTo(p []byte, to *net.UDPAddr) (int, error) {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return 0, net.ErrClosed
	}
	ep.mu.Unlock()
	ep.in.SendUDP(ep.addr, to, p)
	return len(p), nil
}

// SetReadDeadline sets the deadline for ReadFrom.
func (ep *UDPEndpoint) SetReadDeadline(t time.Time) error {
	ep.mu.Lock()
	ep.deadline = t
	ep.cond.Broadcast()
	ep.mu.Unlock()
	if !t.IsZero() {
		time.AfterFunc(time.Until(t), func() {
			ep.mu.Lock()
			ep.cond.Broadcast()
			ep.mu.Unlock()
		})
	}
	return nil
}

// LocalAddr returns the bound address.
func (ep *UDPEndpoint) LocalAddr() *net.UDPAddr { return ep.addr }

// Close unbinds the endpoint.
func (ep *UDPEndpoint) Close() error {
	ep.in.udpMu.Lock()
	delete(ep.in.udp, ep.addr.String())
	ep.in.udpMu.Unlock()
	ep.mu.Lock()
	ep.closed = true
	ep.cond.Broadcast()
	ep.mu.Unlock()
	return nil
}
