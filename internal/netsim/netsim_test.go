package netsim

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestAllocIPDistinct(t *testing.T) {
	in := New()
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		ip := in.AllocIP("US").String()
		if seen[ip] {
			t.Fatalf("duplicate IP %s", ip)
		}
		seen[ip] = true
	}
}

func TestAllocIPCountryBlocks(t *testing.T) {
	in := New()
	us := in.AllocIP("US")
	ru := in.AllocIP("RU")
	us2 := in.AllocIP("US")
	blocks := in.Blocks()
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(blocks))
	}
	find := func(ip net.IP) string {
		for _, b := range blocks {
			if b.CIDR.Contains(ip) {
				return b.Country
			}
		}
		return ""
	}
	if find(us) != "US" || find(us2) != "US" || find(ru) != "RU" {
		t.Fatalf("IPs not in country blocks: us=%v ru=%v us2=%v", us, ru, us2)
	}
}

func TestAllocIPBlockOverflow(t *testing.T) {
	in := New()
	seen := map[string]bool{}
	// More than one /16 worth of hosts.
	for i := 0; i < 70000; i++ {
		ip := in.AllocIP("DE").String()
		if seen[ip] {
			t.Fatalf("duplicate IP %s at %d", ip, i)
		}
		seen[ip] = true
	}
	var deBlocks int
	for _, b := range in.Blocks() {
		if b.Country == "DE" {
			deBlocks++
		}
	}
	if deBlocks < 2 {
		t.Fatalf("DE blocks = %d, want >= 2", deBlocks)
	}
}

func TestRegisterDomainIdempotent(t *testing.T) {
	in := New()
	a := in.RegisterDomain("example.com", "US")
	b := in.RegisterDomain("example.com", "US")
	if !a.Equal(b) {
		t.Fatalf("reregistration changed address: %v vs %v", a, b)
	}
}

func TestLookupHost(t *testing.T) {
	in := New()
	ip := in.RegisterDomain("example.com", "US")
	got, err := in.LookupHost("example.com")
	if err != nil || !got.Equal(ip) {
		t.Fatalf("LookupHost = %v, %v", got, err)
	}
	if _, err := in.LookupHost("nonexistent.example"); err == nil {
		t.Fatal("no error for unknown host")
	} else {
		var nsh *ErrNoSuchHost
		if !errors.As(err, &nsh) {
			t.Fatalf("error type %T", err)
		}
	}
	lit, err := in.LookupHost("1.2.3.4")
	if err != nil || lit.String() != "1.2.3.4" {
		t.Fatalf("literal lookup = %v, %v", lit, err)
	}
}

func TestReverseLookup(t *testing.T) {
	in := New()
	ip := in.RegisterDomain("example.com", "US")
	d, ok := in.ReverseLookup(ip)
	if !ok || d != "example.com" {
		t.Fatalf("ReverseLookup = %q, %v", d, ok)
	}
}

func TestDialRefusedWithoutListener(t *testing.T) {
	in := New()
	in.RegisterDomain("example.com", "US")
	_, err := in.Dial(context.Background(), "example.com:443")
	var refused *ErrConnRefused
	if !errors.As(err, &refused) {
		t.Fatalf("err = %v, want ErrConnRefused", err)
	}
}

func TestDialAndEcho(t *testing.T) {
	in := New()
	l, _, err := in.ListenDomain("echo.example", "US", 7)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		io.Copy(c, c)
		c.Close()
	}()
	c, err := in.Dial(context.Background(), "echo.example:7")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("echo = %q", buf)
	}
	c.Close()
}

func TestConnAddresses(t *testing.T) {
	in := New()
	l, ip, err := in.ListenDomain("addr.example", "FR", 443)
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		accepted <- c
	}()
	c, err := in.Dial(context.Background(), "addr.example:443",
		WithSource(net.IPv4(10, 0, 0, 9), 5555))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.RemoteAddr().String(); got != fmt.Sprintf("%s:443", ip) {
		t.Fatalf("RemoteAddr = %s", got)
	}
	if got := c.LocalAddr().String(); got != "10.0.0.9:5555" {
		t.Fatalf("LocalAddr = %s", got)
	}
	srv := <-accepted
	if got := srv.RemoteAddr().String(); got != "10.0.0.9:5555" {
		t.Fatalf("server RemoteAddr = %s", got)
	}
}

func TestConnMetaPropagates(t *testing.T) {
	in := New()
	l, _, err := in.ListenDomain("meta.example", "US", 80)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, _ := l.Accept()
		mc := c.(MetaConn)
		if mc.Meta().OwnerUID != 10089 || mc.Meta().OriginalDst != "orig.example:443" {
			t.Errorf("server meta = %+v", mc.Meta())
		}
		c.Close()
	}()
	c, err := in.Dial(context.Background(), "meta.example:80",
		WithMeta(Meta{OwnerUID: 10089, OriginalDst: "orig.example:443", Redirected: true}))
	if err != nil {
		t.Fatal(err)
	}
	if c.Meta().OwnerUID != 10089 {
		t.Fatalf("client meta = %+v", c.Meta())
	}
	c.Close()
}

func TestCloseGivesEOFAfterDrain(t *testing.T) {
	a, b := Pair(TCPAddr(net.IPv4(1, 1, 1, 1), 1), TCPAddr(net.IPv4(2, 2, 2, 2), 2), Meta{})
	a.Write([]byte("tail"))
	a.Close()
	buf := make([]byte, 10)
	n, err := b.Read(buf)
	if err != nil || string(buf[:n]) != "tail" {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}
	if _, err := b.Read(buf); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
	if _, err := b.Write([]byte("x")); err == nil {
		t.Fatal("write to closed pipe succeeded")
	}
}

func TestReadDeadline(t *testing.T) {
	a, _ := Pair(TCPAddr(net.IPv4(1, 1, 1, 1), 1), TCPAddr(net.IPv4(2, 2, 2, 2), 2), Meta{})
	a.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	start := time.Now()
	_, err := a.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline wait too long")
	}
}

func TestDeadlineClearedAllowsRead(t *testing.T) {
	a, b := Pair(TCPAddr(net.IPv4(1, 1, 1, 1), 1), TCPAddr(net.IPv4(2, 2, 2, 2), 2), Meta{})
	a.SetReadDeadline(time.Now().Add(-time.Second))
	if _, err := a.Read(make([]byte, 1)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	a.SetReadDeadline(time.Time{})
	b.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := a.Read(buf); err != nil {
		t.Fatalf("read after clearing deadline: %v", err)
	}
}

func TestListenerClose(t *testing.T) {
	in := New()
	l, ip, err := in.ListenDomain("closer.example", "US", 80)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	l.Close()
	if err := <-done; err != net.ErrClosed {
		t.Fatalf("Accept err = %v", err)
	}
	if in.HasListener(TCPAddr(ip, 80).String()) {
		t.Fatal("listener still registered")
	}
	l.Close() // idempotent
}

func TestAddressInUse(t *testing.T) {
	in := New()
	_, ip, err := in.ListenDomain("dup.example", "US", 80)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.ListenIP(ip, 80); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
}

func TestHTTPOverNetsim(t *testing.T) {
	in := New()
	l, _, err := in.ListenDomain("web.example", "US", 80)
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "hello %s", r.URL.Path)
	})}
	go srv.Serve(l)
	defer srv.Close()

	client := &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			return in.Dial(ctx, addr)
		},
	}}
	resp, err := client.Get("http://web.example/page")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "hello /page" {
		t.Fatalf("body = %q", body)
	}
}

func TestDeliverTo(t *testing.T) {
	in := New()
	l, ip, err := in.ListenDomain("proxy.example", "US", 8080)
	if err != nil {
		t.Fatal(err)
	}
	client, server := Pair(TCPAddr(net.IPv4(10, 0, 0, 1), 40000), TCPAddr(ip, 8080),
		Meta{OriginalDst: "real.example:443", Redirected: true})
	if err := in.DeliverTo(TCPAddr(ip, 8080).String(), server); err != nil {
		t.Fatal(err)
	}
	c, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.(MetaConn).Meta().OriginalDst; got != "real.example:443" {
		t.Fatalf("OriginalDst = %q", got)
	}
	client.Close()
}

func TestDeliverToUnknownAddr(t *testing.T) {
	in := New()
	_, server := Pair(TCPAddr(net.IPv4(1, 1, 1, 1), 1), TCPAddr(net.IPv4(2, 2, 2, 2), 2), Meta{})
	if err := in.DeliverTo("9.9.9.9:1", server); err == nil {
		t.Fatal("DeliverTo to unknown address succeeded")
	}
}

func TestDialContextCancelled(t *testing.T) {
	in := New()
	in.RegisterDomain("ctx.example", "US")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := in.Dial(ctx, "ctx.example:80"); err == nil {
		t.Fatal("dial with cancelled context succeeded")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	in := New()
	serverAddr := &net.UDPAddr{IP: net.IPv4(20, 0, 0, 53), Port: 53}
	srv, err := in.ListenUDP(serverAddr.IP, 53)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := in.ListenUDP(net.IPv4(192, 168, 1, 2), 40000)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		buf := make([]byte, 512)
		n, from, err := srv.ReadFrom(buf)
		if err != nil {
			return
		}
		srv.WriteTo(append([]byte("re:"), buf[:n]...), from)
	}()
	if _, err := cli.WriteTo([]byte("ping"), serverAddr); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	cli.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, from, err := cli.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "re:ping" || from.Port != 53 {
		t.Fatalf("got %q from %v", buf[:n], from)
	}
}

func TestUDPUnreachable(t *testing.T) {
	in := New()
	if in.SendUDP(&net.UDPAddr{IP: net.IPv4(1, 1, 1, 1), Port: 1},
		&net.UDPAddr{IP: net.IPv4(2, 2, 2, 2), Port: 2}, []byte("x")) {
		t.Fatal("SendUDP reported delivery with no receiver")
	}
}

func TestUDPCloseUnbinds(t *testing.T) {
	in := New()
	ep, err := in.ListenUDP(net.IPv4(20, 0, 0, 9), 99)
	if err != nil {
		t.Fatal(err)
	}
	ep.Close()
	if _, err := in.ListenUDP(net.IPv4(20, 0, 0, 9), 99); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestH3Advertisement(t *testing.T) {
	in := New()
	in.AdvertiseH3("h3.example")
	if !in.SupportsH3("h3.example") || in.SupportsH3("h1.example") {
		t.Fatal("H3 advertisement wrong")
	}
}

func TestConcurrentDials(t *testing.T) {
	in := New()
	l, _, err := in.ListenDomain("busy.example", "US", 80)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				br := bufio.NewReader(c)
				line, _ := br.ReadString('\n')
				fmt.Fprintf(c, "ok %s", line)
				c.Close()
			}(c)
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := in.Dial(context.Background(), "busy.example:80")
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			fmt.Fprintf(c, "req%d\n", i)
			data, _ := io.ReadAll(c)
			if !strings.HasPrefix(string(data), fmt.Sprintf("ok req%d", i)) {
				t.Errorf("resp %d = %q", i, data)
			}
			c.Close()
		}(i)
	}
	wg.Wait()
}

// Property: every payload written in one chunk is read back intact across
// the pipe regardless of read buffer sizing.
func TestPropertyPipePreservesBytes(t *testing.T) {
	f := func(payload []byte, readSize uint8) bool {
		a, b := Pair(TCPAddr(net.IPv4(1, 1, 1, 1), 1), TCPAddr(net.IPv4(2, 2, 2, 2), 2), Meta{})
		go func() {
			a.Write(payload)
			a.Close()
		}()
		rs := int(readSize)%64 + 1
		var got []byte
		buf := make([]byte, rs)
		for {
			n, err := b.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				break
			}
		}
		return string(got) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: allocated IPs always fall inside a block allocated to the same
// country.
func TestPropertyAllocWithinCountryBlock(t *testing.T) {
	f := func(picks []bool) bool {
		in := New()
		for _, us := range picks {
			country := "RU"
			if us {
				country = "US"
			}
			ip := in.AllocIP(country)
			found := false
			for _, b := range in.Blocks() {
				if b.CIDR.Contains(ip) {
					if b.Country != country {
						return false
					}
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestByteAndCloseHooks(t *testing.T) {
	a, b := Pair(TCPAddr(net.IPv4(1, 1, 1, 1), 1), TCPAddr(net.IPv4(2, 2, 2, 2), 2), Meta{})
	var wrote, read, closed int
	a.SetByteHooks(func(n int) { wrote += n }, func(n int) { read += n })
	a.SetCloseHook(func() { closed++ })
	a.Write([]byte("12345"))
	go b.Write([]byte("abc"))
	buf := make([]byte, 3)
	io.ReadFull(a, buf)
	a.Close()
	a.Close() // close hook fires once
	if wrote != 5 || read != 3 || closed != 1 {
		t.Fatalf("wrote=%d read=%d closed=%d", wrote, read, closed)
	}
}

func TestDomainsListing(t *testing.T) {
	in := New()
	in.RegisterDomain("b.example", "US")
	in.RegisterDomain("a.example", "DE")
	got := in.Domains()
	if len(got) != 2 || got[0] != "a.example" || got[1] != "b.example" {
		t.Fatalf("domains = %v", got)
	}
}
