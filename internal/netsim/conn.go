package netsim

import (
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// Meta carries simulation metadata on a connection: the kernel UID of the
// process that created it and, after a netfilter REDIRECT, the original
// destination (the in-memory analogue of SO_ORIGINAL_DST).
type Meta struct {
	// OwnerUID is the kernel UID of the originating app process, or -1
	// when unknown.
	OwnerUID int
	// OriginalDst is the "host:port" the process originally dialled,
	// preserved across transparent redirection.
	OriginalDst string
	// Redirected reports whether a REDIRECT target rewrote the
	// destination.
	Redirected bool
}

// MetaConn is implemented by connections that carry Meta. The transparent
// proxy uses it to recover the original destination of a diverted flow.
type MetaConn interface {
	net.Conn
	Meta() Meta
}

// pipeBuf is one direction of an in-memory connection: a byte queue with
// blocking reads, close semantics and deadline support.
type pipeBuf struct {
	mu       sync.Mutex
	cond     *sync.Cond
	buf      []byte
	closed   bool // no more writes will arrive
	deadline time.Time
	dlTimer  *time.Timer
}

func newPipeBuf() *pipeBuf {
	b := &pipeBuf{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *pipeBuf) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, io.ErrClosedPipe
	}
	b.buf = append(b.buf, p...)
	b.cond.Broadcast()
	return len(p), nil
}

func (b *pipeBuf) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if len(b.buf) > 0 {
			n := copy(p, b.buf)
			b.buf = b.buf[n:]
			if len(b.buf) == 0 {
				b.buf = nil // release backing array
			}
			return n, nil
		}
		if b.closed {
			return 0, io.EOF
		}
		if !b.deadline.IsZero() && !time.Now().Before(b.deadline) {
			return 0, os.ErrDeadlineExceeded
		}
		b.cond.Wait()
	}
}

func (b *pipeBuf) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.cond.Broadcast()
}

func (b *pipeBuf) setDeadline(t time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.deadline = t
	if b.dlTimer != nil {
		b.dlTimer.Stop()
		b.dlTimer = nil
	}
	if !t.IsZero() {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		b.dlTimer = time.AfterFunc(d, func() {
			b.mu.Lock()
			b.cond.Broadcast()
			b.mu.Unlock()
		})
	}
	b.cond.Broadcast()
}

func (b *pipeBuf) buffered() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}

// Conn is one endpoint of an in-memory duplex connection. It implements
// net.Conn (and MetaConn) with buffered writes, so HTTP request/response
// exchanges never deadlock the way unbuffered net.Pipe can.
type Conn struct {
	rd, wr    *pipeBuf
	local     net.Addr
	remote    net.Addr
	meta      Meta
	closeOnce sync.Once
	onClose   func()
	wrote     func(int) // byte accounting hook, may be nil
	readCount func(int)
}

// Pair returns two connected endpoints with the given addresses. Data
// written to one end is readable from the other. meta is attached to the
// client end; the server end sees the same meta (the proxy reads it from
// the accepted side).
func Pair(clientAddr, serverAddr net.Addr, meta Meta) (client, server *Conn) {
	a2b := newPipeBuf() // client writes, server reads
	b2a := newPipeBuf() // server writes, client reads
	client = &Conn{rd: b2a, wr: a2b, local: clientAddr, remote: serverAddr, meta: meta}
	server = &Conn{rd: a2b, wr: b2a, local: serverAddr, remote: clientAddr, meta: meta}
	return client, server
}

// Read reads available bytes, blocking until data, EOF or deadline.
func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.rd.read(p)
	if n > 0 && c.readCount != nil {
		c.readCount(n)
	}
	return n, err
}

// Write appends p to the peer's read buffer.
func (c *Conn) Write(p []byte) (int, error) {
	n, err := c.wr.write(p)
	if n > 0 && c.wrote != nil {
		c.wrote(n)
	}
	return n, err
}

// Close closes both directions. The peer's reads return EOF once the
// buffered data is drained; the peer's writes fail immediately.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.wr.close()
		c.rd.close()
		if c.onClose != nil {
			c.onClose()
		}
	})
	return nil
}

// LocalAddr returns this endpoint's address.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr returns the peer's address.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline sets both read and write deadlines.
func (c *Conn) SetDeadline(t time.Time) error {
	c.rd.setDeadline(t)
	c.wr.setDeadline(t)
	return nil
}

// SetReadDeadline sets the read deadline.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.rd.setDeadline(t)
	return nil
}

// SetWriteDeadline sets the write deadline. Writes to an in-memory buffer
// never block, so the deadline only matters once the peer closes.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.wr.setDeadline(t)
	return nil
}

// Meta returns the simulation metadata attached at dial time.
func (c *Conn) Meta() Meta { return c.meta }

// SetMeta replaces the metadata on this endpoint. The device network stack
// uses it to stamp the original destination before handing the server end
// to the transparent proxy.
func (c *Conn) SetMeta(m Meta) { c.meta = m }

// SetByteHooks installs per-direction byte counters: onWrite runs with the
// size of every successful Write, onRead with the size of every successful
// Read. The device network stack wires these to its eBPF-style traffic
// accounting and capture tap. Either hook may be nil.
func (c *Conn) SetByteHooks(onWrite, onRead func(n int)) {
	c.wrote = onWrite
	c.readCount = onRead
}

// SetCloseHook installs a callback that runs once when the connection
// closes.
func (c *Conn) SetCloseHook(fn func()) { c.onClose = fn }

// BufferedForRead reports the number of bytes waiting to be read. Tests
// use it to assert drain behaviour.
func (c *Conn) BufferedForRead() int { return c.rd.buffered() }

// TCPAddr builds a *net.TCPAddr for ip:port.
func TCPAddr(ip net.IP, port int) *net.TCPAddr {
	return &net.TCPAddr{IP: ip, Port: port}
}
