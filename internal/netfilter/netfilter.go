// Package netfilter implements the iptables-style rule engine the paper's
// testbed uses to divert each browser's traffic into the transparent MITM
// proxy. Panoptes extracts every browser's kernel UID and installs
// per-UID REDIRECT rules in the nat/OUTPUT chain, plus a DROP rule for
// UDP 443 that forces HTTP/3 clients to fall back to proxyable HTTP/2 or
// HTTP/1.1 (paper §2.2).
//
// Rules are evaluated against connection metadata by the device network
// stack; the engine supports the matches the paper needs (protocol,
// destination port/network, owner UID — iptables' `-m owner --uid-owner`)
// and the ACCEPT, DROP, RETURN and REDIRECT targets. A small parser
// accepts the familiar iptables flag syntax so campaigns read like the
// real tool invocations.
package netfilter

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
)

// Verdict is the outcome of evaluating a chain against a packet.
type Verdict int

// Verdicts.
const (
	VerdictAccept Verdict = iota
	VerdictDrop
	VerdictRedirect
	verdictReturn // internal: fall through to the chain policy
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictAccept:
		return "ACCEPT"
	case VerdictDrop:
		return "DROP"
	case VerdictRedirect:
		return "REDIRECT"
	case verdictReturn:
		return "RETURN"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Proto selects a transport protocol.
type Proto string

// Protocols.
const (
	ProtoAll Proto = "all"
	ProtoTCP Proto = "tcp"
	ProtoUDP Proto = "udp"
)

// Packet is the metadata a rule is matched against.
type Packet struct {
	Proto    Proto
	SrcIP    net.IP
	DstIP    net.IP
	DstPort  int
	OwnerUID int // -1 when unknown (e.g. forwarded traffic)
}

// Match is the condition part of a rule. Nil pointer fields are
// wildcards.
type Match struct {
	Proto    Proto      // ProtoAll matches everything
	OwnerUID *int       // -m owner --uid-owner
	DstPort  *int       // --dport
	DstNet   *net.IPNet // -d
}

// Matches reports whether pkt satisfies the condition.
func (m Match) Matches(pkt Packet) bool {
	if m.Proto != "" && m.Proto != ProtoAll && m.Proto != pkt.Proto {
		return false
	}
	if m.OwnerUID != nil && *m.OwnerUID != pkt.OwnerUID {
		return false
	}
	if m.DstPort != nil && *m.DstPort != pkt.DstPort {
		return false
	}
	if m.DstNet != nil && (pkt.DstIP == nil || !m.DstNet.Contains(pkt.DstIP)) {
		return false
	}
	return true
}

// Rule couples a match with a target.
type Rule struct {
	Match        Match
	Verdict      Verdict
	RedirectAddr string // "ip:port" for VerdictRedirect
	Comment      string
}

// Result is the evaluation outcome.
type Result struct {
	Verdict      Verdict
	RedirectAddr string
	Rule         *Rule // matching rule, nil when the chain policy applied
}

// Chain is an ordered rule list with a default policy.
type Chain struct {
	name   string
	policy Verdict
	rules  []*Rule
}

// Table is a named set of chains ("nat", "filter").
type Table struct {
	name   string
	chains map[string]*Chain
}

// Stack is the full rule stack. It is safe for concurrent use.
type Stack struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewStack creates a stack with the standard nat and filter tables, each
// holding OUTPUT and PREROUTING chains with ACCEPT policies.
func NewStack() *Stack {
	s := &Stack{tables: make(map[string]*Table)}
	for _, tn := range []string{"nat", "filter"} {
		t := &Table{name: tn, chains: make(map[string]*Chain)}
		for _, cn := range []string{"OUTPUT", "PREROUTING"} {
			t.chains[cn] = &Chain{name: cn, policy: VerdictAccept}
		}
		s.tables[tn] = t
	}
	return s
}

func (s *Stack) chain(table, chain string) (*Chain, error) {
	t, ok := s.tables[table]
	if !ok {
		return nil, fmt.Errorf("netfilter: no such table %q", table)
	}
	c, ok := t.chains[chain]
	if !ok {
		return nil, fmt.Errorf("netfilter: no chain %q in table %q", chain, table)
	}
	return c, nil
}

// Append adds a rule to the end of a chain (iptables -A).
func (s *Stack) Append(table, chain string, r Rule) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.chain(table, chain)
	if err != nil {
		return err
	}
	if r.Verdict == VerdictRedirect && r.RedirectAddr == "" {
		return fmt.Errorf("netfilter: REDIRECT rule without destination")
	}
	rr := r
	c.rules = append(c.rules, &rr)
	return nil
}

// Flush removes all rules from a chain (iptables -F).
func (s *Stack) Flush(table, chain string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.chain(table, chain)
	if err != nil {
		return err
	}
	c.rules = nil
	return nil
}

// FlushAll clears every chain in every table.
func (s *Stack) FlushAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.tables {
		for _, c := range t.chains {
			c.rules = nil
		}
	}
}

// SetPolicy sets a chain's default policy (iptables -P).
func (s *Stack) SetPolicy(table, chain string, v Verdict) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.chain(table, chain)
	if err != nil {
		return err
	}
	if v != VerdictAccept && v != VerdictDrop {
		return fmt.Errorf("netfilter: invalid chain policy %v", v)
	}
	c.policy = v
	return nil
}

// Rules lists a chain's rules in order.
func (s *Stack) Rules(table, chain string) ([]Rule, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, err := s.chain(table, chain)
	if err != nil {
		return nil, err
	}
	out := make([]Rule, len(c.rules))
	for i, r := range c.rules {
		out[i] = *r
	}
	return out, nil
}

// Eval runs pkt through a chain: the first matching rule decides, the
// policy applies otherwise. RETURN rules fall through to the policy, as
// in a built-in chain.
func (s *Stack) Eval(table, chain string, pkt Packet) (Result, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, err := s.chain(table, chain)
	if err != nil {
		return Result{}, err
	}
	for _, r := range c.rules {
		if !r.Match.Matches(pkt) {
			continue
		}
		if r.Verdict == verdictReturn {
			break
		}
		return Result{Verdict: r.Verdict, RedirectAddr: r.RedirectAddr, Rule: r}, nil
	}
	return Result{Verdict: c.policy}, nil
}

// EvalOutput runs the locally-generated-traffic path: nat/OUTPUT first
// (for REDIRECT), then filter/OUTPUT (for DROP), mirroring netfilter's
// traversal order for local output.
func (s *Stack) EvalOutput(pkt Packet) (Result, error) {
	natRes, err := s.Eval("nat", "OUTPUT", pkt)
	if err != nil {
		return Result{}, err
	}
	filterRes, err := s.Eval("filter", "OUTPUT", pkt)
	if err != nil {
		return Result{}, err
	}
	if filterRes.Verdict == VerdictDrop {
		return filterRes, nil
	}
	return natRes, nil
}

// Exec parses and applies one iptables-style command line, e.g.
//
//	-t nat -A OUTPUT -p tcp -m owner --uid-owner 10089 -j REDIRECT --to 192.168.1.100:8080
//	-t filter -A OUTPUT -p udp --dport 443 -j DROP
//
// Unsupported flags return an error rather than being ignored.
func (s *Stack) Exec(cmdline string) error {
	args := strings.Fields(cmdline)
	table := "filter"
	var chain string
	var op string // "A", "F", "P"
	var policy string
	r := Rule{Verdict: VerdictAccept}
	jumpSet := false

	i := 0
	next := func(flag string) (string, error) {
		i++
		if i >= len(args) {
			return "", fmt.Errorf("netfilter: %s needs an argument", flag)
		}
		return args[i], nil
	}
	for ; i < len(args); i++ {
		switch args[i] {
		case "-t":
			v, err := next("-t")
			if err != nil {
				return err
			}
			table = v
		case "-A":
			v, err := next("-A")
			if err != nil {
				return err
			}
			op, chain = "A", v
		case "-F":
			op = "F"
			if i+1 < len(args) && !strings.HasPrefix(args[i+1], "-") {
				i++
				chain = args[i]
			}
		case "-P":
			v, err := next("-P")
			if err != nil {
				return err
			}
			op, chain = "P", v
			pv, err := next("-P")
			if err != nil {
				return err
			}
			policy = pv
		case "-p":
			v, err := next("-p")
			if err != nil {
				return err
			}
			switch Proto(v) {
			case ProtoTCP, ProtoUDP, ProtoAll:
				r.Match.Proto = Proto(v)
			default:
				return fmt.Errorf("netfilter: unknown protocol %q", v)
			}
		case "-m":
			v, err := next("-m")
			if err != nil {
				return err
			}
			if v != "owner" && v != "tcp" && v != "udp" {
				return fmt.Errorf("netfilter: unsupported match extension %q", v)
			}
		case "--uid-owner":
			v, err := next("--uid-owner")
			if err != nil {
				return err
			}
			uid, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("netfilter: bad uid %q: %w", v, err)
			}
			r.Match.OwnerUID = &uid
		case "--dport":
			v, err := next("--dport")
			if err != nil {
				return err
			}
			port, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("netfilter: bad port %q: %w", v, err)
			}
			r.Match.DstPort = &port
		case "-d":
			v, err := next("-d")
			if err != nil {
				return err
			}
			if !strings.Contains(v, "/") {
				v += "/32"
			}
			_, n, err := net.ParseCIDR(v)
			if err != nil {
				return fmt.Errorf("netfilter: bad destination %q: %w", v, err)
			}
			r.Match.DstNet = n
		case "-j":
			v, err := next("-j")
			if err != nil {
				return err
			}
			jumpSet = true
			switch v {
			case "ACCEPT":
				r.Verdict = VerdictAccept
			case "DROP":
				r.Verdict = VerdictDrop
			case "RETURN":
				r.Verdict = verdictReturn
			case "REDIRECT":
				r.Verdict = VerdictRedirect
			default:
				return fmt.Errorf("netfilter: unknown target %q", v)
			}
		case "--to", "--to-destination", "--to-ports":
			v, err := next(args[i])
			if err != nil {
				return err
			}
			r.RedirectAddr = v
		case "--comment":
			v, err := next("--comment")
			if err != nil {
				return err
			}
			r.Comment = v
		default:
			return fmt.Errorf("netfilter: unsupported flag %q", args[i])
		}
	}

	switch op {
	case "A":
		if !jumpSet {
			return fmt.Errorf("netfilter: -A without -j")
		}
		return s.Append(table, chain, r)
	case "F":
		if chain == "" {
			s.FlushAll()
			return nil
		}
		return s.Flush(table, chain)
	case "P":
		var v Verdict
		switch policy {
		case "ACCEPT":
			v = VerdictAccept
		case "DROP":
			v = VerdictDrop
		default:
			return fmt.Errorf("netfilter: invalid policy %q", policy)
		}
		return s.SetPolicy(table, chain, v)
	}
	return fmt.Errorf("netfilter: no operation in %q", cmdline)
}
