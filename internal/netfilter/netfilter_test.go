package netfilter

import (
	"net"
	"testing"
	"testing/quick"
)

func intp(v int) *int { return &v }

func TestDefaultPolicyAccept(t *testing.T) {
	s := NewStack()
	res, err := s.Eval("nat", "OUTPUT", Packet{Proto: ProtoTCP, DstPort: 80, OwnerUID: 10001})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictAccept || res.Rule != nil {
		t.Fatalf("res = %+v", res)
	}
}

func TestOwnerRedirect(t *testing.T) {
	s := NewStack()
	err := s.Append("nat", "OUTPUT", Rule{
		Match:        Match{Proto: ProtoTCP, OwnerUID: intp(10089)},
		Verdict:      VerdictRedirect,
		RedirectAddr: "192.168.1.100:8080",
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := s.EvalOutput(Packet{Proto: ProtoTCP, DstPort: 443, OwnerUID: 10089})
	if res.Verdict != VerdictRedirect || res.RedirectAddr != "192.168.1.100:8080" {
		t.Fatalf("res = %+v", res)
	}
	// Different UID passes untouched.
	res, _ = s.EvalOutput(Packet{Proto: ProtoTCP, DstPort: 443, OwnerUID: 10090})
	if res.Verdict != VerdictAccept {
		t.Fatalf("other uid res = %+v", res)
	}
	// UDP from the same UID is not redirected by a -p tcp rule.
	res, _ = s.EvalOutput(Packet{Proto: ProtoUDP, DstPort: 443, OwnerUID: 10089})
	if res.Verdict != VerdictAccept {
		t.Fatalf("udp res = %+v", res)
	}
}

func TestFirstMatchWins(t *testing.T) {
	s := NewStack()
	s.Append("filter", "OUTPUT", Rule{Match: Match{DstPort: intp(80)}, Verdict: VerdictDrop})
	s.Append("filter", "OUTPUT", Rule{Match: Match{DstPort: intp(80)}, Verdict: VerdictAccept})
	res, _ := s.Eval("filter", "OUTPUT", Packet{Proto: ProtoTCP, DstPort: 80})
	if res.Verdict != VerdictDrop {
		t.Fatalf("res = %+v", res)
	}
}

func TestDropBeatsRedirectInOutputPath(t *testing.T) {
	s := NewStack()
	s.Append("nat", "OUTPUT", Rule{Match: Match{Proto: ProtoUDP}, Verdict: VerdictRedirect, RedirectAddr: "x:1"})
	s.Append("filter", "OUTPUT", Rule{Match: Match{Proto: ProtoUDP, DstPort: intp(443)}, Verdict: VerdictDrop})
	res, _ := s.EvalOutput(Packet{Proto: ProtoUDP, DstPort: 443})
	if res.Verdict != VerdictDrop {
		t.Fatalf("res = %+v", res)
	}
}

func TestDstNetMatch(t *testing.T) {
	s := NewStack()
	_, n, _ := net.ParseCIDR("20.5.0.0/16")
	s.Append("filter", "OUTPUT", Rule{Match: Match{DstNet: n}, Verdict: VerdictDrop})
	res, _ := s.Eval("filter", "OUTPUT", Packet{Proto: ProtoTCP, DstIP: net.IPv4(20, 5, 9, 9)})
	if res.Verdict != VerdictDrop {
		t.Fatal("in-net packet not dropped")
	}
	res, _ = s.Eval("filter", "OUTPUT", Packet{Proto: ProtoTCP, DstIP: net.IPv4(20, 6, 9, 9)})
	if res.Verdict != VerdictAccept {
		t.Fatal("out-of-net packet dropped")
	}
	// Packet without DstIP does not match a -d rule.
	res, _ = s.Eval("filter", "OUTPUT", Packet{Proto: ProtoTCP})
	if res.Verdict != VerdictAccept {
		t.Fatal("nil-DstIP packet dropped")
	}
}

func TestRedirectRequiresAddr(t *testing.T) {
	s := NewStack()
	if err := s.Append("nat", "OUTPUT", Rule{Verdict: VerdictRedirect}); err == nil {
		t.Fatal("REDIRECT without address accepted")
	}
}

func TestUnknownTableChain(t *testing.T) {
	s := NewStack()
	if _, err := s.Eval("mangle", "OUTPUT", Packet{}); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := s.Eval("nat", "FORWARD", Packet{}); err == nil {
		t.Fatal("unknown chain accepted")
	}
	if err := s.Append("nat", "NOPE", Rule{}); err == nil {
		t.Fatal("append to unknown chain accepted")
	}
}

func TestFlush(t *testing.T) {
	s := NewStack()
	s.Append("nat", "OUTPUT", Rule{Match: Match{}, Verdict: VerdictDrop})
	if err := s.Flush("nat", "OUTPUT"); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Eval("nat", "OUTPUT", Packet{})
	if res.Verdict != VerdictAccept {
		t.Fatal("rule survived flush")
	}
}

func TestSetPolicy(t *testing.T) {
	s := NewStack()
	if err := s.SetPolicy("filter", "OUTPUT", VerdictDrop); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Eval("filter", "OUTPUT", Packet{})
	if res.Verdict != VerdictDrop {
		t.Fatal("policy not applied")
	}
	if err := s.SetPolicy("filter", "OUTPUT", VerdictRedirect); err == nil {
		t.Fatal("REDIRECT accepted as policy")
	}
}

func TestExecPaperRules(t *testing.T) {
	// The two rule shapes §2.2 installs per browser.
	s := NewStack()
	if err := s.Exec("-t nat -A OUTPUT -p tcp -m owner --uid-owner 10089 -j REDIRECT --to 192.168.1.100:8080"); err != nil {
		t.Fatal(err)
	}
	if err := s.Exec("-t filter -A OUTPUT -p udp --dport 443 -j DROP"); err != nil {
		t.Fatal(err)
	}
	res, _ := s.EvalOutput(Packet{Proto: ProtoTCP, DstPort: 443, OwnerUID: 10089})
	if res.Verdict != VerdictRedirect || res.RedirectAddr != "192.168.1.100:8080" {
		t.Fatalf("tcp res = %+v", res)
	}
	res, _ = s.EvalOutput(Packet{Proto: ProtoUDP, DstPort: 443, OwnerUID: 10089})
	if res.Verdict != VerdictDrop {
		t.Fatalf("quic res = %+v", res)
	}
	res, _ = s.EvalOutput(Packet{Proto: ProtoUDP, DstPort: 53, OwnerUID: 10089})
	if res.Verdict != VerdictAccept {
		t.Fatalf("dns res = %+v", res)
	}
}

func TestExecFlushAndPolicy(t *testing.T) {
	s := NewStack()
	s.Exec("-t nat -A OUTPUT -p tcp -j DROP")
	if err := s.Exec("-t nat -F OUTPUT"); err != nil {
		t.Fatal(err)
	}
	rules, _ := s.Rules("nat", "OUTPUT")
	if len(rules) != 0 {
		t.Fatal("flush via Exec failed")
	}
	if err := s.Exec("-t filter -P OUTPUT DROP"); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Eval("filter", "OUTPUT", Packet{})
	if res.Verdict != VerdictDrop {
		t.Fatal("policy via Exec failed")
	}
	if err := s.Exec("-F"); err != nil {
		t.Fatal(err)
	}
}

func TestExecErrors(t *testing.T) {
	s := NewStack()
	for _, bad := range []string{
		"-t nat -A OUTPUT -p tcp", // no -j
		"-t nat -A OUTPUT -p icmp -j DROP",
		"-t nat -A OUTPUT -j TEAPOT",
		"-t nat -A OUTPUT --uid-owner notanumber -j DROP",
		"-t nat -A OUTPUT --dport abc -j DROP",
		"-t nat -A OUTPUT -d 300.1.1.1 -j DROP",
		"-t nat -A OUTPUT -m conntrack -j DROP",
		"-z",
		"",
	} {
		if err := s.Exec(bad); err == nil {
			t.Errorf("Exec(%q) succeeded", bad)
		}
	}
}

func TestExecDestinationMatch(t *testing.T) {
	s := NewStack()
	if err := s.Exec("-t filter -A OUTPUT -d 20.7.0.0/16 -j DROP"); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Eval("filter", "OUTPUT", Packet{Proto: ProtoTCP, DstIP: net.IPv4(20, 7, 1, 1)})
	if res.Verdict != VerdictDrop {
		t.Fatal("destination match failed")
	}
}

func TestReturnFallsThroughToPolicy(t *testing.T) {
	s := NewStack()
	s.Exec("-t filter -A OUTPUT -p tcp -j RETURN")
	s.Exec("-t filter -A OUTPUT -p tcp -j DROP")
	res, _ := s.Eval("filter", "OUTPUT", Packet{Proto: ProtoTCP})
	if res.Verdict != VerdictAccept {
		t.Fatalf("RETURN did not fall through: %+v", res)
	}
}

func TestRulesListing(t *testing.T) {
	s := NewStack()
	s.Exec("-t nat -A OUTPUT -p tcp -m owner --uid-owner 10010 -j REDIRECT --to p:1 --comment browser-chrome")
	rules, err := s.Rules("nat", "OUTPUT")
	if err != nil || len(rules) != 1 {
		t.Fatalf("rules = %v, %v", rules, err)
	}
	if rules[0].Comment != "browser-chrome" || *rules[0].Match.OwnerUID != 10010 {
		t.Fatalf("rule = %+v", rules[0])
	}
}

// Property: a per-UID redirect diverts exactly that UID's TCP traffic and
// nothing else.
func TestPropertyUIDIsolation(t *testing.T) {
	f := func(target uint16, probe uint16, udp bool) bool {
		s := NewStack()
		uid := 10000 + int(target)%1000
		s.Append("nat", "OUTPUT", Rule{
			Match:        Match{Proto: ProtoTCP, OwnerUID: &uid},
			Verdict:      VerdictRedirect,
			RedirectAddr: "p:8080",
		})
		p := Packet{Proto: ProtoTCP, OwnerUID: 10000 + int(probe)%1000}
		if udp {
			p.Proto = ProtoUDP
		}
		res, err := s.EvalOutput(p)
		if err != nil {
			return false
		}
		shouldRedirect := p.OwnerUID == uid && !udp
		return (res.Verdict == VerdictRedirect) == shouldRedirect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEvalOutput(b *testing.B) {
	s := NewStack()
	for uid := 10000; uid < 10015; uid++ {
		u := uid
		s.Append("nat", "OUTPUT", Rule{
			Match:        Match{Proto: ProtoTCP, OwnerUID: &u},
			Verdict:      VerdictRedirect,
			RedirectAddr: "192.168.1.100:8080",
		})
	}
	pkt := Packet{Proto: ProtoTCP, DstPort: 443, OwnerUID: 10014}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EvalOutput(pkt)
	}
}
