package ebpfsim

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestLoadAndFire(t *testing.T) {
	r := NewRegistry()
	var events []int
	err := r.Load(&Program{
		Name: "rec", Type: AttachEgress, MaxInstructions: 10,
		Run: func(ctx *Context) Action { events = append(events, ctx.Bytes); return ActionPass },
	})
	if err != nil {
		t.Fatal(err)
	}
	if a := r.Fire(AttachEgress, &Context{UID: 1, Bytes: 42}); a != ActionPass {
		t.Fatalf("action = %v", a)
	}
	if len(events) != 1 || events[0] != 42 {
		t.Fatalf("events = %v", events)
	}
	// Hooks without programs pass.
	if a := r.Fire(AttachIngress, &Context{}); a != ActionPass {
		t.Fatal("empty hook dropped")
	}
}

func TestLoadValidation(t *testing.T) {
	r := NewRegistry()
	cases := []*Program{
		nil,
		{Name: "x", Type: AttachEgress, MaxInstructions: 10},                               // nil Run
		{Type: AttachEgress, MaxInstructions: 10, Run: func(*Context) Action { return 0 }}, // no name
		{Name: "x", Type: "bogus", MaxInstructions: 10, Run: func(*Context) Action { return 0 }},
		{Name: "x", Type: AttachEgress, MaxInstructions: 0, Run: func(*Context) Action { return 0 }},
		{Name: "x", Type: AttachEgress, MaxInstructions: VerifierBudget + 1, Run: func(*Context) Action { return 0 }},
	}
	for i, p := range cases {
		if err := r.Load(p); err == nil {
			t.Errorf("case %d: invalid program loaded", i)
		}
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	r := NewRegistry()
	mk := func() *Program {
		return &Program{Name: "dup", Type: AttachEgress, MaxInstructions: 1,
			Run: func(*Context) Action { return ActionPass }}
	}
	if err := r.Load(mk()); err != nil {
		t.Fatal(err)
	}
	if err := r.Load(mk()); err == nil {
		t.Fatal("duplicate accepted")
	}
	// Same name on a different hook is fine.
	p := mk()
	p.Type = AttachIngress
	if err := r.Load(p); err != nil {
		t.Fatal(err)
	}
}

func TestDropWins(t *testing.T) {
	r := NewRegistry()
	r.Load(&Program{Name: "pass", Type: AttachSockCreate, MaxInstructions: 1,
		Run: func(*Context) Action { return ActionPass }})
	r.Load(&Program{Name: "drop443", Type: AttachSockCreate, MaxInstructions: 1,
		Run: func(ctx *Context) Action {
			if ctx.DstPort == 443 && ctx.Proto == "udp" {
				return ActionDrop
			}
			return ActionPass
		}})
	if a := r.Fire(AttachSockCreate, &Context{Proto: "udp", DstPort: 443}); a != ActionDrop {
		t.Fatal("drop did not win")
	}
	if a := r.Fire(AttachSockCreate, &Context{Proto: "tcp", DstPort: 443}); a != ActionPass {
		t.Fatal("tcp dropped")
	}
}

func TestUnload(t *testing.T) {
	r := NewRegistry()
	r.Load(&Program{Name: "a", Type: AttachEgress, MaxInstructions: 1,
		Run: func(*Context) Action { return ActionDrop }})
	if !r.Unload(AttachEgress, "a") {
		t.Fatal("unload failed")
	}
	if r.Unload(AttachEgress, "a") {
		t.Fatal("second unload succeeded")
	}
	if a := r.Fire(AttachEgress, &Context{}); a != ActionPass {
		t.Fatal("unloaded program still firing")
	}
}

func TestAttachedListing(t *testing.T) {
	r := NewRegistry()
	r.Load(&Program{Name: "one", Type: AttachEgress, MaxInstructions: 1, Run: func(*Context) Action { return 0 }})
	r.Load(&Program{Name: "two", Type: AttachEgress, MaxInstructions: 1, Run: func(*Context) Action { return 0 }})
	got := r.Attached(AttachEgress)
	if len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Fatalf("attached = %v", got)
	}
}

func TestMapBasics(t *testing.T) {
	m := NewMap("test", 2)
	if err := m.Add("a", 5); err != nil {
		t.Fatal(err)
	}
	if err := m.Add("a", 3); err != nil {
		t.Fatal(err)
	}
	if got := m.Get("a"); got != 8 {
		t.Fatalf("a = %d", got)
	}
	if got := m.Get("absent"); got != 0 {
		t.Fatalf("absent = %d", got)
	}
	m.Add("b", 1)
	if err := m.Add("c", 1); err == nil {
		t.Fatal("full map accepted new key")
	}
	// Existing keys still updatable at capacity.
	if err := m.Add("b", 1); err != nil {
		t.Fatal(err)
	}
	keys := m.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v", keys)
	}
	m.Reset()
	if m.Get("a") != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestMapSnapshotIsolated(t *testing.T) {
	m := NewMap("snap", 10)
	m.Add("k", 1)
	s := m.Snapshot()
	s["k"] = 99
	if m.Get("k") != 1 {
		t.Fatal("snapshot aliases the map")
	}
}

func TestTrafficAccounting(t *testing.T) {
	r := NewRegistry()
	ta, err := NewTrafficAccounting(r)
	if err != nil {
		t.Fatal(err)
	}
	r.Fire(AttachEgress, &Context{UID: 10089, Bytes: 100})
	r.Fire(AttachEgress, &Context{UID: 10089, Bytes: 50})
	r.Fire(AttachEgress, &Context{UID: 10090, Bytes: 7})
	r.Fire(AttachIngress, &Context{UID: 10089, Bytes: 900})
	if got := ta.TxBytes.Get("10089"); got != 150 {
		t.Fatalf("tx 10089 = %d", got)
	}
	if got := ta.TxPackets.Get("10089"); got != 2 {
		t.Fatalf("txp 10089 = %d", got)
	}
	if got := ta.RxBytes.Get("10089"); got != 900 {
		t.Fatalf("rx 10089 = %d", got)
	}
	if got := ta.TxBytes.Get("10090"); got != 7 {
		t.Fatalf("tx 10090 = %d", got)
	}
}

func TestTrafficAccountingDoubleLoadFails(t *testing.T) {
	r := NewRegistry()
	if _, err := NewTrafficAccounting(r); err != nil {
		t.Fatal(err)
	}
	if _, err := NewTrafficAccounting(r); err == nil {
		t.Fatal("second accounting load succeeded")
	}
}

func TestConcurrentFire(t *testing.T) {
	r := NewRegistry()
	ta, _ := NewTrafficAccounting(r)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Fire(AttachEgress, &Context{UID: 42, Bytes: 1})
			}
		}()
	}
	wg.Wait()
	if got := ta.TxBytes.Get("42"); got != 8000 {
		t.Fatalf("tx = %d, want 8000", got)
	}
}

// Property: accounting sums equal the sum of event sizes per UID.
func TestPropertyAccountingSums(t *testing.T) {
	f := func(events []uint8) bool {
		r := NewRegistry()
		ta, err := NewTrafficAccounting(r)
		if err != nil {
			return false
		}
		want := map[int]uint64{}
		for i, b := range events {
			uid := 10000 + i%3
			r.Fire(AttachEgress, &Context{UID: uid, Bytes: int(b)})
			want[uid] += uint64(b)
		}
		for uid, sum := range want {
			if ta.TxBytes.Get(fmt.Sprint(uid)) != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFireAccounting(b *testing.B) {
	r := NewRegistry()
	NewTrafficAccounting(r)
	ctx := &Context{UID: 10089, Bytes: 1400}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Fire(AttachEgress, ctx)
	}
}
