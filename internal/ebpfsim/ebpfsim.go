// Package ebpfsim provides an eBPF-flavoured hook framework for the
// simulated Android device, modelled on the ebpf-go programming surface:
// programs are written against typed maps, pass a (much simplified)
// verifier, attach to named hook points, and run when the device network
// stack reaches those points.
//
// The device uses it the way Android itself uses eBPF: per-UID traffic
// accounting on socket egress/ingress, which gives the analysis layer an
// independent, kernel-side cross-check of the byte volumes the MITM proxy
// reports (Figure 4).
package ebpfsim

import (
	"fmt"
	"sort"
	"sync"
)

// AttachType names a hook point in the device network stack.
type AttachType string

// Hook points the device fires.
const (
	AttachSockCreate AttachType = "cgroup/sock_create" // new socket: may reject
	AttachEgress     AttachType = "cgroup/skb/egress"  // bytes leaving a socket
	AttachIngress    AttachType = "cgroup/skb/ingress" // bytes arriving
)

// Context is the event data passed to a program.
type Context struct {
	UID     int
	Proto   string // "tcp" or "udp"
	DstHost string
	DstPort int
	Bytes   int // payload size for egress/ingress events
}

// Action is a program's return value.
type Action int

// Actions.
const (
	ActionPass Action = iota
	ActionDrop
)

// Map is a string-keyed uint64 map, the moral equivalent of a
// BPF_MAP_TYPE_HASH of counters. All operations are safe for concurrent
// use.
type Map struct {
	name    string
	maxSize int
	mu      sync.RWMutex
	vals    map[string]uint64
}

// NewMap creates a map with a maximum entry count (the "map size" the
// verifier-equivalent enforces at runtime).
func NewMap(name string, maxSize int) *Map {
	if maxSize <= 0 {
		maxSize = 4096
	}
	return &Map{name: name, maxSize: maxSize, vals: make(map[string]uint64)}
}

// Name returns the map name.
func (m *Map) Name() string { return m.name }

// Add increments key by delta, creating it if absent. It returns an error
// when the map is full, as a real BPF update would.
func (m *Map) Add(key string, delta uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.vals[key]; !ok && len(m.vals) >= m.maxSize {
		return fmt.Errorf("ebpfsim: map %q full (%d entries)", m.name, m.maxSize)
	}
	m.vals[key] += delta
	return nil
}

// Get returns the value for key (zero when absent).
func (m *Map) Get(key string) uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.vals[key]
}

// Keys returns all keys, sorted.
func (m *Map) Keys() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.vals))
	for k := range m.vals {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot copies the whole map.
func (m *Map) Snapshot() map[string]uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]uint64, len(m.vals))
	for k, v := range m.vals {
		out[k] = v
	}
	return out
}

// Reset clears the map.
func (m *Map) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.vals = make(map[string]uint64)
}

// Program is a hook program: a name, the hook it wants, a complexity
// declaration the loader verifies, and the function that runs per event.
type Program struct {
	Name string
	Type AttachType
	// MaxInstructions declares the program's cost; the loader rejects
	// programs above the verifier budget, standing in for the real
	// verifier's complexity analysis.
	MaxInstructions int
	Run             func(ctx *Context) Action
}

// VerifierBudget is the maximum declared complexity the loader accepts.
const VerifierBudget = 1 << 20

// Registry holds loaded programs by attach point.
type Registry struct {
	mu    sync.RWMutex
	progs map[AttachType][]*Program
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{progs: make(map[AttachType][]*Program)}
}

// Load verifies and attaches a program.
func (r *Registry) Load(p *Program) error {
	if p == nil || p.Run == nil {
		return fmt.Errorf("ebpfsim: nil program or body")
	}
	if p.Name == "" {
		return fmt.Errorf("ebpfsim: program needs a name")
	}
	switch p.Type {
	case AttachSockCreate, AttachEgress, AttachIngress:
	default:
		return fmt.Errorf("ebpfsim: unknown attach type %q", p.Type)
	}
	if p.MaxInstructions <= 0 || p.MaxInstructions > VerifierBudget {
		return fmt.Errorf("ebpfsim: program %q fails verification: declared complexity %d out of (0,%d]",
			p.Name, p.MaxInstructions, VerifierBudget)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, existing := range r.progs[p.Type] {
		if existing.Name == p.Name {
			return fmt.Errorf("ebpfsim: program %q already attached at %s", p.Name, p.Type)
		}
	}
	r.progs[p.Type] = append(r.progs[p.Type], p)
	return nil
}

// Unload detaches a program by name from a hook.
func (r *Registry) Unload(t AttachType, name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	list := r.progs[t]
	for i, p := range list {
		if p.Name == name {
			r.progs[t] = append(list[:i:i], list[i+1:]...)
			return true
		}
	}
	return false
}

// Fire runs every program attached at t. The aggregate action is Drop if
// any program drops, Pass otherwise.
func (r *Registry) Fire(t AttachType, ctx *Context) Action {
	r.mu.RLock()
	progs := r.progs[t]
	r.mu.RUnlock()
	out := ActionPass
	for _, p := range progs {
		if p.Run(ctx) == ActionDrop {
			out = ActionDrop
		}
	}
	return out
}

// Attached lists program names at a hook.
func (r *Registry) Attached(t AttachType) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.progs[t]))
	for _, p := range r.progs[t] {
		out = append(out, p.Name)
	}
	return out
}

// TrafficAccounting is the standard per-UID accounting program set, the
// analogue of Android's netd eBPF counters.
type TrafficAccounting struct {
	// TxBytes, RxBytes, TxPackets count per UID (key: decimal UID).
	TxBytes   *Map
	RxBytes   *Map
	TxPackets *Map
}

// NewTrafficAccounting creates the maps and loads egress/ingress programs
// into the registry.
func NewTrafficAccounting(r *Registry) (*TrafficAccounting, error) {
	ta := &TrafficAccounting{
		TxBytes:   NewMap("uid_tx_bytes", 8192),
		RxBytes:   NewMap("uid_rx_bytes", 8192),
		TxPackets: NewMap("uid_tx_packets", 8192),
	}
	egress := &Program{
		Name: "traffic_account_egress", Type: AttachEgress, MaxInstructions: 512,
		Run: func(ctx *Context) Action {
			key := fmt.Sprint(ctx.UID)
			ta.TxBytes.Add(key, uint64(ctx.Bytes))
			ta.TxPackets.Add(key, 1)
			return ActionPass
		},
	}
	ingress := &Program{
		Name: "traffic_account_ingress", Type: AttachIngress, MaxInstructions: 512,
		Run: func(ctx *Context) Action {
			ta.RxBytes.Add(fmt.Sprint(ctx.UID), uint64(ctx.Bytes))
			return ActionPass
		},
	}
	if err := r.Load(egress); err != nil {
		return nil, err
	}
	if err := r.Load(ingress); err != nil {
		return nil, err
	}
	return ta, nil
}
