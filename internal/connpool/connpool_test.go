package connpool

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// fakeConn is a net.Conn stub that records Close.
type fakeConn struct {
	net.Conn
	mu     sync.Mutex
	closed bool
}

func (c *fakeConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return nil
}

func (c *fakeConn) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func newTestPool(t *testing.T, cfg Config) (*Pool, *time.Time) {
	t.Helper()
	now := time.Unix(1700000000, 0)
	cfg.Now = func() time.Time { return now }
	if cfg.Name == "" {
		cfg.Name = "test_" + t.Name()
	}
	return New(cfg), &now
}

func park(t *testing.T, p *Pool, key string) *fakeConn {
	t.Helper()
	c := &fakeConn{}
	if !p.Put(key, c, bufio.NewReader(c)) {
		t.Fatalf("Put(%s) refused", key)
	}
	return c
}

func TestGetReturnsLIFO(t *testing.T) {
	p, _ := newTestPool(t, Config{})
	c1 := park(t, p, "https|a:443")
	c2 := park(t, p, "https|a:443")

	e, ok := p.Get("https|a:443")
	if !ok || e.Conn != c2 {
		t.Fatalf("want most recently parked conn, got ok=%v conn=%p (c2=%p)", ok, e.Conn, c2)
	}
	e, ok = p.Get("https|a:443")
	if !ok || e.Conn != c1 {
		t.Fatalf("want second conn, got ok=%v", ok)
	}
	if _, ok := p.Get("https|a:443"); ok {
		t.Fatal("empty pool should miss")
	}
	st := p.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Idle != 0 {
		t.Fatalf("stats = %+v, want 2 hits, 1 miss, 0 idle", st)
	}
}

func TestKeysAreIndependent(t *testing.T) {
	p, _ := newTestPool(t, Config{})
	park(t, p, "https|a:443")
	if _, ok := p.Get("https|b:443"); ok {
		t.Fatal("key b should miss; only a is parked")
	}
	if _, ok := p.Get("https|a:443"); !ok {
		t.Fatal("key a should hit")
	}
}

func TestAgeEviction(t *testing.T) {
	p, now := newTestPool(t, Config{IdleAge: time.Minute})
	stale := park(t, p, "k")
	*now = now.Add(2 * time.Minute)

	if _, ok := p.Get("k"); ok {
		t.Fatal("aged entry should not be reused")
	}
	if !stale.isClosed() {
		t.Fatal("aged entry should be closed")
	}
	st := p.Stats()
	if st.EvictedAge != 1 || st.Idle != 0 {
		t.Fatalf("stats = %+v, want 1 age eviction, 0 idle", st)
	}

	// Entries under an aged one are older still: both go at once.
	park(t, p, "k")
	old2 := park(t, p, "k")
	*now = now.Add(2 * time.Minute)
	if _, ok := p.Get("k"); ok {
		t.Fatal("whole stack aged out")
	}
	if !old2.isClosed() {
		t.Fatal("older entries below the aged top must be closed too")
	}
	if st := p.Stats(); st.EvictedAge != 3 {
		t.Fatalf("EvictedAge = %d, want 3", st.EvictedAge)
	}
}

func TestAgeEvictionExactBoundary(t *testing.T) {
	p, now := newTestPool(t, Config{IdleAge: time.Minute})
	c := park(t, p, "k")

	// Aged exactly to the idle deadline: the cutoff is now-idleAge and
	// eviction requires since strictly before it, so the conn is still
	// good. The boundary is inclusive by design — a conn parked at t and
	// fetched at t+idleAge has been idle for exactly the budget, not
	// over it.
	*now = now.Add(time.Minute)
	e, ok := p.Get("k")
	if !ok || e.Conn != c {
		t.Fatalf("conn aged exactly to the idle deadline must be reused, got ok=%v", ok)
	}
	if c.isClosed() {
		t.Fatal("boundary-aged conn must not be closed")
	}
	if st := p.Stats(); st.EvictedAge != 0 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 hit and no age evictions", st)
	}

	// One nanosecond past the deadline the same conn is gone.
	c2 := park(t, p, "k")
	*now = now.Add(time.Minute + time.Nanosecond)
	if _, ok := p.Get("k"); ok {
		t.Fatal("conn one nanosecond past the idle deadline must be evicted")
	}
	if !c2.isClosed() {
		t.Fatal("evicted conn must be closed")
	}
	if st := p.Stats(); st.EvictedAge != 1 {
		t.Fatalf("EvictedAge = %d, want 1", st.EvictedAge)
	}
}

func TestCapacityBounds(t *testing.T) {
	p, _ := newTestPool(t, Config{MaxPerKey: 2, MaxIdle: 3})
	park(t, p, "a")
	park(t, p, "a")
	if p.Put("a", &fakeConn{}, nil) {
		t.Fatal("per-key cap exceeded")
	}
	park(t, p, "b")
	if p.Put("c", &fakeConn{}, nil) {
		t.Fatal("global cap exceeded")
	}
	if st := p.Stats(); st.EvictedCap != 2 || st.Idle != 3 {
		t.Fatalf("stats = %+v, want 2 capacity refusals, 3 idle", st)
	}
}

func TestPoisonDropsIdleConns(t *testing.T) {
	p, _ := newTestPool(t, Config{})
	c1 := park(t, p, "k")
	c2 := park(t, p, "k")
	poisoned := false
	p.SetFaultHook(func(key string) error {
		if poisoned {
			return errors.New("injected")
		}
		return nil
	})

	if _, ok := p.Get("k"); !ok {
		t.Fatal("healthy hook should not block reuse")
	}
	p.Put("k", c2, nil)

	poisoned = true
	if _, ok := p.Get("k"); ok {
		t.Fatal("poisoned key must miss")
	}
	if !c1.isClosed() || !c2.isClosed() {
		t.Fatal("poison must close every idle conn for the key")
	}
	if st := p.Stats(); st.Poisoned != 2 {
		t.Fatalf("Poisoned = %d, want 2", st.Poisoned)
	}

	// The key recovers once the hook stops firing.
	poisoned = false
	park(t, p, "k")
	if _, ok := p.Get("k"); !ok {
		t.Fatal("key should serve again after the poison clears")
	}
}

func TestCloseIdle(t *testing.T) {
	p, _ := newTestPool(t, Config{})
	c := park(t, p, "k")
	p.CloseIdle()
	if !c.isClosed() {
		t.Fatal("CloseIdle must close parked conns")
	}
	if p.Put("k", &fakeConn{}, nil) {
		t.Fatal("closed pool must refuse Puts")
	}
	if _, ok := p.Get("k"); ok {
		t.Fatal("closed pool has nothing to give")
	}
}

func TestConcurrentGetPut(t *testing.T) {
	p, _ := newTestPool(t, Config{MaxPerKey: 8, MaxIdle: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e, ok := p.Get("k")
				if !ok {
					e = Entry{Conn: &fakeConn{}}
				}
				if !p.Put("k", e.Conn, e.R) {
					e.Conn.Close()
				}
			}
		}()
	}
	wg.Wait()
	st := p.Stats()
	if st.Idle > 8 {
		t.Fatalf("idle %d exceeds per-key cap", st.Idle)
	}
	if st.Hits+st.Misses != 8*200 {
		t.Fatalf("accounting drift: hits %d + misses %d != 1600", st.Hits, st.Misses)
	}
}
