// Package connpool is a keyed idle-connection pool for the MITM proxy's
// upstream data plane. Each key (scheme + authority) owns a LIFO stack
// of idle connections with their buffered readers attached — the reader
// travels with the connection because bytes it buffered belong to that
// connection's stream. Entries are stamped with the pool clock (the
// virtual clock inside the testbed) and aged out on Get, so a pool
// running under a fast-forwarding simulation evicts exactly as a
// wall-clock pool would under real time.
//
// The pool never dials: a Get miss tells the caller to dial, and Put
// offers the connection back after a clean exchange. A fault hook
// (faultsim.Injector.PoolFault) can poison a key, dropping its idle
// connections so the caller redials — the chaos stand-in for a NAT or
// middlebox silently killing pooled connections.
package connpool

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"panoptes/internal/obs"
)

func init() {
	obs.Default.Help("connpool_get_total", "Idle-pool lookups by result (hit = reused connection, miss = caller must dial).")
	obs.Default.Help("connpool_evicted_total", "Idle connections closed instead of reused, by reason (age, capacity, poison, close).")
	obs.Default.Help("connpool_idle_conns", "Connections currently parked in each idle pool.")
}

// Entry is one pooled connection with its buffered read side. Session,
// when non-nil, carries transport state that must travel with the
// connection (an HTTP/2 client whose stream counter belongs to exactly
// this conn); pool keys include the negotiated ALPN so an h2 entry can
// never be handed to an h1 exchange or vice versa.
type Entry struct {
	Conn    net.Conn
	R       *bufio.Reader
	Session any

	since time.Time
}

// Config sizes a Pool. The zero value takes every default.
type Config struct {
	// Name labels the pool's obs series (default "upstream").
	Name string
	// MaxPerKey bounds idle connections parked per key (default 8).
	MaxPerKey int
	// MaxIdle bounds idle connections across all keys (default 256).
	MaxIdle int
	// IdleAge evicts entries parked longer than this on the pool clock
	// (default 2 minutes — generous against the virtual clock's
	// seconds-per-visit advance, so reuse survives a crawl).
	IdleAge time.Duration
	// Now is the pool clock (default time.Now; the testbed passes the
	// virtual clock).
	Now func() time.Time
}

// Stats is a pool's lifetime accounting.
type Stats struct {
	Hits       int64 // Gets served from the pool
	Misses     int64 // Gets the caller had to dial for
	EvictedAge int64 // idle entries closed for age
	EvictedCap int64 // offered entries refused for capacity
	Poisoned   int64 // idle entries dropped by the fault hook
	Idle       int   // entries currently parked
}

// Pool is a keyed idle-connection pool, safe for concurrent use.
type Pool struct {
	name      string
	maxPerKey int
	maxIdle   int
	idleAge   time.Duration
	now       func() time.Time

	mu     sync.Mutex
	idle   map[string][]Entry
	total  int
	closed bool

	// fault, when set, is consulted on Get: a non-nil error poisons the
	// key — its idle entries are dropped and the caller redials.
	fault atomic.Pointer[func(key string) error]

	hits, misses, evictedAge, evictedCap, poisoned atomic.Int64

	obsHit, obsMiss                             *obs.Counter
	obsEvAge, obsEvCap, obsEvPoison, obsEvClose *obs.Counter
	obsIdle                                     *obs.Gauge
}

// New builds a pool.
func New(cfg Config) *Pool {
	if cfg.Name == "" {
		cfg.Name = "upstream"
	}
	if cfg.MaxPerKey <= 0 {
		cfg.MaxPerKey = 8
	}
	if cfg.MaxIdle <= 0 {
		cfg.MaxIdle = 256
	}
	if cfg.IdleAge <= 0 {
		cfg.IdleAge = 2 * time.Minute
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Pool{
		name:        cfg.Name,
		maxPerKey:   cfg.MaxPerKey,
		maxIdle:     cfg.MaxIdle,
		idleAge:     cfg.IdleAge,
		now:         cfg.Now,
		idle:        make(map[string][]Entry),
		obsHit:      obs.Default.Counter("connpool_get_total", "pool", cfg.Name, "result", "hit"),
		obsMiss:     obs.Default.Counter("connpool_get_total", "pool", cfg.Name, "result", "miss"),
		obsEvAge:    obs.Default.Counter("connpool_evicted_total", "pool", cfg.Name, "reason", "age"),
		obsEvCap:    obs.Default.Counter("connpool_evicted_total", "pool", cfg.Name, "reason", "capacity"),
		obsEvPoison: obs.Default.Counter("connpool_evicted_total", "pool", cfg.Name, "reason", "poison"),
		obsEvClose:  obs.Default.Counter("connpool_evicted_total", "pool", cfg.Name, "reason", "close"),
		obsIdle:     obs.Default.Gauge("connpool_idle_conns", "pool", cfg.Name),
	}
}

// SetFaultHook installs (or clears, with nil) the poison hook consulted
// on every Get.
func (p *Pool) SetFaultHook(fn func(key string) error) {
	if fn == nil {
		p.fault.Store(nil)
		return
	}
	p.fault.Store(&fn)
}

// Get pops the most recently parked live connection for key. The second
// return is false when the caller must dial: nothing parked, everything
// aged out, or the key is poisoned.
func (p *Pool) Get(key string) (Entry, bool) {
	var poison func(string) error
	if fn := p.fault.Load(); fn != nil {
		poison = *fn
	}
	cutoff := p.now().Add(-p.idleAge)

	p.mu.Lock()
	stack := p.idle[key]
	if len(stack) > 0 && poison != nil && poison(key) != nil {
		// Poisoned: every idle connection for this key is silently dead.
		p.drainLocked(key, stack)
		p.mu.Unlock()
		p.poisoned.Add(int64(len(stack)))
		p.obsEvPoison.Add(int64(len(stack)))
		p.misses.Add(1)
		p.obsMiss.Inc()
		return Entry{}, false
	}
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		p.total--
		if e.since.Before(cutoff) {
			// LIFO order means everything under an aged entry is older
			// still; drop the rest of the stack with it.
			aged := int64(len(stack)) + 1
			for _, old := range stack {
				old.Conn.Close()
			}
			p.total -= len(stack)
			stack = nil
			p.setLocked(key, stack)
			p.mu.Unlock()
			e.Conn.Close()
			p.evictedAge.Add(aged)
			p.obsEvAge.Add(aged)
			p.obsIdle.Add(-float64(aged))
			p.misses.Add(1)
			p.obsMiss.Inc()
			return Entry{}, false
		}
		p.setLocked(key, stack)
		p.mu.Unlock()
		p.hits.Add(1)
		p.obsHit.Inc()
		p.obsIdle.Dec()
		return e, true
	}
	p.setLocked(key, stack)
	p.mu.Unlock()
	p.misses.Add(1)
	p.obsMiss.Inc()
	return Entry{}, false
}

// Put offers a connection back after a clean exchange. It reports
// whether the pool kept it; on false the caller still owns (and should
// close) the connection.
func (p *Pool) Put(key string, conn net.Conn, r *bufio.Reader) bool {
	return p.PutEntry(key, Entry{Conn: conn, R: r})
}

// PutEntry offers a full entry back, preserving any attached transport
// session. Semantics match Put.
func (p *Pool) PutEntry(key string, e Entry) bool {
	e.since = p.now()
	p.mu.Lock()
	if p.closed || p.total >= p.maxIdle || len(p.idle[key]) >= p.maxPerKey {
		p.mu.Unlock()
		p.evictedCap.Add(1)
		p.obsEvCap.Inc()
		return false
	}
	p.idle[key] = append(p.idle[key], e)
	p.total++
	p.mu.Unlock()
	p.obsIdle.Inc()
	return true
}

// CloseIdle closes every parked connection and refuses further Puts.
func (p *Pool) CloseIdle() {
	p.mu.Lock()
	p.closed = true
	var all []Entry
	for _, stack := range p.idle {
		all = append(all, stack...)
	}
	p.idle = make(map[string][]Entry)
	n := p.total
	p.total = 0
	p.mu.Unlock()
	for _, e := range all {
		e.Conn.Close()
	}
	if n > 0 {
		p.obsEvClose.Add(int64(n))
		p.obsIdle.Add(-float64(n))
	}
}

// Stats returns lifetime accounting.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	idle := p.total
	p.mu.Unlock()
	return Stats{
		Hits:       p.hits.Load(),
		Misses:     p.misses.Load(),
		EvictedAge: p.evictedAge.Load(),
		EvictedCap: p.evictedCap.Load(),
		Poisoned:   p.poisoned.Load(),
		Idle:       idle,
	}
}

// drainLocked closes and forgets a key's whole stack. Callers hold p.mu
// and account the eviction reason themselves.
func (p *Pool) drainLocked(key string, stack []Entry) {
	for _, e := range stack {
		e.Conn.Close()
	}
	p.total -= len(stack)
	delete(p.idle, key)
	p.obsIdle.Add(-float64(len(stack)))
}

// setLocked stores a (possibly emptied) stack back under key.
func (p *Pool) setLocked(key string, stack []Entry) {
	if len(stack) == 0 {
		delete(p.idle, key)
		return
	}
	p.idle[key] = stack
}
