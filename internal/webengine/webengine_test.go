package webengine

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"panoptes/internal/netsim"
	"panoptes/internal/pki"
	"panoptes/internal/websim"
)

// rig hosts a small generated web and returns an engine over it.
func rig(t *testing.T) (*Engine, []*websim.Site, *netsim.Internet) {
	t.Helper()
	inet := netsim.New()
	ca, err := pki.NewCA("Public Web Root", nil)
	if err != nil {
		t.Fatal(err)
	}
	sites := websim.TrancoTop(3)
	h, err := websim.Host(inet, ca, sites)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)

	e := New(Config{
		UserAgent: "panoptes-test/1.0",
		Dial: func(ctx context.Context, addr string) (net.Conn, error) {
			return inet.Dial(ctx, addr)
		},
		TLS: ca.TLSClientTemplate(nil),
	})
	return e, sites, inet
}

func TestNavigateFetchesAllResources(t *testing.T) {
	e, sites, _ := rig(t)
	res, err := e.Navigate(sites[0].URL())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 {
		t.Fatalf("status = %d", res.Status)
	}
	// Document + every sub-resource.
	want := 1 + len(sites[0].Resources)
	if res.Requests != want {
		t.Fatalf("requests = %d, want %d", res.Requests, want)
	}
	if res.Failed != 0 {
		t.Fatalf("failed = %d", res.Failed)
	}
	if res.LoadTimeMs != sites[0].LoadTimeMs {
		t.Fatalf("load time = %d, want %d", res.LoadTimeMs, sites[0].LoadTimeMs)
	}
	if res.BytesReceived <= int64(sites[0].DocSize) {
		t.Fatalf("bytes = %d", res.BytesReceived)
	}
}

func TestInterceptorSeesEveryRequest(t *testing.T) {
	e, sites, _ := rig(t)
	var (
		mu   sync.Mutex
		urls []string
	)
	e.SetInterceptor(func(req *http.Request) error {
		// Sub-resource fetches run concurrently, so the interceptor is
		// called from multiple goroutines.
		mu.Lock()
		urls = append(urls, req.URL.String())
		mu.Unlock()
		req.Header.Set("X-Test-Taint", "yes")
		return nil
	})
	res, err := e.Navigate(sites[0].URL())
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	seen := len(urls)
	mu.Unlock()
	if seen < res.Requests {
		t.Fatalf("interceptor saw %d of %d", seen, res.Requests)
	}
}

func TestInterceptorAbortBlocksRequest(t *testing.T) {
	e, sites, _ := rig(t)
	e.SetInterceptor(func(req *http.Request) error {
		if strings.Contains(req.URL.Host, "doubleclick") {
			return fmt.Errorf("blocked")
		}
		return nil
	})
	res, err := e.Navigate(sites[0].URL())
	if err != nil {
		t.Fatal(err)
	}
	// The site embeds ad resources; blocked ones count as failed.
	adCount := 0
	for _, r := range sites[0].Resources {
		if strings.Contains(r.URL, "doubleclick") {
			adCount++
		}
	}
	if adCount > 0 && res.Failed < adCount {
		t.Fatalf("failed = %d, want >= %d blocked", res.Failed, adCount)
	}
}

func TestRequestObserver(t *testing.T) {
	e, sites, _ := rig(t)
	var n atomic.Int64
	e.SetRequestObserver(func(string) { n.Add(1) })
	res, _ := e.Navigate(sites[0].URL())
	if int(n.Load()) != res.Requests {
		t.Fatalf("observer saw %d of %d", n.Load(), res.Requests)
	}
}

func TestInjectionRunsPerNavigation(t *testing.T) {
	e, sites, inet := rig(t)
	// Host the injected-script server.
	l, _, err := inet.ListenDomain("inject.example", "CA", 80)
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("// injected"))
	})}
	go srv.Serve(l)
	defer srv.Close()

	var beacons []string
	e.AddInjection(Injection{
		Name:      "test",
		ScriptURL: "http://inject.example/gj.js",
		Execute: func(eng *Engine, pageURL string) error {
			beacons = append(beacons, pageURL)
			return nil
		},
	})
	e.Navigate(sites[0].URL())
	e.Navigate(sites[1].URL())
	if len(beacons) != 2 || beacons[0] != sites[0].URL() {
		t.Fatalf("beacons = %v", beacons)
	}
}

func TestResolveCalledOncePerHost(t *testing.T) {
	inet := netsim.New()
	ca, _ := pki.NewCA("Root", nil)
	sites := websim.TrancoTop(1)
	h, err := websim.Host(inet, ca, sites)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	resolved := map[string]int{}
	e := New(Config{
		UserAgent: "t",
		Dial: func(ctx context.Context, addr string) (net.Conn, error) {
			return inet.Dial(ctx, addr)
		},
		TLS:     ca.TLSClientTemplate(nil),
		Resolve: func(host string) error { resolved[host]++; return nil },
	})
	e.Navigate(sites[0].URL())
	e.Navigate(sites[0].URL())
	for host, n := range resolved {
		if n != 1 {
			t.Errorf("%s resolved %d times", host, n)
		}
	}
	if resolved[sites[0].Domain] != 1 {
		t.Fatalf("site domain not resolved: %v", resolved)
	}
	// A session reset clears the cache.
	e.ResetSession()
	e.Navigate(sites[0].URL())
	if resolved[sites[0].Domain] != 2 {
		t.Fatalf("reset did not clear resolver cache: %v", resolved)
	}
}

func TestNavigateUnknownHost(t *testing.T) {
	e, _, _ := rig(t)
	res, err := e.Navigate("https://ghost.example/")
	if err == nil {
		t.Fatal("navigation to unknown host succeeded")
	}
	if res.Failed != 1 || res.Requests != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestExtractResourceURLs(t *testing.T) {
	doc := `<html><head>
<script src="https://a.example/x.js"></script>
<link rel="stylesheet" href="https://b.example/y.css">
</head><body>
<img src="https://c.example/z.png">
<script>fetch("https://d.example/api?k=v")</script>
<a href="/relative">rel</a>
<img src="https://a.example/x.js">
</body></html>`
	urls := ExtractResourceURLs(doc)
	want := []string{
		"https://a.example/x.js", "https://c.example/z.png",
		"https://b.example/y.css", "https://d.example/api?k=v",
	}
	if len(urls) != 4 {
		t.Fatalf("urls = %v", urls)
	}
	set := map[string]bool{}
	for _, u := range urls {
		set[u] = true
	}
	for _, w := range want {
		if !set[w] {
			t.Errorf("missing %s", w)
		}
	}
}

func TestExtractIgnoresRelativeAndEmpty(t *testing.T) {
	urls := ExtractResourceURLs(`<img src=""><img src="/x.png"><script src="ftp://x/y"></script>`)
	if len(urls) != 0 {
		t.Fatalf("urls = %v", urls)
	}
}

func TestFetchSingleResource(t *testing.T) {
	e, sites, _ := rig(t)
	var fp *websim.Resource
	for i := range sites[0].Resources {
		if !sites[0].Resources[i].ThirdParty {
			fp = &sites[0].Resources[i]
			break
		}
	}
	status, n, _, err := e.Fetch(fp.URL)
	if err != nil || status != 200 || int(n) != fp.Size {
		t.Fatalf("fetch = %d, %d, %v (want size %d)", status, n, err, fp.Size)
	}
	if _, _, _, err := e.Fetch("::bad::"); err == nil {
		t.Fatal("bad URL accepted")
	}
}
