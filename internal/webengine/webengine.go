// Package webengine is the browser emulators' web engine: it fetches a
// page's document through the device network stack, extracts the
// sub-resources the HTML references, fetches them with browser-like
// bounded concurrency, runs registered script injections (the mechanism
// UC International uses to exfiltrate the visited URL, §3.2), and exposes
// the request-interception hook that CDP's Fetch domain (or a Frida hook)
// uses to taint every engine-originated request.
//
// Everything the engine sends goes through one http.Client whose dialer
// is the device network stack under the browser's UID — so engine traffic
// is subject to the same transparent diversion as any app traffic.
package webengine

import (
	"context"
	"crypto/tls"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Interceptor observes and may mutate an engine request before it is
// sent. Returning an error aborts the request. This is where the taint
// header is injected.
type Interceptor func(req *http.Request) error

// ResolveFunc performs name resolution for its observable side effects
// (a stub-resolver log entry or a DoH HTTPS exchange).
type ResolveFunc func(host string) error

// Injection is a script a browser injects into every page. The engine
// fetches ScriptURL during the load and then runs Execute, which may
// issue further engine requests (beacons).
type Injection struct {
	Name      string
	ScriptURL string
	Execute   func(e *Engine, pageURL string) error
}

// Config configures an engine.
type Config struct {
	UserAgent string
	// Dial opens transport connections; bind it to the device stack under
	// the app's UID.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// TLS is the client TLS template (trust roots, virtual time, pins).
	TLS *tls.Config
	// Resolve performs pre-connection name resolution; nil skips it.
	Resolve ResolveFunc
	// MaxConcurrency bounds parallel sub-resource fetches (default 6,
	// matching common per-host browser limits).
	MaxConcurrency int
}

// PageResult summarises one navigation.
type PageResult struct {
	URL           string
	Status        int
	Requests      int // engine requests issued, document included
	Failed        int
	BytesReceived int64
	LoadTimeMs    int64 // modelled DOMContentLoaded latency from the site
	InjectedOK    bool  // all injections ran
}

// Engine is one browser's web engine.
type Engine struct {
	cfg    Config
	client *http.Client

	mu          sync.Mutex
	interceptor Interceptor
	onRequest   func(u string) // Network.requestWillBeSent-style observer
	injections  []Injection
	resolved    map[string]bool // hosts resolved this session
}

// New creates an engine.
func New(cfg Config) *Engine {
	if cfg.MaxConcurrency <= 0 {
		cfg.MaxConcurrency = 6
	}
	e := &Engine{cfg: cfg, resolved: make(map[string]bool)}
	e.client = &http.Client{
		Transport: &http.Transport{
			DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
				return cfg.Dial(ctx, addr)
			},
			TLSClientConfig:     cfg.TLS,
			MaxIdleConnsPerHost: 6,
			// Crawls touch thousands of distinct hosts; the global idle
			// cap keeps the pool from pinning one TLS session per host
			// for the life of the app. Sized like a desktop-class socket
			// pool (Chromium keeps 6 per host, 256 total): evicting
			// sooner forces a fresh handshake per revisited host, which
			// dominates crawl CPU.
			MaxIdleConns:      256,
			IdleConnTimeout:   90 * time.Second,
			ForceAttemptHTTP2: false,
		},
		Timeout: 60 * time.Second, // the paper's per-page ceiling
	}
	return e
}

// SetInterceptor installs (or clears, with nil) the request interceptor.
func (e *Engine) SetInterceptor(i Interceptor) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.interceptor = i
}

// Interceptor returns the current interceptor.
func (e *Engine) Interceptor() Interceptor {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.interceptor
}

// SetRequestObserver installs a callback invoked with every engine
// request URL (the Network domain's event source).
func (e *Engine) SetRequestObserver(fn func(u string)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.onRequest = fn
}

// AddInjection registers a page-load script injection.
func (e *Engine) AddInjection(inj Injection) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.injections = append(e.injections, inj)
}

// Close releases the engine's pooled connections.
func (e *Engine) Close() {
	e.client.CloseIdleConnections()
}

// SetTimeout sets the engine's per-request ceiling (the client timeout),
// bounding document and sub-resource fetches so NavigateTimeout holds end
// to end even when an origin stops answering. Non-positive values are
// ignored. Call it before navigating, not with requests in flight.
func (e *Engine) SetTimeout(d time.Duration) {
	if d > 0 {
		e.client.Timeout = d
	}
}

// ResolvedHosts returns the session's resolved-host cache, sorted — the
// part of engine session state a campaign checkpoint must carry so a
// resumed browser does not re-resolve (and re-leak) hosts it already
// looked up.
func (e *Engine) ResolvedHosts() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.resolved))
	for h := range e.resolved {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// SetResolvedHosts replaces the session's resolved-host cache (restore
// counterpart of ResolvedHosts).
func (e *Engine) SetResolvedHosts(hosts []string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.resolved = make(map[string]bool, len(hosts))
	for _, h := range hosts {
		e.resolved[h] = true
	}
}

// ResetSession clears per-session state (resolved-host cache), as opening
// an incognito window or restarting the app does.
func (e *Engine) ResetSession() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.resolved = make(map[string]bool)
	e.client.CloseIdleConnections()
}

// resolveOnce performs name resolution for a host the first time the
// session touches it.
func (e *Engine) resolveOnce(host string) {
	if e.cfg.Resolve == nil {
		return
	}
	e.mu.Lock()
	done := e.resolved[host]
	if !done {
		e.resolved[host] = true
	}
	e.mu.Unlock()
	if !done {
		// Resolution failures surface later as dial errors; the lookup's
		// side effect (stub log entry or DoH flow) is what matters here.
		_ = e.cfg.Resolve(host)
	}
}

// Fetch issues one engine request (interceptor applied) and returns the
// status and body size, draining the body.
func (e *Engine) Fetch(rawURL string) (status int, n int64, hdr http.Header, err error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("webengine: parse %q: %w", rawURL, err)
	}
	e.resolveOnce(u.Hostname())

	req, err := http.NewRequest(http.MethodGet, rawURL, nil)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("webengine: build request: %w", err)
	}
	req.Header.Set("User-Agent", e.cfg.UserAgent)
	req.Header.Set("Accept", "*/*")

	e.mu.Lock()
	icpt := e.interceptor
	obs := e.onRequest
	e.mu.Unlock()
	if obs != nil {
		obs(rawURL)
	}
	if icpt != nil {
		if err := icpt(req); err != nil {
			return 0, 0, nil, fmt.Errorf("webengine: interception aborted %s: %w", rawURL, err)
		}
	}

	resp, err := e.client.Do(req)
	if err != nil {
		return 0, 0, nil, err
	}
	defer resp.Body.Close()
	n, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, n, resp.Header, nil
}

// FetchDocument fetches a page document and returns its body.
func (e *Engine) fetchDocument(rawURL string) (body string, hdr http.Header, status int, err error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return "", nil, 0, fmt.Errorf("webengine: parse %q: %w", rawURL, err)
	}
	e.resolveOnce(u.Hostname())

	req, err := http.NewRequest(http.MethodGet, rawURL, nil)
	if err != nil {
		return "", nil, 0, err
	}
	req.Header.Set("User-Agent", e.cfg.UserAgent)
	req.Header.Set("Accept", "text/html,application/xhtml+xml")

	e.mu.Lock()
	icpt := e.interceptor
	obs := e.onRequest
	e.mu.Unlock()
	if obs != nil {
		obs(rawURL)
	}
	if icpt != nil {
		if err := icpt(req); err != nil {
			return "", nil, 0, fmt.Errorf("webengine: interception aborted document: %w", err)
		}
	}

	resp, err := e.client.Do(req)
	if err != nil {
		return "", nil, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return "", resp.Header, resp.StatusCode, err
	}
	return string(data), resp.Header, resp.StatusCode, nil
}

// Navigate loads a page: document, sub-resources, injections.
func (e *Engine) Navigate(pageURL string) (*PageResult, error) {
	res := &PageResult{URL: pageURL}

	doc, hdr, status, err := e.fetchDocument(pageURL)
	res.Requests++
	if err != nil {
		res.Failed++
		return res, fmt.Errorf("webengine: document %s: %w", pageURL, err)
	}
	res.Status = status
	res.BytesReceived += int64(len(doc))
	if v := hdr.Get("X-Sim-Load-Time-Ms"); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil {
			res.LoadTimeMs = ms
		}
	}

	// Sub-resources with browser-like bounded parallelism.
	urls := ExtractResourceURLs(doc)
	sem := make(chan struct{}, e.cfg.MaxConcurrency)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, ru := range urls {
		ru := ru
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			_, n, _, err := e.Fetch(ru)
			mu.Lock()
			res.Requests++
			if err != nil {
				res.Failed++
			} else {
				res.BytesReceived += n
			}
			mu.Unlock()
		}()
	}
	wg.Wait()

	// Injected scripts: fetch the script, then execute its beacon logic.
	e.mu.Lock()
	injections := append([]Injection(nil), e.injections...)
	e.mu.Unlock()
	res.InjectedOK = true
	for _, inj := range injections {
		if inj.ScriptURL != "" {
			_, n, _, err := e.Fetch(inj.ScriptURL)
			res.Requests++
			if err != nil {
				res.Failed++
				res.InjectedOK = false
				continue
			}
			res.BytesReceived += n
		}
		if inj.Execute != nil {
			if err := inj.Execute(e, pageURL); err != nil {
				res.InjectedOK = false
			}
		}
	}
	return res, nil
}

// ExtractResourceURLs pulls absolute sub-resource URLs out of a document:
// script/src, link/href, img/src and fetch("...") calls.
func ExtractResourceURLs(doc string) []string {
	var out []string
	seen := map[string]bool{}
	add := func(u string) {
		if u == "" || seen[u] {
			return
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return
		}
		seen[u] = true
		out = append(out, u)
	}
	for _, attr := range []string{`src="`, `href="`, `fetch("`} {
		rest := doc
		for {
			i := strings.Index(rest, attr)
			if i < 0 {
				break
			}
			rest = rest[i+len(attr):]
			j := strings.IndexByte(rest, '"')
			if j < 0 {
				break
			}
			add(rest[:j])
			rest = rest[j:]
		}
	}
	return out
}

// NewTLSConfig builds the engine TLS template from trust roots, virtual
// time, and an optional pin verifier.
func NewTLSConfig(roots *tls.Config) *tls.Config {
	if roots == nil {
		return &tls.Config{}
	}
	return roots.Clone()
}
