package browser_test

import (
	"strings"
	"testing"
	"time"

	"panoptes/internal/browser"
	"panoptes/internal/core"
	"panoptes/internal/profiles"
)

// newWorld builds a small testbed; browser behaviour is verified through
// the vendor backends and capture DB, never through emulator internals.
func newWorld(t *testing.T, names ...string) *core.World {
	t.Helper()
	var profs []*profiles.Profile
	for _, n := range names {
		p := profiles.ByName(n)
		if p == nil {
			t.Fatalf("no profile %q", n)
		}
		profs = append(profs, p)
	}
	w, err := core.NewWorld(core.WorldConfig{Sites: 4, Profiles: profs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

func launchReady(t *testing.T, w *core.World, name string) *browser.Browser {
	t.Helper()
	b, err := w.Browser(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Launch(); err != nil {
		t.Fatal(err)
	}
	b.CompleteWizard()
	return b
}

func TestLaunchTwiceFails(t *testing.T) {
	w := newWorld(t, "Chrome")
	b := launchReady(t, w, "Chrome")
	if err := b.Launch(); err == nil {
		t.Fatal("second launch succeeded")
	}
	b.Stop()
	b.Stop() // idempotent
	if err := b.Launch(); err != nil {
		t.Fatalf("relaunch after stop: %v", err)
	}
}

func TestNavigateBlockedByWizard(t *testing.T) {
	w := newWorld(t, "Chrome")
	b, _ := w.Browser("Chrome")
	if err := b.Launch(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Navigate(w.Sites[0].URL()); err == nil ||
		!strings.Contains(err.Error(), "wizard") {
		t.Fatalf("err = %v, want wizard gate", err)
	}
	b.CompleteWizard()
	if _, err := b.Navigate(w.Sites[0].URL()); err != nil {
		t.Fatal(err)
	}
}

func TestNavigateWhileStoppedFails(t *testing.T) {
	w := newWorld(t, "Chrome")
	b, _ := w.Browser("Chrome")
	if _, err := b.Navigate("https://x/"); err == nil {
		t.Fatal("navigation before launch succeeded")
	}
}

func TestWizardUIFlow(t *testing.T) {
	w := newWorld(t, "Brave")
	b, _ := w.Browser("Brave")
	b.Launch()
	if b.WizardDone() {
		t.Fatal("wizard done before any taps")
	}
	steps := 0
	for !b.WizardDone() {
		els := b.UIElements()
		if len(els) != 1 {
			t.Fatalf("elements = %v", els)
		}
		// Tapping the wrong element fails.
		if err := b.UITap("nonexistent"); err == nil {
			t.Fatal("tap on missing element succeeded")
		}
		if err := b.UITap(els[0].ID); err != nil {
			t.Fatal(err)
		}
		steps++
		if steps > 10 {
			t.Fatal("wizard never completes")
		}
	}
	if steps != 3 {
		t.Fatalf("wizard steps = %d", steps)
	}
	// Browser chrome now visible.
	els := b.UIElements()
	if len(els) == 0 || els[0].ID != "url_bar" {
		t.Fatalf("post-wizard elements = %v", els)
	}
	if err := b.UITap("url_bar"); err != nil {
		t.Fatal(err)
	}
	if err := b.UITap("bogus"); err == nil {
		t.Fatal("bogus tap succeeded")
	}
}

func TestUIWhileStopped(t *testing.T) {
	w := newWorld(t, "Brave")
	b, _ := w.Browser("Brave")
	if els := b.UIElements(); els != nil {
		t.Fatalf("elements while stopped = %v", els)
	}
	if err := b.UITap("terms_accept"); err == nil {
		t.Fatal("tap while stopped succeeded")
	}
}

func TestUUIDLifecycle(t *testing.T) {
	w := newWorld(t, "Yandex")
	b := launchReady(t, w, "Yandex")
	id1 := b.UUID()
	if len(id1) != 64 {
		t.Fatalf("uuid = %q", id1)
	}
	// Survives stop/relaunch.
	b.Stop()
	b.Launch()
	if b.UUID() != id1 {
		t.Fatal("uuid changed across relaunch")
	}
	// Dies with a factory reset.
	if err := b.Reset(); err != nil {
		t.Fatal(err)
	}
	if b.UUID() != "" {
		t.Fatal("uuid survived reset")
	}
	b.Launch()
	if b.UUID() == id1 || b.UUID() == "" {
		t.Fatalf("uuid after reset = %q", b.UUID())
	}
}

func TestIncognitoGating(t *testing.T) {
	w := newWorld(t, "Yandex", "Edge")
	y, _ := w.Browser("Yandex")
	if err := y.SetIncognito(true); err == nil {
		t.Fatal("Yandex incognito accepted (footnote 5)")
	}
	e, _ := w.Browser("Edge")
	e.Launch()
	if err := e.SetIncognito(true); err != nil {
		t.Fatal(err)
	}
	if !e.Incognito() {
		t.Fatal("incognito not set")
	}
	e.SetIncognito(false)
}

func TestNativeVisitTrafficReachesVendors(t *testing.T) {
	w := newWorld(t, "Yandex")
	b := launchReady(t, w, "Yandex")
	sba := w.Vendors.Backend("sba.yandex.net")
	before := sba.Count()
	if _, err := b.Navigate(w.Sites[0].URL()); err != nil {
		t.Fatal(err)
	}
	if sba.Count() != before+1 {
		t.Fatalf("sba requests = %d, want %d", sba.Count(), before+1)
	}
	// The logged request carries the Base64 URL.
	reqs := sba.Requests()
	last := reqs[len(reqs)-1]
	if !strings.Contains(last.Query, "url=") {
		t.Fatalf("sba query = %q", last.Query)
	}
}

func TestIdleCurveShape(t *testing.T) {
	w := newWorld(t, "Opera", "Chrome")
	opera := launchReady(t, w, "Opera")
	chrome := launchReady(t, w, "Chrome")

	news := w.Vendors.Backend("news.opera-api.com")
	gstatic := w.Vendors.Backend("t0.gstatic.com")

	// One virtual minute: Chrome's burst dominates; by ten minutes
	// Opera's linear feed polling has overtaken its own first minute.
	// Idle time is per-browser activity time, so each browser's clock is
	// advanced explicitly.
	opera.AdvanceActivity(1 * time.Minute)
	chrome.AdvanceActivity(1 * time.Minute)
	newsAt1 := news.Count()
	gstaticAt1 := gstatic.Count()
	opera.AdvanceActivity(9 * time.Minute)
	chrome.AdvanceActivity(9 * time.Minute)
	newsAt10 := news.Count()
	gstaticAt10 := gstatic.Count()

	if newsAt10 <= newsAt1*3 {
		t.Fatalf("Opera news feed not linear: %d → %d", newsAt1, newsAt10)
	}
	// Chrome favicon refreshes plateau: most happen in the first minute.
	if gstaticAt1 == 0 {
		t.Fatal("no Chrome burst traffic")
	}
	growth := float64(gstaticAt10-gstaticAt1) / float64(gstaticAt1)
	if growth > 3 {
		t.Fatalf("Chrome favicon traffic not plateauing: %d → %d", gstaticAt1, gstaticAt10)
	}
}

func TestStopHaltsIdleTraffic(t *testing.T) {
	w := newWorld(t, "Edge")
	b := launchReady(t, w, "Edge")
	b.AdvanceActivity(30 * time.Second)
	b.Stop()
	msn := w.Vendors.Backend("msn.com")
	before := msn.Count()
	b.AdvanceActivity(5 * time.Minute)
	if msn.Count() != before {
		t.Fatalf("idle traffic after stop: %d → %d", before, msn.Count())
	}
}

func TestDevToolsURLOnlyForCDP(t *testing.T) {
	w := newWorld(t, "Chrome", "QQ")
	c := launchReady(t, w, "Chrome")
	if !strings.HasPrefix(c.DevToolsURL(), "ws://") {
		t.Fatalf("chrome devtools = %q", c.DevToolsURL())
	}
	q := launchReady(t, w, "QQ")
	if q.DevToolsURL() != "" {
		t.Fatalf("QQ (frida) exposes devtools: %q", q.DevToolsURL())
	}
	c.Stop()
	if c.DevToolsURL() != "" {
		t.Fatal("devtools URL survives stop")
	}
}

func TestNativeErrorsCountPinnedFailures(t *testing.T) {
	w := newWorld(t, "QQ")
	b := launchReady(t, w, "QQ")
	// Divert QQ so the pinned host hits the MITM proxy and fails.
	if err := w.Device.DivertBrowser(b.UID(), core.ProxyAddr); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Navigate(w.Sites[0].URL()); err != nil {
		t.Fatal(err)
	}
	// QQ's noise rotation hits cloud.browser.qq.com within a few visits.
	b.Navigate(w.Sites[1].URL())
	if b.NativeErrors() == 0 {
		t.Fatal("pinned-host failures not counted")
	}
}
