// Package browser implements the mobile browser app emulator: a web
// engine plus the native services the paper measures — per-visit
// phone-home requests, safe-browsing and suggestion lookups, telemetry
// and ad-SDK beacons carrying PII (Table 2), DoH or stub name
// resolution, persistent identifiers in app storage, an idle scheduler
// reproducing Figure 5's phone-home curves, a setup wizard Appium clicks
// through, and either a CDP server or Frida-hookable exports for
// instrumentation.
//
// The emulator never labels its own traffic: everything it does leaves
// the device as ordinary HTTP(S) through the diverted network stack, and
// the analysis pipeline has to find the behaviours on the wire.
package browser

import (
	"context"
	"crypto/sha256"
	"crypto/tls"
	"crypto/x509"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"panoptes/internal/capture"
	"panoptes/internal/cdp"
	"panoptes/internal/device"
	"panoptes/internal/dnssim"
	"panoptes/internal/faultsim"
	"panoptes/internal/frida"
	"panoptes/internal/netsim"
	"panoptes/internal/profiles"
	"panoptes/internal/vclock"
	"panoptes/internal/webengine"
)

// Testbed constants the PII beacons draw from: the paper's EU vantage
// point (FORTH, Heraklion, Greece).
const (
	TestbedTimezone = "Europe/Athens"
	TestbedLocale   = "el-GR"
	TestbedCountry  = "GR"
	TestbedCity     = "Heraklion"
	TestbedISP      = "FORTHnet"
	TestbedLat      = "35.3387"
	TestbedLon      = "25.1442"
)

var instanceSeq atomic.Int64

// Options wires a Browser into the simulation.
type Options struct {
	Device *device.Device
	Clock  *vclock.Clock
	// PublicRoots is the real web PKI pool; pinned hosts validate against
	// it alone, which is what defeats the MITM proxy for them.
	PublicRoots *x509.CertPool
	// FridaDevice is the process registry for Frida attachment.
	FridaDevice *frida.Device
	// ControlIP hosts the CDP endpoint (out of band, not diverted).
	ControlIP net.IP
	// ControlPort for the DevTools listener.
	ControlPort int
	// DisableTLSResume turns off client-side TLS session caching, so
	// every connection pays a full handshake (ablation; pairs with the
	// proxy's cold-handshake mode).
	DisableTLSResume bool
	// Transports lists the data-plane protocols the campaign enabled
	// (capture.TransportH1/H2/WS/DoH). Nil enables all; the browser skips
	// native h2 connections and WebSocket telemetry for transports the
	// interception plane is not configured to dissect.
	Transports []string
}

// Browser is one emulated browser app instance.
type Browser struct {
	Profile *profiles.Profile
	Pkg     *device.Package

	opts  Options
	dev   *device.Device
	clock *vclock.Clock
	// activity is the browser's private clock: it measures virtual time
	// the app itself experiences (page loads, settle windows, idle
	// waiting) and drives the idle phone-home scheduler. It is advanced
	// only by whoever is driving this browser — under a parallel
	// campaign, the one worker crawling it — so a browser's idle curve
	// depends solely on its own timeline, never on how many other
	// browsers happen to be advancing the shared world clock. Flow
	// timestamps and TLS validation keep using the world clock.
	activity *vclock.Clock

	engine       *webengine.Engine
	nativeClient *http.Client
	dohClient    *dnssim.Client

	cdpServer   *cdp.Server
	cdpListener *netsim.Listener
	cdpHTTP     *http.Server
	cdpURL      string

	mu           sync.Mutex
	running      bool
	wizardStep   int // 0..len(wizardSteps): done when == len
	incognito    bool
	uuid         string
	visitCount   int
	noiseIdx     int
	idleTicker   *vclock.Ticker
	idleAlign    *vclock.Timer // re-alignment timer after a mid-session relaunch
	idleStart    time.Time
	idleIssued   float64
	idleCredit   []float64
	rng          *rand.Rand
	fridaHook    frida.RequestHook
	fetchEnabled bool
	netEnabled   bool
	pausedMu     sync.Mutex
	paused       map[string]chan []cdp.HeaderEntry
	pausedSeq    int
	nativeErrs   int
	resolve      webengine.ResolveFunc
	faults       *faultsim.Injector
	navTimeout   time.Duration

	// resolveMu guards the app-session OS-resolver cache. It lives on the
	// Browser (not in a buildClients closure) so SessionState can snapshot
	// and restore it across retries and relaunches.
	resolveMu    sync.Mutex
	resolveCache map[string]bool

	// clientTLS is the native stack's TLS template (roots, clock, session
	// cache); the h2 and WebSocket dialers clone it per connection.
	clientTLS *tls.Config

	// quicMu guards the per-session QUIC arms-race cache: the first
	// native contact with an h3-advertising origin probes UDP/443 once
	// and remembers the outcome ("fallback" or "bypass") for the rest of
	// the app session. Snapshotted by SessionState so a restore does not
	// re-probe (and re-count) hosts the session already raced.
	quicMu    sync.Mutex
	quicState map[string]string

	// h2Mu serialises the native HTTP/2 connections (one per H2Hosts
	// entry, persistent across visits like a real h2 session).
	h2Mu    sync.Mutex
	h2Conns map[string]*h2NativeConn

	// navMu/navInFlight/navIdle track Navigate calls still running after
	// their CDP or Frida RPC gave up (a wall-clock timeout abandons the
	// call, not the handler). Quiesce fences session rollback against
	// these zombies.
	navMu       sync.Mutex
	navInFlight int
	navIdle     chan struct{}
}

// navEnter/navExit bracket every Navigate call (including ones whose RPC
// has already timed out).
func (b *Browser) navEnter() {
	b.navMu.Lock()
	b.navInFlight++
	b.navMu.Unlock()
}

func (b *Browser) navExit() {
	b.navMu.Lock()
	b.navInFlight--
	if b.navInFlight == 0 && b.navIdle != nil {
		close(b.navIdle)
		b.navIdle = nil
	}
	b.navMu.Unlock()
}

// Quiesce blocks until no Navigate call is in flight, or until timeout.
// The campaign runner calls it after a failed attempt, before rolling the
// session back: a navigation that outlived its timed-out RPC must not
// mutate state concurrently with RestoreSession. It returns false if a
// navigation is still running (e.g. wedged on a hung origin) — such a
// zombie only resumes after the campaign's own goroutines have joined, so
// abandoning it is safe, just untidy.
func (b *Browser) Quiesce(timeout time.Duration) bool {
	b.navMu.Lock()
	if b.navInFlight == 0 {
		b.navMu.Unlock()
		return true
	}
	if b.navIdle == nil {
		b.navIdle = make(chan struct{})
	}
	idle := b.navIdle
	b.navMu.Unlock()
	select {
	case <-idle:
		return true
	case <-time.After(timeout):
		return false
	}
}

// SetFaults installs (or clears, with nil) the fault injector consulted on
// navigation (browser_crash) and by the CDP handler (cdp_stall).
func (b *Browser) SetFaults(inj *faultsim.Injector) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.faults = inj
}

func (b *Browser) faultsInj() *faultsim.Injector {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.faults
}

// SetNavigateTimeout bounds every engine request (document and
// sub-resources) so a hung origin cannot stall a navigation beyond the
// campaign's NavigateTimeout. It applies to the current engine and to
// engines built by later relaunches. Non-positive values are ignored.
func (b *Browser) SetNavigateTimeout(d time.Duration) {
	if d <= 0 {
		return
	}
	b.mu.Lock()
	b.navTimeout = d
	eng := b.engine
	b.mu.Unlock()
	if eng != nil {
		eng.SetTimeout(d)
	}
}

// New installs the app on the device and returns the (not yet launched)
// browser.
func New(p *profiles.Profile, opts Options) *Browser {
	pkg := opts.Device.Install(p.Package)
	b := &Browser{
		Profile:  p,
		Pkg:      pkg,
		opts:     opts,
		dev:      opts.Device,
		clock:    opts.Clock,
		activity: vclock.NewAt(opts.Clock.Now()),
		paused:   make(map[string]chan []cdp.HeaderEntry),
		rng:      rand.New(rand.NewSource(int64(hashString(p.Package)))),
	}
	return b
}

func hashString(s string) uint32 {
	h := sha256.Sum256([]byte(s))
	return uint32(h[0])<<24 | uint32(h[1])<<16 | uint32(h[2])<<8 | uint32(h[3])
}

// UID returns the app's kernel UID.
func (b *Browser) UID() int { return b.Pkg.UID }

// Running reports whether the app is up.
func (b *Browser) Running() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.running
}

// DevToolsURL returns the CDP endpoint ("" for Frida-only browsers or
// when stopped).
func (b *Browser) DevToolsURL() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cdpURL
}

// Launch starts the app: loads (or mints) its persistent identifier,
// builds the engine and native clients, exposes the instrumentation
// surface, and arms the idle phone-home scheduler. Launching twice is an
// error.
func (b *Browser) Launch() error {
	b.mu.Lock()
	if b.running {
		b.mu.Unlock()
		return fmt.Errorf("browser: %s already running", b.Profile.Name)
	}
	b.running = true
	b.visitCount = 0
	b.idleIssued = 0
	b.mu.Unlock()

	// Persistent identifier: survives relaunches, dies with app data.
	uuid, ok := b.dev.StorageGet(b.Pkg.Name, "install_uuid")
	if !ok {
		uuid = b.mintUUID()
		if err := b.dev.StoragePut(b.Pkg.Name, "install_uuid", uuid); err != nil {
			return fmt.Errorf("browser: store uuid: %w", err)
		}
	}
	b.mu.Lock()
	b.uuid = uuid
	b.idleStart = b.activity.Now()
	b.mu.Unlock()

	b.buildClients()

	if b.Profile.Instrumentation == profiles.InstrumentCDP {
		if err := b.startCDP(); err != nil {
			return err
		}
	}
	if b.opts.FridaDevice != nil {
		b.opts.FridaDevice.Register(b.Pkg.Name, b.fridaExports())
	}

	// Idle scheduler: wakes every 5 virtual seconds of the browser's own
	// activity time and tops issued requests up to the profile's
	// cumulative curve.
	b.idleTicker = b.activity.Tick(5*time.Second, b.idleTick)
	return nil
}

// AdvanceActivity moves the browser's private activity clock forward,
// firing any idle-scheduler ticks that fall due. The campaign scheduler
// calls it once per visit (modelled load time plus settle) and the idle
// experiment steps it in lockstep with the world clock; tests drive it
// directly to elicit idle traffic.
func (b *Browser) AdvanceActivity(d time.Duration) {
	b.activity.Advance(d)
}

func (b *Browser) mintUUID() string {
	seq := instanceSeq.Add(1)
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%d|%d", b.Pkg.Name, seq, b.clock.Now().UnixNano())))
	return hex.EncodeToString(sum[:])
}

// buildClients constructs the engine and the native-service HTTP client.
func (b *Browser) buildClients() {
	roots := b.dev.TrustedRoots()
	baseTLS := &tls.Config{RootCAs: roots, Time: b.clock.Now}

	// Pinned hosts validate against the public web PKI only; the MITM
	// chain fails for them (paper footnote 3).
	pinned := make(map[string]bool, len(b.Profile.PinnedHosts))
	for _, h := range b.Profile.PinnedHosts {
		pinned[h] = true
	}

	dial := func(ctx context.Context, addr string) (net.Conn, error) {
		return b.dev.DialContext(ctx, b.Pkg.UID, addr)
	}

	// Session caches are created per launch, so a relaunched app starts
	// with cold TLS state the way a restarted process would; while it
	// runs, repeat connections resume instead of re-handshaking.
	nativeTLS := baseTLS.Clone()
	if !b.opts.DisableTLSResume {
		nativeTLS.ClientSessionCache = tls.NewLRUClientSessionCache(64)
	}
	if len(pinned) > 0 {
		nativeTLS.VerifyConnection = func(cs tls.ConnectionState) error {
			if !pinned[cs.ServerName] {
				return nil
			}
			opts := x509.VerifyOptions{
				Roots:         b.opts.PublicRoots,
				DNSName:       cs.ServerName,
				CurrentTime:   b.clock.Now(),
				Intermediates: x509.NewCertPool(),
			}
			for _, c := range cs.PeerCertificates[1:] {
				opts.Intermediates.AddCert(c)
			}
			if _, err := cs.PeerCertificates[0].Verify(opts); err != nil {
				return fmt.Errorf("browser: pinned host %s: %w", cs.ServerName, err)
			}
			return nil
		}
	}
	b.nativeClient = &http.Client{
		Transport: &http.Transport{
			DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
				return dial(ctx, addr)
			},
			TLSClientConfig:     nativeTLS,
			MaxIdleConnsPerHost: 4,
			// Native services talk to a handful of vendor hosts over and
			// over; a roomy idle pool keeps those sessions warm instead of
			// re-handshaking every telemetry beacon.
			MaxIdleConns:    128,
			IdleConnTimeout: 90 * time.Second,
		},
		Timeout: 30 * time.Second,
	}

	// Resolver path: DoH browsers ship lookups to Cloudflare/Google over
	// HTTPS (native flows); the rest use the device stub. Results are
	// cached per app session, as the OS resolver cache would.
	var resolve webengine.ResolveFunc
	switch b.Profile.DNS {
	case profiles.DNSDoHCloudflare, profiles.DNSDoHGoogle:
		endpoint := "https://cloudflare-dns.com/dns-query"
		if b.Profile.DNS == profiles.DNSDoHGoogle {
			endpoint = "https://dns.google/dns-query"
		}
		b.dohClient = &dnssim.Client{Endpoint: endpoint, HTTP: b.nativeClient}
		resolve = func(host string) error {
			_, err := b.dohClient.Lookup(host)
			return err
		}
	default:
		resolve = func(host string) error {
			_, err := b.dev.Resolver().Lookup(b.Pkg.UID, host)
			return err
		}
	}
	b.resolveMu.Lock()
	b.resolveCache = make(map[string]bool)
	b.resolveMu.Unlock()
	b.clientTLS = nativeTLS
	b.quicMu.Lock()
	b.quicState = make(map[string]string)
	b.quicMu.Unlock()
	b.h2Mu.Lock()
	b.h2Conns = make(map[string]*h2NativeConn)
	b.h2Mu.Unlock()
	b.resolve = func(host string) error {
		b.resolveMu.Lock()
		if b.resolveCache[host] {
			b.resolveMu.Unlock()
			return nil
		}
		b.resolveMu.Unlock()
		err := resolve(host)
		if err == nil {
			b.resolveMu.Lock()
			b.resolveCache[host] = true
			b.resolveMu.Unlock()
		}
		return err
	}

	engineTLS := baseTLS.Clone()
	if !b.opts.DisableTLSResume {
		engineTLS.ClientSessionCache = tls.NewLRUClientSessionCache(64)
	}
	b.engine = webengine.New(webengine.Config{
		UserAgent: b.Profile.UserAgent(),
		Dial:      dial,
		TLS:       engineTLS,
		Resolve:   resolve,
	})
	b.engine.SetInterceptor(b.interceptEngineRequest)
	b.engine.SetRequestObserver(b.observeEngineRequest)
	b.mu.Lock()
	navTimeout := b.navTimeout
	b.mu.Unlock()
	if navTimeout > 0 {
		b.engine.SetTimeout(navTimeout)
	}

	if b.Profile.InjectsScript {
		b.engine.AddInjection(webengine.Injection{
			Name:      "uc-gjs",
			ScriptURL: "https://ucgjs.ucweb.com/gj.js",
			Execute: func(e *webengine.Engine, pageURL string) error {
				beacon := fmt.Sprintf(
					"https://gjapi.ucweb.com/collect?u=%s&city=%s&isp=%s&cc=%s",
					url.QueryEscape(pageURL), TestbedCity, TestbedISP, TestbedCountry)
				_, _, _, err := e.Fetch(beacon)
				return err
			},
		})
	}
}

// Stop halts the app: idle scheduler off, instrumentation surfaces torn
// down. App data (the persistent identifier) survives.
func (b *Browser) Stop() {
	b.mu.Lock()
	if !b.running {
		b.mu.Unlock()
		return
	}
	b.running = false
	ticker := b.idleTicker
	b.idleTicker = nil
	align := b.idleAlign
	b.idleAlign = nil
	b.mu.Unlock()

	if ticker != nil {
		ticker.Stop()
	}
	if align != nil {
		align.Stop()
	}
	b.stopCDP()
	if b.opts.FridaDevice != nil {
		b.opts.FridaDevice.Unregister(b.Pkg.Name)
	}
	// Release pooled connections: a 15-browser campaign would otherwise
	// accumulate thousands of idle in-memory TLS sessions.
	if b.engine != nil {
		b.engine.Close()
	}
	if b.nativeClient != nil {
		b.nativeClient.CloseIdleConnections()
	}
	b.closeH2Conns()
}

// Reset is the Appium factory reset: stop the app and wipe its private
// data, destroying the persistent identifier.
func (b *Browser) Reset() error {
	b.Stop()
	if err := b.dev.ClearAppData(b.Pkg.Name); err != nil {
		return err
	}
	b.mu.Lock()
	b.uuid = ""
	b.wizardStep = 0
	b.incognito = false
	b.mu.Unlock()
	return nil
}

// UUID returns the current persistent identifier ("" before launch).
func (b *Browser) UUID() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.uuid
}

// SetIncognito switches private browsing. Browsers without the mode
// (Yandex, QQ — paper footnote 5) return an error.
func (b *Browser) SetIncognito(on bool) error {
	if on && !b.Profile.HasIncognito {
		return fmt.Errorf("browser: %s has no incognito mode", b.Profile.Name)
	}
	b.mu.Lock()
	b.incognito = on
	b.mu.Unlock()
	if on && b.engine != nil {
		b.engine.ResetSession()
	}
	return nil
}

// Incognito reports the current mode.
func (b *Browser) Incognito() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.incognito
}

// NativeErrors counts native requests that failed (pinned hosts dying on
// the proxy land here).
func (b *Browser) NativeErrors() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nativeErrs
}

// --- Idle phone-home scheduler (Figure 5) ---

// idleTick tops the cumulative idle request count up to the profile's
// curve C(t) = Burst·(1−exp(−t/τ)) + Rate·t/60.
func (b *Browser) idleTick() {
	b.mu.Lock()
	if !b.running {
		b.mu.Unlock()
		return
	}
	t := b.activity.Now().Sub(b.idleStart).Seconds()
	p := b.Profile
	expected := p.IdleBurst*(1-math.Exp(-t/p.IdleTauSec)) + p.IdleRatePerMin*t/60
	var dests []profiles.IdleDest
	for b.idleIssued < expected {
		b.idleIssued++
		dests = append(dests, b.pickIdleDest())
	}
	b.mu.Unlock()

	for _, d := range dests {
		b.nativeRequest("GET", d.Host, d.Path, "", "")
	}
}

// pickIdleDest selects the next destination by smooth weighted
// round-robin, so idle destination shares converge exactly to the
// profile's weights (Figure 5's percentages). Callers hold b.mu.
func (b *Browser) pickIdleDest() profiles.IdleDest {
	dests := b.Profile.IdleDests
	if len(dests) == 0 {
		return profiles.IdleDest{Host: "example.invalid", Path: "/"}
	}
	if len(b.idleCredit) != len(dests) {
		b.idleCredit = make([]float64, len(dests))
	}
	total := 0.0
	best := 0
	for i, d := range dests {
		b.idleCredit[i] += d.Weight
		total += d.Weight
		if b.idleCredit[i] > b.idleCredit[best] {
			best = i
		}
	}
	b.idleCredit[best] -= total
	return dests[best]
}

// --- Native request plumbing ---

// nativeRequest issues one untainted request from the app's native code.
func (b *Browser) nativeRequest(method, host, path, query, body string) {
	if b.resolve != nil {
		_ = b.resolve(host)
	}
	u := "https://" + host + path
	if query != "" {
		u += "?" + query
	}
	// QUIC arms race: a Chromium-family stack probes UDP/443 first; a
	// delivered probe means the request leaves over HTTP/3 and never
	// reaches the TCP interception plane.
	if b.quicBypass(method, host, u, body) {
		return
	}
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, u, rd)
	if err != nil {
		return
	}
	req.Header.Set("User-Agent", b.Profile.UserAgent())
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if b.useH2(host) {
		if done := b.h2Request(req); done {
			return
		}
		// ALPN fell back to http/1.1 (h2 disabled at the proxy): reissue
		// on the ordinary client below.
		if body != "" {
			req.Body = io.NopCloser(strings.NewReader(body))
		}
	}
	resp, err := b.nativeClient.Do(req)
	if err != nil {
		b.mu.Lock()
		b.nativeErrs++
		b.mu.Unlock()
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// expand fills a native template's placeholders for a visit.
func (b *Browser) expand(t, visitURL string) string {
	host := ""
	if u, err := url.Parse(visitURL); err == nil {
		host = u.Hostname()
	}
	r := strings.NewReplacer(
		"{URL}", visitURL,
		"{URL_B64}", base64.StdEncoding.EncodeToString([]byte(visitURL)),
		"{URL_ESC}", url.QueryEscape(visitURL),
		"{HOST}", host,
		"{UUID}", b.UUID(),
	)
	return r.Replace(t)
}

// onVisitNative fires the profile's per-visit native traffic.
func (b *Browser) onVisitNative(visitURL string) {
	p := b.Profile
	for _, t := range p.OnVisit {
		method := t.Method
		if method == "" {
			method = http.MethodGet
		}
		b.nativeRequest(method, t.Host, t.Path, b.expand(t.Query, visitURL), b.expand(t.Body, visitURL))
	}
	// PII beacon (Table 2): device attributes as query parameters.
	if p.PII.Any() && p.PIICarrier != "" {
		b.nativeRequest(http.MethodGet, p.PIICarrier, "/device/profile", b.piiQuery(), "")
	}
	// Generic telemetry noise, round-robin over the noise hosts.
	for i := 0; i < p.VisitNoise; i++ {
		if len(p.NoiseHosts) == 0 {
			break
		}
		b.mu.Lock()
		host := p.NoiseHosts[b.noiseIdx%len(p.NoiseHosts)]
		b.noiseIdx++
		b.mu.Unlock()
		body := ""
		method := http.MethodGet
		if p.NoiseBytes > 0 {
			method = http.MethodPost
			body = fmt.Sprintf(`{"event":"telemetry","seq":%d,"pad":"%s"}`,
				b.visitCount, strings.Repeat("t", p.NoiseBytes))
		}
		b.nativeRequest(method, host, "/beacon", "", body)
	}
	// WebSocket push telemetry: the visited URL rides inside a frame, not
	// an HTTP request line or body.
	if p.WSTelemetryHost != "" && b.transportOn(capture.TransportWS) {
		b.wsTelemetry(p.WSTelemetryHost, visitURL)
	}
	// DoH PII qname: the device country crosses the wire only as a DNS
	// label inside the DoH POST body.
	if p.DoHPIIQname != "" && b.dohClient != nil {
		qname := strings.ReplaceAll(p.DoHPIIQname, "{CC}", strings.ToLower(TestbedCountry))
		_, _ = b.dohClient.Lookup(qname)
	}
}

// piiQuery renders the Table 2 attributes the profile leaks.
func (b *Browser) piiQuery() string {
	p := b.Profile.PII
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+url.QueryEscape(v)) }
	if p.DeviceType {
		add("deviceType", "TABLET")
	}
	if p.DeviceManuf {
		add("manufacturer", device.Manufacturer)
	}
	if p.Timezone {
		add("tz", TestbedTimezone)
	}
	if p.Resolution {
		add("resolution", fmt.Sprintf("%dx%d", device.ScreenWidth, device.ScreenHeight))
	}
	if p.LocalIP {
		add("localIp", b.dev.IP.String())
	}
	if p.DPI {
		add("dpi", fmt.Sprint(device.ScreenDPI))
	}
	if p.Rooted {
		add("rooted", fmt.Sprint(b.dev.Rooted()))
	}
	if p.Locale {
		add("locale", TestbedLocale)
	}
	if p.Country {
		add("country", TestbedCountry)
	}
	if p.LatLong {
		add("latitude", TestbedLat)
		add("longitude", TestbedLon)
	}
	if p.ConnType {
		add("connectionType", "UNMETERED")
	}
	if p.NetType {
		add("networkType", "WIFI")
	}
	return strings.Join(parts, "&")
}
