package browser

// Native transport behaviours beyond plain HTTP/1.1: the QUIC
// probe-and-fallback arms race (browsers attempt UDP/443 against
// h3-advertising origins; the testbed's block-http3 firewall rule drops
// the probe and forces them onto interceptable TCP), persistent native
// HTTP/2 connections to the profile's H2Hosts, and the per-visit
// WebSocket telemetry channel. All of it leaves the device through the
// diverted network stack; the analysis pipeline sees only the wire.

import (
	"context"
	"crypto/tls"
	"fmt"
	"net"
	"net/http"

	"panoptes/internal/capture"
	"panoptes/internal/h2"
	"panoptes/internal/obs"
	"panoptes/internal/ws"
)

func init() {
	obs.Default.Help("netsim_quic_fallback_total",
		"QUIC (UDP/443) probes dropped by the block-http3 firewall rule, forcing the browser onto interceptable TCP, by browser.")
	obs.Default.Help("netsim_quic_bypass_total",
		"Native requests shipped over QUIC while UDP/443 was open (block-h3 ablation off): traffic the TCP interception plane never sees, by browser.")
}

// transportOn reports whether the campaign enabled transport t for this
// browser. Nil Options.Transports enables everything.
func (b *Browser) transportOn(t string) bool {
	if len(b.opts.Transports) == 0 {
		return true
	}
	for _, v := range b.opts.Transports {
		if v == t {
			return true
		}
	}
	return false
}

// --- QUIC probe / fallback ---

// quicBypass runs the HTTP/3 arms race for one native request. The first
// contact with an h3-advertising origin sends a UDP/443 probe: dropped
// by the firewall → the session remembers the fallback (counted once per
// origin) and every request proceeds over TCP; delivered → the origin is
// reachable over QUIC, this and every later request to it leaves as a
// datagram, and the function returns true (nothing for the TCP plane).
func (b *Browser) quicBypass(method, host, fullURL, body string) bool {
	if !b.Profile.AttemptsQUIC || b.dev.Net == nil || !b.dev.Net.SupportsH3(host) {
		return false
	}
	b.quicMu.Lock()
	state, probed := b.quicState[host]
	b.quicMu.Unlock()
	if !probed {
		delivered, err := b.dev.SendUDP(b.Pkg.UID, host, 443, []byte("quic initial "+host))
		state = "fallback"
		if err == nil && delivered {
			state = "bypass"
		}
		b.quicMu.Lock()
		if b.quicState == nil {
			b.quicState = make(map[string]string)
		}
		b.quicState[host] = state
		b.quicMu.Unlock()
		if state == "fallback" {
			obs.Default.Counter("netsim_quic_fallback_total", "browser", b.Profile.Name).Inc()
		}
	}
	if state != "bypass" {
		return false
	}
	payload := fmt.Sprintf("h3 %s %s\n%s", method, fullURL, body)
	if _, err := b.dev.SendUDP(b.Pkg.UID, host, 443, []byte(payload)); err != nil {
		return false
	}
	obs.Default.Counter("netsim_quic_bypass_total", "browser", b.Profile.Name).Inc()
	return true
}

// --- Native HTTP/2 ---

// h2NativeConn is one persistent native HTTP/2 connection.
type h2NativeConn struct {
	conn net.Conn
	hc   *h2.Client
}

// useH2 reports whether native requests to host ride the h2 path.
func (b *Browser) useH2(host string) bool {
	if !b.transportOn(capture.TransportH2) {
		return false
	}
	for _, h := range b.Profile.H2Hosts {
		if h == host {
			return true
		}
	}
	return false
}

// h2Request performs req over the host's persistent h2 connection. It
// returns true when the exchange was handled on the h2 path (success or
// counted failure) and false when ALPN negotiated http/1.1 — the caller
// then reissues the request through the ordinary client.
func (b *Browser) h2Request(req *http.Request) bool {
	host := req.URL.Hostname()
	b.h2Mu.Lock()
	defer b.h2Mu.Unlock()

	entry := b.h2Conns[host]
	if entry == nil {
		raw, err := b.dev.DialContext(context.Background(), b.Pkg.UID, host+":443")
		if err != nil {
			b.countNativeErr()
			return true
		}
		tcfg := b.clientTLS.Clone()
		tcfg.ServerName = host
		tcfg.NextProtos = []string{h2.ProtoName, "http/1.1"}
		tc := tls.Client(raw, tcfg)
		if err := tc.Handshake(); err != nil {
			raw.Close()
			b.countNativeErr()
			return true
		}
		if tc.ConnectionState().NegotiatedProtocol != h2.ProtoName {
			tc.Close()
			return false
		}
		hc, err := h2.NewClient(tc)
		if err != nil {
			tc.Close()
			b.countNativeErr()
			return true
		}
		entry = &h2NativeConn{conn: tc, hc: hc}
		if b.h2Conns == nil {
			b.h2Conns = make(map[string]*h2NativeConn)
		}
		b.h2Conns[host] = entry
	}

	resp, err := entry.hc.RoundTrip(req)
	if err != nil {
		entry.conn.Close()
		delete(b.h2Conns, host)
		b.countNativeErr()
		return true
	}
	resp.Body.Close()
	return true
}

// closeH2Conns drops every persistent h2 connection (app stop).
func (b *Browser) closeH2Conns() {
	b.h2Mu.Lock()
	defer b.h2Mu.Unlock()
	for host, e := range b.h2Conns {
		e.conn.Close()
		delete(b.h2Conns, host)
	}
}

func (b *Browser) countNativeErr() {
	b.mu.Lock()
	b.nativeErrs++
	b.mu.Unlock()
}

// --- WebSocket telemetry ---

// wsTelemetry opens the push channel, ships one visit frame carrying the
// visited URL and the persistent identifier, reads the ack, and closes.
func (b *Browser) wsTelemetry(host, visitURL string) {
	if b.resolve != nil {
		_ = b.resolve(host)
	}
	b.mu.Lock()
	seq := b.visitCount
	b.mu.Unlock()
	c, err := ws.Dial("wss://"+host+"/push/v1/telemetry", func(addr string) (net.Conn, error) {
		raw, err := b.dev.DialContext(context.Background(), b.Pkg.UID, addr)
		if err != nil {
			return nil, err
		}
		tcfg := b.clientTLS.Clone()
		tcfg.ServerName = host
		tc := tls.Client(raw, tcfg)
		if err := tc.Handshake(); err != nil {
			raw.Close()
			return nil, err
		}
		return tc, nil
	})
	if err != nil {
		b.countNativeErr()
		return
	}
	defer c.Close()
	frame := fmt.Sprintf(`{"event":"page_visit","seq":%d,"url":%q,"uuid":%q}`, seq, visitURL, b.UUID())
	if err := c.WriteMessage(ws.OpText, []byte(frame)); err != nil {
		b.countNativeErr()
		return
	}
	_, _, _ = c.ReadMessage()
}
