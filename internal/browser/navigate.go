package browser

import (
	"fmt"
	"net/http"
	"time"

	"panoptes/internal/cdp"
	"panoptes/internal/webengine"
)

// interceptTimeout bounds how long the engine waits for a CDP client to
// continue a paused request (wall-clock; the protocol runs in real time).
const interceptTimeout = 15 * time.Second

// Navigate loads a URL: the engine fetches the page and resources (each
// request passing the interception point), then the app's native
// services fire their per-visit traffic. It returns the engine's result,
// whose LoadTimeMs the orchestrator feeds to the virtual clock.
func (b *Browser) Navigate(url string) (*webengine.PageResult, error) {
	b.navEnter()
	defer b.navExit()
	b.mu.Lock()
	if !b.running {
		b.mu.Unlock()
		return nil, fmt.Errorf("browser: %s not running", b.Profile.Name)
	}
	if b.wizardStep < len(wizardSteps) {
		b.mu.Unlock()
		return nil, fmt.Errorf("browser: %s first-run wizard not completed", b.Profile.Name)
	}
	b.mu.Unlock()

	// Armed crash fault: the app process dies before touching the network,
	// leaving nothing to quarantine. The campaign runner relaunches and
	// restores the session.
	if b.faultsInj().CrashFault(b.Pkg.UID) {
		b.Stop()
		return nil, fmt.Errorf("browser: %s crashed (injected browser_crash)", b.Profile.Name)
	}

	b.mu.Lock()
	b.visitCount++
	incognito := b.incognito
	b.mu.Unlock()

	if incognito {
		// Fresh ephemeral session state per private navigation.
		b.engine.ResetSession()
	}

	res, err := b.engine.Navigate(url)
	if err != nil {
		return res, err
	}
	// A failing document status fails the visit: the page never rendered,
	// so treating it as success would count an error page's traffic as the
	// site's. (Injected http_5xx faults surface here.)
	if res.Status >= 400 {
		return res, fmt.Errorf("browser: document %s returned status %d", url, res.Status)
	}

	// Native per-visit traffic fires regardless of incognito mode — the
	// paper's central incognito finding (§3.2).
	b.onVisitNative(url)

	if b.cdpServer != nil {
		b.cdpServer.Emit(cdp.EventDOMContentFired, map[string]any{
			"timestamp": float64(b.clock.Now().UnixMilli()) / 1000.0,
		})
		b.cdpServer.Emit(cdp.EventLoadFired, map[string]any{
			"timestamp": float64(b.clock.Now().UnixMilli())/1000.0 + 0.05,
		})
	}
	return res, nil
}

// interceptEngineRequest is the engine's pre-flight hook: the CDP Fetch
// pause/continue exchange when a DevTools client enabled interception,
// then any Frida hook. Engine ad-blocking (CocCoc) also lives here.
func (b *Browser) interceptEngineRequest(req *http.Request) error {
	if b.Profile.EngineAdBlock && engineBlocklist.AdRelated(req.URL.Hostname()) {
		return fmt.Errorf("blocked by easylist: %s", req.URL.Hostname())
	}

	b.mu.Lock()
	fetchOn := b.fetchEnabled && b.cdpServer != nil && b.cdpServer.HasClient()
	hook := b.fridaHook
	b.mu.Unlock()

	if fetchOn {
		if err := b.pauseAndContinue(req); err != nil {
			return err
		}
	}
	if hook != nil {
		if err := hook(req); err != nil {
			return err
		}
	}
	return nil
}

// pauseAndContinue emits Fetch.requestPaused and blocks until the client
// continues the request, applying any header mutations.
func (b *Browser) pauseAndContinue(req *http.Request) error {
	b.pausedMu.Lock()
	b.pausedSeq++
	id := fmt.Sprintf("interception-job-%d.%d", b.Pkg.UID, b.pausedSeq)
	ch := make(chan []cdp.HeaderEntry, 1)
	b.paused[id] = ch
	b.pausedMu.Unlock()
	defer func() {
		b.pausedMu.Lock()
		delete(b.paused, id)
		b.pausedMu.Unlock()
	}()

	headers := make(map[string]string, len(req.Header))
	for k := range req.Header {
		headers[k] = req.Header.Get(k)
	}
	b.cdpServer.Emit(cdp.EventRequestPaused, cdp.RequestPausedParams{
		RequestID: id,
		Request: cdp.RequestPayload{
			URL: req.URL.String(), Method: req.Method, Headers: headers,
		},
	})

	select {
	case entries := <-ch:
		for _, e := range entries {
			req.Header.Set(e.Name, e.Value)
		}
		return nil
	case <-time.After(interceptTimeout):
		return fmt.Errorf("browser: Fetch interception timed out for %s", req.URL)
	}
}

// observeEngineRequest backs the Network domain's requestWillBeSent.
func (b *Browser) observeEngineRequest(u string) {
	b.mu.Lock()
	emit := b.netEnabled && b.cdpServer != nil
	b.mu.Unlock()
	if emit {
		b.cdpServer.Emit(cdp.EventRequestWillBeSent, cdp.RequestWillBeSentParams{
			RequestID: fmt.Sprintf("net-%d", b.clock.Now().UnixNano()),
			Request:   cdp.RequestPayload{URL: u, Method: http.MethodGet},
		})
	}
}
