package browser

import (
	"sort"
	"time"

	"panoptes/internal/vclock"
)

// SessionState is a restorable snapshot of a browser's mutable app-session
// state: the persistent identifier, the per-visit counters that drive
// native-traffic sequencing (noise round-robin, telemetry seq), the idle
// scheduler position, and both resolver caches. The campaign runner
// snapshots it before every navigation attempt (so a failed attempt can be
// rolled back without perturbing later traffic), after every committed
// visit (for checkpoints), and re-applies it after a crash relaunch or a
// cross-process resume. Clock fields are stored as offsets from
// vclock.Epoch so the snapshot serializes to JSON.
type SessionState struct {
	UUID            string        `json:"uuid,omitempty"`
	VisitCount      int           `json:"visit_count"`
	NoiseIdx        int           `json:"noise_idx"`
	NativeErrs      int           `json:"native_errs"`
	IdleIssued      float64       `json:"idle_issued"`
	IdleStartOffset time.Duration `json:"idle_start_offset"`
	ActivityOffset  time.Duration `json:"activity_offset"`
	// ResolvedHosts is the app's OS-resolver (or DoH) session cache;
	// EngineResolved is the web engine's per-session resolve log.
	ResolvedHosts  []string `json:"resolved_hosts,omitempty"`
	EngineResolved []string `json:"engine_resolved,omitempty"`
	// QUICProbed is the session's QUIC arms-race cache (host →
	// "fallback" or "bypass"); restoring it keeps a relaunch from
	// re-probing (and re-counting) origins the session already raced.
	QUICProbed map[string]string `json:"quic_probed,omitempty"`
}

// SessionState captures the current session state.
func (b *Browser) SessionState() *SessionState {
	b.mu.Lock()
	st := &SessionState{
		UUID:            b.uuid,
		VisitCount:      b.visitCount,
		NoiseIdx:        b.noiseIdx,
		NativeErrs:      b.nativeErrs,
		IdleIssued:      b.idleIssued,
		IdleStartOffset: b.idleStart.Sub(vclock.Epoch),
		ActivityOffset:  b.activity.Now().Sub(vclock.Epoch),
	}
	b.mu.Unlock()

	b.resolveMu.Lock()
	hosts := make([]string, 0, len(b.resolveCache))
	for h := range b.resolveCache {
		hosts = append(hosts, h)
	}
	b.resolveMu.Unlock()
	sort.Strings(hosts)
	st.ResolvedHosts = hosts
	if b.engine != nil {
		st.EngineResolved = b.engine.ResolvedHosts()
	}
	b.quicMu.Lock()
	if len(b.quicState) > 0 {
		st.QUICProbed = make(map[string]string, len(b.quicState))
		for h, s := range b.quicState {
			st.QUICProbed[h] = s
		}
	}
	b.quicMu.Unlock()
	return st
}

// RestoreSession re-applies a snapshot taken by SessionState. It restores
// the identifier and counters, rebuilds the idle scheduler's weighted
// round-robin credit (a pure function of how many idle requests have been
// issued), re-arms the idle ticker on the original session's 5-second
// grid, catches the activity clock up to the snapshot instant (no traffic
// is issued during catch-up: the restored counters already cover it), and
// restores both resolver caches. The browser must be running.
func (b *Browser) RestoreSession(st *SessionState) {
	if st == nil {
		return
	}
	b.mu.Lock()
	if st.UUID != "" {
		b.uuid = st.UUID
	}
	b.visitCount = st.VisitCount
	b.noiseIdx = st.NoiseIdx
	b.nativeErrs = st.NativeErrs
	b.idleStart = vclock.Epoch.Add(st.IdleStartOffset)
	// Replay the smooth-WRR selector to rebuild its credit vector, then
	// pin the issued count to the snapshot.
	b.idleIssued = 0
	b.idleCredit = nil
	for i := 0; i < int(st.IdleIssued); i++ {
		b.pickIdleDest()
	}
	b.idleIssued = st.IdleIssued
	running := b.running
	ticker := b.idleTicker
	b.idleTicker = nil
	align := b.idleAlign
	b.idleAlign = nil
	b.mu.Unlock()

	if ticker != nil {
		ticker.Stop()
	}
	if align != nil {
		align.Stop()
	}

	b.resolveMu.Lock()
	b.resolveCache = make(map[string]bool, len(st.ResolvedHosts))
	for _, h := range st.ResolvedHosts {
		b.resolveCache[h] = true
	}
	b.resolveMu.Unlock()
	b.quicMu.Lock()
	b.quicState = make(map[string]string, len(st.QUICProbed))
	for h, s := range st.QUICProbed {
		b.quicState[h] = s
	}
	b.quicMu.Unlock()
	if b.engine != nil {
		b.engine.SetResolvedHosts(st.EngineResolved)
	}

	if running {
		b.armIdleTickerAligned()
		// After a relaunch or resume the activity clock may trail the
		// snapshot; catch it up so later advances measure from the right
		// instant. Ticks firing on the way issue nothing — the restored
		// idleIssued already covers the curve up to this point.
		target := vclock.Epoch.Add(st.ActivityOffset)
		if target.After(b.activity.Now()) {
			b.activity.AdvanceTo(target)
		}
	}
}

// armIdleTickerAligned arms the idle scheduler so ticks stay on the
// 5-second grid anchored at the session's launch instant (idleStart). A
// plain Tick after a mid-campaign relaunch would first fire a full period
// after the relaunch instant, shifting every later tick off the grid and
// silently changing the idle phone-home curve.
func (b *Browser) armIdleTickerAligned() {
	const period = 5 * time.Second
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.running {
		return
	}
	elapsed := b.activity.Now().Sub(b.idleStart)
	delay := period - (elapsed % period)
	b.idleAlign = b.activity.AfterFunc(delay, func() {
		b.idleTick()
		tk := b.activity.Tick(period, b.idleTick)
		b.mu.Lock()
		if b.running && b.idleTicker == nil {
			b.idleTicker = tk
			b.mu.Unlock()
			return
		}
		b.mu.Unlock()
		tk.Stop()
	})
}
