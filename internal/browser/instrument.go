package browser

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"panoptes/internal/cdp"
	"panoptes/internal/frida"
	"panoptes/internal/hostlist"
)

// stallWedgeBound caps how long an injected cdp_stall wedges the
// Page.navigate handler when the client's own call timeout is longer
// (wall-clock; the DevTools protocol runs in real time).
const stallWedgeBound = 5 * time.Second

// engineBlocklist is the easylist stand-in CocCoc's engine enforces.
var engineBlocklist = hostlist.Bundled()

// --- CDP server surface ---

// startCDP exposes the DevTools endpoint on the control network (the
// adb-forwarded channel — deliberately outside the diverted data path).
func (b *Browser) startCDP() error {
	srv := cdp.NewServer()
	srv.Register(cdp.MethodBrowserVersion, func(json.RawMessage) (any, error) {
		return cdp.VersionResult{
			Product:  fmt.Sprintf("%s/%s", b.Profile.Name, b.Profile.Version),
			Revision: "panoptes-sim",
		}, nil
	})
	srv.Register(cdp.MethodPageEnable, func(json.RawMessage) (any, error) { return nil, nil })
	srv.Register(cdp.MethodNetworkEnable, func(json.RawMessage) (any, error) {
		b.mu.Lock()
		b.netEnabled = true
		b.mu.Unlock()
		return nil, nil
	})
	srv.Register(cdp.MethodFetchEnable, func(json.RawMessage) (any, error) {
		b.mu.Lock()
		b.fetchEnabled = true
		b.mu.Unlock()
		return nil, nil
	})
	srv.Register(cdp.MethodFetchDisable, func(json.RawMessage) (any, error) {
		b.mu.Lock()
		b.fetchEnabled = false
		b.mu.Unlock()
		return nil, nil
	})
	srv.Register(cdp.MethodFetchContinue, func(raw json.RawMessage) (any, error) {
		var p cdp.ContinueParams
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, err
		}
		b.pausedMu.Lock()
		ch, ok := b.paused[p.RequestID]
		b.pausedMu.Unlock()
		if !ok {
			return nil, fmt.Errorf("Invalid InterceptionId: %s", p.RequestID)
		}
		ch <- p.Headers
		return nil, nil
	})
	srv.Register(cdp.MethodPageNavigate, func(raw json.RawMessage) (any, error) {
		var p cdp.NavigateParams
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, err
		}
		// Armed CDP-stall fault: the DevTools handler wedges until the
		// client's CallTimeout fires (release closes at EndAttempt), or
		// until the wedge bound — whichever comes first — so long
		// navigate timeouts don't turn each stall into a minute of wall
		// time. Either way the attempt fails with a cdp-classified error.
		if release, ok := b.faultsInj().StallFault(b.Pkg.UID); ok {
			select {
			case <-release:
			case <-time.After(stallWedgeBound):
			}
			return nil, fmt.Errorf("cdp: Page.navigate handler stalled (injected cdp_stall)")
		}
		res, err := b.Navigate(p.URL)
		out := cdp.NavigateResult{FrameID: fmt.Sprintf("frame-%d", b.Pkg.UID)}
		if res != nil {
			out.LoadTimeMs = res.LoadTimeMs
		}
		if err != nil {
			out.ErrorText = err.Error()
		}
		return out, nil
	})

	port := b.opts.ControlPort
	if port == 0 {
		port = 9222
	}
	l, err := b.dev.Net.ListenIP(b.opts.ControlIP, port)
	if err != nil {
		return fmt.Errorf("browser: devtools listener: %w", err)
	}
	httpSrv := &http.Server{Handler: srv.HTTPHandler()}
	go httpSrv.Serve(l)

	b.mu.Lock()
	b.cdpServer = srv
	b.cdpListener = l
	b.cdpHTTP = httpSrv
	b.cdpURL = fmt.Sprintf("ws://%s:%d/devtools/browser", b.opts.ControlIP, port)
	b.mu.Unlock()
	return nil
}

func (b *Browser) stopCDP() {
	b.mu.Lock()
	httpSrv := b.cdpHTTP
	l := b.cdpListener
	b.cdpServer = nil
	b.cdpHTTP = nil
	b.cdpListener = nil
	b.cdpURL = ""
	b.fetchEnabled = false
	b.netEnabled = false
	b.mu.Unlock()
	if httpSrv != nil {
		httpSrv.Close()
	}
	if l != nil {
		l.Close()
	}
}

// --- Frida surface ---

// fridaExports exposes the app's hookable symbols: the WebView load
// entry point and the request-dispatch hook installer.
func (b *Browser) fridaExports() frida.Exports {
	return frida.Exports{
		LoadURL: func(url string) (int64, error) {
			res, err := b.Navigate(url)
			if res != nil {
				return res.LoadTimeMs, err
			}
			return 0, err
		},
		SetRequestHook: func(h frida.RequestHook) {
			b.mu.Lock()
			if h == nil {
				b.fridaHook = nil
			} else {
				b.fridaHook = func(req *http.Request) error { return h(req) }
			}
			b.mu.Unlock()
		},
		Version: func() string { return b.Profile.Version },
	}
}
