package browser

import "fmt"

// The first-run setup wizard. The paper's methodology resets each app to
// factory settings and then clicks through its setup wizard before
// crawling (§2.1); Appium drives these elements.

// UIElement is one on-screen element Appium can find and tap.
type UIElement struct {
	ID      string
	Text    string
	Class   string
	Enabled bool
}

// wizardSteps are the generic first-run pages: terms, default-browser
// nag, telemetry consent.
var wizardSteps = []UIElement{
	{ID: "terms_accept", Text: "Accept & continue", Class: "android.widget.Button"},
	{ID: "default_browser_skip", Text: "No thanks", Class: "android.widget.Button"},
	{ID: "usage_stats_continue", Text: "Continue", Class: "android.widget.Button"},
}

// WizardDone reports whether the first-run experience is finished.
func (b *Browser) WizardDone() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.wizardStep >= len(wizardSteps)
}

// UIElements returns the currently visible elements: the active wizard
// page's button, or the browser chrome once setup is complete.
func (b *Browser) UIElements() []UIElement {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.running {
		return nil
	}
	if b.wizardStep < len(wizardSteps) {
		e := wizardSteps[b.wizardStep]
		e.Enabled = true
		return []UIElement{e}
	}
	return []UIElement{
		{ID: "url_bar", Text: "", Class: "android.widget.EditText", Enabled: true},
		{ID: "menu_button", Text: "", Class: "android.widget.ImageButton", Enabled: true},
	}
}

// UITap taps an element by ID, advancing the wizard when its button is
// tapped.
func (b *Browser) UITap(id string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.running {
		return fmt.Errorf("browser: %s not running", b.Profile.Name)
	}
	if b.wizardStep < len(wizardSteps) {
		want := wizardSteps[b.wizardStep].ID
		if id != want {
			return fmt.Errorf("browser: no element %q on screen (showing %q)", id, want)
		}
		b.wizardStep++
		return nil
	}
	switch id {
	case "url_bar", "menu_button":
		return nil
	}
	return fmt.Errorf("browser: no element %q on screen", id)
}

// CompleteWizard fast-forwards the first-run flow, for tests that do not
// exercise the Appium path.
func (b *Browser) CompleteWizard() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.wizardStep = len(wizardSteps)
}
