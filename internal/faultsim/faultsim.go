// Package faultsim is the seeded, deterministic fault-injection layer for
// the Panoptes testbed. The real campaign (paper §2.4) ran 15 flaky Android
// browsers against the live web for days; pages hung, apps crashed and
// cert-pinned browsers rejected the MITM leaf. faultsim reproduces that
// hostility inside the simulation — DNS NXDOMAIN/SERVFAIL, connect refusal,
// connect/read timeouts, TLS handshake failures, mid-stream resets, slow or
// 5xx origins, browser crashes and unresponsive CDP sockets — while keeping
// runs reproducible: every fault decision is a pure function of
// (seed, kind, browser, page host, attempt number).
//
// Two injection modes coexist:
//
//   - Armed (deterministic): core.RunCampaign calls BeginAttempt before each
//     navigation attempt; the plan's Rates/Scripted entries arm a set of
//     fault kinds for that (browser, url, attempt) triple, and the
//     substrate's operation sites (device dial, MITM handshake, MITM
//     exchange, browser navigate, CDP handler) consume them. Arming is
//     hash-based, so the same plan yields the same faults at parallelism 1
//     and 8, straight through or checkpoint+resumed. Attempts beyond
//     Plan.MaxFaultAttempts are always clean, so bounded retries converge.
//
//   - Chaos (occurrence-based): ChaosRates drive a global occurrence counter
//     consulted by the netsim hook and the DoH SERVFAIL hook. Chaos faults
//     interleave nondeterministically under concurrency; they exist for the
//     CI chaos smoke, not for determinism proofs.
package faultsim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"strings"
	"sync"

	"panoptes/internal/netsim"
	"panoptes/internal/obs"
)

// Kind names one injectable fault.
type Kind string

// The fault kinds from ISSUE 3's tentpole list.
const (
	DNSNXDomain  Kind = "dns_nxdomain"  // lookup answers NXDOMAIN
	DNSServFail  Kind = "dns_servfail"  // DoH resolver answers SERVFAIL (chaos-only)
	ConnRefused  Kind = "conn_refused"  // connect refused
	ConnTimeout  Kind = "conn_timeout"  // connect times out
	ReadTimeout  Kind = "read_timeout"  // origin never answers; conn dies mid-read
	TLSHandshake Kind = "tls_handshake" // MITM leaf minting fails -> handshake alert
	PinReject    Kind = "pin_reject"    // pinned client rejects the MITM leaf
	StreamReset  Kind = "stream_reset"  // origin resets mid-body (short read)
	SlowResponse Kind = "slow_response" // origin answers, slowly (benign)
	HTTP5xx      Kind = "http_5xx"      // origin answers 500
	BrowserCrash Kind = "browser_crash" // app process dies on navigate
	CDPStall     Kind = "cdp_stall"     // DevTools socket stops answering
	SinkPublish  Kind = "sink_publish"  // export batch publish fails (chaos-only)
	PoolPoison   Kind = "pool_poison"   // upstream idle conns silently die (chaos-only)

	// Fabric kinds (ISSUE 8): faults against whole campaign workers and
	// their worker→coordinator transport rather than a single exchange.
	// WorkerCrash/WorkerStall run scripted/rate mode keyed by
	// (workerID, lease browser, lease sequence) plus chaos occurrence
	// mode; TransportDrop is chaos-only, keyed by endpoint name.
	WorkerCrash   Kind = "worker_crash"   // worker dies mid-lease; its lease is reclaimed
	WorkerStall   Kind = "worker_stall"   // worker freezes past its lease deadline
	TransportDrop Kind = "transport_drop" // a worker→coordinator send is dropped

	// Population kind (ISSUE 10): a simulated user abandons the
	// population for good at a session boundary. Consulted by the
	// popsim engine at session admission via UserChurnFault.
	UserChurn Kind = "user_churn"
)

// ArmedKinds participate in the deterministic per-attempt arming model, in
// canonical consumption order. DNSServFail is excluded: the DoH handler has
// no client identity to key an attempt on, so SERVFAIL is chaos-only.
var ArmedKinds = []Kind{
	DNSNXDomain, ConnRefused, ConnTimeout,
	TLSHandshake, PinReject,
	ReadTimeout, StreamReset, HTTP5xx, SlowResponse,
	BrowserCrash, CDPStall,
}

// ScriptedFault forces a kind onto a specific (browser, host, attempt)
// regardless of rates. Host "" matches any page host; Attempt 0 means the
// first attempt.
type ScriptedFault struct {
	Kind    Kind   `json:"kind"`
	Browser string `json:"browser"`
	Host    string `json:"host,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
}

// Plan configures an Injector. The zero plan injects nothing.
type Plan struct {
	// Seed keys every hash decision; two runs with equal plans fault
	// identically.
	Seed int64 `json:"seed"`
	// Rates arms each kind per (browser, page host, attempt) with the given
	// probability (0..1), deterministically.
	Rates map[Kind]float64 `json:"rates,omitempty"`
	// MaxFaultAttempts bounds how deep into the retry ladder armed faults
	// reach: attempts numbered above it are always clean. 0 means the
	// default of 2 (so MaxAttempts=3 campaigns always converge); negative
	// means unbounded.
	MaxFaultAttempts int `json:"max_fault_attempts,omitempty"`
	// Scripted forces specific faults independent of Rates.
	Scripted []ScriptedFault `json:"scripted,omitempty"`
	// ChaosRates drive the nondeterministic occurrence-counter mode used by
	// the netsim hook (DNSNXDomain, ConnRefused, ConnTimeout on named
	// dials/lookups) and the DoH hook (DNSServFail).
	ChaosRates map[Kind]float64 `json:"chaos_rates,omitempty"`
}

// UniformRates is a convenience for chaos smokes: every armed visit-level
// kind at the same rate.
func UniformRates(rate float64) map[Kind]float64 {
	m := make(map[Kind]float64, len(ArmedKinds))
	for _, k := range ArmedKinds {
		m[k] = rate
	}
	return m
}

func (p *Plan) maxFaultAttempts() int {
	switch {
	case p.MaxFaultAttempts == 0:
		return 2
	case p.MaxFaultAttempts < 0:
		return 1 << 30
	default:
		return p.MaxFaultAttempts
	}
}

// decide is the deterministic arming function.
func (p *Plan) decide(kind Kind, browser, host string, attempt int) bool {
	if attempt > p.maxFaultAttempts() {
		return false
	}
	for _, s := range p.Scripted {
		if s.Kind != kind || s.Browser != browser {
			continue
		}
		if s.Host != "" && s.Host != host {
			continue
		}
		want := s.Attempt
		if want == 0 {
			want = 1
		}
		if want == attempt {
			return true
		}
	}
	rate := p.Rates[kind]
	if rate <= 0 {
		return false
	}
	return hashFrac(p.Seed, "armed", string(kind), browser, host, fmt.Sprint(attempt)) < rate
}

// hashFrac maps (seed, parts...) to [0,1) via FNV-1a.
func hashFrac(seed int64, parts ...string) float64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	for _, s := range parts {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	const mod = 1 << 30
	return float64(h.Sum64()%mod) / mod
}

// attemptState is one armed navigation attempt, keyed by browser UID.
type attemptState struct {
	browser  string
	host     string
	attempt  int
	armed    map[Kind]bool
	consumed int
	release  chan struct{} // closed at EndAttempt; unblocks a CDP stall
}

// Injector holds a Plan and the live armed-attempt table. All methods are
// safe for concurrent use; nil *Injector receivers are no-ops so the
// substrate can call through unconditionally.
type Injector struct {
	plan Plan

	mu       sync.Mutex
	attempts map[int]*attemptState
	injected map[Kind]int
	chaosN   uint64
}

// New builds an Injector for plan.
func New(plan Plan) *Injector {
	obs.Default.Help("fault_injected_total", "Faults injected by faultsim, by kind.")
	return &Injector{
		plan:     plan,
		attempts: make(map[int]*attemptState),
		injected: make(map[Kind]int),
	}
}

// Plan returns the injector's plan.
func (inj *Injector) Plan() Plan { return inj.plan }

// BeginAttempt arms the plan's fault kinds for one navigation attempt
// (1-based) of browser (by UID and profile name) against pageURL.
func (inj *Injector) BeginAttempt(uid int, browser, pageURL string, attempt int) {
	if inj == nil {
		return
	}
	host := HostOf(pageURL)
	st := &attemptState{browser: browser, host: host, attempt: attempt, armed: make(map[Kind]bool)}
	for _, k := range ArmedKinds {
		if inj.plan.decide(k, browser, host, attempt) {
			st.armed[k] = true
		}
	}
	if st.armed[CDPStall] {
		st.release = make(chan struct{})
	}
	inj.mu.Lock()
	inj.attempts[uid] = st
	inj.mu.Unlock()
}

// EndAttempt disarms the attempt and returns how many faults it consumed.
// Unconsumed armed kinds are discarded. A pending CDP stall is released so
// the blocked handler goroutine can exit.
func (inj *Injector) EndAttempt(uid int) int {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	st := inj.attempts[uid]
	delete(inj.attempts, uid)
	inj.mu.Unlock()
	if st == nil {
		return 0
	}
	if st.release != nil {
		close(st.release)
	}
	return st.consumed
}

// consume pops kind from uid's armed set if the exchange host matches the
// attempt's page host (visit-level kinds pass host == the attempt host).
func (inj *Injector) consume(uid int, host string, kinds ...Kind) (Kind, bool) {
	if inj == nil {
		return "", false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	st := inj.attempts[uid]
	if st == nil || (host != "" && host != st.host) {
		return "", false
	}
	for _, k := range kinds {
		if st.armed[k] {
			delete(st.armed, k)
			st.consumed++
			inj.injected[k]++
			obs.Default.Counter("fault_injected_total", "kind", string(k)).Inc()
			return k, true
		}
	}
	return "", false
}

// DialFault is consulted by device.DialContext before every app-layer dial.
// It returns a non-nil classified error when a DNS or connect fault is armed
// for uid's current attempt and host is the attempt's page host.
func (inj *Injector) DialFault(uid int, host, addr string) error {
	k, ok := inj.consume(uid, host, DNSNXDomain, ConnRefused, ConnTimeout)
	if !ok {
		return nil
	}
	switch k {
	case DNSNXDomain:
		return markInjected(k, &netsim.ErrNoSuchHost{Host: host})
	case ConnRefused:
		return markInjected(k, &netsim.ErrConnRefused{Addr: addr})
	default:
		return markInjected(k, &netsim.ErrTimeout{Op: "connect", Addr: addr})
	}
}

// TLSFault is consulted by the MITM proxy before serving a TLS handshake for
// host on a connection owned by uid. When it fires the proxy fails leaf
// minting, so the client sees a fatal handshake alert.
func (inj *Injector) TLSFault(uid int, host string) (Kind, bool) {
	return inj.consume(uid, host, TLSHandshake, PinReject)
}

// FlowFault is consulted by the MITM proxy per proxied exchange, after
// capture but before forwarding, so injected exchanges still yield flows.
func (inj *Injector) FlowFault(uid int, host string) (Kind, bool) {
	return inj.consume(uid, host, ReadTimeout, StreamReset, HTTP5xx, SlowResponse)
}

// CrashFault is consulted at Browser.Navigate entry; true means the app
// process dies now.
func (inj *Injector) CrashFault(uid int) bool {
	if inj == nil {
		return false
	}
	inj.mu.Lock()
	host := ""
	if st := inj.attempts[uid]; st != nil {
		host = st.host
	}
	inj.mu.Unlock()
	if host == "" {
		return false
	}
	_, ok := inj.consume(uid, host, BrowserCrash)
	return ok
}

// StallFault is consulted by the CDP Page.navigate handler; when armed it
// returns a channel that stays blocked until EndAttempt, simulating an
// unresponsive DevTools socket (the client's wall timeout fires first).
func (inj *Injector) StallFault(uid int) (<-chan struct{}, bool) {
	if inj == nil {
		return nil, false
	}
	inj.mu.Lock()
	st := inj.attempts[uid]
	var release chan struct{}
	armed := false
	if st != nil && st.armed[CDPStall] {
		delete(st.armed, CDPStall)
		st.consumed++
		inj.injected[CDPStall]++
		armed = true
		release = st.release
	}
	inj.mu.Unlock()
	if !armed {
		return nil, false
	}
	obs.Default.Counter("fault_injected_total", "kind", string(CDPStall)).Inc()
	return release, true
}

// chaosHit implements the occurrence-counter mode: the Nth consulted
// operation faults iff hash(seed, kind, host, N) < rate. Deterministic for a
// serial caller, interleaving-dependent under concurrency.
func (inj *Injector) chaosHit(kind Kind, host string) bool {
	rate := inj.plan.ChaosRates[kind]
	if rate <= 0 {
		return false
	}
	inj.mu.Lock()
	inj.chaosN++
	n := inj.chaosN
	inj.mu.Unlock()
	if hashFrac(inj.plan.Seed, "chaos", string(kind), host, fmt.Sprint(n)) >= rate {
		return false
	}
	inj.mu.Lock()
	inj.injected[kind]++
	inj.mu.Unlock()
	obs.Default.Counter("fault_injected_total", "kind", string(kind)).Inc()
	return true
}

// NetHook adapts the chaos mode to netsim.Internet.SetFaultHook. Literal-IP
// hosts are never faulted: the control plane (Appium, CDP, the proxy
// listener) dials by IP, while web and vendor traffic dials by name.
func (inj *Injector) NetHook() func(op, host string) error {
	if inj == nil {
		return nil
	}
	return func(op, host string) error {
		if net.ParseIP(host) != nil {
			return nil
		}
		switch op {
		case "lookup":
			if inj.chaosHit(DNSNXDomain, host) {
				return markInjected(DNSNXDomain, &netsim.ErrNoSuchHost{Host: host})
			}
		case "dial":
			if inj.chaosHit(ConnRefused, host) {
				return markInjected(ConnRefused, &netsim.ErrConnRefused{Addr: host})
			}
			if inj.chaosHit(ConnTimeout, host) {
				return markInjected(ConnTimeout, &netsim.ErrTimeout{Op: "connect", Addr: host})
			}
		}
		return nil
	}
}

// DNSServFail adapts the chaos mode to dnssim.Handler.SetServFailFunc.
func (inj *Injector) DNSServFail(name string) bool {
	if inj == nil {
		return false
	}
	return inj.chaosHit(DNSServFail, name)
}

// SinkFault is the export plane's injectable publish failure
// (sink.Exporter.SetFaultHook). It runs in chaos occurrence mode keyed
// by sink name — sink publishes happen on dispatcher goroutines after
// a visit commits, outside the per-attempt arming window, so the armed
// deterministic mode does not apply.
func (inj *Injector) SinkFault(sinkName string) error {
	if inj == nil {
		return nil
	}
	if !inj.chaosHit(SinkPublish, sinkName) {
		return nil
	}
	return markInjected(SinkPublish, fmt.Errorf("faultsim: injected publish failure for sink %s", sinkName))
}

// PoolFault is the upstream idle-pool poison (connpool.Pool.SetFaultHook):
// a hit drops every idle connection for the key, forcing a redial. It runs
// in chaos occurrence mode — a redial produces the same exchange bytes, so
// analyses are unaffected and per-attempt arming does not apply.
func (inj *Injector) PoolFault(key string) error {
	if inj == nil {
		return nil
	}
	if !inj.chaosHit(PoolPoison, key) {
		return nil
	}
	return markInjected(PoolPoison, fmt.Errorf("faultsim: injected pool poison for %s", key))
}

// WorkerFault is consulted by a fabric worker as it takes up a lease.
// It reports whether this (worker, lease) should misbehave and how:
// WorkerCrash means die mid-lease without completing, WorkerStall means
// finish but freeze past the lease deadline before reporting. Scripted
// and Rates entries run the deterministic decide function with
// browser=workerID, host=the lease's browser, attempt=the worker's
// lease sequence number, so chaos plans can kill a named worker on a
// named lease reproducibly; ChaosRates run occurrence mode keyed by
// workerID.
func (inj *Injector) WorkerFault(workerID, leaseBrowser string, leaseSeq int) (Kind, bool) {
	if inj == nil {
		return "", false
	}
	for _, k := range []Kind{WorkerCrash, WorkerStall} {
		if inj.plan.decide(k, workerID, leaseBrowser, leaseSeq) {
			inj.mu.Lock()
			inj.injected[k]++
			inj.mu.Unlock()
			obs.Default.Counter("fault_injected_total", "kind", string(k)).Inc()
			return k, true
		}
		if inj.chaosHit(k, workerID) {
			return k, true
		}
	}
	return "", false
}

// UserChurnFault decides whether a simulated population user leaves
// for good at the given session boundary. Pure rate mode: the decision
// is a hash of (seed, browser, user, session) — independent of event
// interleaving, parallelism and resume, so churn never perturbs the
// population determinism keystones. The per-attempt arming ladder (and
// its MaxFaultAttempts bound) does not apply: sessions are not retried
// navigations.
func (inj *Injector) UserChurnFault(browser string, user, sess int) bool {
	if inj == nil {
		return false
	}
	rate := inj.plan.Rates[UserChurn]
	if rate <= 0 {
		return false
	}
	if hashFrac(inj.plan.Seed, "armed", string(UserChurn), browser,
		fmt.Sprint(user), fmt.Sprint(sess)) >= rate {
		return false
	}
	inj.mu.Lock()
	inj.injected[UserChurn]++
	inj.mu.Unlock()
	obs.Default.Counter("fault_injected_total", "kind", string(UserChurn)).Inc()
	return true
}

// TransportFault is the fabric transport's injectable send failure: a
// hit drops one worker→coordinator message on the named endpoint (the
// client then fails over to a standby endpoint and the batch is re-sent,
// so a drop never loses flows). Chaos occurrence mode only — transport
// sends happen outside the per-attempt arming window.
func (inj *Injector) TransportFault(endpoint string) error {
	if inj == nil {
		return nil
	}
	if !inj.chaosHit(TransportDrop, endpoint) {
		return nil
	}
	return markInjected(TransportDrop, fmt.Errorf("faultsim: injected transport drop on endpoint %s", endpoint))
}

// Counts returns a copy of the injected-fault tally by kind.
func (inj *Injector) Counts() map[Kind]int {
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make(map[Kind]int, len(inj.injected))
	for k, v := range inj.injected {
		out[k] = v
	}
	return out
}

// Total returns the total number of injected faults.
func (inj *Injector) Total() int {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	n := 0
	for _, v := range inj.injected {
		n += v
	}
	return n
}

// CountsString renders Counts as "kind=n kind=n" in kind order, for exit
// reports.
func (inj *Injector) CountsString() string {
	counts := inj.Counts()
	if len(counts) == 0 {
		return "none"
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%d", k, counts[Kind(k)]))
	}
	return strings.Join(parts, " ")
}

// injectedError marks an injected fault while preserving the wrapped typed
// error (errors.As and substring classification both keep working).
type injectedError struct {
	kind Kind
	err  error
}

func (e *injectedError) Error() string {
	return fmt.Sprintf("faultsim: injected %s: %v", e.kind, e.err)
}
func (e *injectedError) Unwrap() error { return e.err }

func markInjected(kind Kind, err error) error { return &injectedError{kind: kind, err: err} }

// InjectedKind reports whether err carries a faultsim marker and which kind.
func InjectedKind(err error) (Kind, bool) {
	for err != nil {
		if ie, ok := err.(*injectedError); ok {
			return ie.kind, true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return "", false
		}
		err = u.Unwrap()
	}
	return "", false
}

// HostOf extracts the bare host from a URL or host:port string.
func HostOf(rawURL string) string {
	s := rawURL
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexAny(s, "/?#"); i >= 0 {
		s = s[:i]
	}
	if h, _, err := net.SplitHostPort(s); err == nil {
		return h
	}
	return s
}

// Classify maps an error to a stable visit error class for VisitRecord
// .ErrClass and degradation accounting. Returns "" for nil.
func Classify(err error) string {
	if err == nil {
		return ""
	}
	return ClassifyText(err.Error())
}

// ClassifyText is Classify over an already-stringified error (CDP transports
// flatten error types to text, so classification is substring-based).
func ClassifyText(s string) string {
	if s == "" {
		return ""
	}
	ls := strings.ToLower(s)
	has := func(subs ...string) bool {
		for _, sub := range subs {
			if strings.Contains(ls, sub) {
				return true
			}
		}
		return false
	}
	switch {
	case has("crashed", "not running", "ws: connection closed", "process not found"):
		return "crash"
	case strings.Contains(ls, "cdp:") && has("timed out", "stalled"):
		return "cdp"
	case has("breaker open", "circuit breaker"):
		return "breaker_open"
	case has("no such host", "nxdomain", "servfail", "rcode", "doh status"):
		return "dns"
	case has("connection refused"):
		return "connect_refused"
	case has("tls", "handshake", "certificate", "x509", "remote error"):
		return "tls"
	case has("dropped by firewall"):
		return "firewall"
	case has("timed out", "timeout", "deadline exceeded"):
		return "timeout"
	case has("returned status", "bad gateway", "status 5"):
		return "http_error"
	case has("reset", "unexpected eof", "eof", "broken pipe", "closed"):
		return "reset"
	default:
		return "unknown"
	}
}
