package faultsim

import (
	"errors"
	"testing"

	"panoptes/internal/netsim"
)

func TestArmingIsDeterministic(t *testing.T) {
	plan := Plan{Seed: 7, Rates: UniformRates(0.5)}
	a := New(plan)
	b := New(plan)
	for attempt := 1; attempt <= 3; attempt++ {
		a.BeginAttempt(1, "Chrome", "https://site0.example/", attempt)
		b.BeginAttempt(9, "Chrome", "https://site0.example/", attempt)
		ea := a.DialFault(1, "site0.example", "site0.example:443")
		eb := b.DialFault(9, "site0.example", "site0.example:443")
		if (ea == nil) != (eb == nil) {
			t.Fatalf("attempt %d: dial fault diverged: %v vs %v", attempt, ea, eb)
		}
		if ka, oka := a.TLSFault(1, "site0.example"); true {
			kb, okb := b.TLSFault(9, "site0.example")
			if oka != okb || ka != kb {
				t.Fatalf("attempt %d: tls fault diverged: %v/%v vs %v/%v", attempt, ka, oka, kb, okb)
			}
		}
		a.EndAttempt(1)
		b.EndAttempt(9)
	}
}

func TestMaxFaultAttemptsBoundsInjection(t *testing.T) {
	// Rate 1.0 arms everything, but attempts beyond the default
	// MaxFaultAttempts (2) must always be clean so retries converge.
	inj := New(Plan{Seed: 1, Rates: map[Kind]float64{DNSNXDomain: 1}})
	inj.BeginAttempt(1, "Chrome", "https://a.example/", 3)
	if err := inj.DialFault(1, "a.example", "a.example:443"); err != nil {
		t.Fatalf("attempt 3 should be clean, got %v", err)
	}
	inj.EndAttempt(1)

	inj.BeginAttempt(1, "Chrome", "https://a.example/", 2)
	if err := inj.DialFault(1, "a.example", "a.example:443"); err == nil {
		t.Fatal("attempt 2 at rate 1.0 should fault")
	}
	inj.EndAttempt(1)
}

func TestFaultsKeyedToPageHost(t *testing.T) {
	inj := New(Plan{Seed: 1, Rates: map[Kind]float64{ConnRefused: 1}})
	inj.BeginAttempt(1, "Chrome", "https://page.example/x", 1)
	if err := inj.DialFault(1, "cdn.example", "cdn.example:443"); err != nil {
		t.Fatalf("non-page host must not fault, got %v", err)
	}
	err := inj.DialFault(1, "page.example", "page.example:443")
	if err == nil {
		t.Fatal("page host dial should fault")
	}
	var refused *netsim.ErrConnRefused
	if !errors.As(err, &refused) {
		t.Fatalf("want wrapped ErrConnRefused, got %T: %v", err, err)
	}
	if k, ok := InjectedKind(err); !ok || k != ConnRefused {
		t.Fatalf("InjectedKind = %v, %v", k, ok)
	}
	// The armed fault was consumed: a second dial is clean.
	if err := inj.DialFault(1, "page.example", "page.example:443"); err != nil {
		t.Fatalf("fault should be single-shot, got %v", err)
	}
	if n := inj.EndAttempt(1); n != 1 {
		t.Fatalf("consumed = %d, want 1", n)
	}
	if inj.Counts()[ConnRefused] != 1 {
		t.Fatalf("counts = %v", inj.Counts())
	}
}

func TestScriptedFault(t *testing.T) {
	inj := New(Plan{Seed: 1, Scripted: []ScriptedFault{
		{Kind: BrowserCrash, Browser: "Firefox", Host: "b.example", Attempt: 2},
	}})
	inj.BeginAttempt(4, "Firefox", "https://b.example/", 1)
	if inj.CrashFault(4) {
		t.Fatal("scripted for attempt 2, fired on attempt 1")
	}
	inj.EndAttempt(4)
	inj.BeginAttempt(4, "Firefox", "https://b.example/", 2)
	if !inj.CrashFault(4) {
		t.Fatal("scripted crash did not fire on attempt 2")
	}
	inj.EndAttempt(4)
	inj.BeginAttempt(5, "Chrome", "https://b.example/", 2)
	if inj.CrashFault(5) {
		t.Fatal("scripted fault leaked to another browser")
	}
	inj.EndAttempt(5)
}

func TestStallReleaseOnEndAttempt(t *testing.T) {
	inj := New(Plan{Seed: 1, Scripted: []ScriptedFault{{Kind: CDPStall, Browser: "Chrome"}}})
	inj.BeginAttempt(2, "Chrome", "https://c.example/", 1)
	release, ok := inj.StallFault(2)
	if !ok {
		t.Fatal("stall should be armed")
	}
	select {
	case <-release:
		t.Fatal("release closed before EndAttempt")
	default:
	}
	inj.EndAttempt(2)
	select {
	case <-release:
	default:
		t.Fatal("EndAttempt must close the stall release channel")
	}
}

func TestChaosHookSkipsLiteralIPs(t *testing.T) {
	inj := New(Plan{Seed: 3, ChaosRates: map[Kind]float64{DNSNXDomain: 1, ConnRefused: 1}})
	hook := inj.NetHook()
	if err := hook("lookup", "10.222.0.1"); err != nil {
		t.Fatalf("literal IP must never chaos-fault, got %v", err)
	}
	if err := hook("lookup", "site.example"); err == nil {
		t.Fatal("named lookup at rate 1.0 should fault")
	}
	if err := hook("dial", "site.example"); err == nil {
		t.Fatal("named dial at rate 1.0 should fault")
	}
}

func TestNilInjectorIsNoop(t *testing.T) {
	var inj *Injector
	inj.BeginAttempt(1, "Chrome", "https://x.example/", 1)
	if err := inj.DialFault(1, "x.example", "x.example:443"); err != nil {
		t.Fatal("nil injector must not fault")
	}
	if _, ok := inj.TLSFault(1, "x.example"); ok {
		t.Fatal("nil injector must not fault")
	}
	if _, ok := inj.FlowFault(1, "x.example"); ok {
		t.Fatal("nil injector must not fault")
	}
	if inj.CrashFault(1) {
		t.Fatal("nil injector must not crash")
	}
	if _, ok := inj.StallFault(1); ok {
		t.Fatal("nil injector must not stall")
	}
	if inj.EndAttempt(1) != 0 || inj.Total() != 0 {
		t.Fatal("nil injector bookkeeping should be zero")
	}
	if inj.NetHook() != nil {
		t.Fatal("nil injector NetHook should be nil")
	}
}

func TestHostOf(t *testing.T) {
	cases := map[string]string{
		"https://a.example/path?q=1": "a.example",
		"http://b.example:8080/":     "b.example",
		"c.example":                  "c.example",
		"d.example:443":              "d.example",
	}
	for in, want := range cases {
		if got := HostOf(in); got != want {
			t.Errorf("HostOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := map[string]string{
		"browser: Chrome crashed (injected browser_crash)":                    "crash",
		"ws: connection closed":                                               "crash",
		"cdp: Page.navigate timed out after 1s":                               "cdp",
		"faultsim: injected dns_nxdomain: netsim: no such host: x.example":    "dns",
		"dnssim: rcode 2 for x.example":                                       "dns",
		"faultsim: injected conn_refused: netsim: connection refused: x":      "connect_refused",
		"webengine: document https://x: remote error: tls: internal error":    "tls",
		"device: connection to 1.2.3.4:443 dropped by firewall (rule)":        "firewall",
		"faultsim: injected conn_timeout: netsim: connect to x:443 timed out": "timeout",
		"browser: document https://x.example/ returned status 500":            "http_error",
		"webengine: document https://x: read: unexpected EOF":                 "reset",
		"navigation: campaign circuit breaker open for host x.example":        "breaker_open",
		"something inscrutable":                                               "unknown",
	}
	for in, want := range cases {
		if got := ClassifyText(in); got != want {
			t.Errorf("ClassifyText(%q) = %q, want %q", in, got, want)
		}
	}
	if Classify(nil) != "" {
		t.Error("Classify(nil) should be empty")
	}
}

func TestWorkerFaultScripted(t *testing.T) {
	inj := New(Plan{Seed: 3, Scripted: []ScriptedFault{
		{Kind: WorkerCrash, Browser: "w1", Attempt: 2},
		{Kind: WorkerStall, Browser: "w2", Host: "Brave", Attempt: 1},
	}})
	if k, ok := inj.WorkerFault("w1", "Chrome", 1); ok {
		t.Fatalf("w1 lease 1 should be clean, got %v", k)
	}
	k, ok := inj.WorkerFault("w1", "Chrome", 2)
	if !ok || k != WorkerCrash {
		t.Fatalf("w1 lease 2 should crash, got %v/%v", k, ok)
	}
	// The stall is pinned to a Brave lease: other browsers stay clean.
	if k, ok := inj.WorkerFault("w2", "Chrome", 1); ok {
		t.Fatalf("w2 Chrome lease should be clean, got %v", k)
	}
	k, ok = inj.WorkerFault("w2", "Brave", 1)
	if !ok || k != WorkerStall {
		t.Fatalf("w2 Brave lease 1 should stall, got %v/%v", k, ok)
	}
	// A replacement worker has a new ID, so the script no longer matches
	// and the re-issued lease runs clean.
	if k, ok := inj.WorkerFault("w1#2", "Chrome", 2); ok {
		t.Fatalf("replacement worker should be clean, got %v", k)
	}
	counts := inj.Counts()
	if counts[WorkerCrash] != 1 || counts[WorkerStall] != 1 {
		t.Fatalf("counts = %v, want 1 crash + 1 stall", counts)
	}
}

func TestWorkerFaultRespectsMaxFaultAttempts(t *testing.T) {
	inj := New(Plan{Seed: 3, Rates: map[Kind]float64{WorkerCrash: 1}})
	if _, ok := inj.WorkerFault("w1", "Chrome", 3); ok {
		t.Fatal("lease sequence beyond MaxFaultAttempts must be clean so restarts converge")
	}
	if k, ok := inj.WorkerFault("w1", "Chrome", 1); !ok || k != WorkerCrash {
		t.Fatalf("rate-1 crash must fire inside the attempt bound, got %v/%v", k, ok)
	}
}

func TestTransportFaultChaos(t *testing.T) {
	inj := New(Plan{Seed: 11, ChaosRates: map[Kind]float64{TransportDrop: 1}})
	err := inj.TransportFault("w1/ep0")
	if err == nil {
		t.Fatal("rate-1 transport drop must fire")
	}
	if k, ok := InjectedKind(err); !ok || k != TransportDrop {
		t.Fatalf("dropped send must be marked injected, got %v/%v", k, ok)
	}
	if inj.Counts()[TransportDrop] != 1 {
		t.Fatalf("counts = %v, want 1 transport drop", inj.Counts())
	}
	var nilInj *Injector
	if err := nilInj.TransportFault("ep"); err != nil {
		t.Fatalf("nil injector must be a no-op, got %v", err)
	}
	if _, ok := nilInj.WorkerFault("w", "Chrome", 1); ok {
		t.Fatal("nil injector WorkerFault must be a no-op")
	}
}
