package websim

import (
	"context"
	"crypto/tls"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"testing/quick"

	"panoptes/internal/hostlist"
	"panoptes/internal/netsim"
	"panoptes/internal/pki"
)

func TestTrancoTopDeterministic(t *testing.T) {
	a := TrancoTop(50)
	b := TrancoTop(50)
	if len(a) != 50 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i].Domain != b[i].Domain || len(a[i].Resources) != len(b[i].Resources) {
			t.Fatalf("site %d differs between runs", i)
		}
		for j := range a[i].Resources {
			if a[i].Resources[j].URL != b[i].Resources[j].URL {
				t.Fatalf("site %d resource %d differs", i, j)
			}
		}
	}
	if a[0].Domain != "google.com" || a[0].Rank != 1 {
		t.Fatalf("head = %+v", a[0])
	}
}

func TestTrancoDomainsUnique(t *testing.T) {
	sites := TrancoTop(500)
	seen := map[string]bool{}
	for _, s := range sites {
		if seen[s.Domain] {
			t.Fatalf("duplicate domain %s", s.Domain)
		}
		seen[s.Domain] = true
	}
}

func TestRankSkew(t *testing.T) {
	sites := TrancoTop(500)
	headAvg, tailAvg := 0.0, 0.0
	for _, s := range sites[:50] {
		headAvg += float64(len(s.Resources))
	}
	for _, s := range sites[450:] {
		tailAvg += float64(len(s.Resources))
	}
	headAvg /= 50
	tailAvg /= 50
	if headAvg <= tailAvg {
		t.Fatalf("no rank skew: head %.1f tail %.1f", headAvg, tailAvg)
	}
}

func TestCurlieSensitiveCategories(t *testing.T) {
	sites := CurlieSensitive(100)
	if len(sites) != 100 {
		t.Fatalf("len = %d", len(sites))
	}
	counts := map[Category]int{}
	seen := map[string]bool{}
	for _, s := range sites {
		if !s.Category.Sensitive() {
			t.Fatalf("non-sensitive category %q", s.Category)
		}
		counts[s.Category]++
		if seen[s.Domain] {
			t.Fatalf("duplicate sensitive domain %s", s.Domain)
		}
		seen[s.Domain] = true
	}
	for _, c := range []Category{CategorySociety, CategoryReligion, CategorySexuality, CategoryHealth} {
		if counts[c] != 25 {
			t.Fatalf("category %s count = %d", c, counts[c])
		}
	}
}

func TestDatasetSplit(t *testing.T) {
	sites := Dataset(1000)
	if len(sites) != 1000 {
		t.Fatalf("len = %d", len(sites))
	}
	sensitive := 0
	for _, s := range sites {
		if s.Category.Sensitive() {
			sensitive++
		}
	}
	if sensitive != 500 {
		t.Fatalf("sensitive = %d", sensitive)
	}
}

func TestSiteHasThirdPartyAdEmbeds(t *testing.T) {
	list := hostlist.Bundled()
	sites := TrancoTop(200)
	withAds := 0
	for _, s := range sites {
		for _, r := range s.Resources {
			if r.ThirdParty && strings.HasPrefix(r.URL, "https://") {
				host := strings.SplitN(strings.TrimPrefix(r.URL, "https://"), "/", 2)[0]
				if list.AdRelated(host) {
					withAds++
					break
				}
			}
		}
	}
	if withAds < 100 {
		t.Fatalf("only %d/200 sites embed ad domains", withAds)
	}
}

func TestHTMLContainsResources(t *testing.T) {
	s := TrancoTop(1)[0]
	doc := s.HTML()
	if !strings.Contains(doc, "<!DOCTYPE html>") {
		t.Fatal("not an HTML document")
	}
	for _, r := range s.Resources {
		if !strings.Contains(doc, r.URL) {
			t.Fatalf("resource %s missing from document", r.URL)
		}
	}
	if len(doc) < s.DocSize {
		t.Fatalf("doc %d bytes, modelled %d", len(doc), s.DocSize)
	}
}

func TestSensitiveMetaTag(t *testing.T) {
	s := CurlieSensitive(4)[3] // health
	if s.Category != CategoryHealth {
		t.Fatalf("category = %s", s.Category)
	}
	if !strings.Contains(s.HTML(), `content="health"`) {
		t.Fatal("category meta tag missing")
	}
}

func TestWriteList(t *testing.T) {
	sites := TrancoTop(3)
	list := WriteList(sites)
	lines := strings.Split(strings.TrimSpace(list), "\n")
	if len(lines) != 3 || lines[0] != "google.com" {
		t.Fatalf("list = %q", list)
	}
}

func TestLoadTimeRange(t *testing.T) {
	for _, s := range Dataset(300) {
		if s.LoadTimeMs < 100 || s.LoadTimeMs > 60000 {
			t.Fatalf("%s load time %d ms out of range", s.Domain, s.LoadTimeMs)
		}
	}
}

func TestHostingServesSitesAndEmbeds(t *testing.T) {
	inet := netsim.New()
	ca, err := pki.NewCA("Public Web Root", nil)
	if err != nil {
		t.Fatal(err)
	}
	sites := TrancoTop(5)
	h, err := Host(inet, ca, sites)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	client := &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			return inet.Dial(ctx, addr)
		},
		TLSClientConfig: &tls.Config{RootCAs: ca.Pool()},
	}}

	// Landing page.
	resp, err := client.Get(sites[0].URL())
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), sites[0].Domain) {
		t.Fatalf("landing page: %d %q...", resp.StatusCode, string(body[:60]))
	}
	if h.Hits(sites[0].Domain) != 1 {
		t.Fatalf("hits = %d", h.Hits(sites[0].Domain))
	}

	// A first-party resource.
	var fp *Resource
	for i := range sites[0].Resources {
		if !sites[0].Resources[i].ThirdParty {
			fp = &sites[0].Resources[i]
			break
		}
	}
	if fp == nil {
		t.Fatal("no first-party resource")
	}
	resp, err = client.Get(fp.URL)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(data) != fp.Size {
		t.Fatalf("resource: status %d size %d want %d", resp.StatusCode, len(data), fp.Size)
	}

	// A third-party embed host.
	resp, err = client.Get("https://doubleclick.net/tag/js/gpt.js?site=x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("embed status = %d", resp.StatusCode)
	}

	// Favicon fallback and 404.
	resp, _ = client.Get(sites[0].URL() + "favicon.ico")
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("favicon status = %d", resp.StatusCode)
	}
	resp, _ = client.Get(sites[0].URL() + "no/such/path")
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("missing path status = %d", resp.StatusCode)
	}
}

func TestFiller(t *testing.T) {
	if filler(0) != nil {
		t.Fatal("filler(0) not nil")
	}
	if got := len(filler(10000)); got != 10000 {
		t.Fatalf("filler = %d bytes", got)
	}
}

func TestEmbedHostsCovered(t *testing.T) {
	hosts := EmbedHosts()
	set := map[string]bool{}
	for _, h := range hosts {
		if set[h] {
			t.Fatalf("duplicate embed host %s", h)
		}
		set[h] = true
	}
	for _, must := range []string{"doubleclick.net", "adjust.com", "appsflyersdk.com", "scorecardresearch.com", "outbrain.com", "zemanta.com"} {
		if !set[must] {
			t.Fatalf("embed host %s missing", must)
		}
	}
}

// Property: site models are pure functions of their domain — any two
// calls agree on every field the harness depends on.
func TestPropertySiteDeterminism(t *testing.T) {
	f := func(n uint16) bool {
		i := int(n) % 400
		a := TrancoTop(i + 1)[i]
		b := TrancoTop(i + 1)[i]
		if a.Domain != b.Domain || a.DocSize != b.DocSize || a.LoadTimeMs != b.LoadTimeMs {
			return false
		}
		if len(a.Resources) != len(b.Resources) {
			return false
		}
		for j := range a.Resources {
			if a.Resources[j] != b.Resources[j] {
				return false
			}
		}
		return a.HTML() == b.HTML()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: every generated resource URL is absolute HTTPS and parses.
func TestPropertyResourceURLsValid(t *testing.T) {
	f := func(n uint16) bool {
		i := int(n) % 200
		s := Dataset(200)[i]
		for _, r := range s.Resources {
			u, err := url.Parse(r.URL)
			if err != nil || u.Scheme != "https" || u.Host == "" {
				return false
			}
			if r.Size <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
