// Package websim generates and hosts the simulated Web the crawls visit:
// a Tranco-style ranked list of popular sites plus a Curlie-style
// directory of sensitive-category sites (Society, Religion, Sexuality,
// Health — the categories the paper selects in §3). Every site is a
// deterministic function of its domain: a seeded generator fixes its
// resource tree (first-party scripts/styles/images plus third-party ad,
// analytics and CDN embeds), so repeated crawls see identical pages.
//
// The paper crawled the live top-500 Tranco sites and 500 Curlie sites;
// this generator is the substitution (DESIGN.md): what the measurement
// pipeline needs from the Web is realistic per-visit request trees, which
// seeded models provide reproducibly.
package websim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
)

// Category is a site's content category.
type Category string

// Categories. General covers the Tranco list; the other four mirror the
// paper's Curlie selection.
const (
	CategoryGeneral   Category = "general"
	CategorySociety   Category = "society"
	CategoryReligion  Category = "religion"
	CategorySexuality Category = "sexuality"
	CategoryHealth    Category = "health"
)

// Sensitive reports whether the category is one the paper treats as
// sensitive.
func (c Category) Sensitive() bool { return c != CategoryGeneral && c != "" }

// ResourceKind classifies a sub-resource.
type ResourceKind string

// Resource kinds.
const (
	KindScript ResourceKind = "script"
	KindStyle  ResourceKind = "style"
	KindImage  ResourceKind = "image"
	KindFont   ResourceKind = "font"
	KindXHR    ResourceKind = "xhr"
)

// Resource is one sub-resource a page references.
type Resource struct {
	URL        string
	Kind       ResourceKind
	Size       int // response body bytes the server will produce
	ThirdParty bool
}

// Site is one crawlable website model.
type Site struct {
	Domain    string
	Rank      int // 1-based popularity rank; 0 for Curlie sites
	Category  Category
	Country   string
	Resources []Resource
	// DocSize is the byte size of the landing-page HTML body.
	DocSize int
	// LoadTimeMs is the simulated time from navigation to
	// DOMContentLoaded.
	LoadTimeMs int64
}

// URL returns the landing page URL (the paper crawls landing pages only).
func (s *Site) URL() string { return "https://" + s.Domain + "/" }

// Third-party embed pools. The ad/analytics/tracker names are the real
// domains the paper reports; hostlist.Bundled classifies them.
var (
	adPool = []string{
		"doubleclick.net", "rubiconproject.com", "adnxs.com", "openx.net",
		"pubmatic.com", "bidswitch.net", "criteo.com", "taboola.com",
		"outbrain.com", "zemanta.com", "casalemedia.com", "smartadserver.com",
	}
	analyticsPool = []string{
		"google-analytics.com", "googletagmanager.com", "demdex.net",
		"scorecardresearch.com", "hotjar.com", "quantserve.com",
		"chartbeat.com", "newrelic.com",
	}
	cdnPool = []string{
		"cdn.jsdelivr.net", "cdnjs.cloudflare.com", "fonts.gstatic.com",
		"ajax.googleapis.com", "unpkg.com", "static.cloudfront.net",
	}
	// extraAdHosts are ad/analytics hosts that only native browser
	// traffic targets but that still need web hosting.
	extraAdHosts = []string{
		"adjust.com", "appsflyer.com", "appsflyersdk.com", "mixpanel.com",
		"bluekai.com", "id5-sync.com", "mathtag.com",
	}
)

// EmbedHosts returns every third-party domain the generated web can
// reference, for hosting setup.
func EmbedHosts() []string {
	var out []string
	out = append(out, adPool...)
	out = append(out, analyticsPool...)
	out = append(out, cdnPool...)
	out = append(out, extraAdHosts...)
	return out
}

// Top-site names: the head of the list uses recognisable domains so that
// leak reports read like the paper's examples; the tail is generated.
var headDomains = []string{
	"google.com", "youtube.com", "facebook.com", "twitter.com",
	"instagram.com", "wikipedia.org", "amazon.com", "reddit.com",
	"netflix.com", "tiktok.com", "yahoo.com", "bing.com", "ebay.com",
	"linkedin.com", "pinterest.com", "wordpress.com", "github.com",
	"stackoverflow.com", "bbc.co.uk", "cnn.com", "nytimes.com",
	"espn.com", "imdb.com", "spotify.com", "twitch.tv", "paypal.com",
	"microsoft.com", "apple.com", "adobe.com", "booking.com",
}

var siteWords = []string{
	"news", "shop", "play", "media", "cloud", "daily", "tech", "travel",
	"sport", "game", "music", "video", "photo", "food", "auto", "home",
	"market", "world", "life", "city",
}

var siteTLDs = []string{".com", ".net", ".org", ".io", ".co", ".info", ".com", ".com"}

var siteCountries = []string{"US", "US", "US", "DE", "FR", "GB", "NL", "JP", "BR", "IN"}

// sensitiveNames generates per-category domain vocabularies.
var sensitiveVocab = map[Category][]string{
	CategorySociety:   {"warfare-watch", "conflict-report", "refugee-aid", "protest-news", "civilrights-forum", "antiwar-coalition"},
	CategoryReligion:  {"faith-community", "scripture-study", "interfaith-dialog", "pilgrimage-guide", "parish-news", "dharma-center"},
	CategorySexuality: {"lgbtq-support", "pride-community", "sexual-health-info", "queer-voices", "rainbow-youth", "identity-forum"},
	CategoryHealth:    {"mentalhealth-support", "depression-help", "cancer-care", "hiv-resources", "addiction-recovery", "therapy-finder"},
}

func seedFor(domain string) int64 {
	h := fnv.New64a()
	h.Write([]byte(domain))
	return int64(h.Sum64())
}

// TrancoTop returns the top n ranked general sites.
func TrancoTop(n int) []*Site {
	sites := make([]*Site, 0, n)
	for i := 0; i < n; i++ {
		var domain string
		if i < len(headDomains) {
			domain = headDomains[i]
		} else {
			rng := rand.New(rand.NewSource(int64(i) * 7919))
			domain = fmt.Sprintf("%s%s%d%s",
				siteWords[rng.Intn(len(siteWords))],
				siteWords[rng.Intn(len(siteWords))],
				i, siteTLDs[rng.Intn(len(siteTLDs))])
		}
		s := buildSite(domain, i+1, CategoryGeneral)
		sites = append(sites, s)
	}
	return sites
}

// CurlieSensitive returns n sensitive-category sites, cycling through the
// four categories.
func CurlieSensitive(n int) []*Site {
	order := []Category{CategorySociety, CategoryReligion, CategorySexuality, CategoryHealth}
	sites := make([]*Site, 0, n)
	for i := 0; i < n; i++ {
		cat := order[i%len(order)]
		vocab := sensitiveVocab[cat]
		base := vocab[(i/len(order))%len(vocab)]
		domain := base + ".org"
		if i/len(order) >= len(vocab) {
			domain = fmt.Sprintf("%s-%d.org", base, i/len(order)/len(vocab))
		}
		sites = append(sites, buildSite(domain, 0, cat))
	}
	return sites
}

// Dataset builds the paper's 1000-site crawl list: half Tranco, half
// Curlie (or a scaled-down version preserving the split).
func Dataset(total int) []*Site {
	half := total / 2
	sites := TrancoTop(total - half)
	sites = append(sites, CurlieSensitive(half)...)
	return sites
}

// buildSite derives the full deterministic model for a domain.
func buildSite(domain string, rank int, cat Category) *Site {
	rng := rand.New(rand.NewSource(seedFor(domain)))
	s := &Site{
		Domain:   domain,
		Rank:     rank,
		Category: cat,
		Country:  siteCountries[rng.Intn(len(siteCountries))],
	}

	// Popular sites are heavier: rank 1 ~ 55 resources, tail ~ 12.
	base := 12
	if rank > 0 {
		weight := 43 * 500 / (rank + 500) // 43→14 across ranks
		base = 12 + weight
	} else {
		base = 10 + rng.Intn(12) // sensitive sites are lighter
	}
	nRes := base + rng.Intn(9) - 4
	if nRes < 4 {
		nRes = 4
	}

	// Proportions: ~55% first-party, ~20% CDN, ~15% ad, ~10% analytics.
	for i := 0; i < nRes; i++ {
		r := Resource{Size: 800 + rng.Intn(60*1024)}
		roll := rng.Intn(100)
		switch {
		case roll < 55:
			kind := []ResourceKind{KindScript, KindStyle, KindImage, KindImage, KindXHR}[rng.Intn(5)]
			r.Kind = kind
			r.URL = fmt.Sprintf("https://%s/%s/%d%s", domain, pathFor(kind), i, extFor(kind))
		case roll < 75:
			host := cdnPool[rng.Intn(len(cdnPool))]
			kind := []ResourceKind{KindScript, KindStyle, KindFont}[rng.Intn(3)]
			r.Kind, r.ThirdParty = kind, true
			r.URL = fmt.Sprintf("https://%s/lib/%s/%d%s", host, domain, i, extFor(kind))
		case roll < 90:
			host := adPool[rng.Intn(len(adPool))]
			r.Kind, r.ThirdParty = KindScript, true
			r.URL = fmt.Sprintf("https://%s/tag/js/gpt.js?site=%s&slot=%d", host, domain, i)
			r.Size = 300 + rng.Intn(8*1024)
		default:
			host := analyticsPool[rng.Intn(len(analyticsPool))]
			r.Kind, r.ThirdParty = KindXHR, true
			r.URL = fmt.Sprintf("https://%s/collect?tid=UA-%d&dl=https%%3A%%2F%%2F%s%%2F", host, rng.Intn(99999), domain)
			r.Size = 35 + rng.Intn(300)
		}
		s.Resources = append(s.Resources, r)
	}
	s.DocSize = 4*1024 + rng.Intn(90*1024)
	s.LoadTimeMs = int64(350 + rng.Intn(2600))
	return s
}

func pathFor(k ResourceKind) string {
	switch k {
	case KindScript:
		return "static/js"
	case KindStyle:
		return "static/css"
	case KindImage:
		return "images"
	case KindFont:
		return "fonts"
	default:
		return "api"
	}
}

func extFor(k ResourceKind) string {
	switch k {
	case KindScript:
		return ".js"
	case KindStyle:
		return ".css"
	case KindImage:
		return ".png"
	case KindFont:
		return ".woff2"
	default:
		return ""
	}
}

// HTML renders the landing page document with real tags the engine
// parses. Injected snippets (UC International's obfuscated JavaScript,
// §3.2) are appended by the engine at render time, not here.
func (s *Site) HTML() string {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&sb, "<title>%s</title>\n", s.Domain)
	if s.Category.Sensitive() {
		fmt.Fprintf(&sb, "<meta name=\"category\" content=\"%s\">\n", s.Category)
	}
	for _, r := range s.Resources {
		switch r.Kind {
		case KindStyle:
			fmt.Fprintf(&sb, "<link rel=\"stylesheet\" href=\"%s\">\n", r.URL)
		case KindScript:
			fmt.Fprintf(&sb, "<script src=\"%s\"></script>\n", r.URL)
		case KindFont:
			fmt.Fprintf(&sb, "<link rel=\"preload\" as=\"font\" href=\"%s\">\n", r.URL)
		}
	}
	sb.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&sb, "<h1>%s</h1>\n", s.Domain)
	for _, r := range s.Resources {
		switch r.Kind {
		case KindImage:
			fmt.Fprintf(&sb, "<img src=\"%s\" alt=\"\">\n", r.URL)
		case KindXHR:
			fmt.Fprintf(&sb, "<script>fetch(\"%s\")</script>\n", r.URL)
		}
	}
	// Pad the document to its modelled size.
	pad := s.DocSize - sb.Len()
	if pad > 0 {
		sb.WriteString("<!--")
		sb.WriteString(strings.Repeat("p", pad))
		sb.WriteString("-->")
	}
	sb.WriteString("\n</body>\n</html>\n")
	return sb.String()
}

// WriteList renders the crawl list in the "1k.txt" one-domain-per-line
// format the authors published.
func WriteList(sites []*Site) string {
	var sb strings.Builder
	for _, s := range sites {
		sb.WriteString(s.Domain)
		sb.WriteByte('\n')
	}
	return sb.String()
}
