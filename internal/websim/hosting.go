package websim

import (
	"crypto/tls"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"panoptes/internal/netsim"
	"panoptes/internal/pki"
)

// Hosting runs HTTPS servers for a site set plus every third-party embed
// host, all with certificates from the public web CA.
type Hosting struct {
	mu      sync.Mutex
	servers []*http.Server
	hits    map[string]int // host -> request count
}

// Host brings the generated web online. Every site domain and every
// EmbedHosts entry gets an HTTPS listener on the virtual internet in its
// country (embeds are hosted in the US).
func Host(inet *netsim.Internet, ca *pki.CA, sites []*Site) (*Hosting, error) {
	h := &Hosting{hits: make(map[string]int)}
	for _, s := range sites {
		site := s
		if err := h.serve(inet, ca, site.Domain, site.Country, siteHandler(h, site)); err != nil {
			return nil, err
		}
	}
	for _, embed := range EmbedHosts() {
		if err := h.serve(inet, ca, embed, "US", embedHandler(h, embed)); err != nil {
			return nil, err
		}
	}
	return h, nil
}

func (h *Hosting) serve(inet *netsim.Internet, ca *pki.CA, domain, country string, handler http.Handler) error {
	l, _, err := inet.ListenDomain(domain, country, 443)
	if err != nil {
		return fmt.Errorf("websim: host %s: %w", domain, err)
	}
	cert, err := ca.Issue(domain, "*."+domain)
	if err != nil {
		return fmt.Errorf("websim: certificate for %s: %w", domain, err)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(tls.NewListener(l, &tls.Config{Certificates: []tls.Certificate{cert}}))
	h.mu.Lock()
	h.servers = append(h.servers, srv)
	h.mu.Unlock()
	return nil
}

func (h *Hosting) count(host string) {
	h.mu.Lock()
	h.hits[host]++
	h.mu.Unlock()
}

// Hits returns the number of requests a host has served.
func (h *Hosting) Hits(host string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hits[host]
}

// Close shuts every server down.
func (h *Hosting) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, s := range h.servers {
		s.Close()
	}
	h.servers = nil
}

// siteHandler serves a site's landing page and its first-party resources.
func siteHandler(h *Hosting, s *Site) http.Handler {
	doc := s.HTML()
	byPath := make(map[string]*Resource, len(s.Resources))
	for i := range s.Resources {
		r := &s.Resources[i]
		if !r.ThirdParty {
			if idx := strings.Index(r.URL, s.Domain); idx >= 0 {
				byPath[r.URL[idx+len(s.Domain):]] = r
			}
		}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		h.count(s.Domain)
		if req.URL.Path == "/" || req.URL.Path == "" {
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			// The engine reads the modelled DOMContentLoaded latency from
			// this header and reports it up to the orchestrator, which
			// advances the virtual clock by it.
			w.Header().Set("X-Sim-Load-Time-Ms", fmt.Sprint(s.LoadTimeMs))
			fmt.Fprint(w, doc)
			return
		}
		key := req.URL.Path
		if req.URL.RawQuery != "" {
			key += "?" + req.URL.RawQuery
		}
		if r, ok := byPath[key]; ok {
			w.Header().Set("Content-Type", contentTypeFor(r.Kind))
			w.Write(filler(r.Size))
			return
		}
		if strings.HasPrefix(req.URL.Path, "/favicon") {
			w.Header().Set("Content-Type", "image/png")
			w.Write(filler(512))
			return
		}
		http.NotFound(w, req)
	})
}

// embedHandler serves any path on a third-party host with deterministic
// filler sized by the path hash.
func embedHandler(h *Hosting, host string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		h.count(host)
		size := 200 + len(req.URL.RequestURI())*37%4096
		ct := "application/javascript"
		switch {
		case strings.Contains(req.URL.Path, "collect"), strings.Contains(req.URL.Path, "pixel"):
			ct, size = "image/gif", 43
		case strings.HasSuffix(req.URL.Path, ".css"):
			ct = "text/css"
		case strings.HasSuffix(req.URL.Path, ".woff2"):
			ct = "font/woff2"
		}
		w.Header().Set("Content-Type", ct)
		w.Write(filler(size))
	})
}

func contentTypeFor(k ResourceKind) string {
	switch k {
	case KindScript:
		return "application/javascript"
	case KindStyle:
		return "text/css"
	case KindImage:
		return "image/png"
	case KindFont:
		return "font/woff2"
	default:
		return "application/json"
	}
}

var fillerBlock = []byte(strings.Repeat("panoptes", 512)) // 4096 bytes

// filler returns n deterministic bytes.
func filler(n int) []byte {
	if n <= 0 {
		return nil
	}
	out := make([]byte, 0, n)
	for len(out) < n {
		chunk := n - len(out)
		if chunk > len(fillerBlock) {
			chunk = len(fillerBlock)
		}
		out = append(out, fillerBlock[:chunk]...)
	}
	return out
}
