// Package blocker is the countermeasure prototype the paper's related
// work motivates (§4): because browsers track users from *native* code,
// in-browser ad blockers cannot help — but the device's network
// interface is a universal vantage point (NoMoAds, ReCon). The blocker
// installs as a MITM-proxy addon behind the taint splitter and vetoes
// native requests that (a) target known ad/analytics/tracker hosts,
// (b) carry PII or device identifiers, or (c) exfiltrate the visited
// URL or hostname — while never touching engine traffic, so the pages
// the user asked for keep working.
//
// The evaluation (BenchmarkCountermeasure, examples/countermeasure)
// measures the block rate on native tracking and the false-positive
// rate on engine traffic.
package blocker

import (
	"fmt"
	"net/http"
	"net/url"
	"sync"

	"panoptes/internal/capture"
	"panoptes/internal/hostlist"
	"panoptes/internal/leak"
	"panoptes/internal/pii"
)

// Policy selects which native behaviours to block.
type Policy struct {
	// BlockAdHosts vetoes native requests to ad/analytics/tracker hosts.
	BlockAdHosts bool
	// BlockPII vetoes native requests whose parameters or body carry
	// device identifiers (Table 2 attributes).
	BlockPII bool
	// BlockHistoryLeaks vetoes native requests that contain the URL or
	// hostname of the page currently open, under any supported encoding.
	BlockHistoryLeaks bool
	// AllowFirstParty exempts requests to the browser vendor's own
	// update/configuration endpoints listed here (suffix-matched), so
	// blocking does not break core functionality.
	AllowFirstParty []string
}

// DefaultPolicy blocks everything blockable with no exemptions.
func DefaultPolicy() Policy {
	return Policy{BlockAdHosts: true, BlockPII: true, BlockHistoryLeaks: true}
}

// Reason classifies why a request was blocked.
type Reason string

// Block reasons.
const (
	ReasonAdHost      Reason = "ad-host"
	ReasonPII         Reason = "pii"
	ReasonHistoryLeak Reason = "history-leak"
)

// Decision records one veto.
type Decision struct {
	Browser string
	Host    string
	Reason  Reason
	Detail  string
}

// Blocker implements mitm.Addon and mitm.Vetoer.
type Blocker struct {
	policy Policy
	list   *hostlist.List

	mu         sync.Mutex
	blocked    []Decision
	examined   int
	enginePass int
}

// New builds a blocker over a hosts list (nil uses the bundled list).
func New(policy Policy, list *hostlist.List) *Blocker {
	if list == nil {
		list = hostlist.Bundled()
	}
	return &Blocker{policy: policy, list: list}
}

// Request implements mitm.Addon (classification happens in Veto).
func (b *Blocker) Request(f *capture.Flow, req *http.Request) {}

// Response implements mitm.Addon.
func (b *Blocker) Response(f *capture.Flow, resp *http.Response) {}

// Veto implements mitm.Vetoer. It must run after the taint splitter so
// the flow's Origin and VisitURL are populated.
func (b *Blocker) Veto(f *capture.Flow, req *http.Request) error {
	// Never interfere with traffic the website (and therefore the user's
	// navigation) caused: the countermeasure targets the browser app.
	if f.Origin == capture.OriginEngine {
		b.mu.Lock()
		b.enginePass++
		b.mu.Unlock()
		return nil
	}
	b.mu.Lock()
	b.examined++
	b.mu.Unlock()

	for _, allow := range b.policy.AllowFirstParty {
		if f.Host == allow || hostlist.RegistrableDomain(f.Host) == allow {
			return nil
		}
	}

	if b.policy.BlockAdHosts && b.list.AdRelated(f.Host) {
		return b.block(f, ReasonAdHost, f.Host)
	}

	if b.policy.BlockHistoryLeaks && f.VisitURL != "" {
		if reason, hit := b.leaksVisit(f); hit {
			return b.block(f, ReasonHistoryLeak, reason)
		}
	}

	if b.policy.BlockPII {
		if findings := pii.ScanFlow(f); len(findings) > 0 {
			return b.block(f, ReasonPII, string(findings[0].Attribute))
		}
	}
	return nil
}

// leaksVisit checks whether the flow carries the current visit's URL or
// host, reusing the leak detector on a single-flow store.
func (b *Blocker) leaksVisit(f *capture.Flow) (string, bool) {
	vu, err := url.Parse(f.VisitURL)
	if err != nil {
		return "", false
	}
	if f.Host == vu.Hostname() {
		return "", false
	}
	probe := capture.NewStore()
	probe.Add(f)
	findings := leak.NewDetector().Scan(probe)
	if len(findings) == 0 {
		return "", false
	}
	return fmt.Sprintf("%s (%s)", findings[0].Kind, findings[0].Encoding), true
}

func (b *Blocker) block(f *capture.Flow, reason Reason, detail string) error {
	b.mu.Lock()
	b.blocked = append(b.blocked, Decision{
		Browser: f.Browser, Host: f.Host, Reason: reason, Detail: detail,
	})
	b.mu.Unlock()
	return fmt.Errorf("%s: %s", reason, detail)
}

// Stats summarises the blocker's work.
type Stats struct {
	NativeExamined int
	NativeBlocked  int
	EnginePassed   int
	ByReason       map[Reason]int
}

// Stats returns a snapshot.
func (b *Blocker) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := Stats{
		NativeExamined: b.examined,
		NativeBlocked:  len(b.blocked),
		EnginePassed:   b.enginePass,
		ByReason:       map[Reason]int{},
	}
	for _, d := range b.blocked {
		s.ByReason[d.Reason]++
	}
	return s
}

// Decisions returns a copy of the block log.
func (b *Blocker) Decisions() []Decision {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Decision, len(b.blocked))
	copy(out, b.blocked)
	return out
}
