package blocker_test

import (
	"strings"
	"testing"

	"panoptes/internal/analysis"
	"panoptes/internal/blocker"
	"panoptes/internal/capture"
	"panoptes/internal/core"
	"panoptes/internal/profiles"
)

// worldWithBlocker assembles a testbed whose proxy runs the blocker
// behind the taint splitter.
func worldWithBlocker(t *testing.T, policy blocker.Policy, names ...string) (*core.World, *blocker.Blocker) {
	t.Helper()
	var profs []*profiles.Profile
	for _, n := range names {
		profs = append(profs, profiles.ByName(n))
	}
	w, err := core.NewWorld(core.WorldConfig{Sites: 8, Profiles: profs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	b := blocker.New(policy, w.Hostlist)
	w.Proxy.Use(b)
	return w, b
}

func TestBlocksYandexHistoryLeaks(t *testing.T) {
	w, b := worldWithBlocker(t, blocker.DefaultPolicy(), "Yandex")
	if _, err := w.RunCampaign(core.CampaignConfig{Sites: w.Sites[:4]}); err != nil {
		t.Fatal(err)
	}
	// With the blocker active, no history leak reaches the vendor.
	findings := analysis.HistoryLeaks(w.DB.Native)
	reached := 0
	for _, f := range findings {
		// Flows are recorded by the splitter before the veto; blocked
		// ones carry a 403 status and a veto error.
		for _, fl := range w.DB.Native.ByBrowser("Yandex") {
			if fl.ID == f.FlowID && fl.Err == "" {
				reached++
			}
		}
	}
	if reached != 0 {
		t.Fatalf("%d history leaks reached their destination", reached)
	}
	// And the vendor backend really saw nothing.
	if got := w.Vendors.Backend("sba.yandex.net").Count(); got != 0 {
		t.Fatalf("sba.yandex.net received %d requests despite blocking", got)
	}
	stats := b.Stats()
	if stats.NativeBlocked == 0 {
		t.Fatal("blocker blocked nothing")
	}
	if stats.ByReason[blocker.ReasonHistoryLeak] == 0 {
		t.Fatalf("no history-leak blocks: %+v", stats.ByReason)
	}
}

func TestEngineTrafficUntouched(t *testing.T) {
	w, b := worldWithBlocker(t, blocker.DefaultPolicy(), "Chrome")
	res, err := w.RunCampaign(core.CampaignConfig{Sites: w.Sites[:4]})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("navigation errors with blocker active: %d", res.Errors)
	}
	// Every engine flow completed (no 403s).
	for _, f := range w.DB.Engine.ByBrowser("Chrome") {
		if strings.HasPrefix(f.Err, "vetoed") {
			t.Fatalf("engine flow vetoed: %+v", f)
		}
	}
	stats := b.Stats()
	if stats.EnginePassed == 0 {
		t.Fatal("no engine flows examined")
	}
}

func TestBlocksAdHostsAndPII(t *testing.T) {
	w, b := worldWithBlocker(t, blocker.DefaultPolicy(), "Kiwi", "Whale")
	if _, err := w.RunCampaign(core.CampaignConfig{Sites: w.Sites[:4]}); err != nil {
		t.Fatal(err)
	}
	stats := b.Stats()
	if stats.ByReason[blocker.ReasonAdHost] == 0 {
		t.Fatalf("no ad-host blocks (Kiwi talks to six ad networks): %+v", stats.ByReason)
	}
	if stats.ByReason[blocker.ReasonPII] == 0 {
		t.Fatalf("no PII blocks (Whale leaks local IP + rooted): %+v", stats.ByReason)
	}
	// Whale's PII beacons never reached Naver.
	for _, r := range w.Vendors.Backend("api-whale.naver.com").Requests() {
		if strings.Contains(r.Query, "localIp") || strings.Contains(r.Query, "rooted") {
			t.Fatalf("PII reached the vendor: %q", r.Query)
		}
	}
}

func TestAllowFirstPartyExemption(t *testing.T) {
	policy := blocker.DefaultPolicy()
	policy.AllowFirstParty = []string{"yandex.net"} // sba.yandex.net exempted
	w, _ := worldWithBlocker(t, policy, "Yandex")
	if _, err := w.RunCampaign(core.CampaignConfig{Sites: w.Sites[:2]}); err != nil {
		t.Fatal(err)
	}
	if got := w.Vendors.Backend("sba.yandex.net").Count(); got == 0 {
		t.Fatal("allowlisted host was blocked")
	}
	// Non-exempt leak destinations still blocked: api.browser.yandex.ru
	// may receive benign idle config polls, but never a visit report.
	for _, r := range w.Vendors.Backend("api.browser.yandex.ru").Requests() {
		if strings.Contains(r.Query, "uuid=") || strings.Contains(r.Query, "host=") {
			t.Fatalf("visit report reached non-exempt host: %q", r.Query)
		}
	}
}

func TestPolicyToggles(t *testing.T) {
	// History-leak blocking off: Yandex reports flow again.
	policy := blocker.Policy{BlockAdHosts: true} // PII + history off
	w, b := worldWithBlocker(t, policy, "Yandex")
	if _, err := w.RunCampaign(core.CampaignConfig{Sites: w.Sites[:2]}); err != nil {
		t.Fatal(err)
	}
	if got := w.Vendors.Backend("sba.yandex.net").Count(); got == 0 {
		t.Fatal("history leak blocked with BlockHistoryLeaks=false")
	}
	// Ad hosts still blocked.
	if got := w.Vendors.Backend("adfox.ru").Count(); got != 0 {
		t.Fatalf("ad host got %d requests", got)
	}
	if b.Stats().ByReason[blocker.ReasonHistoryLeak] != 0 {
		t.Fatal("history blocks recorded while disabled")
	}
}

func TestDecisionsLog(t *testing.T) {
	w, b := worldWithBlocker(t, blocker.DefaultPolicy(), "Yandex")
	if _, err := w.RunCampaign(core.CampaignConfig{Sites: w.Sites[:2]}); err != nil {
		t.Fatal(err)
	}
	ds := b.Decisions()
	if len(ds) == 0 {
		t.Fatal("no decisions logged")
	}
	for _, d := range ds {
		if d.Browser != "Yandex" || d.Host == "" || d.Reason == "" {
			t.Fatalf("bad decision %+v", d)
		}
	}
}

func TestVetoUnitNoVisit(t *testing.T) {
	b := blocker.New(blocker.DefaultPolicy(), nil)
	// An idle-time native flow without a visit: only ad-host and PII
	// rules can fire.
	f := &capture.Flow{Origin: capture.OriginNative, Browser: "X", Host: "clean.example",
		RawQuery: "v=1"}
	if err := b.Veto(f, nil); err != nil {
		t.Fatalf("clean flow vetoed: %v", err)
	}
	f2 := &capture.Flow{Origin: capture.OriginNative, Browser: "X", Host: "doubleclick.net"}
	if err := b.Veto(f2, nil); err == nil {
		t.Fatal("ad host not vetoed")
	}
}
