package packet

import (
	"bytes"
	"crypto/tls"
	"net"
	"testing"
	"testing/quick"
)

func TestTCPPacketRoundTrip(t *testing.T) {
	src, dst := net.IPv4(192, 168, 1, 100), net.IPv4(20, 0, 0, 1)
	payload := []byte("GET / HTTP/1.1\r\nHost: example.com\r\n\r\n")
	raw, err := TCPPacket(src, dst, 40000, 80, false, true, payload)
	if err != nil {
		t.Fatal(err)
	}
	p := Decode(raw)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer())
	}
	eth, ok := p.Layer(LayerTypeEthernet).(*Ethernet)
	if !ok || eth.EtherType != EtherTypeIPv4 {
		t.Fatalf("ethernet layer = %+v", eth)
	}
	ip, ok := p.Layer(LayerTypeIPv4).(*IPv4)
	if !ok || !ip.SrcIP.Equal(src) || !ip.DstIP.Equal(dst) || ip.Protocol != IPProtoTCP {
		t.Fatalf("ipv4 layer = %+v", ip)
	}
	tcp, ok := p.Layer(LayerTypeTCP).(*TCP)
	if !ok || tcp.SrcPort != 40000 || tcp.DstPort != 80 || !tcp.ACK || tcp.SYN {
		t.Fatalf("tcp layer = %+v", tcp)
	}
	pl, ok := p.Layer(LayerTypePayload).(Payload)
	if !ok || !bytes.Equal(pl, payload) {
		t.Fatalf("payload = %q", pl)
	}
}

func TestUDPPacketRoundTrip(t *testing.T) {
	raw, err := UDPPacket(net.IPv4(1, 2, 3, 4), net.IPv4(5, 6, 7, 8), 5353, 53, []byte("dnsq"))
	if err != nil {
		t.Fatal(err)
	}
	p := Decode(raw)
	udp, ok := p.Layer(LayerTypeUDP).(*UDP)
	if !ok || udp.SrcPort != 5353 || udp.DstPort != 53 || udp.Length != 12 {
		t.Fatalf("udp layer = %+v", udp)
	}
	if pl := p.Layer(LayerTypePayload).(Payload); string(pl) != "dnsq" {
		t.Fatalf("payload = %q", pl)
	}
}

func TestSYNFlag(t *testing.T) {
	raw, _ := TCPPacket(net.IPv4(1, 1, 1, 1), net.IPv4(2, 2, 2, 2), 1, 2, true, false, nil)
	p := Decode(raw)
	tcp := p.Layer(LayerTypeTCP).(*TCP)
	if !tcp.SYN || tcp.ACK || tcp.PSH {
		t.Fatalf("flags = %+v", tcp)
	}
	if p.Layer(LayerTypePayload) != nil {
		t.Fatal("payload layer on empty SYN")
	}
}

func TestIPChecksumValid(t *testing.T) {
	raw, _ := TCPPacket(net.IPv4(9, 9, 9, 9), net.IPv4(8, 8, 8, 8), 1234, 443, true, false, nil)
	hdr := raw[14:34]
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(hdr[i])<<8 | uint32(hdr[i+1])
	}
	for sum > 0xFFFF {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	if sum != 0xFFFF {
		t.Fatalf("header checksum does not verify: %#x", sum)
	}
}

func TestDecodeTruncated(t *testing.T) {
	raw, _ := TCPPacket(net.IPv4(1, 1, 1, 1), net.IPv4(2, 2, 2, 2), 1, 2, false, true, []byte("xyz"))
	for _, cut := range []int{0, 5, 13, 20, 30} {
		if cut >= len(raw) {
			continue
		}
		p := Decode(raw[:cut])
		if cut < 14 && p.ErrorLayer() == nil {
			t.Errorf("cut %d: no error", cut)
		}
	}
}

func TestDecodeNonIPv4EtherType(t *testing.T) {
	frame := make([]byte, 20)
	frame[12], frame[13] = 0x86, 0xDD // IPv6
	p := Decode(frame)
	if p.ErrorLayer() != nil {
		t.Fatalf("unexpected error: %v", p.ErrorLayer())
	}
	if p.Layer(LayerTypeIPv4) != nil {
		t.Fatal("decoded IPv4 from IPv6 frame")
	}
	if p.Layer(LayerTypePayload) == nil {
		t.Fatal("no raw payload layer")
	}
}

func TestDecodeBadIPVersion(t *testing.T) {
	raw, _ := TCPPacket(net.IPv4(1, 1, 1, 1), net.IPv4(2, 2, 2, 2), 1, 2, true, false, nil)
	raw[14] = 0x65 // version 6 claimed in IPv4 slot
	if Decode(raw).ErrorLayer() == nil {
		t.Fatal("bad version accepted")
	}
}

func TestPacketString(t *testing.T) {
	raw, _ := TCPPacket(net.IPv4(1, 1, 1, 1), net.IPv4(2, 2, 2, 2), 1, 2, false, true, []byte("x"))
	p := Decode(raw)
	if got := p.String(); got != "Ethernet/IPv4/TCP/Payload" {
		t.Fatalf("String = %q", got)
	}
}

func TestSerializeValidation(t *testing.T) {
	if _, err := Serialize(nil, nil, &TCP{}, nil); err == nil {
		t.Fatal("nil IP accepted")
	}
	if _, err := Serialize(nil, &IPv4{SrcIP: net.ParseIP("::1"), DstIP: net.IPv4(1, 1, 1, 1)}, &TCP{}, nil); err == nil {
		t.Fatal("IPv6 source accepted")
	}
	if _, err := Serialize(nil, &IPv4{SrcIP: net.IPv4(1, 1, 1, 1), DstIP: net.IPv4(2, 2, 2, 2)}, Payload("x"), nil); err == nil {
		t.Fatal("bad transport layer accepted")
	}
}

func TestLayerTypeString(t *testing.T) {
	if LayerTypeTCP.String() != "TCP" || LayerType(99).String() != "LayerType(99)" {
		t.Fatal("LayerType.String wrong")
	}
}

// Property: serialize→decode recovers ports, addresses and payload for
// arbitrary payload content.
func TestPropertyTCPRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		src, dst := net.IPv4(10, 0, 0, 1), net.IPv4(20, 0, 0, 2)
		raw, err := TCPPacket(src, dst, sp, dp, false, true, payload)
		if err != nil {
			return false
		}
		p := Decode(raw)
		tcp, ok := p.Layer(LayerTypeTCP).(*TCP)
		if !ok || tcp.SrcPort != sp || tcp.DstPort != dp {
			return false
		}
		var got []byte
		if pl, ok := p.Layer(LayerTypePayload).(Payload); ok {
			got = pl
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics on arbitrary input.
func TestPropertyDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic: %v", r)
			}
		}()
		Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSNIFromRealClientHello(t *testing.T) {
	// Capture the client's first flight of a real crypto/tls handshake.
	clientEnd, serverEnd := net.Pipe()
	firstFlight := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16384)
		n, _ := serverEnd.Read(buf)
		firstFlight <- buf[:n]
		serverEnd.Close()
	}()
	c := tls.Client(clientEnd, &tls.Config{ServerName: "sni.example.com", InsecureSkipVerify: true})
	go c.Handshake() // will fail when the "server" closes; we only need the hello
	hello := <-firstFlight
	clientEnd.Close()

	sni, err := SNIFromClientHello(hello)
	if err != nil {
		t.Fatalf("SNI extraction: %v", err)
	}
	if sni != "sni.example.com" {
		t.Fatalf("sni = %q", sni)
	}
}

func TestSNIRejectsNonTLS(t *testing.T) {
	if _, err := SNIFromClientHello([]byte("GET / HTTP/1.1\r\n")); err == nil {
		t.Fatal("HTTP accepted as ClientHello")
	}
	if _, err := SNIFromClientHello(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

// Property: SNI parser never panics on arbitrary bytes.
func TestPropertySNINeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic: %v", r)
			}
		}()
		SNIFromClientHello(data)
		// Also try with a forced TLS record prefix to reach deeper code.
		forced := append([]byte{22, 3, 1, 0, byte(len(data))}, data...)
		SNIFromClientHello(forced)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecodeTCP(b *testing.B) {
	raw, _ := TCPPacket(net.IPv4(1, 1, 1, 1), net.IPv4(2, 2, 2, 2), 40000, 443, false, true,
		bytes.Repeat([]byte("x"), 512))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decode(raw)
	}
}
