// Package packet implements a gopacket-inspired layered packet model:
// packets decode lazily into a stack of Layers (Ethernet, IPv4, TCP, UDP,
// and application payloads including DNS and TLS ClientHello), and layers
// serialise back to bytes. The device network stack synthesises packets
// for its capture tap, which the pcap package persists in libpcap format.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
)

// LayerType identifies a protocol layer.
type LayerType int

// Layer types known to the decoder.
const (
	LayerTypeEthernet LayerType = iota + 1
	LayerTypeIPv4
	LayerTypeTCP
	LayerTypeUDP
	LayerTypePayload
)

// String names the layer type.
func (t LayerType) String() string {
	switch t {
	case LayerTypeEthernet:
		return "Ethernet"
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypePayload:
		return "Payload"
	}
	return fmt.Sprintf("LayerType(%d)", int(t))
}

// Layer is one decoded protocol layer, in the spirit of gopacket.Layer.
type Layer interface {
	// LayerType returns the layer's type.
	LayerType() LayerType
	// LayerContents returns the bytes that form this layer's header.
	LayerContents() []byte
	// LayerPayload returns the bytes this layer carries for the next one.
	LayerPayload() []byte
}

// Decoding errors.
var (
	ErrTooShort    = errors.New("packet: truncated layer")
	ErrBadVersion  = errors.New("packet: unsupported IP version")
	ErrBadIHL      = errors.New("packet: bad IPv4 header length")
	ErrBadProtocol = errors.New("packet: unsupported transport protocol")
)

// EtherType values used by the simulation.
const (
	EtherTypeIPv4 uint16 = 0x0800
)

// IP protocol numbers.
const (
	IPProtoTCP uint8 = 6
	IPProtoUDP uint8 = 17
)

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	SrcMAC, DstMAC net.HardwareAddr
	EtherType      uint16
	contents       []byte
	payload        []byte
}

// LayerType implements Layer.
func (e *Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// LayerContents implements Layer.
func (e *Ethernet) LayerContents() []byte { return e.contents }

// LayerPayload implements Layer.
func (e *Ethernet) LayerPayload() []byte { return e.payload }

func decodeEthernet(data []byte) (*Ethernet, error) {
	if len(data) < 14 {
		return nil, fmt.Errorf("ethernet: %w", ErrTooShort)
	}
	return &Ethernet{
		DstMAC:    net.HardwareAddr(append([]byte(nil), data[0:6]...)),
		SrcMAC:    net.HardwareAddr(append([]byte(nil), data[6:12]...)),
		EtherType: binary.BigEndian.Uint16(data[12:14]),
		contents:  data[:14],
		payload:   data[14:],
	}, nil
}

func (e *Ethernet) serialize() []byte {
	b := make([]byte, 14)
	copy(b[0:6], e.DstMAC)
	copy(b[6:12], e.SrcMAC)
	binary.BigEndian.PutUint16(b[12:14], e.EtherType)
	return b
}

// IPv4 is an IPv4 header (options unsupported on encode, skipped on
// decode).
type IPv4 struct {
	TOS      uint8
	ID       uint16
	TTL      uint8
	Protocol uint8
	SrcIP    net.IP
	DstIP    net.IP
	Length   uint16
	contents []byte
	payload  []byte
}

// LayerType implements Layer.
func (ip *IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// LayerContents implements Layer.
func (ip *IPv4) LayerContents() []byte { return ip.contents }

// LayerPayload implements Layer.
func (ip *IPv4) LayerPayload() []byte { return ip.payload }

func decodeIPv4(data []byte) (*IPv4, error) {
	if len(data) < 20 {
		return nil, fmt.Errorf("ipv4: %w", ErrTooShort)
	}
	if v := data[0] >> 4; v != 4 {
		return nil, fmt.Errorf("ipv4: version %d: %w", v, ErrBadVersion)
	}
	ihl := int(data[0]&0x0F) * 4
	if ihl < 20 || ihl > len(data) {
		return nil, ErrBadIHL
	}
	total := int(binary.BigEndian.Uint16(data[2:4]))
	if total < ihl || total > len(data) {
		total = len(data) // tolerate padded frames
	}
	return &IPv4{
		TOS:      data[1],
		ID:       binary.BigEndian.Uint16(data[4:6]),
		TTL:      data[8],
		Protocol: data[9],
		SrcIP:    net.IP(append([]byte(nil), data[12:16]...)),
		DstIP:    net.IP(append([]byte(nil), data[16:20]...)),
		Length:   uint16(total),
		contents: data[:ihl],
		payload:  data[ihl:total],
	}, nil
}

func (ip *IPv4) serialize(payloadLen int) []byte {
	b := make([]byte, 20)
	b[0] = 0x45
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[2:4], uint16(20+payloadLen))
	binary.BigEndian.PutUint16(b[4:6], ip.ID)
	b[8] = ip.TTL
	if b[8] == 0 {
		b[8] = 64
	}
	b[9] = ip.Protocol
	copy(b[12:16], ip.SrcIP.To4())
	copy(b[16:20], ip.DstIP.To4())
	binary.BigEndian.PutUint16(b[10:12], ipChecksum(b))
	return b
}

func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum > 0xFFFF {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

// TCP is a TCP header.
type TCP struct {
	SrcPort, DstPort        uint16
	Seq, Ack                uint32
	SYN, ACK, FIN, RST, PSH bool
	Window                  uint16
	contents                []byte
	payload                 []byte
}

// LayerType implements Layer.
func (t *TCP) LayerType() LayerType { return LayerTypeTCP }

// LayerContents implements Layer.
func (t *TCP) LayerContents() []byte { return t.contents }

// LayerPayload implements Layer.
func (t *TCP) LayerPayload() []byte { return t.payload }

func decodeTCP(data []byte) (*TCP, error) {
	if len(data) < 20 {
		return nil, fmt.Errorf("tcp: %w", ErrTooShort)
	}
	off := int(data[12]>>4) * 4
	if off < 20 || off > len(data) {
		return nil, fmt.Errorf("tcp: bad data offset: %w", ErrTooShort)
	}
	flags := data[13]
	return &TCP{
		SrcPort:  binary.BigEndian.Uint16(data[0:2]),
		DstPort:  binary.BigEndian.Uint16(data[2:4]),
		Seq:      binary.BigEndian.Uint32(data[4:8]),
		Ack:      binary.BigEndian.Uint32(data[8:12]),
		FIN:      flags&0x01 != 0,
		SYN:      flags&0x02 != 0,
		RST:      flags&0x04 != 0,
		PSH:      flags&0x08 != 0,
		ACK:      flags&0x10 != 0,
		Window:   binary.BigEndian.Uint16(data[14:16]),
		contents: data[:off],
		payload:  data[off:],
	}, nil
}

func (t *TCP) serialize() []byte {
	b := make([]byte, 20)
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = 5 << 4
	var flags byte
	if t.FIN {
		flags |= 0x01
	}
	if t.SYN {
		flags |= 0x02
	}
	if t.RST {
		flags |= 0x04
	}
	if t.PSH {
		flags |= 0x08
	}
	if t.ACK {
		flags |= 0x10
	}
	b[13] = flags
	if t.Window == 0 {
		t.Window = 65535
	}
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	return b
}

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	contents         []byte
	payload          []byte
}

// LayerType implements Layer.
func (u *UDP) LayerType() LayerType { return LayerTypeUDP }

// LayerContents implements Layer.
func (u *UDP) LayerContents() []byte { return u.contents }

// LayerPayload implements Layer.
func (u *UDP) LayerPayload() []byte { return u.payload }

func decodeUDP(data []byte) (*UDP, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("udp: %w", ErrTooShort)
	}
	return &UDP{
		SrcPort:  binary.BigEndian.Uint16(data[0:2]),
		DstPort:  binary.BigEndian.Uint16(data[2:4]),
		Length:   binary.BigEndian.Uint16(data[4:6]),
		contents: data[:8],
		payload:  data[8:],
	}, nil
}

func (u *UDP) serialize(payloadLen int) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], uint16(8+payloadLen))
	return b
}

// Payload is a raw application-layer layer.
type Payload []byte

// LayerType implements Layer.
func (p Payload) LayerType() LayerType { return LayerTypePayload }

// LayerContents implements Layer.
func (p Payload) LayerContents() []byte { return p }

// LayerPayload implements Layer.
func (p Payload) LayerPayload() []byte { return nil }

// Packet is a decoded packet: the raw bytes plus the layer stack.
type Packet struct {
	data   []byte
	layers []Layer
	err    error
}

// Decode parses data as Ethernet/IPv4/{TCP,UDP}/Payload. Decoding is
// greedy but forgiving: an undecodable inner layer leaves the outer
// layers intact and records the error.
func Decode(data []byte) *Packet {
	p := &Packet{data: data}
	eth, err := decodeEthernet(data)
	if err != nil {
		p.err = err
		return p
	}
	p.layers = append(p.layers, eth)
	if eth.EtherType != EtherTypeIPv4 {
		if len(eth.LayerPayload()) > 0 {
			p.layers = append(p.layers, Payload(eth.LayerPayload()))
		}
		return p
	}
	ip, err := decodeIPv4(eth.LayerPayload())
	if err != nil {
		p.err = err
		return p
	}
	p.layers = append(p.layers, ip)
	switch ip.Protocol {
	case IPProtoTCP:
		tcp, err := decodeTCP(ip.LayerPayload())
		if err != nil {
			p.err = err
			return p
		}
		p.layers = append(p.layers, tcp)
		if len(tcp.LayerPayload()) > 0 {
			p.layers = append(p.layers, Payload(tcp.LayerPayload()))
		}
	case IPProtoUDP:
		udp, err := decodeUDP(ip.LayerPayload())
		if err != nil {
			p.err = err
			return p
		}
		p.layers = append(p.layers, udp)
		if len(udp.LayerPayload()) > 0 {
			p.layers = append(p.layers, Payload(udp.LayerPayload()))
		}
	default:
		p.err = fmt.Errorf("protocol %d: %w", ip.Protocol, ErrBadProtocol)
	}
	return p
}

// Data returns the raw packet bytes.
func (p *Packet) Data() []byte { return p.data }

// Layers returns the decoded layer stack.
func (p *Packet) Layers() []Layer { return p.layers }

// Layer returns the first layer of the given type, or nil.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.layers {
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// ErrorLayer returns the decode error, if any.
func (p *Packet) ErrorLayer() error { return p.err }

// String summarises the packet one layer per segment.
func (p *Packet) String() string {
	s := ""
	for i, l := range p.layers {
		if i > 0 {
			s += "/"
		}
		s += l.LayerType().String()
	}
	if p.err != nil {
		s += fmt.Sprintf("(err: %v)", p.err)
	}
	return s
}

var defaultMAC = net.HardwareAddr{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
var gatewayMAC = net.HardwareAddr{0x02, 0x00, 0x00, 0x00, 0x00, 0xFE}

// Serialize builds packet bytes from a layer stack specification.
// Ethernet addresses default to fixed device/gateway MACs if unset.
func Serialize(eth *Ethernet, ip *IPv4, transport Layer, payload []byte) ([]byte, error) {
	if eth == nil {
		eth = &Ethernet{}
	}
	if len(eth.SrcMAC) == 0 {
		eth.SrcMAC = defaultMAC
	}
	if len(eth.DstMAC) == 0 {
		eth.DstMAC = gatewayMAC
	}
	eth.EtherType = EtherTypeIPv4
	if ip == nil {
		return nil, errors.New("packet: Serialize requires an IPv4 layer")
	}
	if ip.SrcIP.To4() == nil || ip.DstIP.To4() == nil {
		return nil, errors.New("packet: Serialize requires IPv4 addresses")
	}

	var tbytes []byte
	switch tr := transport.(type) {
	case *TCP:
		ip.Protocol = IPProtoTCP
		tbytes = tr.serialize()
	case *UDP:
		ip.Protocol = IPProtoUDP
		tbytes = tr.serialize(len(payload))
	default:
		return nil, fmt.Errorf("packet: unsupported transport layer %T", transport)
	}

	inner := len(tbytes) + len(payload)
	out := eth.serialize()
	out = append(out, ip.serialize(inner)...)
	out = append(out, tbytes...)
	out = append(out, payload...)
	return out, nil
}

// TCPPacket is a convenience constructor for a TCP data packet.
func TCPPacket(src, dst net.IP, srcPort, dstPort uint16, flagsSYN, flagsACK bool, payload []byte) ([]byte, error) {
	return Serialize(nil,
		&IPv4{SrcIP: src, DstIP: dst, TTL: 64},
		&TCP{SrcPort: srcPort, DstPort: dstPort, SYN: flagsSYN, ACK: flagsACK, PSH: len(payload) > 0},
		payload)
}

// UDPPacket is a convenience constructor for a UDP datagram packet.
func UDPPacket(src, dst net.IP, srcPort, dstPort uint16, payload []byte) ([]byte, error) {
	return Serialize(nil,
		&IPv4{SrcIP: src, DstIP: dst, TTL: 64},
		&UDP{SrcPort: srcPort, DstPort: dstPort},
		payload)
}
