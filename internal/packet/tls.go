package packet

import (
	"encoding/binary"
	"errors"
)

// TLS ClientHello inspection: enough of the TLS record and handshake
// framing to pull the SNI out of a captured first flight, which is how a
// passive observer (and our capture analysis) attributes encrypted flows
// to hostnames without decrypting them.

// ErrNotClientHello reports that the bytes are not a TLS ClientHello.
var ErrNotClientHello = errors.New("packet: not a TLS ClientHello")

// SNIFromClientHello extracts the server_name extension value from raw
// TLS bytes (one or more records starting with the ClientHello record).
func SNIFromClientHello(data []byte) (string, error) {
	// TLS record header: type(1)=22 handshake, version(2), length(2).
	if len(data) < 5 || data[0] != 22 {
		return "", ErrNotClientHello
	}
	recLen := int(binary.BigEndian.Uint16(data[3:5]))
	if 5+recLen > len(data) {
		recLen = len(data) - 5 // tolerate truncated capture
	}
	hs := data[5 : 5+recLen]
	// Handshake header: type(1)=1 client_hello, length(3).
	if len(hs) < 4 || hs[0] != 1 {
		return "", ErrNotClientHello
	}
	body := hs[4:]
	// client_version(2) random(32)
	if len(body) < 34 {
		return "", ErrNotClientHello
	}
	p := 34
	// session_id
	if p >= len(body) {
		return "", ErrNotClientHello
	}
	p += 1 + int(body[p])
	// cipher_suites
	if p+2 > len(body) {
		return "", ErrNotClientHello
	}
	p += 2 + int(binary.BigEndian.Uint16(body[p:]))
	// compression_methods
	if p+1 > len(body) {
		return "", ErrNotClientHello
	}
	p += 1 + int(body[p])
	// extensions
	if p+2 > len(body) {
		return "", ErrNotClientHello
	}
	extLen := int(binary.BigEndian.Uint16(body[p:]))
	p += 2
	end := p + extLen
	if end > len(body) {
		end = len(body)
	}
	for p+4 <= end {
		extType := binary.BigEndian.Uint16(body[p:])
		l := int(binary.BigEndian.Uint16(body[p+2:]))
		p += 4
		if p+l > end {
			return "", ErrNotClientHello
		}
		if extType == 0 { // server_name
			ext := body[p : p+l]
			if len(ext) < 2 {
				return "", ErrNotClientHello
			}
			listLen := int(binary.BigEndian.Uint16(ext))
			q := 2
			for q+3 <= 2+listLen && q+3 <= len(ext) {
				nameType := ext[q]
				nameLen := int(binary.BigEndian.Uint16(ext[q+1:]))
				q += 3
				if q+nameLen > len(ext) {
					return "", ErrNotClientHello
				}
				if nameType == 0 {
					return string(ext[q : q+nameLen]), nil
				}
				q += nameLen
			}
			return "", ErrNotClientHello
		}
		p += l
	}
	return "", ErrNotClientHello
}
