// Package cdp implements the subset of the Chrome DevTools Protocol that
// Panoptes uses to instrument browsers (paper §2.1, §2.3): JSON-RPC over
// WebSocket, the Page domain (navigate + lifecycle events), the Network
// domain (requestWillBeSent events), and the Fetch domain (requestPaused /
// continueRequest), which is the mechanism that lets Panoptes taint every
// web-engine request with a custom `x-` header before it leaves the app.
//
// Server is embedded in the browser emulators; Client is what the
// measurement host speaks. Both sides are the real protocol shape, so the
// instrumentation path is exercised end to end rather than short-circuited
// by Go function calls.
package cdp

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"panoptes/internal/ws"
)

// Method names used by the Panoptes instrumentation.
const (
	MethodPageEnable       = "Page.enable"
	MethodPageNavigate     = "Page.navigate"
	MethodNetworkEnable    = "Network.enable"
	MethodFetchEnable      = "Fetch.enable"
	MethodFetchDisable     = "Fetch.disable"
	MethodFetchContinue    = "Fetch.continueRequest"
	MethodBrowserVersion   = "Browser.getVersion"
	EventDOMContentFired   = "Page.domContentEventFired"
	EventLoadFired         = "Page.loadEventFired"
	EventRequestWillBeSent = "Network.requestWillBeSent"
	EventRequestPaused     = "Fetch.requestPaused"
)

// message is the wire envelope: request, response or event.
type message struct {
	ID     int             `json:"id,omitempty"`
	Method string          `json:"method,omitempty"`
	Params json.RawMessage `json:"params,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  *Error          `json:"error,omitempty"`
}

// Error is a protocol-level error.
type Error struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("cdp: remote error %d: %s", e.Code, e.Message) }

// Parameter/result payloads.

// NavigateParams is Page.navigate's input.
type NavigateParams struct {
	URL string `json:"url"`
}

// NavigateResult is Page.navigate's output.
type NavigateResult struct {
	FrameID string `json:"frameId"`
	// LoadTimeMs is a simulation extension: the virtual milliseconds the
	// page load consumed, so the orchestrator can advance the clock.
	LoadTimeMs int64 `json:"loadTimeMs"`
	// ErrorText is set when navigation failed (DNS, connection reset...).
	ErrorText string `json:"errorText,omitempty"`
}

// HeaderEntry is one header in Fetch.continueRequest.
type HeaderEntry struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// RequestPausedParams is the Fetch.requestPaused event payload.
type RequestPausedParams struct {
	RequestID string         `json:"requestId"`
	Request   RequestPayload `json:"request"`
}

// RequestPayload describes the paused request.
type RequestPayload struct {
	URL     string            `json:"url"`
	Method  string            `json:"method"`
	Headers map[string]string `json:"headers"`
}

// ContinueParams is Fetch.continueRequest's input.
type ContinueParams struct {
	RequestID string        `json:"requestId"`
	Headers   []HeaderEntry `json:"headers,omitempty"`
}

// RequestWillBeSentParams is the Network.requestWillBeSent payload.
type RequestWillBeSentParams struct {
	RequestID string         `json:"requestId"`
	Request   RequestPayload `json:"request"`
}

// VersionResult is Browser.getVersion's output.
type VersionResult struct {
	Product  string `json:"product"`
	Revision string `json:"revision"`
}

// HandlerFunc serves one method call.
type HandlerFunc func(params json.RawMessage) (any, error)

// Server is a CDP endpoint embedded in a browser app.
type Server struct {
	mu       sync.Mutex
	handlers map[string]HandlerFunc
	conns    map[*ws.Conn]bool
}

// NewServer returns an empty server; register handlers before serving.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]HandlerFunc),
		conns:    make(map[*ws.Conn]bool),
	}
}

// Register binds a method to a handler. Later registrations replace
// earlier ones.
func (s *Server) Register(method string, fn HandlerFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = fn
}

// HTTPHandler returns the /devtools upgrade endpoint.
func (s *Server) HTTPHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := ws.Upgrade(w, r)
		if err != nil {
			return
		}
		s.serveConn(conn)
	})
}

func (s *Server) serveConn(conn *ws.Conn) {
	s.mu.Lock()
	s.conns[conn] = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		_, data, err := conn.ReadMessage()
		if err != nil {
			return
		}
		var msg message
		if err := json.Unmarshal(data, &msg); err != nil || msg.Method == "" {
			continue
		}
		// Dispatch concurrently: a blocking handler (Page.navigate waiting
		// on Fetch interception) must not stall continueRequest delivery.
		go s.dispatch(conn, msg)
	}
}

func (s *Server) dispatch(conn *ws.Conn, msg message) {
	s.mu.Lock()
	fn, ok := s.handlers[msg.Method]
	s.mu.Unlock()

	resp := message{ID: msg.ID}
	if !ok {
		resp.Error = &Error{Code: -32601, Message: fmt.Sprintf("'%s' wasn't found", msg.Method)}
	} else {
		result, err := fn(msg.Params)
		if err != nil {
			resp.Error = &Error{Code: -32000, Message: err.Error()}
		} else if result != nil {
			raw, err := json.Marshal(result)
			if err != nil {
				resp.Error = &Error{Code: -32603, Message: err.Error()}
			} else {
				resp.Result = raw
			}
		} else {
			resp.Result = json.RawMessage(`{}`)
		}
	}
	out, err := json.Marshal(resp)
	if err != nil {
		return
	}
	conn.WriteMessage(ws.OpText, out)
}

// Emit broadcasts an event to every connected client.
func (s *Server) Emit(method string, params any) {
	raw, err := json.Marshal(params)
	if err != nil {
		return
	}
	out, err := json.Marshal(message{Method: method, Params: raw})
	if err != nil {
		return
	}
	s.mu.Lock()
	conns := make([]*ws.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.WriteMessage(ws.OpText, out)
	}
}

// HasClient reports whether a DevTools client is attached.
func (s *Server) HasClient() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns) > 0
}

// Client is the measurement host's side of the protocol.
type Client struct {
	conn *ws.Conn

	mu       sync.Mutex
	nextID   int
	pending  map[int]chan message
	handlers map[string][]func(json.RawMessage)
	closed   bool
}

// Dial connects to a browser's DevTools endpoint. dial opens the raw
// transport (typically through the simulation's loopback, not the
// firewalled network path).
func Dial(wsURL string, dial func(addr string) (net.Conn, error)) (*Client, error) {
	conn, err := ws.Dial(wsURL, dial)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:     conn,
		pending:  make(map[int]chan message),
		handlers: make(map[string][]func(json.RawMessage)),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	for {
		_, data, err := c.conn.ReadMessage()
		if err != nil {
			c.mu.Lock()
			c.closed = true
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		var msg message
		if err := json.Unmarshal(data, &msg); err != nil {
			continue
		}
		if msg.Method != "" { // event
			c.mu.Lock()
			var fns []func(json.RawMessage)
			fns = append(fns, c.handlers[msg.Method]...)
			c.mu.Unlock()
			for _, fn := range fns {
				fn(msg.Params)
			}
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[msg.ID]
		if ok {
			delete(c.pending, msg.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- msg
		}
	}
}

// On subscribes fn to an event. Handlers run on the read-loop goroutine;
// they must not block on protocol calls that need the read loop (use a
// goroutine inside if they do).
func (c *Client) On(method string, fn func(params json.RawMessage)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.handlers[method] = append(c.handlers[method], fn)
}

// Call invokes a method and decodes the result into result (which may be
// nil to discard it).
func (c *Client) Call(method string, params, result any) error {
	return c.CallTimeout(method, params, result, 30*time.Second)
}

// CallTimeout is Call with an explicit wall-clock timeout.
func (c *Client) CallTimeout(method string, params, result any, timeout time.Duration) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ws.ErrClosed
	}
	c.nextID++
	id := c.nextID
	ch := make(chan message, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	var raw json.RawMessage
	if params != nil {
		b, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("cdp: marshal params: %w", err)
		}
		raw = b
	}
	out, err := json.Marshal(message{ID: id, Method: method, Params: raw})
	if err != nil {
		return fmt.Errorf("cdp: marshal request: %w", err)
	}
	if err := c.conn.WriteMessage(ws.OpText, out); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("cdp: send %s: %w", method, err)
	}

	select {
	case msg, ok := <-ch:
		if !ok {
			return ws.ErrClosed
		}
		if msg.Error != nil {
			return msg.Error
		}
		if result != nil && len(msg.Result) > 0 {
			if err := json.Unmarshal(msg.Result, result); err != nil {
				return fmt.Errorf("cdp: decode %s result: %w", method, err)
			}
		}
		return nil
	case <-time.After(timeout):
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return &TimeoutError{Method: method, After: timeout}
	}
}

// TimeoutError reports a CDP call that received no response in time — the
// signature of an unresponsive DevTools socket. It satisfies the net.Error
// timeout contract so callers can branch on it.
type TimeoutError struct {
	Method string
	After  time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("cdp: %s timed out after %v", e.Method, e.After)
}

// Timeout reports this as a timeout condition.
func (e *TimeoutError) Timeout() bool { return true }

// Temporary reports the failure as retryable (a fresh connection may work).
func (e *TimeoutError) Temporary() bool { return true }

// Close tears the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

// ErrNoInterceptor is returned by interception helpers when Fetch.enable
// was not called.
var ErrNoInterceptor = errors.New("cdp: fetch interception not enabled")
