package cdp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"panoptes/internal/netsim"
)

// testRig hosts a CDP server on the virtual internet and returns a
// connected client plus the server.
func testRig(t *testing.T) (*Client, *Server) {
	t.Helper()
	inet := netsim.New()
	l, _, err := inet.ListenDomain("browser.local", "US", 9222)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	httpSrv := &http.Server{Handler: srv.HTTPHandler()}
	go httpSrv.Serve(l)
	t.Cleanup(func() { httpSrv.Close() })

	client, err := Dial("ws://browser.local:9222/devtools", func(addr string) (net.Conn, error) {
		return inet.Dial(context.Background(), addr)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, srv
}

func TestCallAndResult(t *testing.T) {
	client, srv := testRig(t)
	srv.Register(MethodBrowserVersion, func(json.RawMessage) (any, error) {
		return VersionResult{Product: "Chrome/113.0.5672.77", Revision: "sim"}, nil
	})
	var v VersionResult
	if err := client.Call(MethodBrowserVersion, nil, &v); err != nil {
		t.Fatal(err)
	}
	if v.Product != "Chrome/113.0.5672.77" {
		t.Fatalf("product = %q", v.Product)
	}
}

func TestCallUnknownMethod(t *testing.T) {
	client, _ := testRig(t)
	err := client.Call("Bogus.method", nil, nil)
	var cdpErr *Error
	if !errors.As(err, &cdpErr) || cdpErr.Code != -32601 {
		t.Fatalf("err = %v", err)
	}
}

func TestHandlerError(t *testing.T) {
	client, srv := testRig(t)
	srv.Register("Page.navigate", func(json.RawMessage) (any, error) {
		return nil, fmt.Errorf("net::ERR_NAME_NOT_RESOLVED")
	})
	err := client.Call("Page.navigate", NavigateParams{URL: "https://ghost.example/"}, nil)
	var cdpErr *Error
	if !errors.As(err, &cdpErr) || cdpErr.Message != "net::ERR_NAME_NOT_RESOLVED" {
		t.Fatalf("err = %v", err)
	}
}

func TestParamsDecodeOnServer(t *testing.T) {
	client, srv := testRig(t)
	srv.Register(MethodPageNavigate, func(raw json.RawMessage) (any, error) {
		var p NavigateParams
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, err
		}
		return NavigateResult{FrameID: "frame-1", LoadTimeMs: 1200, ErrorText: ""}, nil
	})
	var res NavigateResult
	if err := client.Call(MethodPageNavigate, NavigateParams{URL: "https://example.com/"}, &res); err != nil {
		t.Fatal(err)
	}
	if res.FrameID != "frame-1" || res.LoadTimeMs != 1200 {
		t.Fatalf("res = %+v", res)
	}
}

func TestEvents(t *testing.T) {
	client, srv := testRig(t)
	got := make(chan string, 4)
	client.On(EventDOMContentFired, func(params json.RawMessage) {
		got <- string(params)
	})
	// Give the subscription a moment, then emit.
	srv.Register("Page.enable", func(json.RawMessage) (any, error) { return nil, nil })
	if err := client.Call("Page.enable", nil, nil); err != nil {
		t.Fatal(err)
	}
	srv.Emit(EventDOMContentFired, map[string]any{"timestamp": 1.5})
	select {
	case p := <-got:
		if p != `{"timestamp":1.5}` {
			t.Fatalf("params = %s", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("event not delivered")
	}
}

func TestConcurrentCalls(t *testing.T) {
	client, srv := testRig(t)
	srv.Register("Echo.id", func(raw json.RawMessage) (any, error) {
		var p struct {
			N int `json:"n"`
		}
		json.Unmarshal(raw, &p)
		return map[string]int{"n": p.N}, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var res struct {
				N int `json:"n"`
			}
			if err := client.Call("Echo.id", map[string]int{"n": i}, &res); err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if res.N != i {
				t.Errorf("call %d got %d", i, res.N)
			}
		}(i)
	}
	wg.Wait()
}

// TestFetchInterceptionRoundTrip exercises the taint-injection control
// path: a blocking "navigate" handler waits for the client to continue a
// paused request with an extra header, which must not deadlock the
// protocol.
func TestFetchInterceptionRoundTrip(t *testing.T) {
	client, srv := testRig(t)

	type pausedReq struct {
		id      string
		headers chan []HeaderEntry
	}
	var pendingMu sync.Mutex
	pending := map[string]*pausedReq{}

	srv.Register(MethodFetchEnable, func(json.RawMessage) (any, error) { return nil, nil })
	srv.Register(MethodFetchContinue, func(raw json.RawMessage) (any, error) {
		var p ContinueParams
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, err
		}
		pendingMu.Lock()
		pr, ok := pending[p.RequestID]
		pendingMu.Unlock()
		if !ok {
			return nil, fmt.Errorf("unknown request %s", p.RequestID)
		}
		pr.headers <- p.Headers
		return nil, nil
	})
	// The "engine": emits requestPaused and blocks until continued.
	srv.Register(MethodPageNavigate, func(json.RawMessage) (any, error) {
		pr := &pausedReq{id: "req-1", headers: make(chan []HeaderEntry, 1)}
		pendingMu.Lock()
		pending[pr.id] = pr
		pendingMu.Unlock()
		srv.Emit(EventRequestPaused, RequestPausedParams{
			RequestID: pr.id,
			Request: RequestPayload{
				URL: "https://example.com/", Method: "GET",
				Headers: map[string]string{"User-Agent": "sim"},
			},
		})
		select {
		case hs := <-pr.headers:
			for _, h := range hs {
				if h.Name == "x-panoptes-taint" {
					return NavigateResult{FrameID: "f", LoadTimeMs: 10}, nil
				}
			}
			return nil, fmt.Errorf("taint header missing")
		case <-time.After(5 * time.Second):
			return nil, fmt.Errorf("interception timed out")
		}
	})

	if err := client.Call(MethodFetchEnable, nil, nil); err != nil {
		t.Fatal(err)
	}
	client.On(EventRequestPaused, func(raw json.RawMessage) {
		var p RequestPausedParams
		if err := json.Unmarshal(raw, &p); err != nil {
			t.Error(err)
			return
		}
		headers := []HeaderEntry{{Name: "x-panoptes-taint", Value: "1"}}
		for k, v := range p.Request.Headers {
			headers = append(headers, HeaderEntry{Name: k, Value: v})
		}
		// Continue from a fresh goroutine: On handlers run on the read
		// loop, and continueRequest needs the read loop for its response.
		go func() {
			if err := client.Call(MethodFetchContinue, ContinueParams{
				RequestID: p.RequestID, Headers: headers,
			}, nil); err != nil {
				t.Error(err)
			}
		}()
	})

	var res NavigateResult
	if err := client.CallTimeout(MethodPageNavigate, NavigateParams{URL: "https://example.com/"}, &res, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if res.FrameID != "f" {
		t.Fatalf("res = %+v", res)
	}
}

func TestCallAfterClose(t *testing.T) {
	client, _ := testRig(t)
	client.Close()
	time.Sleep(50 * time.Millisecond)
	if err := client.Call("Browser.getVersion", nil, nil); err == nil {
		t.Fatal("call on closed client succeeded")
	}
}

func TestServerHasClient(t *testing.T) {
	client, srv := testRig(t)
	srv.Register("X.ping", func(json.RawMessage) (any, error) { return nil, nil })
	if err := client.Call("X.ping", nil, nil); err != nil {
		t.Fatal(err)
	}
	if !srv.HasClient() {
		t.Fatal("HasClient false with live client")
	}
}

func TestErrorType(t *testing.T) {
	e := &Error{Code: -32000, Message: "boom"}
	if e.Error() == "" {
		t.Fatal("empty error string")
	}
}
