package sink

import (
	"testing"
	"time"
)

// BenchmarkSinkThroughput pushes a fixed block of flows per iteration
// into a deliberately slow sink and reports sustained flows/sec plus
// the in-flight high-water mark. The acceptance property is bounded
// memory: under both policies the peak queue depth must plateau at the
// configured bound (queue + the batch being published + the block-mode
// batch waiting in send) no matter how fast the producer runs.
func BenchmarkSinkThroughput(b *testing.B) {
	const (
		flowsPerIter = 5000
		batchSize    = 50
		queue        = 4
	)
	for _, policy := range []Policy{PolicyDrop, PolicyBlock} {
		b.Run(string(policy), func(b *testing.B) {
			mem := NewMemorySink()
			mem.Delay = 100 * time.Microsecond // slow backend: ~10k batches/s ceiling
			e := NewExporter(Config{
				BatchSize: batchSize,
				Queue:     queue,
				Policy:    policy,
				Now:       newFakeClock().Now,
			}, mem)
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			var id int64
			for i := 0; i < b.N; i++ {
				for j := 0; j < flowsPerIter; j++ {
					id++
					e.Observe(flow(id, 0))
				}
			}
			e.Drain()
			elapsed := time.Since(start)
			b.StopTimer()
			if err := e.Close(); err != nil {
				b.Fatal(err)
			}
			st := e.Stats()[0]
			if bound := queue + 2; st.PeakQueue > bound {
				b.Fatalf("queue depth did not plateau: peak %d > bound %d (policy %s)", st.PeakQueue, bound, policy)
			}
			if policy == PolicyBlock && st.Dropped != 0 {
				b.Fatalf("block policy dropped %d events", st.Dropped)
			}
			if st.Published+st.Dropped != int64(b.N)*flowsPerIter {
				b.Fatalf("accounting: %d published + %d dropped != %d offered",
					st.Published, st.Dropped, int64(b.N)*flowsPerIter)
			}
			total := float64(b.N) * flowsPerIter
			b.ReportMetric(total/elapsed.Seconds(), "flows/sec")
			b.ReportMetric(float64(st.PeakQueue), "peak_queue_depth")
			b.Logf("policy=%s published=%d dropped=%d peak=%d", policy, st.Published, st.Dropped, st.PeakQueue)
		})
	}
}
