package sink

import (
	"fmt"
	"strings"
)

// ParseSpecs builds publishers from a -sink flag value: a comma-joined
// list of sink specs — "http:URL" (NDJSON bulk POST), "file:DIR"
// (rotating gzip JSONL segments), "mem" (in-memory, for smoke runs).
// An empty value means no sinks.
func ParseSpecs(specs string) ([]Publisher, error) {
	var out []Publisher
	for _, item := range strings.Split(specs, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kind, arg, _ := strings.Cut(item, ":")
		switch kind {
		case "http":
			if arg == "" {
				return nil, fmt.Errorf("sink: http spec needs a URL (http:URL)")
			}
			out = append(out, NewHTTPSink(arg))
		case "file":
			if arg == "" {
				return nil, fmt.Errorf("sink: file spec needs a directory (file:DIR)")
			}
			out = append(out, NewFileSink(arg))
		case "mem":
			if arg != "" {
				return nil, fmt.Errorf("sink: mem spec takes no argument")
			}
			out = append(out, NewMemorySink())
		default:
			return nil, fmt.Errorf("sink: unknown sink spec %q (want http:URL, file:DIR or mem)", item)
		}
	}
	return out, nil
}
