package sink

import (
	"compress/gzip"
	"fmt"
	"os"
	"path/filepath"
)

// FileSink writes batches as gzip-compressed JSONL segment files in a
// directory, rotating to a fresh segment once the current one's
// compressed size passes RotateBytes. It supersedes the raw
// capture.Store spill path as the durable flow archive: the exporter
// feeding it already enforces attempt quarantine, so a segment only
// ever holds committed history.
type FileSink struct {
	// Dir holds the segments, created on first publish if missing.
	Dir string
	// RotateBytes rotates after the batch that pushes a segment's
	// compressed size past it (default 8MB). Rotation is checked between
	// batches, never mid-batch, so each batch lands whole in one file.
	RotateBytes int64

	f       *os.File
	zw      *gzip.Writer
	n       int64 // compressed bytes in the current segment
	segment int
}

// NewFileSink returns a file sink rotating segments under dir.
func NewFileSink(dir string) *FileSink {
	return &FileSink{Dir: dir}
}

// Name implements Publisher.
func (fs *FileSink) Name() string { return "file" }

// Publish implements Publisher: append the batch to the current
// segment, flush the compressor so the bytes are recoverable after a
// crash, then rotate if the segment is over budget.
func (fs *FileSink) Publish(batch []Envelope) error {
	buf := encodePool.Get(0)
	defer encodePool.Put(buf)
	if err := AppendNDJSON(buf, batch); err != nil {
		return err
	}
	if fs.zw == nil {
		if err := fs.open(); err != nil {
			return err
		}
	}
	if _, err := fs.zw.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("sink: file write: %w", err)
	}
	if err := fs.zw.Flush(); err != nil {
		return fmt.Errorf("sink: file flush: %w", err)
	}
	limit := fs.RotateBytes
	if limit <= 0 {
		limit = 8 << 20
	}
	if fs.compressedSize() >= limit {
		return fs.closeSegment()
	}
	return nil
}

// Close implements Publisher: seal the current segment.
func (fs *FileSink) Close() error { return fs.closeSegment() }

// SegmentPaths lists the segment files written so far, in order.
func (fs *FileSink) SegmentPaths() []string {
	var out []string
	for i := 0; i < fs.segment; i++ {
		out = append(out, fs.segmentPath(i))
	}
	if fs.f != nil {
		out = append(out, fs.f.Name())
	}
	return out
}

func (fs *FileSink) segmentPath(i int) string {
	return filepath.Join(fs.Dir, fmt.Sprintf("flows-%05d.jsonl.gz", i))
}

func (fs *FileSink) open() error {
	if err := os.MkdirAll(fs.Dir, 0o755); err != nil {
		return fmt.Errorf("sink: file dir: %w", err)
	}
	f, err := os.Create(fs.segmentPath(fs.segment))
	if err != nil {
		return fmt.Errorf("sink: file segment: %w", err)
	}
	fs.f = f
	fs.zw = gzip.NewWriter(f)
	fs.n = 0
	return nil
}

func (fs *FileSink) compressedSize() int64 {
	if fs.f == nil {
		return 0
	}
	if st, err := fs.f.Stat(); err == nil {
		fs.n = st.Size()
	}
	return fs.n
}

func (fs *FileSink) closeSegment() error {
	if fs.zw == nil {
		return nil
	}
	zerr := fs.zw.Close()
	ferr := fs.f.Close()
	fs.zw, fs.f = nil, nil
	fs.segment++
	if zerr != nil {
		return fmt.Errorf("sink: file segment close: %w", zerr)
	}
	if ferr != nil {
		return fmt.Errorf("sink: file segment close: %w", ferr)
	}
	return nil
}
