package sink

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Doer is the slice of *http.Client the HTTP sink needs; tests inject
// stub transports through it.
type Doer interface {
	Do(req *http.Request) (*http.Response, error)
}

// HTTPSink bulk-indexes batches as NDJSON POSTs, the shape Elastic-style
// bulk endpoints and plain collectors both accept. Transient failures
// (network errors, 5xx) retry with doubling backoff up to MaxRetries;
// a 4xx is permanent — the payload will not get better — and fails the
// batch immediately so the exporter's breaker sees it.
type HTTPSink struct {
	// URL receives the POSTs.
	URL string
	// Client defaults to a *http.Client with a 10s timeout.
	Client Doer
	// MaxRetries is the number of re-sends after the first attempt
	// (default 3).
	MaxRetries int
	// Backoff is the first retry's sleep, doubling per retry (default
	// 50ms). Retries sleep on the wall clock: they happen on the sink's
	// dispatcher goroutine, which is invisible to the virtual clock.
	Backoff time.Duration
	// Sleep is swappable for tests (default time.Sleep).
	Sleep func(time.Duration)
}

// NewHTTPSink returns an HTTP bulk sink posting to url with defaults.
func NewHTTPSink(url string) *HTTPSink {
	return &HTTPSink{URL: url}
}

// Name implements Publisher.
func (h *HTTPSink) Name() string { return "http" }

// Publish implements Publisher: one NDJSON POST per batch, retried on
// transient failure.
func (h *HTTPSink) Publish(batch []Envelope) error {
	buf := encodePool.Get(0)
	defer encodePool.Put(buf)
	if err := AppendNDJSON(buf, batch); err != nil {
		return err
	}
	body := buf.Bytes()
	client := h.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	sleep := h.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	retries := h.MaxRetries
	if retries <= 0 {
		retries = 3
	}
	backoff := h.Backoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = h.post(client, body)
		if lastErr == nil {
			return nil
		}
		var perm *permanentError
		if ok := asPermanent(lastErr, &perm); ok {
			return perm.err
		}
		if attempt >= retries {
			return fmt.Errorf("sink: http publish failed after %d attempts: %w", attempt+1, lastErr)
		}
		sleep(backoff)
		backoff *= 2
	}
}

func (h *HTTPSink) post(client Doer, body []byte) error {
	req, err := http.NewRequest(http.MethodPost, h.URL, bytes.NewReader(body))
	if err != nil {
		return &permanentError{err: err}
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return &permanentError{err: fmt.Errorf("sink: http publish rejected: %s", resp.Status)}
	default:
		return fmt.Errorf("sink: http publish: %s", resp.Status)
	}
}

// Close implements Publisher; the HTTP sink holds no resources.
func (h *HTTPSink) Close() error { return nil }

// permanentError wraps a failure retrying cannot fix (4xx, bad request
// construction).
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }

func asPermanent(err error, out **permanentError) bool {
	p, ok := err.(*permanentError)
	if ok {
		*out = p
	}
	return ok
}
