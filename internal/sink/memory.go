package sink

import (
	"encoding/json"
	"sync"
	"time"

	"panoptes/internal/capture"
)

// MemorySink keeps everything published to it, for tests and benches.
// Delay simulates a slow backend (the sink-throughput bench uses it to
// force queue pressure); Fail makes the next publishes fail to drive a
// breaker open.
type MemorySink struct {
	// NameTag is the sink name (default "mem") so tests can register
	// several memory sinks side by side.
	NameTag string
	// Delay is slept (wall clock, on the dispatcher goroutine) before
	// each publish is accepted.
	Delay time.Duration

	mu      sync.Mutex
	fail    int
	batches [][]Envelope
	flows   []*capture.Flow
	deltas  map[string]json.RawMessage
	closed  bool
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink {
	return &MemorySink{deltas: make(map[string]json.RawMessage)}
}

// Name implements Publisher.
func (m *MemorySink) Name() string {
	if m.NameTag != "" {
		return m.NameTag
	}
	return "mem"
}

// FailNext makes the next n publishes return an error.
func (m *MemorySink) FailNext(n int) {
	m.mu.Lock()
	m.fail = n
	m.mu.Unlock()
}

// Publish implements Publisher.
func (m *MemorySink) Publish(batch []Envelope) error {
	if m.Delay > 0 {
		time.Sleep(m.Delay)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail > 0 {
		m.fail--
		return errInjectedFailure
	}
	cp := make([]Envelope, len(batch))
	copy(cp, batch)
	m.batches = append(m.batches, cp)
	for _, env := range cp {
		switch env.Type {
		case TypeFlow:
			env.Flow.Ref() // the sink retains the record beyond the batch
			m.flows = append(m.flows, env.Flow)
		case TypeDelta:
			if m.deltas == nil {
				m.deltas = make(map[string]json.RawMessage)
			}
			m.deltas[env.Analyzer] = env.Payload
		}
	}
	return nil
}

// Close implements Publisher.
func (m *MemorySink) Close() error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	return nil
}

// Closed reports whether Close ran.
func (m *MemorySink) Closed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Batches returns the published batches in arrival order.
func (m *MemorySink) Batches() [][]Envelope {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][]Envelope, len(m.batches))
	copy(out, m.batches)
	return out
}

// Flows returns every published flow in export order.
func (m *MemorySink) Flows() []*capture.Flow {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*capture.Flow, len(m.flows))
	copy(out, m.flows)
	return out
}

// FlowIDs returns the set of published flow IDs.
func (m *MemorySink) FlowIDs() map[int64]bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make(map[int64]bool, len(m.flows))
	for _, f := range m.flows {
		ids[f.ID] = true
	}
	return ids
}

// Deltas returns the analyzer deltas received, keyed by analyzer name.
func (m *MemorySink) Deltas() map[string]json.RawMessage {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]json.RawMessage, len(m.deltas))
	for k, v := range m.deltas {
		out[k] = v
	}
	return out
}

type injectedFailure struct{}

func (injectedFailure) Error() string { return "sink: injected memory-sink failure" }

var errInjectedFailure = injectedFailure{}
