// Package sink is the export plane of the measurement stack: the egress
// path that moves committed flows and end-of-campaign analyzer deltas
// out of the process into durable backends, without unbounding memory
// and without ever leaking a quarantined attempt.
//
// An Exporter implements capture.Tap and rides the commit stream next
// to the streaming analysis pipeline. Flows tagged with a navigation
// attempt park in a pending buffer until the attempt seals; a retracted
// attempt's flows are dropped before they ever reach a batch, so the
// export stream carries exactly the committed history the analyses saw
// (the same quarantine contract the capture spill path honours).
//
// Sealed events accumulate into batches flushed on two triggers — batch
// size and virtual-clock age — and each registered Publisher gets its
// own bounded in-flight queue, dispatcher goroutine and circuit breaker
// (internal/breaker, the PR 3 machinery hoisted out of core). A full
// queue either sheds the batch (PolicyDrop, counted in obs) or
// backpressures the committing goroutine (PolicyBlock); either way
// resident export memory is bounded by batch × queue × sinks. One slow
// or failing backend degrades alone: its breaker opens, its queue
// drains by dropping, and the other sinks keep publishing.
package sink

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"panoptes/internal/breaker"
	"panoptes/internal/bytepool"
	"panoptes/internal/capture"
	"panoptes/internal/obs"
)

func init() {
	obs.Default.Help("sink_published_total", "Events successfully published to each export sink.")
	obs.Default.Help("sink_batch_flush_total", "Export batches flushed, by trigger (size, age, manual, final).")
	obs.Default.Help("sink_queue_depth", "Export batches in flight (queued or publishing) per sink.")
	obs.Default.Help("sink_dropped_total", "Events dropped before reaching a sink backend, by sink and reason (queue_full, breaker_open, publish_error).")
	obs.Default.Help("sink_breaker_open_total", "Per-sink circuit-breaker open transitions.")
	obs.Default.Help("sink_deduped_total", "Events skipped because a resumed campaign had already exported them before the checkpoint.")
}

// Envelope is one export event: a committed flow or an analyzer delta.
// Seq is the exporter-local export sequence — monotonically increasing
// in enqueue order, so downstream consumers can re-establish commit
// order across rotated files or bulk responses.
type Envelope struct {
	Seq      uint64          `json:"seq"`
	Type     string          `json:"type"` // "flow" or "delta"
	Flow     *capture.Flow   `json:"flow,omitempty"`
	Analyzer string          `json:"analyzer,omitempty"`
	Payload  json.RawMessage `json:"payload,omitempty"`
}

// Event types.
const (
	TypeFlow  = "flow"
	TypeDelta = "delta"
)

// Publisher is one export backend. Publish receives a sealed batch in
// export order and returns nil only when the whole batch is durably
// accepted; transient-failure retries are the publisher's own business
// (the HTTP sink retries with backoff), the exporter's breaker sees
// only the final verdict. Publish is called from a single dispatcher
// goroutine per registered sink.
type Publisher interface {
	Name() string
	Publish(batch []Envelope) error
	Close() error
}

// Policy says what a full in-flight queue does to the producer.
type Policy string

// Queue policies for Config.Policy and the -sink-policy flag.
const (
	PolicyDrop  Policy = "drop"  // shed the batch, count it, keep committing
	PolicyBlock Policy = "block" // backpressure the committing goroutine
)

// ParsePolicy maps the -sink-policy flag value to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyDrop, PolicyBlock:
		return Policy(s), nil
	case "":
		return PolicyDrop, nil
	}
	return "", fmt.Errorf("sink: unknown queue policy %q (want drop or block)", s)
}

// Config sizes an Exporter. The zero value takes every default.
type Config struct {
	// BatchSize flushes a batch once it holds this many events
	// (default 64).
	BatchSize int
	// MaxAge flushes a non-empty batch whose oldest event is at least
	// this old on the exporter's clock (default 2s). The age trigger is
	// evaluated when events arrive, so it needs no timer goroutine and
	// stays deterministic under the virtual clock.
	MaxAge time.Duration
	// Queue bounds the in-flight batches per sink (default 8). Together
	// with BatchSize it caps export memory per sink.
	Queue int
	// Policy is what a full queue does (default PolicyDrop).
	Policy Policy
	// BreakerThreshold consecutive failed publishes open a sink's
	// breaker for BreakerCooldown (defaults 3 and 30s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Now is the exporter's clock: the virtual clock inside the
	// testbed, time.Now in standalone binaries (the default).
	Now func() time.Time
}

func (c *Config) defaults() {
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.MaxAge <= 0 {
		c.MaxAge = 2 * time.Second
	}
	if c.Queue <= 0 {
		c.Queue = 8
	}
	if c.Policy == "" {
		c.Policy = PolicyDrop
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// sinkState is one registered backend: its queue, dispatcher-side
// accounting and breaker. Local atomic-free counters (guarded by mu)
// back Stats; the obs series back /metrics and the campaign summary.
type sinkState struct {
	pub Publisher
	br  *breaker.Breaker
	ch  chan []Envelope

	mu        sync.Mutex
	cond      *sync.Cond
	inflight  int // batches admitted and not yet done (queued, blocked or publishing)
	queued    int // batches admitted and not yet popped by the dispatcher
	peak      int
	published int64
	dropped   int64
	opens     int64

	obsPublished   *obs.Counter
	obsDepth       *obs.Gauge
	obsOpens       *obs.Counter
	obsDropQueue   *obs.Counter
	obsDropBreaker *obs.Counter
	obsDropError   *obs.Counter
}

// SinkStats is one sink's lifetime accounting, for tests and benches
// (the obs registry is process-global and double-counts across worlds).
type SinkStats struct {
	Name         string
	Published    int64 // events durably accepted by the backend
	Dropped      int64 // events shed (queue full, breaker open, publish error)
	BreakerOpens int64
	PeakQueue    int // high-water mark of in-flight batches
}

// Exporter receives the commit stream, quarantines by attempt, batches
// sealed events and fans batches out to every registered sink. It
// implements capture.Tap. Observe/Seal/Retract are safe for concurrent
// use from the committing goroutines.
type Exporter struct {
	cfg Config

	mu         sync.Mutex
	pending    map[int64][]*capture.Flow // parked until SealAttempt
	batch      []Envelope
	batchStart time.Time
	seq        uint64
	seen       map[int64]bool // flow IDs exported before a resume boundary
	closed     bool

	// faultHook has its own lock: dispatchers read it while a
	// block-policy producer may hold e.mu waiting for queue room, so
	// guarding it with e.mu would deadlock.
	hookMu    sync.Mutex
	faultHook func(sink string) error

	sinks   []*sinkState
	wg      sync.WaitGroup
	flushes map[string]*obs.Counter
	deduped *obs.Counter
}

// NewExporter builds an exporter over the given sinks and starts one
// dispatcher goroutine per sink. Close releases them.
func NewExporter(cfg Config, pubs ...Publisher) *Exporter {
	cfg.defaults()
	e := &Exporter{
		cfg:     cfg,
		pending: make(map[int64][]*capture.Flow),
		deduped: obs.Default.Counter("sink_deduped_total"),
		flushes: map[string]*obs.Counter{
			"size":   obs.Default.Counter("sink_batch_flush_total", "trigger", "size"),
			"age":    obs.Default.Counter("sink_batch_flush_total", "trigger", "age"),
			"manual": obs.Default.Counter("sink_batch_flush_total", "trigger", "manual"),
			"final":  obs.Default.Counter("sink_batch_flush_total", "trigger", "final"),
		},
	}
	for _, p := range pubs {
		s := &sinkState{
			pub:            p,
			br:             breaker.New(cfg.BreakerThreshold, cfg.BreakerCooldown),
			ch:             make(chan []Envelope, cfg.Queue),
			obsPublished:   obs.Default.Counter("sink_published_total", "sink", p.Name()),
			obsDepth:       obs.Default.Gauge("sink_queue_depth", "sink", p.Name()),
			obsOpens:       obs.Default.Counter("sink_breaker_open_total", "sink", p.Name()),
			obsDropQueue:   obs.Default.Counter("sink_dropped_total", "sink", p.Name(), "reason", "queue_full"),
			obsDropBreaker: obs.Default.Counter("sink_dropped_total", "sink", p.Name(), "reason", "breaker_open"),
			obsDropError:   obs.Default.Counter("sink_dropped_total", "sink", p.Name(), "reason", "publish_error"),
		}
		s.cond = sync.NewCond(&s.mu)
		e.sinks = append(e.sinks, s)
		e.wg.Add(1)
		go e.run(s)
	}
	return e
}

// SetFaultHook installs an injectable publish fault consulted before
// every batch publish (faultsim.Injector.SinkFault). A non-nil error
// fails the batch exactly as a backend error would — counted, fed to
// the sink's breaker — without the backend seeing it. Pass nil to
// uninstall. Install before traffic flows.
func (e *Exporter) SetFaultHook(h func(sink string) error) {
	e.hookMu.Lock()
	e.faultHook = h
	e.hookMu.Unlock()
}

// SeedExported marks flow IDs as already exported by the process that
// wrote a checkpoint: when the campaign replays the checkpoint's flows
// through the commit tap on resume, the exporter skips them instead of
// double-publishing. Call before the resumed campaign re-adds flows.
func (e *Exporter) SeedExported(ids []int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.seen == nil {
		e.seen = make(map[int64]bool, len(ids))
	}
	for _, id := range ids {
		e.seen[id] = true
	}
}

// Observe receives one committed flow from the capture store. Flows
// tagged with a navigation attempt park until the attempt seals;
// untagged flows (idle experiment, checkpoint replays, standalone
// proxy) go straight to the batcher.
func (e *Exporter) Observe(f *capture.Flow) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	if e.seen != nil && e.seen[f.ID] {
		e.mu.Unlock()
		e.deduped.Inc()
		return
	}
	// The exporter's reference: parked flows hold it until Seal moves
	// them into a batch or Retract/Close drops them; batched flows hold
	// it until every sink dispatcher is done with the batch.
	f.Ref()
	if f.Attempt != 0 {
		e.pending[f.Attempt] = append(e.pending[f.Attempt], f)
		e.mu.Unlock()
		return
	}
	e.enqueueFlowLocked(f)
	e.mu.Unlock()
}

// Seal commits an attempt: its parked flows enter the batcher in the
// order they were captured.
func (e *Exporter) Seal(attempt int64) {
	e.mu.Lock()
	flows := e.pending[attempt]
	delete(e.pending, attempt)
	if !e.closed {
		for _, f := range flows {
			e.enqueueFlowLocked(f)
		}
	}
	e.mu.Unlock()
}

// Retract quarantines an attempt: its parked flows are dropped before
// ever reaching a batch or a sink. This is the load-bearing invariant —
// a retracted attempt must never appear in any export stream.
func (e *Exporter) Retract(attempt int64) {
	e.mu.Lock()
	flows := e.pending[attempt]
	delete(e.pending, attempt)
	e.mu.Unlock()
	for _, f := range flows {
		f.Release()
	}
}

// Pending returns the number of flows parked for in-flight attempts.
func (e *Exporter) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, fs := range e.pending {
		n += len(fs)
	}
	return n
}

// PublishDeltas enqueues one delta envelope per analyzer result, in
// analyzer-name order (deterministic export streams). The campaign
// runner calls it once at end of campaign with the streaming pipeline's
// finalized results.
func (e *Exporter) PublishDeltas(results map[string]any) error {
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		payload, err := json.Marshal(results[name])
		if err != nil {
			return fmt.Errorf("sink: marshal %s delta: %w", name, err)
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return errors.New("sink: exporter closed")
		}
		e.enqueueLocked(Envelope{Type: TypeDelta, Analyzer: name, Payload: payload})
		e.mu.Unlock()
	}
	return nil
}

// enqueueFlowLocked wraps a committed flow and feeds the batcher.
func (e *Exporter) enqueueFlowLocked(f *capture.Flow) {
	e.enqueueLocked(Envelope{Type: TypeFlow, Flow: f})
}

// enqueueLocked stamps the export sequence, applies the age trigger,
// appends, and applies the size trigger. Callers hold e.mu.
func (e *Exporter) enqueueLocked(env Envelope) {
	now := e.cfg.Now()
	if len(e.batch) > 0 && now.Sub(e.batchStart) >= e.cfg.MaxAge {
		e.flushLocked("age")
	}
	if len(e.batch) == 0 {
		e.batchStart = now
	}
	e.seq++
	env.Seq = e.seq
	e.batch = append(e.batch, env)
	if len(e.batch) >= e.cfg.BatchSize {
		e.flushLocked("size")
	}
}

// flushLocked hands the current batch to every sink's queue. With
// PolicyBlock a full queue blocks here — the committing goroutine
// stalls, which is exactly the backpressure the policy promises. With
// PolicyDrop the batch is shed for that sink only and counted.
func (e *Exporter) flushLocked(trigger string) {
	if len(e.batch) == 0 {
		return
	}
	batch := e.batch
	e.batch = nil
	e.flushes[trigger].Inc()
	// The batch slice is shared by every sink's queue. Multiply the one
	// flow reference taken at Observe out to one per sink — each sink's
	// terminal path (delivered, shed on a full queue, dropped by the
	// breaker or a publish error) releases exactly its own share.
	for i := 1; i < len(e.sinks); i++ {
		for j := range batch {
			batch[j].Flow.Ref()
		}
	}
	if len(e.sinks) == 0 {
		releaseFlows(batch)
		return
	}
	for _, s := range e.sinks {
		switch e.cfg.Policy {
		case PolicyBlock:
			s.admit()
			s.ch <- batch
		default:
			if s.tryAdmit() {
				s.ch <- batch
			} else {
				s.drop(len(batch), s.obsDropQueue)
				releaseFlows(batch)
			}
		}
	}
}

// releaseFlows drops one reference per flow event in a batch (delta
// envelopes carry no flow; Release is nil-safe).
func releaseFlows(batch []Envelope) {
	for i := range batch {
		batch[i].Flow.Release()
	}
}

// Flush pushes the current partial batch out (trigger "manual").
func (e *Exporter) Flush() {
	e.mu.Lock()
	e.flushLocked("manual")
	e.mu.Unlock()
}

// Drain flushes the current batch and blocks until every sink's queue
// is empty and no publish is in flight. Call it before reading a test
// sink or printing the end-of-campaign summary.
func (e *Exporter) Drain() {
	e.Flush()
	for _, s := range e.sinks {
		s.mu.Lock()
		for s.inflight > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
	}
}

// Close flushes the remainder (trigger "final"), drains the queues,
// stops the dispatchers and closes every publisher. Further events are
// discarded. Safe to call more than once.
func (e *Exporter) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.flushLocked("final")
	for _, flows := range e.pending {
		for _, f := range flows {
			f.Release()
		}
	}
	e.pending = nil
	e.closed = true
	e.mu.Unlock()

	for _, s := range e.sinks {
		close(s.ch)
	}
	e.wg.Wait()
	var firstErr error
	for _, s := range e.sinks {
		if err := s.pub.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("sink: close %s: %w", s.pub.Name(), err)
		}
	}
	return firstErr
}

// Stats returns per-sink lifetime accounting in registration order.
func (e *Exporter) Stats() []SinkStats {
	out := make([]SinkStats, len(e.sinks))
	for i, s := range e.sinks {
		s.mu.Lock()
		out[i] = SinkStats{
			Name:         s.pub.Name(),
			Published:    s.published,
			Dropped:      s.dropped,
			BreakerOpens: s.opens,
			PeakQueue:    s.peak,
		}
		s.mu.Unlock()
	}
	return out
}

// run is one sink's dispatcher: it owns the only receive side of the
// queue, so batches publish in export order per sink.
func (e *Exporter) run(s *sinkState) {
	defer e.wg.Done()
	for batch := range s.ch {
		s.mu.Lock()
		s.queued--
		s.mu.Unlock()
		e.deliver(s, batch)
	}
}

// deliver publishes one batch through the sink's breaker and the
// injectable fault hook. A failed publish (the publisher has already
// done its own retries) loses the batch — the bounded-memory contract
// beats at-least-once here; re-export is a resume/replay concern.
func (e *Exporter) deliver(s *sinkState, batch []Envelope) {
	defer s.done()
	defer releaseFlows(batch) // this sink's share, whatever the outcome
	if !s.br.Allow(e.cfg.Now()) {
		s.drop(len(batch), s.obsDropBreaker)
		return
	}
	e.hookMu.Lock()
	hook := e.faultHook
	e.hookMu.Unlock()
	var err error
	if hook != nil {
		err = hook(s.pub.Name())
	}
	if err == nil {
		err = s.pub.Publish(batch)
	}
	if s.br.Record(err == nil, e.cfg.Now()) {
		s.obsOpens.Inc()
		s.mu.Lock()
		s.opens++
		s.mu.Unlock()
	}
	if err != nil {
		s.drop(len(batch), s.obsDropError)
		return
	}
	s.mu.Lock()
	s.published += int64(len(batch))
	s.mu.Unlock()
	s.obsPublished.Add(int64(len(batch)))
}

// admit reserves an in-flight slot unconditionally (block policy); the
// subsequent channel send may block, which is the policy's promise.
func (s *sinkState) admit() {
	s.mu.Lock()
	s.inflight++
	s.queued++
	if s.inflight > s.peak {
		s.peak = s.inflight
	}
	s.mu.Unlock()
	s.obsDepth.Inc()
}

// tryAdmit reserves a slot only when the channel has room (drop
// policy). queued tracks channel occupancy (admitted minus popped) and
// only the single producer under e.mu increments it, so admitting while
// queued < cap guarantees the send below never blocks.
func (s *sinkState) tryAdmit() bool {
	s.mu.Lock()
	if s.queued >= cap(s.ch) {
		s.mu.Unlock()
		return false
	}
	s.inflight++
	s.queued++
	if s.inflight > s.peak {
		s.peak = s.inflight
	}
	s.mu.Unlock()
	s.obsDepth.Inc()
	return true
}

// done releases an in-flight slot after a batch is handled.
func (s *sinkState) done() {
	s.mu.Lock()
	s.inflight--
	s.cond.Broadcast()
	s.mu.Unlock()
	s.obsDepth.Dec()
}

// drop counts n shed events against the sink.
func (s *sinkState) drop(n int, c *obs.Counter) {
	s.mu.Lock()
	s.dropped += int64(n)
	s.mu.Unlock()
	c.Add(int64(n))
}

// encodePool recycles the NDJSON encode buffers the HTTP and file sinks
// serialise batches into — per-batch encoding was the exporter's
// dominant allocation (one growth chain plus one line buffer per event).
var encodePool = bytepool.New("sink_encode", 4<<10, 64<<10, 1<<20)

// AppendNDJSON renders a batch as newline-delimited JSON into buf — the
// wire format shared by the HTTP bulk sink and the file sink.
// json.Encoder terminates each value with '\n', which is exactly the
// NDJSON framing.
func AppendNDJSON(buf *bytes.Buffer, batch []Envelope) error {
	enc := json.NewEncoder(buf)
	for i := range batch {
		if err := enc.Encode(&batch[i]); err != nil {
			return fmt.Errorf("sink: encode event seq %d: %w", batch[i].Seq, err)
		}
	}
	return nil
}

// EncodeNDJSON renders a batch as newline-delimited JSON in a fresh
// allocation. Hot paths use AppendNDJSON with a pooled buffer instead.
func EncodeNDJSON(batch []Envelope) ([]byte, error) {
	var buf bytes.Buffer
	if err := AppendNDJSON(&buf, batch); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
