package sink

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"panoptes/internal/capture"
)

var testEpoch = time.Date(2023, time.May, 12, 9, 0, 0, 0, time.UTC)

// fakeClock is a hand-cranked clock for exercising the age trigger.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: testEpoch} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func flow(id int64, attempt int64) *capture.Flow {
	return &capture.Flow{ID: id, Attempt: attempt, Method: "GET", Scheme: "https", Host: "example.org", Path: "/"}
}

func TestBatchSizeTrigger(t *testing.T) {
	mem := NewMemorySink()
	e := NewExporter(Config{BatchSize: 3, Now: newFakeClock().Now}, mem)
	defer e.Close()
	for i := int64(1); i <= 7; i++ {
		e.Observe(flow(i, 0))
	}
	e.Drain() // manual-flushes the 1-event remainder
	batches := mem.Batches()
	if len(batches) != 3 {
		t.Fatalf("7 events, batch size 3: want 2 size batches + 1 drained remainder, got %d", len(batches))
	}
	if len(batches[0]) != 3 || len(batches[1]) != 3 || len(batches[2]) != 1 {
		t.Fatalf("batch sizes %d/%d/%d, want 3/3/1", len(batches[0]), len(batches[1]), len(batches[2]))
	}
	e.Close()
	if got := len(mem.Flows()); got != 7 {
		t.Fatalf("after close: want all 7 flows published, got %d", got)
	}
}

func TestAgeTrigger(t *testing.T) {
	clk := newFakeClock()
	mem := NewMemorySink()
	e := NewExporter(Config{BatchSize: 100, MaxAge: 2 * time.Second, Now: clk.Now}, mem)
	defer e.Close()
	e.Observe(flow(1, 0))
	clk.Advance(3 * time.Second)
	// The age trigger fires on arrival of the next event: the stale
	// batch flushes first, the new event starts a fresh one.
	e.Observe(flow(2, 0))
	e.Drain() // manual-flushes the fresh batch holding flow 2
	batches := mem.Batches()
	if len(batches) != 2 || len(batches[0]) != 1 || batches[0][0].Flow.ID != 1 {
		t.Fatalf("want the stale batch (flow 1) age-flushed on flow 2's arrival, got %+v", batches)
	}
	if len(batches[1]) != 1 || batches[1][0].Flow.ID != 2 {
		t.Fatalf("want flow 2 in its own fresh batch, got %+v", batches[1])
	}
}

func TestSequenceIsMonotonic(t *testing.T) {
	mem := NewMemorySink()
	e := NewExporter(Config{BatchSize: 2, Now: newFakeClock().Now}, mem)
	for i := int64(1); i <= 6; i++ {
		e.Observe(flow(i, 0))
	}
	e.Close()
	var last uint64
	for _, b := range mem.Batches() {
		for _, env := range b {
			if env.Seq <= last {
				t.Fatalf("sequence not monotonic: %d after %d", env.Seq, last)
			}
			last = env.Seq
		}
	}
	if last != 6 {
		t.Fatalf("want 6 sequenced events, last seq %d", last)
	}
}

func TestRetractedAttemptNeverReachesSink(t *testing.T) {
	mem := NewMemorySink()
	e := NewExporter(Config{BatchSize: 1, Now: newFakeClock().Now}, mem)
	e.Observe(flow(1, 7))
	e.Observe(flow(2, 7))
	e.Observe(flow(3, 8))
	if e.Pending() != 3 {
		t.Fatalf("want 3 parked flows, got %d", e.Pending())
	}
	e.Retract(7)
	e.Seal(8)
	e.Close()
	ids := mem.FlowIDs()
	if ids[1] || ids[2] {
		t.Fatalf("retracted attempt 7's flows leaked to the sink: %v", ids)
	}
	if !ids[3] {
		t.Fatalf("sealed attempt 8's flow missing from the sink: %v", ids)
	}
	if e.Pending() != 0 {
		t.Fatalf("want empty pending after seal/retract, got %d", e.Pending())
	}
}

func TestSealPreservesCaptureOrder(t *testing.T) {
	mem := NewMemorySink()
	e := NewExporter(Config{BatchSize: 100, Now: newFakeClock().Now}, mem)
	e.Observe(flow(10, 1))
	e.Observe(flow(11, 1))
	e.Observe(flow(12, 1))
	e.Seal(1)
	e.Close()
	flows := mem.Flows()
	if len(flows) != 3 {
		t.Fatalf("want 3 flows, got %d", len(flows))
	}
	for i, want := range []int64{10, 11, 12} {
		if flows[i].ID != want {
			t.Fatalf("flow %d: want ID %d, got %d", i, want, flows[i].ID)
		}
	}
}

func TestResumeDedupeByFlowID(t *testing.T) {
	mem := NewMemorySink()
	e := NewExporter(Config{BatchSize: 1, Now: newFakeClock().Now}, mem)
	e.SeedExported([]int64{1, 2})
	e.Observe(flow(1, 0)) // checkpoint replay: already exported pre-crash
	e.Observe(flow(2, 0))
	e.Observe(flow(3, 0)) // fresh flow
	e.Close()
	ids := mem.FlowIDs()
	if ids[1] || ids[2] {
		t.Fatalf("replayed checkpoint flows double-published: %v", ids)
	}
	if !ids[3] {
		t.Fatalf("fresh flow 3 missing: %v", ids)
	}
}

func TestDropPolicyShedsAndBoundsQueue(t *testing.T) {
	mem := NewMemorySink()
	mem.Delay = 20 * time.Millisecond
	e := NewExporter(Config{BatchSize: 1, Queue: 1, Policy: PolicyDrop, Now: newFakeClock().Now}, mem)
	for i := int64(1); i <= 50; i++ {
		e.Observe(flow(i, 0))
	}
	e.Drain()
	e.Close()
	st := e.Stats()[0]
	if st.Dropped == 0 {
		t.Fatalf("50 instant batches into a 20ms sink behind a 1-deep queue must shed: %+v", st)
	}
	if st.Published+st.Dropped != 50 {
		t.Fatalf("published %d + dropped %d != 50 offered", st.Published, st.Dropped)
	}
	// Bound: the queued batch plus the one being published.
	if st.PeakQueue > 2 {
		t.Fatalf("drop policy let the queue grow past its bound: peak %d", st.PeakQueue)
	}
}

func TestBlockPolicyDeliversEverything(t *testing.T) {
	mem := NewMemorySink()
	mem.Delay = time.Millisecond
	e := NewExporter(Config{BatchSize: 1, Queue: 1, Policy: PolicyBlock, Now: newFakeClock().Now}, mem)
	for i := int64(1); i <= 30; i++ {
		e.Observe(flow(i, 0))
	}
	e.Close()
	st := e.Stats()[0]
	if st.Published != 30 || st.Dropped != 0 {
		t.Fatalf("block policy must deliver all 30: %+v", st)
	}
	if st.PeakQueue > 3 {
		t.Fatalf("block policy queue bound exceeded: peak %d", st.PeakQueue)
	}
}

func TestFailingSinkDoesNotStallHealthyOne(t *testing.T) {
	bad := NewMemorySink()
	bad.NameTag = "bad"
	bad.FailNext(1 << 30)
	good := NewMemorySink()
	good.NameTag = "good"
	// Block policy: every batch is offered to both sinks, so "the healthy
	// sink receives all flows" is exact — the failing peer can only lose
	// its own copies.
	e := NewExporter(Config{BatchSize: 1, BreakerThreshold: 2, Policy: PolicyBlock, Now: newFakeClock().Now}, bad, good)
	for i := int64(1); i <= 20; i++ {
		e.Observe(flow(i, 0))
	}
	e.Close()
	if got := len(good.Flows()); got != 20 {
		t.Fatalf("healthy sink must receive all 20 flows despite the failing peer, got %d", got)
	}
	var badStats, goodStats SinkStats
	for _, st := range e.Stats() {
		switch st.Name {
		case "bad":
			badStats = st
		case "good":
			goodStats = st
		}
	}
	if badStats.Published != 0 || badStats.Dropped != 20 {
		t.Fatalf("failing sink accounting off: %+v", badStats)
	}
	if badStats.BreakerOpens == 0 {
		t.Fatalf("failing sink's breaker never opened: %+v", badStats)
	}
	if goodStats.BreakerOpens != 0 {
		t.Fatalf("healthy sink's breaker tripped: %+v", goodStats)
	}
}

func TestBreakerShortCircuitsPublishes(t *testing.T) {
	mem := NewMemorySink()
	mem.FailNext(2)
	calls := 0
	e := NewExporter(Config{BatchSize: 1, BreakerThreshold: 2, BreakerCooldown: time.Hour, Now: newFakeClock().Now}, countingSink{mem, &calls})
	for i := int64(1); i <= 10; i++ {
		e.Observe(flow(i, 0))
	}
	e.Close()
	// Two failures open the breaker; the remaining 8 batches must be
	// shed without touching the backend.
	if calls != 2 {
		t.Fatalf("open breaker must short-circuit publishes: backend saw %d calls, want 2", calls)
	}
	st := e.Stats()[0]
	if st.Dropped != 10 {
		t.Fatalf("want all 10 events dropped (2 errors + 8 breaker), got %+v", st)
	}
}

// countingSink counts Publish calls reaching the wrapped sink.
type countingSink struct {
	*MemorySink
	calls *int
}

func (c countingSink) Publish(batch []Envelope) error {
	*c.calls++
	return c.MemorySink.Publish(batch)
}

func TestFaultHookFailsBatches(t *testing.T) {
	mem := NewMemorySink()
	e := NewExporter(Config{BatchSize: 1, BreakerThreshold: 100, Policy: PolicyBlock, Now: newFakeClock().Now}, mem)
	var hits atomic.Int64
	e.SetFaultHook(func(name string) error {
		if name != "mem" {
			t.Errorf("hook saw sink %q", name)
		}
		if hits.Add(1) <= 3 {
			return errInjectedFailure
		}
		return nil
	})
	for i := int64(1); i <= 10; i++ {
		e.Observe(flow(i, 0))
	}
	e.Close()
	st := e.Stats()[0]
	if st.Dropped != 3 || st.Published != 7 {
		t.Fatalf("3 injected publish faults: want 3 dropped / 7 published, got %+v", st)
	}
}

func TestPublishDeltasSortedAndDecodable(t *testing.T) {
	mem := NewMemorySink()
	e := NewExporter(Config{Now: newFakeClock().Now}, mem)
	results := map[string]any{
		"zeta":  map[string]int{"n": 3},
		"alpha": []string{"x", "y"},
		"mid":   42,
	}
	if err := e.PublishDeltas(results); err != nil {
		t.Fatal(err)
	}
	e.Close()
	var got []string
	for _, b := range mem.Batches() {
		for _, env := range b {
			if env.Type != TypeDelta {
				t.Fatalf("unexpected envelope type %q", env.Type)
			}
			got = append(got, env.Analyzer)
		}
	}
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("want %v deltas, got %v", want, got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delta order not deterministic: want %v, got %v", want, got)
		}
	}
	var n int
	if err := json.Unmarshal(mem.Deltas()["mid"], &n); err != nil || n != 42 {
		t.Fatalf("delta payload round-trip: %v %d", err, n)
	}
}

func TestCloseIsIdempotentAndDropsLateEvents(t *testing.T) {
	mem := NewMemorySink()
	e := NewExporter(Config{BatchSize: 100, Now: newFakeClock().Now}, mem)
	e.Observe(flow(1, 0))
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e.Observe(flow(2, 0)) // after close: discarded, no panic
	e.Seal(9)
	e.Retract(9)
	if got := len(mem.Flows()); got != 1 {
		t.Fatalf("final flush must carry the partial batch and nothing after close, got %d flows", got)
	}
	if !mem.Closed() {
		t.Fatal("publisher not closed")
	}
}

func TestHTTPSinkRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("content type %q", ct)
		}
		if calls.Add(1) <= 2 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	h := NewHTTPSink(srv.URL)
	h.Sleep = func(time.Duration) {}
	if err := h.Publish([]Envelope{{Seq: 1, Type: TypeFlow, Flow: flow(1, 0)}}); err != nil {
		t.Fatalf("publish after transient 503s: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("want 2 retries then success (3 calls), got %d", calls.Load())
	}
}

func TestHTTPSinkTreats4xxAsPermanent(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad payload", http.StatusBadRequest)
	}))
	defer srv.Close()
	h := NewHTTPSink(srv.URL)
	h.Sleep = func(time.Duration) {}
	if err := h.Publish([]Envelope{{Seq: 1, Type: TypeFlow, Flow: flow(1, 0)}}); err == nil {
		t.Fatal("4xx must fail the batch")
	}
	if calls.Load() != 1 {
		t.Fatalf("4xx must not be retried, got %d calls", calls.Load())
	}
}

func TestHTTPSinkExhaustsRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	h := NewHTTPSink(srv.URL)
	h.MaxRetries = 2
	h.Sleep = func(time.Duration) {}
	if err := h.Publish([]Envelope{{Seq: 1}}); err == nil {
		t.Fatal("want failure after exhausting retries")
	}
	if calls.Load() != 3 {
		t.Fatalf("want 1 attempt + 2 retries, got %d", calls.Load())
	}
}

func TestFileSinkRotatesAndRoundTrips(t *testing.T) {
	dir := t.TempDir()
	fs := NewFileSink(dir)
	fs.RotateBytes = 1 // every batch over-fills the segment: rotate per batch
	for i := int64(1); i <= 3; i++ {
		if err := fs.Publish([]Envelope{{Seq: uint64(i), Type: TypeFlow, Flow: flow(i, 0)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	paths := fs.SegmentPaths()
	if len(paths) != 3 {
		t.Fatalf("RotateBytes=1 must rotate per batch: want 3 segments, got %d (%v)", len(paths), paths)
	}
	var ids []int64
	for _, p := range paths {
		for _, env := range readSegment(t, p) {
			ids = append(ids, env.Flow.ID)
		}
	}
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("segments must round-trip all flows in order, got %v", ids)
	}
}

func TestFileSinkOversizedBatchStaysWhole(t *testing.T) {
	dir := t.TempDir()
	fs := NewFileSink(dir)
	fs.RotateBytes = 64 // far below one big batch's compressed size

	// A single batch larger than the whole segment budget must land in
	// one segment, intact and in order — the budget is checked after the
	// batch is written, never by splitting a batch across segments.
	big := make([]Envelope, 40)
	for i := range big {
		f := flow(int64(i+1), 0)
		f.Path = fmt.Sprintf("/batch/%d/%x", i, i*2654435761) // defeat gzip a little
		big[i] = Envelope{Seq: uint64(i + 1), Type: TypeFlow, Flow: f}
	}
	if err := fs.Publish(big); err != nil {
		t.Fatal(err)
	}
	if err := fs.Publish([]Envelope{{Seq: 100, Type: TypeFlow, Flow: flow(100, 0)}}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	paths := fs.SegmentPaths()
	if len(paths) != 2 {
		t.Fatalf("oversized batch then small batch: want 2 segments, got %d (%v)", len(paths), paths)
	}
	first := readSegment(t, paths[0])
	if len(first) != len(big) {
		t.Fatalf("segment 0 holds %d envelopes, want the whole %d-envelope batch", len(first), len(big))
	}
	for i, env := range first {
		if env.Seq != uint64(i+1) {
			t.Fatalf("segment 0 out of order at %d: seq %d", i, env.Seq)
		}
	}
	second := readSegment(t, paths[1])
	if len(second) != 1 || second[0].Seq != 100 {
		t.Fatalf("segment 1 must hold only the follow-up batch, got %+v", second)
	}
}

func readSegment(t *testing.T, path string) []Envelope {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	defer zr.Close()
	var out []Envelope
	sc := bufio.NewScanner(zr)
	for sc.Scan() {
		var env Envelope
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out = append(out, env)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestParseSpecs(t *testing.T) {
	pubs, err := ParseSpecs("http:http://idx.example/bulk, file:/tmp/x ,mem")
	if err != nil {
		t.Fatal(err)
	}
	if len(pubs) != 3 {
		t.Fatalf("want 3 publishers, got %d", len(pubs))
	}
	if h, ok := pubs[0].(*HTTPSink); !ok || h.URL != "http://idx.example/bulk" {
		t.Fatalf("spec 0: %#v", pubs[0])
	}
	if fs, ok := pubs[1].(*FileSink); !ok || fs.Dir != "/tmp/x" {
		t.Fatalf("spec 1: %#v", pubs[1])
	}
	if _, ok := pubs[2].(*MemorySink); !ok {
		t.Fatalf("spec 2: %#v", pubs[2])
	}
	if pubs, err := ParseSpecs(""); err != nil || len(pubs) != 0 {
		t.Fatalf("empty spec: %v %v", pubs, err)
	}
	for _, bad := range []string{"http:", "file:", "mem:x", "kafka:topic"} {
		if _, err := ParseSpecs(bad); err == nil {
			t.Fatalf("spec %q must be rejected", bad)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{"": PolicyDrop, "drop": PolicyDrop, "block": PolicyBlock} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("spill"); err == nil {
		t.Fatal("unknown policy must be rejected")
	}
}
