// Package fabric is the fault-tolerant distributed campaign layer: a
// coordinator that partitions the (browser × site) plan into leases and
// N workers that each run a full measurement plane (mitm + capture +
// streaming suite) and ship partial state back over an injectable
// in-memory transport. The design goal is that worker death is a
// recoverable, invisible event — a crashed, stalled or partitioned
// worker's lease expires and is reclaimed and re-issued to a healthy
// worker, partial results from the dead issue are quarantined exactly
// like a retracted attempt, duplicate completions from a
// reclaimed-then-returned lease are deduped by attempt tag, and the
// seq-ordered reducer merges accepted leases so any worker topology
// produces byte-identical analyses to the single-process baseline.
//
// Determinism argument (DESIGN.md §12 carries the long form):
//
//   - Leases within one browser are issued strictly sequentially; lease
//     k+1 carries the browser.SessionState produced by the accepted run
//     of lease k, so the visit/idle/noise schedule a worker replays is
//     exactly the one the single-process crawl would have run.
//   - A worker world's browsers only ever contain state from accepted
//     leases: any lease that ends without acceptance (injected crash,
//     stall, transport partition, or a completion rejected as stale)
//     retires the whole worker and its world. Replacements start from a
//     fresh world plus the last accepted SessionState, so a re-run is
//     bit-equivalent to the first run.
//   - The reducer renumbers merged flows per browser ((laneIdx+1)<<40 +
//     per-lane seq) preserving each browser's commit order; every
//     analyzer is observe-order-independent across browsers and
//     order-preserving within one (the parallelism-determinism keystone),
//     so the merged suite equals the baseline suite.
package fabric

import (
	"fmt"
	"sync"
	"time"

	"panoptes/internal/browser"
	"panoptes/internal/capture"
	"panoptes/internal/core"
	"panoptes/internal/faultsim"
	"panoptes/internal/obs"
	"panoptes/internal/profiles"
	"panoptes/internal/vclock"
	"panoptes/internal/websim"
)

func init() {
	obs.Default.Help("fabric_lease_issued_total", "Leases issued to fabric workers (re-issues included).")
	obs.Default.Help("fabric_lease_reclaimed_total", "Expired leases reclaimed from crashed/stalled/partitioned workers.")
	obs.Default.Help("fabric_lease_duplicate_total", "Messages rejected by the lease tag dedupe (stale batches and duplicate completions).")
	obs.Default.Help("fabric_worker_restarts_total", "Fabric workers replaced after a crash, stall or partition.")
	obs.Default.Help("fabric_merge_lag", "Flows shipped by workers but not yet merged by the reducer.")
	obs.Default.Help("fabric_flows_quarantined_total", "Shipped flows quarantined because their lease issue was reclaimed.")
	obs.Default.Help("fabric_transport_sends_total", "Worker→coordinator transport sends, by result.")
}

// Config drives one fabric campaign.
type Config struct {
	// World is the coordinator's world: its clock times lease deadlines
	// and its DB/pipeline/suite (and exporter, when sinks are wired)
	// receive the merged flow stream. The coordinator world never crawls.
	World *core.World
	// NewWorkerWorld builds one worker's measurement plane. Worker worlds
	// must host the same site dataset as the coordinator and retain all
	// flows (leases resume via the checkpoint path). Required.
	NewWorkerWorld func() (*core.World, error)

	// Workers is the topology size (default 1).
	Workers int
	// LeaseVisits is how many sites one lease covers (default 4).
	LeaseVisits int
	// LeaseTimeout is the vclock deadline stamped on each issued lease
	// and refreshed by heartbeats and flow batches (default 2 minutes).
	LeaseTimeout time.Duration
	// StaleAfter is the wall-clock quiet period after which an in-flight
	// lease is eligible for deadline expiry. The janitor only advances
	// the coordinator clock to a lease's deadline once its worker has
	// been silent this long, so a slow-but-alive worker is never
	// reclaimed out from under a heartbeat (default 150ms).
	StaleAfter time.Duration

	// Campaign is the plan template: Browsers/Sites select the plan,
	// Incognito/Settle/NavigateTimeout/retry/breaker knobs are inherited
	// by every lease. Checkpoint, Resume and StopAfterVisits are the
	// single-process split mechanisms and must be unset — the fabric
	// leases already partition the campaign.
	Campaign core.CampaignConfig

	// Mode selects how a worker spreads sends across its endpoints
	// (default ModeFailover); Endpoints is how many worker→coordinator
	// endpoints each worker gets (default 2).
	Mode      TransportMode
	Endpoints int

	// Faults injects fabric-level chaos: WorkerCrash/WorkerStall via
	// WorkerFault, TransportDrop via TransportFault. Defaults to the
	// coordinator world's installed injector. Worker worlds carry their
	// own (visit-level) injectors, installed by NewWorkerWorld.
	Faults *faultsim.Injector

	// MaxWorkerRestarts bounds crash-replacement (default 2×Workers+8).
	// When exhausted, surviving workers still finish the plan via lease
	// reclamation; Run only fails if no worker remains.
	MaxWorkerRestarts int
}

// Stats counts the fabric's robustness events for one run.
type Stats struct {
	LeasesIssued     int
	LeasesReclaimed  int
	DuplicateDrops   int
	WorkerRestarts   int
	FlowsMerged      int
	FlowsQuarantined int
}

// Result is a fabric campaign's outcome: the merged campaign result
// (visits in plan order, exactly as the single-process run would report
// them) plus the fabric's own robustness counters.
type Result struct {
	Campaign *core.CampaignResult
	Stats    Stats
}

func (cfg *Config) defaults() error {
	if cfg.World == nil {
		return fmt.Errorf("fabric: Config.World is required")
	}
	if cfg.NewWorkerWorld == nil {
		return fmt.Errorf("fabric: Config.NewWorkerWorld is required")
	}
	if cfg.Campaign.Checkpoint || cfg.Campaign.Resume != nil || cfg.Campaign.StopAfterVisits != 0 {
		return fmt.Errorf("fabric: Campaign.Checkpoint/Resume/StopAfterVisits are single-process split mechanisms; the fabric's leases already partition the campaign")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.LeaseVisits <= 0 {
		cfg.LeaseVisits = 4
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 2 * time.Minute
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 150 * time.Millisecond
	}
	if cfg.Endpoints <= 0 {
		cfg.Endpoints = 2
	}
	if cfg.Mode == "" {
		cfg.Mode = ModeFailover
	}
	if cfg.Faults == nil {
		cfg.Faults = cfg.World.Faults
	}
	if cfg.MaxWorkerRestarts <= 0 {
		cfg.MaxWorkerRestarts = 2*cfg.Workers + 8
	}
	return nil
}

// buildPlan partitions the (browser × site) plan into per-browser lease
// lanes, mirroring RunCampaign's browser resolution (unknown names fail
// up front, incognito-less browsers are skipped).
func buildPlan(cfg *Config, c *coordinator) error {
	browsers := cfg.Campaign.Browsers
	if browsers == nil {
		browsers = defaultBrowsers(cfg.World)
	}
	sites := cfg.Campaign.Sites
	if sites == nil {
		sites = cfg.World.Sites
	}
	for _, name := range browsers {
		b, err := cfg.World.Browser(name)
		if err != nil {
			return err
		}
		if cfg.Campaign.Incognito && !b.Profile.HasIncognito {
			c.skipped = append(c.skipped, name)
			continue
		}
		lane := &lane{name: name, idx: len(c.lanes)}
		for off := 0; off < len(sites); off += cfg.LeaseVisits {
			end := off + cfg.LeaseVisits
			if end > len(sites) {
				end = len(sites)
			}
			lane.slots = append(lane.slots, &leaseSlot{
				lane:  lane,
				seq:   len(lane.slots),
				sites: sites[off:end],
			})
		}
		c.lanes = append(c.lanes, lane)
	}
	return nil
}

func defaultBrowsers(w *core.World) []string {
	var names []string
	for _, p := range profiles.All() {
		if _, ok := w.Browsers[p.Name]; ok {
			names = append(names, p.Name)
		}
	}
	return names
}

// Run executes the campaign plan across cfg.Workers worker planes and
// returns the deterministically merged result.
func Run(cfg Config) (*Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	c := &coordinator{
		world:      cfg.World,
		clock:      cfg.World.Clock,
		timeout:    cfg.LeaseTimeout,
		staleAfter: cfg.StaleAfter,
		byTag:      make(map[int64]*leaseSlot),
		wake:       make(chan struct{}),
	}
	if err := buildPlan(&cfg, c); err != nil {
		return nil, err
	}

	// Build the initial worker planes concurrently — each world is a
	// full measurement plane and the builds are independent.
	worlds := make([]*core.World, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var bwg sync.WaitGroup
	for i := range worlds {
		bwg.Add(1)
		go func(i int) {
			defer bwg.Done()
			worlds[i], errs[i] = newWorkerWorld(&cfg)
		}(i)
	}
	bwg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, w := range worlds {
				if w != nil {
					w.Close()
				}
			}
			return nil, err
		}
	}

	stopJanitor := make(chan struct{})
	var jwg sync.WaitGroup
	jwg.Add(1)
	go func() {
		defer jwg.Done()
		interval := cfg.StaleAfter / 2
		if interval < 5*time.Millisecond {
			interval = 5 * time.Millisecond
		}
		if interval > 100*time.Millisecond {
			interval = 100 * time.Millisecond
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stopJanitor:
				return
			case <-tick.C:
				c.tick()
			}
		}
	}()

	type workerExit struct {
		w       *core.World
		crashed bool
	}
	exits := make(chan workerExit)
	nextID := 0
	live := 0
	spawn := func(w *core.World) {
		nextID++
		wk := newWorker(fmt.Sprintf("w%d", nextID), w, c, &cfg)
		live++
		go func() {
			crashed := wk.run()
			exits <- workerExit{w: w, crashed: crashed}
		}()
	}
	for _, w := range worlds {
		spawn(w)
	}

	var leftover []*core.World
	restarts := 0
	var lastErr error
	for live > 0 {
		ex := <-exits
		live--
		if !ex.crashed {
			leftover = append(leftover, ex.w)
			continue
		}
		// The dead worker's world may hold browser state from the
		// abandoned lease (session and activity clocks only move
		// forward), so it cannot be reused: close it and start a
		// replacement from a fresh plane.
		ex.w.Close()
		if c.done() {
			continue
		}
		if restarts >= cfg.MaxWorkerRestarts {
			lastErr = fmt.Errorf("fabric: worker restart budget exhausted (%d)", restarts)
			continue
		}
		restarts++
		c.addRestart()
		nw, err := newWorkerWorld(&cfg)
		if err != nil {
			lastErr = err
			continue
		}
		spawn(nw)
	}
	close(stopJanitor)
	jwg.Wait()
	for _, w := range leftover {
		w.Close()
	}

	if !c.done() {
		if lastErr == nil {
			lastErr = fmt.Errorf("fabric: campaign did not complete")
		}
		return nil, lastErr
	}
	return &Result{Campaign: c.result(), Stats: c.statsCopy()}, nil
}

func newWorkerWorld(cfg *Config) (*core.World, error) {
	w, err := cfg.NewWorkerWorld()
	if err != nil {
		return nil, err
	}
	if !w.DB.FullyRetained() {
		w.Close()
		return nil, fmt.Errorf("fabric: worker worlds must retain all flows (leases resume via the checkpoint path); build them with the default retain=all")
	}
	return w, nil
}

// coordinator owns the lease table, the tag dedupe and the reducer. Its
// clock is the coordinator world's virtual clock; nothing else advances
// it during a fabric run, so lease deadlines only expire when the
// janitor deliberately advances to them.
type coordinator struct {
	world      *core.World
	clock      *vclock.Clock
	timeout    time.Duration
	staleAfter time.Duration

	mu          sync.Mutex
	lanes       []*lane
	skipped     []string
	byTag       map[int64]*leaseSlot
	lastTag     int64
	wake        chan struct{}
	stats       Stats
	parkedFlows int
}

// lane is one browser's strictly-sequential lease chain.
type lane struct {
	name  string
	idx   int
	slots []*leaseSlot
	next  int // first un-accepted slot; only it can be in flight

	// Reducer state, written on accept only.
	state    *browser.SessionState
	flowSeq  int64
	visits   []core.VisitRecord
	retries  int
	degraded int
	errors   int
}

type leaseState int

const (
	leasePending leaseState = iota
	leaseInflight
	leaseDone
)

// leaseSlot is one lease's slot in the plan; a reclaim re-issues the
// same slot under a fresh tag.
type leaseSlot struct {
	lane  *lane
	seq   int
	sites []*websim.Site

	state     leaseState
	tag       int64
	deadline  time.Time // vclock deadline, refreshed by heartbeats/batches
	lastEvent time.Time // wall clock of the last event; staleness gate
	reclaimed chan struct{}
	parked    []*capture.Flow // shipped, unmerged flows of the current issue
}

var (
	mLeaseIssued    = obs.Default.Counter("fabric_lease_issued_total")
	mLeaseReclaimed = obs.Default.Counter("fabric_lease_reclaimed_total")
	mLeaseDuplicate = obs.Default.Counter("fabric_lease_duplicate_total")
	mWorkerRestarts = obs.Default.Counter("fabric_worker_restarts_total")
	mMergeLag       = obs.Default.Gauge("fabric_merge_lag")
	mQuarantined    = obs.Default.Counter("fabric_flows_quarantined_total")
)

func (c *coordinator) doneLocked() bool {
	for _, ln := range c.lanes {
		if ln.next < len(ln.slots) {
			return false
		}
	}
	return true
}

func (c *coordinator) done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.doneLocked()
}

func (c *coordinator) addRestart() {
	c.mu.Lock()
	c.stats.WorkerRestarts++
	c.mu.Unlock()
	mWorkerRestarts.Inc()
}

func (c *coordinator) statsCopy() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *coordinator) signalLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// acquire hands the caller the next issuable lease, blocking until one
// frees up (an accept unblocks the lane's next lease; a reclaim re-opens
// a slot). The second return is true when the plan is fully committed.
func (c *coordinator) acquire() (*lease, bool) {
	c.mu.Lock()
	for {
		if c.doneLocked() {
			c.mu.Unlock()
			return nil, true
		}
		for _, ln := range c.lanes {
			if ln.next >= len(ln.slots) {
				continue
			}
			slot := ln.slots[ln.next]
			if slot.state != leasePending {
				continue
			}
			c.lastTag++
			slot.state = leaseInflight
			slot.tag = c.lastTag
			slot.deadline = c.clock.Now().Add(c.timeout)
			slot.lastEvent = time.Now()
			slot.reclaimed = make(chan struct{})
			slot.parked = nil
			c.byTag[slot.tag] = slot
			c.stats.LeasesIssued++
			l := &lease{
				Browser:   ln.name,
				Seq:       slot.seq,
				Sites:     slot.sites,
				State:     ln.state,
				Tag:       slot.tag,
				reclaimed: slot.reclaimed,
			}
			c.mu.Unlock()
			mLeaseIssued.Inc()
			return l, false
		}
		wait := c.wake
		c.mu.Unlock()
		<-wait
		c.mu.Lock()
	}
}

// deliver is the transport's terminal: every worker message lands here.
// The tag dedupe quarantines anything from a reclaimed issue.
func (c *coordinator) deliver(m message) {
	c.mu.Lock()
	slot := c.byTag[m.tag]
	if slot == nil || slot.state != leaseInflight {
		// Stale generation: a reclaimed-then-returned lease. Its flows
		// are quarantined exactly like a retracted attempt; a duplicate
		// completion is dropped so a visit is never double-counted.
		c.stats.DuplicateDrops++
		if len(m.flows) > 0 {
			c.stats.FlowsQuarantined += len(m.flows)
		}
		c.mu.Unlock()
		mLeaseDuplicate.Inc()
		for _, f := range m.flows {
			mQuarantined.Inc()
			f.Release()
		}
		return
	}
	slot.lastEvent = time.Now()
	slot.deadline = c.clock.Now().Add(c.timeout)
	switch m.kind {
	case msgHeartbeat:
	case msgFlows:
		slot.parked = append(slot.parked, m.flows...)
		c.parkedFlows += len(m.flows)
		mMergeLag.Set(float64(c.parkedFlows))
	case msgComplete:
		c.acceptLocked(slot, m.result)
	}
	c.signalLocked()
	c.mu.Unlock()
}

// acceptLocked commits one lease: the reducer renumbers the parked flows
// into the lane's ID space in commit order and replays them into the
// coordinator's capture DB (whose tap feeds the streaming suite and the
// export plane), then advances the lane to its next lease.
func (c *coordinator) acceptLocked(slot *leaseSlot, res *leaseResult) {
	if res == nil || res.flowCount != len(slot.parked) {
		// The transport lost a batch (or delivered a malformed
		// completion): the issue is not trustworthy. Reclaim it now; the
		// lease is re-issued and re-run from the accepted state.
		c.reclaimLocked(slot)
		return
	}
	ln := slot.lane
	flows := slot.parked
	slot.parked = nil
	c.parkedFlows -= len(flows)
	mMergeLag.Set(float64(c.parkedFlows))
	delete(c.byTag, slot.tag)
	slot.state = leaseDone

	base := int64(ln.idx+1) << 40
	for _, f := range flows {
		ln.flowSeq++
		f.ID = base + ln.flowSeq
		f.Attempt = 0
		c.world.DB.StoreFor(f.Origin).Add(f)
		f.Release()
	}
	c.stats.FlowsMerged += len(flows)
	ln.visits = append(ln.visits, res.visits...)
	ln.state = res.state
	ln.retries += res.retries
	ln.degraded += res.degraded
	ln.errors += res.errors
	ln.next++
}

// reclaimLocked expires one in-flight issue: parked flows are
// quarantined, the issue's tag is retired (later messages bounce off the
// dedupe) and the slot re-opens for re-issue.
func (c *coordinator) reclaimLocked(slot *leaseSlot) {
	delete(c.byTag, slot.tag)
	c.stats.FlowsQuarantined += len(slot.parked)
	c.parkedFlows -= len(slot.parked)
	mMergeLag.Set(float64(c.parkedFlows))
	for _, f := range slot.parked {
		mQuarantined.Inc()
		f.Release()
	}
	slot.parked = nil
	slot.state = leasePending
	close(slot.reclaimed)
	c.stats.LeasesReclaimed++
	mLeaseReclaimed.Inc()
}

// tick is the janitor pass: find in-flight leases whose workers have
// gone wall-clock silent, advance the coordinator clock to the earliest
// such deadline, and reclaim every stale lease the deadline sweep
// expired. Live workers refresh lastEvent with every batch and
// heartbeat, so they are never swept.
func (c *coordinator) tick() {
	wall := time.Now()
	var target time.Time
	c.mu.Lock()
	for _, ln := range c.lanes {
		if ln.next >= len(ln.slots) {
			continue
		}
		slot := ln.slots[ln.next]
		if slot.state != leaseInflight || wall.Sub(slot.lastEvent) < c.staleAfter {
			continue
		}
		if target.IsZero() || slot.deadline.Before(target) {
			target = slot.deadline
		}
	}
	c.mu.Unlock()
	if target.IsZero() {
		return
	}
	if target.After(c.clock.Now()) {
		c.clock.AdvanceTo(target)
	}

	now := c.clock.Now()
	wall = time.Now()
	c.mu.Lock()
	changed := false
	for _, ln := range c.lanes {
		if ln.next >= len(ln.slots) {
			continue
		}
		slot := ln.slots[ln.next]
		if slot.state != leaseInflight || wall.Sub(slot.lastEvent) < c.staleAfter {
			continue
		}
		if slot.deadline.After(now) {
			continue
		}
		c.reclaimLocked(slot)
		changed = true
	}
	if changed {
		c.signalLocked()
	}
	c.mu.Unlock()
}

// result assembles the merged campaign result in plan order — the same
// browser-major, site-ordered merge the single-process scheduler does.
func (c *coordinator) result() *core.CampaignResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	res := &core.CampaignResult{Skipped: c.skipped}
	for _, ln := range c.lanes {
		res.Visits = append(res.Visits, ln.visits...)
		res.Retries += ln.retries
		res.Degraded += ln.degraded
		res.Errors += ln.errors
	}
	return res
}
