package fabric

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"panoptes/internal/breaker"
	"panoptes/internal/core"
	"panoptes/internal/faultsim"
	"panoptes/internal/leak"
	"panoptes/internal/profiles"
)

// fabricBrowsers mirrors the core fault-test trio: Chrome and Brave are
// CDP-instrumented, UC International is Frida-instrumented, so both
// instrumentation paths cross the fabric.
var fabricBrowsers = []string{"Chrome", "Brave", "UC International"}

// newPlane builds one measurement plane (coordinator or worker) hosting
// the same site dataset. The caller owns Close.
func newPlane(t *testing.T, sites int) *core.World {
	t.Helper()
	var profs []*profiles.Profile
	for _, n := range fabricBrowsers {
		p := profiles.ByName(n)
		if p == nil {
			t.Fatalf("no profile %q", n)
		}
		profs = append(profs, p)
	}
	// The explicit all-transports list (the -transports=h1,h2,ws,doh
	// form, UDP/443 block at its active default) keeps the fabric
	// determinism contract pinned over the full transport-aware plane.
	w, err := core.NewWorld(core.WorldConfig{
		Sites: sites, Profiles: profs,
		Transports: []string{"h1", "h2", "ws", "doh"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// suiteResults snapshots every streaming analysis. Flow IDs are
// process-global ticket numbers (the fabric renumbers merged flows into
// per-lane ID spaces), so leak findings have theirs scrubbed before
// comparison — the same normalization the core determinism tests use.
func suiteResults(w *core.World) map[string]any {
	scrub := func(fs []leak.Finding) []leak.Finding {
		for i := range fs {
			fs[i].FlowID = 0
		}
		return fs
	}
	body, query := w.Suite.Listing1.Result()
	return map[string]any{
		"fig2":         w.Suite.Fig2.Rows(),
		"fig3":         w.Suite.Fig3.Rows(),
		"fig4":         w.Suite.Fig4.Rows(),
		"table2":       w.Suite.PII.Matrix(),
		"leaks-native": scrub(w.Suite.LeakNative.Findings()),
		"leaks-engine": scrub(w.Suite.LeakEngine.Findings()),
		"dns":          w.Suite.DNS.Usage(),
		"trackable":    w.Suite.Trackable.IDs(),
		"listing1":     [2]string{body, query},
	}
}

func assertSameSuite(t *testing.T, label string, got, want map[string]any) {
	t.Helper()
	for name := range want {
		wj, err := json.Marshal(want[name])
		if err != nil {
			t.Fatal(err)
		}
		gj, err := json.Marshal(got[name])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wj, gj) {
			t.Errorf("%s: %s diverges from the single-process baseline:\nfabric   %s\nbaseline %s", label, name, gj, wj)
		}
	}
}

// assertVisitsOnce verifies the zero-lost/zero-double-counted contract:
// every (browser, url) pair in the plan appears exactly once.
func assertVisitsOnce(t *testing.T, label string, res *core.CampaignResult, sites int) {
	t.Helper()
	seen := make(map[[2]string]int)
	for _, v := range res.Visits {
		seen[[2]string{v.Browser, v.URL}]++
	}
	if want := len(fabricBrowsers) * sites; len(res.Visits) != want {
		t.Errorf("%s: %d visit records, want %d", label, len(res.Visits), want)
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("%s: visit %v counted %d times", label, k, n)
		}
	}
}

// TestFabricDeterminism is the fabric keystone: 1-, 2- and 8-worker
// topologies — plus a 4-worker chaos topology where faultsim kills
// workers mid-lease and drops transport sends — must produce
// byte-identical analyses and identical visit records to the
// single-process baseline, with every visit committed exactly once.
func TestFabricDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-topology crawl matrix")
	}
	const sites = 6

	base := newPlane(t, sites)
	t.Cleanup(base.Close)
	campaign := core.CampaignConfig{
		Browsers:        fabricBrowsers,
		NavigateTimeout: 20 * time.Second,
	}
	baseRes, err := base.RunCampaign(campaign)
	if err != nil {
		t.Fatal(err)
	}
	if baseRes.Errors != 0 {
		t.Fatalf("baseline had %d errors: %+v", baseRes.Errors, baseRes.Visits)
	}
	baseSuite := suiteResults(base)

	variants := []struct {
		name    string
		workers int
		faults  *faultsim.Injector
	}{
		{name: "workers=1", workers: 1},
		{name: "workers=2", workers: 2},
		{name: "workers=8", workers: 8},
		{name: "workers=4/kill", workers: 4, faults: faultsim.New(faultsim.Plan{
			Seed: 42,
			// Every initial worker dies mid-lease on its first lease (at
			// least three of the four acquire one immediately); their
			// half-run leases are reclaimed and re-issued to clean
			// replacement workers. Transport drops exercise failover on
			// top.
			Scripted: []faultsim.ScriptedFault{
				{Kind: faultsim.WorkerCrash, Browser: "w1", Attempt: 1},
				{Kind: faultsim.WorkerCrash, Browser: "w2", Attempt: 1},
				{Kind: faultsim.WorkerCrash, Browser: "w3", Attempt: 1},
				{Kind: faultsim.WorkerCrash, Browser: "w4", Attempt: 1},
			},
			ChaosRates: map[faultsim.Kind]float64{faultsim.TransportDrop: 0.1},
		})},
	}
	for _, v := range variants {
		coord := newPlane(t, sites)
		t.Cleanup(coord.Close)
		res, err := Run(Config{
			World:          coord,
			NewWorkerWorld: func() (*core.World, error) { return newPlane(t, sites), nil },
			Workers:        v.workers,
			LeaseVisits:    2,
			Campaign:       campaign,
			Faults:         v.faults,
		})
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		assertVisitsOnce(t, v.name, res.Campaign, sites)
		if !reflect.DeepEqual(res.Campaign.Visits, baseRes.Visits) {
			t.Errorf("%s: visit records diverge from baseline:\nfabric   %+v\nbaseline %+v", v.name, res.Campaign.Visits, baseRes.Visits)
		}
		assertSameSuite(t, v.name, suiteResults(coord), baseSuite)

		wantLeases := len(fabricBrowsers) * ((sites + 1) / 2)
		if res.Stats.LeasesIssued < wantLeases {
			t.Errorf("%s: %d leases issued, want >= %d", v.name, res.Stats.LeasesIssued, wantLeases)
		}
		if v.faults == nil {
			if res.Stats.LeasesReclaimed != 0 || res.Stats.WorkerRestarts != 0 {
				t.Errorf("%s: clean topology reclaimed %d leases / restarted %d workers",
					v.name, res.Stats.LeasesReclaimed, res.Stats.WorkerRestarts)
			}
		} else {
			// Three of the four initial workers grab the first leases and
			// die mid-lease; the fourth crashes on whichever lease it
			// eventually gets.
			if res.Stats.LeasesReclaimed < 3 {
				t.Errorf("%s: %d leases reclaimed, want >= 3", v.name, res.Stats.LeasesReclaimed)
			}
			if res.Stats.WorkerRestarts < 3 {
				t.Errorf("%s: %d worker restarts, want >= 3", v.name, res.Stats.WorkerRestarts)
			}
			if res.Stats.FlowsQuarantined == 0 {
				t.Errorf("%s: killed workers shipped partial leases but nothing was quarantined", v.name)
			}
		}
	}
}

// TestFabricStallDuplicateDrop pins the reclaimed-then-returned path
// deterministically: a single worker runs its lease fully, stalls past
// the deadline, and submits the completion only after the coordinator
// reclaimed and re-issued the lease. The stale completion must bounce
// off the tag dedupe, the re-run must be the only accepted one, and the
// analyses must still match a single-process run.
func TestFabricStallDuplicateDrop(t *testing.T) {
	if testing.Short() {
		t.Skip("two crawls")
	}
	const sites = 2
	newChrome := func() *core.World {
		w, err := core.NewWorld(core.WorldConfig{
			Sites:    sites,
			Profiles: []*profiles.Profile{profiles.ByName("Chrome")},
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	base := newChrome()
	t.Cleanup(base.Close)
	campaign := core.CampaignConfig{Browsers: []string{"Chrome"}, NavigateTimeout: 20 * time.Second}
	baseRes, err := base.RunCampaign(campaign)
	if err != nil {
		t.Fatal(err)
	}

	coord := newChrome()
	t.Cleanup(coord.Close)
	res, err := Run(Config{
		World:          coord,
		NewWorkerWorld: func() (*core.World, error) { return newChrome(), nil },
		Workers:        1,
		LeaseVisits:    sites, // one lease covers the whole plan
		Campaign:       campaign,
		Faults: faultsim.New(faultsim.Plan{Seed: 1, Scripted: []faultsim.ScriptedFault{
			{Kind: faultsim.WorkerStall, Browser: "w1", Attempt: 1},
		}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LeasesReclaimed == 0 {
		t.Error("stalled lease was never reclaimed")
	}
	if res.Stats.DuplicateDrops == 0 {
		t.Error("the stale completion was not rejected by the tag dedupe")
	}
	if res.Stats.WorkerRestarts == 0 {
		t.Error("the stalled worker was not replaced")
	}
	if res.Stats.FlowsQuarantined == 0 {
		t.Error("the stalled issue's shipped flows were not quarantined")
	}
	if !reflect.DeepEqual(res.Campaign.Visits, baseRes.Visits) {
		t.Errorf("visit records diverge:\nfabric   %+v\nbaseline %+v", res.Campaign.Visits, baseRes.Visits)
	}
	seen := make(map[string]int)
	for _, v := range res.Campaign.Visits {
		seen[v.URL]++
	}
	for url, n := range seen {
		if n != 1 {
			t.Errorf("visit %s counted %d times after the duplicate completion", url, n)
		}
	}
	assertSameSuite(t, "stall", suiteResults(coord), suiteResults(base))
}

// TestFabricPlanPartition checks the lease math without faults: leases
// per browser = ceil(sites/LeaseVisits), all issued exactly once.
func TestFabricPlanPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("crawl")
	}
	const sites = 6
	coord := newPlane(t, sites)
	t.Cleanup(coord.Close)
	res, err := Run(Config{
		World:          coord,
		NewWorkerWorld: func() (*core.World, error) { return newPlane(t, sites), nil },
		Workers:        2,
		LeaseVisits:    4,
		Campaign: core.CampaignConfig{
			Browsers:        fabricBrowsers,
			NavigateTimeout: 20 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 6 sites at 4 visits per lease = 2 leases per browser, 3 browsers.
	if res.Stats.LeasesIssued != 6 {
		t.Errorf("LeasesIssued = %d, want 6", res.Stats.LeasesIssued)
	}
	if res.Stats.DuplicateDrops != 0 || res.Stats.LeasesReclaimed != 0 {
		t.Errorf("clean run had %d duplicate drops / %d reclaims", res.Stats.DuplicateDrops, res.Stats.LeasesReclaimed)
	}
	assertVisitsOnce(t, "partition", res.Campaign, sites)
}

// TestTransportModes unit-tests the client against stub endpoints: the
// failover mode sticks to one endpoint until it fails, round-robin
// rotates, and an endpoint with a tripped breaker is skipped without a
// send attempt.
func TestTransportModes(t *testing.T) {
	now := time.Date(2023, time.May, 12, 9, 0, 0, 0, time.UTC)
	build := func(mode TransportMode, fail map[string]bool) (*client, map[string]*int) {
		counts := make(map[string]*int)
		cl := &client{mode: mode, now: func() time.Time { return now }}
		for _, name := range []string{"ep0", "ep1"} {
			n := new(int)
			counts[name] = n
			name := name
			cl.endpoints = append(cl.endpoints, &endpoint{
				name: name,
				fault: func(ep string) error {
					if fail[ep] {
						return errDrop
					}
					return nil
				},
				deliver: func(message) { *n++ },
			})
			cl.breakers = append(cl.breakers, breakerForTest())
		}
		return cl, counts
	}

	// Failover: all sends stick to ep0 while it is healthy.
	cl, counts := build(ModeFailover, map[string]bool{})
	for i := 0; i < 4; i++ {
		if err := cl.send(message{kind: msgHeartbeat}); err != nil {
			t.Fatal(err)
		}
	}
	if *counts["ep0"] != 4 || *counts["ep1"] != 0 {
		t.Fatalf("failover spread = %d/%d, want 4/0", *counts["ep0"], *counts["ep1"])
	}

	// Failover: ep0 dies, the client moves to ep1 and stays there.
	fail := map[string]bool{"ep0": true}
	cl, counts = build(ModeFailover, fail)
	for i := 0; i < 3; i++ {
		if err := cl.send(message{kind: msgHeartbeat}); err != nil {
			t.Fatal(err)
		}
	}
	if *counts["ep1"] != 3 || *counts["ep0"] != 0 {
		t.Fatalf("failover after death = %d/%d, want 0/3", *counts["ep0"], *counts["ep1"])
	}

	// Round-robin alternates.
	cl, counts = build(ModeRoundRobin, map[string]bool{})
	for i := 0; i < 4; i++ {
		if err := cl.send(message{kind: msgHeartbeat}); err != nil {
			t.Fatal(err)
		}
	}
	if *counts["ep0"] != 2 || *counts["ep1"] != 2 {
		t.Fatalf("round-robin spread = %d/%d, want 2/2", *counts["ep0"], *counts["ep1"])
	}

	// Both endpoints dead: send fails, and once both breakers trip the
	// fault hook is not even consulted any more.
	fail = map[string]bool{"ep0": true, "ep1": true}
	cl, _ = build(ModeFailover, fail)
	hookCalls := 0
	for i := range cl.endpoints {
		inner := cl.endpoints[i].fault
		cl.endpoints[i].fault = func(ep string) error {
			hookCalls++
			return inner(ep)
		}
	}
	for i := 0; i < 4; i++ {
		if err := cl.send(message{kind: msgHeartbeat}); err == nil {
			t.Fatal("send with every endpoint dead must fail")
		}
	}
	// Threshold 2: each endpoint is tried twice, then its breaker holds
	// it open — the remaining sends consult nothing.
	if hookCalls != 4 {
		t.Fatalf("fault hook consulted %d times, want 4 (2 per endpoint before the breakers opened)", hookCalls)
	}
}

func breakerForTest() *breaker.Breaker {
	return breaker.New(transportBreakerThreshold, transportBreakerCooldown)
}

var errDrop = faultsimError("dropped")

type faultsimError string

func (e faultsimError) Error() string { return string(e) }
