package fabric

import (
	"fmt"
	"sync"
	"time"

	"panoptes/internal/breaker"
	"panoptes/internal/capture"
	"panoptes/internal/core"
	"panoptes/internal/obs"
)

// TransportMode selects how a worker spreads sends across its
// endpoints, mirroring the beats-style output modes: failover keeps one
// active endpoint with the rest as standbys; round-robin rotates across
// all of them.
type TransportMode string

const (
	ModeFailover   TransportMode = "failover"
	ModeRoundRobin TransportMode = "roundrobin"
)

// ParseMode validates a -fabric-mode style flag value.
func ParseMode(s string) (TransportMode, error) {
	switch TransportMode(s) {
	case ModeFailover, ModeRoundRobin:
		return TransportMode(s), nil
	default:
		return "", fmt.Errorf("fabric: unknown transport mode %q (want failover or roundrobin)", s)
	}
}

type msgKind int

const (
	msgHeartbeat msgKind = iota
	msgFlows
	msgComplete
)

// message is one worker→coordinator transport frame. Flows carry a
// shipment reference each; whoever terminates the message (the
// coordinator, or the sender on a failed send) releases them.
type message struct {
	kind   msgKind
	tag    int64
	flows  []*capture.Flow
	result *leaseResult
}

// endpoint is one in-memory worker→coordinator connection. deliver is
// the coordinator's intake; fault is the injectable TransportDrop hook,
// consulted before delivery so a dropped message is never half-applied.
type endpoint struct {
	name    string
	fault   func(endpoint string) error
	deliver func(message)
}

func (e *endpoint) send(m message) error {
	if e.fault != nil {
		if err := e.fault(e.name); err != nil {
			return err
		}
	}
	e.deliver(m)
	return nil
}

var (
	mSendOK  = obs.Default.Counter("fabric_transport_sends_total", "result", "ok")
	mSendErr = obs.Default.Counter("fabric_transport_sends_total", "result", "error")
)

// client fans one worker's messages across its endpoints. Every
// endpoint is health-gated by its own circuit breaker (driven by the
// worker's virtual clock); a failed send records the failure and moves
// on to the next endpoint with the same message, so a single drop costs
// a failover, not a flow.
type client struct {
	mode      TransportMode
	endpoints []*endpoint
	breakers  []*breaker.Breaker
	now       func() time.Time

	mu   sync.Mutex
	next int // failover: the active endpoint; round-robin: the cursor
}

// transport health gating: open after 2 consecutive failed sends, probe
// again after 15 virtual seconds (the worker clock advances with every
// visit, so a cooldown spans a couple of visits).
const (
	transportBreakerThreshold = 2
	transportBreakerCooldown  = 15 * time.Second
)

func newClient(mode TransportMode, c *coordinator, cfg *Config, workerID string, w *core.World) *client {
	cl := &client{mode: mode, now: w.Clock.Now}
	for i := 0; i < cfg.Endpoints; i++ {
		cl.endpoints = append(cl.endpoints, &endpoint{
			name:    fmt.Sprintf("%s/ep%d", workerID, i),
			fault:   cfg.Faults.TransportFault,
			deliver: c.deliver,
		})
		cl.breakers = append(cl.breakers, breaker.New(transportBreakerThreshold, transportBreakerCooldown))
	}
	return cl
}

// send delivers m through the first healthy endpoint, failing over on
// error. It returns an error only when every endpoint failed or was
// breaker-refused — the message is then undelivered and the caller owns
// its flow references again.
func (cl *client) send(m message) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	n := len(cl.endpoints)
	start := cl.next
	var lastErr error
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		br := cl.breakers[idx]
		if !br.Allow(cl.now()) {
			continue
		}
		err := cl.endpoints[idx].send(m)
		br.Record(err == nil, cl.now())
		if err == nil {
			switch cl.mode {
			case ModeRoundRobin:
				cl.next = (idx + 1) % n
			default: // failover sticks with the endpoint that worked
				cl.next = idx
			}
			mSendOK.Inc()
			return nil
		}
		lastErr = err
	}
	mSendErr.Inc()
	if lastErr == nil {
		lastErr = fmt.Errorf("fabric: every endpoint breaker is open")
	}
	return lastErr
}
