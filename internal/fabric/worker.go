package fabric

import (
	"sync"
	"time"

	"panoptes/internal/browser"
	"panoptes/internal/capture"
	"panoptes/internal/core"
	"panoptes/internal/faultsim"
	"panoptes/internal/websim"
)

// lease is one issued unit of work: a slice of one browser's site list
// plus the session state the previous accepted lease left behind. Tag is
// the issue's generation — the coordinator's dedupe key.
type lease struct {
	Browser string
	Seq     int
	Sites   []*websim.Site
	State   *browser.SessionState
	Tag     int64

	reclaimed chan struct{} // closed when the coordinator reclaims this issue
}

// leaseResult is a worker's completion report. flowCount lets the
// reducer cross-check that every shipped batch arrived before the lease
// is committed.
type leaseResult struct {
	visits    []core.VisitRecord
	state     *browser.SessionState
	retries   int
	degraded  int
	errors    int
	flowCount int
}

// shipper is the worker-side capture.Tap: it rides the worker DB's
// commit stream next to the worker's own streaming pipeline, parks each
// attempt's flows until the campaign seals the attempt, then ships them
// to the coordinator in commit order tagged with the current lease
// issue. A retracted attempt's flows are dropped here — they never
// cross the transport — and the retraction doubles as a heartbeat so a
// worker deep in a retry ladder is not mistaken for dead.
type shipper struct {
	cl *client

	mu      sync.Mutex
	tag     int64
	pending map[int64][]*capture.Flow
	shipped int
	err     error // first transport failure: the lease issue is doomed
}

func newShipper(cl *client) *shipper {
	return &shipper{cl: cl, pending: make(map[int64][]*capture.Flow)}
}

// begin rebinds the shipper to a new lease issue.
func (sh *shipper) begin(tag int64) {
	sh.mu.Lock()
	sh.tag = tag
	sh.shipped = 0
	sh.err = nil
	for a, flows := range sh.pending {
		for _, f := range flows {
			f.Release()
		}
		delete(sh.pending, a)
	}
	sh.mu.Unlock()
}

func (sh *shipper) doomed() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.err
}

func (sh *shipper) shippedCount() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.shipped
}

// Observe implements capture.Tap. Attempt-tagged flows park until their
// attempt seals; untagged flows (settle-period telemetry) committed
// outside any attempt ship immediately, preserving commit order.
func (sh *shipper) Observe(f *capture.Flow) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.tag == 0 {
		return
	}
	f.Ref()
	if f.Attempt != 0 {
		sh.pending[f.Attempt] = append(sh.pending[f.Attempt], f)
		return
	}
	sh.shipLocked([]*capture.Flow{f})
}

// Seal implements capture.Tap: the attempt committed, ship its flows.
func (sh *shipper) Seal(attempt int64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	flows := sh.pending[attempt]
	delete(sh.pending, attempt)
	sh.shipLocked(flows)
}

// Retract implements capture.Tap: the attempt was quarantined. Its
// flows die here; a heartbeat keeps the lease fresh through long retry
// ladders that commit nothing.
func (sh *shipper) Retract(attempt int64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, f := range sh.pending[attempt] {
		f.Release()
	}
	delete(sh.pending, attempt)
	if sh.tag != 0 && sh.err == nil {
		// Best-effort: a dropped heartbeat costs nothing.
		_ = sh.cl.send(message{kind: msgHeartbeat, tag: sh.tag})
	}
}

// Reset implements the optional tap reset (DB.Reset between leases).
func (sh *shipper) Reset() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for a, flows := range sh.pending {
		for _, f := range flows {
			f.Release()
		}
		delete(sh.pending, a)
	}
}

func (sh *shipper) shipLocked(flows []*capture.Flow) {
	if len(flows) == 0 {
		return
	}
	if sh.err != nil {
		for _, f := range flows {
			f.Release()
		}
		return
	}
	if err := sh.cl.send(message{kind: msgFlows, tag: sh.tag, flows: flows}); err != nil {
		// Undelivered: the references are ours again. The lease cannot
		// be completed truthfully any more — mark it doomed; the worker
		// abandons it and the coordinator reclaims by expiry.
		for _, f := range flows {
			f.Release()
		}
		sh.err = err
		return
	}
	sh.shipped += len(flows)
}

// worker runs one full measurement plane, executing leases until the
// plan drains. Worker worlds are never shared between goroutines.
type worker struct {
	id      string
	world   *core.World
	coord   *coordinator
	cfg     *Config
	cl      *client
	ship    *shipper
	faults  *faultsim.Injector
	leaseNo int
}

func newWorker(id string, w *core.World, c *coordinator, cfg *Config) *worker {
	cl := newClient(cfg.Mode, c, cfg, id, w)
	sh := newShipper(cl)
	// The shipper rides the commit tap beside the worker's own streaming
	// pipeline (the worker plane keeps analyzing; its partials stand in
	// as the integrity cross-check the reducer consumes via flowCount).
	w.DB.SetTap(capture.Taps{w.Pipeline, sh})
	return &worker{id: id, world: w, coord: c, cfg: cfg, cl: cl, ship: sh, faults: cfg.Faults}
}

// run processes leases until the plan is fully committed. It returns
// true when the worker retired "crashed" — an injected crash, a stall,
// a transport partition, or a completion rejected as stale — in which
// case the supervisor discards this world and starts a replacement:
// browser session and activity clocks only move forward, so a world
// that ran a never-accepted lease can no longer replay deterministic
// schedules.
func (wk *worker) run() (crashed bool) {
	for {
		l, done := wk.coord.acquire()
		if done {
			return false
		}
		wk.leaseNo++
		kind, _ := wk.faults.WorkerFault(wk.id, l.Browser, wk.leaseNo)
		if !wk.runLease(l, kind) {
			return true
		}
	}
}

// runLease executes one lease issue. It returns false when the worker
// must retire.
func (wk *worker) runLease(l *lease, fault faultsim.Kind) bool {
	w := wk.world
	// The previous lease's flows were shipped (and its analyzer partials
	// served their purpose); start this lease from a clean capture plane.
	w.DB.Reset()
	wk.ship.begin(l.Tag)
	defer wk.ship.begin(0)

	cfg := wk.cfg.Campaign
	cfg.Browsers = []string{l.Browser}
	cfg.Sites = l.Sites
	cfg.Parallelism = 1
	cfg.Checkpoint = true // the checkpoint carries the chained SessionState out
	if l.State != nil {
		// Resume the session chain from the previous accepted lease. The
		// resume path expects a stopped app (it restores state through
		// launch), so stop the browser if an earlier lease left it up.
		if b, err := w.Browser(l.Browser); err == nil && b.Running() {
			b.Stop()
		}
		cfg.Resume = &core.Checkpoint{
			Incognito: cfg.Incognito,
			Browsers:  map[string]*core.BrowserCheckpoint{l.Browser: {State: l.State}},
		}
	}
	if fault == faultsim.WorkerCrash {
		// Die mid-lease: crawl only part of the slice (its batches ship
		// and will be quarantined on reclaim), never complete, retire.
		cfg.StopAfterVisits = (len(l.Sites) + 1) / 2
	}

	// Heartbeat pump: lease liveness must not depend on how often the
	// crawl commits flows (a slow first visit mints certificates for a
	// while), so a wall-clock pump keeps the lease fresh for as long as
	// the campaign is actually running. A crash-mode lease gets no pump —
	// the worker "dies" the moment it stops shipping, and the silence is
	// what lets the coordinator reclaim it. The pump stops before the
	// stall window for the same reason.
	var pumpStop chan struct{}
	var pumpWG sync.WaitGroup
	if fault != faultsim.WorkerCrash {
		pumpStop = make(chan struct{})
		pumpWG.Add(1)
		go func() {
			defer pumpWG.Done()
			iv := wk.cfg.StaleAfter / 2
			if iv < 10*time.Millisecond {
				iv = 10 * time.Millisecond
			}
			tick := time.NewTicker(iv)
			defer tick.Stop()
			for {
				select {
				case <-pumpStop:
					return
				case <-tick.C:
					if wk.ship.doomed() == nil {
						_ = wk.cl.send(message{kind: msgHeartbeat, tag: l.Tag})
					}
				}
			}
		}()
	}

	res, err := w.RunCampaign(cfg)
	if pumpStop != nil {
		close(pumpStop)
		pumpWG.Wait()
	}
	if err != nil || fault == faultsim.WorkerCrash {
		return false
	}
	if wk.ship.doomed() != nil {
		// Partitioned from the coordinator mid-lease: some batches never
		// arrived, so completing would fail the reducer's flow-count
		// cross-check anyway. Abandon the issue and retire.
		return false
	}

	lr := &leaseResult{
		visits:    res.Visits,
		retries:   res.Retries,
		degraded:  res.Degraded,
		errors:    res.Errors,
		flowCount: wk.ship.shippedCount(),
	}
	if res.Checkpoint != nil {
		if bc := res.Checkpoint.Browsers[l.Browser]; bc != nil {
			lr.state = bc.State
		}
	}

	if fault == faultsim.WorkerStall {
		// Freeze past the lease deadline: stop reporting until the
		// coordinator has reclaimed the issue, then submit the stale
		// completion anyway — the tag dedupe must reject it. The run
		// was never accepted, so this world retires like a crash.
		<-l.reclaimed
		_ = wk.cl.send(message{kind: msgComplete, tag: l.Tag, result: lr})
		return false
	}

	if err := wk.cl.send(message{kind: msgComplete, tag: l.Tag, result: lr}); err != nil {
		return false
	}
	select {
	case <-l.reclaimed:
		// The issue was reclaimed before (or while) our completion
		// landed — it bounced off the dedupe and the lease will re-run
		// elsewhere. This world's browser state has outrun the accepted
		// chain; retire it.
		return false
	default:
	}
	return true
}
