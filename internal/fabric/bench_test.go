package fabric

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"panoptes/internal/core"
	"panoptes/internal/faultsim"
)

// BenchmarkFabricScaling is the fabric throughput baseline: the full
// 15-browser fleet over 4 sites with the wide-area RTT model, at 1, 2
// and 8 workers, plus a worker-kill chaos variant. Worker planes are
// built outside the measured window (a deployment keeps worker
// processes warm; the fabric's job is moving leases, not booting
// worlds), so visits/sec measures lease execution + shipping + merge.
// ci.sh emits the results as BENCH_fabric.json; the 8-worker topology
// must hold ≥ 3× the 1-worker visits/sec.
func BenchmarkFabricScaling(b *testing.B) {
	const (
		sites    = 4
		benchRTT = 10 * time.Millisecond
	)
	worldCfg := core.WorldConfig{Sites: sites, UpstreamRTT: benchRTT} // nil Profiles = full fleet

	run := func(b *testing.B, workers int, faults *faultsim.Injector) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			coord, err := core.NewWorld(worldCfg)
			if err != nil {
				b.Fatal(err)
			}
			// Pre-build the worker planes concurrently (one spare for the
			// kill variant's replacement worker).
			pool := make([]*core.World, workers+1)
			var wg sync.WaitGroup
			for j := range pool {
				wg.Add(1)
				go func(j int) {
					defer wg.Done()
					w, err := core.NewWorld(worldCfg)
					if err != nil {
						b.Error(err)
						return
					}
					pool[j] = w
				}(j)
			}
			wg.Wait()
			if b.Failed() {
				return
			}
			var mu sync.Mutex
			newWorker := func() (*core.World, error) {
				mu.Lock()
				defer mu.Unlock()
				if len(pool) > 0 {
					w := pool[len(pool)-1]
					pool = pool[:len(pool)-1]
					return w, nil
				}
				return core.NewWorld(worldCfg)
			}

			start := time.Now()
			res, err := Run(Config{
				World:          coord,
				NewWorkerWorld: newWorker,
				Workers:        workers,
				LeaseVisits:    2,
				Campaign:       core.CampaignConfig{},
				Faults:         faults,
			})
			if err != nil {
				b.Fatal(err)
			}
			elapsed := time.Since(start).Seconds()
			b.ReportMetric(float64(len(res.Campaign.Visits))/elapsed, "visits/sec")
			b.ReportMetric(float64(res.Stats.LeasesReclaimed), "lease_reclaims")
			mu.Lock()
			for _, w := range pool {
				w.Close()
			}
			mu.Unlock()
			coord.Close()
		}
	}

	for _, workers := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			run(b, workers, nil)
		})
	}
	// The chaos variant kills one of four workers mid-lease: the lease is
	// reclaimed, a replacement spawns, and throughput degrades gracefully
	// instead of losing visits.
	b.Run("workers=4/kill", func(b *testing.B) {
		run(b, 4, faultsim.New(faultsim.Plan{Seed: 42, Scripted: []faultsim.ScriptedFault{
			{Kind: faultsim.WorkerCrash, Browser: "w1", Attempt: 1},
		}}))
	})
}
