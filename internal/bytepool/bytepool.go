// Package bytepool provides size-classed, sync.Pool-backed byte
// buffers for the capture→analysis hot path. The MITM proxy allocated
// a fresh buffer for every request and response body it read
// (io.ReadAll per exchange), and the leak scanner built a fresh
// haystack string per flow; both now borrow a pooled bytes.Buffer
// sized by a hint and return it after use. Buffers are binned into
// geometric size classes so a burst of large bodies does not leave the
// small-body pool holding megabyte slabs, and buffers that grew far
// past the largest class are dropped rather than pinned.
//
// Pool pressure is observable: every Get is counted in the
// bytepool_get_total obs family, labelled by pool name and
// hit (reused a pooled buffer) vs miss (allocated fresh).
package bytepool

import (
	"bytes"
	"sync"

	"panoptes/internal/obs"
)

func init() {
	obs.Default.Help("bytepool_get_total", "Pooled-buffer checkouts by pool and result (hit = reused, miss = freshly allocated).")
}

// dropAbove multiplies the largest class size: a buffer that grew past
// it is released to the GC on Put instead of re-pooled.
const dropAbove = 4

// Pool is a set of size-classed bytes.Buffer pools. The zero value is
// not usable; call New. All methods are safe for concurrent use.
type Pool struct {
	sizes []int // ascending class capacities
	pools []sync.Pool
	hit   *obs.Counter
	miss  *obs.Counter
}

// New builds a pool named for its obs series with the given ascending
// size classes (bytes). A Get hint selects the smallest class that
// fits; Put re-bins by actual capacity.
func New(name string, sizes ...int) *Pool {
	if len(sizes) == 0 {
		panic("bytepool: New needs at least one size class")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			panic("bytepool: size classes must be ascending")
		}
	}
	return &Pool{
		sizes: sizes,
		pools: make([]sync.Pool, len(sizes)),
		hit:   obs.Default.Counter("bytepool_get_total", "pool", name, "result", "hit"),
		miss:  obs.Default.Counter("bytepool_get_total", "pool", name, "result", "miss"),
	}
}

// class returns the index of the smallest class with capacity >= n,
// or the largest class when n exceeds them all.
func (p *Pool) class(n int) int {
	for i, s := range p.sizes {
		if n <= s {
			return i
		}
	}
	return len(p.sizes) - 1
}

// Get borrows an empty buffer with at least hint bytes of capacity
// pre-reserved (hint <= 0 selects the smallest class). The buffer may
// still grow past its class; Put re-bins it.
func (p *Pool) Get(hint int) *bytes.Buffer {
	if hint < 0 {
		hint = 0
	}
	c := p.class(hint)
	if v := p.pools[c].Get(); v != nil {
		p.hit.Inc()
		return v.(*bytes.Buffer)
	}
	p.miss.Inc()
	buf := &bytes.Buffer{}
	buf.Grow(p.sizes[c])
	return buf
}

// Put resets and returns a buffer to the class matching its grown
// capacity. Buffers beyond dropAbove× the largest class are dropped so
// one pathological body cannot pin a slab for the process lifetime.
// Put(nil) is a no-op.
func (p *Pool) Put(buf *bytes.Buffer) {
	if buf == nil {
		return
	}
	c := buf.Cap()
	if c > dropAbove*p.sizes[len(p.sizes)-1] {
		return
	}
	buf.Reset()
	// Largest class whose size <= capacity, so a Get(hint) from that
	// class always receives at least the capacity it asked for.
	bin := 0
	for i := len(p.sizes) - 1; i >= 0; i-- {
		if c >= p.sizes[i] {
			bin = i
			break
		}
	}
	p.pools[bin].Put(buf)
}
