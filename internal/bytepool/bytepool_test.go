package bytepool

import (
	"testing"

	"panoptes/internal/obs"
)

func TestGetHintReservesCapacity(t *testing.T) {
	p := New("test-cap", 64, 1024, 65536)
	for _, hint := range []int{0, 1, 64, 65, 1024, 4096, 1 << 20} {
		buf := p.Get(hint)
		want := hint
		if want > 65536 {
			want = 65536 // beyond the largest class only the class is promised
		}
		if buf.Cap() < want {
			t.Fatalf("Get(%d) returned cap %d", hint, buf.Cap())
		}
		if buf.Len() != 0 {
			t.Fatalf("Get(%d) returned non-empty buffer", hint)
		}
		p.Put(buf)
	}
}

func TestPutRebinsByCapacity(t *testing.T) {
	p := New("test-rebin", 64, 1024)
	// Under -race, sync.Pool drops a fraction of Puts on purpose, so
	// retry: a grown buffer must eventually come back for large hints,
	// not for small ones that would then over-deliver.
	for attempt := 0; attempt < 50; attempt++ {
		buf := p.Get(10)
		buf.Grow(2048) // outgrow the small class
		p.Put(buf)
		big := p.Get(2000)
		ok := big.Cap() >= 2000
		p.Put(big)
		if ok {
			return
		}
	}
	t.Fatal("rebinned buffer never came back from the large class")
}

func TestOversizedBuffersDropped(t *testing.T) {
	p := New("test-drop", 64)
	buf := p.Get(0)
	buf.Grow(64 * dropAbove * 2)
	p.Put(buf)
	got := p.Get(0)
	if got == buf {
		t.Fatal("oversized buffer was re-pooled")
	}
	p.Put(got)
	p.Put(nil) // no-op
}

func TestHitMissCounters(t *testing.T) {
	p := New("test-counters", 64)
	base := counter("test-counters", "hit") + counter("test-counters", "miss")
	gets := 0
	for attempt := 0; attempt < 50 && counter("test-counters", "hit") == 0; attempt++ {
		b := p.Get(0)
		p.Put(b)
		p.Get(0) // sync.Pool may drop the Put under -race; retry until a hit lands
		gets += 2
	}
	if counter("test-counters", "hit") == 0 {
		t.Fatal("put-then-get never counted as a hit")
	}
	if got := counter("test-counters", "hit") + counter("test-counters", "miss") - base; got != float64(gets) {
		t.Fatalf("counted %.0f gets, want %d", got, gets)
	}
}

func counter(pool, result string) float64 {
	var total float64
	for _, s := range obs.Default.Series("bytepool_get_total") {
		if s.Labels["pool"] == pool && s.Labels["result"] == result {
			total += s.Value
		}
	}
	return total
}

func TestConcurrentUse(t *testing.T) {
	p := New("test-conc", 64, 4096)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				buf := p.Get(g * 512)
				buf.WriteString("payload")
				p.Put(buf)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
