package appium

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"

	"panoptes/internal/netsim"
)

// fakeApp implements App with a two-step wizard.
type fakeApp struct {
	mu       sync.Mutex
	running  bool
	resets   int
	step     int
	failNext bool
}

func (a *fakeApp) Launch() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.failNext {
		a.failNext = false
		return fmt.Errorf("activity crashed")
	}
	a.running = true
	return nil
}

func (a *fakeApp) Stop() { a.mu.Lock(); a.running = false; a.mu.Unlock() }

func (a *fakeApp) Reset() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.running = false
	a.resets++
	a.step = 0
	return nil
}

func (a *fakeApp) Running() bool { a.mu.Lock(); defer a.mu.Unlock(); return a.running }

func (a *fakeApp) UIElements() []UIElement {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch a.step {
	case 0:
		return []UIElement{{ID: "accept", Text: "Accept", Enabled: true}}
	case 1:
		return []UIElement{{ID: "skip", Text: "Skip", Enabled: true}}
	default:
		return []UIElement{{ID: "url_bar", Enabled: true}}
	}
}

func (a *fakeApp) UITap(id string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	want := []string{"accept", "skip"}
	if a.step < len(want) {
		if id != want[a.step] {
			return fmt.Errorf("no element %q", id)
		}
		a.step++
		return nil
	}
	if id == "url_bar" {
		return nil
	}
	return fmt.Errorf("no element %q", id)
}

func testClientServer(t *testing.T) (*Client, *fakeApp) {
	t.Helper()
	inet := netsim.New()
	srv := NewServer()
	app := &fakeApp{}
	srv.RegisterApp("com.fake.browser", app)
	l, _, err := inet.ListenDomain("appium.local", "US", 4723)
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(l)
	t.Cleanup(func() { hs.Close() })

	c := NewClient("http://appium.local:4723", func(ctx context.Context, addr string) (net.Conn, error) {
		return inet.Dial(ctx, addr)
	})
	return c, app
}

func TestSessionLifecycle(t *testing.T) {
	c, app := testClientServer(t)
	sess, err := c.NewSession("com.fake.browser")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Reset(); err != nil {
		t.Fatal(err)
	}
	if app.resets != 1 {
		t.Fatalf("resets = %d", app.resets)
	}
	if err := sess.Launch(); err != nil {
		t.Fatal(err)
	}
	if !app.Running() {
		t.Fatal("app not running")
	}
	if err := sess.Terminate(); err != nil {
		t.Fatal(err)
	}
	if app.Running() {
		t.Fatal("app still running")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	// Session gone.
	if err := sess.Launch(); err == nil {
		t.Fatal("launch on closed session succeeded")
	}
}

func TestUnknownApp(t *testing.T) {
	c, _ := testClientServer(t)
	if _, err := c.NewSession("com.ghost"); err == nil ||
		!strings.Contains(err.Error(), "not installed") {
		t.Fatalf("err = %v", err)
	}
}

func TestElementsAndClick(t *testing.T) {
	c, app := testClientServer(t)
	sess, _ := c.NewSession("com.fake.browser")
	sess.Launch()
	els, err := sess.Elements()
	if err != nil || len(els) != 1 || els[0].ID != "accept" {
		t.Fatalf("elements = %v, %v", els, err)
	}
	if err := sess.Click("wrong"); err == nil {
		t.Fatal("wrong click succeeded")
	}
	if err := sess.Click("accept"); err != nil {
		t.Fatal(err)
	}
	if app.step != 1 {
		t.Fatalf("step = %d", app.step)
	}
}

func TestCompleteWizard(t *testing.T) {
	c, app := testClientServer(t)
	sess, _ := c.NewSession("com.fake.browser")
	sess.Launch()
	if err := sess.CompleteWizard(); err != nil {
		t.Fatal(err)
	}
	if app.step != 2 {
		t.Fatalf("wizard ended at step %d", app.step)
	}
	// Running again is a no-op (url_bar already visible).
	if err := sess.CompleteWizard(); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchErrorPropagates(t *testing.T) {
	c, app := testClientServer(t)
	app.failNext = true
	sess, _ := c.NewSession("com.fake.browser")
	if err := sess.Launch(); err == nil || !strings.Contains(err.Error(), "activity crashed") {
		t.Fatalf("err = %v", err)
	}
}

func TestHTTPErrors(t *testing.T) {
	c, _ := testClientServer(t)
	// Bad route.
	if err := c.do(http.MethodGet, "/session/none/elements", nil, nil); err == nil {
		t.Fatal("unknown session accepted")
	}
	// Method not allowed on /session.
	if err := c.do(http.MethodGet, "/session", nil, nil); err == nil {
		t.Fatal("GET /session accepted")
	}
}

func TestMultipleSessionsOneApp(t *testing.T) {
	c, _ := testClientServer(t)
	s1, err := c.NewSession("com.fake.browser")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.NewSession("com.fake.browser")
	if err != nil {
		t.Fatal(err)
	}
	if s1.ID == s2.ID {
		t.Fatal("duplicate session ids")
	}
}
