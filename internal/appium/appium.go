// Package appium provides the UI-automation layer of the testbed: a
// W3C-WebDriver-flavoured HTTP server that exposes app lifecycle (reset
// to factory settings, launch, terminate) and UI interaction (find
// elements, tap), plus a Go client. Panoptes uses it exactly as the
// paper does (§2.1): reset each browser before a campaign and click
// through its setup wizard.
package appium

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
)

// App is the automation surface a device app exposes. The browser
// emulator implements it.
type App interface {
	Launch() error
	Stop()
	Reset() error
	Running() bool
	UIElements() []UIElement
	UITap(id string) error
}

// UIElement mirrors the browser package's element descriptor without
// importing it.
type UIElement struct {
	ID      string `json:"id"`
	Text    string `json:"text"`
	Class   string `json:"class"`
	Enabled bool   `json:"enabled"`
}

// ElementSource lets apps report their UI tree; adapters convert their
// native element type.
type ElementSource func() []UIElement

// Server is the Appium endpoint.
type Server struct {
	mu       sync.Mutex
	apps     map[string]App // appPackage -> app
	sessions map[string]string
	nextSess int
}

// NewServer returns an empty server; register apps before driving them.
func NewServer() *Server {
	return &Server{apps: make(map[string]App), sessions: make(map[string]string)}
}

// RegisterApp makes an app automatable.
func (s *Server) RegisterApp(pkg string, app App) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.apps[pkg] = app
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// Handler returns the HTTP API.
//
//	POST   /session                      {"capabilities":{"appPackage":...}}
//	DELETE /session/{id}
//	POST   /session/{id}/app/reset
//	POST   /session/{id}/app/launch
//	POST   /session/{id}/app/terminate
//	GET    /session/{id}/elements
//	POST   /session/{id}/element/{eid}/click
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/session", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
			return
		}
		var body struct {
			Capabilities struct {
				AppPackage string `json:"appPackage"`
			} `json:"capabilities"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{"bad capabilities: " + err.Error()})
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, ok := s.apps[body.Capabilities.AppPackage]; !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{
				fmt.Sprintf("app %q not installed", body.Capabilities.AppPackage)})
			return
		}
		s.nextSess++
		id := fmt.Sprintf("sess-%d", s.nextSess)
		s.sessions[id] = body.Capabilities.AppPackage
		writeJSON(w, http.StatusOK, map[string]string{"sessionId": id})
	})
	mux.HandleFunc("/session/", func(w http.ResponseWriter, r *http.Request) {
		parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/session/"), "/")
		sessID := parts[0]
		s.mu.Lock()
		pkg, ok := s.sessions[sessID]
		app := s.apps[pkg]
		s.mu.Unlock()
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{"unknown session " + sessID})
			return
		}
		rest := strings.Join(parts[1:], "/")
		switch {
		case rest == "" && r.Method == http.MethodDelete:
			s.mu.Lock()
			delete(s.sessions, sessID)
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
		case rest == "app/reset" && r.Method == http.MethodPost:
			if err := app.Reset(); err != nil {
				writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
				return
			}
			writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
		case rest == "app/launch" && r.Method == http.MethodPost:
			if err := app.Launch(); err != nil {
				writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
				return
			}
			writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
		case rest == "app/terminate" && r.Method == http.MethodPost:
			app.Stop()
			writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
		case rest == "elements" && r.Method == http.MethodGet:
			writeJSON(w, http.StatusOK, map[string][]UIElement{"elements": app.UIElements()})
		case strings.HasPrefix(rest, "element/") && strings.HasSuffix(rest, "/click") && r.Method == http.MethodPost:
			eid := strings.TrimSuffix(strings.TrimPrefix(rest, "element/"), "/click")
			if err := app.UITap(eid); err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
				return
			}
			writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
		default:
			writeJSON(w, http.StatusNotFound, errorResponse{"no route " + r.Method + " " + rest})
		}
	})
	return mux
}

// Client drives a Server over HTTP.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient builds a client for baseURL ("http://host:port") using dial
// for transport.
func NewClient(baseURL string, dial func(ctx context.Context, addr string) (net.Conn, error)) *Client {
	return &Client{
		BaseURL: baseURL,
		HTTP: &http.Client{Transport: &http.Transport{
			DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
				return dial(ctx, addr)
			},
		}},
	}
}

func (c *Client) do(method, path string, body any, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("appium: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			return fmt.Errorf("appium: %s %s: %s", method, path, er.Error)
		}
		return fmt.Errorf("appium: %s %s: status %d", method, path, resp.StatusCode)
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// Session is an open automation session.
type Session struct {
	c  *Client
	ID string
}

// NewSession opens a session on an app package.
func (c *Client) NewSession(appPackage string) (*Session, error) {
	var out struct {
		SessionID string `json:"sessionId"`
	}
	err := c.do(http.MethodPost, "/session", map[string]any{
		"capabilities": map[string]string{"appPackage": appPackage},
	}, &out)
	if err != nil {
		return nil, err
	}
	return &Session{c: c, ID: out.SessionID}, nil
}

// Reset resets the app to factory settings.
func (s *Session) Reset() error {
	return s.c.do(http.MethodPost, "/session/"+s.ID+"/app/reset", nil, nil)
}

// Launch starts the app.
func (s *Session) Launch() error {
	return s.c.do(http.MethodPost, "/session/"+s.ID+"/app/launch", nil, nil)
}

// Terminate stops the app.
func (s *Session) Terminate() error {
	return s.c.do(http.MethodPost, "/session/"+s.ID+"/app/terminate", nil, nil)
}

// Elements lists visible UI elements.
func (s *Session) Elements() ([]UIElement, error) {
	var out struct {
		Elements []UIElement `json:"elements"`
	}
	if err := s.c.do(http.MethodGet, "/session/"+s.ID+"/elements", nil, &out); err != nil {
		return nil, err
	}
	return out.Elements, nil
}

// Click taps an element by id.
func (s *Session) Click(elementID string) error {
	return s.c.do(http.MethodPost, "/session/"+s.ID+"/element/"+elementID+"/click", nil, nil)
}

// Close deletes the session.
func (s *Session) Close() error {
	return s.c.do(http.MethodDelete, "/session/"+s.ID, nil, nil)
}

// CompleteWizard clicks through a first-run wizard: it taps the single
// enabled button on each page until the browser chrome (url_bar)
// appears, with a step bound to catch loops.
func (s *Session) CompleteWizard() error {
	for step := 0; step < 16; step++ {
		els, err := s.Elements()
		if err != nil {
			return err
		}
		if len(els) == 0 {
			return fmt.Errorf("appium: no elements on screen")
		}
		done := false
		for _, e := range els {
			if e.ID == "url_bar" {
				done = true
			}
		}
		if done {
			return nil
		}
		if err := s.Click(els[0].ID); err != nil {
			return err
		}
	}
	return fmt.Errorf("appium: wizard did not finish within step bound")
}
