package hostlist

// BundledHosts is the repo's stand-in for the Steven Black aggregate hosts
// list the paper uses. It covers every ad/analytics domain the paper names
// plus the common embeds the simulated websites reference. The format is
// the real one, so a downstream user can swap in the full upstream list.
const BundledHosts = `# Panoptes bundled ad/tracker hosts list
# Format-compatible with https://github.com/StevenBlack/hosts
# Category: ad
0.0.0.0 doubleclick.net
0.0.0.0 ad.doubleclick.net
0.0.0.0 rubiconproject.com
0.0.0.0 adnxs.com
0.0.0.0 openx.net
0.0.0.0 pubmatic.com
0.0.0.0 bidswitch.net
0.0.0.0 criteo.com
0.0.0.0 taboola.com
0.0.0.0 outbrain.com
0.0.0.0 zemanta.com
0.0.0.0 adsrvr.org
0.0.0.0 rlcdn.com
0.0.0.0 casalemedia.com
0.0.0.0 smartadserver.com
0.0.0.0 adform.net
0.0.0.0 yieldmo.com
0.0.0.0 sharethrough.com
0.0.0.0 spotxchange.com
0.0.0.0 indexww.com
0.0.0.0 oleads.com
0.0.0.0 s-odx.oleads.com
0.0.0.0 admob.com
0.0.0.0 unityads.unity3d.com
0.0.0.0 applovin.com
0.0.0.0 vungle.com
0.0.0.0 inmobi.com
0.0.0.0 mopub.com
0.0.0.0 adfox.ru
# Category: analytics
0.0.0.0 google-analytics.com
0.0.0.0 googletagmanager.com
0.0.0.0 demdex.net
0.0.0.0 scorecardresearch.com
0.0.0.0 adjust.com
0.0.0.0 appsflyer.com
0.0.0.0 appsflyersdk.com
0.0.0.0 mixpanel.com
0.0.0.0 amplitude.com
0.0.0.0 segment.io
0.0.0.0 branch.io
0.0.0.0 crashlytics.com
0.0.0.0 app-measurement.com
0.0.0.0 chartbeat.com
0.0.0.0 newrelic.com
0.0.0.0 hotjar.com
0.0.0.0 quantserve.com
0.0.0.0 statcounter.com
0.0.0.0 firebaselogging-pa.googleapis.com
# Category: tracker
0.0.0.0 bluekai.com
0.0.0.0 exelator.com
0.0.0.0 tapad.com
0.0.0.0 agkn.com
0.0.0.0 mathtag.com
0.0.0.0 turn.com
0.0.0.0 eyeota.net
0.0.0.0 crwdcntrl.net
0.0.0.0 1rx.io
0.0.0.0 id5-sync.com
# Category: social
0.0.0.0 graph.facebook.com
0.0.0.0 connect.facebook.net
0.0.0.0 analytics.tiktok.com
0.0.0.0 ads.twitter.com
0.0.0.0 snap.licdn.com
`

// Bundled parses BundledHosts; it panics on error because the constant is
// part of the build.
func Bundled() *List {
	l, err := ParseString(BundledHosts)
	if err != nil {
		panic("hostlist: bundled list malformed: " + err.Error())
	}
	return l
}
