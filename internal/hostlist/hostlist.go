// Package hostlist classifies domains against a Steven-Black-style hosts
// list, as the paper does for Figure 3 ("third party and ad related"
// native-request destinations). It parses the standard hosts-file format
// (`0.0.0.0 domain # comment`), supports category sections, performs
// subdomain-inclusive matching, and provides an eTLD+1-lite registrable-
// domain function for third-party determination.
package hostlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Category labels a blocked domain's reason, mirroring the section
// structure of aggregate hosts lists.
type Category string

// Categories found in aggregated ad/tracker hosts lists.
const (
	CategoryAd        Category = "ad"
	CategoryAnalytics Category = "analytics"
	CategoryTracker   Category = "tracker"
	CategorySocial    Category = "social"
	CategoryMalware   Category = "malware"
	CategoryUnknown   Category = "unknown"
)

// AdRelated reports whether the category counts as "ad or analytics
// related" for Figure 3's definition.
func (c Category) AdRelated() bool {
	switch c {
	case CategoryAd, CategoryAnalytics, CategoryTracker:
		return true
	}
	return false
}

// List is a compiled hosts list.
type List struct {
	mu    sync.RWMutex
	exact map[string]Category // fqdn -> category
}

// New returns an empty list.
func New() *List {
	return &List{exact: make(map[string]Category)}
}

// Add inserts a domain with a category.
func (l *List) Add(domain string, c Category) {
	d := canonical(domain)
	if d == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.exact[d] = c
}

// Len returns the number of entries.
func (l *List) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.exact)
}

// Parse reads hosts-file syntax. Category sections are introduced by
// comment markers of the form `# Category: ad` and apply until the next
// marker; entries before any marker get CategoryUnknown.
func Parse(r io.Reader) (*List, error) {
	l := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	current := CategoryUnknown
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			if v, ok := strings.CutPrefix(rest, "Category:"); ok {
				current = Category(strings.ToLower(strings.TrimSpace(v)))
			}
			continue
		}
		// Strip trailing comment.
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		fields := strings.Fields(line)
		var domain string
		switch len(fields) {
		case 1:
			domain = fields[0] // bare-domain list variant
		case 2:
			if fields[0] != "0.0.0.0" && fields[0] != "127.0.0.1" {
				return nil, fmt.Errorf("hostlist: line %d: unexpected sink address %q", lineNo, fields[0])
			}
			domain = fields[1]
		default:
			return nil, fmt.Errorf("hostlist: line %d: malformed entry %q", lineNo, line)
		}
		if domain == "localhost" || domain == "localhost.localdomain" || domain == "broadcasthost" {
			continue
		}
		l.Add(domain, current)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hostlist: scan: %w", err)
	}
	return l, nil
}

// ParseString parses hosts-file syntax from a string.
func ParseString(s string) (*List, error) {
	return Parse(strings.NewReader(s))
}

// Match returns the category of domain, walking up the label chain so
// that a list entry for tracker.example also matches cdn.tracker.example.
func (l *List) Match(domain string) (Category, bool) {
	d := canonical(domain)
	l.mu.RLock()
	defer l.mu.RUnlock()
	for d != "" {
		if c, ok := l.exact[d]; ok {
			return c, true
		}
		i := strings.IndexByte(d, '.')
		if i < 0 {
			break
		}
		d = d[i+1:]
	}
	return "", false
}

// Blocked reports whether domain (or a parent) appears in the list.
func (l *List) Blocked(domain string) bool {
	_, ok := l.Match(domain)
	return ok
}

// AdRelated reports whether domain matches an ad/analytics/tracker entry.
func (l *List) AdRelated(domain string) bool {
	c, ok := l.Match(domain)
	return ok && c.AdRelated()
}

// Domains returns all entries sorted, mainly for tests and tooling.
func (l *List) Domains() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.exact))
	for d := range l.exact {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

func canonical(domain string) string {
	d := strings.ToLower(strings.TrimSpace(domain))
	d = strings.TrimSuffix(d, ".")
	return d
}

// multiLabelSuffixes is a compact public-suffix subset: suffixes under
// which registrable domains have three labels. Enough for the simulated
// web plus the real-world TLD patterns appearing in the paper.
var multiLabelSuffixes = map[string]bool{
	"co.uk": true, "org.uk": true, "ac.uk": true, "gov.uk": true,
	"com.au": true, "net.au": true, "org.au": true,
	"co.jp": true, "ne.jp": true, "or.jp": true,
	"com.cn": true, "net.cn": true, "org.cn": true,
	"com.br": true, "com.tr": true, "com.vn": true,
	"co.kr": true, "co.in": true, "co.za": true,
}

// RegistrableDomain returns the eTLD+1 of a host: the unit the paper uses
// to decide whether a native request's destination is third-party with
// respect to the visited site (and to count "distinct domains" in Fig. 3).
func RegistrableDomain(host string) string {
	h := canonical(host)
	labels := strings.Split(h, ".")
	if len(labels) <= 2 {
		return h
	}
	suffix2 := strings.Join(labels[len(labels)-2:], ".")
	if multiLabelSuffixes[suffix2] && len(labels) >= 3 {
		return strings.Join(labels[len(labels)-3:], ".")
	}
	return suffix2
}

// SameParty reports whether two hosts share a registrable domain.
func SameParty(a, b string) bool {
	return RegistrableDomain(a) == RegistrableDomain(b)
}

// ThirdParty reports whether requestHost is third-party relative to
// siteHost.
func ThirdParty(siteHost, requestHost string) bool {
	return !SameParty(siteHost, requestHost)
}
