package hostlist

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasicFormat(t *testing.T) {
	l, err := ParseString(`
# header comment
0.0.0.0 ads.example
127.0.0.1 tracker.example
bare.example
0.0.0.0 inline.example # with comment
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"ads.example", "tracker.example", "bare.example", "inline.example"} {
		if !l.Blocked(d) {
			t.Errorf("%s not blocked", d)
		}
	}
	if l.Blocked("clean.example") {
		t.Error("clean.example blocked")
	}
}

func TestParseCategories(t *testing.T) {
	l, err := ParseString(`
0.0.0.0 pre.example
# Category: ad
0.0.0.0 banner.example
# Category: analytics
0.0.0.0 metrics.example
# Category: social
0.0.0.0 social.example
`)
	if err != nil {
		t.Fatal(err)
	}
	check := func(d string, want Category) {
		t.Helper()
		c, ok := l.Match(d)
		if !ok || c != want {
			t.Errorf("Match(%s) = %q,%v; want %q", d, c, ok, want)
		}
	}
	check("pre.example", CategoryUnknown)
	check("banner.example", CategoryAd)
	check("metrics.example", CategoryAnalytics)
	check("social.example", CategorySocial)
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := ParseString("0.0.0.0 a.example extra.example"); err == nil {
		t.Fatal("three-field line accepted")
	}
	if _, err := ParseString("10.0.0.1 a.example"); err == nil {
		t.Fatal("non-sink address accepted")
	}
}

func TestLocalhostSkipped(t *testing.T) {
	l, err := ParseString("127.0.0.1 localhost\n0.0.0.0 real.example\n")
	if err != nil {
		t.Fatal(err)
	}
	if l.Blocked("localhost") {
		t.Fatal("localhost blocked")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestSubdomainMatch(t *testing.T) {
	l := New()
	l.Add("doubleclick.net", CategoryAd)
	for _, d := range []string{"doubleclick.net", "ad.doubleclick.net", "stats.g.doubleclick.net"} {
		if !l.AdRelated(d) {
			t.Errorf("%s not matched", d)
		}
	}
	if l.Blocked("notdoubleclick.net") {
		t.Error("suffix string matched without label boundary")
	}
}

func TestCaseAndDotInsensitive(t *testing.T) {
	l := New()
	l.Add("MiXeD.Example.", CategoryAd)
	if !l.Blocked("mixed.example") || !l.Blocked("MIXED.EXAMPLE.") {
		t.Fatal("canonicalisation failed")
	}
}

func TestAdRelatedCategories(t *testing.T) {
	if !CategoryAd.AdRelated() || !CategoryAnalytics.AdRelated() || !CategoryTracker.AdRelated() {
		t.Fatal("ad/analytics/tracker should be ad-related")
	}
	if CategorySocial.AdRelated() || CategoryUnknown.AdRelated() || CategoryMalware.AdRelated() {
		t.Fatal("social/unknown/malware should not be ad-related")
	}
}

func TestBundledList(t *testing.T) {
	l := Bundled()
	if l.Len() < 50 {
		t.Fatalf("bundled list has only %d entries", l.Len())
	}
	// Every ad domain the paper names must classify as ad-related.
	for _, d := range []string{
		"rubiconproject.com", "adnxs.com", "openx.net", "pubmatic.com",
		"bidswitch.net", "demdex.net", "appsflyersdk.com", "doubleclick.net",
		"adjust.com", "outbrain.com", "zemanta.com", "scorecardresearch.com",
		"appsflyer.com", "s-odx.oleads.com",
	} {
		if !l.AdRelated(d) {
			t.Errorf("paper domain %s not ad-related in bundled list", d)
		}
	}
	// Facebook Graph is social, not ad-related (Fig. 3 vs Fig. 5 distinction).
	c, ok := l.Match("graph.facebook.com")
	if !ok || c != CategorySocial {
		t.Errorf("graph.facebook.com = %q,%v; want social", c, ok)
	}
	// Vendor first-party domains must not match.
	for _, d := range []string{"yandex.net", "opera.com", "microsoft.com", "coccoc.com"} {
		if l.Blocked(d) {
			t.Errorf("vendor domain %s wrongly blocked", d)
		}
	}
}

func TestRegistrableDomain(t *testing.T) {
	cases := map[string]string{
		"example.com":             "example.com",
		"www.example.com":         "example.com",
		"a.b.c.example.com":       "example.com",
		"example.co.uk":           "example.co.uk",
		"www.example.co.uk":       "example.co.uk",
		"shop.example.com.cn":     "example.com.cn",
		"single":                  "single",
		"sba.yandex.net":          "yandex.net",
		"api.browser.yandex.ru":   "yandex.ru",
		"stats.g.doubleclick.net": "doubleclick.net",
	}
	for host, want := range cases {
		if got := RegistrableDomain(host); got != want {
			t.Errorf("RegistrableDomain(%s) = %q, want %q", host, got, want)
		}
	}
}

func TestThirdParty(t *testing.T) {
	if ThirdParty("www.example.com", "cdn.example.com") {
		t.Error("same registrable domain marked third-party")
	}
	if !ThirdParty("www.example.com", "doubleclick.net") {
		t.Error("distinct registrable domain not third-party")
	}
	if !SameParty("a.example.co.uk", "b.example.co.uk") {
		t.Error("same eTLD+1 under co.uk not same-party")
	}
	if SameParty("one.co.uk", "two.co.uk") {
		t.Error("different co.uk registrants same-party")
	}
}

func TestParseLargeInput(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("# Category: ad\n")
	for i := 0; i < 5000; i++ {
		sb.WriteString("0.0.0.0 host")
		sb.WriteString(strings.Repeat("x", i%5))
		sb.WriteString(string(rune('a' + i%26)))
		sb.WriteString(".example\n")
	}
	l, err := ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() == 0 {
		t.Fatal("nothing parsed")
	}
}

// Property: a domain added to the list is matched, and so is any subdomain
// of it built from simple labels.
func TestPropertySubdomainInclusion(t *testing.T) {
	f := func(sub uint8) bool {
		l := New()
		l.Add("base.example", CategoryAd)
		label := string(rune('a'+int(sub)%26)) + "x"
		return l.Blocked(label+".base.example") && !l.Blocked(label+".other.example")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: RegistrableDomain is idempotent.
func TestPropertyRegistrableIdempotent(t *testing.T) {
	f := func(a, b, c uint8) bool {
		host := strings.Join([]string{
			string(rune('a' + a%26)), string(rune('a' + b%26)), string(rune('a' + c%26)), "example", "com",
		}, ".")
		rd := RegistrableDomain(host)
		return RegistrableDomain(rd) == rd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatch(b *testing.B) {
	l := Bundled()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Match("stats.g.doubleclick.net")
	}
}
