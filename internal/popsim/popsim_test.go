package popsim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"panoptes/internal/analysis"
	"panoptes/internal/capture"
	"panoptes/internal/faultsim"
	"panoptes/internal/hostlist"
	"panoptes/internal/pii"
	"panoptes/internal/pipeline"
	"panoptes/internal/profiles"
	"panoptes/internal/vclock"
	"panoptes/internal/websim"
)

// popHarness is one self-contained population run: its own capture DB,
// streaming-analysis pipeline, virtual clock and engine, so two
// harnesses in one process share nothing but the global flow ID
// allocator (normalized away by FlowIDBase).
type popHarness struct {
	db     *capture.DB
	pl     *pipeline.Pipeline
	engine *Engine
}

func newPopHarness(t testing.TB, mut func(*Config)) *popHarness {
	t.Helper()
	fleet := profiles.All()
	names := make([]string, len(fleet))
	for i, p := range fleet {
		names[i] = p.Name
	}
	uids := make(map[string]int, len(fleet))
	for i, p := range fleet {
		uids[p.Name] = i + 1
	}
	db := capture.NewDB()
	pl := pipeline.New()
	analysis.NewSuite(hostlist.Bundled(), names).Register(pl)
	db.SetTap(pl)
	if err := db.SetRetention(capture.RetainNone); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Population:  400,
		Duration:    2 * time.Minute,
		Seed:        42,
		Profiles:    fleet,
		Sites:       websim.Dataset(50),
		Hostlist:    hostlist.Bundled(),
		DB:          db,
		Clock:       vclock.New(),
		BrowserUIDs: uids,
		DeviceIP:    "10.1.0.2",
		AdmitPerSec: 3, // below the arrival rate, so throttling engages
		SampleEvery: 4,
	}
	if mut != nil {
		mut(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl.Register("population-curve", e.Curve())
	return &popHarness{db: db, pl: pl, engine: e}
}

// fingerprint canonicalizes every analysis result plus the population
// curve into one JSON blob, with flow IDs rebased onto a run-relative
// sequence (the ID allocator is process-global, so absolute IDs differ
// between runs that are otherwise byte-identical).
func (h *popHarness) fingerprint(t testing.TB) string {
	t.Helper()
	raw, err := json.Marshal(h.pl.Results())
	if err != nil {
		t.Fatal(err)
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	rebaseFlowIDs(v, float64(h.engine.FlowIDBase()))
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func rebaseFlowIDs(v any, base float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, e := range x {
			if k == "FlowID" {
				if id, ok := e.(float64); ok && id > 0 {
					x[k] = id - base
				}
				continue
			}
			rebaseFlowIDs(e, base)
		}
	case []any:
		for _, e := range x {
			rebaseFlowIDs(e, base)
		}
	}
}

// TestPopulationDeterminism is the keystone: the full analysis output
// of a population run is byte-identical whether flow synthesis runs on
// one worker or eight, and whether the run is driven straight through
// or paused and resumed halfway.
func TestPopulationDeterminism(t *testing.T) {
	churn := map[faultsim.Kind]float64{faultsim.UserChurn: 0.05}

	base := newPopHarness(t, func(c *Config) {
		c.Parallelism = 1
		c.Faults = faultsim.New(faultsim.Plan{Seed: 7, Rates: churn})
	})
	if err := base.engine.Run(); err != nil {
		t.Fatal(err)
	}
	want := base.fingerprint(t)

	stats := base.engine.Stats()
	if stats.Sessions == 0 || stats.Visits == 0 || stats.FlowsCommitted == 0 {
		t.Fatalf("degenerate run: %+v", stats)
	}
	if stats.Throttled == 0 {
		t.Fatal("admission throttling never engaged; backlog path untested")
	}
	if stats.ChurnedUsers == 0 {
		t.Fatal("user churn never engaged; churn path untested")
	}

	par := newPopHarness(t, func(c *Config) {
		c.Parallelism = 8
		c.Faults = faultsim.New(faultsim.Plan{Seed: 7, Rates: churn})
	})
	if err := par.engine.Run(); err != nil {
		t.Fatal(err)
	}
	if got := par.fingerprint(t); got != want {
		t.Errorf("parallelism=8 diverged from parallelism=1:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	if ps, bs := par.engine.Stats(), stats; ps.Visits != bs.Visits ||
		ps.Sessions != bs.Sessions || ps.FlowsCommitted != bs.FlowsCommitted ||
		ps.ChurnedUsers != bs.ChurnedUsers || ps.SampledVisits != bs.SampledVisits {
		t.Errorf("stats diverged across parallelism:\n got %+v\nwant %+v", ps, bs)
	}

	resumed := newPopHarness(t, func(c *Config) {
		c.Parallelism = 4
		c.Faults = faultsim.New(faultsim.Plan{Seed: 7, Rates: churn})
	})
	if err := resumed.engine.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	mid := resumed.engine.Stats()
	if mid.Visits == 0 || mid.Visits >= stats.Visits {
		t.Fatalf("half-run visits %d out of range (full run %d)", mid.Visits, stats.Visits)
	}
	if err := resumed.engine.RunUntil(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := resumed.fingerprint(t); got != want {
		t.Error("paused-and-resumed run diverged from straight run")
	}
}

// TestPopulationBoundedResidency is the 10k-user smoke: under
// RetainNone nothing stays resident in the capture stores, sampling
// stays under its cap, and the analyses still come out populated.
func TestPopulationBoundedResidency(t *testing.T) {
	h := newPopHarness(t, func(c *Config) {
		c.Population = 10_000
		c.Duration = time.Minute
		c.AdmitPerSec = 2000
		c.Parallelism = 4
	})
	if err := h.engine.Run(); err != nil {
		t.Fatal(err)
	}
	resident := h.db.Engine.Len() + h.db.Native.Len() +
		h.db.Engine.Pending() + h.db.Native.Pending()
	if resident != 0 {
		t.Errorf("retain=none left %d flows resident", resident)
	}
	s := h.engine.Stats()
	if s.ArrivedUsers != 10_000 {
		t.Errorf("ArrivedUsers = %d, want 10000", s.ArrivedUsers)
	}
	if s.SampledVisits > 2048 {
		t.Errorf("SampledVisits = %d exceeds the 2048 cap", s.SampledVisits)
	}
	if s.Sessions == 0 || s.FlowsCommitted == 0 {
		t.Fatalf("degenerate run: %+v", s)
	}
	res := h.pl.Results()
	if m, ok := res["table2"].(pii.Matrix); !ok {
		t.Errorf("table2 result has type %T", res["table2"])
	} else {
		leaky := 0
		for b := range m {
			if m.Count(b) > 0 {
				leaky++
			}
		}
		if leaky == 0 {
			t.Error("Table 2 matrix saw no leaky browsers")
		}
	}
	series := h.engine.Curve().Series()
	if len(series) == 0 {
		t.Fatal("population curve has no series")
	}
	total := 0
	for _, sr := range series {
		total += sr.Total
	}
	if total == 0 {
		t.Error("population curve observed no native flows")
	}
}

// modelFor builds a standalone model for sampler tests.
func modelFor(t *testing.T, seed int64) *Model {
	t.Helper()
	cfg, err := Config{
		Population: 1000,
		Duration:   time.Minute,
		Seed:       seed,
		Profiles:   profiles.All(),
		Sites:      websim.Dataset(20),
		Hostlist:   hostlist.Bundled(),
		DB:         capture.NewDB(),
		Clock:      vclock.New(),
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	return newModel(&cfg)
}

// samplerTrace renders a canonical dump of every sampler over a grid of
// coordinates. Determinism of the whole population plane reduces to
// this string being stable.
func samplerTrace(m *Model) string {
	var b strings.Builder
	for user := uint32(0); user < 32; user++ {
		fmt.Fprintf(&b, "u%d b%d", user, m.BrowserIdx(user))
		for sess := uint32(0); sess < 3; sess++ {
			fmt.Fprintf(&b, " v%d g%d", m.SessionVisits(user, sess),
				m.SessionGap(user, sess).Milliseconds())
			for visit := uint32(0); visit < 2; visit++ {
				fmt.Fprintf(&b, " d%d s%d",
					m.Dwell(user, sess, visit).Milliseconds(),
					m.SiteIdx(user, sess, visit))
			}
		}
		fmt.Fprintf(&b, " id%s\n", m.UUID(m.BrowserIdx(user), user)[:12])
	}
	return b.String()
}

// TestSamplerGolden pins the sampler outputs for seed 42: any change to
// the hash chain, the stream layout or the distribution shapes shows up
// here as a reproducibility break, not as silently different campaigns.
func TestSamplerGolden(t *testing.T) {
	const golden = "df124835758213b0b64fecbf2d5e7ff699faf2768150e9e124bbc9c9e583b5ce"
	trace := samplerTrace(modelFor(t, 42))
	sum := sha256.Sum256([]byte(trace))
	if got := hex.EncodeToString(sum[:]); got != golden {
		t.Errorf("sampler trace digest = %s, want %s\ntrace head:\n%s",
			got, golden, trace[:200])
	}
	if other := samplerTrace(modelFor(t, 43)); other == trace {
		t.Error("seed 43 reproduced the seed-42 trace; seed is not keyed in")
	}
}

// TestSamplerOrderIndependence draws the same quantities in shuffled
// call order and compares: samplers must be pure functions of their
// coordinates, with no hidden generator state to advance.
func TestSamplerOrderIndependence(t *testing.T) {
	m := modelFor(t, 42)
	type coord struct{ user, sess, visit uint32 }
	var coords []coord
	for u := uint32(0); u < 64; u++ {
		for s := uint32(0); s < 4; s++ {
			coords = append(coords, coord{u, s, u % 3})
		}
	}
	draw := func(cs []coord) string {
		var b strings.Builder
		for _, c := range cs {
			fmt.Fprintf(&b, "%d/%d/%d:%d,%v,%v,%d;", c.user, c.sess, c.visit,
				m.SessionVisits(c.user, c.sess), m.SessionGap(c.user, c.sess),
				m.Dwell(c.user, c.sess, c.visit), m.SiteIdx(c.user, c.sess, c.visit))
		}
		return b.String()
	}
	want := draw(coords)
	shuffled := append([]coord(nil), coords...)
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	// Draw in shuffled order, then re-render in canonical order.
	_ = draw(shuffled)
	if got := draw(coords); got != want {
		t.Error("sampler outputs changed after interleaved draws")
	}
}

// TestMarketShareAssignment checks the browser mix over a large user
// block against the profiles' market shares (law of large numbers, so
// the tolerance is loose but the ordering must hold exactly).
func TestMarketShareAssignment(t *testing.T) {
	m := modelFor(t, 42)
	fleet := profiles.All()
	counts := make([]int, len(fleet))
	const users = 200_000
	for u := uint32(0); u < users; u++ {
		counts[m.BrowserIdx(u)]++
	}
	var totalShare float64
	for _, p := range fleet {
		totalShare += p.MarketSharePct
	}
	for i, p := range fleet {
		got := float64(counts[i]) / users
		want := p.MarketSharePct / totalShare
		if diff := got - want; diff < -0.01 || diff > 0.01 {
			t.Errorf("%s share = %.4f, want %.4f ± 0.01", p.Name, got, want)
		}
		if counts[i] == 0 {
			t.Errorf("%s was never assigned", p.Name)
		}
	}
	// Chrome dominates the mix, as in the market-share table.
	for i := 1; i < len(fleet); i++ {
		if counts[i] >= counts[0] {
			t.Errorf("%s (%d users) outdrew %s (%d users)",
				fleet[i].Name, counts[i], fleet[0].Name, counts[0])
		}
	}
}

// TestWheelOverflow exercises the overflow list: events beyond the
// wheel horizon must fire at their tick, in insertion order.
func TestWheelOverflow(t *testing.T) {
	w := newWheel()
	far := uint32(3 * wheelSlots)
	w.schedule(event{tick: far, user: 1})
	w.schedule(event{tick: far, user: 2})
	w.schedule(event{tick: 5, user: 3})
	if w.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", w.Pending())
	}
	var fired []event
	for w.cursor <= far {
		fired = w.take(fired)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if fired[0].user != 3 || fired[1].user != 1 || fired[2].user != 2 {
		t.Errorf("fire order = %v", fired)
	}
	if fired[1].tick != far || fired[2].tick != far {
		t.Errorf("overflow events fired at ticks %d/%d, want %d",
			fired[1].tick, fired[2].tick, far)
	}
	if w.Pending() != 0 {
		t.Errorf("pending = %d after drain", w.Pending())
	}
}

// TestConfigValidation covers the error paths of withDefaults.
func TestConfigValidation(t *testing.T) {
	db, clk := capture.NewDB(), vclock.New()
	sites := websim.Dataset(1)
	cases := []Config{
		{Duration: time.Minute, DB: db, Clock: clk, Sites: sites},  // no population
		{Population: 1, DB: db, Clock: clk, Sites: sites},          // no duration
		{Population: 1, Duration: time.Minute, Sites: sites},       // no DB/clock
		{Population: 1, Duration: time.Minute, DB: db, Clock: clk}, // no sites
	}
	for i, c := range cases {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: New accepted invalid config", i)
		}
	}
}
