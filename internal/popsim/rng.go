// Package popsim is the population-scale session engine: an event-driven
// scheduler over the virtual clock that simulates the browsing of very
// large user populations (ROADMAP item 3) on one core. Instead of a
// goroutine and a browser emulator per user, a single timing-wheel loop
// walks 16-byte visit events over lightweight user records whose entire
// behaviour — browser choice, session timing, dwell, site selection,
// persistent identifiers — is a pure function of (campaign seed, user,
// session, visit). The synthesized traffic carries the same shapes the
// browser emulators produce (engine fetches, phone-home beacons, PII
// queries, WebSocket telemetry, DoH bodies), so the existing streaming
// analyses compute the paper's figures and tables from a population
// instead of a 15-browser fleet, with resident memory bounded by the
// analyzers' state rather than the population size.
package popsim

import "math"

// The samplers never draw from a stateful generator: every random
// quantity is a hash of (seed, stream, user, session, visit). That is
// what makes runs byte-reproducible regardless of event-loop
// interleaving, parallel flow synthesis, or pause/resume — there is no
// generator state to share or advance out of order.
const (
	streamBrowser uint64 = iota + 1
	streamActivity
	streamGap
	streamVisits
	streamDwell
	streamSite
	streamUUID
	streamNoise
	streamArrival
	streamUUIDPool
	streamDNSID
)

// mix64 is the splitmix64 finalizer: a cheap bijective avalanche.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// rng hashes coordinates into uniforms. The zero value is usable but
// every engine derives its seed from the campaign seed.
type rng struct{ seed uint64 }

// raw maps (stream, a, b, c) to a well-mixed 64-bit value.
func (r rng) raw(stream, a, b, c uint64) uint64 {
	h := mix64(r.seed ^ stream*0x9e3779b97f4a7c15)
	h = mix64(h ^ a*0xc2b2ae3d27d4eb4f)
	h = mix64(h ^ b*0x165667b19e3779f9)
	h = mix64(h ^ c*0x27d4eb2f165667c5)
	return h
}

// uniform maps the hash to (0,1) — never exactly 0 or 1, so logs and
// reciprocals downstream are always finite.
func (r rng) uniform(stream, a, b, c uint64) float64 {
	return (float64(r.raw(stream, a, b, c)>>11) + 0.5) / (1 << 53)
}

// exp draws an exponential with the given mean.
func (r rng) exp(mean float64, stream, a, b, c uint64) float64 {
	return -mean * math.Log(r.uniform(stream, a, b, c))
}

// normal draws a standard normal via Box-Muller, using two decorrelated
// streams derived from the same coordinates.
func (r rng) normal(stream, a, b, c uint64) float64 {
	u1 := r.uniform(stream, a, b, c)
	u2 := r.uniform(stream^0x5851f42d4c957f2d, a, b, c)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// logNormal draws exp(mu + sigma·N).
func (r rng) logNormal(mu, sigma float64, stream, a, b, c uint64) float64 {
	return math.Exp(mu + sigma*r.normal(stream, a, b, c))
}

// pareto draws a Pareto(alpha) with scale xm (heavy right tail).
func (r rng) pareto(alpha, xm float64, stream, a, b, c uint64) float64 {
	u := r.uniform(stream, a, b, c)
	return xm / math.Pow(1-u, 1/alpha)
}

// hexID renders a 64-hex-char identifier (the shape browser.mintUUID
// produces, so the trackable-ID miner treats pool identifiers exactly
// like real ones).
func (r rng) hexID(stream, a, b, c uint64) string {
	const digits = "0123456789abcdef"
	var buf [64]byte
	for w := 0; w < 4; w++ {
		v := r.raw(stream, a, b, c+uint64(w)<<32)
		for i := 0; i < 16; i++ {
			buf[w*16+i] = digits[v&0xf]
			v >>= 4
		}
	}
	return string(buf[:])
}
