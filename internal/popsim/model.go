package popsim

import (
	"fmt"
	"math"
	"net/url"
	"sort"
	"strings"
	"time"

	"panoptes/internal/browser"
	"panoptes/internal/device"
	"panoptes/internal/hostlist"
	"panoptes/internal/profiles"
	"panoptes/internal/websim"
)

// Model behaviour defaults. The session process is a heavy-tailed
// mixture: each user carries a lognormal activity multiplier, session
// gaps are exponential around MeanSessionGap scaled by it, visits per
// session are Pareto (most sessions are one page, a long tail reads
// many), and dwell times are lognormal around a ~8 s median — the
// standard shapes for user think-time models.
const (
	activitySigma = 1.0 // lognormal sigma of the per-user rate multiplier
	visitAlpha    = 1.9 // Pareto tail index of visits-per-session
	visitCap      = 40  // longest session, in page visits
	dwellMedianS  = 8.0 // median dwell seconds
	dwellSigma    = 1.1 // lognormal sigma of dwell
	dwellCapS     = 120.0
	dwellMinS     = 0.5
	zipfS         = 0.95 // rank exponent of site popularity
	uuidPoolSize  = 64   // distinct persistent IDs per browser
)

// resSynth is one precomputed page sub-resource: the URL parse, size
// and ad classification happen once per site, not once per visit.
type resSynth struct {
	host, path string
	size       int
	adRelated  bool
}

// siteSynth is one site's precomputed synthesis state.
type siteSynth struct {
	domain  string
	url     string
	docSize int
	res     []resSynth
}

// profileSynth is one browser profile's precomputed synthesis state.
type profileSynth struct {
	p   *profiles.Profile
	uid int
	// piiQuery is the rendered Table-2 beacon query (identical to what
	// browser.piiQuery emits for this profile on the testbed device).
	piiQuery string
	h2       map[string]bool
	dohHost  string // resolver host, "" when the profile resolves locally
	dohQname string // expanded DoHPIIQname ("" = none)
	noisePad string
	// uuids is the bounded pool of persistent identifiers users of this
	// browser draw from. A pool (rather than one UUID per user) keeps
	// the trackable-ID miner's per-key value lists bounded no matter how
	// many users run.
	uuids []string
}

// Model is the immutable, shareable behaviour model: samplers plus the
// precomputed per-profile and per-site synthesis tables. All methods
// are pure and safe for concurrent use.
type Model struct {
	r        rng
	profiles []*profileSynth
	weights  []float64 // cumulative market-share weights
	sites    []siteSynth
	siteCum  []float64 // cumulative Zipf weights over site rank

	meanGapS     float64 // mean session gap, seconds
	arrivalMeanS float64 // mean fresh-user inter-arrival, seconds
}

func newModel(cfg *Config) *Model {
	m := &Model{
		r:            rng{seed: mix64(uint64(cfg.Seed) ^ 0xda3e39cb94b95bdb)},
		weights:      profiles.MarketWeights(cfg.Profiles),
		meanGapS:     cfg.MeanSessionGap.Seconds(),
		arrivalMeanS: cfg.RampUp.Seconds() / float64(cfg.Population),
	}
	for i, p := range cfg.Profiles {
		m.profiles = append(m.profiles, newProfileSynth(m.r, i, p, cfg))
	}
	m.sites = make([]siteSynth, len(cfg.Sites))
	m.siteCum = make([]float64, len(cfg.Sites))
	total := 0.0
	for i, s := range cfg.Sites {
		m.sites[i] = newSiteSynth(s, cfg.Hostlist)
		// Zipf weight by list position (the dataset is already
		// popularity-ordered: Tranco rank first, Curlie after).
		w := 1 / math.Pow(float64(i+1), zipfS)
		total += w
		m.siteCum[i] = total
	}
	for i := range m.siteCum {
		m.siteCum[i] /= total
	}
	if n := len(m.siteCum); n > 0 {
		m.siteCum[n-1] = 1
	}
	return m
}

func newSiteSynth(s *websim.Site, list *hostlist.List) siteSynth {
	ss := siteSynth{domain: s.Domain, url: s.URL(), docSize: s.DocSize}
	for _, r := range s.Resources {
		u, err := url.Parse(r.URL)
		if err != nil || u.Host == "" {
			continue
		}
		path := u.Path
		if path == "" {
			path = "/"
		}
		ss.res = append(ss.res, resSynth{
			host:      u.Hostname(),
			path:      path,
			size:      r.Size,
			adRelated: list != nil && list.AdRelated(u.Hostname()),
		})
	}
	return ss
}

func newProfileSynth(r rng, idx int, p *profiles.Profile, cfg *Config) *profileSynth {
	ps := &profileSynth{
		p:        p,
		uid:      cfg.BrowserUIDs[p.Name],
		piiQuery: buildPIIQuery(p, cfg.DeviceIP, cfg.Rooted),
		noisePad: strings.Repeat("t", p.NoiseBytes),
	}
	if len(p.H2Hosts) > 0 {
		ps.h2 = make(map[string]bool, len(p.H2Hosts))
		for _, h := range p.H2Hosts {
			ps.h2[h] = true
		}
	}
	switch p.DNS {
	case profiles.DNSDoHCloudflare:
		ps.dohHost = "cloudflare-dns.com"
	case profiles.DNSDoHGoogle:
		ps.dohHost = "dns.google"
	}
	if p.DoHPIIQname != "" {
		ps.dohQname = strings.ReplaceAll(p.DoHPIIQname, "{CC}",
			strings.ToLower(browser.TestbedCountry))
	}
	ps.uuids = make([]string, uuidPoolSize)
	for k := range ps.uuids {
		ps.uuids[k] = r.hexID(streamUUIDPool, uint64(idx), uint64(k), 0)
	}
	return ps
}

// buildPIIQuery renders the profile's Table-2 attribute query exactly
// as browser.piiQuery does on the testbed device, so the PII
// dictionary classifies population beacons identically to emulator
// beacons.
func buildPIIQuery(p *profiles.Profile, deviceIP string, rooted bool) string {
	if !p.PII.Any() || p.PIICarrier == "" {
		return ""
	}
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+url.QueryEscape(v)) }
	pii := p.PII
	if pii.DeviceType {
		add("deviceType", "TABLET")
	}
	if pii.DeviceManuf {
		add("manufacturer", device.Manufacturer)
	}
	if pii.Timezone {
		add("tz", browser.TestbedTimezone)
	}
	if pii.Resolution {
		add("resolution", fmt.Sprintf("%dx%d", device.ScreenWidth, device.ScreenHeight))
	}
	if pii.LocalIP {
		add("localIp", deviceIP)
	}
	if pii.DPI {
		add("dpi", fmt.Sprint(device.ScreenDPI))
	}
	if pii.Rooted {
		add("rooted", fmt.Sprint(rooted))
	}
	if pii.Locale {
		add("locale", browser.TestbedLocale)
	}
	if pii.Country {
		add("country", browser.TestbedCountry)
	}
	if pii.LatLong {
		add("latitude", browser.TestbedLat)
		add("longitude", browser.TestbedLon)
	}
	if pii.ConnType {
		add("connectionType", "UNMETERED")
	}
	if pii.NetType {
		add("networkType", "WIFI")
	}
	return strings.Join(parts, "&")
}

// --- Samplers (all pure functions of the coordinates) ---

// BrowserIdx assigns the user's browser from the market-share mix.
func (m *Model) BrowserIdx(user uint32) int {
	u := m.r.uniform(streamBrowser, uint64(user), 0, 0)
	return sort.SearchFloat64s(m.weights, u)
}

// activity is the user's lognormal rate multiplier: heavy users start
// sessions proportionally more often.
func (m *Model) activity(user uint32) float64 {
	return m.r.logNormal(0, activitySigma, streamActivity, uint64(user), 0, 0)
}

// SessionGap is the pause before the user's next session.
func (m *Model) SessionGap(user, sess uint32) time.Duration {
	mean := m.meanGapS / m.activity(user)
	s := m.r.exp(mean, streamGap, uint64(user), uint64(sess), 0)
	return time.Duration(s * float64(time.Second))
}

// SessionVisits draws the session length in page visits (Pareto tail).
func (m *Model) SessionVisits(user, sess uint32) int {
	n := int(m.r.pareto(visitAlpha, 1, streamVisits, uint64(user), uint64(sess), 0))
	if n < 1 {
		n = 1
	}
	if n > visitCap {
		n = visitCap
	}
	return n
}

// Dwell is the time spent on one page before the next visit.
func (m *Model) Dwell(user, sess, visit uint32) time.Duration {
	mu := math.Log(dwellMedianS)
	s := m.r.logNormal(mu, dwellSigma, streamDwell, uint64(user), uint64(sess), uint64(visit))
	if s > dwellCapS {
		s = dwellCapS
	}
	if s < dwellMinS {
		s = dwellMinS
	}
	return time.Duration(s * float64(time.Second))
}

// SiteIdx picks the visited site, rank-skewed (Zipf) over the dataset.
func (m *Model) SiteIdx(user, sess, visit uint32) int {
	u := m.r.uniform(streamSite, uint64(user), uint64(sess), uint64(visit))
	return sort.SearchFloat64s(m.siteCum, u)
}

// UUID is the user's persistent identifier for their browser, drawn
// from the profile's bounded pool.
func (m *Model) UUID(profileIdx int, user uint32) string {
	ps := m.profiles[profileIdx]
	k := m.r.raw(streamUUID, uint64(user), 0, 0) % uint64(len(ps.uuids))
	return ps.uuids[k]
}

// arrivalGap is the fresh-user inter-arrival time in seconds (Poisson
// arrivals with mean RampUp/Population).
func (m *Model) arrivalGap(user uint32) float64 {
	return m.r.exp(m.arrivalMeanS, streamArrival, uint64(user), 0, 0)
}
