package popsim

import (
	"fmt"
	"sync"
	"time"

	"panoptes/internal/capture"
	"panoptes/internal/faultsim"
	"panoptes/internal/hostlist"
	"panoptes/internal/obs"
	"panoptes/internal/profiles"
	"panoptes/internal/vclock"
	"panoptes/internal/websim"
)

// tickDur is the event-loop granularity: all scheduling rounds to
// 100 ms virtual ticks (a uint32 tick counter then covers ~4.9 days).
const tickDur = 100 * time.Millisecond

// Config sizes a population run.
type Config struct {
	// Population is the number of simulated users. Users materialize
	// lazily as Poisson fresh arrivals over RampUp, so memory follows
	// activated users, not this number.
	Population int
	// Duration is the virtual length of the run (Run() = RunUntil(Duration)).
	Duration time.Duration
	// Seed keys every sampler; equal seeds reproduce runs byte-for-byte.
	Seed int64

	// Profiles is the browser fleet users draw from by market share
	// (nil = all 15). Sites is the rank-skewed browse target list.
	Profiles []*profiles.Profile
	Sites    []*websim.Site
	// Hostlist classifies ad/analytics resource hosts for the engine
	// ad-block profiles (nil = no classification).
	Hostlist *hostlist.List

	// DB receives the synthesized flows; its commit tap runs the
	// streaming analyses. Population runs want RetainNone retention —
	// the engine never reads flows back.
	DB    *capture.DB
	Clock *vclock.Clock
	// Faults, when non-nil, is consulted at every session admission for
	// user-churn decisions (faultsim.UserChurn). Nil injects nothing.
	Faults *faultsim.Injector
	// BrowserUIDs maps profile names to device UIDs for flow stamping
	// (missing names stamp UID 0).
	BrowserUIDs map[string]int
	// DeviceIP and Rooted feed the PII beacon attributes.
	DeviceIP string
	Rooted   bool

	// AdmitPerSec is the token-bucket session admission rate (default
	// 200/s); AdmitBurst the bucket depth (default 2×AdmitPerSec).
	// Throttled session starts wait in a FIFO backlog, not the wheel.
	AdmitPerSec float64
	AdmitBurst  int
	// Parallelism fans flow synthesis out to this many workers. The
	// event loop and the commit order stay single-threaded, so results
	// are identical at any setting (default 1).
	Parallelism int
	// RampUp spreads fresh-user arrivals (default Duration).
	RampUp time.Duration
	// SampleEvery tags 1 in N visits with VisitURL and the full PII
	// query (default 64); SampleCap bounds the total tagged visits
	// (default 2048), which bounds the per-flow-entry analyzer state.
	SampleEvery int
	SampleCap   int
	// BinSeconds bins the population phone-home curve (default 10).
	BinSeconds int
	// MeanSessionGap is the base pause between a user's sessions before
	// the per-user activity multiplier applies (default 2 m).
	MeanSessionGap time.Duration
}

func (c Config) withDefaults() (Config, error) {
	if c.Population <= 0 {
		return c, fmt.Errorf("popsim: population must be positive")
	}
	if c.Duration <= 0 {
		return c, fmt.Errorf("popsim: duration must be positive")
	}
	if c.DB == nil || c.Clock == nil {
		return c, fmt.Errorf("popsim: DB and Clock are required")
	}
	if len(c.Sites) == 0 {
		return c, fmt.Errorf("popsim: at least one site is required")
	}
	if c.Profiles == nil {
		c.Profiles = profiles.All()
	}
	if c.AdmitPerSec <= 0 {
		c.AdmitPerSec = 200
	}
	if c.AdmitBurst <= 0 {
		c.AdmitBurst = int(2 * c.AdmitPerSec)
		if c.AdmitBurst < 1 {
			c.AdmitBurst = 1
		}
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	if c.RampUp <= 0 {
		c.RampUp = c.Duration
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 64
	}
	if c.SampleCap <= 0 {
		c.SampleCap = 2048
	}
	if c.BinSeconds <= 0 {
		c.BinSeconds = 10
	}
	if c.MeanSessionGap <= 0 {
		c.MeanSessionGap = 2 * time.Minute
	}
	return c, nil
}

// sessionRef is one throttled session start waiting in the backlog.
type sessionRef struct{ user, sess uint32 }

// Stats is a snapshot of the engine's counters.
type Stats struct {
	ArrivedUsers    int // users that have materialized
	ChurnedUsers    int // users that left at a session boundary (faultsim)
	Sessions        int // admitted sessions
	Visits          int // page visits synthesized
	SampledVisits   int // visits tagged with VisitURL + full PII query
	FlowsCommitted  int64
	Throttled       int64 // session starts deferred by admission control
	EventsScheduled int64
	PeakBacklog     int
	PendingEvents   int // events filed in the wheel right now
	BacklogLen      int // session starts waiting for admission right now
}

// Engine is the population session engine. Not safe for concurrent
// use: one goroutine drives Run/RunUntil (synthesis parallelism is
// internal).
type Engine struct {
	cfg   Config
	model *Model
	curve *Curve
	wheel *wheel

	backlog     []sessionRef
	backlogHead int
	tokens      float64

	nextFresh    uint32  // next user to materialize
	nextArrivalS float64 // their arrival time, seconds since start

	start    time.Time
	idBase   int64
	idSet    bool
	visitSeq uint64

	stats Stats

	gActive    *obs.Gauge
	cSessions  *obs.Counter
	cEvents    *obs.Counter
	cThrottled *obs.Counter

	buf     []event
	jobs    []synthJob
	results [][]*capture.Flow
}

// New builds an engine. The run window starts at the clock's current
// instant; the curve analyzer (Curve) is ready to be registered on the
// analysis pipeline before the first RunUntil call.
func New(cfg Config) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	obs.Default.Help("popsim_active_users", "Simulated users materialized and not churned.")
	obs.Default.Help("popsim_sessions_total", "Sessions admitted by the population engine.")
	obs.Default.Help("popsim_events_scheduled_total", "Events filed into the population timing wheel.")
	obs.Default.Help("popsim_admission_throttled_total", "Session starts deferred to the admission backlog.")
	e := &Engine{
		cfg:        cfg,
		model:      newModel(&cfg),
		wheel:      newWheel(),
		start:      cfg.Clock.Now(),
		gActive:    obs.Default.Gauge("popsim_active_users"),
		cSessions:  obs.Default.Counter("popsim_sessions_total"),
		cEvents:    obs.Default.Counter("popsim_events_scheduled_total"),
		cThrottled: obs.Default.Counter("popsim_admission_throttled_total"),
	}
	e.curve = NewCurve(profileFleet(cfg.Profiles), e.start, cfg.Duration, cfg.BinSeconds)
	e.nextArrivalS = e.model.arrivalGap(0)
	return e, nil
}

// Curve returns the population phone-home timeline analyzer, for
// registration on the commit-tap pipeline.
func (e *Engine) Curve() *Curve { return e.curve }

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.PendingEvents = e.wheel.Pending()
	s.BacklogLen = len(e.backlog) - e.backlogHead
	return s
}

// FlowIDBase is the global flow ID preceding the engine's first
// committed flow (0 before anything committed). Subtracting it maps
// the run's flow IDs onto a run-relative sequence, which is how the
// determinism suite compares runs that share the process-global ID
// allocator.
func (e *Engine) FlowIDBase() int64 { return e.idBase }

// Run simulates the full configured duration.
func (e *Engine) Run() error { return e.RunUntil(e.cfg.Duration) }

// RunUntil advances the simulation to the given elapsed virtual time.
// It is incremental: successive calls with growing targets resume
// exactly where the previous call stopped, and a paused-and-resumed
// run commits the same flow stream as a straight one.
func (e *Engine) RunUntil(elapsed time.Duration) error {
	target := uint32(elapsed / tickDur)
	for e.wheel.cursor < target {
		e.step()
	}
	return nil
}

// step processes one virtual tick: refill the admission bucket, drain
// the backlog, materialize fresh arrivals, fire due events, then
// synthesize and commit the tick's visits in deterministic job order.
func (e *Engine) step() {
	t := e.wheel.cursor
	now := e.start.Add(time.Duration(t) * tickDur)
	e.cfg.Clock.AdvanceTo(now)

	e.tokens += e.cfg.AdmitPerSec * tickDur.Seconds()
	if max := float64(e.cfg.AdmitBurst); e.tokens > max {
		e.tokens = max
	}
	e.jobs = e.jobs[:0]

	// Backlogged session starts go first: admission is FIFO-fair, and a
	// deferred session never reshuffles the wheel (no thundering herd of
	// rescheduled events when the bucket refills).
	for e.tokens >= 1 && e.backlogHead < len(e.backlog) {
		ref := e.backlog[e.backlogHead]
		e.backlogHead++
		e.admitSession(ref.user, ref.sess, t, now)
	}
	if e.backlogHead > 4096 && e.backlogHead*2 > len(e.backlog) {
		n := copy(e.backlog, e.backlog[e.backlogHead:])
		e.backlog = e.backlog[:n]
		e.backlogHead = 0
	}

	// Fresh arrivals are a lazy Poisson stream: one pending arrival
	// time, advanced as users materialize, so a million-user population
	// costs no upfront event flood.
	tickEndS := float64(t+1) * tickDur.Seconds()
	for e.nextFresh < uint32(e.cfg.Population) && e.nextArrivalS < tickEndS {
		u := e.nextFresh
		e.nextFresh++
		e.nextArrivalS += e.model.arrivalGap(e.nextFresh)
		e.stats.ArrivedUsers++
		e.gActive.Inc()
		e.startSession(u, 0, t, now)
	}

	// Due events. take advances the cursor, so successors scheduled
	// below land at tick t+1 or later, never back into this tick.
	e.buf = e.wheel.take(e.buf[:0])
	for _, ev := range e.buf {
		if ev.visit == 0 {
			e.startSession(ev.user, ev.sess, t, now)
		} else {
			e.processVisit(ev.user, ev.sess, ev.visit, t, now)
		}
	}

	e.flush()
}

// startSession runs a session start through admission control.
func (e *Engine) startSession(user, sess uint32, t uint32, now time.Time) {
	if e.tokens < 1 {
		e.backlog = append(e.backlog, sessionRef{user: user, sess: sess})
		e.stats.Throttled++
		e.cThrottled.Inc()
		if n := len(e.backlog) - e.backlogHead; n > e.stats.PeakBacklog {
			e.stats.PeakBacklog = n
		}
		return
	}
	e.admitSession(user, sess, t, now)
}

// admitSession consumes a token and starts the session — unless the
// fault plan churns the user, in which case they leave the population
// for good (and the token stays in the bucket).
func (e *Engine) admitSession(user, sess uint32, t uint32, now time.Time) {
	pIdx := e.model.BrowserIdx(user)
	if e.cfg.Faults.UserChurnFault(e.model.profiles[pIdx].p.Name, int(user), int(sess)) {
		e.stats.ChurnedUsers++
		e.gActive.Dec()
		return
	}
	e.tokens--
	e.stats.Sessions++
	e.cSessions.Inc()
	e.processVisit(user, sess, 0, t, now)
}

// processVisit queues the visit's synthesis job and schedules the
// session's next step: another visit after the dwell, or the next
// session start after the inter-session gap.
func (e *Engine) processVisit(user, sess, visit uint32, t uint32, now time.Time) {
	e.visitSeq++
	sampled := false
	if (e.visitSeq-1)%uint64(e.cfg.SampleEvery) == 0 && e.stats.SampledVisits < e.cfg.SampleCap {
		sampled = true
		e.stats.SampledVisits++
	}
	e.stats.Visits++
	e.jobs = append(e.jobs, synthJob{
		user: user, sess: sess, visit: visit,
		pIdx:    e.model.BrowserIdx(user),
		siteIdx: e.model.SiteIdx(user, sess, visit),
		when:    now, sampled: sampled,
	})
	if visit+1 < uint32(e.model.SessionVisits(user, sess)) {
		e.schedule(event{tick: t + ticksOf(e.model.Dwell(user, sess, visit)),
			user: user, sess: sess, visit: visit + 1})
	} else {
		e.schedule(event{tick: t + ticksOf(e.model.SessionGap(user, sess+1)),
			user: user, sess: sess + 1, visit: 0})
	}
}

func (e *Engine) schedule(ev event) {
	e.wheel.schedule(ev)
	e.stats.EventsScheduled++
	e.cEvents.Inc()
}

// ticksOf rounds a duration to ticks, minimum one (a successor may
// never fire in its own tick).
func ticksOf(d time.Duration) uint32 {
	n := uint32((d + tickDur/2) / tickDur)
	if n < 1 {
		n = 1
	}
	return n
}

// flush synthesizes the tick's queued visits — fanned out to
// Parallelism workers when worthwhile — and commits the flows in job
// order on the loop thread. IDs are assigned at commit, so the
// committed stream is identical at any parallelism.
func (e *Engine) flush() {
	jobs := e.jobs
	if len(jobs) == 0 {
		return
	}
	for len(e.results) < len(jobs) {
		e.results = append(e.results, nil)
	}
	res := e.results[:len(jobs)]
	if p := e.cfg.Parallelism; p > 1 && len(jobs) >= 2*p {
		var wg sync.WaitGroup
		for w := 0; w < p; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(jobs); i += p {
					res[i] = e.model.synthesize(jobs[i], res[i][:0])
				}
			}(w)
		}
		wg.Wait()
	} else {
		for i := range jobs {
			res[i] = e.model.synthesize(jobs[i], res[i][:0])
		}
	}
	for i := range jobs {
		for _, f := range res[i] {
			f.ID = capture.NextFlowID()
			if !e.idSet {
				e.idBase, e.idSet = f.ID-1, true
			}
			e.cfg.DB.StoreFor(f.Origin).Add(f)
			f.Release()
			e.stats.FlowsCommitted++
		}
	}
}
