package popsim

// event is one scheduled page visit: 16 bytes, so a million pending
// events cost ~16 MB where a goroutine-per-user design costs ~8 KB of
// stack each. visit 0 is a session start and passes admission control;
// later visits of an admitted session fire unconditionally.
type event struct {
	tick  uint32 // absolute engine tick the event is due at
	user  uint32
	sess  uint32
	visit uint32
}

// wheelSlots must be a power of two. 8192 slots × 100 ms tick = a
// ~13-minute horizon; events beyond it wait in the overflow list and
// are rebinned when the cursor wraps into their window.
const wheelSlots = 8192

// wheel is a single-threaded timing wheel. Events in one slot keep
// insertion order, and the loop thread is the only writer, so the
// fire order of simultaneous events is deterministic by construction.
type wheel struct {
	slots    [wheelSlots][]event
	cursor   uint32 // next tick to fire
	overflow []event
	pending  int
}

func newWheel() *wheel { return &wheel{} }

// schedule files an event. Events due now or earlier are clamped to
// the next unfired tick so a visit can never reenter the tick being
// processed.
func (w *wheel) schedule(e event) {
	if e.tick < w.cursor {
		e.tick = w.cursor
	}
	w.pending++
	if e.tick-w.cursor >= wheelSlots {
		w.overflow = append(w.overflow, e)
		return
	}
	idx := e.tick & (wheelSlots - 1)
	w.slots[idx] = append(w.slots[idx], e)
}

// take appends the events due at the cursor tick to buf (preserving
// insertion order), advances the cursor, and returns buf. Entries in
// the slot belonging to later laps stay, order preserved.
func (w *wheel) take(buf []event) []event {
	t := w.cursor
	idx := t & (wheelSlots - 1)
	slot := w.slots[idx]
	keep := slot[:0]
	for _, e := range slot {
		if e.tick == t {
			buf = append(buf, e)
			w.pending--
		} else {
			keep = append(keep, e)
		}
	}
	w.slots[idx] = keep
	w.cursor++
	if w.cursor&(wheelSlots-1) == 0 {
		w.rebin()
	}
	return buf
}

// rebin refiles overflow events that now fall inside the wheel window.
// Runs once per wheel lap (every ~13 virtual minutes), so the extra
// allocation is negligible.
func (w *wheel) rebin() {
	ov := w.overflow
	w.overflow = nil
	for _, e := range ov {
		w.pending-- // schedule re-counts it
		w.schedule(e)
	}
}

// Pending reports how many events are filed (slots + overflow).
func (w *wheel) Pending() int { return w.pending }
