package popsim

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// rssSampler polls the Go heap at 20 ms intervals and keeps the peak
// resident estimate (Sys minus pages already returned to the OS) —
// the bound the population engine is designed to hold flat while the
// user count grows by orders of magnitude.
type rssSampler struct {
	stop chan struct{}
	done chan float64
}

func startRSSSampler() *rssSampler {
	s := &rssSampler{stop: make(chan struct{}), done: make(chan float64)}
	go func() {
		var peak float64
		var ms runtime.MemStats
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if mb := float64(ms.Sys-ms.HeapReleased) / 1e6; mb > peak {
				peak = mb
			}
			select {
			case <-s.stop:
				s.done <- peak
				return
			case <-t.C:
			}
		}
	}()
	return s
}

func (s *rssSampler) peakMB() float64 {
	close(s.stop)
	return <-s.done
}

// BenchmarkPopulationScaling drives the session engine across three
// population sizes on the full analysis plane under retain=none. The
// paper-scale claim is the pair of reported metrics: sessions/sec
// stays flat (the event loop is O(events), not O(users)) and peak RSS
// stays bounded while the population grows 100×.
func BenchmarkPopulationScaling(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("users=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := newPopHarness(b, func(c *Config) {
					c.Population = n
					c.Duration = 30 * time.Second
					c.RampUp = 30 * time.Second
					// Admission scaled so the whole population gets its
					// first session inside the window at every size.
					c.AdmitPerSec = float64(n) / 15
					c.SampleEvery = 256
				})
				runtime.GC()
				sampler := startRSSSampler()
				start := time.Now()
				if err := h.engine.Run(); err != nil {
					b.Fatal(err)
				}
				elapsed := time.Since(start).Seconds()
				peak := sampler.peakMB()
				s := h.engine.Stats()
				if s.ArrivedUsers == 0 || s.Sessions == 0 {
					b.Fatalf("degenerate run: %+v", s)
				}
				if resident := h.db.Engine.Len() + h.db.Native.Len(); resident != 0 {
					b.Fatalf("retain=none left %d flows resident", resident)
				}
				b.ReportMetric(float64(s.Sessions)/elapsed, "sessions/sec")
				b.ReportMetric(peak, "peak_rss_mb")
				b.ReportMetric(float64(s.FlowsCommitted)/elapsed, "flows/sec")
			}
		})
	}
}
