package popsim

import (
	"sync"
	"time"

	"panoptes/internal/analysis"
	"panoptes/internal/capture"
	"panoptes/internal/hostlist"
)

// Curve is the population's Figure-5-style phone-home timeline: native
// requests binned by virtual time per browser, finalized to the same
// analysis.Fig5Series the idle experiment renders. It implements
// pipeline.Analyzer and its state is bounded by
// browsers × bins + distinct destination domains — independent of the
// population size, which is what lets a million-user run keep it on
// the commit tap under -retain=none.
type Curve struct {
	browsers []string
	start    time.Time
	binSecs  int
	nBins    int

	mu    sync.Mutex
	bins  map[string][]int          // browser -> per-bin native request count
	dests map[string]map[string]int // browser -> registrable domain -> count
	total map[string]int
}

// NewCurve builds a curve over the run window [start, start+duration).
func NewCurve(browsers []string, start time.Time, duration time.Duration, binSeconds int) *Curve {
	if binSeconds <= 0 {
		binSeconds = 10
	}
	n := int(duration.Seconds()) / binSeconds
	if n <= 0 {
		n = 1
	}
	return &Curve{
		browsers: append([]string(nil), browsers...),
		start:    start, binSecs: binSeconds, nBins: n,
		bins:  map[string][]int{},
		dests: map[string]map[string]int{},
		total: map[string]int{},
	}
}

// Observe folds one committed native flow into its time bin.
func (c *Curve) Observe(f *capture.Flow) {
	if f.Origin != capture.OriginNative {
		return
	}
	off := int(f.Time.Sub(c.start).Seconds()) / c.binSecs
	if off < 0 {
		return
	}
	if off >= c.nBins {
		off = c.nBins - 1
	}
	dom := hostlist.RegistrableDomain(f.Host)
	c.mu.Lock()
	defer c.mu.Unlock()
	b := f.Browser
	if c.bins[b] == nil {
		c.bins[b] = make([]int, c.nBins)
	}
	c.bins[b][off]++
	if c.dests[b] == nil {
		c.dests[b] = map[string]int{}
	}
	c.dests[b][dom]++
	c.total[b]++
}

// Retract is a no-op: population flows commit with attempt 0, outside
// any attempt quarantine window, so there is never anything to undo.
func (c *Curve) Retract(attempt int64) {}

// Reset drops all bins (pipeline.Resetter).
func (c *Curve) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bins = map[string][]int{}
	c.dests = map[string]map[string]int{}
	c.total = map[string]int{}
}

// Series assembles the per-browser cumulative timelines in fleet order.
func (c *Curve) Series() []analysis.Fig5Series {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]analysis.Fig5Series, 0, len(c.browsers))
	for _, b := range c.browsers {
		s := analysis.Fig5Series{
			Browser: b, BinSeconds: c.binSecs,
			Cumulative: make([]int, c.nBins),
			DestShares: map[string]float64{},
			Total:      c.total[b],
		}
		running := 0
		for i := 0; i < c.nBins; i++ {
			if bins := c.bins[b]; bins != nil {
				running += bins[i]
			}
			s.Cumulative[i] = running
		}
		for d, n := range c.dests[b] {
			if s.Total > 0 {
				s.DestShares[d] = 100 * float64(n) / float64(s.Total)
			}
		}
		out = append(out, s)
	}
	return out
}

// Finalize implements pipeline.Analyzer.
func (c *Curve) Finalize() any { return c.Series() }
