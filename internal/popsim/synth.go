package popsim

import (
	"encoding/base64"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"panoptes/internal/capture"
	"panoptes/internal/dnsmsg"
	"panoptes/internal/profiles"
)

// synthJob is one page visit to synthesize traffic for. Jobs are
// created on the loop thread in deterministic order; synthesis itself
// is a pure function of the job and the model, so it can fan out to
// any number of workers without changing the committed stream.
type synthJob struct {
	user, sess, visit uint32
	pIdx, siteIdx     int
	when              time.Time
	// sampled marks the deterministic 1-in-SampleEvery visits whose
	// flows carry VisitURL and the full PII query. Head-based sampling
	// is what keeps the per-flow-entry analyzers (leak scan findings,
	// Table-2 flow entries) bounded while the figure analyzers still see
	// every flow.
	sampled bool
}

// reqOverhead approximates request-line + header bytes of a native
// exchange (the emulator path measures real wire bytes; the population
// plane models them).
const reqOverhead = 180

// nativeRespBytes is the modelled response size of a phone-home beacon.
const nativeRespBytes = 64

// synthesize renders one visit's traffic — the engine fetches and the
// profile's native phone-home behaviours — as capture flows in their
// canonical order. Flows come from the capture pool and carry no ID;
// the engine's committer assigns IDs in job order.
func (m *Model) synthesize(j synthJob, out []*capture.Flow) []*capture.Flow {
	ps := m.profiles[j.pIdx]
	site := &m.sites[j.siteIdx]
	visitURL := ""
	if j.sampled {
		visitURL = site.url
	}

	// --- Engine plane: the document plus its sub-resources. ---
	f := m.newFlow(ps, j, capture.OriginEngine, visitURL)
	f.Method = http.MethodGet
	f.Host = site.domain
	f.Path = "/"
	f.Transport = capture.TransportH1
	f.ReqBytes = reqOverhead + len(site.domain)
	f.RespBytes = site.docSize
	out = append(out, f)
	for i := range site.res {
		r := &site.res[i]
		if ps.p.EngineAdBlock && r.adRelated {
			continue // the engine's filter list blocks ad embeds
		}
		f := m.newFlow(ps, j, capture.OriginEngine, visitURL)
		f.Method = http.MethodGet
		f.Host = r.host
		f.Path = r.path
		f.Transport = capture.TransportH1
		f.ReqBytes = reqOverhead + len(r.host) + len(r.path)
		f.RespBytes = r.size
		out = append(out, f)
	}

	// --- Native plane: the profile's per-visit phone-home traffic,
	// in the order the emulator issues it. ---
	uuid := m.UUID(j.pIdx, j.user)
	for i := range ps.p.OnVisit {
		t := &ps.p.OnVisit[i]
		method := t.Method
		if method == "" {
			method = http.MethodGet
		}
		f := m.newFlow(ps, j, capture.OriginNative, visitURL)
		f.Method = method
		f.Host = t.Host
		f.Path = t.Path
		f.RawQuery = expand(t.Query, site.url, site.domain, uuid)
		body := expand(t.Body, site.url, site.domain, uuid)
		f.Body = append(f.Body[:0], body...)
		m.stampNativeTransport(ps, f)
		f.ReqBytes = reqOverhead + len(t.Host) + len(t.Path) + len(f.RawQuery) + len(body)
		f.RespBytes = nativeRespBytes
		out = append(out, f)
	}
	// PII beacon (Table 2). Only sampled visits carry the attribute
	// query: the matrix needs evidence, not volume, and the per-flow
	// finding entries it keeps must stay bounded.
	if ps.piiQuery != "" {
		f := m.newFlow(ps, j, capture.OriginNative, visitURL)
		f.Method = http.MethodGet
		f.Host = ps.p.PIICarrier
		f.Path = "/device/profile"
		if j.sampled {
			f.RawQuery = ps.piiQuery
		}
		m.stampNativeTransport(ps, f)
		f.ReqBytes = reqOverhead + len(f.Host) + len(f.Path) + len(f.RawQuery)
		f.RespBytes = nativeRespBytes
		out = append(out, f)
	}
	// Telemetry noise. The emulator round-robins over the noise hosts
	// with an in-process counter; the population plane hashes the pick
	// instead, so the choice is independent of event interleaving.
	seq := uint64(j.sess)<<8 | uint64(j.visit)
	for i := 0; i < ps.p.VisitNoise && len(ps.p.NoiseHosts) > 0; i++ {
		host := ps.p.NoiseHosts[int(m.r.raw(streamNoise, uint64(j.user), seq, uint64(i))%uint64(len(ps.p.NoiseHosts)))]
		f := m.newFlow(ps, j, capture.OriginNative, visitURL)
		f.Host = host
		f.Path = "/beacon"
		if ps.p.NoiseBytes > 0 {
			f.Method = http.MethodPost
			body := fmt.Sprintf(`{"event":"telemetry","seq":%d,"pad":"%s"}`, seq, ps.noisePad)
			f.Body = append(f.Body[:0], body...)
		} else {
			f.Method = http.MethodGet
		}
		m.stampNativeTransport(ps, f)
		f.ReqBytes = reqOverhead + len(host) + len(f.Body)
		f.RespBytes = nativeRespBytes
		out = append(out, f)
	}
	// WebSocket push telemetry: the visited URL rides inside the frame.
	if ps.p.WSTelemetryHost != "" {
		f := m.newFlow(ps, j, capture.OriginNative, visitURL)
		f.Method = "WS"
		f.Scheme = "wss"
		f.Host = ps.p.WSTelemetryHost
		f.Path = "/push/v1/telemetry"
		f.Transport = capture.TransportWS
		frame := fmt.Sprintf(`{"event":"page_visit","seq":%d,"url":%q,"uuid":%q}`, seq, site.url, uuid)
		f.Body = append(f.Body[:0], frame...)
		f.ReqBytes = len(frame) + 6 // frame header + masked payload
		f.RespBytes = 0
		out = append(out, f)
	}
	// DoH resolution: browsers on a third-party resolver emit one query
	// for the visited site, plus the PII qname if the profile leaks one.
	// The PII qname rides only on sampled visits: its "cc-gr" label is a
	// Table-2 country finding on every flow that carries it, and the
	// matrix analyzer logs one entry per finding-carrying flow.
	if ps.dohHost != "" {
		out = append(out, m.dohFlow(ps, j, site.domain, visitURL))
		if ps.dohQname != "" && j.sampled {
			out = append(out, m.dohFlow(ps, j, ps.dohQname, visitURL))
		}
	}
	return out
}

// newFlow acquires a pooled flow and stamps the fields every
// population flow shares. Attempt stays 0: population visits commit
// outside any attempt window, so analyzers keep no undo logs for them.
func (m *Model) newFlow(ps *profileSynth, j synthJob, o capture.Origin, visitURL string) *capture.Flow {
	f := capture.AcquireFlow()
	f.Time = j.when
	f.Browser = ps.p.Name
	f.BrowserUID = ps.uid
	f.Scheme = "https"
	f.Origin = o
	f.Status = http.StatusOK
	f.VisitURL = visitURL
	return f
}

// stampNativeTransport marks HTTP/2 on the profile's h2 vendor hosts
// (everything else stays HTTP/1.1, as in the emulator's native stack).
func (m *Model) stampNativeTransport(ps *profileSynth, f *capture.Flow) {
	if ps.h2[f.Host] {
		f.Transport = capture.TransportH2
		f.ALPN = "h2"
	} else {
		f.Transport = capture.TransportH1
	}
}

// dohFlow renders one RFC 8484 POST to the profile's resolver with the
// packed DNS query as its body.
func (m *Model) dohFlow(ps *profileSynth, j synthJob, qname, visitURL string) *capture.Flow {
	f := m.newFlow(ps, j, capture.OriginNative, visitURL)
	f.Method = http.MethodPost
	f.Host = ps.dohHost
	f.Path = "/dns-query"
	f.Transport = capture.TransportDoH
	id := uint16(m.r.raw(streamDNSID, uint64(j.user), uint64(j.sess), uint64(j.visit)))
	if raw, err := dnsmsg.NewQuery(id, qname, dnsmsg.TypeA).Pack(); err == nil {
		f.Body = append(f.Body[:0], raw...)
	}
	f.ReqBytes = reqOverhead + len(f.Body)
	f.RespBytes = nativeRespBytes
	return f
}

// expand fills a native template's placeholders (the emulator's
// browser.expand, minus the per-instance UUID source).
func expand(t, visitURL, host, uuid string) string {
	if t == "" {
		return ""
	}
	r := strings.NewReplacer(
		"{URL}", visitURL,
		"{URL_B64}", base64.StdEncoding.EncodeToString([]byte(visitURL)),
		"{URL_ESC}", url.QueryEscape(visitURL),
		"{HOST}", host,
		"{UUID}", uuid,
	)
	return r.Replace(t)
}

// profileFleet converts a profile list to its name list in fleet order.
func profileFleet(ps []*profiles.Profile) []string {
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}
