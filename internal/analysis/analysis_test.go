package analysis_test

import (
	"bytes"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"panoptes/internal/analysis"
	"panoptes/internal/capture"
	"panoptes/internal/core"
	"panoptes/internal/hostlist"
	"panoptes/internal/leak"
	"panoptes/internal/pii"
	"panoptes/internal/profiles"
)

// fullStudy runs one complete study (crawl all 15 browsers over a
// mid-size site list) and is shared across the shape tests.
var fullStudy struct {
	once  sync.Once
	world *core.World
	err   error
	names []string
}

func study(t *testing.T) (*core.World, []string) {
	t.Helper()
	if testing.Short() {
		t.Skip("full study skipped in -short mode")
	}
	fullStudy.once.Do(func() {
		w, err := core.NewWorld(core.WorldConfig{Sites: 24})
		if err != nil {
			fullStudy.err = err
			return
		}
		if _, err := w.RunCampaign(core.CampaignConfig{}); err != nil {
			fullStudy.err = err
			return
		}
		fullStudy.world = w
		for _, p := range profiles.All() {
			fullStudy.names = append(fullStudy.names, p.Name)
		}
	})
	if fullStudy.err != nil {
		t.Fatal(fullStudy.err)
	}
	return fullStudy.world, fullStudy.names
}

func rowFor(rows []analysis.Fig2Row, name string) analysis.Fig2Row {
	for _, r := range rows {
		if r.Browser == name {
			return r
		}
	}
	return analysis.Fig2Row{}
}

func TestFig2Shape(t *testing.T) {
	w, names := study(t)
	rows := analysis.Fig2(w.DB, names)
	ratios := map[string]float64{}
	for _, r := range rows {
		if r.Engine == 0 {
			t.Fatalf("%s: no engine traffic", r.Browser)
		}
		ratios[r.Browser] = r.Ratio
		t.Logf("Fig2 %-16s engine=%4d native=%4d ratio=%.3f", r.Browser, r.Engine, r.Native, r.Ratio)
	}
	// Paper: Edge ≈ 0.38 and Yandex ≈ 0.39 top the field; Vivaldi, Whale,
	// CocCoc also above 1/3; Chrome and Brave are near-silent.
	for _, top := range []string{"Edge", "Yandex"} {
		if ratios[top] < 0.28 || ratios[top] > 0.52 {
			t.Errorf("%s ratio = %.3f, want ≈0.38", top, ratios[top])
		}
	}
	for _, mid := range []string{"Vivaldi", "Whale", "CocCoc"} {
		if ratios[mid] < 0.25 {
			t.Errorf("%s ratio = %.3f, want > 1/4 (paper: >1/3)", mid, ratios[mid])
		}
	}
	for _, quiet := range []string{"Chrome", "Brave", "DuckDuckGo"} {
		if ratios[quiet] > 0.15 {
			t.Errorf("%s ratio = %.3f, want quiet (<0.15)", quiet, ratios[quiet])
		}
	}
	if ratios["Chrome"] >= ratios["Edge"] {
		t.Error("Chrome should be far below Edge")
	}
}

func TestFig3Shape(t *testing.T) {
	w, names := study(t)
	rows := analysis.Fig3(w.DB.Native, w.Hostlist, names)
	pct := map[string]float64{}
	nonzero := 0
	for _, r := range rows {
		pct[r.Browser] = r.AdPct
		if r.AdDomains > 0 {
			nonzero++
		}
		t.Logf("Fig3 %-16s %5.1f%% (%d/%d) %v", r.Browser, r.AdPct, r.AdDomains, r.DistinctDomains, r.AdDomainList)
	}
	// Paper: 8 of 15 browsers issue native requests to ad servers.
	if nonzero != 8 {
		t.Errorf("browsers with ad-related native domains = %d, want 8", nonzero)
	}
	// Kiwi ≈ 40% is the maximum; Opera ≈ 19.2%; Yandex ≈ 16%.
	if pct["Kiwi"] < 30 || pct["Kiwi"] > 50 {
		t.Errorf("Kiwi = %.1f%%, want ≈40%%", pct["Kiwi"])
	}
	for b, want := range map[string]float64{"Opera": 19.2, "Yandex": 16} {
		if pct[b] < want-8 || pct[b] > want+8 {
			t.Errorf("%s = %.1f%%, want ≈%.1f%%", b, pct[b], want)
		}
	}
	for _, r := range rows {
		if r.Browser != "Kiwi" && r.AdPct > pct["Kiwi"] {
			t.Errorf("%s (%.1f%%) exceeds Kiwi (%.1f%%)", r.Browser, r.AdPct, pct["Kiwi"])
		}
	}
	// Kiwi's ad destinations include the domains the paper names.
	kiwi := rowFor3(rows, "Kiwi")
	for _, d := range []string{"rubiconproject.com", "adnxs.com", "openx.net", "pubmatic.com", "bidswitch.net", "demdex.net"} {
		if !slices.Contains(kiwi.AdDomainList, d) {
			t.Errorf("Kiwi ad domains missing %s: %v", d, kiwi.AdDomainList)
		}
	}
	// Zero rows for the clean browsers.
	for _, b := range []string{"Chrome", "Brave", "Samsung", "DuckDuckGo", "Whale", "Vivaldi", "UC International"} {
		if pct[b] != 0 {
			t.Errorf("%s = %.1f%%, want 0", b, pct[b])
		}
	}
}

func rowFor3(rows []analysis.Fig3Row, name string) analysis.Fig3Row {
	for _, r := range rows {
		if r.Browser == name {
			return r
		}
	}
	return analysis.Fig3Row{}
}

func TestFig4Shape(t *testing.T) {
	w, names := study(t)
	rows := analysis.Fig4(w.DB, names)
	over := map[string]float64{}
	for _, r := range rows {
		over[r.Browser] = r.OverheadPct
		t.Logf("Fig4 %-16s engine=%8dB native=%8dB +%.1f%%", r.Browser, r.EngineBytes, r.NativeBytes, r.OverheadPct)
	}
	// QQ is the outlier at ≈42% extra outgoing traffic.
	if over["QQ"] < 30 || over["QQ"] > 60 {
		t.Errorf("QQ overhead = %.1f%%, want ≈42%%", over["QQ"])
	}
	for _, r := range rows {
		if r.Browser != "QQ" && r.OverheadPct > over["QQ"] {
			t.Errorf("%s (+%.1f%%) exceeds QQ (+%.1f%%)", r.Browser, r.OverheadPct, over["QQ"])
		}
	}
	if over["Chrome"] > 15 || over["Brave"] > 15 {
		t.Errorf("quiet browsers too heavy: Chrome +%.1f%%, Brave +%.1f%%", over["Chrome"], over["Brave"])
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	w, names := study(t)
	m, _ := analysis.Table2(w.DB.Native, names)

	// The paper's Table 2, cell for cell.
	want := map[string][]pii.Attribute{
		"Chrome":           {},
		"Edge":             {pii.AttrDeviceManuf, pii.AttrTimezone, pii.AttrResolution, pii.AttrLocale, pii.AttrConnType, pii.AttrNetType},
		"Opera":            {pii.AttrDeviceManuf, pii.AttrTimezone, pii.AttrResolution, pii.AttrLocale, pii.AttrCountry, pii.AttrLocation, pii.AttrNetType},
		"Vivaldi":          {pii.AttrResolution},
		"Yandex":           {pii.AttrDeviceType, pii.AttrDeviceManuf, pii.AttrResolution, pii.AttrDPI, pii.AttrLocale, pii.AttrNetType},
		"Brave":            {},
		"Samsung":          {pii.AttrLocale},
		"DuckDuckGo":       {},
		"Dolphin":          {},
		"Whale":            {pii.AttrResolution, pii.AttrLocalIP, pii.AttrRooted, pii.AttrLocale, pii.AttrCountry, pii.AttrNetType},
		"Mint":             {pii.AttrTimezone, pii.AttrResolution, pii.AttrLocale, pii.AttrCountry},
		"Kiwi":             {},
		"CocCoc":           {pii.AttrDeviceType, pii.AttrDeviceManuf, pii.AttrResolution, pii.AttrLocale, pii.AttrCountry},
		"QQ":               {pii.AttrDeviceType, pii.AttrDeviceManuf, pii.AttrResolution},
		"UC International": {pii.AttrLocale, pii.AttrNetType},
	}
	for browser, attrs := range want {
		wantSet := map[pii.Attribute]bool{}
		for _, a := range attrs {
			wantSet[a] = true
		}
		for _, col := range pii.Columns() {
			got := m.Leaked(browser, col)
			if got != wantSet[col] {
				t.Errorf("Table2 %s / %s = %v, paper says %v", browser, col, got, wantSet[col])
			}
		}
	}
}

func TestHistoryLeaksMatchPaper(t *testing.T) {
	w, _ := study(t)
	findings := analysis.HistoryLeaks(w.DB.Native)
	sums := leak.Summarise(findings)
	full := map[string][]string{}
	domain := map[string][]string{}
	for _, s := range sums {
		full[s.Browser] = s.FullURLHosts
		domain[s.Browser] = s.DomainHosts
		t.Logf("Leak %-16s full=%v domain=%v", s.Browser, s.FullURLHosts, s.DomainHosts)
	}
	// Yandex and QQ leak full URLs natively.
	if !slices.Contains(full["Yandex"], "sba.yandex.net") {
		t.Errorf("Yandex full-URL leak to sba.yandex.net missing: %v", full["Yandex"])
	}
	if !slices.Contains(full["QQ"], "wup.browser.qq.com") {
		t.Errorf("QQ full-URL leak missing: %v", full["QQ"])
	}
	// Edge reports every visited domain to the Bing API; Opera to
	// Sitecheck; Yandex's api.browser gets the hostname.
	if !slices.Contains(domain["Edge"], "api.bing.com") {
		t.Errorf("Edge domain leak to Bing missing: %v", domain["Edge"])
	}
	if !slices.Contains(domain["Opera"], "sitecheck2.opera.com") {
		t.Errorf("Opera Sitecheck leak missing: %v", domain["Opera"])
	}
	if !slices.Contains(domain["Yandex"], "api.browser.yandex.ru") {
		t.Errorf("Yandex host leak missing: %v", domain["Yandex"])
	}
	// Clean browsers leak nothing.
	for _, b := range []string{"Chrome", "Brave", "DuckDuckGo"} {
		if len(full[b])+len(domain[b]) > 0 {
			t.Errorf("%s unexpectedly leaks: full=%v domain=%v", b, full[b], domain[b])
		}
	}
}

func TestGeoTransfersMatchPaper(t *testing.T) {
	w, _ := study(t)
	geo, err := w.GeoDB()
	if err != nil {
		t.Fatal(err)
	}
	findings := analysis.HistoryLeaks(w.DB.Native)
	rows, err := analysis.GeoTransfers(findings, w.Inet, geo)
	if err != nil {
		t.Fatal(err)
	}
	countries := map[string]map[string]bool{}
	for _, r := range rows {
		if countries[r.Browser] == nil {
			countries[r.Browser] = map[string]bool{}
		}
		if r.Kind == leak.KindFullURL {
			countries[r.Browser][r.Country] = true
		}
		if r.InEU {
			t.Errorf("leak receiver inside the EU: %+v", r)
		}
	}
	// Paper §3.4: Yandex→RU, QQ→CN full-history receivers.
	if !countries["Yandex"]["RU"] {
		t.Errorf("Yandex full-URL receiver not in RU: %v", countries["Yandex"])
	}
	if !countries["QQ"]["CN"] {
		t.Errorf("QQ full-URL receiver not in CN: %v", countries["QQ"])
	}
	// UC leaks through the engine; check the engine side explicitly.
	ucFindings := analysis.HistoryLeaks(w.DB.Engine)
	ucRows, err := analysis.GeoTransfers(ucFindings, w.Inet, geo)
	if err != nil {
		t.Fatal(err)
	}
	ucCA := false
	for _, r := range ucRows {
		if r.Browser == "UC International" && r.Country == "CA" && r.Kind == leak.KindFullURL {
			ucCA = true
		}
	}
	if !ucCA {
		t.Error("UC International full-URL receiver in CA not found on the engine side")
	}
}

func TestDNSUsageSplit(t *testing.T) {
	w, names := study(t)
	usage := analysis.DNSUsage(w.DB.Native, names)
	doh, local := 0, 0
	for b, mode := range usage {
		t.Logf("DNS %-16s %s", b, mode)
		if strings.HasPrefix(mode, "doh") {
			doh++
		} else {
			local++
		}
	}
	// Paper: 8 browsers use Cloudflare/Google DoH, 7 the local stub.
	if doh != 8 || local != 7 {
		t.Errorf("doh=%d local=%d, want 8/7", doh, local)
	}
}

func TestListing1Captured(t *testing.T) {
	w, _ := study(t)
	body, _ := analysis.Listing1(w.DB.Native)
	if body == "" {
		t.Fatal("no Opera OLeads request captured")
	}
	for _, needle := range []string{"adxsdk_for_opera_ofa_final", "operaId", "latitude", "com.opera.browser"} {
		if !strings.Contains(body, needle) {
			t.Errorf("Listing 1 body missing %q: %s", needle, body)
		}
	}
}

func TestUIDOnlySplitAblation(t *testing.T) {
	w, names := study(t)
	totals := analysis.UIDOnlySplit(w.DB, names)
	rows := analysis.Fig2(w.DB, names)
	for _, r := range rows {
		if totals[r.Browser] != r.Engine+r.Native {
			t.Errorf("%s: uid-only %d != %d+%d", r.Browser, totals[r.Browser], r.Engine, r.Native)
		}
	}
}

func TestFig5UnitBinning(t *testing.T) {
	start := time.Unix(1683900000, 0).UTC()
	flows := []*capture.Flow{
		{Host: "a.example", Time: start.Add(5 * time.Second)},
		{Host: "a.example", Time: start.Add(15 * time.Second)},
		{Host: "b.example", Time: start.Add(95 * time.Second)},
		{Host: "b.example", Time: start.Add(700 * time.Second)}, // clamped to last bin
	}
	s := analysis.Fig5("X", flows, start, 2*time.Minute, 10)
	if len(s.Cumulative) != 12 {
		t.Fatalf("bins = %d", len(s.Cumulative))
	}
	if s.Cumulative[0] != 1 || s.Cumulative[1] != 2 || s.Cumulative[9] != 3 || s.Cumulative[11] != 4 {
		t.Fatalf("cumulative = %v", s.Cumulative)
	}
	if s.Total != 4 || s.DestShares["a.example"] != 50 {
		t.Fatalf("total=%d shares=%v", s.Total, s.DestShares)
	}
}

func TestFig5LinearityScore(t *testing.T) {
	linear := analysis.Fig5Series{Cumulative: []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}
	if got := linear.LinearityScore(); got < 0.8 {
		t.Fatalf("linear score = %.2f", got)
	}
	burst := analysis.Fig5Series{Cumulative: []int{8, 9, 9, 9, 10, 10, 10, 10, 10, 10}}
	if got := burst.LinearityScore(); got > 0.5 {
		t.Fatalf("burst score = %.2f", got)
	}
	if (analysis.Fig5Series{}).LinearityScore() != 0 {
		t.Fatal("empty series score")
	}
}

func TestHostlistRegression(t *testing.T) {
	// browser.events.data.msn.com must NOT be ad-related (it is Edge's
	// second-party telemetry); adfox.ru must be (Yandex's ad tech).
	l := hostlist.Bundled()
	if l.AdRelated("browser.events.data.msn.com") {
		t.Error("msn telemetry classified ad-related")
	}
	if !l.AdRelated("adfox.ru") {
		t.Error("adfox.ru not ad-related")
	}
}

func TestHistoryLeaksWithInjectedDifferential(t *testing.T) {
	w, _ := study(t)
	findings := analysis.HistoryLeaksWithInjected(w.DB, []string{"UC International"})
	hosts := map[string]map[string]bool{}
	for _, f := range findings {
		if hosts[f.Browser] == nil {
			hosts[f.Browser] = map[string]bool{}
		}
		hosts[f.Browser][f.Host] = true
	}
	// UC's beacon survives the differential filter…
	if !hosts["UC International"]["gjapi.ucweb.com"] {
		t.Errorf("UC beacon filtered out: %v", hosts["UC International"])
	}
	// …but website-caused analytics leaks (present for all browsers'
	// engines) do not.
	for h := range hosts["UC International"] {
		if strings.Contains(h, "google-analytics") || strings.Contains(h, "googletagmanager") {
			t.Errorf("website tracking attributed to UC: %s", h)
		}
	}
	// Native leaks are unaffected.
	if !hosts["Yandex"]["sba.yandex.net"] {
		t.Error("Yandex native leak missing")
	}
}

func TestCrossCheckVolumes(t *testing.T) {
	w, names := study(t)
	uidOf := map[string]int{}
	for _, n := range names {
		uidOf[n] = w.Browsers[n].UID()
	}
	rows := analysis.CrossCheckVolumes(w.DB, w.Device.Accounting, uidOf)
	if len(rows) != len(names) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ProxyReqBytes == 0 || r.KernelTxBytes == 0 {
			t.Errorf("%s: empty volumes %+v", r.Browser, r)
		}
		if !r.Consistent {
			t.Errorf("%s: kernel tx %d < proxy req bytes %d", r.Browser, r.KernelTxBytes, r.ProxyReqBytes)
		}
		// TLS overhead should not explode the ratio beyond ~20x.
		if r.KernelTxBytes > 40*r.ProxyReqBytes {
			t.Errorf("%s: kernel/proxy ratio implausible: %d / %d", r.Browser, r.KernelTxBytes, r.ProxyReqBytes)
		}
	}
}

func TestTrackableIdentifiersInStudy(t *testing.T) {
	w, _ := study(t)
	ids := analysis.TrackableIdentifiers(w.DB.Native)
	var yandex, opera *analysis.TrackableID
	for i := range ids {
		id := &ids[i]
		if id.Browser == "Yandex" && id.Host == "api.browser.yandex.ru" && id.Param == "uuid" {
			yandex = id
		}
		if id.Browser == "Opera" && id.Param == "operaId" {
			opera = id
		}
	}
	if yandex == nil {
		t.Fatalf("Yandex uuid not mined: %+v", ids)
	}
	if len(yandex.Values) != 1 {
		t.Fatalf("Yandex uuid rotated within a session: %v", yandex.Values)
	}
	if yandex.Sightings < 20 {
		t.Fatalf("Yandex uuid sightings = %d, want one per visit", yandex.Sightings)
	}
	if opera == nil {
		t.Fatalf("Opera operaId not mined from POST bodies")
	}
	if len(opera.Values) != 1 || opera.Sightings < 20 {
		t.Fatalf("operaId = %+v", opera)
	}
}

// TestJSONLReanalysis round-trips the capture databases through JSONL
// (the cmd/panoptes-report path) and verifies the figures recompute
// identically.
func TestJSONLReanalysis(t *testing.T) {
	w, names := study(t)
	var engBuf, natBuf bytes.Buffer
	if err := w.DB.Engine.WriteJSONL(&engBuf); err != nil {
		t.Fatal(err)
	}
	if err := w.DB.Native.WriteJSONL(&natBuf); err != nil {
		t.Fatal(err)
	}
	reloaded := capture.NewDB()
	if err := reloaded.Engine.ReadJSONL(&engBuf); err != nil {
		t.Fatal(err)
	}
	if err := reloaded.Native.ReadJSONL(&natBuf); err != nil {
		t.Fatal(err)
	}
	orig := analysis.Fig2(w.DB, names)
	re := analysis.Fig2(reloaded, names)
	for i := range orig {
		if orig[i] != re[i] {
			t.Fatalf("Fig2 row %d differs after JSONL round trip: %+v vs %+v", i, orig[i], re[i])
		}
	}
	m1, _ := analysis.Table2(w.DB.Native, names)
	m2, _ := analysis.Table2(reloaded.Native, names)
	for _, b := range names {
		for _, c := range pii.Columns() {
			if m1.Leaked(b, c) != m2.Leaked(b, c) {
				t.Fatalf("Table2 %s/%s differs after round trip", b, c)
			}
		}
	}
	if len(analysis.HistoryLeaks(w.DB.Native)) != len(analysis.HistoryLeaks(reloaded.Native)) {
		t.Fatal("leak findings differ after round trip")
	}
}

func TestSensitiveBreakdown(t *testing.T) {
	w, _ := study(t)
	// Category lookup from the world's dataset.
	cats := map[string]string{}
	var sensVisits []string
	for _, s := range w.Sites {
		if s.Category.Sensitive() {
			cats[s.URL()] = string(s.Category)
			sensVisits = append(sensVisits, s.URL())
		}
	}
	catOf := func(u string) string { return cats[u] }
	findings := analysis.HistoryLeaksWithInjected(w.DB, []string{"UC International"})
	rows := analysis.SensitiveBreakdown(findings, sensVisits,
		map[string]bool{"Yandex": true, "QQ": true, "UC International": true, "Brave": true}, catOf)

	byBrowser := map[string][]analysis.SensitiveRow{}
	for _, r := range rows {
		byBrowser[r.Browser] = append(byBrowser[r.Browser], r)
	}
	// The three leakers report every sensitive visit in every category.
	for _, b := range []string{"Yandex", "QQ", "UC International"} {
		if len(byBrowser[b]) != 4 {
			t.Fatalf("%s categories = %d, want 4", b, len(byBrowser[b]))
		}
		for _, r := range byBrowser[b] {
			if r.Leaked != r.Visits || r.Visits == 0 {
				t.Errorf("%s/%s leaked %d of %d (no local filtering expected)",
					r.Browser, r.Category, r.Leaked, r.Visits)
			}
		}
	}
	// Brave leaks none.
	for _, r := range byBrowser["Brave"] {
		if r.Leaked != 0 {
			t.Errorf("Brave leaked %d %s visits", r.Leaked, r.Category)
		}
	}
}
